package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

const testSrc = `
array A[4096] elem 4096 stripe(unit=32K, factor=4, start=0)
array B[4096] elem 4096 stripe(unit=32K, factor=4, start=0)
nest Fwd { for i = 0 to 4095 { B[i] = A[i]; } }
nest Bwd { for i = 0 to 4095 { A[i] = B[4095-i]; } }
`

// withStdio feeds src on stdin and captures stdout of fn.
func withStdio(t *testing.T, src string, fn func() error) string {
	t.Helper()
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inR, outW
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()
	go func() {
		inW.WriteString(src)
		inW.Close()
	}()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestRunFullReport(t *testing.T) {
	out := withStdio(t, testSrc, func() error {
		return run(options{showCode: true, showStats: true, showDeps: true, procs: 2, jobs: 2})
	})
	for _, want := range []string{
		"program: 2 arrays, 2 nests, 8192 iterations, 4 disks",
		"original:",
		"restructured:",
		"exact dependence graph:",
		"loop parallelization (procs=2)",
		"layout-aware (procs=2)",
		"nest Fwd",
		"for ss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestRunBadProgram(t *testing.T) {
	inR, inW, _ := os.Pipe()
	oldIn := os.Stdin
	os.Stdin = inR
	defer func() { os.Stdin = oldIn }()
	go func() {
		inW.WriteString("this is not DRL")
		inW.Close()
	}()
	if err := run(options{jobs: 1, procs: 1}); err == nil {
		t.Error("bad program must fail")
	}
}

func TestRunFromFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "*.drl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(testSrc); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := withStdio(t, "", func() error {
		return run(options{showStats: true, procs: 1, jobs: 1, srcPath: f.Name()})
	})
	if !strings.Contains(out, "8192 iterations") {
		t.Errorf("output missing stats:\n%s", out)
	}
}

// TestFuzzSeedRepro replays a generator seed through the invariant checker
// and prints the case as DRL source.
func TestFuzzSeedRepro(t *testing.T) {
	out := withStdio(t, "", func() error {
		return run(options{fuzzSeed: "42"})
	})
	for _, want := range []string{"replaying generator seed 42", "array ", "all invariants hold", "energy: Base"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestFuzzCaseRepro replays both corpus-encoded and raw-byte files.
func TestFuzzCaseRepro(t *testing.T) {
	dir := t.TempDir()
	corpus := dir + "/corpus"
	if err := os.WriteFile(corpus, []byte("go test fuzz v1\n[]byte(\"\\x01\\x02\\x03\")\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw := dir + "/raw"
	if err := os.WriteFile(raw, []byte{0x01, 0x02, 0x03}, 0o644); err != nil {
		t.Fatal(err)
	}
	var outs []string
	for _, path := range []string{corpus, raw} {
		out := withStdio(t, "", func() error {
			return run(options{fuzzCase: path})
		})
		if !strings.Contains(out, "all invariants hold") {
			t.Errorf("%s: output missing verdict\n%s", path, out)
		}
		// Keep only the generated program + verdict (the header names the file).
		outs = append(outs, out[strings.Index(out, "\n"):])
	}
	// The corpus wrapper and the raw bytes are the same generator input, so
	// the replayed case must be identical.
	if outs[0] != outs[1] {
		t.Errorf("corpus-encoded and raw replays differ:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestCorpusBytesErrors(t *testing.T) {
	if _, err := corpusBytes([]byte("go test fuzz v1\nint(7)\n")); err == nil {
		t.Error("corpus with no byte value accepted")
	}
	if _, err := corpusBytes([]byte("go test fuzz v1\n[]byte(bogus)\n")); err == nil {
		t.Error("malformed quoting accepted")
	}
	got, err := corpusBytes([]byte("go test fuzz v1\nstring(\"hi\")\n"))
	if err != nil || string(got) != "hi" {
		t.Errorf("string value: got %q, %v", got, err)
	}
}

// TestTraceAndReport drives -trace-out and -report json together: the
// Chrome trace must parse with span events for the compiler passes, and the
// report must carry stage timings while stdout stays pure JSON (the human
// output moves to stderr).
func TestTraceAndReport(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	out := withStdio(t, testSrc, func() error {
		return run(options{showStats: true, procs: 1, jobs: 2, report: "json", traceOut: path})
	})
	var rep struct {
		Stages []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not pure report JSON: %v\n%s", err, out)
	}
	stages := make(map[string]int)
	for _, st := range rep.Stages {
		stages[st.Name] = st.Count
	}
	for _, name := range []string{"compile", "parse", "sema", "layout", "space",
		"validate", "deps", "attribute-disks", "restructure", "verify"} {
		if stages[name] == 0 {
			t.Errorf("stage %q missing from report (got %v)", name, stages)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("bad trace JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["compile"] || !names["parse"] || !names["deps"] {
		t.Errorf("trace missing compiler spans (have %v)", names)
	}
}

func TestLayoutSearchFlag(t *testing.T) {
	out := withStdio(t, testSrc, func() error {
		return run(options{showStats: true, jobs: 1, layoutSearch: true, computePerIter: 1e-3})
	})
	if !strings.Contains(out, "layout search:") || !strings.Contains(out, "T-DRPM") ||
		!strings.Contains(out, "A=unit=") {
		t.Errorf("layout search output:\n%s", out)
	}
}

// TestRunWithMonitoring: the metrics endpoint and heartbeat must not
// disturb the compiler's stdout — announcements and heartbeats are stderr
// concerns, and stage histograms come from the obs bridge invisibly.
func TestRunWithMonitoring(t *testing.T) {
	out := withStdio(t, testSrc, func() error {
		return run(options{showStats: true, procs: 1, jobs: 2,
			metricsAddr: "127.0.0.1:0", heartbeat: time.Millisecond})
	})
	for _, want := range []string{"program: 2 arrays", "original:", "restructured:"} {
		if !strings.Contains(out, want) {
			t.Errorf("monitored compile stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "metrics: serving") || strings.Contains(out, " req/s") {
		t.Errorf("monitoring lines leaked to stdout:\n%s", out)
	}
}
