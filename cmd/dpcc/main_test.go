package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// resetFlagsAndParse replaces the global flag set and parses os.Args, so a
// test can hand run() a positional file argument.
func resetFlagsAndParse() error {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	return flag.CommandLine.Parse(os.Args[1:])
}

const testSrc = `
array A[4096] elem 4096 stripe(unit=32K, factor=4, start=0)
array B[4096] elem 4096 stripe(unit=32K, factor=4, start=0)
nest Fwd { for i = 0 to 4095 { B[i] = A[i]; } }
nest Bwd { for i = 0 to 4095 { A[i] = B[4095-i]; } }
`

// withStdio feeds src on stdin and captures stdout of fn.
func withStdio(t *testing.T, src string, fn func() error) string {
	t.Helper()
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inR, outW
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()
	go func() {
		inW.WriteString(src)
		inW.Close()
	}()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestRunFullReport(t *testing.T) {
	out := withStdio(t, testSrc, func() error {
		return run(true, true, true, 2, 2)
	})
	for _, want := range []string{
		"program: 2 arrays, 2 nests, 8192 iterations, 4 disks",
		"original:",
		"restructured:",
		"exact dependence graph:",
		"loop parallelization (procs=2)",
		"layout-aware (procs=2)",
		"nest Fwd",
		"for ss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestRunBadProgram(t *testing.T) {
	inR, inW, _ := os.Pipe()
	oldIn := os.Stdin
	os.Stdin = inR
	defer func() { os.Stdin = oldIn }()
	go func() {
		inW.WriteString("this is not DRL")
		inW.Close()
	}()
	if err := run(false, false, false, 1, 1); err == nil {
		t.Error("bad program must fail")
	}
}

func TestRunFromFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "*.drl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(testSrc); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Simulate a positional argument by parsing a fresh flag set.
	oldArgs := os.Args
	os.Args = []string{"dpcc", f.Name()}
	defer func() { os.Args = oldArgs }()
	// run() consults flag.Arg(0); ensure the global flag set sees the file.
	if err := resetFlagsAndParse(); err != nil {
		t.Fatal(err)
	}
	out := withStdio(t, "", func() error { return run(false, true, false, 1, 1) })
	if !strings.Contains(out, "8192 iterations") {
		t.Errorf("output missing stats:\n%s", out)
	}
}
