// Command dpcc is the disk-power compiler driver: it parses a DRL program,
// runs dependence analysis and disk-reuse restructuring, and reports what
// the optimizer did — clustering statistics, the restructured per-disk
// loop nests, and (with -procs) the multiprocessor iteration assignment.
//
// Usage:
//
//	dpcc [-code] [-stats] [-deps] [-procs N] [-jobs N] [file.drl]
//
// With no file the program is read from standard input.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"diskreuse/internal/core"
	"diskreuse/internal/dep"
	"diskreuse/internal/layout"
	"diskreuse/internal/par"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func main() {
	var (
		showCode  = flag.Bool("code", false, "print the restructured per-disk loop nests")
		showStats = flag.Bool("stats", true, "print disk-reuse clustering statistics")
		showDeps  = flag.Bool("deps", false, "print the static data dependences per nest")
		procs     = flag.Int("procs", 1, "processors for the layout-aware parallelization report")
		jobs      = flag.Int("jobs", 1, "worker pool for the analysis front-end (0 = all CPUs)")
	)
	flag.Parse()
	if err := run(*showCode, *showStats, *showDeps, *procs, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "dpcc:", err)
		os.Exit(1)
	}
}

func run(showCode, showStats, showDeps bool, procs, jobs int) error {
	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	astProg, err := parser.Parse(string(src))
	if err != nil {
		return err
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		return err
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return err
	}
	r, err := core.NewCtx(context.Background(), prog, lay, core.Options{Jobs: jobs})
	if err != nil {
		return err
	}

	fmt.Printf("program: %d arrays, %d nests, %d iterations, %d disks\n",
		len(prog.Arrays), len(prog.Nests), r.Space.NumIterations(), lay.NumDisks())

	if showDeps {
		for _, n := range prog.Nests {
			deps := dep.AnalyzeNest(n)
			fmt.Printf("nest %s: %d static dependences\n", n.Name, len(deps))
			for _, d := range deps {
				fmt.Printf("  %s\n", d)
			}
		}
		fmt.Printf("exact dependence graph: %d edges\n", r.Graph.NumEdges())
	}

	if showStats {
		orig := core.Stats(r.OriginalSchedule(), lay.NumDisks())
		sched, err := r.DiskReuseSchedule()
		if err != nil {
			return err
		}
		if err := r.Verify(sched); err != nil {
			return fmt.Errorf("restructured schedule failed verification: %w", err)
		}
		restr := core.Stats(sched, lay.NumDisks())
		fmt.Printf("original:     %s\n", orig)
		fmt.Printf("restructured: %s\n", restr)
	}

	if procs > 1 {
		lp, err := par.LoopParallelize(r, procs)
		if err != nil {
			return err
		}
		la, err := par.LayoutAware(r, procs)
		if err != nil {
			return err
		}
		fmt.Printf("loop parallelization (procs=%d): loads=%v imbalance=%.3f\n",
			procs, lp.Loads(), lp.Imbalance())
		fmt.Printf("layout-aware (procs=%d):         loads=%v imbalance=%.3f\n",
			procs, la.Loads(), la.Imbalance())
		for k, n := range prog.Nests {
			lvl := "sequential"
			if lp.ParallelLevel[k] >= 0 {
				lvl = fmt.Sprintf("loop %d (%s)", lp.ParallelLevel[k], n.Loops[lp.ParallelLevel[k]].Var)
			}
			fmt.Printf("  nest %-12s parallelized at %s\n", n.Name, lvl)
		}
	}

	if showCode {
		code, err := r.RestructuredPseudoCode()
		if err != nil {
			return err
		}
		fmt.Println(code)
	}
	return nil
}
