// Command dpcc is the disk-power compiler driver: it parses a DRL program,
// runs dependence analysis and disk-reuse restructuring, and reports what
// the optimizer did — clustering statistics, the restructured per-disk
// loop nests, and (with -procs) the multiprocessor iteration assignment.
//
// Usage:
//
//	dpcc [-code] [-stats] [-deps] [-procs N] [-jobs N] [-engine compiled|interp] [file.drl]
//	dpcc -trace-out t.json file.drl    # Chrome trace of the analysis passes
//	dpcc -report text file.drl         # stage-timing report (text, json, csv)
//	dpcc -fuzz-case corpusfile         # replay a FuzzPipeline corpus entry
//	dpcc -fuzz-seed 42                 # replay a drlgen seed through the checker
//	dpcc -layoutsearch file.drl        # beam search over per-array stripe layouts
//	dpcc -metrics-addr :9090 -heartbeat 2s file.drl  # live monitoring of a long compile
//
// With no file the program is read from standard input. When stdout
// carries a machine-readable report (-report json/csv), the compiler's
// human-readable output moves to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"diskreuse/internal/apps"
	"diskreuse/internal/core"
	"diskreuse/internal/dep"
	"diskreuse/internal/interp"
	"diskreuse/internal/layout"
	"diskreuse/internal/layoutopt"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/par"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

// options bundles the command-line configuration of one dpcc run.
type options struct {
	showCode               bool
	showStats              bool
	showDeps               bool
	procs                  int
	jobs                   int
	engine                 string
	report                 string
	traceOut               string
	cpuProfile, memProfile string
	// fuzzCase replays a fuzz corpus file (or raw generator bytes) through
	// the invariant checker instead of compiling a source file; fuzzSeed
	// (when non-empty, a decimal seed) does the same from a drlgen seed.
	fuzzCase string
	fuzzSeed string
	// layoutSearch runs the layoutopt beam search on the compiled program;
	// computePerIter is the per-iteration CPU time its traces assume.
	layoutSearch   bool
	computePerIter float64
	// metricsAddr serves the live metrics registry over HTTP; heartbeat
	// prints a progress line to stderr at the given interval.
	metricsAddr string
	heartbeat   time.Duration
	// srcPath is the positional DRL file; empty reads stdin.
	srcPath string
}

func main() {
	var o options
	flag.BoolVar(&o.showCode, "code", false, "print the restructured per-disk loop nests")
	flag.BoolVar(&o.showStats, "stats", true, "print disk-reuse clustering statistics")
	flag.BoolVar(&o.showDeps, "deps", false, "print the static data dependences per nest")
	flag.IntVar(&o.procs, "procs", 1, "processors for the layout-aware parallelization report")
	flag.IntVar(&o.jobs, "jobs", 1, "worker pool for the analysis front-end (0 = all CPUs)")
	flag.StringVar(&o.engine, "engine", "compiled", "front-end execution engine: compiled (stride-compiled kernels) or interp (tree-walk oracle)")
	flag.StringVar(&o.report, "report", "", "render the stage-timing report to stdout: text, json, or csv")
	flag.StringVar(&o.traceOut, "trace-out", "", "write analysis spans as Chrome trace_event JSON to this file (load in Perfetto)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&o.fuzzCase, "fuzz-case", "", "replay a FuzzPipeline corpus file (or raw bytes) as a human-readable invariant repro")
	flag.StringVar(&o.fuzzSeed, "fuzz-seed", "", "replay a drlgen seed through the invariant checker")
	flag.BoolVar(&o.layoutSearch, "layoutsearch", false, "run the layout search engine's beam search over the program's per-array stripe layouts and print the winner")
	flag.Float64Var(&o.computePerIter, "compute-per-iter", 1e-3, "CPU seconds per loop iteration assumed by -layoutsearch trace generation")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /healthz, /debug/pprof/)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 0, "print a progress heartbeat to stderr at this interval (0 disables)")
	flag.Parse()
	if flag.NArg() > 0 {
		o.srcPath = flag.Arg(0)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dpcc:", err)
		os.Exit(1)
	}
}

func run(o options) (err error) {
	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	// Keep stdout machine-parseable when it carries JSON or CSV.
	out := io.Writer(os.Stdout)
	if o.report == "json" || o.report == "csv" {
		out = os.Stderr
	}
	if o.fuzzCase != "" || o.fuzzSeed != "" {
		return runFuzzCase(o, out)
	}
	// Live observability: the tracer's span stream doubles as per-stage
	// duration histograms on the registry (obs.WithMetrics), so an HTTP
	// scrape shows where a long compile is spending its time.
	var reg *metrics.Registry
	if o.metricsAddr != "" || o.heartbeat > 0 {
		reg = metrics.NewRegistry()
	}
	rep := metrics.NewReporter(metrics.ReporterOptions{Registry: reg, Interval: o.heartbeat})
	if o.metricsAddr != "" {
		srv, serr := metrics.Serve(o.metricsAddr, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		rep.Logf("metrics: serving http://%s/metrics", srv.Addr())
	}
	var tr *obs.Tracer
	if o.traceOut != "" || o.report != "" || reg != nil {
		tr = obs.NewTracer()
	}
	obs.WithMetrics(tr, reg)
	rep.Start()
	defer rep.Stop()

	var src []byte
	if o.srcPath != "" {
		src, err = os.ReadFile(o.srcPath)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	root := tr.Start("compile", "pipeline")
	defer root.End()
	sp := root.Child("parse")
	astProg, err := parser.Parse(string(src))
	sp.End()
	if err != nil {
		return err
	}
	sp = root.Child("sema")
	prog, err := sema.Analyze(astProg, sema.Options{})
	sp.End()
	if err != nil {
		return err
	}
	sp = root.Child("layout")
	lay, err := layout.New(prog, 0)
	sp.End()
	if err != nil {
		return err
	}
	engine, err := interp.ParseEngine(o.engine)
	if err != nil {
		return err
	}
	ctx := obs.WithPool(context.Background(), tr.Pool())
	ctx = metrics.WithRegistry(ctx, reg)
	r, err := core.NewCtx(ctx, prog, lay, core.Options{Jobs: o.jobs, Engine: engine, Span: root})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "program: %d arrays, %d nests, %d iterations, %d disks\n",
		len(prog.Arrays), len(prog.Nests), r.Space.NumIterations(), lay.NumDisks())

	if o.showDeps {
		for _, n := range prog.Nests {
			deps := dep.AnalyzeNest(n)
			fmt.Fprintf(out, "nest %s: %d static dependences\n", n.Name, len(deps))
			for _, d := range deps {
				fmt.Fprintf(out, "  %s\n", d)
			}
		}
		fmt.Fprintf(out, "exact dependence graph: %d edges\n", r.Graph.NumEdges())
	}

	if o.showStats {
		orig := core.Stats(r.OriginalSchedule(), lay.NumDisks())
		sp = root.Child("restructure")
		sched, err := r.DiskReuseSchedule()
		sp.End()
		if err != nil {
			return err
		}
		sp = root.Child("verify")
		verr := r.Verify(sched)
		sp.End()
		if verr != nil {
			return fmt.Errorf("restructured schedule failed verification: %w", verr)
		}
		restr := core.Stats(sched, lay.NumDisks())
		fmt.Fprintf(out, "original:     %s\n", orig)
		fmt.Fprintf(out, "restructured: %s\n", restr)
	}

	if o.procs > 1 {
		sp = root.Child("parallelize")
		lp, err := par.LoopParallelize(r, o.procs)
		if err != nil {
			sp.End()
			return err
		}
		la, err := par.LayoutAware(r, o.procs)
		sp.End()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loop parallelization (procs=%d): loads=%v imbalance=%.3f\n",
			o.procs, lp.Loads(), lp.Imbalance())
		fmt.Fprintf(out, "layout-aware (procs=%d):         loads=%v imbalance=%.3f\n",
			o.procs, la.Loads(), la.Imbalance())
		for k, n := range prog.Nests {
			lvl := "sequential"
			if lp.ParallelLevel[k] >= 0 {
				lvl = fmt.Sprintf("loop %d (%s)", lp.ParallelLevel[k], n.Loops[lp.ParallelLevel[k]].Var)
			}
			fmt.Fprintf(out, "  nest %-12s parallelized at %s\n", n.Name, lvl)
		}
	}

	if o.showCode {
		sp = root.Child("codegen")
		code, cerr := r.RestructuredPseudoCode()
		sp.End()
		if cerr != nil {
			return cerr
		}
		fmt.Fprintln(out, code)
	}

	if o.layoutSearch {
		name := o.srcPath
		if name == "" {
			name = "stdin"
		}
		a := apps.App{Name: name, Source: string(src), ComputePerIter: o.computePerIter}
		e, serr := layoutopt.NewEngine(a, 0)
		if serr != nil {
			return serr
		}
		res, serr := e.Search(layoutopt.SearchOptions{Jobs: o.jobs, Span: root, Metrics: reg})
		if serr != nil {
			return serr
		}
		fmt.Fprintf(out, "layout search: %d candidates in %d rounds (cache %d hits / %d misses)\n",
			res.Candidates, res.Rounds, res.CacheHits, res.CacheMisses)
		for i, s := range res.Beam {
			fmt.Fprintf(out, "  %d.", i+1)
			for ai, spec := range s.Assignment {
				fmt.Fprintf(out, " %s=%s", prog.Arrays[ai].Name,
					layoutopt.Candidate{Unit: spec.Unit, Factor: spec.Factor, Start: spec.Start})
			}
			fmt.Fprintf(out, "  T-TPM %.2f J  T-DRPM %.2f J  base %.2f J  runs %d  disks %d\n",
				s.TTPMEnergy, s.TDRPMEnergy, s.BaseEnergy, s.Runs, s.NumDisks)
		}
	}
	root.End()

	if o.report != "" {
		rep := &obs.Report{Stages: tr.Totals()}
		ps := tr.Pool().Snapshot()
		rep.Pool = &ps
		if err := rep.Render(os.Stdout, o.report); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		rep.Logf("wrote Chrome trace (%d spans) to %s", tr.SpanCount(), o.traceOut)
	}
	return nil
}
