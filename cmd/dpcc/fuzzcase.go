package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"diskreuse/internal/drlgen"
	"diskreuse/internal/invariant"
	"diskreuse/internal/sim"
)

// runFuzzCase replays a fuzzer finding (or a bare generator seed) as a
// human-readable repro: it regenerates the DRL program the fuzz input maps
// to, prints it, and runs the full invariant.Check over it, exiting
// non-zero on any violation. This turns a `testdata/fuzz/FuzzPipeline/...`
// corpus file into something a developer can stare at and iterate on
// without going back through `go test -run`.
func runFuzzCase(o options, out io.Writer) error {
	var c drlgen.Case
	if o.fuzzCase != "" {
		raw, err := os.ReadFile(o.fuzzCase)
		if err != nil {
			return err
		}
		data, err := corpusBytes(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", o.fuzzCase, err)
		}
		c = drlgen.FromBytes(data, invariant.PipelineFuzzConfig)
		fmt.Fprintf(out, "# replaying %s (%d input bytes)\n", o.fuzzCase, len(data))
	} else {
		seed, err := strconv.ParseInt(o.fuzzSeed, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -fuzz-seed %q: %w", o.fuzzSeed, err)
		}
		c = drlgen.Generate(seed, drlgen.Config{})
		fmt.Fprintf(out, "# replaying generator seed %d\n", seed)
	}
	fmt.Fprintln(out, c.Source)

	rep, err := invariant.Check(c.Source, invariant.Options{})
	if err != nil {
		return fmt.Errorf("invariant violated: %w", err)
	}
	fmt.Fprintf(out, "all invariants hold: %d iterations, %d dependence edges, %d disks, %d requests\n",
		rep.Iterations, rep.Edges, rep.Disks, rep.Requests)
	fmt.Fprintf(out, "energy: Base %.3f J, TPM %.3f J, DRPM %.3f J (original-order Base %.3f J)\n",
		rep.Energy[sim.NoPM], rep.Energy[sim.TPM], rep.Energy[sim.DRPM], rep.BaseEnergyOriginal)
	if n := rep.SpinUps + rep.SpinDowns + rep.SpeedShifts; n > 0 {
		fmt.Fprintf(out, "transitions: %d spin-ups, %d spin-downs, %d speed shifts\n",
			rep.SpinUps, rep.SpinDowns, rep.SpeedShifts)
	}
	return nil
}

// corpusBytes extracts the []byte argument from a Go fuzz corpus file
// ("go test fuzz v1" header followed by one encoded value per line). Files
// without the header are taken as raw generator input bytes.
func corpusBytes(raw []byte) ([]byte, error) {
	lines := strings.Split(string(raw), "\n")
	if strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return raw, nil
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		var quoted string
		switch {
		case strings.HasPrefix(line, "[]byte(") && strings.HasSuffix(line, ")"):
			quoted = line[len("[]byte(") : len(line)-1]
		case strings.HasPrefix(line, "string(") && strings.HasSuffix(line, ")"):
			quoted = line[len("string(") : len(line)-1]
		default:
			continue
		}
		s, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("bad corpus value %q: %w", line, err)
		}
		return []byte(s), nil
	}
	return nil, fmt.Errorf("corpus file has no []byte or string value")
}
