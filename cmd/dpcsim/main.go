// Command dpcsim is the trace-driven disk power simulator (§7.1): it reads
// an I/O request trace in the paper's five-field text format (arrival-ms,
// start block, size, R/W, processor) or the compact chunked binary format
// (sniffed automatically from the first bytes), maps blocks to I/O nodes
// using the striping parameters, and reports disk energy and I/O time
// under the selected power-management policy. A binary trace's header
// carries a disk count; it is adopted when -disks is not given explicitly.
//
// Usage:
//
//	dpcsim -policy tpm [-disks 8] [-unit 32768] [-start 0] [trace.txt]
//	dpcsim -policy all -jobs 3 trace.txt   # compare all policies at once
//	dpcsim -policy all -json trace.txt     # machine-readable results on stdout
//	dpcsim -policy all -report text trace.txt      # energy/idle-locality report
//	dpcsim -policy all -trace-out t.json trace.txt # Chrome trace (Perfetto)
//
// With no file the trace is read from standard input. -policy accepts a
// single policy, a comma-separated list (e.g. "none,tpm,drpm"), or "all";
// the trace is prepared once (sorted, disk-attributed, bucketed) and
// shared read-only by every policy. With more than one policy the
// simulations fan out over -jobs workers and the reports print in the
// order the policies were given; the same -jobs budget also shards each
// open-loop replay across its disks (sim.Config.Jobs).
//
// When stdout carries a machine-readable format (-json, or -report with
// json/csv), the human-readable result blocks move to stderr so the two
// never interleave.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/interp"
	"diskreuse/internal/obs"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
	"diskreuse/internal/viz"
)

// options bundles the command-line configuration of one dpcsim run.
type options struct {
	policy                 string
	disks                  int
	unit                   int64
	start                  int
	pageSize               int64
	perDisk                bool
	timeline               int
	jobs                   int
	engine                 string
	jsonOut                bool
	report                 string
	traceOut               string
	cpuProfile, memProfile string
	// tracePath is the positional trace-file argument; empty reads stdin.
	tracePath string
	// disksSet records whether -disks was given explicitly; when it was
	// not, a binary trace's header disk count is adopted.
	disksSet bool
}

func main() {
	var o options
	flag.StringVar(&o.policy, "policy", "none", "power management policy: none, tpm, drpm, a comma-separated list, or all")
	flag.IntVar(&o.disks, "disks", 8, "number of I/O nodes (stripe factor)")
	flag.Int64Var(&o.unit, "unit", 32<<10, "stripe unit in bytes")
	flag.IntVar(&o.start, "start", 0, "starting disk")
	flag.Int64Var(&o.pageSize, "page", 4096, "page size the trace's blocks are numbered in")
	flag.BoolVar(&o.perDisk, "perdisk", false, "print per-disk statistics")
	flag.IntVar(&o.timeline, "timeline", 0, "render an ASCII disk-activity timeline this many columns wide")
	flag.IntVar(&o.jobs, "jobs", 0, "max concurrent policy simulations and per-disk replay workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.engine, "engine", "compiled", "front-end execution engine (accepted for CLI uniformity with dpcc/dpcbench; dpcsim consumes pre-generated traces, so both engines behave identically here)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit per-policy results as JSON on stdout (human output moves to stderr)")
	flag.StringVar(&o.report, "report", "", "render the energy/idle-locality report to stdout: text, json, or csv")
	flag.StringVar(&o.traceOut, "trace-out", "", "write simulation spans as Chrome trace_event JSON to this file (load in Perfetto)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "disks" {
			o.disksSet = true
		}
	})
	if flag.NArg() > 0 {
		o.tracePath = flag.Arg(0)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dpcsim:", err)
		os.Exit(1)
	}
}

// parsePolicies expands the -policy argument into the list of policies to
// simulate, in report order.
func parsePolicies(s string) ([]sim.Policy, error) {
	if strings.EqualFold(s, "all") {
		return []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM}, nil
	}
	var pols []sim.Policy
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			pols = append(pols, sim.NoPM)
		case "tpm", "TPM":
			pols = append(pols, sim.TPM)
		case "drpm", "DRPM":
			pols = append(pols, sim.DRPM)
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("no policy given")
	}
	return pols, nil
}

// policyJSON is one policy's machine-readable result (-json output).
type policyJSON struct {
	Policy      string        `json:"policy"`
	EnergyJ     float64       `json:"energy_j"`
	NormEnergy  float64       `json:"norm_energy,omitempty"`
	IOTimeS     float64       `json:"io_time_s"`
	ResponseS   float64       `json:"response_s"`
	MakespanS   float64       `json:"makespan_s"`
	Requests    int           `json:"requests"`
	SpinUps     int           `json:"spin_ups"`
	SpeedShifts int           `json:"speed_shifts"`
	Idle        obs.IdleStats `json:"idle"`
}

func run(o options) (err error) {
	// dpcsim has no DRL front end — the trace is already generated — but the
	// flag value is validated so scripts can pass a uniform -engine to all
	// three binaries and still get typo errors.
	if _, err := interp.ParseEngine(o.engine); err != nil {
		return err
	}
	pols, err := parsePolicies(o.policy)
	if err != nil {
		return err
	}
	if o.timeline > 0 && len(pols) > 1 {
		return fmt.Errorf("-timeline requires a single policy, got %d", len(pols))
	}
	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	// Keep stdout machine-parseable when it carries JSON or CSV: the
	// human-readable result blocks (and the timeline) move to stderr.
	human := io.Writer(os.Stdout)
	if o.jsonOut || o.report == "json" || o.report == "csv" {
		human = os.Stderr
	}
	var tr *obs.Tracer
	if o.traceOut != "" || o.report != "" {
		tr = obs.NewTracer()
	}

	var in io.Reader = os.Stdin
	if o.tracePath != "" {
		f, err := os.Open(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Sniff the encoding: the binary magic starts with a non-ASCII byte,
	// so no valid text trace collides with it. The chunked binary decoder
	// reports truncated or corrupt chunk headers with the chunk index and
	// the specific framing violation.
	sp := tr.Start("decode", "pipeline")
	br := bufio.NewReader(in)
	prefix, _ := br.Peek(4)
	var reqs []trace.Request
	if trace.IsBinaryTrace(prefix) {
		rd, rerr := trace.NewReader(br)
		if rerr != nil {
			sp.End()
			return fmt.Errorf("binary trace: %w", rerr)
		}
		if hdr := rd.Header(); !o.disksSet && hdr.NumDisks > 0 {
			o.disks = hdr.NumDisks
		}
		if n := rd.Requests(); n > 0 && n <= int64(int(^uint(0)>>1)) {
			reqs = make([]trace.Request, 0, n)
		}
		for {
			chunk, cerr := rd.Next()
			if cerr == io.EOF {
				break
			}
			if cerr != nil {
				rd.Close()
				sp.End()
				return fmt.Errorf("binary trace: %w", cerr)
			}
			reqs = append(reqs, chunk...)
		}
		rd.Close()
	} else if reqs, err = trace.Decode(br); err != nil {
		sp.End()
		return err
	}
	sp.End()
	if o.unit%o.pageSize != 0 {
		return fmt.Errorf("stripe unit %d must be a multiple of the page size %d", o.unit, o.pageSize)
	}
	pagesPerStripe := o.unit / o.pageSize
	diskOf := func(block int64) (int, error) {
		if block < 0 {
			return 0, fmt.Errorf("negative block %d", block)
		}
		return o.start + int((block/pagesPerStripe)%int64(o.disks-o.start)), nil
	}
	if o.start >= o.disks {
		return fmt.Errorf("starting disk %d outside 0..%d", o.start, o.disks-1)
	}
	model := disk.Ultrastar36Z15()
	var rec *viz.Recorder
	if o.timeline > 0 {
		rec = viz.NewRecorder()
	}

	// The trace is prepared once — sorted, disk-attributed, carved per
	// disk — and shared read-only; each policy's simulation is
	// independent, so they fan out over the pool and the reports print in
	// the order the policies were given.
	sp = tr.Start("prepare-trace", "pipeline")
	pt, err := sim.PrepareTrace(reqs, diskOf, o.disks)
	sp.End()
	if err != nil {
		return err
	}
	results := make([]*sim.Result, len(pols))
	tels := make([]*obs.SimTelemetry, len(pols))
	ctx := obs.WithPool(context.Background(), tr.Pool())
	err = exp.ForEach(ctx, len(pols), o.jobs, func(_ context.Context, i int) error {
		root := tr.Start("sim", "sim")
		root.SetAttr("policy", pols[i].String())
		defer root.End()
		tels[i] = obs.NewSimTelemetry(o.disks)
		cfg := sim.Config{
			Model:     model,
			NumDisks:  o.disks,
			Policy:    pols[i],
			Jobs:      o.jobs,
			Telemetry: tels[i],
			Span:      root,
		}
		if rec != nil {
			cfg.Record = rec.Record
		}
		res, err := sim.RunPrepared(pt, cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(human)
		}
		fmt.Fprintf(human, "requests:        %d\n", res.Requests)
		fmt.Fprintf(human, "policy:          %s\n", res.Policy)
		fmt.Fprintf(human, "energy:          %.1f J\n", res.Energy)
		fmt.Fprintf(human, "disk I/O time:   %.1f ms\n", res.IOTime*1e3)
		fmt.Fprintf(human, "response time:   %.1f ms\n", res.ResponseTime*1e3)
		fmt.Fprintf(human, "makespan:        %.3f s\n", res.Makespan)
		if o.perDisk {
			for d, st := range res.PerDisk {
				fmt.Fprintf(human, "disk %d: req=%d busy=%.1fs idle=%.1fs standby=%.1fs spinups=%d shifts=%d energy=%.1fJ\n",
					d, st.Requests, st.Meter.ActiveTime, st.Meter.IdleTime, st.Meter.StandbyTime,
					st.Meter.SpinUps, st.Meter.SpeedShifts, st.Meter.Total())
			}
		}
	}
	if rec != nil {
		if err := rec.Render(human, o.timeline, model.RPMMax); err != nil {
			return err
		}
		fmt.Fprint(human, rec.Summary())
	}

	// Energy normalized to the NoPM baseline, when it was simulated.
	baseEnergy := 0.0
	for i, p := range pols {
		if p == sim.NoPM {
			baseEnergy = results[i].Energy
			break
		}
	}
	if o.jsonOut {
		out := make([]policyJSON, len(results))
		for i, res := range results {
			out[i] = policyJSON{
				Policy:    res.Policy.String(),
				EnergyJ:   res.Energy,
				IOTimeS:   res.IOTime,
				ResponseS: res.ResponseTime,
				MakespanS: res.Makespan,
				Requests:  res.Requests,
				Idle:      tels[i].IdleLocality(),
			}
			if baseEnergy > 0 {
				out[i].NormEnergy = res.Energy / baseEnergy
			}
			for _, st := range res.PerDisk {
				out[i].SpinUps += st.Meter.SpinUps
				out[i].SpeedShifts += st.Meter.SpeedShifts
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	if o.report != "" {
		rep := &obs.Report{}
		s := obs.SuiteReport{Procs: 1}
		for i, res := range results {
			idle := tels[i].IdleLocality()
			row := obs.Row{
				App:      "trace",
				Version:  res.Policy.String(),
				EnergyJ:  res.Energy,
				IOTimeS:  res.IOTime,
				Requests: res.Requests,
				Idle:     idle,
				IdleHist: obs.TrimHist(tels[i].Histogram()),
			}
			if baseEnergy > 0 {
				row.NormEnergy = res.Energy / baseEnergy
			}
			for _, st := range res.PerDisk {
				row.SpinUps += st.Meter.SpinUps
				row.SpeedShifts += st.Meter.SpeedShifts
			}
			s.Rows = append(s.Rows, row)
		}
		rep.Suites = []obs.SuiteReport{s}
		if tr != nil {
			rep.Stages = tr.Totals()
			ps := tr.Pool().Snapshot()
			rep.Pool = &ps
		}
		if err := rep.Render(os.Stdout, o.report); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace (%d spans) to %s\n", tr.SpanCount(), o.traceOut)
	}
	return nil
}
