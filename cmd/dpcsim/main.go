// Command dpcsim is the trace-driven disk power simulator (§7.1): it reads
// an I/O request trace in the paper's five-field text format (arrival-ms,
// start block, size, R/W, processor) or the compact chunked binary format
// (sniffed automatically from the first bytes), maps blocks to I/O nodes
// using the striping parameters, and reports disk energy and I/O time
// under the selected power-management policy. A binary trace's header
// carries a disk count; it is adopted when -disks is not given explicitly.
//
// Usage:
//
//	dpcsim -policy tpm [-disks 8] [-unit 32768] [-start 0] [trace.txt]
//	dpcsim -policy all -jobs 3 trace.txt   # compare all policies at once
//	dpcsim -policy all -json trace.txt     # machine-readable results on stdout
//	dpcsim -policy all -report text trace.txt      # energy/idle-locality report
//	dpcsim -policy all -trace-out t.json trace.txt # Chrome trace (Perfetto)
//	dpcsim -stream -metrics-addr :9090 -heartbeat 2s trace.bin  # monitored out-of-core run
//
// -stream replays a chunked binary trace out of core: the file is never
// slurped, each policy gets a fresh reader, and memory stays at one chunk
// regardless of trace size. It requires a binary trace file argument
// (stdin cannot be reopened per policy).
//
// -metrics-addr serves the live metrics registry over HTTP (/metrics in
// Prometheus text format, /healthz, /debug/pprof/) for the lifetime of the
// run; -heartbeat prints a progress line (requests, rate, ETA, heap,
// per-disk state mix, energy) to stderr at the given interval. Both are
// observe-only: results are bit-identical with and without them.
//
// With no file the trace is read from standard input. -policy accepts a
// single policy, a comma-separated list (e.g. "none,tpm,drpm"), or "all";
// the trace is prepared once (sorted, disk-attributed, bucketed) and
// shared read-only by every policy. With more than one policy the
// simulations fan out over -jobs workers and the reports print in the
// order the policies were given; the same -jobs budget also shards each
// open-loop replay across its disks (sim.Config.Jobs).
//
// When stdout carries a machine-readable format (-json, or -report with
// json/csv), the human-readable result blocks move to stderr so the two
// never interleave.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/interp"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
	"diskreuse/internal/viz"
)

// options bundles the command-line configuration of one dpcsim run.
type options struct {
	policy                 string
	disks                  int
	unit                   int64
	start                  int
	pageSize               int64
	perDisk                bool
	timeline               int
	jobs                   int
	engine                 string
	jsonOut                bool
	report                 string
	traceOut               string
	cpuProfile, memProfile string
	stream                 bool
	metricsAddr            string
	heartbeat              time.Duration
	// tracePath is the positional trace-file argument; empty reads stdin.
	tracePath string
	// disksSet records whether -disks was given explicitly; when it was
	// not, a binary trace's header disk count is adopted.
	disksSet bool
}

func main() {
	var o options
	flag.StringVar(&o.policy, "policy", "none", "power management policy: none, tpm, drpm, a comma-separated list, or all")
	flag.IntVar(&o.disks, "disks", 8, "number of I/O nodes (stripe factor)")
	flag.Int64Var(&o.unit, "unit", 32<<10, "stripe unit in bytes")
	flag.IntVar(&o.start, "start", 0, "starting disk")
	flag.Int64Var(&o.pageSize, "page", 4096, "page size the trace's blocks are numbered in")
	flag.BoolVar(&o.perDisk, "perdisk", false, "print per-disk statistics")
	flag.IntVar(&o.timeline, "timeline", 0, "render an ASCII disk-activity timeline this many columns wide")
	flag.IntVar(&o.jobs, "jobs", 0, "max concurrent policy simulations and per-disk replay workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.engine, "engine", "compiled", "front-end execution engine (accepted for CLI uniformity with dpcc/dpcbench; dpcsim consumes pre-generated traces, so both engines behave identically here)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit per-policy results as JSON on stdout (human output moves to stderr)")
	flag.StringVar(&o.report, "report", "", "render the energy/idle-locality report to stdout: text, json, or csv")
	flag.StringVar(&o.traceOut, "trace-out", "", "write simulation spans as Chrome trace_event JSON to this file (load in Perfetto)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.BoolVar(&o.stream, "stream", false, "replay a chunked binary trace out of core (fresh reader per policy; requires a file argument)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /healthz, /debug/pprof/)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 0, "print a progress heartbeat to stderr at this interval (0 disables)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "disks" {
			o.disksSet = true
		}
	})
	if flag.NArg() > 0 {
		o.tracePath = flag.Arg(0)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dpcsim:", err)
		os.Exit(1)
	}
}

// parsePolicies expands the -policy argument into the list of policies to
// simulate, in report order.
func parsePolicies(s string) ([]sim.Policy, error) {
	if strings.EqualFold(s, "all") {
		return []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM}, nil
	}
	var pols []sim.Policy
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			pols = append(pols, sim.NoPM)
		case "tpm", "TPM":
			pols = append(pols, sim.TPM)
		case "drpm", "DRPM":
			pols = append(pols, sim.DRPM)
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("no policy given")
	}
	return pols, nil
}

// policyJSON is one policy's machine-readable result (-json output).
type policyJSON struct {
	Policy      string        `json:"policy"`
	EnergyJ     float64       `json:"energy_j"`
	NormEnergy  float64       `json:"norm_energy,omitempty"`
	IOTimeS     float64       `json:"io_time_s"`
	ResponseS   float64       `json:"response_s"`
	MakespanS   float64       `json:"makespan_s"`
	Requests    int           `json:"requests"`
	SpinUps     int           `json:"spin_ups"`
	SpeedShifts int           `json:"speed_shifts"`
	Idle        obs.IdleStats `json:"idle"`
}

func run(o options) (err error) {
	// dpcsim has no DRL front end — the trace is already generated — but the
	// flag value is validated so scripts can pass a uniform -engine to all
	// three binaries and still get typo errors.
	if _, err := interp.ParseEngine(o.engine); err != nil {
		return err
	}
	pols, err := parsePolicies(o.policy)
	if err != nil {
		return err
	}
	if o.timeline > 0 && len(pols) > 1 {
		return fmt.Errorf("-timeline requires a single policy, got %d", len(pols))
	}
	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	// Live observability: one registry feeds the HTTP endpoint and the
	// heartbeat; the Reporter is also the shared stderr sink for one-off
	// progress lines, so nothing human ever lands on a machine stdout.
	var reg *metrics.Registry
	if o.metricsAddr != "" || o.heartbeat > 0 {
		reg = metrics.NewRegistry()
	}
	rep := metrics.NewReporter(metrics.ReporterOptions{Registry: reg, Interval: o.heartbeat})
	if o.metricsAddr != "" {
		srv, serr := metrics.Serve(o.metricsAddr, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		rep.Logf("metrics: serving http://%s/metrics", srv.Addr())
	}

	// Keep stdout machine-parseable when it carries JSON or CSV: the
	// human-readable result blocks (and the timeline) move to stderr.
	human := io.Writer(os.Stdout)
	if o.jsonOut || o.report == "json" || o.report == "csv" {
		human = os.Stderr
	}
	var tr *obs.Tracer
	if o.traceOut != "" || o.report != "" || reg != nil {
		tr = obs.NewTracer()
	}
	// Bridge ended spans into per-stage duration histograms so a /metrics
	// scrape shows where the replay is spending its time.
	obs.WithMetrics(tr, reg)

	var reqs []trace.Request
	var streamTotal int64
	if o.stream {
		if o.tracePath == "" {
			return fmt.Errorf("-stream requires a trace file argument (stdin cannot be reopened per policy)")
		}
		hdr, herr := streamHeader(o.tracePath)
		if herr != nil {
			return herr
		}
		if !o.disksSet && hdr.NumDisks > 0 {
			o.disks = hdr.NumDisks
		}
		streamTotal = hdr.NumRequests
	} else {
		var in io.Reader = os.Stdin
		if o.tracePath != "" {
			f, err := os.Open(o.tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		// Sniff the encoding: the binary magic starts with a non-ASCII byte,
		// so no valid text trace collides with it. The chunked binary decoder
		// reports truncated or corrupt chunk headers with the chunk index and
		// the specific framing violation.
		sp := tr.Start("decode", "pipeline")
		br := bufio.NewReader(in)
		prefix, _ := br.Peek(4)
		if trace.IsBinaryTrace(prefix) {
			rd, rerr := trace.NewReader(br)
			if rerr != nil {
				sp.End()
				return fmt.Errorf("binary trace: %w", rerr)
			}
			if hdr := rd.Header(); !o.disksSet && hdr.NumDisks > 0 {
				o.disks = hdr.NumDisks
			}
			if n := rd.Requests(); n > 0 && n <= int64(int(^uint(0)>>1)) {
				reqs = make([]trace.Request, 0, n)
			}
			for {
				chunk, cerr := rd.Next()
				if cerr == io.EOF {
					break
				}
				if cerr != nil {
					rd.Close()
					sp.End()
					return fmt.Errorf("binary trace: %w", cerr)
				}
				reqs = append(reqs, chunk...)
			}
			rd.Close()
		} else if reqs, err = trace.Decode(br); err != nil {
			sp.End()
			return err
		}
		sp.End()
	}
	if o.unit%o.pageSize != 0 {
		return fmt.Errorf("stripe unit %d must be a multiple of the page size %d", o.unit, o.pageSize)
	}
	pagesPerStripe := o.unit / o.pageSize
	diskOf := func(block int64) (int, error) {
		if block < 0 {
			return 0, fmt.Errorf("negative block %d", block)
		}
		return o.start + int((block/pagesPerStripe)%int64(o.disks-o.start)), nil
	}
	if o.start >= o.disks {
		return fmt.Errorf("starting disk %d outside 0..%d", o.start, o.disks-1)
	}
	model := disk.Ultrastar36Z15()
	var rec *viz.Recorder
	if o.timeline > 0 {
		rec = viz.NewRecorder()
	}

	results := make([]*sim.Result, len(pols))
	tels := make([]*obs.SimTelemetry, len(pols))
	total := streamTotal
	if !o.stream {
		total = int64(len(reqs))
	}
	rep.SetTotal(total * int64(len(pols)))
	rep.Start()
	defer rep.Stop()
	if o.stream {
		// Each policy replays sequentially from a fresh reader: the binary
		// file is the shared store, memory stays at one chunk, and the
		// per-disk state gauges always describe the one live simulation.
		for i := range pols {
			if err := o.runStreamPolicy(pols[i], i, reg, tr, rec, model, diskOf, results, tels); err != nil {
				return err
			}
		}
	} else {
		// The trace is prepared once — sorted, disk-attributed, carved per
		// disk — and shared read-only; each policy's simulation is
		// independent, so they fan out over the pool and the reports print in
		// the order the policies were given.
		sp := tr.Start("prepare-trace", "pipeline")
		pt, perr := sim.PrepareTrace(reqs, diskOf, o.disks)
		sp.End()
		if perr != nil {
			return perr
		}
		ctx := obs.WithPool(context.Background(), tr.Pool())
		ctx = metrics.WithRegistry(ctx, reg)
		err = exp.ForEach(ctx, len(pols), o.jobs, func(_ context.Context, i int) error {
			root := tr.Start("sim", "sim")
			root.SetAttr("policy", pols[i].String())
			defer root.End()
			tels[i] = obs.NewSimTelemetry(o.disks)
			cfg := sim.Config{
				Model:     model,
				NumDisks:  o.disks,
				Policy:    pols[i],
				Jobs:      o.jobs,
				Telemetry: tels[i],
				Span:      root,
				Metrics:   reg,
			}
			if rec != nil {
				cfg.Record = rec.Record
			}
			res, err := sim.RunPrepared(pt, cfg)
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Halt the heartbeat before the result blocks so stderr lines never
	// interleave with them (Stop is idempotent; the defer backs up early
	// returns).
	rep.Stop()

	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(human)
		}
		fmt.Fprintf(human, "requests:        %d\n", res.Requests)
		fmt.Fprintf(human, "policy:          %s\n", res.Policy)
		fmt.Fprintf(human, "energy:          %.1f J\n", res.Energy)
		fmt.Fprintf(human, "disk I/O time:   %.1f ms\n", res.IOTime*1e3)
		fmt.Fprintf(human, "response time:   %.1f ms\n", res.ResponseTime*1e3)
		fmt.Fprintf(human, "makespan:        %.3f s\n", res.Makespan)
		if o.perDisk {
			for d, st := range res.PerDisk {
				fmt.Fprintf(human, "disk %d: req=%d busy=%.1fs idle=%.1fs standby=%.1fs spinups=%d shifts=%d energy=%.1fJ\n",
					d, st.Requests, st.Meter.ActiveTime, st.Meter.IdleTime, st.Meter.StandbyTime,
					st.Meter.SpinUps, st.Meter.SpeedShifts, st.Meter.Total())
			}
		}
	}
	if rec != nil {
		if err := rec.Render(human, o.timeline, model.RPMMax); err != nil {
			return err
		}
		fmt.Fprint(human, rec.Summary())
	}

	// Energy normalized to the NoPM baseline, when it was simulated.
	baseEnergy := 0.0
	for i, p := range pols {
		if p == sim.NoPM {
			baseEnergy = results[i].Energy
			break
		}
	}
	if o.jsonOut {
		out := make([]policyJSON, len(results))
		for i, res := range results {
			out[i] = policyJSON{
				Policy:    res.Policy.String(),
				EnergyJ:   res.Energy,
				IOTimeS:   res.IOTime,
				ResponseS: res.ResponseTime,
				MakespanS: res.Makespan,
				Requests:  res.Requests,
				Idle:      tels[i].IdleLocality(),
			}
			if baseEnergy > 0 {
				out[i].NormEnergy = res.Energy / baseEnergy
			}
			for _, st := range res.PerDisk {
				out[i].SpinUps += st.Meter.SpinUps
				out[i].SpeedShifts += st.Meter.SpeedShifts
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	if o.report != "" {
		rep := &obs.Report{}
		s := obs.SuiteReport{Procs: 1}
		for i, res := range results {
			idle := tels[i].IdleLocality()
			row := obs.Row{
				App:      "trace",
				Version:  res.Policy.String(),
				EnergyJ:  res.Energy,
				IOTimeS:  res.IOTime,
				Requests: res.Requests,
				Idle:     idle,
				IdleHist: obs.TrimHist(tels[i].Histogram()),
			}
			if baseEnergy > 0 {
				row.NormEnergy = res.Energy / baseEnergy
			}
			for _, st := range res.PerDisk {
				row.SpinUps += st.Meter.SpinUps
				row.SpeedShifts += st.Meter.SpeedShifts
			}
			s.Rows = append(s.Rows, row)
		}
		rep.Suites = []obs.SuiteReport{s}
		if tr != nil {
			rep.Stages = tr.Totals()
			ps := tr.Pool().Snapshot()
			rep.Pool = &ps
		}
		if err := rep.Render(os.Stdout, o.report); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		rep.Logf("wrote Chrome trace (%d spans) to %s", tr.SpanCount(), o.traceOut)
	}
	return nil
}

// streamHeader opens path just long enough to read the chunked binary
// header: -stream adopts its disk count and sizes the heartbeat from its
// request count without decoding any chunk.
func streamHeader(path string) (trace.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Header{}, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, _ := br.Peek(4)
	if !trace.IsBinaryTrace(prefix) {
		return trace.Header{}, fmt.Errorf("-stream requires the chunked binary trace format (synthesize one with dpcbench -scale -scale-file)")
	}
	rd, err := trace.NewReader(br)
	if err != nil {
		return trace.Header{}, fmt.Errorf("binary trace: %w", err)
	}
	defer rd.Close()
	return rd.Header(), nil
}

// runStreamPolicy replays one policy out of core from a fresh reader over
// the binary trace file, publishing decode and replay progress to reg.
func (o options) runStreamPolicy(pol sim.Policy, i int, reg *metrics.Registry, tr *obs.Tracer, rec *viz.Recorder, model disk.Model, diskOf func(block int64) (int, error), results []*sim.Result, tels []*obs.SimTelemetry) error {
	f, err := os.Open(o.tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("binary trace: %w", err)
	}
	defer rd.Close()
	rd.SetMetrics(reg)
	root := tr.Start("sim", "sim")
	root.SetAttr("policy", pol.String())
	defer root.End()
	tels[i] = obs.NewSimTelemetry(o.disks)
	cfg := sim.Config{
		Model:     model,
		NumDisks:  o.disks,
		Policy:    pol,
		Jobs:      o.jobs,
		Telemetry: tels[i],
		Span:      root,
		Metrics:   reg,
	}
	if rec != nil {
		cfg.Record = rec.Record
	}
	res, err := sim.RunStream(rd, diskOf, cfg)
	if err != nil {
		return err
	}
	results[i] = res
	return nil
}
