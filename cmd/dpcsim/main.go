// Command dpcsim is the trace-driven disk power simulator (§7.1): it reads
// an I/O request trace in the paper's five-field text format (arrival-ms,
// start block, size, R/W, processor), maps blocks to I/O nodes using the
// striping parameters, and reports disk energy and I/O time under the
// selected power-management policy.
//
// Usage:
//
//	dpcsim -policy tpm [-disks 8] [-unit 32768] [-start 0] [trace.txt]
//	dpcsim -policy all -jobs 3 trace.txt   # compare all policies at once
//
// With no file the trace is read from standard input. -policy accepts a
// single policy, a comma-separated list (e.g. "none,tpm,drpm"), or "all";
// the trace is prepared once (sorted, disk-attributed, bucketed) and
// shared read-only by every policy. With more than one policy the
// simulations fan out over -jobs workers and the reports print in the
// order the policies were given; the same -jobs budget also shards each
// open-loop replay across its disks (sim.Config.Jobs).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
	"diskreuse/internal/viz"
)

func main() {
	var (
		policy   = flag.String("policy", "none", "power management policy: none, tpm, drpm, a comma-separated list, or all")
		disks    = flag.Int("disks", 8, "number of I/O nodes (stripe factor)")
		unit     = flag.Int64("unit", 32<<10, "stripe unit in bytes")
		start    = flag.Int("start", 0, "starting disk")
		pageSize = flag.Int64("page", 4096, "page size the trace's blocks are numbered in")
		perDisk  = flag.Bool("perdisk", false, "print per-disk statistics")
		timeline = flag.Int("timeline", 0, "render an ASCII disk-activity timeline this many columns wide")
		jobs     = flag.Int("jobs", 0, "max concurrent policy simulations and per-disk replay workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*policy, *disks, *unit, *start, *pageSize, *perDisk, *timeline, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "dpcsim:", err)
		os.Exit(1)
	}
}

// parsePolicies expands the -policy argument into the list of policies to
// simulate, in report order.
func parsePolicies(s string) ([]sim.Policy, error) {
	if strings.EqualFold(s, "all") {
		return []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM}, nil
	}
	var pols []sim.Policy
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			pols = append(pols, sim.NoPM)
		case "tpm", "TPM":
			pols = append(pols, sim.TPM)
		case "drpm", "DRPM":
			pols = append(pols, sim.DRPM)
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("no policy given")
	}
	return pols, nil
}

func run(policy string, disks int, unit int64, start int, pageSize int64, perDisk bool, timeline, jobs int) error {
	pols, err := parsePolicies(policy)
	if err != nil {
		return err
	}
	if timeline > 0 && len(pols) > 1 {
		return fmt.Errorf("-timeline requires a single policy, got %d", len(pols))
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	reqs, err := trace.Decode(in)
	if err != nil {
		return err
	}
	if unit%pageSize != 0 {
		return fmt.Errorf("stripe unit %d must be a multiple of the page size %d", unit, pageSize)
	}
	pagesPerStripe := unit / pageSize
	diskOf := func(block int64) (int, error) {
		if block < 0 {
			return 0, fmt.Errorf("negative block %d", block)
		}
		return start + int((block/pagesPerStripe)%int64(disks-start)), nil
	}
	if start >= disks {
		return fmt.Errorf("starting disk %d outside 0..%d", start, disks-1)
	}
	model := disk.Ultrastar36Z15()
	var rec *viz.Recorder
	if timeline > 0 {
		rec = viz.NewRecorder()
	}

	// The trace is prepared once — sorted, disk-attributed, carved per
	// disk — and shared read-only; each policy's simulation is
	// independent, so they fan out over the pool and the reports print in
	// the order the policies were given.
	pt, err := sim.PrepareTrace(reqs, diskOf, disks)
	if err != nil {
		return err
	}
	results := make([]*sim.Result, len(pols))
	err = exp.ForEach(context.Background(), len(pols), jobs, func(_ context.Context, i int) error {
		cfg := sim.Config{
			Model:    model,
			NumDisks: disks,
			Policy:   pols[i],
			Jobs:     jobs,
		}
		if rec != nil {
			cfg.Record = rec.Record
		}
		res, err := sim.RunPrepared(pt, cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("requests:        %d\n", res.Requests)
		fmt.Printf("policy:          %s\n", res.Policy)
		fmt.Printf("energy:          %.1f J\n", res.Energy)
		fmt.Printf("disk I/O time:   %.1f ms\n", res.IOTime*1e3)
		fmt.Printf("response time:   %.1f ms\n", res.ResponseTime*1e3)
		fmt.Printf("makespan:        %.3f s\n", res.Makespan)
		if perDisk {
			for d, st := range res.PerDisk {
				fmt.Printf("disk %d: req=%d busy=%.1fs idle=%.1fs standby=%.1fs spinups=%d shifts=%d energy=%.1fJ\n",
					d, st.Requests, st.Meter.ActiveTime, st.Meter.IdleTime, st.Meter.StandbyTime,
					st.Meter.SpinUps, st.Meter.SpeedShifts, st.Meter.Total())
			}
		}
	}
	if rec != nil {
		if err := rec.Render(os.Stdout, timeline, model.RPMMax); err != nil {
			return err
		}
		fmt.Print(rec.Summary())
	}
	return nil
}
