package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskreuse/internal/trace"
)

// binReqs is the binary-sniffing tests' workload: two bursts with a
// spin-down-worthy gap, like traceText but written programmatically.
var binReqs = []trace.Request{
	{Arrival: 0.000, Block: 0, Size: 4096, Proc: 0},
	{Arrival: 0.005, Block: 1, Size: 4096, Proc: 0},
	{Arrival: 0.010, Block: 8, Size: 4096, Write: true, Proc: 0},
	{Arrival: 50.000, Block: 0, Size: 4096, Proc: 0},
	{Arrival: 50.005, Block: 16, Size: 4096, Proc: 0},
}

func writeBinaryTrace(t *testing.T, reqs []trace.Request, numDisks int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, reqs, 0, numDisks); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.dpct")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBinaryTraceSniff: a binary trace file is detected from its magic and
// replays to the same report as the equivalent text trace.
func TestBinaryTraceSniff(t *testing.T) {
	binPath := writeBinaryTrace(t, binReqs, 8)
	var text bytes.Buffer
	if err := trace.Encode(&text, binReqs); err != nil {
		t.Fatal(err)
	}
	base := options{policy: "all", disks: 8, unit: 32 << 10, pageSize: 4096, jobs: 1, disksSet: true}

	ob := base
	ob.tracePath = binPath
	fromBinary := withStdio(t, "", func() error { return run(ob) })
	fromText := withStdio(t, text.String(), func() error { return run(base) })
	if fromBinary != fromText {
		t.Errorf("binary and text replays of the same trace differ:\n--- binary ---\n%s--- text ---\n%s", fromBinary, fromText)
	}
	if !strings.Contains(fromBinary, "requests:        5") {
		t.Errorf("binary replay output:\n%s", fromBinary)
	}
}

// TestBinaryTraceAdoptsHeaderDisks: without an explicit -disks, the disk
// count comes from the binary header.
func TestBinaryTraceAdoptsHeaderDisks(t *testing.T) {
	o := options{policy: "none", disks: 8, unit: 32 << 10, pageSize: 4096, jobs: 1, perDisk: true,
		tracePath: writeBinaryTrace(t, binReqs, 4)}
	out := withStdio(t, "", func() error { return run(o) })
	if !strings.Contains(out, "disk 3:") || strings.Contains(out, "disk 4:") {
		t.Errorf("expected 4 per-disk rows from the header's disk count, got:\n%s", out)
	}
}

// TestBinaryTraceTruncated: a cut-short binary trace fails with a clear
// error instead of replaying a partial workload.
func TestBinaryTraceTruncated(t *testing.T) {
	path := writeBinaryTrace(t, binReqs, 8)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{policy: "none", disks: 8, unit: 32 << 10, pageSize: 4096, jobs: 1, disksSet: true, tracePath: path}
	err = run(o)
	if err == nil {
		t.Fatal("truncated binary trace replayed without error")
	}
	if !strings.Contains(err.Error(), "binary trace") || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncation error should diagnose the cut: %v", err)
	}
}
