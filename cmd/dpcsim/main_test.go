package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// traceText is a small five-field trace: four bursts with a long gap, so
// TPM has something to spin down for.
const traceText = `# arrival-ms block size type proc
0.0 0 4096 R 0
5.0 1 4096 R 0
10.0 8 4096 W 0
50000.0 0 4096 R 0
50005.0 16 4096 R 0
`

func withStdio(t *testing.T, src string, fn func() error) string {
	t.Helper()
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inR, outW
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()
	go func() {
		inW.WriteString(src)
		inW.Close()
	}()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func resetFlags(t *testing.T) {
	t.Helper()
	oldArgs := os.Args
	os.Args = []string{"dpcsim"}
	t.Cleanup(func() { os.Args = oldArgs })
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"none", "tpm", "drpm"} {
		resetFlags(t)
		out := withStdio(t, traceText, func() error {
			return run(pol, 4, 32<<10, 0, 4096, true, 60, 1)
		})
		for _, want := range []string{"requests:        5", "energy:", "disk I/O time:", "disk 0:"} {
			if !strings.Contains(out, want) {
				t.Errorf("policy %s output missing %q:\n%s", pol, want, out)
			}
		}
	}
}

func TestRunTPMSleeps(t *testing.T) {
	resetFlags(t)
	out := withStdio(t, traceText, func() error {
		return run("tpm", 4, 32<<10, 0, 4096, true, 60, 1)
	})
	if !strings.Contains(out, "spinups=1") {
		t.Errorf("expected one spin-up on disk 0:\n%s", out)
	}
}

// TestRunAllPolicies drives the multi-policy fan-out: "-policy all" must
// print one report block per policy, in the fixed none/TPM/DRPM order,
// regardless of how many workers simulate concurrently.
func TestRunAllPolicies(t *testing.T) {
	for _, jobs := range []int{1, 3} {
		resetFlags(t)
		out := withStdio(t, traceText, func() error {
			return run("all", 4, 32<<10, 0, 4096, false, 0, jobs)
		})
		for _, want := range []string{"policy:          NoPM", "policy:          TPM", "policy:          DRPM"} {
			if !strings.Contains(out, want) {
				t.Errorf("jobs=%d output missing %q:\n%s", jobs, want, out)
			}
		}
		if i, j := strings.Index(out, "NoPM"), strings.Index(out, "DRPM"); i > j {
			t.Errorf("jobs=%d: policy reports out of order:\n%s", jobs, out)
		}
		if got := strings.Count(out, "requests:        5"); got != 3 {
			t.Errorf("jobs=%d: want 3 report blocks, got %d:\n%s", jobs, got, out)
		}
	}
}

// The comma-list form selects exactly the named policies.
func TestRunPolicyList(t *testing.T) {
	resetFlags(t)
	out := withStdio(t, traceText, func() error {
		return run("tpm,drpm", 4, 32<<10, 0, 4096, false, 0, 2)
	})
	if strings.Contains(out, "NoPM") {
		t.Errorf("NoPM should not run for \"tpm,drpm\":\n%s", out)
	}
	if !strings.Contains(out, "TPM") || !strings.Contains(out, "DRPM") {
		t.Errorf("missing policy report:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	resetFlags(t)
	if err := run("warp", 4, 32<<10, 0, 4096, false, 0, 1); err == nil {
		t.Error("unknown policy must fail")
	}
	if err := run("none", 4, 1000, 0, 4096, false, 0, 1); err == nil {
		t.Error("unit not multiple of page must fail")
	}
	if err := run("none", 4, 32<<10, 9, 4096, false, 0, 1); err == nil {
		t.Error("start >= disks must fail")
	}
	if err := run("all", 4, 32<<10, 0, 4096, false, 40, 1); err == nil {
		t.Error("-timeline with multiple policies must fail")
	}
	// Malformed trace on stdin.
	resetFlags(t)
	inR, inW, _ := os.Pipe()
	oldIn := os.Stdin
	os.Stdin = inR
	defer func() { os.Stdin = oldIn }()
	go func() {
		inW.WriteString("not a trace line\n")
		inW.Close()
	}()
	if err := run("none", 4, 32<<10, 0, 4096, false, 0, 1); err == nil {
		t.Error("bad trace must fail")
	}
}
