package main

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

// traceText is a small five-field trace: four bursts with a long gap, so
// TPM has something to spin down for.
const traceText = `# arrival-ms block size type proc
0.0 0 4096 R 0
5.0 1 4096 R 0
10.0 8 4096 W 0
50000.0 0 4096 R 0
50005.0 16 4096 R 0
`

func withStdio(t *testing.T, src string, fn func() error) string {
	t.Helper()
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inR, outW
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()
	go func() {
		inW.WriteString(src)
		inW.Close()
	}()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func resetFlags(t *testing.T) {
	t.Helper()
	oldArgs := os.Args
	os.Args = []string{"dpcsim"}
	t.Cleanup(func() { os.Args = oldArgs })
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(nil); err != nil {
		t.Fatal(err)
	}
}

// base returns the options every test starts from: 4 disks, default
// striping, trace on stdin.
func base() options {
	return options{disks: 4, unit: 32 << 10, pageSize: 4096, jobs: 1}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"none", "tpm", "drpm"} {
		resetFlags(t)
		o := base()
		o.policy, o.perDisk, o.timeline = pol, true, 60
		out := withStdio(t, traceText, func() error { return run(o) })
		for _, want := range []string{"requests:        5", "energy:", "disk I/O time:", "disk 0:"} {
			if !strings.Contains(out, want) {
				t.Errorf("policy %s output missing %q:\n%s", pol, want, out)
			}
		}
	}
}

func TestRunTPMSleeps(t *testing.T) {
	resetFlags(t)
	o := base()
	o.policy, o.perDisk, o.timeline = "tpm", true, 60
	out := withStdio(t, traceText, func() error { return run(o) })
	if !strings.Contains(out, "spinups=1") {
		t.Errorf("expected one spin-up on disk 0:\n%s", out)
	}
}

// TestRunAllPolicies drives the multi-policy fan-out: "-policy all" must
// print one report block per policy, in the fixed none/TPM/DRPM order,
// regardless of how many workers simulate concurrently.
func TestRunAllPolicies(t *testing.T) {
	for _, jobs := range []int{1, 3} {
		resetFlags(t)
		o := base()
		o.policy, o.jobs = "all", jobs
		out := withStdio(t, traceText, func() error { return run(o) })
		for _, want := range []string{"policy:          NoPM", "policy:          TPM", "policy:          DRPM"} {
			if !strings.Contains(out, want) {
				t.Errorf("jobs=%d output missing %q:\n%s", jobs, want, out)
			}
		}
		if i, j := strings.Index(out, "NoPM"), strings.Index(out, "DRPM"); i > j {
			t.Errorf("jobs=%d: policy reports out of order:\n%s", jobs, out)
		}
		if got := strings.Count(out, "requests:        5"); got != 3 {
			t.Errorf("jobs=%d: want 3 report blocks, got %d:\n%s", jobs, got, out)
		}
	}
}

// The comma-list form selects exactly the named policies.
func TestRunPolicyList(t *testing.T) {
	resetFlags(t)
	o := base()
	o.policy, o.jobs = "tpm,drpm", 2
	out := withStdio(t, traceText, func() error { return run(o) })
	if strings.Contains(out, "NoPM") {
		t.Errorf("NoPM should not run for \"tpm,drpm\":\n%s", out)
	}
	if !strings.Contains(out, "TPM") || !strings.Contains(out, "DRPM") {
		t.Errorf("missing policy report:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	resetFlags(t)
	o := base()
	o.policy = "warp"
	if err := run(o); err == nil {
		t.Error("unknown policy must fail")
	}
	o = base()
	o.policy, o.unit = "none", 1000
	if err := run(o); err == nil {
		t.Error("unit not multiple of page must fail")
	}
	o = base()
	o.policy, o.start = "none", 9
	if err := run(o); err == nil {
		t.Error("start >= disks must fail")
	}
	o = base()
	o.policy, o.timeline = "all", 40
	if err := run(o); err == nil {
		t.Error("-timeline with multiple policies must fail")
	}
	// Malformed trace on stdin.
	resetFlags(t)
	inR, inW, _ := os.Pipe()
	oldIn := os.Stdin
	os.Stdin = inR
	defer func() { os.Stdin = oldIn }()
	go func() {
		inW.WriteString("not a trace line\n")
		inW.Close()
	}()
	o = base()
	o.policy = "none"
	if err := run(o); err == nil {
		t.Error("bad trace must fail")
	}
}

// TestJSONStdout is the -json contract: stdout holds exactly one JSON
// document (the human result blocks move to stderr), with TPM spin-ups and
// a NoPM-normalized energy for every policy.
func TestJSONStdout(t *testing.T) {
	resetFlags(t)
	o := base()
	o.policy, o.jsonOut, o.perDisk = "all", true, true // perDisk output must not pollute stdout
	out := withStdio(t, traceText, func() error { return run(o) })
	var pols []struct {
		Policy     string  `json:"policy"`
		EnergyJ    float64 `json:"energy_j"`
		NormEnergy float64 `json:"norm_energy"`
		SpinUps    int     `json:"spin_ups"`
		Idle       struct {
			Periods      int     `json:"periods"`
			LongestIdleS float64 `json:"longest_idle_s"`
		} `json:"idle"`
	}
	if err := json.Unmarshal([]byte(out), &pols); err != nil {
		t.Fatalf("stdout is not a single JSON document: %v\n%s", err, out)
	}
	if len(pols) != 3 || pols[0].Policy != "NoPM" || pols[1].Policy != "TPM" || pols[2].Policy != "DRPM" {
		t.Fatalf("wrong policies: %+v", pols)
	}
	if pols[0].NormEnergy != 1 {
		t.Errorf("NoPM norm_energy = %v, want 1", pols[0].NormEnergy)
	}
	if pols[1].SpinUps == 0 {
		t.Error("TPM should spin up at least once on this trace")
	}
	for _, p := range pols {
		if p.Idle.Periods == 0 || p.Idle.LongestIdleS < 40 {
			t.Errorf("%s: idle telemetry %+v (the trace has a ~50 s gap)", p.Policy, p.Idle)
		}
	}
}

// TestReportStdout drives -report json: suite rows per policy plus stage
// timings with the simulator's per-disk shard spans.
func TestReportStdout(t *testing.T) {
	resetFlags(t)
	o := base()
	o.policy, o.report, o.jobs = "all", "json", 2
	out := withStdio(t, traceText, func() error { return run(o) })
	var rep struct {
		Suites []struct {
			Rows []struct {
				App        string  `json:"app"`
				Version    string  `json:"version"`
				NormEnergy float64 `json:"norm_energy"`
			} `json:"rows"`
		} `json:"suites"`
		Stages []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, out)
	}
	if len(rep.Suites) != 1 || len(rep.Suites[0].Rows) != 3 {
		t.Fatalf("wrong report shape: %+v", rep.Suites)
	}
	if r := rep.Suites[0].Rows[0]; r.App != "trace" || r.Version != "NoPM" || r.NormEnergy != 1 {
		t.Errorf("first row = %+v", r)
	}
	stages := make(map[string]int)
	for _, st := range rep.Stages {
		stages[st.Name] = st.Count
	}
	if stages["decode"] != 1 || stages["prepare-trace"] != 1 || stages["sim"] != 3 || stages["disk-replay"] != 12 {
		t.Errorf("stage counts = %v", stages)
	}
}

// TestTraceOut checks the Chrome trace export parses and has span events.
func TestTraceOut(t *testing.T) {
	resetFlags(t)
	path := t.TempDir() + "/trace.json"
	o := base()
	o.policy, o.traceOut = "all", path
	withStdio(t, traceText, func() error { return run(o) })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("bad trace JSON: %v", err)
	}
	spans := 0
	names := make(map[string]bool)
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			spans++
			names[ev.Name] = true
		}
	}
	if spans == 0 {
		t.Fatal("no span events")
	}
	for _, want := range []string{"decode", "prepare-trace", "sim", "disk-replay"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}
