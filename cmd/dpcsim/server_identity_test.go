package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/exp"
	"diskreuse/internal/server"
	"diskreuse/internal/trace"
)

// TestServedSimulateMatchesDpcsim cross-checks the two front doors of the
// simulator: a dpcd-served simulate result must equal what dpcsim reports
// when replaying the very same generated trace. The trace travels through
// the exact binary codec (the text format rounds arrival times), the
// program uses a single default-striped array so dpcsim's modular block
// mapping and the layout engine's extent mapping agree, and the three
// requested versions (Base, TPM, DRPM) replay the original schedule —
// exactly what the exported trace holds. Every compared number must be
// bit-identical.
func TestServedSimulateMatchesDpcsim(t *testing.T) {
	const prog = `array A[96][8] elem 4096 stripe(unit=32K, factor=8, start=0)
nest Sweep {
  for i = 0 to 95 {
    for j = 0 to 7 {
      A[i][j] = A[i][j];
    }
  }
}
nest Back {
  for j = 0 to 7 {
    for i = 0 to 95 {
      A[i][j] = A[i][j];
    }
  }
}
`
	const cpi = 2e-6

	// Server side: POST the program, simulate Base/TPM/DRPM.
	srv := server.New(server.Config{Jobs: 1})
	body, _ := json.Marshal(server.SimulateRequest{
		CompileRequest: server.CompileRequest{Program: prog, ComputePerIter: cpi},
		Versions:       []string{"Base", "TPM", "DRPM"},
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", rec.Code, rec.Body)
	}
	var resp server.SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}

	// dpcsim side: prepare the identical artifacts, export the original
	// schedule's trace in the exact binary format, and replay it through
	// dpcsim's own run path with -json.
	art, err := exp.PrepareApp(context.Background(),
		apps.App{Name: "ident", Source: prog, ComputePerIter: cpi},
		exp.Options{Procs: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := art.TraceFor(exp.VBase)
	if len(reqs) == 0 {
		t.Fatal("no generated trace for Base")
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeBinary(f, reqs, 1, art.NumDisks()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	resetFlags(t)
	o := options{disks: 8, unit: 32 << 10, pageSize: 4096, jobs: 1,
		policy: "none,tpm,drpm", jsonOut: true, tracePath: path}
	out := withStdio(t, "", func() error { return run(o) })
	var pols []policyJSON
	if err := json.Unmarshal([]byte(out), &pols); err != nil {
		t.Fatalf("dpcsim -json output: %v\n%s", err, out)
	}
	if len(pols) != 3 {
		t.Fatalf("dpcsim reported %d policies, want 3", len(pols))
	}

	for i, vr := range resp.Results {
		pj := pols[i]
		if vr.EnergyJ != pj.EnergyJ {
			t.Errorf("%s: served energy %v != dpcsim %v", vr.Version, vr.EnergyJ, pj.EnergyJ)
		}
		if vr.NormEnergy != pj.NormEnergy {
			t.Errorf("%s: served norm_energy %v != dpcsim %v", vr.Version, vr.NormEnergy, pj.NormEnergy)
		}
		if vr.IOTimeS != pj.IOTimeS {
			t.Errorf("%s: served io_time %v != dpcsim %v", vr.Version, vr.IOTimeS, pj.IOTimeS)
		}
		if vr.ResponseS != pj.ResponseS {
			t.Errorf("%s: served response %v != dpcsim %v", vr.Version, vr.ResponseS, pj.ResponseS)
		}
		if vr.Requests != pj.Requests {
			t.Errorf("%s: served requests %d != dpcsim %d", vr.Version, vr.Requests, pj.Requests)
		}
		if vr.SpinUps != pj.SpinUps || vr.SpeedShifts != pj.SpeedShifts {
			t.Errorf("%s: served spin-ups/shifts %d/%d != dpcsim %d/%d",
				vr.Version, vr.SpinUps, vr.SpeedShifts, pj.SpinUps, pj.SpeedShifts)
		}
		if vr.Idle != pj.Idle {
			t.Errorf("%s: served idle telemetry %+v != dpcsim %+v", vr.Version, vr.Idle, pj.Idle)
		}
	}
}
