package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStreamMatchesPrepared: -stream must produce byte-identical result
// blocks to the in-memory replay of the same binary trace, for every
// policy, with and without live metrics enabled.
func TestStreamMatchesPrepared(t *testing.T) {
	path := writeBinaryTrace(t, binReqs, 8)
	mk := func(stream bool, addr string) options {
		o := options{policy: "all", disks: 8, unit: 32 << 10, pageSize: 4096,
			jobs: 1, perDisk: true, disksSet: true, tracePath: path}
		o.stream = stream
		o.metricsAddr = addr
		return o
	}
	prepared := withStdio(t, "", func() error { return run(mk(false, "")) })
	streamed := withStdio(t, "", func() error { return run(mk(true, "")) })
	if prepared != streamed {
		t.Errorf("-stream results differ from the prepared replay:\n--- prepared ---\n%s--- stream ---\n%s", prepared, streamed)
	}
	monitored := withStdio(t, "", func() error { return run(mk(true, "127.0.0.1:0")) })
	if monitored != streamed {
		t.Errorf("-metrics-addr perturbed the -stream results:\n--- plain ---\n%s--- monitored ---\n%s", streamed, monitored)
	}
	if !strings.Contains(streamed, "requests:        5") {
		t.Errorf("stream replay output:\n%s", streamed)
	}
}

// TestStreamJSONPureStdout: with -stream, -json, and a heartbeat running,
// stdout still holds exactly one JSON document — every human line
// (heartbeat, metrics announcement) stays on stderr.
func TestStreamJSONPureStdout(t *testing.T) {
	o := options{policy: "all", disks: 8, unit: 32 << 10, pageSize: 4096,
		jobs: 1, perDisk: true, disksSet: true, jsonOut: true,
		stream: true, heartbeat: time.Millisecond,
		tracePath: writeBinaryTrace(t, binReqs, 8)}
	out := withStdio(t, "", func() error { return run(o) })
	var pols []struct {
		Policy   string `json:"policy"`
		Requests int    `json:"requests"`
	}
	if err := json.Unmarshal([]byte(out), &pols); err != nil {
		t.Fatalf("stdout is not a single JSON document: %v\n%s", err, out)
	}
	if len(pols) != 3 || pols[0].Policy != "NoPM" || pols[2].Policy != "DRPM" {
		t.Fatalf("wrong policies: %+v", pols)
	}
	for _, p := range pols {
		if p.Requests != len(binReqs) {
			t.Errorf("%s replayed %d requests, want %d", p.Policy, p.Requests, len(binReqs))
		}
	}
}

// -stream needs a reopenable binary file: stdin and text traces must fail
// with errors that say why.
func TestStreamErrors(t *testing.T) {
	o := options{policy: "none", disks: 4, unit: 32 << 10, pageSize: 4096, jobs: 1, stream: true}
	if err := run(o); err == nil || !strings.Contains(err.Error(), "trace file") {
		t.Errorf("-stream from stdin: %v", err)
	}
	var text bytes.Buffer
	text.WriteString(traceText)
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, text.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	o.tracePath = path
	if err := run(o); err == nil || !strings.Contains(err.Error(), "binary") {
		t.Errorf("-stream on a text trace: %v", err)
	}
}

// TestStreamAdoptsHeaderDisks: -stream reads the disk count from the
// binary header when -disks is not given.
func TestStreamAdoptsHeaderDisks(t *testing.T) {
	o := options{policy: "none", disks: 8, unit: 32 << 10, pageSize: 4096, jobs: 1,
		perDisk: true, stream: true, tracePath: writeBinaryTrace(t, binReqs, 4)}
	out := withStdio(t, "", func() error { return run(o) })
	if !strings.Contains(out, "disk 3:") || strings.Contains(out, "disk 4:") {
		t.Errorf("expected 4 per-disk rows from the header's disk count, got:\n%s", out)
	}
}
