package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestScaleBenchmark runs the multi-tenant streaming benchmark end to end
// at test scale: synthesize → replay under all three policies → per-tenant
// attribution, with the peak-heap self-check enabled.
func TestScaleBenchmark(t *testing.T) {
	o := options{jobs: 2, scale: scaleOptions{
		requests: 20000,
		tenants:  3,
		disks:    8,
		file:     filepath.Join(t.TempDir(), "scale.dpct"),
		maxHeap:  1 << 30,
		seed:     1,
	}}
	out := capture(t, func() error { return run(o) })
	for _, want := range []string{
		"Scale workload: 20000 requests, 3 tenants, 8 disks",
		"Normalized energy (NoPM = 1.0)",
		"Per-tenant attribution",
		"Peak heap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scale output missing %q:\n%s", want, out)
		}
	}
	// Three tenant rows, each carrying its request count.
	for _, row := range []string{"0      ", "1      ", "2      "} {
		if !strings.Contains(out, row) {
			t.Errorf("scale output missing tenant row %q:\n%s", row, out)
		}
	}
}

// TestScaleMaxHeapViolation: an absurdly small budget must fail the run.
func TestScaleMaxHeapViolation(t *testing.T) {
	o := options{jobs: 1, scale: scaleOptions{
		requests: 5000,
		tenants:  2,
		file:     filepath.Join(t.TempDir(), "scale.dpct"),
		maxHeap:  1, // 1 byte: always exceeded
		seed:     1,
	}}
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "scale-maxheap") {
		t.Fatalf("expected a peak-heap budget error, got %v", err)
	}
}
