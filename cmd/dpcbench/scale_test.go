package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureErr captures os.Stderr around fn, for asserting which side of the
// stdout/stderr discipline a line lands on.
func captureErr(t *testing.T, fn func()) string {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = outW
	defer func() { os.Stderr = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	fn()
	outW.Close()
	return <-done
}

// TestScaleBenchmark runs the multi-tenant streaming benchmark end to end
// at test scale: synthesize → replay under all three policies → per-tenant
// attribution, with the peak-heap self-check enabled. Result tables land on
// stdout; timing and heap diagnostics land on stderr.
func TestScaleBenchmark(t *testing.T) {
	o := options{jobs: 2, scale: scaleOptions{
		requests: 20000,
		tenants:  3,
		disks:    8,
		file:     filepath.Join(t.TempDir(), "scale.dpct"),
		maxHeap:  1 << 30,
		seed:     1,
	}}
	var out string
	errOut := captureErr(t, func() {
		out = capture(t, func() error { return run(o) })
	})
	for _, want := range []string{
		"Scale workload: 20000 requests, 3 tenants, 8 disks",
		"Normalized energy (NoPM = 1.0)",
		"Per-tenant attribution",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scale stdout missing %q:\n%s", want, out)
		}
	}
	// Diagnostics stay off stdout so piped tables remain clean.
	for _, want := range []string{"peak heap", "replay", "synthesized"} {
		if strings.Contains(out, want) {
			t.Errorf("diagnostic %q leaked to stdout:\n%s", want, out)
		}
		if !strings.Contains(errOut, want) {
			t.Errorf("diagnostic %q missing from stderr:\n%s", want, errOut)
		}
	}
	// Three tenant rows, each carrying its request count.
	for _, row := range []string{"0      ", "1      ", "2      "} {
		if !strings.Contains(out, row) {
			t.Errorf("scale output missing tenant row %q:\n%s", row, out)
		}
	}
}

// TestScaleMaxHeapViolation: an absurdly small budget must fail the run.
func TestScaleMaxHeapViolation(t *testing.T) {
	o := options{jobs: 1, scale: scaleOptions{
		requests: 5000,
		tenants:  2,
		file:     filepath.Join(t.TempDir(), "scale.dpct"),
		maxHeap:  1, // 1 byte: always exceeded
		seed:     1,
	}}
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "scale-maxheap") {
		t.Fatalf("expected a peak-heap budget error, got %v", err)
	}
}
