package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"diskreuse/internal/disk"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// scaleOptions parameterizes the -scale benchmark: a multi-tenant merged
// workload synthesized straight to the chunked binary trace format and
// replayed through the out-of-core streaming simulator under each policy.
// This is the regime the in-memory paper pipeline cannot reach — the
// request count is bounded by disk space, not RAM.
type scaleOptions struct {
	requests int64  // -scale: total requests across tenants
	tenants  int    // -tenants
	disks    int    // -scale-disks (0 = synthesizer default)
	file     string // -scale-file: keep the binary trace here (default: temp)
	maxHeap  int64  // -scale-maxheap: fail if HeapSys exceeds this many bytes
	seed     int64  // -scale-seed
}

// runScale synthesizes the workload, replays it under NoPM/TPM/DRPM with
// per-tenant energy attribution, and reports throughput, energy, and the
// peak heap footprint. The trace is written once and each policy streams
// it from disk with a fresh reader, so peak memory stays at one decode
// chunk plus per-disk simulator state regardless of -scale. Result tables
// go to stdout; timing and heap diagnostics go to stderr through rep, and
// reg (when non-nil) receives live decode and replay progress.
func runScale(s scaleOptions, jobs int, reg *metrics.Registry, rep *metrics.Reporter) error {
	path := s.file
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("dpcbench-scale-%d.dpct", os.Getpid()))
		defer os.Remove(path)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	start := time.Now()
	hdr, err := trace.WriteSynthetic(f, trace.SynthConfig{
		Tenants:  s.tenants,
		Requests: s.requests,
		NumDisks: s.disks,
		Seed:     s.seed,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	synthSecs := time.Since(start).Seconds()
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("Scale workload: %d requests, %d tenants, %d disks\n",
		hdr.NumRequests, hdr.NumProcs, hdr.NumDisks)
	rep.Logf("  synthesized %s (%.2f B/req) in %.2fs (%.2f Mreq/s)",
		fmtBytes(fi.Size()), float64(fi.Size())/float64(hdr.NumRequests),
		synthSecs, float64(hdr.NumRequests)/synthSecs/1e6)

	rep.SetTotal(hdr.NumRequests * 3)
	rep.Start()
	defer rep.Stop()
	model := disk.Ultrastar36Z15()
	diskOf := trace.SynthDiskOf(hdr.NumDisks)
	policies := []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM}
	results := make([]*sim.Result, len(policies))
	attrs := make([]*obs.ProcAttribution, len(policies))
	var peakHeap uint64
	for i, p := range policies {
		rf, err := os.Open(path)
		if err != nil {
			return err
		}
		rd, err := trace.NewReader(rf)
		if err != nil {
			rf.Close()
			return err
		}
		rd.SetMetrics(reg)
		attr := obs.NewProcAttribution(hdr.NumDisks, hdr.NumProcs)
		start := time.Now()
		res, err := sim.RunStream(rd, diskOf, sim.Config{
			Model:       model,
			NumDisks:    hdr.NumDisks,
			Policy:      p,
			Jobs:        jobs,
			Attribution: attr,
			Metrics:     reg,
		})
		secs := time.Since(start).Seconds()
		rd.Close()
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapSys > peakHeap {
			peakHeap = ms.HeapSys
		}
		results[i], attrs[i] = res, attr
		rep.Logf("  %-5s replay %.2fs (%.2f Mreq/s)  energy %.0f J  io %.0f s",
			p, secs, float64(res.Requests)/secs/1e6, res.Energy, res.IOTime)
	}
	rep.Stop()

	noPM := results[0].Energy
	fmt.Println("\nNormalized energy (NoPM = 1.0):")
	for i, p := range policies {
		fmt.Printf("  %-5s %.3f\n", p, results[i].Energy/noPM)
	}

	fmt.Println("\nPer-tenant attribution (energy J by policy):")
	fmt.Printf("  %-7s %12s %10s %10s %10s\n", "tenant", "requests", "NoPM", "TPM", "DRPM")
	perPolicy := make([][]float64, len(policies))
	for i := range policies {
		perPolicy[i] = sim.AttributeEnergy(results[i], attrs[i])
	}
	rows := attrs[0].PerProc()
	for t := 0; t < hdr.NumProcs; t++ {
		fmt.Printf("  %-7d %12d %10.0f %10.0f %10.0f\n",
			t, rows[t].Requests, perPolicy[0][t], perPolicy[1][t], perPolicy[2][t])
	}

	rep.Logf("peak heap (runtime HeapSys): %s", fmtBytes(int64(peakHeap)))
	if s.maxHeap > 0 && peakHeap > uint64(s.maxHeap) {
		return fmt.Errorf("peak heap %s exceeds -scale-maxheap %s",
			fmtBytes(int64(peakHeap)), fmtBytes(s.maxHeap))
	}
	return nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
