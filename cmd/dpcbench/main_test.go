package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = outW
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestTable1(t *testing.T) {
	out := capture(t, func() error { return run("1", "", "", false, "tiny", 2, 1, "", "") })
	if !strings.Contains(out, "IBM Ultrastar 36Z15") || !strings.Contains(out, "15.2 sec") {
		t.Errorf("Table 1 output:\n%s", out)
	}
}

func TestTable2AndFigures(t *testing.T) {
	out := capture(t, func() error { return run("2", "", "", false, "tiny", 2, 1, "", "") })
	if !strings.Contains(out, "Number of Disk Reqs") || !strings.Contains(out, "Cholesky") {
		t.Errorf("Table 2 output:\n%s", out)
	}
	out = capture(t, func() error { return run("", "9a", "", false, "tiny", 2, 0, "", "") })
	if !strings.Contains(out, "Figure 9(a)") {
		t.Errorf("Figure 9a output:\n%s", out)
	}
	out = capture(t, func() error { return run("", "10b", "", false, "tiny", 2, 0, "", "") })
	if !strings.Contains(out, "Figure 10(b) 2 processors") || !strings.Contains(out, "T-DRPM-m") {
		t.Errorf("Figure 10b output:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	out := capture(t, func() error { return run("", "", "threshold", false, "tiny", 2, 0, "", "") })
	if !strings.Contains(out, "threshold  15.2 s") {
		t.Errorf("threshold ablation output:\n%s", out)
	}
	out = capture(t, func() error { return run("", "", "window", false, "tiny", 2, 0, "", "") })
	if !strings.Contains(out, "window  100 requests") {
		t.Errorf("window ablation output:\n%s", out)
	}
	out = capture(t, func() error { return run("", "", "stripes", false, "tiny", 2, 0, "", "") })
	if !strings.Contains(out, "<== best") {
		t.Errorf("stripes ablation output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", "", "", false, "huge", 2, 0, "", ""); err == nil {
		t.Error("bad size must fail")
	}
	if err := run("", "", "bogus", false, "tiny", 2, 0, "", ""); err == nil {
		t.Error("bad ablation must fail")
	}
}

// TestJSONOutput exercises the -json perf-trajectory writer: the file must
// decode as a two-suite array (1P and the -procs grid) carrying the
// normalized-energy and degradation metrics.
func TestJSONOutput(t *testing.T) {
	path := t.TempDir() + "/BENCH_suite.json"
	out := capture(t, func() error { return run("", "9a", "", false, "tiny", 2, 4, "", path) })
	if !strings.Contains(out, "wrote JSON metrics") {
		t.Errorf("missing JSON confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var suites []struct {
		Procs    int `json:"procs"`
		Versions []struct {
			Version         string  `json:"version"`
			AvgEnergySaving float64 `json:"avg_energy_saving"`
			AvgDegradation  float64 `json:"avg_perf_degradation"`
		} `json:"versions"`
		Apps []struct {
			App     string `json:"app"`
			Results []struct {
				Version    string  `json:"version"`
				NormEnergy float64 `json:"norm_energy"`
			} `json:"results"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &suites); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(suites) != 2 || suites[0].Procs != 1 || suites[1].Procs != 2 {
		t.Fatalf("want suites for procs 1 and 2, got %+v", suites)
	}
	if len(suites[0].Apps) != 6 || len(suites[0].Versions) != 5 || len(suites[1].Versions) != 7 {
		t.Errorf("wrong shape: %d apps, %d/%d versions",
			len(suites[0].Apps), len(suites[0].Versions), len(suites[1].Versions))
	}
	for _, a := range suites[0].Apps {
		for _, r := range a.Results {
			if r.Version == "Base" && r.NormEnergy != 1 {
				t.Errorf("%s: Base norm_energy = %v", a.App, r.NormEnergy)
			}
		}
	}
}

func TestCSVOutput(t *testing.T) {
	path := t.TempDir() + "/out.csv"
	out := capture(t, func() error { return run("", "9a", "", false, "tiny", 2, 0, path, "") })
	if !strings.Contains(out, "wrote CSV results") {
		t.Errorf("missing CSV confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// header + 6 apps × (5 versions 1P + 7 versions 2P)
	if lines != 1+6*5+6*7 {
		t.Errorf("csv lines = %d", lines)
	}
	if strings.Count(string(data), "app,version") != 1 {
		t.Error("header must appear exactly once")
	}
}
