package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = outW
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := outR.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	outW.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestTable1(t *testing.T) {
	out := capture(t, func() error { return run(options{table: "1", size: "tiny", procs: 2, jobs: 1}) })
	if !strings.Contains(out, "IBM Ultrastar 36Z15") || !strings.Contains(out, "15.2 sec") {
		t.Errorf("Table 1 output:\n%s", out)
	}
}

func TestTable2AndFigures(t *testing.T) {
	out := capture(t, func() error { return run(options{table: "2", size: "tiny", procs: 2, jobs: 1}) })
	if !strings.Contains(out, "Number of Disk Reqs") || !strings.Contains(out, "Cholesky") {
		t.Errorf("Table 2 output:\n%s", out)
	}
	out = capture(t, func() error { return run(options{figure: "9a", size: "tiny", procs: 2}) })
	if !strings.Contains(out, "Figure 9(a)") {
		t.Errorf("Figure 9a output:\n%s", out)
	}
	out = capture(t, func() error { return run(options{figure: "10b", size: "tiny", procs: 2}) })
	if !strings.Contains(out, "Figure 10(b) 2 processors") || !strings.Contains(out, "T-DRPM-m") {
		t.Errorf("Figure 10b output:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	out := capture(t, func() error { return run(options{ablation: "threshold", size: "tiny", procs: 2}) })
	if !strings.Contains(out, "threshold  15.2 s") {
		t.Errorf("threshold ablation output:\n%s", out)
	}
	out = capture(t, func() error { return run(options{ablation: "window", size: "tiny", procs: 2}) })
	if !strings.Contains(out, "window  100 requests") {
		t.Errorf("window ablation output:\n%s", out)
	}
	out = capture(t, func() error { return run(options{ablation: "stripes", size: "tiny", procs: 2}) })
	if !strings.Contains(out, "<== best") {
		t.Errorf("stripes ablation output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run(options{size: "huge", procs: 2}); err == nil {
		t.Error("bad size must fail")
	}
	if err := run(options{ablation: "bogus", size: "tiny", procs: 2}); err == nil {
		t.Error("bad ablation must fail")
	}
	if err := run(options{report: "yaml", size: "tiny", procs: 2}); err == nil {
		t.Error("bad report format must fail")
	}
}

// TestJSONOutput exercises the -json perf-trajectory writer: the file must
// decode as a two-suite array (1P and the -procs grid) carrying the
// normalized-energy and degradation metrics.
func TestJSONOutput(t *testing.T) {
	path := t.TempDir() + "/BENCH_suite.json"
	capture(t, func() error { return run(options{figure: "9a", size: "tiny", procs: 2, jobs: 4, jsonPath: path}) })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var suites []struct {
		Procs    int `json:"procs"`
		Versions []struct {
			Version         string  `json:"version"`
			AvgEnergySaving float64 `json:"avg_energy_saving"`
			AvgDegradation  float64 `json:"avg_perf_degradation"`
		} `json:"versions"`
		Apps []struct {
			App     string `json:"app"`
			Results []struct {
				Version     string  `json:"version"`
				NormEnergy  float64 `json:"norm_energy"`
				IdlePeriods int     `json:"idle_periods"`
			} `json:"results"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &suites); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(suites) != 2 || suites[0].Procs != 1 || suites[1].Procs != 2 {
		t.Fatalf("want suites for procs 1 and 2, got %+v", suites)
	}
	if len(suites[0].Apps) != 6 || len(suites[0].Versions) != 5 || len(suites[1].Versions) != 7 {
		t.Errorf("wrong shape: %d apps, %d/%d versions",
			len(suites[0].Apps), len(suites[0].Versions), len(suites[1].Versions))
	}
	for _, a := range suites[0].Apps {
		for _, r := range a.Results {
			if r.Version == "Base" && r.NormEnergy != 1 {
				t.Errorf("%s: Base norm_energy = %v", a.App, r.NormEnergy)
			}
			if r.IdlePeriods <= 0 {
				t.Errorf("%s/%s: idle_periods = %d, want > 0", a.App, r.Version, r.IdlePeriods)
			}
		}
	}
}

func TestCSVOutput(t *testing.T) {
	path := t.TempDir() + "/out.csv"
	capture(t, func() error { return run(options{figure: "9a", size: "tiny", procs: 2, csvPath: path}) })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// header + 6 apps × (5 versions 1P + 7 versions 2P)
	if lines != 1+6*5+6*7 {
		t.Errorf("csv lines = %d", lines)
	}
	if strings.Count(string(data), "app,version") != 1 {
		t.Error("header must appear exactly once")
	}
}

// TestReport exercises the -report renderer in every format. With only
// -report set, nothing else prints to stdout, so machine formats stay
// machine-parseable.
func TestReport(t *testing.T) {
	out := capture(t, func() error { return run(options{report: "text", size: "tiny", procs: 2, jobs: 2}) })
	for _, want := range []string{"Report: 1 processor(s)", "Report: 2 processor(s)",
		"Mean idle (s)", "Pipeline stages:", "disk-replay", "Worker pool:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}

	out = capture(t, func() error { return run(options{report: "json", size: "tiny", procs: 2, jobs: 2}) })
	var rep struct {
		Suites []struct {
			Procs int `json:"procs"`
			Rows  []struct {
				App  string `json:"app"`
				Idle struct {
					Periods int `json:"periods"`
				} `json:"idle"`
			} `json:"rows"`
		} `json:"suites"`
		Stages []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"stages"`
		Pool *struct {
			Tasks int64 `json:"tasks"`
		} `json:"pool"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, out)
	}
	if len(rep.Suites) != 2 || len(rep.Suites[0].Rows) != 6*5 || len(rep.Suites[1].Rows) != 6*7 {
		t.Fatalf("wrong report shape: %+v", rep.Suites)
	}
	for _, row := range rep.Suites[0].Rows {
		if row.Idle.Periods <= 0 {
			t.Errorf("%s: idle periods = %d", row.App, row.Idle.Periods)
		}
	}
	stages := make(map[string]int)
	for _, st := range rep.Stages {
		stages[st.Name] = st.Count
	}
	for _, name := range []string{"parse", "sema", "space", "validate", "deps",
		"attribute-disks", "restructure", "generate-trace", "prepare-trace", "sim", "disk-replay"} {
		if stages[name] == 0 {
			t.Errorf("stage %q missing from report (got %v)", name, stages)
		}
	}
	if rep.Pool == nil || rep.Pool.Tasks == 0 {
		t.Errorf("pool stats missing: %+v", rep.Pool)
	}

	out = capture(t, func() error { return run(options{report: "csv", size: "tiny", procs: 2}) })
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("bad report CSV: %v\n%s", err, out)
	}
	if len(recs) != 1+6*5+6*7 {
		t.Errorf("report csv rows = %d", len(recs))
	}
	if recs[0][0] != "procs" || recs[0][10] != "idle_periods" {
		t.Errorf("report csv header = %v", recs[0])
	}
}

// TestTraceOut checks the Chrome trace export: valid trace_event JSON with
// complete ("X") span events for the pipeline stages.
func TestTraceOut(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	capture(t, func() error { return run(options{figure: "9a", size: "tiny", procs: 2, jobs: 2, traceOut: path}) })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("bad trace JSON: %v", err)
	}
	spans := 0
	names := make(map[string]bool)
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			spans++
			names[ev.Name] = true
		}
	}
	if spans == 0 {
		t.Fatal("no span events in trace")
	}
	for _, want := range []string{"prepare", "parse", "sim", "disk-replay"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

// TestProfileFlags checks the -cpuprofile/-memprofile plumbing end to end.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	capture(t, func() error {
		return run(options{table: "1", size: "tiny", procs: 2, cpuProfile: cpu, memProfile: mem})
	})
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestLayoutSearch(t *testing.T) {
	out := capture(t, func() error {
		return run(options{size: "tiny", jobs: 1, search: searchOptions{app: "fft", beam: 4, rounds: 2}})
	})
	if !strings.Contains(out, "Layout search: FFT") || !strings.Contains(out, "final beam") ||
		!strings.Contains(out, "candidates/s") {
		t.Errorf("layout search output:\n%s", out)
	}
}

func TestLayoutSearchPhased(t *testing.T) {
	out := capture(t, func() error {
		return run(options{size: "tiny", jobs: 1, search: searchOptions{app: "fft", phased: true, beam: 4, rounds: 2}})
	})
	if !strings.Contains(out, "phase-aware search: 4 phases") ||
		!strings.Contains(out, "policy TPM") || !strings.Contains(out, "policy DRPM") ||
		!strings.Contains(out, "migration rate") {
		t.Errorf("phased layout search output:\n%s", out)
	}
}

// TestReportJSONPureStdout pins the fixed interleave bug: combining the
// human tables (-all) with a machine report format must leave stdout
// holding exactly one JSON document — the tables move to stderr.
func TestReportJSONPureStdout(t *testing.T) {
	var out string
	errOut := captureErr(t, func() {
		out = capture(t, func() error {
			return run(options{all: true, report: "json", size: "tiny", procs: 2, jobs: 2})
		})
	})
	var rep struct {
		Suites []struct {
			Procs int `json:"procs"`
		} `json:"suites"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not a single JSON document: %v\n%s", err, out)
	}
	if len(rep.Suites) != 2 {
		t.Fatalf("want 2 suites, got %+v", rep.Suites)
	}
	for _, want := range []string{"Table 1", "Figure 9(a)", "Average savings"} {
		if strings.Contains(out, want) {
			t.Errorf("human table %q leaked into JSON stdout", want)
		}
		if !strings.Contains(errOut, want) {
			t.Errorf("human table %q missing from stderr:\n%s", want, errOut)
		}
	}
}

// TestScaleWithMonitoring: the -scale benchmark with the metrics endpoint
// and heartbeat enabled runs clean, and the heartbeat lands on stderr.
func TestScaleWithMonitoring(t *testing.T) {
	o := options{jobs: 1, metricsAddr: "127.0.0.1:0", heartbeat: time.Millisecond,
		scale: scaleOptions{
			requests: 5000,
			tenants:  2,
			file:     t.TempDir() + "/scale.dpct",
			seed:     1,
		}}
	var out string
	errOut := captureErr(t, func() {
		out = capture(t, func() error { return run(o) })
	})
	if !strings.Contains(out, "Normalized energy") {
		t.Errorf("scale stdout missing results:\n%s", out)
	}
	if !strings.Contains(errOut, "metrics: serving http://") {
		t.Errorf("metrics announcement missing from stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, " req/s") {
		t.Errorf("heartbeat missing from stderr:\n%s", errOut)
	}
}
