package main

import (
	"fmt"
	"os"
	"time"

	"diskreuse/internal/apps"
	"diskreuse/internal/layoutopt"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
)

// searchOptions bundles the -layoutsearch flags.
type searchOptions struct {
	app    string
	phased bool
	beam   int
	rounds int
}

// runLayoutSearch drives the layout search engine on one application:
// a whole-program beam search over per-array stripe parameters, or — with
// -phased — the phase-aware reconfiguration search that compares switching
// layouts at nest boundaries (paying the migration bill) against holding
// the best static layout.
func runLayoutSearch(o options, size apps.Size, reg *metrics.Registry, rep *metrics.Reporter) error {
	a, err := apps.ByName(o.search.app, size)
	if err != nil {
		return err
	}
	var tr *obs.Tracer
	if o.traceOut != "" {
		tr = obs.NewTracer()
	}
	root := tr.Start("layoutsearch", "pipeline")

	e, err := layoutopt.NewEngine(a, 0)
	if err != nil {
		return err
	}
	opt := layoutopt.SearchOptions{
		BeamWidth: o.search.beam,
		MaxRounds: o.search.rounds,
		Jobs:      o.jobs,
		Span:      root,
		Metrics:   reg,
	}
	fmt.Printf("Layout search: %s (%d arrays, %d phases, size %s)\n",
		a.Name, e.NumArrays(), e.NumPhases(), o.size)

	rep.Start()
	defer rep.Stop()
	if o.search.phased {
		err = runPhaseSearch(e, opt)
	} else {
		err = runStaticSearch(e, opt)
	}
	root.End()
	if err != nil {
		return err
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		rep.Logf("wrote Chrome trace (%d spans) to %s", tr.SpanCount(), o.traceOut)
	}
	return nil
}

func runStaticSearch(e *layoutopt.Engine, opt layoutopt.SearchOptions) error {
	t0 := time.Now()
	res, err := e.Search(opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	printSearchStats(res, elapsed)
	fmt.Println("final beam (best first):")
	for i, s := range res.Beam {
		fmt.Printf("  %d. %-40s T-TPM %10.2f J  T-DRPM %10.2f J  base %10.2f J  runs %4d  disks %d\n",
			i+1, renderAssignment(e, s.Assignment), s.TTPMEnergy, s.TDRPMEnergy, s.BaseEnergy, s.Runs, s.NumDisks)
	}
	best := res.Best
	fmt.Printf("best: %s  (%.2f%% T-TPM / %.2f%% T-DRPM of unmanaged)\n",
		renderAssignment(e, best.Assignment),
		100*best.TTPMEnergy/best.BaseEnergy, 100*best.TDRPMEnergy/best.BaseEnergy)
	return nil
}

func runPhaseSearch(e *layoutopt.Engine, opt layoutopt.SearchOptions) error {
	t0 := time.Now()
	res, err := e.PhaseSearch(layoutopt.PhaseOptions{Search: opt, Span: opt.Span})
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	fmt.Printf("phase-aware search: %d phases, pooled candidates %d, migration rate %.3e J/B\n",
		res.Phases, res.Candidates, e.DefaultMigrateJPerByte())
	agg := &layoutopt.SearchResult{}
	for _, sr := range append([]*layoutopt.SearchResult{res.Static}, res.PerPhase...) {
		agg.Candidates += sr.Candidates
		agg.Rounds += sr.Rounds
	}
	agg.CacheHits, agg.CacheMisses = e.CacheStats()
	printSearchStats(agg, elapsed)
	for _, plan := range []*layoutopt.PhasePlan{res.TPM, res.DRPM} {
		verdict := "holds the static layout"
		if plan.Wins {
			verdict = fmt.Sprintf("beats static by %.2f J", plan.StaticEnergy-plan.TotalEnergy)
		}
		fmt.Printf("policy %v: total %.2f J (migration %.2f J, %d reconfiguration(s)) vs static %.2f J [%s] — %s\n",
			plan.Policy, plan.TotalEnergy, plan.MigrationJ, plan.Reconfigures,
			plan.StaticEnergy, plan.StaticKey, verdict)
		for p := range plan.Keys {
			fmt.Printf("  phase %d (%-12s): %-40s %10.2f J\n",
				p, e.R.Prog.Nests[p].Name, renderAssignment(e, plan.Layouts[p]), plan.PhaseEnergy[p])
		}
	}
	return nil
}

func printSearchStats(res *layoutopt.SearchResult, elapsed time.Duration) {
	rate := float64(res.Candidates) / elapsed.Seconds()
	fmt.Printf("searched %d candidates in %d rounds (%s, %.0f candidates/s); score cache: %d hits, %d misses\n",
		res.Candidates, res.Rounds, elapsed.Round(time.Millisecond), rate, res.CacheHits, res.CacheMisses)
}

// renderAssignment prints a uniform assignment as one stripe spec and a
// non-uniform one per array.
func renderAssignment(e *layoutopt.Engine, a layoutopt.Assignment) string {
	uniform := true
	for _, s := range a[1:] {
		if s != a[0] {
			uniform = false
			break
		}
	}
	c := func(i int) layoutopt.Candidate {
		return layoutopt.Candidate{Unit: a[i].Unit, Factor: a[i].Factor, Start: a[i].Start}
	}
	if uniform {
		return fmt.Sprintf("all arrays %s", c(0))
	}
	out := ""
	for i := range a {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", e.R.Prog.Arrays[i].Name, c(i))
	}
	return out
}
