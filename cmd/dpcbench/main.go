// Command dpcbench regenerates the paper's evaluation artifacts: Table 1
// (simulation parameters), Table 2 (application characteristics), Figures
// 9(a)/9(b) (normalized disk energy for 1 and 4 processors), and Figures
// 10(a)/10(b) (disk I/O time degradation), plus parameter-sweep ablations.
//
// Usage:
//
//	dpcbench -all                 # everything at the default scale
//	dpcbench -all -jobs 8         # same, fanned out over 8 workers
//	dpcbench -table 2             # just Table 2
//	dpcbench -figure 9b           # just Figure 9(b)
//	dpcbench -ablation stripes    # stripe-factor sweep
//	dpcbench -size tiny           # quick run at test scale
//	dpcbench -all -json BENCH_suite.json   # machine-readable metrics
//	dpcbench -report text         # energy/idle-locality/stage-timing report
//	dpcbench -all -trace-out trace.json    # Chrome trace of the pipeline (Perfetto)
//	dpcbench -all -cpuprofile cpu.pprof -memprofile mem.pprof
//	dpcbench -scale 10000000 -tenants 8    # multi-tenant out-of-core streaming benchmark
//	dpcbench -layoutsearch fft             # beam search over per-array stripe layouts
//	dpcbench -layoutsearch fft -phased     # phase-aware layout reconfiguration search
//
// The evaluation grid (app × version × procs) is embarrassingly parallel;
// -jobs bounds the worker pool (0 = GOMAXPROCS) and reaches every layer:
// the (app × version) cell fan-out, the analysis front-end, and the
// simulator's per-disk open-loop sharding. Each app's trace is prepared
// once and replayed by all of its policy versions. Results are
// bit-identical at every -jobs value.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"diskreuse/internal/apps"
	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/interp"
	"diskreuse/internal/layoutopt"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/sema"
)

// options bundles the command-line configuration of one dpcbench run.
type options struct {
	table, figure, ablation string
	all                     bool
	size                    string
	procs, jobs             int
	engine                  string
	// stream replays the suite's simulations through the out-of-core
	// streaming path (bit-identical results; exercises the reducers).
	stream            bool
	csvPath, jsonPath string
	// report renders the observability report (per-app × per-version
	// energy/degradation/idle-locality rows plus stage timings) to stdout
	// in the named format: text, json, or csv.
	report string
	// traceOut writes the run's pipeline spans as Chrome trace_event JSON.
	traceOut string
	// cpuProfile/memProfile are the stdlib pprof outputs.
	cpuProfile, memProfile string
	// metricsAddr serves the live metrics registry over HTTP; heartbeat
	// prints a progress line to stderr at the given interval.
	metricsAddr string
	heartbeat   time.Duration
	// scale selects the multi-tenant out-of-core streaming benchmark
	// instead of the paper suite (see scale.go).
	scale scaleOptions
	// search selects the layout search engine (-layoutsearch APP).
	search searchOptions
}

func main() {
	var o options
	flag.StringVar(&o.table, "table", "", "regenerate a table: 1 or 2")
	flag.StringVar(&o.figure, "figure", "", "regenerate a figure: 9a, 9b, 10a, or 10b")
	flag.StringVar(&o.ablation, "ablation", "", "run an ablation: stripes, threshold, window, layoutopt")
	flag.BoolVar(&o.all, "all", false, "regenerate every table and figure")
	flag.StringVar(&o.size, "size", "default", "workload scale: tiny, small, or default")
	flag.IntVar(&o.procs, "procs", 4, "processor count for the (b) figures")
	flag.IntVar(&o.jobs, "jobs", 0, "max concurrent pipeline cells (0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&o.engine, "engine", "compiled", "front-end execution engine: compiled (stride-compiled kernels) or interp (tree-walk oracle)")
	flag.BoolVar(&o.stream, "stream", false, "replay the suite through the out-of-core streaming simulator path (results are bit-identical to the in-memory replay)")
	flag.StringVar(&o.csvPath, "csv", "", "also write the suite results in CSV long form to this file")
	flag.StringVar(&o.jsonPath, "json", "", "also write the suite's normalized-energy and degradation metrics as JSON to this file (e.g. BENCH_suite.json)")
	flag.StringVar(&o.report, "report", "", "render the energy/idle-locality/stage-timing report to stdout: text, json, or csv")
	flag.StringVar(&o.traceOut, "trace-out", "", "write pipeline spans as Chrome trace_event JSON to this file (load in Perfetto)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /healthz, /debug/pprof/)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 0, "print a progress heartbeat to stderr at this interval (0 disables)")
	flag.Int64Var(&o.scale.requests, "scale", 0, "run the multi-tenant streaming benchmark with this many total requests (synthesized to the binary trace format and replayed out of core)")
	flag.IntVar(&o.scale.tenants, "tenants", 8, "tenant (processor) count for -scale")
	flag.IntVar(&o.scale.disks, "scale-disks", 0, "disk count for -scale (0 = synthesizer default)")
	flag.StringVar(&o.scale.file, "scale-file", "", "keep the synthesized binary trace at this path (default: a temp file, removed)")
	flag.Int64Var(&o.scale.maxHeap, "scale-maxheap", 0, "fail the -scale run if the peak heap (runtime HeapSys) exceeds this many bytes")
	flag.Int64Var(&o.scale.seed, "scale-seed", 1, "workload seed for -scale")
	flag.StringVar(&o.search.app, "layoutsearch", "", "run the layout search engine on this application (a Table 2 app name) and print the final beam")
	flag.BoolVar(&o.search.phased, "phased", false, "with -layoutsearch: split at nest boundaries and search per-phase layouts under the migration-cost model")
	flag.IntVar(&o.search.beam, "beam", 0, "with -layoutsearch: beam width (0 = default)")
	flag.IntVar(&o.search.rounds, "rounds", 0, "with -layoutsearch: max expansion rounds (0 = default)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dpcbench:", err)
		os.Exit(1)
	}
}

func sizeOf(s string) (apps.Size, error) {
	switch s {
	case "tiny":
		return apps.Tiny, nil
	case "small":
		return apps.Small, nil
	case "default", "":
		return apps.Default, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func run(o options) (err error) {
	size, err := sizeOf(o.size)
	if err != nil {
		return err
	}
	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	// Live observability: one registry feeds the HTTP endpoint and the
	// heartbeat; the Reporter is also the shared stderr sink for every
	// one-off human progress line, keeping a machine stdout clean.
	var reg *metrics.Registry
	if o.metricsAddr != "" || o.heartbeat > 0 {
		reg = metrics.NewRegistry()
	}
	rep := metrics.NewReporter(metrics.ReporterOptions{Registry: reg, Interval: o.heartbeat})
	if o.metricsAddr != "" {
		srv, serr := metrics.Serve(o.metricsAddr, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		rep.Logf("metrics: serving http://%s/metrics", srv.Addr())
	}
	if o.scale.requests > 0 {
		return runScale(o.scale, o.jobs, reg, rep)
	}
	if o.search.app != "" {
		return runLayoutSearch(o, size, reg, rep)
	}
	engine, err := interp.ParseEngine(o.engine)
	if err != nil {
		return err
	}
	table, figure, ablation := o.table, o.figure, o.ablation
	all := o.all
	if !all && table == "" && figure == "" && ablation == "" && o.report == "" {
		all = true
	}
	var tr *obs.Tracer
	if o.traceOut != "" || o.report != "" || reg != nil {
		tr = obs.NewTracer()
	}
	// Bridge ended spans into per-stage duration histograms on the registry.
	obs.WithMetrics(tr, reg)
	// Keep stdout machine-parseable when the report renders JSON or CSV to
	// it: the human tables and figures move to stderr, as in dpcsim.
	human := io.Writer(os.Stdout)
	if o.report == "json" || o.report == "csv" {
		human = os.Stderr
	}

	var suite1, suiteN *exp.SuiteResult
	need1 := all || table == "2" || figure == "9a" || figure == "10a" ||
		o.csvPath != "" || o.jsonPath != "" || o.report != ""
	needN := all || figure == "9b" || figure == "10b" ||
		o.csvPath != "" || o.jsonPath != "" || o.report != ""
	rep.Start()
	defer rep.Stop()
	if need1 {
		if suite1, err = exp.RunSuite(exp.Options{Size: size, Procs: 1, Jobs: o.jobs, Engine: engine, Tracer: tr, Stream: o.stream, Metrics: reg}); err != nil {
			return err
		}
	}
	if needN {
		if suiteN, err = exp.RunSuite(exp.Options{Size: size, Procs: o.procs, Jobs: o.jobs, Engine: engine, Tracer: tr, Stream: o.stream, Metrics: reg}); err != nil {
			return err
		}
	}
	rep.Stop()

	if all || table == "1" {
		fmt.Fprintln(human, "Table 1: default simulation parameters")
		fmt.Fprintln(human, exp.Table1(disk.Ultrastar36Z15(), sema.Options{}))
	}
	if all || table == "2" {
		fmt.Fprintln(human, "Table 2: applications and their characteristics")
		fmt.Fprintln(human, exp.Table2(suite1))
	}
	if all || figure == "9a" {
		fmt.Fprintln(human, exp.Figure9(suite1))
	}
	if all || figure == "9b" {
		fmt.Fprintln(human, exp.Figure9(suiteN))
	}
	if all || figure == "10a" {
		fmt.Fprintln(human, exp.Figure10(suite1))
	}
	if all || figure == "10b" {
		fmt.Fprintln(human, exp.Figure10(suiteN))
	}
	if all {
		fmt.Fprintln(human, "Average savings/degradations, single processor:")
		fmt.Fprintln(human, exp.Summary(suite1))
		fmt.Fprintf(human, "Average savings/degradations, %d processors:\n", o.procs)
		fmt.Fprintln(human, exp.Summary(suiteN))
	}
	if o.report != "" {
		if err := exp.BuildReport(tr, suite1, suiteN).Render(os.Stdout, o.report); err != nil {
			return err
		}
	}
	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := exp.WriteCSV(f, suite1); err != nil {
			return err
		}
		// Append the multiprocessor rows without repeating the header.
		var buf bytes.Buffer
		if err := exp.WriteCSV(&buf, suiteN); err != nil {
			return err
		}
		body := buf.String()
		if i := strings.IndexByte(body, '\n'); i >= 0 {
			body = body[i+1:]
		}
		if _, err := f.WriteString(body); err != nil {
			return err
		}
		rep.Logf("wrote CSV results to %s", o.csvPath)
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := exp.WriteJSON(f, suite1, suiteN); err != nil {
			return err
		}
		rep.Logf("wrote JSON metrics to %s", o.jsonPath)
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		rep.Logf("wrote Chrome trace (%d spans) to %s", tr.SpanCount(), o.traceOut)
	}

	switch ablation {
	case "":
	case "stripes":
		return ablationStripes(size)
	case "threshold":
		return ablationThreshold(size, o.jobs, engine)
	case "window":
		return ablationWindow(size, o.jobs, engine)
	case "layoutopt":
		return ablationLayoutOpt(size)
	case "proactive":
		return ablationProactive(size, o.jobs, engine)
	case "raid":
		return ablationRAID(size, o.jobs, engine)
	default:
		return fmt.Errorf("unknown ablation %q", ablation)
	}
	return nil
}

// ablationStripes sweeps the TPM threshold-relevant clustering knob: the
// T-DRPM-s saving as the apps' energy is re-evaluated per configuration.
func ablationStripes(size apps.Size) error {
	fmt.Println("Ablation: layout optimizer candidate stripe configurations (AST)")
	a, err := apps.ByName("AST", size)
	if err != nil {
		return err
	}
	return layoutopt.Report(os.Stdout, a)
}

func ablationThreshold(size apps.Size, jobs int, engine interp.Engine) error {
	fmt.Println("Ablation: TPM idleness threshold sweep (suite average T-TPM-s saving)")
	for _, thr := range []float64{5, 10, 15.2, 30, 60} {
		sr, err := exp.RunSuite(exp.Options{Size: size, Procs: 1, Jobs: jobs, Engine: engine, TPMThreshold: thr})
		if err != nil {
			return err
		}
		fmt.Printf("  threshold %5.1f s: T-TPM-s saving %6.2f%%  (TPM alone %6.2f%%)\n",
			thr, 100*sr.AverageSaving(exp.VTTPMs), 100*sr.AverageSaving(exp.VTPM))
	}
	return nil
}

func ablationWindow(size apps.Size, jobs int, engine interp.Engine) error {
	fmt.Println("Ablation: DRPM controller window sweep (suite average T-DRPM-s saving)")
	for _, win := range []int{25, 50, 100, 200, 400} {
		sr, err := exp.RunSuite(exp.Options{Size: size, Procs: 1, Jobs: jobs, Engine: engine, DRPMWindow: win})
		if err != nil {
			return err
		}
		fmt.Printf("  window %4d requests: T-DRPM-s saving %6.2f%%  perf %5.2f%%\n",
			win, 100*sr.AverageSaving(exp.VTDRPMs), 100*sr.AverageDegradation(exp.VTDRPMs))
	}
	return nil
}

// ablationRAID sweeps the RAID-level striping width of Fig. 1 — the paper's
// footnote reports that low-level striping "generated similar results",
// i.e. the normalized savings barely move.
func ablationRAID(size apps.Size, jobs int, engine interp.Engine) error {
	fmt.Println("Ablation: RAID-level striping width (suite averages, 1 processor)")
	for _, w := range []int{1, 2, 4} {
		sr, err := exp.RunSuite(exp.Options{Size: size, Procs: 1, Jobs: jobs, Engine: engine, RAIDWidth: w})
		if err != nil {
			return err
		}
		fmt.Printf("  width %d: T-TPM-s %6.2f%%  T-DRPM-s %6.2f%%\n",
			w, 100*sr.AverageSaving(exp.VTTPMs), 100*sr.AverageSaving(exp.VTDRPMs))
	}
	return nil
}

// ablationProactive compares reactive T-TPM against the P-TPM extension
// (compiler-inserted spin-up directives, Son et al. [25]).
func ablationProactive(size apps.Size, jobs int, engine interp.Engine) error {
	fmt.Println("Ablation: proactive spin-up extension (restructured TPM, 1 processor)")
	sr, err := exp.RunSuite(exp.Options{Size: size, Procs: 1, Jobs: jobs, Engine: engine, Proactive: true})
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %16s %16s %18s\n", "app", "T-TPM-s (norm)", "P-TPM (norm)", "response -%")
	for i := range sr.Apps {
		ar := &sr.Apps[i]
		re, ok1 := ar.Get(exp.VTTPMs)
		pr, ok2 := ar.Get(exp.VPTPM)
		if !ok1 || !ok2 {
			continue
		}
		respGain := 0.0
		if re.Response > 0 {
			respGain = 100 * (re.Response - pr.Response) / re.Response
		}
		fmt.Printf("  %-10s %16.3f %16.3f %17.1f%%\n", ar.App.Name, re.NormEnergy, pr.NormEnergy, respGain)
	}
	fmt.Printf("  suite average saving: T-TPM-s %.2f%%, P-TPM %.2f%%\n",
		100*sr.AverageSaving(exp.VTTPMs), 100*sr.AverageSaving(exp.VPTPM))
	return nil
}

func ablationLayoutOpt(size apps.Size) error {
	fmt.Println("Ablation: unified layout+restructuring optimizer (paper §8 future work)")
	for _, name := range []string{"AST", "FFT", "SCF"} {
		a, err := apps.ByName(name, size)
		if err != nil {
			return err
		}
		if err := layoutopt.Report(os.Stdout, a); err != nil {
			return err
		}
	}
	return nil
}
