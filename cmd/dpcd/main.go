// Command dpcd is the compilation-and-simulation service: a resident HTTP
// daemon that accepts DRL programs over a JSON API, runs the compile →
// restructure → trace → simulate pipeline, and returns or streams the
// results. Identical submissions are content-addressed into a bounded
// artifact cache with in-flight deduplication, so repeat and concurrent
// requests for the same program compile once and replay from the cached
// artifacts.
//
// Usage:
//
//	dpcd -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/compile -d '{"program":"array A[64] elem 4096\nnest N { for i = 0 to 63 { A[i] = A[i]; } }"}'
//	curl -s localhost:8080/v1/simulate -d '{"program":"...", "versions":["Base","T-TPM-s"]}'
//	curl -s 'localhost:8080/v1/simulate?stream=ndjson' -d '{"program":"..."}'
//	curl -s localhost:8080/metrics   # cache hit/miss counters, latency histograms
//
// The listening address is printed to stderr as "dpcd: serving http://ADDR"
// once the socket is bound (use -addr 127.0.0.1:0 for an ephemeral port).
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diskreuse/internal/server"
)

type options struct {
	addr     string
	cache    int
	maxBody  int64
	maxIters int64
	jobs     int
	// ready, when non-nil, receives the bound address once listening
	// (used by tests to learn an ephemeral port).
	ready chan<- string
}

func main() {
	o := &options{}
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	flag.IntVar(&o.cache, "cache", 0, "artifact cache capacity in entries (0 = default 64)")
	flag.Int64Var(&o.maxBody, "max-body", 0, "request body size limit in bytes (0 = default 1 MiB)")
	flag.Int64Var(&o.maxIters, "max-iterations", 0, "per-program loop-iteration budget (0 = default 4194304)")
	flag.IntVar(&o.jobs, "jobs", 0, "per-request pipeline/simulation parallelism (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dpcd: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintf(os.Stderr, "dpcd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then drains in-flight requests.
func run(ctx context.Context, o *options) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	s := server.New(server.Config{
		CacheEntries:  o.cache,
		MaxBodyBytes:  o.maxBody,
		MaxIterations: o.maxIters,
		Jobs:          o.jobs,
	})
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "dpcd: serving http://%s\n", ln.Addr())
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
