package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

const tinyProgram = `array A[32] elem 4096 stripe(unit=32K, factor=8, start=0)
nest N {
  for i = 0 to 31 {
    A[i] = A[i];
  }
}
`

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises a
// compile round trip plus the monitoring endpoints, and checks that
// cancellation drains the server cleanly.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, &options{addr: "127.0.0.1:0", ready: ready})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := fmt.Sprintf(`{"program":%q}`, tinyProgram)
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compile = %d, body %s", resp.StatusCode, b)
	}
	var info struct {
		Artifact string `json:"artifact"`
		NumDisks int    `json:"num_disks"`
	}
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatalf("compile response not JSON: %v (%s)", err, b)
	}
	if info.Artifact == "" || info.NumDisks != 8 {
		t.Errorf("compile response = %s, want an artifact hash and 8 disks", b)
	}
	if got := resp.Header.Get("X-DPCD-Cache"); got != "miss" {
		t.Errorf("first compile X-DPCD-Cache = %q, want %q", got, "miss")
	}

	resp, err = http.Get(base + "/v1/artifacts/" + info.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/artifacts/{hash} = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(m), "dpcd_compiles_total 1") {
		t.Errorf("/metrics missing dpcd_compiles_total 1:\n%s", m)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// TestBadAddr pins the error path for an unusable listen address.
func TestBadAddr(t *testing.T) {
	if err := run(context.Background(), &options{addr: "256.0.0.1:bogus"}); err == nil {
		t.Fatal("run on a bogus address: want error, got nil")
	}
}
