// Multiprocessor heat-diffusion stencil (the §6 scenario). Four processors
// execute time-stepped Jacobi sweeps over two disk-resident grids. Under
// conventional loop parallelization each processor's disk requests
// interleave with the others', chopping up the disks' idle periods; the
// disk-layout-aware parallelization assigns each processor the iterations
// touching its own disks, restoring long idle periods — the paper's
// T-TPM-m / T-DRPM-m versions.
package main

import (
	"fmt"
	"log"
	"strings"

	"diskreuse/pkg/diskreuse"
)

func source() string {
	const rows, cols, steps = 192, 192, 2
	var b strings.Builder
	fmt.Fprintf(&b, "array U[%d][%d] elem 4096 stripe(unit=32K, factor=8, start=0)\n", rows, cols)
	fmt.Fprintf(&b, "array V[%d][%d] elem 4096 stripe(unit=32K, factor=8, start=0)\n", rows, cols)
	src, dst := "U", "V"
	for t := 0; t < 2*steps; t++ {
		fmt.Fprintf(&b, `
nest Sweep%d {
  for i = 1 to %d {
    for j = 1 to %d {
      %s[i][j] = %s[i][j] + %s[i-1][j] + %s[i+1][j];
    }
  }
}
`, t, rows-2, cols-2, dst, src, src, src)
		src, dst = dst, src
	}
	return b.String()
}

func main() {
	sys, err := diskreuse.Open(source())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil: %d iterations, %d disks, 4 processors\n\n", sys.NumIterations(), sys.NumDisks())
	fmt.Printf("%-28s %14s %14s\n", "configuration", "energy (J)", "vs Base")
	var base float64
	for _, cfg := range []struct {
		label        string
		policy       string
		restructured bool
	}{
		{"Base (loop-parallel, no PM)", "none", false},
		{"TPM   (loop-parallel)", "TPM", false},
		{"DRPM  (loop-parallel)", "DRPM", false},
		{"T-TPM-m  (layout-aware)", "TPM", true},
		{"T-DRPM-m (layout-aware)", "DRPM", true},
	} {
		rep, err := sys.Simulate(diskreuse.SimOptions{
			Policy:         cfg.policy,
			Restructured:   cfg.restructured,
			Procs:          4,
			ComputePerIter: 1.2e-3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = rep.EnergyJoules
		}
		fmt.Printf("%-28s %14.1f %13.1f%%\n", cfg.label, rep.EnergyJoules,
			100*(1-rep.EnergyJoules/base))
	}
}
