// Out-of-core matrix multiply. C, A, and B are disk-resident matrices at
// page-block granularity, striped over eight I/O nodes (Table 1 defaults).
// The classic i-j-k nest walks A by rows, B by columns, and C by rows; the
// optimizer restructures it so the pages of each disk are visited in
// clusters, and the example compares disk energy under TPM and DRPM with
// and without the transformation.
package main

import (
	"fmt"
	"log"

	"diskreuse/pkg/diskreuse"
)

// One DRL element is one 4-KiB page (a tile of the real matrix); the
// access pattern — not the arithmetic — is what determines disk energy,
// so the multiply's reduction is expressed as accumulating touches.
const source = `
param N = 48

array A[N][N] elem 4096 stripe(unit=32K, factor=8, start=0)
array B[N][N] elem 4096 stripe(unit=32K, factor=8, start=0)
array C[N][N] elem 4096 stripe(unit=32K, factor=8, start=0)

nest MatMul {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      for k = 0 to N-1 {
        C[i][j] = A[i][k] + B[k][j] + C[i][j];
      }
    }
  }
}

# A consumer pass reads the product back, row-major.
nest Consume {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      read C[i][j];
    }
  }
}
`

func main() {
	sys, err := diskreuse.Open(source)
	if err != nil {
		log.Fatal(err)
	}
	orig, restr, err := sys.ReuseStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul: %d iterations over %d disks\n", sys.NumIterations(), sys.NumDisks())
	fmt.Printf("clustering: %d runs -> %d runs (avg run %0.1f -> %0.1f iterations)\n\n",
		orig.Runs, restr.Runs, orig.AvgRunLen, restr.AvgRunLen)

	fmt.Printf("%-10s %-14s %14s %14s %10s\n", "schedule", "policy", "energy (J)", "saving", "spin-ups")
	var base float64
	for _, cfg := range []struct {
		policy       string
		restructured bool
	}{
		{"none", false},
		{"TPM", false},
		{"DRPM", false},
		{"TPM", true},
		{"DRPM", true},
	} {
		rep, err := sys.Simulate(diskreuse.SimOptions{
			Policy:         cfg.policy,
			Restructured:   cfg.restructured,
			ComputePerIter: 0.4e-3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = rep.EnergyJoules
		}
		sched := "original"
		if cfg.restructured {
			sched = "disk-reuse"
		}
		fmt.Printf("%-10s %-14s %14.1f %13.1f%% %10d\n",
			sched, cfg.policy, rep.EnergyJoules,
			100*(1-rep.EnergyJoules/base), rep.SpinUps)
	}
}
