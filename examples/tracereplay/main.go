// Trace round trip: generate an I/O request trace in the paper's
// five-field text format (§7.1), write it to disk, read it back, and
// replay it through the simulator substrate directly — the workflow of the
// standalone dpcsim tool. This example exercises the lower-level internal
// packages the way a systems researcher extending the simulator would.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"diskreuse/internal/disk"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
	"diskreuse/internal/viz"
	"diskreuse/pkg/diskreuse"
)

const source = `
array Data[12288] elem 4096 stripe(unit=32K, factor=8, start=0)
array Out[12288] elem 4096 stripe(unit=32K, factor=8, start=0)
nest Scan    { for i = 0 to 12287 { Out[i] = Data[i]; } }
nest Reverse { for i = 0 to 12287 { read Out[12287-i]; } }
`

func main() {
	sys, err := diskreuse.Open(source)
	if err != nil {
		log.Fatal(err)
	}

	path := filepath.Join(os.TempDir(), "diskreuse-example.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := sys.WriteTrace(f, diskreuse.SimOptions{Restructured: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d requests to %s\n", n, path)

	// Read the trace back, exactly as dpcsim would.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := trace.Decode(in)
	in.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d requests; first: %.3f ms block %d\n",
		len(reqs), reqs[0].Arrival*1e3, reqs[0].Block)

	// Replay under each policy with the standalone striping mapper: blocks
	// are 4-KiB pages, 8 pages per 32-KiB stripe, 8 disks round-robin.
	diskOf := func(block int64) (int, error) { return int((block / 8) % 8), nil }
	model := disk.Ultrastar36Z15()
	var tpmTimeline *viz.Recorder
	for _, pol := range []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM} {
		cfg := sim.Config{Model: model, NumDisks: 8, Policy: pol}
		if pol == sim.TPM {
			tpmTimeline = viz.NewRecorder()
			cfg.Record = tpmTimeline.Record
		}
		res, err := sim.Run(reqs, diskOf, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s energy %9.1f J, disk I/O %8.1f ms, makespan %7.2f s\n",
			pol, res.Energy, res.IOTime*1e3, res.Makespan)
	}

	// The restructured schedule's per-disk clustering, visualized: each
	// disk has one busy block and sleeps ('_') for the rest of the run.
	fmt.Println()
	if err := tpmTimeline.Render(os.Stdout, 72, model.RPMMax); err != nil {
		log.Fatal(err)
	}
	os.Remove(path)
}
