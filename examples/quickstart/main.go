// Quickstart: the paper's Figure 2 scenario. Three loop nests manipulate
// two disk-resident arrays striped over four disks with entirely different
// access patterns. The optimizer reorders the union of all iterations so
// that each disk's data is processed in one long cluster, prints the
// Fig. 2(c)-style restructured loops, and shows the energy effect under
// TPM and DRPM power management.
package main

import (
	"fmt"
	"log"

	"diskreuse/pkg/diskreuse"
)

// The arrays are declared at 4-KiB-page granularity (elem 4096): one
// element is one disk page, the natural out-of-core tile.
const source = `
param N = 8192

array U1[N] elem 4096 stripe(unit=32K, factor=4, start=0)
array U2[N] elem 4096 stripe(unit=32K, factor=4, start=0)

# Nest 1: forward sweep over U1.
nest L1 {
  for i = 0 to N-1 {
    U1[i] = U1[i] + 1;
  }
}

# Nest 2: U2 computed from U1 with a different pattern.
nest L2 {
  for i = 0 to N-1 {
    U2[i] = U1[N-1-i];
  }
}

# Nest 3: read-only pass over U2.
nest L3 {
  for i = 0 to N-1 {
    read U2[i];
  }
}
`

func main() {
	sys, err := diskreuse.Open(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program spans %d disks, %d loop iterations\n\n", sys.NumDisks(), sys.NumIterations())

	orig, restr, err := sys.ReuseStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk clustering (fewer, longer runs = longer disk idle periods):\n")
	fmt.Printf("  original:     %5d runs, avg length %7.1f iterations\n", orig.Runs, orig.AvgRunLen)
	fmt.Printf("  restructured: %5d runs, avg length %7.1f iterations (perfect reuse: %v)\n\n",
		restr.Runs, restr.AvgRunLen, restr.PerfectReuse)

	code, err := sys.RestructuredCode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restructured per-disk loops (the paper's Fig. 2(c) shape):")
	fmt.Println(code)

	fmt.Println("disk energy under each power-management policy:")
	fmt.Printf("  %-22s %12s %14s\n", "configuration", "energy (J)", "disk I/O (ms)")
	for _, cfg := range []struct {
		label        string
		policy       string
		restructured bool
	}{
		{"Base (no PM)", "none", false},
		{"TPM", "TPM", false},
		{"DRPM", "DRPM", false},
		{"T-TPM-s  (restructured)", "TPM", true},
		{"T-DRPM-s (restructured)", "DRPM", true},
	} {
		rep, err := sys.Simulate(diskreuse.SimOptions{Policy: cfg.policy, Restructured: cfg.restructured})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %12.1f %14.1f\n", cfg.label, rep.EnergyJoules, rep.IOTimeSec*1e3)
	}
}
