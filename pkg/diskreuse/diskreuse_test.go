package diskreuse

import (
	"bytes"
	"strings"
	"testing"
)

const exampleSrc = `
array A[16384] elem 4096 stripe(unit=32K, factor=4, start=0)
array B[16384] elem 4096 stripe(unit=32K, factor=4, start=0)
nest Produce { for i = 0 to 16383 { B[i] = A[i]; } }
nest Consume { for i = 0 to 16383 { A[i] = B[i]; } }
`

func open(t *testing.T) *System {
	t.Helper()
	sys, err := Open(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenAndStats(t *testing.T) {
	sys := open(t)
	if sys.NumDisks() != 4 {
		t.Errorf("NumDisks = %d", sys.NumDisks())
	}
	if sys.NumIterations() != 2*16384 {
		t.Errorf("NumIterations = %d", sys.NumIterations())
	}
	orig, restr, err := sys.ReuseStats()
	if err != nil {
		t.Fatal(err)
	}
	if restr.Runs >= orig.Runs {
		t.Errorf("restructuring should reduce runs: %d -> %d", orig.Runs, restr.Runs)
	}
	if !restr.PerfectReuse {
		t.Errorf("expected perfect reuse, got %+v", restr)
	}
	if restr.AvgRunLen <= orig.AvgRunLen {
		t.Errorf("run length should grow: %v -> %v", orig.AvgRunLen, restr.AvgRunLen)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("garbage!"); err == nil {
		t.Error("parse error expected")
	}
	if _, err := Open("array A[4] nest L { for i = 0 to 9 { read A[i]; } }"); err == nil {
		t.Error("out-of-bounds program must be rejected")
	}
}

func TestRestructuredCode(t *testing.T) {
	sys := open(t)
	code, err := sys.RestructuredCode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"disk0", "disk3", "for ss", "step 4"} {
		if !strings.Contains(code, want) {
			t.Errorf("code missing %q", want)
		}
	}
}

func TestSimulatePolicies(t *testing.T) {
	sys := open(t)
	base, err := sys.Simulate(SimOptions{Policy: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if base.EnergyJoules <= 0 || base.Requests <= 0 {
		t.Fatalf("bad base report %+v", base)
	}
	tpmR, err := sys.Simulate(SimOptions{Policy: "TPM", Restructured: true})
	if err != nil {
		t.Fatal(err)
	}
	if tpmR.EnergyJoules >= base.EnergyJoules {
		t.Errorf("restructured TPM (%v J) should beat base (%v J)", tpmR.EnergyJoules, base.EnergyJoules)
	}
	if tpmR.SpinUps == 0 {
		t.Error("restructured TPM should spin up at least once")
	}
	drpmR, err := sys.Simulate(SimOptions{Policy: "DRPM", Restructured: true})
	if err != nil {
		t.Fatal(err)
	}
	if drpmR.SpeedShifts == 0 {
		t.Error("restructured DRPM should shift speeds")
	}
	if _, err := sys.Simulate(SimOptions{Policy: "warp"}); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestSimulateMultiProc(t *testing.T) {
	sys := open(t)
	for _, restructured := range []bool{false, true} {
		rep, err := sys.Simulate(SimOptions{Policy: "TPM", Restructured: restructured, Procs: 2})
		if err != nil {
			t.Fatalf("restructured=%v: %v", restructured, err)
		}
		if rep.EnergyJoules <= 0 {
			t.Errorf("restructured=%v: bad energy", restructured)
		}
	}
}

func TestWriteTrace(t *testing.T) {
	sys := open(t)
	var buf bytes.Buffer
	n, err := sys.WriteTrace(&buf, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if n == 0 || lines != n {
		t.Errorf("wrote %d requests, %d lines", n, lines)
	}
	// Five fields per line.
	first := strings.Fields(strings.SplitN(buf.String(), "\n", 2)[0])
	if len(first) != 5 {
		t.Errorf("line has %d fields: %v", len(first), first)
	}
}
