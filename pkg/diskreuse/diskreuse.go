// Package diskreuse is the public API of this repository: a compiler-guided
// disk power optimizer for loop-nest programs over disk-resident arrays,
// reproducing "A Compiler-Guided Approach for Reducing Disk Power
// Consumption by Exploiting Disk Access Locality" (CGO 2006).
//
// The pipeline is: write (or generate) a DRL program — nests of affine
// loops reading and writing striped disk-resident arrays — then
//
//	sys, err := diskreuse.Open(source)
//	orig, restr := sys.ReuseStats()          // how much clustering improved
//	code, _ := sys.RestructuredCode()        // Fig. 2(c)-style loops
//	rep, _ := sys.Simulate(diskreuse.SimOptions{Policy: "TPM", Restructured: true})
//
// The heavy lifting lives in the internal packages (scanner/parser/sema
// front-end, dependence analysis, polyhedral-lite sets, the disk-reuse
// scheduler, the layout-aware parallelizer, the trace generator, and the
// TPM/DRPM disk simulator); this package wires them together behind a
// small stable surface.
package diskreuse

import (
	"fmt"
	"io"

	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/layout"
	"diskreuse/internal/par"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// System is a compiled DRL program together with its disk layout and
// restructuring state.
type System struct {
	prog *sema.Program
	lay  *layout.Layout
	r    *core.Restructurer
}

// Open parses, validates, and prepares a DRL program for restructuring and
// simulation.
func Open(source string) (*System, error) {
	astProg, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		return nil, err
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return nil, err
	}
	r, err := core.New(prog, lay)
	if err != nil {
		return nil, err
	}
	return &System{prog: prog, lay: lay, r: r}, nil
}

// NumDisks returns the number of I/O nodes the program's arrays span.
func (s *System) NumDisks() int { return s.lay.NumDisks() }

// NumIterations returns the total number of loop iterations across nests.
func (s *System) NumIterations() int { return s.r.Space.NumIterations() }

// ReuseStats summarizes disk-access clustering before and after the §5
// disk-reuse restructuring.
type ReuseStats struct {
	// Runs is the number of maximal schedule spans that stay on one disk;
	// fewer runs mean longer disk idle periods.
	Runs int
	// AvgRunLen is iterations per run.
	AvgRunLen float64
	// PerfectReuse reports whether every disk is visited at most once.
	PerfectReuse bool
}

// ReuseStats computes clustering statistics for the original program order
// and for the restructured schedule.
func (s *System) ReuseStats() (original, restructured ReuseStats, err error) {
	conv := func(st core.ReuseStats) ReuseStats {
		return ReuseStats{Runs: st.Runs, AvgRunLen: st.AvgRunLen, PerfectReuse: st.PerfectReuse}
	}
	orig := core.Stats(s.r.OriginalSchedule(), s.lay.NumDisks())
	rs, err := s.r.DiskReuseSchedule()
	if err != nil {
		return ReuseStats{}, ReuseStats{}, err
	}
	if err := s.r.Verify(rs); err != nil {
		return ReuseStats{}, ReuseStats{}, err
	}
	return conv(orig), conv(core.Stats(rs, s.lay.NumDisks())), nil
}

// RestructuredCode renders the per-disk loop nests of the ideal
// restructuring (the paper's Fig. 2(c) shape).
func (s *System) RestructuredCode() (string, error) {
	return s.r.RestructuredPseudoCode()
}

// SimOptions selects what to simulate.
type SimOptions struct {
	// Policy is "none", "TPM", or "DRPM".
	Policy string
	// Restructured selects the §5 disk-reuse schedule instead of the
	// original program order.
	Restructured bool
	// Procs parallelizes over this many processors (default 1). With
	// Restructured it uses the §6.2 layout-aware parallelization,
	// otherwise the §6.1 loop parallelization.
	Procs int
	// ComputePerIter is the modeled CPU time per iteration in seconds
	// (default 1 ms).
	ComputePerIter float64
}

// Report is a simulation outcome.
type Report struct {
	EnergyJoules float64
	IOTimeSec    float64 // total disk busy time
	ResponseSec  float64 // summed request response times
	MakespanSec  float64
	Requests     int
	SpinUps      int
	SpeedShifts  int
}

// Simulate generates the I/O trace for the selected execution and replays
// it on the Table 1 disk bank under the selected power-management policy.
func (s *System) Simulate(opt SimOptions) (Report, error) {
	var policy sim.Policy
	switch opt.Policy {
	case "", "none", "None", "NoPM":
		policy = sim.NoPM
	case "TPM", "tpm":
		policy = sim.TPM
	case "DRPM", "drpm":
		policy = sim.DRPM
	default:
		return Report{}, fmt.Errorf("diskreuse: unknown policy %q (want none, TPM, or DRPM)", opt.Policy)
	}
	if opt.Procs <= 0 {
		opt.Procs = 1
	}
	compute := opt.ComputePerIter
	if compute <= 0 {
		compute = 1e-3
	}
	phases, err := s.phases(opt.Restructured, opt.Procs)
	if err != nil {
		return Report{}, err
	}
	model := disk.Ultrastar36Z15()
	reqs, err := trace.Generate(s.r, phases, trace.GenConfig{
		ComputePerIter:  compute,
		ServiceEstimate: model.FullSpeedService(s.lay.PageSize),
	})
	if err != nil {
		return Report{}, err
	}
	res, err := sim.Run(reqs, s.lay.PageDisk, sim.Config{
		Model:    model,
		NumDisks: s.lay.NumDisks(),
		Policy:   policy,
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		EnergyJoules: res.Energy,
		IOTimeSec:    res.IOTime,
		ResponseSec:  res.ResponseTime,
		MakespanSec:  res.Makespan,
		Requests:     res.Requests,
	}
	for _, st := range res.PerDisk {
		rep.SpinUps += st.Meter.SpinUps
		rep.SpeedShifts += st.Meter.SpeedShifts
	}
	return rep, nil
}

// WriteTrace generates the I/O trace for the selected execution and writes
// it in the paper's five-field text format.
func (s *System) WriteTrace(w io.Writer, opt SimOptions) (int, error) {
	if opt.Procs <= 0 {
		opt.Procs = 1
	}
	compute := opt.ComputePerIter
	if compute <= 0 {
		compute = 1e-3
	}
	phases, err := s.phases(opt.Restructured, opt.Procs)
	if err != nil {
		return 0, err
	}
	model := disk.Ultrastar36Z15()
	reqs, err := trace.Generate(s.r, phases, trace.GenConfig{
		ComputePerIter:  compute,
		ServiceEstimate: model.FullSpeedService(s.lay.PageSize),
	})
	if err != nil {
		return 0, err
	}
	return len(reqs), trace.Encode(w, reqs)
}

// phases builds the execution phases for the requested configuration.
func (s *System) phases(restructured bool, procs int) ([]trace.Phase, error) {
	if procs == 1 {
		if !restructured {
			return trace.SinglePhase(s.r.OriginalSchedule()), nil
		}
		sched, err := s.r.DiskReuseSchedule()
		if err != nil {
			return nil, err
		}
		if err := s.r.Verify(sched); err != nil {
			return nil, err
		}
		return trace.SinglePhase(sched), nil
	}
	var (
		asg *par.Assignment
		err error
	)
	if restructured {
		asg, err = par.LayoutAware(s.r, procs)
	} else {
		asg, err = par.LoopParallelize(s.r, procs)
	}
	if err != nil {
		return nil, err
	}
	numNests := len(s.prog.Nests)
	perProc := make([][]int, procs)
	for p, sub := range asg.Subsets() {
		byNest := make([][]int, numNests)
		for _, id := range sub {
			k := s.r.Space.Nest(id)
			byNest[k] = append(byNest[k], id)
		}
		for _, group := range byNest {
			if len(group) == 0 {
				continue
			}
			order := group
			if restructured {
				sched, err := s.r.ScheduleFor(group)
				if err != nil {
					return nil, err
				}
				order = sched.Order
			}
			perProc[p] = append(perProc[p], order...)
		}
	}
	phases := trace.NestPhases(s.r.Space, perProc, numNests)
	if err := trace.VerifyPhases(s.r.Space, s.r.Graph, phases); err != nil {
		return nil, err
	}
	return phases, nil
}
