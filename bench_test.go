// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each BenchmarkTableN/BenchmarkFigN runs the
// corresponding experiment pipeline (compile -> restructure -> trace ->
// simulate) and reports the paper's headline quantities as custom metrics:
//
//	go test -bench . -benchmem
//
// Benchmark iterations run the pipeline at the Tiny workload scale so b.N
// timing is meaningful; the reported *_pct metrics come from one cached
// run at the Default (evaluation) scale, matching cmd/dpcbench -all. The
// rows themselves are printed by `go test -bench . -v` via b.Log or
// regenerated with cmd/dpcbench.
package bench

import (
	"runtime"
	"sync"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/layout"
	"diskreuse/internal/layoutopt"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// Default-scale results are expensive (tens of seconds); compute them once
// and share across benchmarks.
var (
	onceDefault sync.Once
	suite1P     *exp.SuiteResult
	suite4P     *exp.SuiteResult
	suiteErr    error
)

func defaultSuites(b *testing.B) (*exp.SuiteResult, *exp.SuiteResult) {
	b.Helper()
	onceDefault.Do(func() {
		// Jobs 0 selects GOMAXPROCS: the fixture regenerates on the
		// parallel path, which is deep-equal to the serial one (see
		// exp.TestParallelDeterminism).
		suite1P, suiteErr = exp.RunSuite(exp.Options{Size: apps.Default, Procs: 1, Jobs: 0})
		if suiteErr != nil {
			return
		}
		suite4P, suiteErr = exp.RunSuite(exp.Options{Size: apps.Default, Procs: 4, Jobs: 0})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite1P, suite4P
}

// runTinySuite is the benchmarked unit of work: the full experiment
// pipeline over the six applications at test scale.
func runTinySuite(b *testing.B, procs int) *exp.SuiteResult {
	b.Helper()
	sr, err := exp.RunSuite(exp.Options{Size: apps.Tiny, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	return sr
}

// BenchmarkTable1DiskModel regenerates Table 1 (simulation parameters) and
// exercises the disk model's service-time math.
func BenchmarkTable1DiskModel(b *testing.B) {
	m := disk.Ultrastar36Z15()
	var sink float64
	for i := 0; i < b.N; i++ {
		out := exp.Table1(m, sema.Options{})
		if len(out) == 0 {
			b.Fatal("empty table")
		}
		for _, rpm := range m.Levels() {
			sink += m.ServiceTime(4096, rpm)
		}
	}
	_ = sink
	b.ReportMetric(m.BreakEven, "breakeven_s")
}

// BenchmarkTable2AppCharacteristics regenerates Table 2: per-application
// data sizes, request counts, and Base energy / I/O time.
func BenchmarkTable2AppCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runTinySuite(b, 1)
		if len(exp.Table2(sr)) == 0 {
			b.Fatal("empty table")
		}
	}
	one, _ := defaultSuites(b)
	b.Log("\n" + exp.Table2(one))
	var reqs float64
	for i := range one.Apps {
		if r, ok := one.Apps[i].Get(exp.VBase); ok {
			reqs += float64(r.Requests)
		}
	}
	b.ReportMetric(reqs/float64(len(one.Apps)), "avg_requests")
}

// BenchmarkFig9aEnergySingleCPU regenerates Figure 9(a): normalized disk
// energy of the five single-processor versions.
func BenchmarkFig9aEnergySingleCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runTinySuite(b, 1)
		if len(exp.Figure9(sr)) == 0 {
			b.Fatal("empty figure")
		}
	}
	one, _ := defaultSuites(b)
	b.Log("\n" + exp.Figure9(one))
	b.ReportMetric(100*one.AverageSaving(exp.VTPM), "tpm_saving_pct")
	b.ReportMetric(100*one.AverageSaving(exp.VDRPM), "drpm_saving_pct")
	b.ReportMetric(100*one.AverageSaving(exp.VTTPMs), "t_tpm_s_saving_pct")
	b.ReportMetric(100*one.AverageSaving(exp.VTDRPMs), "t_drpm_s_saving_pct")
}

// BenchmarkFig9bEnergyMultiCPU regenerates Figure 9(b): normalized disk
// energy of the seven versions on four processors.
func BenchmarkFig9bEnergyMultiCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runTinySuite(b, 4)
		if len(exp.Figure9(sr)) == 0 {
			b.Fatal("empty figure")
		}
	}
	_, four := defaultSuites(b)
	b.Log("\n" + exp.Figure9(four))
	b.ReportMetric(100*four.AverageSaving(exp.VTTPMs), "t_tpm_s_saving_pct")
	b.ReportMetric(100*four.AverageSaving(exp.VTDRPMs), "t_drpm_s_saving_pct")
	b.ReportMetric(100*four.AverageSaving(exp.VTTPMm), "t_tpm_m_saving_pct")
	b.ReportMetric(100*four.AverageSaving(exp.VTDRPMm), "t_drpm_m_saving_pct")
}

// BenchmarkFig10aPerfSingleCPU regenerates Figure 10(a): disk I/O time
// degradation of the single-processor versions.
func BenchmarkFig10aPerfSingleCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runTinySuite(b, 1)
		if len(exp.Figure10(sr)) == 0 {
			b.Fatal("empty figure")
		}
	}
	one, _ := defaultSuites(b)
	b.Log("\n" + exp.Figure10(one))
	b.ReportMetric(100*one.AverageDegradation(exp.VDRPM), "drpm_perf_pct")
	b.ReportMetric(100*one.AverageDegradation(exp.VTDRPMs), "t_drpm_s_perf_pct")
}

// BenchmarkFig10bPerfMultiCPU regenerates Figure 10(b): disk I/O time
// degradation of the seven versions on four processors.
func BenchmarkFig10bPerfMultiCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr := runTinySuite(b, 4)
		if len(exp.Figure10(sr)) == 0 {
			b.Fatal("empty figure")
		}
	}
	_, four := defaultSuites(b)
	b.Log("\n" + exp.Figure10(four))
	b.ReportMetric(100*four.AverageDegradation(exp.VDRPM), "drpm_perf_pct")
	b.ReportMetric(100*four.AverageDegradation(exp.VTDRPMm), "t_drpm_m_perf_pct")
}

// --- harness concurrency benchmarks ---

// benchRunSuite runs the full (app × version) grid at Tiny scale with the
// given worker count — the unit of work whose serial/parallel ratio is the
// harness speedup tracked by the bench trajectory.
func benchRunSuite(b *testing.B, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sr, err := exp.RunSuite(exp.Options{Size: apps.Tiny, Procs: 4, Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		if len(sr.Apps) != 6 {
			b.Fatal("short suite")
		}
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkRunSuiteSerial is the Jobs=1 reference: the whole pipeline on
// one worker, as the harness ran before the concurrent fan-out.
func BenchmarkRunSuiteSerial(b *testing.B) {
	benchRunSuite(b, 1)
}

// BenchmarkRunSuiteParallel fans the same grid out over all cores; the
// ns/op ratio against BenchmarkRunSuiteSerial is the harness speedup.
func BenchmarkRunSuiteParallel(b *testing.B) {
	benchRunSuite(b, runtime.GOMAXPROCS(0))
}

// --- component micro-benchmarks ---

const benchSrc = `
array A[65536] elem 4096 stripe(unit=32K, factor=8, start=0)
array B[65536] elem 4096 stripe(unit=32K, factor=8, start=0)
nest Fwd { for i = 0 to 65535 { B[i] = A[i]; } }
nest Rev { for i = 0 to 65535 { A[i] = B[65535-i]; } }
`

func buildBench(b *testing.B) *core.Restructurer {
	b.Helper()
	astProg, err := parser.Parse(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.New(prog, lay)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkCompileFrontEnd measures the scanner+parser+sema front end.
func BenchmarkCompileFrontEnd(b *testing.B) {
	src := apps.Suite(apps.Tiny)[0].Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		astProg, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sema.Analyze(astProg, sema.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiskReuseScheduler measures the Fig. 3 scheduler over a 131072-
// iteration program (iterations scheduled per second is the metric that
// bounds compile time).
func BenchmarkDiskReuseScheduler(b *testing.B) {
	r := buildBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := r.DiskReuseSchedule()
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != 131072 {
			b.Fatal("bad schedule length")
		}
	}
	b.ReportMetric(float64(131072*b.N)/b.Elapsed().Seconds(), "iters/s")
}

// BenchmarkTraceGeneration measures request-trace generation.
func BenchmarkTraceGeneration(b *testing.B) {
	r := buildBench(b)
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		b.Fatal(err)
	}
	phases := trace.SinglePhase(sched)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs, err := trace.Generate(r, phases, trace.GenConfig{ComputePerIter: 1e-3})
		if err != nil {
			b.Fatal(err)
		}
		if len(reqs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkSimulatorTPM measures the trace-driven simulator under TPM.
func BenchmarkSimulatorTPM(b *testing.B) {
	r := buildBench(b)
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := trace.Generate(r, trace.SinglePhase(sched), trace.GenConfig{ComputePerIter: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	lay := r.Layout
	cfg := sim.Config{Model: disk.Ultrastar36Z15(), NumDisks: lay.NumDisks(), Policy: sim.TPM}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(reqs, lay.PageDisk, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)*b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// --- ablation benchmarks (design-choice studies from DESIGN.md) ---

// BenchmarkAblationTPMThreshold sweeps the TPM idleness threshold and
// reports the restructured saving at each point.
func BenchmarkAblationTPMThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []float64{5, 15.2, 60} {
			sr, err := exp.RunSuite(exp.Options{Size: apps.Tiny, Procs: 1, TPMThreshold: thr})
			if err != nil {
				b.Fatal(err)
			}
			_ = sr
		}
	}
	sr, err := exp.RunSuite(exp.Options{Size: apps.Default, Procs: 1, TPMThreshold: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*sr.AverageSaving(exp.VTTPMs), "t_tpm_s_at_5s_pct")
}

// BenchmarkAblationDRPMWindow sweeps the DRPM controller window.
func BenchmarkAblationDRPMWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, win := range []int{25, 100, 400} {
			if _, err := exp.RunSuite(exp.Options{Size: apps.Tiny, Procs: 1, DRPMWindow: win}); err != nil {
				b.Fatal(err)
			}
		}
	}
	sr, err := exp.RunSuite(exp.Options{Size: apps.Default, Procs: 1, DRPMWindow: 25})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*sr.AverageSaving(exp.VTDRPMs), "t_drpm_s_at_w25_pct")
}

// BenchmarkAblationLayoutOpt runs the §8 unified layout+restructuring
// optimizer over its candidate space.
func BenchmarkAblationLayoutOpt(b *testing.B) {
	a, err := apps.ByName("FFT", apps.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		best, all, err := layoutopt.Optimize(a, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(all) == 0 {
			b.Fatal("no results")
		}
		_ = best
	}
	best, _, err := layoutopt.Optimize(a, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(best.Factor), "best_stripe_factor")
	b.ReportMetric(float64(best.Unit)/1024, "best_unit_kb")
}
