package sema

import (
	"strings"
	"testing"

	"diskreuse/internal/affine"
	"diskreuse/internal/ast"
	"diskreuse/internal/parser"
)

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(prog, Options{})
	if err == nil {
		t.Fatalf("Analyze should fail for:\n%s", src)
	}
	return err
}

func TestAnalyzeBasic(t *testing.T) {
	p := analyze(t, `
param N = 16
array U[2*N][N] elem 4 stripe(unit=1K, factor=4, start=1)
array V[N]
nest L1 {
  for i = 0 to N-1 {
    for j = 0 to i {
      U[i+j][j] = U[i][j] + V[i];
    }
  }
}
`)
	u := p.Array("U")
	if u == nil || u.Dims[0] != 32 || u.Dims[1] != 16 || u.ElemSize != 4 {
		t.Fatalf("U = %+v", u)
	}
	if u.Elems() != 512 || u.Bytes() != 2048 {
		t.Errorf("U elems=%d bytes=%d", u.Elems(), u.Bytes())
	}
	v := p.Array("V")
	if v.Stripe != DefaultStripe {
		t.Errorf("V stripe = %+v, want default", v.Stripe)
	}
	if p.NumDisks() != 8 { // V uses default factor 8 start 0
		t.Errorf("NumDisks = %d", p.NumDisks())
	}

	n := p.Nests[0]
	if n.Depth() != 2 || len(n.Stmts) != 1 {
		t.Fatalf("nest depth=%d stmts=%d", n.Depth(), len(n.Stmts))
	}
	// Triangular bound: j goes 0..i.
	if !n.Loops[1].Hi.Equal(affine.Var("i")) {
		t.Errorf("inner Hi = %v", n.Loops[1].Hi)
	}
	// Param N substituted everywhere.
	if !n.Loops[0].Hi.Equal(affine.Constant(15)) {
		t.Errorf("outer Hi = %v", n.Loops[0].Hi)
	}
	st := n.Stmts[0]
	if st.Write.Array != u || len(st.Reads) != 2 {
		t.Errorf("stmt = %+v", st)
	}
	if got := len(st.Refs()); got != 3 {
		t.Errorf("Refs len = %d", got)
	}
}

func TestLinearIndexRoundTrip(t *testing.T) {
	a := &Array{Name: "A", Dims: []int64{3, 4, 5}, ElemSize: 8}
	var lin int64
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 4; j++ {
			for k := int64(0); k < 5; k++ {
				got, ok := a.LinearIndex([]int64{i, j, k})
				if !ok || got != lin {
					t.Fatalf("LinearIndex(%d,%d,%d) = %d,%v want %d", i, j, k, got, ok, lin)
				}
				back := a.Unflatten(lin)
				if back[0] != i || back[1] != j || back[2] != k {
					t.Fatalf("Unflatten(%d) = %v", lin, back)
				}
				lin++
			}
		}
	}
	if _, ok := a.LinearIndex([]int64{3, 0, 0}); ok {
		t.Error("out of bounds must fail")
	}
	if _, ok := a.LinearIndex([]int64{0, -1, 0}); ok {
		t.Error("negative subscript must fail")
	}
	if _, ok := a.LinearIndex([]int64{0, 0}); ok {
		t.Error("rank mismatch must fail")
	}
}

func TestForEachIteration(t *testing.T) {
	p := analyze(t, `
array A[8][8]
nest L {
  for i = 0 to 2 {
    for j = i to 3 {
      read A[i][j];
    }
  }
}
`)
	n := p.Nests[0]
	var got []affine.Vector
	n.ForEachIteration(func(iv affine.Vector) {
		got = append(got, iv.Clone())
	})
	want := []affine.Vector{
		{0, 0}, {0, 1}, {0, 2}, {0, 3},
		{1, 1}, {1, 2}, {1, 3},
		{2, 2}, {2, 3},
	}
	if len(got) != len(want) {
		t.Fatalf("iterations = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("iteration %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n.IterationCount() != int64(len(want)) {
		t.Errorf("IterationCount = %d", n.IterationCount())
	}
	// lexicographic order
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Errorf("iterations not in lexicographic order at %d: %v >= %v", i, got[i-1], got[i])
		}
	}
}

func TestStepEnumeration(t *testing.T) {
	p := analyze(t, `
array A[16]
nest L {
  for i = 1 to 10 step 3 {
    read A[i];
  }
}
`)
	var vals []int64
	p.Nests[0].ForEachIteration(func(iv affine.Vector) { vals = append(vals, iv[0]) })
	want := []int64{1, 4, 7, 10}
	if len(vals) != len(want) {
		t.Fatalf("vals = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestRefEval(t *testing.T) {
	p := analyze(t, `
array A[10][10]
nest L {
  for i = 0 to 9 {
    for j = 0 to 9 {
      A[j][i+1] = A[i][j];
    }
  }
}
`)
	st := p.Nests[0].Stmts[0]
	env := map[string]int64{"i": 2, "j": 5}
	w := st.Write.Eval(env)
	if w[0] != 5 || w[1] != 3 {
		t.Errorf("write eval = %v", w)
	}
	if s := st.Write.String(); s != "A[j][i + 1]" {
		t.Errorf("ref string = %q", s)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`array A[4] array A[4] nest L { for i = 0 to 3 { read A[i]; } }`, "duplicate array"},
		{`param A = 4
array A[4] nest L { for i = 0 to 3 { read A[i]; } }`, "shadows a param"},
		{`array A[4] nest L { for i = 0 to 3 { read B[i]; } }`, "undeclared array"},
		{`array A[4][4] nest L { for i = 0 to 3 { read A[i]; } }`, "rank"},
		{`array A[4] nest L { for i = 0 to 3 { read A[k]; } }`, "unknown variable"},
		{`array A[4] nest L { for i = 0 to k { read A[i]; } }`, "unknown variable"},
		{`array A[4] nest L { for i = 0 to 3 { for i = 0 to 3 { read A[i]; } } }`, "shadows an enclosing"},
		{`param N = 0
array A[N] nest L { for i = 0 to 3 { read A[i]; } }`, "positive"},
		{`array A[N] nest L { for i = 0 to 3 { read A[i]; } }`, "not constant"},
		{`array A[4] nest L { for i = 0 to 3 { read A[i]; for j = 0 to 1 { read A[j]; } } }`, "imperfect"},
		{`array A[4] nest L { for i = 0 to 3 { for j = 0 to 1 { read A[j]; } for j = 0 to 1 { read A[j]; } } }`, "multiple loops"},
		{`array A[4] nest L { for i = 0 to 3 { for j = 0 to 1 { } } }`, "empty innermost"},
		{`array A[4]`, "no loop nests"},
		{`array A[4] nest N1 { for i = 0 to 1 { read A[i]; } } nest N1 { for i = 0 to 1 { read A[i]; } }`, "duplicate nest"},
	}
	for _, c := range cases {
		err := analyzeErr(t, c.src)
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q, want substring %q", err, c.want)
		}
	}
}

func TestDefaultStripeOverride(t *testing.T) {
	prog, err := parser.Parse(`array A[4] nest L { for i = 0 to 3 { read A[i]; } }`)
	if err != nil {
		t.Fatal(err)
	}
	custom := ast.StripeSpec{Unit: 4096, Factor: 2, Start: 1}
	p, err := Analyze(prog, Options{DefaultStripe: custom})
	if err != nil {
		t.Fatal(err)
	}
	if p.Array("A").Stripe != custom {
		t.Errorf("stripe = %+v", p.Array("A").Stripe)
	}
	if p.NumDisks() != 3 {
		t.Errorf("NumDisks = %d, want 3 (start 1 + factor 2)", p.NumDisks())
	}
}
