// Package sema validates DRL programs and lowers them to a compact typed IR.
//
// The analyzer resolves symbolic parameters to constants, checks that the
// program falls inside the class the paper's transformations handle —
// perfect loop nests, affine bounds over enclosing iterators, affine
// subscripts over iterators, declared arrays with matching ranks — and
// produces a Program whose expressions mention loop iterators only.
package sema

import (
	"fmt"

	"diskreuse/internal/affine"
	"diskreuse/internal/ast"
	"diskreuse/internal/scan"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos scan.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos scan.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Options configures analysis.
type Options struct {
	// DefaultStripe is applied to arrays declared without a stripe clause.
	// A zero value selects the paper's Table 1 defaults: 32 KB stripe unit,
	// 8 disks, starting at disk 0.
	DefaultStripe ast.StripeSpec
}

// DefaultStripe is the Table 1 striping configuration.
var DefaultStripe = ast.StripeSpec{Unit: 32 << 10, Factor: 8, Start: 0}

// Program is a validated DRL program. All expressions are affine over loop
// iterator names only; parameters have been substituted away.
type Program struct {
	Arrays []*Array
	Nests  []*Nest

	byName map[string]*Array
}

// Array is a lowered array declaration with constant extents.
type Array struct {
	Name     string
	Index    int // position in Program.Arrays
	Dims     []int64
	ElemSize int64
	Stripe   ast.StripeSpec
	File     string
}

// Elems returns the total number of elements.
func (a *Array) Elems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total size of the backing file in bytes.
func (a *Array) Bytes() int64 { return a.Elems() * a.ElemSize }

// LinearIndex maps a subscript tuple to the row-major linear element index.
// It returns false if the tuple is out of bounds.
func (a *Array) LinearIndex(idx []int64) (int64, bool) {
	if len(idx) != len(a.Dims) {
		return 0, false
	}
	var lin int64
	for k, x := range idx {
		if x < 0 || x >= a.Dims[k] {
			return 0, false
		}
		lin = lin*a.Dims[k] + x
	}
	return lin, true
}

// Unflatten maps a linear element index back to a subscript tuple.
func (a *Array) Unflatten(lin int64) []int64 {
	idx := make([]int64, len(a.Dims))
	for k := len(a.Dims) - 1; k >= 0; k-- {
		idx[k] = lin % a.Dims[k]
		lin /= a.Dims[k]
	}
	return idx
}

// Loop is one level of a lowered perfect nest. Bounds are inclusive and
// affine over the iterators of enclosing (outer) loops.
type Loop struct {
	Var  string
	Lo   affine.Expr
	Hi   affine.Expr
	Step int64
}

// Ref is a lowered array reference with affine subscripts over the
// iterators of its nest.
type Ref struct {
	Array *Array
	Subs  []affine.Expr
}

func (r *Ref) String() string {
	s := r.Array.Name
	for _, e := range r.Subs {
		s += fmt.Sprintf("[%s]", e)
	}
	return s
}

// Eval returns the element subscripts referenced at iteration env.
func (r *Ref) Eval(env map[string]int64) []int64 {
	idx := make([]int64, len(r.Subs))
	for k, e := range r.Subs {
		idx[k] = e.MustEval(env)
	}
	return idx
}

// Stmt is a lowered innermost-body statement.
type Stmt struct {
	Index int  // position within the nest body
	Write *Ref // nil for a pure read statement
	Reads []*Ref
}

// Refs returns all references of the statement, write first if present.
func (s *Stmt) Refs() []*Ref {
	var out []*Ref
	if s.Write != nil {
		out = append(out, s.Write)
	}
	return append(out, s.Reads...)
}

// Nest is a lowered perfect loop nest.
type Nest struct {
	Name  string
	Index int // position in Program.Nests
	Loops []*Loop
	Stmts []*Stmt
}

// Depth returns the number of loop levels.
func (n *Nest) Depth() int { return len(n.Loops) }

// Iterators returns the loop variable names, outermost first.
func (n *Nest) Iterators() []string {
	vs := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		vs[i] = l.Var
	}
	return vs
}

// Env binds the nest's iterators to the entries of iteration vector iv.
func (n *Nest) Env(iv affine.Vector) map[string]int64 {
	env := make(map[string]int64, len(n.Loops))
	for i, l := range n.Loops {
		env[l.Var] = iv[i]
	}
	return env
}

// LoopBound is one loop level's bounds compiled against the nest's
// iterator order, so enumeration evaluates them straight off the iteration
// vector with no per-iteration map. Bounds at level l only mention
// enclosing iterators, so Lo/Hi evaluate against iv[:l] of any iteration
// vector of the nest.
type LoopBound struct {
	Lo, Hi affine.VecExpr
	Step   int64
}

// Bounds compiles every loop level's bounds against the nest's iterator
// order (affine.VecExpr). It is the lowered form both the tree-walk
// enumerator below and interp's compiled iteration kernels consume.
func (n *Nest) Bounds() []LoopBound {
	bs := make([]LoopBound, len(n.Loops))
	vars := n.Iterators()
	for i, l := range n.Loops {
		bs[i] = LoopBound{Lo: l.Lo.MustBind(vars), Hi: l.Hi.MustBind(vars), Step: l.Step}
	}
	return bs
}

// ForEachIteration enumerates the nest's iteration space in lexicographic
// (original program) order, calling fn with each iteration vector. The
// vector passed to fn is reused across calls; fn must copy it to retain it.
func (n *Nest) ForEachIteration(fn func(iv affine.Vector)) {
	iv := make(affine.Vector, len(n.Loops))
	enumerate(0, iv, n.Bounds(), fn)
}

func enumerate(level int, iv affine.Vector, bounds []LoopBound, fn func(affine.Vector)) {
	if level == len(bounds) {
		fn(iv)
		return
	}
	b := bounds[level]
	lo := b.Lo.EvalVec(iv)
	hi := b.Hi.EvalVec(iv)
	for v := lo; v <= hi; v += b.Step {
		iv[level] = v
		enumerate(level+1, iv, bounds, fn)
	}
}

// IterationCount returns the number of iterations in the nest's space.
func (n *Nest) IterationCount() int64 {
	var count int64
	n.ForEachIteration(func(affine.Vector) { count++ })
	return count
}

// Array returns the array declaration with the given name, or nil.
func (p *Program) Array(name string) *Array { return p.byName[name] }

// NumDisks returns the highest disk index used by any array's striping,
// plus one — the number of I/O nodes the program's data spans.
func (p *Program) NumDisks() int {
	max := 0
	for _, a := range p.Arrays {
		if end := a.Stripe.Start + a.Stripe.Factor; end > max {
			max = end
		}
	}
	return max
}

// Analyze validates prog and lowers it.
func Analyze(prog *ast.Program, opts Options) (*Program, error) {
	def := opts.DefaultStripe
	if def.Unit == 0 {
		def = DefaultStripe
	}
	env := prog.ParamEnv()
	out := &Program{byName: map[string]*Array{}}

	seenParam := map[string]bool{}
	for _, pr := range prog.Params {
		if seenParam[pr.Name] {
			return nil, errorf(pr.Pos, "duplicate param %s", pr.Name)
		}
		seenParam[pr.Name] = true
	}

	for _, a := range prog.Arrays {
		if out.byName[a.Name] != nil {
			return nil, errorf(a.Pos, "duplicate array %s", a.Name)
		}
		if seenParam[a.Name] {
			return nil, errorf(a.Pos, "array %s shadows a param", a.Name)
		}
		la := &Array{
			Name:     a.Name,
			Index:    len(out.Arrays),
			ElemSize: a.ElemSize,
			File:     a.File,
		}
		for _, d := range a.Dims {
			v, err := substAll(d, env).Eval(nil)
			if err != nil {
				return nil, errorf(a.Pos, "array %s: extent %s is not constant", a.Name, d)
			}
			if v <= 0 {
				return nil, errorf(a.Pos, "array %s: extent %s = %d must be positive", a.Name, d, v)
			}
			la.Dims = append(la.Dims, v)
		}
		if a.Stripe != nil {
			la.Stripe = *a.Stripe
		} else {
			la.Stripe = def
		}
		out.Arrays = append(out.Arrays, la)
		out.byName[a.Name] = la
	}

	seenNest := map[string]bool{}
	for _, n := range prog.Nests {
		if seenNest[n.Name] {
			return nil, errorf(n.Pos, "duplicate nest %s", n.Name)
		}
		seenNest[n.Name] = true
		ln, err := lowerNest(n, out, env, seenParam)
		if err != nil {
			return nil, err
		}
		ln.Index = len(out.Nests)
		out.Nests = append(out.Nests, ln)
	}
	if len(out.Nests) == 0 {
		return nil, fmt.Errorf("sema: program has no loop nests")
	}
	return out, nil
}

// substAll substitutes every parameter binding in env into e.
func substAll(e affine.Expr, env map[string]int64) affine.Expr {
	out := e
	for v := range e.Coeffs {
		if val, ok := env[v]; ok {
			out = out.Subst(v, affine.Constant(val))
		}
	}
	return out
}

func lowerNest(n *ast.Nest, prog *Program, params map[string]int64, isParam map[string]bool) (*Nest, error) {
	ln := &Nest{Name: n.Name}
	inScope := map[string]bool{}

	var lowerRef func(r *ast.Ref) (*Ref, error)
	lowerRef = func(r *ast.Ref) (*Ref, error) {
		arr := prog.byName[r.Array]
		if arr == nil {
			return nil, errorf(r.Pos, "nest %s: reference to undeclared array %s", n.Name, r.Array)
		}
		if len(r.Subs) != len(arr.Dims) {
			return nil, errorf(r.Pos, "nest %s: %s has %d subscripts, array %s has rank %d",
				n.Name, r, len(r.Subs), arr.Name, len(arr.Dims))
		}
		lr := &Ref{Array: arr}
		for _, sub := range r.Subs {
			e := substAll(sub, params)
			for v := range e.Coeffs {
				if !inScope[v] {
					return nil, errorf(r.Pos, "nest %s: subscript %s uses unknown variable %s", n.Name, sub, v)
				}
			}
			lr.Subs = append(lr.Subs, e)
		}
		return lr, nil
	}

	loop := n.Loop
	for loop != nil {
		if inScope[loop.Var] {
			return nil, errorf(loop.Pos, "nest %s: iterator %s shadows an enclosing iterator", n.Name, loop.Var)
		}
		if isParam[loop.Var] {
			return nil, errorf(loop.Pos, "nest %s: iterator %s shadows a param", n.Name, loop.Var)
		}
		lo := substAll(loop.Lo, params)
		hi := substAll(loop.Hi, params)
		for _, e := range []affine.Expr{lo, hi} {
			for v := range e.Coeffs {
				if !inScope[v] {
					return nil, errorf(loop.Pos, "nest %s: bound %s uses unknown variable %s", n.Name, e, v)
				}
			}
		}
		inScope[loop.Var] = true
		ln.Loops = append(ln.Loops, &Loop{Var: loop.Var, Lo: lo, Hi: hi, Step: loop.Step})

		// Split body into at most one inner loop plus leaf statements;
		// perfect-nest discipline: a loop containing another loop must
		// contain nothing else.
		var inner *ast.Loop
		var leaves []ast.Stmt
		for _, s := range loop.Body {
			if il, ok := s.(*ast.Loop); ok {
				if inner != nil {
					return nil, errorf(il.Pos, "nest %s: multiple loops at the same level; split into separate nests", n.Name)
				}
				inner = il
			} else {
				leaves = append(leaves, s)
			}
		}
		if inner != nil && len(leaves) > 0 {
			return nil, errorf(loop.Pos, "nest %s: imperfect nest (statements beside an inner loop); hoist into separate nests", n.Name)
		}
		if inner == nil {
			if len(leaves) == 0 {
				return nil, errorf(loop.Pos, "nest %s: empty innermost loop", n.Name)
			}
			for _, s := range leaves {
				st := &Stmt{Index: len(ln.Stmts)}
				switch conc := s.(type) {
				case *ast.Assign:
					w, err := lowerRef(conc.LHS)
					if err != nil {
						return nil, err
					}
					st.Write = w
					for _, r := range conc.RHS {
						lr, err := lowerRef(r)
						if err != nil {
							return nil, err
						}
						st.Reads = append(st.Reads, lr)
					}
				case *ast.ReadStmt:
					lr, err := lowerRef(conc.Ref)
					if err != nil {
						return nil, err
					}
					st.Reads = append(st.Reads, lr)
				}
				ln.Stmts = append(ln.Stmts, st)
			}
			return ln, nil
		}
		loop = inner
	}
	return ln, nil
}
