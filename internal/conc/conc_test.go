package conc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
)

func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 64} {
		var hits [57]atomic.Int32
		err := ForEach(context.Background(), len(hits), jobs, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("jobs=%d: index %d visited %d times", jobs, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	for _, jobs := range []int{0, 1, 8} {
		if err := ForEach(context.Background(), 0, jobs, func(context.Context, int) error {
			t.Error("fn must not run for n=0")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// n = 0 with an already-canceled parent surfaces the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 0, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachMoreJobsThanItems(t *testing.T) {
	// jobs is clamped to n; every index still runs exactly once.
	var hits [3]atomic.Int32
	err := ForEach(context.Background(), len(hits), 64, func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("index %d visited %d times", i, got)
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 3 {
			return boom
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop dispatching promptly after the error: with 1000
	// indices and 4 workers, a canceled context should have cut the sweep
	// well short (workers check ctx before each dispatch).
	if after.Load() > 996 {
		t.Errorf("cancellation did not stop dispatch (%d calls saw a canceled ctx)", after.Load())
	}
}

func TestForEachSerialErrorStopsInline(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran++
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 5 {
		t.Errorf("ran %d calls after inline error, want 5", ran)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "kaboom" {
					t.Errorf("jobs=%d: recovered %v, want kaboom", jobs, r)
				}
			}()
			ForEach(context.Background(), 100, jobs, func(_ context.Context, i int) error {
				if i == 7 {
					panic("kaboom")
				}
				return nil
			})
			t.Errorf("jobs=%d: ForEach returned instead of panicking", jobs)
		}()
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1_000_000, 2, func(ctx context.Context, i int) error {
			ran.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after parent cancellation")
	}
	if ran.Load() >= 1_000_000 {
		t.Error("cancellation should have stopped the sweep early")
	}
}

func TestChunksCoverAndPartition(t *testing.T) {
	for _, tc := range []struct{ n, chunks int }{
		{0, 4}, {1, 4}, {7, 3}, {10, 1}, {10, 10}, {10, 100}, {1000, 7}, {5, 0},
	} {
		cs := Chunks(tc.n, tc.chunks)
		if tc.n == 0 {
			if cs != nil {
				t.Errorf("Chunks(0, %d) = %v, want nil", tc.chunks, cs)
			}
			continue
		}
		lo := 0
		for _, c := range cs {
			if c[0] != lo {
				t.Fatalf("Chunks(%d, %d) = %v: gap/overlap at %v", tc.n, tc.chunks, cs, c)
			}
			if c[1] <= c[0] {
				t.Fatalf("Chunks(%d, %d) = %v: empty chunk %v", tc.n, tc.chunks, cs, c)
			}
			lo = c[1]
		}
		if lo != tc.n {
			t.Fatalf("Chunks(%d, %d) = %v: does not cover [0, n)", tc.n, tc.chunks, cs)
		}
		if want := tc.chunks; want >= 1 && want <= tc.n && len(cs) != want {
			t.Errorf("Chunks(%d, %d) produced %d chunks, want %d", tc.n, tc.chunks, len(cs), want)
		}
	}
}

func TestForEachChunkVisitsEveryIndex(t *testing.T) {
	for _, jobs := range []int{0, 1, 3} {
		var hits [123]atomic.Int32
		err := ForEachChunk(context.Background(), len(hits), jobs, func(_ context.Context, lo, hi int) error {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("jobs=%d: index %d visited %d times", jobs, i, got)
			}
		}
	}
}

// TestForEachRecordsPoolStats: a PoolStats sink on the context receives
// per-task and per-pool observations from both the serial and the parallel
// paths; without a sink the pool pays only the context lookup.
func TestForEachRecordsPoolStats(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		var stats obs.PoolStats
		ctx := obs.WithPool(context.Background(), &stats)
		err := ForEach(ctx, 6, jobs, func(ctx context.Context, i int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		s := stats.Snapshot()
		if s.Pools != 1 || s.Tasks != 6 {
			t.Errorf("jobs=%d: pools/tasks = %d/%d, want 1/6", jobs, s.Pools, s.Tasks)
		}
		if s.TaskTimeMS < 5 {
			t.Errorf("jobs=%d: task time = %v ms, want >= 5 (6 tasks × 1 ms)", jobs, s.TaskTimeMS)
		}
		if s.WorkerTimeMS < s.TaskTimeMS/float64(max(jobs, 1))-1 {
			t.Errorf("jobs=%d: worker time %v ms too small for task time %v ms", jobs, s.WorkerTimeMS, s.TaskTimeMS)
		}
		if s.Occupancy <= 0 || s.Occupancy > 1.001 {
			t.Errorf("jobs=%d: occupancy = %v", jobs, s.Occupancy)
		}
	}
	// WithPool(nil) leaves the context untouched — no sink, no stats.
	ctx := obs.WithPool(context.Background(), nil)
	if obs.PoolFrom(ctx) != nil {
		t.Error("WithPool(nil) must not install a sink")
	}
	if err := ForEach(ctx, 3, 2, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// Tasks that fail still count: the sink sees every completed call.
func TestForEachPoolStatsOnError(t *testing.T) {
	var stats obs.PoolStats
	ctx := obs.WithPool(context.Background(), &stats)
	wantErr := errors.New("boom")
	err := ForEach(ctx, 4, 1, func(ctx context.Context, i int) error {
		if i == 1 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	s := stats.Snapshot()
	// Serial path stops at the failure: tasks 0 and 1 observed.
	if s.Tasks != 2 || s.Pools != 1 {
		t.Errorf("pools/tasks = %d/%d, want 1/2", s.Pools, s.Tasks)
	}
}

// The pool publishes live gauges and counters when the context carries a
// metrics registry, and settles them back to zero when the pool drains.
func TestForEachMetrics(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		reg := metrics.NewRegistry()
		ctx := metrics.WithRegistry(context.Background(), reg)
		err := ForEach(ctx, 10, jobs, func(context.Context, int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := reg.Value("conc_pool_tasks_total"); v != 10 {
			t.Errorf("jobs=%d: tasks counter = %v, want 10", jobs, v)
		}
		if v, _ := reg.Value("conc_pool_workers_busy"); v != 0 {
			t.Errorf("jobs=%d: busy gauge = %v after drain, want 0", jobs, v)
		}
		if v, _ := reg.Value("conc_pool_queue_depth"); v != 0 {
			t.Errorf("jobs=%d: depth gauge = %v after drain, want 0", jobs, v)
		}
	}
}

// An erroring pool must still settle the queue-depth gauge: undispatched
// indices are drained on return, not leaked into the next run.
func TestForEachMetricsOnError(t *testing.T) {
	reg := metrics.NewRegistry()
	ctx := metrics.WithRegistry(context.Background(), reg)
	wantErr := errors.New("boom")
	err := ForEach(ctx, 100, 2, func(_ context.Context, i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if v, _ := reg.Value("conc_pool_queue_depth"); v != 0 {
		t.Errorf("depth gauge = %v after error, want 0", v)
	}
	if v, _ := reg.Value("conc_pool_workers_busy"); v != 0 {
		t.Errorf("busy gauge = %v after error, want 0", v)
	}
}
