// Package conc is the repository's bounded-concurrency leaf: a worker pool
// over an atomic index counter, shared by the experiment harness
// (internal/exp) and the compilation front-end (internal/interp,
// internal/core). It sits below every other internal package so that
// low-level analyses can fan out without import cycles.
//
// Determinism contract: callers own the output ordering by writing results
// into slot i of a preallocated slice, so worker completion order never
// shows in the result. Jobs == 1 runs inline on the calling goroutine in
// index order — the fully serial reference path, with no goroutines.
package conc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
)

// Live pool metrics published when the context carries a metrics registry
// (metrics.WithRegistry): occupancy and queue depth are gauges a monitoring
// scrape can watch mid-run, tasks a counter.
const (
	metricPoolWorkersBusy = "conc_pool_workers_busy"
	metricPoolQueueDepth  = "conc_pool_queue_depth"
	metricPoolTasksTotal  = "conc_pool_tasks_total"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker pool of
// at most jobs goroutines.
//
// jobs <= 0 selects runtime.GOMAXPROCS(0). jobs == 1 runs every call inline
// on the calling goroutine in index order.
//
// The first error cancels the pool: the context passed to fn is canceled,
// no new indices are dispatched, and ForEach returns that error after all
// in-flight calls finish. If the parent context is canceled, ForEach
// returns its error. A panic in any worker is re-raised on the calling
// goroutine (with the same panic value) after the pool drains, so a
// crashing fn behaves the same at every jobs count.
//
// When the context carries a worker-pool statistics sink (obs.WithPool),
// ForEach records each task's duration and the pool's wall time × worker
// count into it; without one the pool pays only a context lookup. When it
// carries a live-metrics registry (metrics.WithRegistry), ForEach also
// publishes pool occupancy and queue-depth gauges and a completed-task
// counter, readable mid-run over the monitoring endpoint.
func ForEach(ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if stats := obs.PoolFrom(ctx); stats != nil {
		inner := fn
		fn = func(ctx context.Context, i int) error {
			t0 := time.Now()
			err := inner(ctx, i)
			stats.ObserveTask(time.Since(t0))
			return err
		}
		poolStart := time.Now()
		defer func() { stats.ObservePool(time.Since(poolStart), jobs) }()
	}
	if reg := metrics.FromContext(ctx); reg != nil {
		busy := reg.Gauge(metricPoolWorkersBusy, "worker goroutines currently running a task")
		depth := reg.Gauge(metricPoolQueueDepth, "indices not yet dispatched to a worker")
		tasks := reg.Counter(metricPoolTasksTotal, "pool tasks completed")
		depth.Add(float64(n))
		var dispatched atomic.Int64
		inner := fn
		fn = func(ctx context.Context, i int) error {
			dispatched.Add(1)
			depth.Dec()
			busy.Inc()
			err := inner(ctx, i)
			busy.Dec()
			tasks.Inc()
			return err
		}
		// Indices this call never dispatched (error/cancel) must not leave
		// the shared depth gauge dangling after the pool drains.
		defer func() {
			if left := int64(n) - dispatched.Load(); left > 0 {
				depth.Add(float64(-left))
			}
		}()
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		panOnce  sync.Once
		panicked bool
		panicVal any
	)
	next.Store(-1)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panOnce.Do(func() {
						panicked = true
						panicVal = r
						cancel()
					})
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Chunks splits [0, n) into at most chunks contiguous half-open ranges of
// near-equal size, returned as {lo, hi} pairs in order. The split depends
// only on n and chunks, never on scheduling, so chunked parallel passes
// stay deterministic. chunks <= 0 yields a single range.
func Chunks(n, chunks int) [][2]int {
	if n <= 0 {
		return nil
	}
	if chunks <= 0 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	out := make([][2]int, 0, chunks)
	lo := 0
	for k := 0; k < chunks; k++ {
		hi := lo + (n-lo)/(chunks-k)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// ChunkCount picks how many chunks a sweep of n items should use for a
// jobs-wide pool: a few chunks per worker so uneven chunks still balance,
// but never finer than minGrain items per chunk, keeping tiny inputs
// effectively serial. jobs follows the ForEach convention (<= 0 means
// GOMAXPROCS, 1 means one chunk).
func ChunkCount(n, jobs, minGrain int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs == 1 {
		return 1
	}
	if minGrain < 1 {
		minGrain = 1
	}
	if maxChunks := n / minGrain; maxChunks < jobs*chunksPerWorker {
		if maxChunks < 1 {
			return 1
		}
		return maxChunks
	}
	return jobs * chunksPerWorker
}

// ForEachChunk splits [0, n) into contiguous ranges — a few per worker, so
// uneven ranges still balance — and runs fn(ctx, lo, hi) for each on the
// ForEach pool. Chunk boundaries depend only on n and jobs (deterministic);
// callers write results into per-index or per-chunk slots.
func ForEachChunk(ctx context.Context, n, jobs int, fn func(ctx context.Context, lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	chunks := Chunks(n, jobs*chunksPerWorker)
	return ForEach(ctx, len(chunks), jobs, func(ctx context.Context, k int) error {
		return fn(ctx, chunks[k][0], chunks[k][1])
	})
}

// chunksPerWorker over-decomposes chunked sweeps so a straggler chunk does
// not serialize the tail of the pass.
const chunksPerWorker = 4
