package affine_test

import (
	"math/rand"
	"testing"

	"diskreuse/internal/affine"
)

// Property-style tests: every algebraic operation on Expr/Vector is checked
// against a naive reference evaluation at many random points. The algebra
// (maps with dropped zero entries, trimmed VecExpr coefficients) has enough
// representation freedom that pointwise evaluation — not structural
// comparison — is the ground truth.

var propVars = []string{"i", "j", "k", "N"}

func randExpr(rng *rand.Rand) affine.Expr {
	e := affine.Constant(int64(rng.Intn(41) - 20))
	for _, v := range propVars {
		if rng.Intn(2) == 0 {
			e = e.Add(affine.Term(v, int64(rng.Intn(11)-5)))
		}
	}
	return e
}

func randEnv(rng *rand.Rand) map[string]int64 {
	env := make(map[string]int64, len(propVars))
	for _, v := range propVars {
		env[v] = int64(rng.Intn(201) - 100)
	}
	return env
}

func evalAt(t *testing.T, e affine.Expr, env map[string]int64) int64 {
	t.Helper()
	x, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", e, err)
	}
	return x
}

func TestExprOpsAgreeWithPointwiseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a, b := randExpr(rng), randExpr(rng)
		k := int64(rng.Intn(9) - 4)
		c := int64(rng.Intn(21) - 10)
		env := randEnv(rng)
		av, bv := evalAt(t, a, env), evalAt(t, b, env)

		if got := evalAt(t, a.Add(b), env); got != av+bv {
			t.Fatalf("(%v)+(%v) at %v = %d, want %d", a, b, env, got, av+bv)
		}
		if got := evalAt(t, a.Sub(b), env); got != av-bv {
			t.Fatalf("(%v)-(%v) at %v = %d, want %d", a, b, env, got, av-bv)
		}
		if got := evalAt(t, a.Neg(), env); got != -av {
			t.Fatalf("-(%v) at %v = %d, want %d", a, env, got, -av)
		}
		if got := evalAt(t, a.Scale(k), env); got != k*av {
			t.Fatalf("%d*(%v) at %v = %d, want %d", k, a, env, got, k*av)
		}
		if got := evalAt(t, a.AddConst(c), env); got != av+c {
			t.Fatalf("(%v)+%d at %v = %d, want %d", a, c, env, got, av+c)
		}
		// Subst(v, b) then eval == eval with env[v] overridden by b's value.
		v := propVars[rng.Intn(len(propVars))]
		env2 := make(map[string]int64, len(env))
		for kk, vv := range env {
			env2[kk] = vv
		}
		env2[v] = bv
		if got, want := evalAt(t, a.Subst(v, b), env), evalAt(t, a, env2); got != want {
			t.Fatalf("(%v)[%s:=%v] at %v = %d, want %d", a, v, b, env, got, want)
		}
	}
}

func TestExprAlgebraicIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a, b := randExpr(rng), randExpr(rng)
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("addition not commutative: %v vs %v", a, b)
		}
		if !a.Sub(a).IsZero() {
			t.Fatalf("(%v) - itself is %v, want 0", a, a.Sub(a))
		}
		if !a.Clone().Equal(a) {
			t.Fatalf("clone of %v not Equal", a)
		}
		if !a.Scale(0).IsZero() {
			t.Fatalf("0*(%v) = %v, want 0", a, a.Scale(0))
		}
		// String is canonical: equal expressions print identically.
		if a.String() != a.Clone().String() {
			t.Fatalf("String not deterministic for %v", a)
		}
	}
}

func TestBindEvalVecMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		e := randExpr(rng)
		env := randEnv(rng)
		ve, err := e.Bind(propVars)
		if err != nil {
			t.Fatalf("bind %q: %v", e, err)
		}
		vals := make([]int64, len(propVars))
		for i, v := range propVars {
			vals[i] = env[v]
		}
		if got, want := ve.EvalVec(vals), evalAt(t, e, env); got != want {
			t.Fatalf("EvalVec(%v) of %q = %d, Eval = %d", vals, e, got, want)
		}
		// Coef is trimmed: evaluating against the shortest prefix that
		// covers the mentioned variables must give the same value.
		if got := ve.EvalVec(vals[:len(ve.Coef)]); got != ve.EvalVec(vals) {
			t.Fatalf("prefix eval of %q differs: %d vs %d", e, got, ve.EvalVec(vals))
		}
	}
	// Binding an expression with an out-of-order variable list still works.
	e := affine.Var("j").Add(affine.Term("i", 2))
	ve := e.MustBind([]string{"j", "i"})
	if got := ve.EvalVec([]int64{5, 7}); got != 5+2*7 {
		t.Fatalf("reordered bind = %d, want 19", got)
	}
	// Binding against a list missing a mentioned variable is an error.
	if _, err := e.Bind([]string{"i"}); err == nil {
		t.Fatalf("bind with missing variable accepted")
	}
}

func randVec(rng *rand.Rand, n int) affine.Vector {
	v := make(affine.Vector, n)
	for i := range v {
		v[i] = int64(rng.Intn(7) - 3)
	}
	return v
}

func TestVectorOpsAgreeWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(4)
		a, b := randVec(rng, n), randVec(rng, n)
		sum, diff, neg := a.Add(b), a.Sub(b), a.Neg()
		for i := 0; i < n; i++ {
			if sum[i] != a[i]+b[i] || diff[i] != a[i]-b[i] || neg[i] != -a[i] {
				t.Fatalf("componentwise mismatch: %v, %v -> %v %v %v", a, b, sum, diff, neg)
			}
		}

		// Compare against a naive reference.
		ref := 0
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					ref = -1
				} else {
					ref = 1
				}
				break
			}
		}
		if got := a.Compare(b); got != ref {
			t.Fatalf("Compare(%v, %v) = %d, want %d", a, b, got, ref)
		}
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}

		// Lex sign predicates are Compare against zero.
		zero := make(affine.Vector, n)
		if a.LexPositive() != (a.Compare(zero) > 0) {
			t.Fatalf("LexPositive(%v) inconsistent with Compare", a)
		}
		if a.LexNegative() != (a.Compare(zero) < 0) {
			t.Fatalf("LexNegative(%v) inconsistent with Compare", a)
		}
		// PrefixLexPositive(k) is LexPositive of the prefix, and k beyond
		// the length clamps.
		for k := 0; k <= n+1; k++ {
			kk := k
			if kk > n {
				kk = n
			}
			want := affine.Vector(a[:kk]).LexPositive()
			if got := a.PrefixLexPositive(k); got != want {
				t.Fatalf("PrefixLexPositive(%v, %d) = %v, want %v", a, k, got, want)
			}
		}
	}
}
