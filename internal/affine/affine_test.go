package affine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExprBasics(t *testing.T) {
	e := Var("i").Scale(2).Add(Var("j")).AddConst(-3) // 2i + j - 3
	if got := e.String(); got != "2*i + j - 3" {
		t.Errorf("String() = %q, want %q", got, "2*i + j - 3")
	}
	env := map[string]int64{"i": 5, "j": 7}
	if got := e.MustEval(env); got != 14 {
		t.Errorf("Eval = %d, want 14", got)
	}
	if e.Coeff("i") != 2 || e.Coeff("j") != 1 || e.Coeff("k") != 0 {
		t.Errorf("Coeff wrong: i=%d j=%d k=%d", e.Coeff("i"), e.Coeff("j"), e.Coeff("k"))
	}
	if e.IsConst() {
		t.Error("IsConst should be false")
	}
	if !Constant(9).IsConst() {
		t.Error("Constant(9).IsConst should be true")
	}
}

func TestExprEvalUnbound(t *testing.T) {
	e := Var("i")
	if _, err := e.Eval(map[string]int64{"j": 1}); err == nil {
		t.Error("Eval with unbound variable should fail")
	}
}

func TestExprZeroCoeffElimination(t *testing.T) {
	e := Var("i").Sub(Var("i"))
	if !e.IsZero() {
		t.Errorf("i - i should be zero, got %v", e)
	}
	if len(e.Coeffs) != 0 {
		t.Errorf("zero coefficients must be removed, got %v", e.Coeffs)
	}
}

func TestExprSubst(t *testing.T) {
	// (2i + j) with i := k + 1  ==> 2k + j + 2
	e := Term("i", 2).Add(Var("j"))
	got := e.Subst("i", Var("k").AddConst(1))
	want := Term("k", 2).Add(Var("j")).AddConst(2)
	if !got.Equal(want) {
		t.Errorf("Subst = %v, want %v", got, want)
	}
	// substituting an absent variable is a no-op
	if !e.Subst("z", Constant(5)).Equal(e) {
		t.Error("Subst of absent var must be identity")
	}
}

func TestSameLinearPart(t *testing.T) {
	a := Var("i").Add(Constant(3))
	b := Var("i").Add(Constant(-2))
	c := Var("i").Scale(2)
	if !a.SameLinearPart(b) {
		t.Error("i+3 and i-2 should be uniformly generated")
	}
	if a.SameLinearPart(c) {
		t.Error("i and 2i are not uniformly generated")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Constant(0), "0"},
		{Constant(-4), "-4"},
		{Var("i"), "i"},
		{Var("i").Neg(), "-i"},
		{Term("i", 3).Sub(Var("j")), "3*i - j"},
		{Var("j").Sub(Constant(1)), "j - 1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: Add is commutative and associative under evaluation.
func TestQuickAddCommutative(t *testing.T) {
	f := func(c1, c2, i1, i2, k1, k2 int16, vi, vj int32) bool {
		a := Constant(int64(c1)).Add(Term("i", int64(i1))).Add(Term("j", int64(k1)))
		b := Constant(int64(c2)).Add(Term("i", int64(i2))).Add(Term("j", int64(k2)))
		env := map[string]int64{"i": int64(vi), "j": int64(vj)}
		return a.Add(b).MustEval(env) == b.Add(a).MustEval(env) &&
			a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: e.Sub(e) is identically zero.
func TestQuickSubSelfIsZero(t *testing.T) {
	f := func(c, ci, cj int16) bool {
		e := Constant(int64(c)).Add(Term("i", int64(ci))).Add(Term("j", int64(cj)))
		return e.Sub(e).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scale distributes over evaluation.
func TestQuickScaleEval(t *testing.T) {
	f := func(c, ci int16, k int8, vi int32) bool {
		e := Constant(int64(c)).Add(Term("i", int64(ci)))
		env := map[string]int64{"i": int64(vi)}
		return e.Scale(int64(k)).MustEval(env) == int64(k)*e.MustEval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorLexOrder(t *testing.T) {
	cases := []struct {
		v        Vector
		pos, neg bool
	}{
		{NewVector(0, 0, 0), false, false},
		{NewVector(1, -5, 0), true, false},
		{NewVector(0, 0, 2), true, false},
		{NewVector(-1, 100), false, true},
		{NewVector(0, -1, 5), false, true},
	}
	for _, c := range cases {
		if got := c.v.LexPositive(); got != c.pos {
			t.Errorf("%v.LexPositive() = %v, want %v", c.v, got, c.pos)
		}
		if got := c.v.LexNegative(); got != c.neg {
			t.Errorf("%v.LexNegative() = %v, want %v", c.v, got, c.neg)
		}
	}
}

func TestVectorCompare(t *testing.T) {
	a := NewVector(1, 2, 3)
	b := NewVector(1, 3, 0)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
}

func TestVectorArith(t *testing.T) {
	a := NewVector(1, -2)
	b := NewVector(3, 5)
	if !a.Add(b).Equal(NewVector(4, 3)) {
		t.Error("Add wrong")
	}
	if !b.Sub(a).Equal(NewVector(2, 7)) {
		t.Error("Sub wrong")
	}
	if !a.Neg().Equal(NewVector(-1, 2)) {
		t.Error("Neg wrong")
	}
}

// Property: exactly one of {zero, lex-positive, lex-negative} holds.
func TestQuickLexTrichotomy(t *testing.T) {
	f := func(a, b, c int8) bool {
		v := NewVector(int64(a), int64(b), int64(c))
		n := 0
		if v.IsZero() {
			n++
		}
		if v.LexPositive() {
			n++
		}
		if v.LexNegative() {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: v.Compare(o) agrees with Sub + LexPositive.
func TestQuickCompareViaSub(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		v := NewVector(int64(a1), int64(a2))
		o := NewVector(int64(b1), int64(b2))
		d := v.Sub(o)
		switch v.Compare(o) {
		case 0:
			return d.IsZero()
		case 1:
			return d.LexPositive()
		default:
			return d.LexNegative()
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelizableLoop(t *testing.T) {
	// Distance (1, 0): outer loop carries the dependence; inner loop has
	// d=0 so it is NOT the answer for outermost parallelism — loop 0 has
	// d[0]=1 and empty prefix, not parallelizable; loop 1 has d[1]=0,
	// parallelizable.
	m := Matrix{NewVector(1, 0)}
	k, ok := m.ParallelizableLoop(2)
	if !ok || k != 1 {
		t.Errorf("ParallelizableLoop = %d,%v want 1,true", k, ok)
	}
	// Distance (0, 1): loop 0 parallelizable (d[0]==0).
	m = Matrix{NewVector(0, 1)}
	k, ok = m.ParallelizableLoop(2)
	if !ok || k != 0 {
		t.Errorf("ParallelizableLoop = %d,%v want 0,true", k, ok)
	}
	// Distance (1, -1): loop 1 parallelizable because prefix (1) is lex
	// positive.
	m = Matrix{NewVector(1, -1)}
	k, ok = m.ParallelizableLoop(2)
	if !ok || k != 1 {
		t.Errorf("ParallelizableLoop = %d,%v want 1,true", k, ok)
	}
	// No dependences: outermost.
	k, ok = Matrix{}.ParallelizableLoop(3)
	if !ok || k != 0 {
		t.Errorf("ParallelizableLoop = %d,%v want 0,true", k, ok)
	}
	// Multiple vectors: (0,1) and (1,0) — loop 0 blocked by (1,0)'s d[0]=1;
	// loop 1 blocked by (0,1)? d[1]=1 and prefix (0) is not lex positive,
	// so nothing is parallelizable.
	m = Matrix{NewVector(0, 1), NewVector(1, 0)}
	if _, ok = m.ParallelizableLoop(2); ok {
		t.Error("expected no parallelizable loop")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6}, {12, -18, 6}, {7, 13, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDTest(t *testing.T) {
	// 2x + 4y = 3 has no integer solution; = 6 does.
	if GCDTestSolvable([]int64{2, 4}, 3) {
		t.Error("2x+4y=3 must be unsolvable")
	}
	if !GCDTestSolvable([]int64{2, 4}, 6) {
		t.Error("2x+4y=6 must be solvable")
	}
	if !GCDTestSolvable(nil, 0) || GCDTestSolvable(nil, 1) {
		t.Error("degenerate GCD test wrong")
	}
}

func TestFloorCeilMod(t *testing.T) {
	cases := []struct{ a, b, fd, cd, m int64 }{
		{7, 2, 3, 4, 1},
		{-7, 2, -4, -3, 1},
		{6, 3, 2, 2, 0},
		{-6, 3, -2, -2, 0},
		{0, 5, 0, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.fd {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fd)
		}
		if got := CeilDiv(c.a, c.b); got != c.cd {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.cd)
		}
		if got := Mod(c.a, c.b); got != c.m {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.b, got, c.m)
		}
	}
}

// Property: a == b*FloorDiv(a,b) + Mod(a,b) and 0 <= Mod(a,b) < b.
func TestQuickFloorModIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 2000; n++ {
		a := rng.Int63n(1<<40) - 1<<39
		b := rng.Int63n(1000) + 1
		if b*FloorDiv(a, b)+Mod(a, b) != a {
			t.Fatalf("identity fails for a=%d b=%d", a, b)
		}
		if m := Mod(a, b); m < 0 || m >= b {
			t.Fatalf("Mod out of range for a=%d b=%d: %d", a, b, m)
		}
	}
}

func TestVectorCloneAndString(t *testing.T) {
	v := NewVector(1, -2, 3)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone must not alias")
	}
	if got := v.String(); got != "(1, -2, 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestAllLexNonNegative(t *testing.T) {
	ok := Matrix{NewVector(0, 0), NewVector(1, -5), NewVector(0, 2)}
	if !ok.AllLexNonNegative() {
		t.Error("legal distance matrix rejected")
	}
	bad := Matrix{NewVector(0, 1), NewVector(-1, 3)}
	if bad.AllLexNonNegative() {
		t.Error("lex-negative row must be rejected")
	}
	if !(Matrix{}).AllLexNonNegative() {
		t.Error("empty matrix is trivially legal")
	}
}

func TestTermZeroAndEqualShapes(t *testing.T) {
	if !Term("i", 0).IsZero() {
		t.Error("Term with zero coefficient must be zero")
	}
	// Equal across different shapes.
	a := Var("i").AddConst(1)
	if a.Equal(Constant(1)) || a.Equal(Var("i")) || a.Equal(Var("j").AddConst(1)) {
		t.Error("Equal must distinguish differing expressions")
	}
	if !NewVector(1).Equal(NewVector(1)) || NewVector(1).Equal(NewVector(1, 0)) {
		t.Error("Vector.Equal length handling wrong")
	}
	if !Vector(nil).IsZero() {
		t.Error("empty vector is zero")
	}
	// PrefixLexPositive with k beyond length clamps.
	if !NewVector(1, 0).PrefixLexPositive(10) {
		t.Error("clamped prefix should be lex positive")
	}
}

func TestBindEvalVec(t *testing.T) {
	e := Var("i").Scale(2).Add(Var("k").Scale(-1)).AddConst(7) // 2i - k + 7
	v, err := e.Bind([]string{"i", "j", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.EvalVec([]int64{5, 100, 3}); got != 14 {
		t.Errorf("EvalVec = %d, want 14", got)
	}
	// Constant expressions bind to an empty coefficient vector and can be
	// evaluated against any (even nil) value slice.
	c, err := Constant(-4).Bind([]string{"i"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Coef) != 0 || c.EvalVec(nil) != -4 {
		t.Errorf("constant bind = %+v", c)
	}
}

func TestBindTrimsTrailingZeros(t *testing.T) {
	// A bound at loop level 1 mentions only the outermost iterator; binding
	// over the full iterator list must still evaluate against the prefix.
	e := Var("i").AddConst(1)
	v := e.MustBind([]string{"i", "j", "k"})
	if len(v.Coef) != 1 {
		t.Fatalf("Coef = %v, want trimmed to length 1", v.Coef)
	}
	if got := v.EvalVec([]int64{9}); got != 10 {
		t.Errorf("EvalVec over prefix = %d, want 10", got)
	}
}

func TestBindUnboundVariable(t *testing.T) {
	if _, err := Var("z").Bind([]string{"i", "j"}); err == nil {
		t.Error("Bind must reject a variable missing from the order")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBind must panic on unbound variable")
		}
	}()
	Var("z").MustBind([]string{"i"})
}

// Property: EvalVec agrees with the map-env Eval on random expressions.
func TestQuickEvalVecMatchesEval(t *testing.T) {
	vars := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		e := Constant(rng.Int63n(41) - 20)
		env := map[string]int64{}
		vals := make([]int64, len(vars))
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				e = e.Add(Term(v, rng.Int63n(21)-10))
			}
			vals[i] = rng.Int63n(201) - 100
			env[v] = vals[i]
		}
		bound, err := e.Bind(vars)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := bound.EvalVec(vals), e.MustEval(env); got != want {
			t.Fatalf("trial %d: EvalVec = %d, Eval = %d (expr %v)", trial, got, want, e)
		}
	}
}
