package affine

import (
	"fmt"
	"strings"
)

// Vector is an integer vector, used for iteration vectors and data
// dependence distance vectors (rows of a distance matrix).
type Vector []int64

// NewVector returns a vector with the given entries.
func NewVector(entries ...int64) Vector {
	v := make(Vector, len(entries))
	copy(v, entries)
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + o. It panics if the lengths differ.
func (v Vector) Add(o Vector) Vector {
	if len(v) != len(o) {
		panic(fmt.Sprintf("affine: vector length mismatch %d vs %d", len(v), len(o)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out
}

// Sub returns v - o. It panics if the lengths differ.
func (v Vector) Sub(o Vector) Vector {
	if len(v) != len(o) {
		panic(fmt.Sprintf("affine: vector length mismatch %d vs %d", len(v), len(o)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - o[i]
	}
	return out
}

// Neg returns -v.
func (v Vector) Neg() Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = -v[i]
	}
	return out
}

// IsZero reports whether every entry is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare returns -1, 0, or +1 according to the lexicographic order of v
// relative to o. It panics if the lengths differ.
func (v Vector) Compare(o Vector) int {
	if len(v) != len(o) {
		panic(fmt.Sprintf("affine: vector length mismatch %d vs %d", len(v), len(o)))
	}
	for i := range v {
		switch {
		case v[i] < o[i]:
			return -1
		case v[i] > o[i]:
			return 1
		}
	}
	return 0
}

// LexPositive reports whether v is lexicographically greater than the zero
// vector, i.e. its first nonzero entry is positive. This is the legality
// condition for a dependence distance vector.
func (v Vector) LexPositive() bool {
	for _, x := range v {
		if x != 0 {
			return x > 0
		}
	}
	return false
}

// LexNegative reports whether v is lexicographically less than zero.
func (v Vector) LexNegative() bool {
	for _, x := range v {
		if x != 0 {
			return x < 0
		}
	}
	return false
}

// PrefixLexPositive reports whether the strict prefix v[0:k] is
// lexicographically positive. Per the parallelization condition of §6.1 of
// the paper (after Banerjee), loop k (0-based) is parallelizable with
// respect to distance vector d if d[k] == 0 or d[0:k] is lexicographically
// positive.
func (v Vector) PrefixLexPositive(k int) bool {
	if k > len(v) {
		k = len(v)
	}
	return Vector(v[:k]).LexPositive()
}

// String renders v as "(d1, d2, ..., dn)".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Matrix is a list of distance vectors extracted from a loop nest; rows are
// distance vectors.
type Matrix []Vector

// ParallelizableLoop returns the index (0-based) of the outermost loop of an
// n-deep nest that is parallelizable with respect to every row of m, and
// true on success. A loop k is parallelizable iff for every distance vector
// d either d[k] == 0 or the prefix d[0:k] is lexicographically positive.
// With no dependence vectors at all, the outermost loop (0) is returned.
func (m Matrix) ParallelizableLoop(depth int) (int, bool) {
	for k := 0; k < depth; k++ {
		ok := true
		for _, d := range m {
			if k < len(d) && d[k] == 0 {
				continue
			}
			if d.PrefixLexPositive(k) {
				continue
			}
			ok = false
			break
		}
		if ok {
			return k, true
		}
	}
	return 0, false
}

// AllLexNonNegative reports whether every row is the zero vector or
// lexicographically positive, i.e. the matrix is a legal set of dependence
// distances for the original program order.
func (m Matrix) AllLexNonNegative() bool {
	for _, d := range m {
		if !d.IsZero() && !d.LexPositive() {
			return false
		}
	}
	return true
}
