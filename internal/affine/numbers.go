package affine

// GCD returns the greatest common divisor of a and b; GCD(0, 0) == 0.
// The result is always non-negative.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the gcd of all values (0 for an empty list).
func GCDAll(vals ...int64) int64 {
	var g int64
	for _, v := range vals {
		g = GCD(g, v)
	}
	return g
}

// GCDTestSolvable implements the classic GCD dependence test: the linear
// Diophantine equation a1*x1 + ... + an*xn = c has an integer solution iff
// gcd(a1, ..., an) divides c. With all-zero coefficients the equation is
// solvable iff c == 0.
func GCDTestSolvable(coeffs []int64, c int64) bool {
	g := GCDAll(coeffs...)
	if g == 0 {
		return c == 0
	}
	return c%g == 0
}

// FloorDiv returns floor(a/b) for b > 0 (mathematical floor division, which
// differs from Go's truncated division for negative a).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDiv returns ceil(a/b) for b != 0.
func CeilDiv(a, b int64) int64 {
	return -FloorDiv(-a, b)
}

// Mod returns the Euclidean remainder a mod b for b > 0; the result is
// always in [0, b).
func Mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
