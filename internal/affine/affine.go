// Package affine provides exact integer affine expressions, vectors, and
// small number-theoretic helpers used throughout the compiler.
//
// An affine expression has the form
//
//	c0 + c1*v1 + c2*v2 + ... + cn*vn
//
// where the vi are named integer variables (loop iterators or symbolic
// parameters) and the ci are int64 coefficients. Affine expressions are the
// common currency between the front-end (loop bounds, array subscripts),
// the dependence analyzer (distance vectors), and the polyhedral-lite set
// machinery in package iset.
package affine

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an immutable-by-convention affine expression. The zero value is
// the constant 0. Callers must not mutate the Coeffs map of an Expr they did
// not create; all package operations return fresh expressions.
type Expr struct {
	// Const is the constant term c0.
	Const int64
	// Coeffs maps variable name to coefficient. Entries with coefficient
	// zero are never stored.
	Coeffs map[string]int64
}

// Const returns the affine expression for the integer constant c.
func Constant(c int64) Expr { return Expr{Const: c} }

// Var returns the affine expression 1*name.
func Var(name string) Expr {
	return Expr{Coeffs: map[string]int64{name: 1}}
}

// Term returns the affine expression coeff*name.
func Term(name string, coeff int64) Expr {
	if coeff == 0 {
		return Expr{}
	}
	return Expr{Coeffs: map[string]int64{name: coeff}}
}

// Clone returns a deep copy of e.
func (e Expr) Clone() Expr {
	out := Expr{Const: e.Const}
	if len(e.Coeffs) > 0 {
		out.Coeffs = make(map[string]int64, len(e.Coeffs))
		for k, v := range e.Coeffs {
			out.Coeffs[k] = v
		}
	}
	return out
}

// Coeff returns the coefficient of variable name (0 if absent).
func (e Expr) Coeff(name string) int64 { return e.Coeffs[name] }

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.Coeffs) == 0 }

// IsZero reports whether e is identically zero.
func (e Expr) IsZero() bool { return e.Const == 0 && len(e.Coeffs) == 0 }

// Vars returns the sorted list of variables with nonzero coefficients.
func (e Expr) Vars() []string {
	vs := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := e.Clone()
	out.Const += o.Const
	for v, c := range o.Coeffs {
		out.setCoeff(v, out.Coeffs[v]+c)
	}
	return out
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	out := Expr{Const: e.Const * k}
	if len(e.Coeffs) > 0 {
		out.Coeffs = make(map[string]int64, len(e.Coeffs))
		for v, c := range e.Coeffs {
			out.Coeffs[v] = c * k
		}
	}
	return out
}

// AddConst returns e + c.
func (e Expr) AddConst(c int64) Expr {
	out := e.Clone()
	out.Const += c
	return out
}

func (e *Expr) setCoeff(v string, c int64) {
	if c == 0 {
		delete(e.Coeffs, v)
		return
	}
	if e.Coeffs == nil {
		e.Coeffs = make(map[string]int64)
	}
	e.Coeffs[v] = c
}

// Subst returns e with variable name replaced by expression repl.
func (e Expr) Subst(name string, repl Expr) Expr {
	c, ok := e.Coeffs[name]
	if !ok {
		return e.Clone()
	}
	out := e.Clone()
	delete(out.Coeffs, name)
	return out.Add(repl.Scale(c))
}

// Eval evaluates e under the variable assignment env. It returns an error
// if a variable of e is missing from env.
func (e Expr) Eval(env map[string]int64) (int64, error) {
	total := e.Const
	for v, c := range e.Coeffs {
		val, ok := env[v]
		if !ok {
			return 0, fmt.Errorf("affine: unbound variable %q", v)
		}
		total += c * val
	}
	return total, nil
}

// MustEval is Eval but panics on unbound variables. It is intended for
// callers that have already validated the environment.
func (e Expr) MustEval(env map[string]int64) int64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// VecExpr is an affine expression compiled against a fixed positional
// variable order: value(vals) = C0 + Σ Coef[i]*vals[i], where vals[i] is
// the value of the i-th variable of the order it was bound with. It is the
// allocation-free slice-env counterpart of Eval's map env: hot loops bind
// once and evaluate per iteration against a reused []int64, with no map
// lookups and no per-call allocation.
//
// Coef is trimmed to the last nonzero coefficient, so a VecExpr bound over
// a full iterator list can be evaluated against any prefix of the value
// vector that covers the variables it actually mentions — exactly the
// situation of a loop bound at level l, which only references enclosing
// iterators vals[:l].
type VecExpr struct {
	C0   int64
	Coef []int64
}

// Bind compiles e against the positional variable order vars. It returns
// an error if e mentions a variable not in vars.
func (e Expr) Bind(vars []string) (VecExpr, error) {
	v := VecExpr{C0: e.Const}
	if len(e.Coeffs) == 0 {
		return v, nil
	}
	v.Coef = make([]int64, len(vars))
	bound := 0
	for i, name := range vars {
		if c, ok := e.Coeffs[name]; ok {
			v.Coef[i] = c
			bound++
		}
	}
	if bound != len(e.Coeffs) {
		for name := range e.Coeffs {
			found := false
			for _, have := range vars {
				if have == name {
					found = true
					break
				}
			}
			if !found {
				return VecExpr{}, fmt.Errorf("affine: bind: variable %q not in %v", name, vars)
			}
		}
	}
	last := len(v.Coef)
	for last > 0 && v.Coef[last-1] == 0 {
		last--
	}
	v.Coef = v.Coef[:last]
	return v, nil
}

// MustBind is Bind but panics on unbound variables. It is intended for
// callers that already validated variable scoping (sema did).
func (e Expr) MustBind(vars []string) VecExpr {
	v, err := e.Bind(vars)
	if err != nil {
		panic(err)
	}
	return v
}

// EvalVec evaluates v against vals, where vals[i] holds the value of the
// i-th bound variable. vals may be any slice with len(vals) >= len(v.Coef).
func (v VecExpr) EvalVec(vals []int64) int64 {
	total := v.C0
	for i, c := range v.Coef {
		if c != 0 {
			total += c * vals[i]
		}
	}
	return total
}

// Equal reports whether e and o denote the same affine function.
func (e Expr) Equal(o Expr) bool {
	if e.Const != o.Const || len(e.Coeffs) != len(o.Coeffs) {
		return false
	}
	for v, c := range e.Coeffs {
		if o.Coeffs[v] != c {
			return false
		}
	}
	return true
}

// SameLinearPart reports whether e and o have identical variable
// coefficients (they may differ in the constant term). Two array references
// with the same linear part are "uniformly generated" in the dependence
// literature, which is the case where exact constant distance vectors
// exist.
func (e Expr) SameLinearPart(o Expr) bool {
	if len(e.Coeffs) != len(o.Coeffs) {
		return false
	}
	for v, c := range e.Coeffs {
		if o.Coeffs[v] != c {
			return false
		}
	}
	return true
}

// String renders e in canonical sorted-variable form, e.g. "2*i + j - 3".
func (e Expr) String() string {
	if e.IsConst() {
		return fmt.Sprintf("%d", e.Const)
	}
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Coeffs[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString(" + " + v)
		case c == -1:
			b.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	if e.Const > 0 {
		fmt.Fprintf(&b, " + %d", e.Const)
	} else if e.Const < 0 {
		fmt.Fprintf(&b, " - %d", -e.Const)
	}
	return b.String()
}
