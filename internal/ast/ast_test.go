package ast

import (
	"strings"
	"testing"

	"diskreuse/internal/affine"
)

func sampleProgram() *Program {
	u := &Array{
		Name:     "U",
		Dims:     []affine.Expr{affine.Constant(8), affine.Constant(8)},
		ElemSize: 8,
		File:     "U.dat",
		Stripe:   &StripeSpec{Unit: 4096, Factor: 2, Start: 0},
	}
	v := &Array{
		Name:     "V",
		Dims:     []affine.Expr{affine.Constant(8)},
		ElemSize: 4,
		File:     "custom.bin",
	}
	inner := &Loop{
		Var: "j", Lo: affine.Constant(0), Hi: affine.Constant(7), Step: 1,
		Body: []Stmt{
			&Assign{
				LHS: &Ref{Array: "U", Subs: []affine.Expr{affine.Var("i"), affine.Var("j")}},
				RHS: []*Ref{{Array: "V", Subs: []affine.Expr{affine.Var("j")}}},
			},
			&ReadStmt{Ref: &Ref{Array: "V", Subs: []affine.Expr{affine.Var("i")}}},
		},
	}
	outer := &Loop{
		Var: "i", Lo: affine.Constant(0), Hi: affine.Constant(7), Step: 2,
		Body: []Stmt{inner},
	}
	return &Program{
		Params: []*Param{{Name: "N", Value: 8}},
		Arrays: []*Array{u, v},
		Nests:  []*Nest{{Name: "L", Loop: outer}},
	}
}

func TestLoopDepthAndIterators(t *testing.T) {
	p := sampleProgram()
	l := p.Nests[0].Loop
	if l.Depth() != 2 {
		t.Errorf("Depth = %d", l.Depth())
	}
	its := l.Iterators()
	if len(its) != 2 || its[0] != "i" || its[1] != "j" {
		t.Errorf("Iterators = %v", its)
	}
	// A single-level loop.
	leaf := &Loop{Var: "k", Body: []Stmt{&ReadStmt{Ref: &Ref{Array: "V", Subs: []affine.Expr{affine.Var("k")}}}}}
	if leaf.Depth() != 1 || len(leaf.Iterators()) != 1 {
		t.Error("leaf loop depth/iterators wrong")
	}
}

func TestWalkVisitsAllStatements(t *testing.T) {
	p := sampleProgram()
	var kinds []string
	p.Nests[0].Loop.Walk(func(s Stmt) {
		switch s.(type) {
		case *Loop:
			kinds = append(kinds, "loop")
		case *Assign:
			kinds = append(kinds, "assign")
		case *ReadStmt:
			kinds = append(kinds, "read")
		}
	})
	want := []string{"loop", "assign", "read"}
	if len(kinds) != len(want) {
		t.Fatalf("walked %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("walked %v, want %v", kinds, want)
		}
	}
}

func TestRefsHelper(t *testing.T) {
	p := sampleProgram()
	inner := p.Nests[0].Loop.Body[0].(*Loop)
	w, rs := Refs(inner.Body[0])
	if w == nil || w.Array != "U" || len(rs) != 1 || rs[0].Array != "V" {
		t.Errorf("Refs(assign) = %v, %v", w, rs)
	}
	w, rs = Refs(inner.Body[1])
	if w != nil || len(rs) != 1 {
		t.Errorf("Refs(read) = %v, %v", w, rs)
	}
	w, rs = Refs(inner)
	if w != nil || rs != nil {
		t.Errorf("Refs(loop) = %v, %v", w, rs)
	}
}

func TestArrayNamesFirstUseOrder(t *testing.T) {
	p := sampleProgram()
	names := p.Nests[0].ArrayNames()
	if len(names) != 2 || names[0] != "U" || names[1] != "V" {
		t.Errorf("ArrayNames = %v", names)
	}
}

func TestLookupHelpers(t *testing.T) {
	p := sampleProgram()
	if p.LookupArray("U") == nil || p.LookupArray("Z") != nil {
		t.Error("LookupArray wrong")
	}
	if v, ok := p.LookupParam("N"); !ok || v != 8 {
		t.Errorf("LookupParam = %d, %v", v, ok)
	}
	if _, ok := p.LookupParam("M"); ok {
		t.Error("missing param should not resolve")
	}
	env := p.ParamEnv()
	if env["N"] != 8 || len(env) != 1 {
		t.Errorf("ParamEnv = %v", env)
	}
}

func TestRefCloneIsDeep(t *testing.T) {
	r := &Ref{Array: "U", Subs: []affine.Expr{affine.Var("i")}}
	c := r.Clone()
	c.Subs[0] = affine.Constant(99)
	if r.Subs[0].Equal(c.Subs[0]) {
		t.Error("Clone must not share subscripts")
	}
	if r.String() != "U[i]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestProgramString(t *testing.T) {
	p := sampleProgram()
	out := p.String()
	for _, want := range []string{
		"param N = 8",
		"array U[8][8] stripe(unit=4096, factor=2, start=0)",
		`array V[8] elem 4 file "custom.bin"`,
		"nest L {",
		"for i = 0 to 7 step 2 {",
		"U[i][j] = V[j];",
		"read V[i];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyAssignRHSPrintsZero(t *testing.T) {
	a := &Assign{LHS: &Ref{Array: "U", Subs: []affine.Expr{affine.Constant(0)}}}
	var b strings.Builder
	a.emit(&b, 0)
	if !strings.Contains(b.String(), "U[0] = 0;") {
		t.Errorf("emit = %q", b.String())
	}
}

func TestStripeSpecString(t *testing.T) {
	s := StripeSpec{Unit: 32768, Factor: 8, Start: 1}
	if got := s.String(); got != "stripe(unit=32768, factor=8, start=1)" {
		t.Errorf("String = %q", got)
	}
}
