// Package ast defines the abstract syntax tree for DRL programs.
//
// DRL is deliberately restricted to the program class the paper targets
// (§1, §5): nests of counted for-loops over disk-resident arrays, with
// affine loop bounds and affine array subscripts, and no conditional
// control flow. Because every expression position is affine, the AST stores
// subscripts and bounds directly as affine.Expr values over iterator and
// parameter names.
package ast

import (
	"fmt"
	"strings"

	"diskreuse/internal/affine"
	"diskreuse/internal/scan"
)

// Program is a parsed DRL compilation unit.
type Program struct {
	Params []*Param
	Arrays []*Array
	Nests  []*Nest
}

// Param is a symbolic integer constant declaration: "param N = 1024".
type Param struct {
	Name  string
	Value int64
	Pos   scan.Pos
}

// StripeSpec is the I/O-node-level striping clause of an array declaration
// (stripe unit in bytes, number of I/O nodes, starting I/O node), matching
// the layout parameters of §2 and Table 1 of the paper.
type StripeSpec struct {
	Unit   int64 // stripe unit in bytes
	Factor int   // number of disks (I/O nodes) the array is striped over
	Start  int   // first disk used for striping
}

func (s StripeSpec) String() string {
	return fmt.Sprintf("stripe(unit=%d, factor=%d, start=%d)", s.Unit, s.Factor, s.Start)
}

// Array declares a disk-resident array. Dims are extent expressions, affine
// in declared parameters only. ElemSize is the element size in bytes
// (default 8). The one-array-per-file assumption of §2 is built in: each
// array owns exactly one file.
type Array struct {
	Name     string
	Dims     []affine.Expr
	ElemSize int64
	Stripe   *StripeSpec // nil means "use the compilation default layout"
	File     string      // backing file name; defaults to Name + ".dat"
	Pos      scan.Pos
}

// Nest is a named top-level loop nest.
type Nest struct {
	Name string
	Loop *Loop
	Pos  scan.Pos
}

// Stmt is a statement inside a loop body: another Loop, an Assign, or a
// ReadStmt.
type Stmt interface {
	stmtNode()
	emit(b *strings.Builder, indent int)
}

// Loop is a counted for-loop with inclusive bounds: for V = Lo to Hi step
// Step. Bounds are affine in enclosing iterators and parameters; Step is a
// positive integer constant.
type Loop struct {
	Var  string
	Lo   affine.Expr
	Hi   affine.Expr
	Step int64
	Body []Stmt
	Pos  scan.Pos
}

// Assign is "ref = expr;" where expr is an affine combination of array
// references; the LHS is written, each RHS reference is read.
type Assign struct {
	LHS *Ref
	RHS []*Ref // references read by the right-hand side, in source order
	Pos scan.Pos
}

// ReadStmt is "read ref;", an explicit read-only touch of an array element
// (used by workloads that consume data without producing any).
type ReadStmt struct {
	Ref *Ref
	Pos scan.Pos
}

func (*Loop) stmtNode()     {}
func (*Assign) stmtNode()   {}
func (*ReadStmt) stmtNode() {}

// Ref is an array reference U[e1][e2]...[ek] with affine subscripts.
type Ref struct {
	Array string
	Subs  []affine.Expr
	Pos   scan.Pos
}

func (r *Ref) String() string {
	var b strings.Builder
	b.WriteString(r.Array)
	for _, s := range r.Subs {
		fmt.Fprintf(&b, "[%s]", s)
	}
	return b.String()
}

// Clone returns a deep copy of r.
func (r *Ref) Clone() *Ref {
	subs := make([]affine.Expr, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.Clone()
	}
	return &Ref{Array: r.Array, Subs: subs, Pos: r.Pos}
}

// Refs returns all references of a statement: the written reference (or nil)
// first, then the read references.
func Refs(s Stmt) (write *Ref, reads []*Ref) {
	switch st := s.(type) {
	case *Assign:
		return st.LHS, st.RHS
	case *ReadStmt:
		return nil, []*Ref{st.Ref}
	}
	return nil, nil
}

// Depth returns the nesting depth of the loop (number of loop levels along
// the leftmost chain). DRL nests are perfect or near-perfect; statements may
// appear at any level.
func (l *Loop) Depth() int {
	d := 1
	for _, s := range l.Body {
		if inner, ok := s.(*Loop); ok {
			if id := inner.Depth() + 1; id > d {
				d = id
			}
		}
	}
	return d
}

// Iterators returns the loop variables along the leftmost loop chain, from
// outermost to innermost.
func (l *Loop) Iterators() []string {
	vars := []string{l.Var}
	for _, s := range l.Body {
		if inner, ok := s.(*Loop); ok {
			return append(vars, inner.Iterators()...)
		}
	}
	return vars
}

// Walk calls fn for every statement in the nest, in source order, including
// nested loops (pre-order).
func (l *Loop) Walk(fn func(Stmt)) {
	for _, s := range l.Body {
		fn(s)
		if inner, ok := s.(*Loop); ok {
			inner.Walk(fn)
		}
	}
}

// ArrayNames returns the names of all arrays referenced in the nest, in
// first-use order.
func (n *Nest) ArrayNames() []string {
	seen := map[string]bool{}
	var names []string
	add := func(r *Ref) {
		if r != nil && !seen[r.Array] {
			seen[r.Array] = true
			names = append(names, r.Array)
		}
	}
	n.Loop.Walk(func(s Stmt) {
		w, rs := Refs(s)
		add(w)
		for _, r := range rs {
			add(r)
		}
	})
	return names
}

// LookupArray returns the declaration of the named array, or nil.
func (p *Program) LookupArray(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// LookupParam returns the declared value of a parameter.
func (p *Program) LookupParam(name string) (int64, bool) {
	for _, pr := range p.Params {
		if pr.Name == name {
			return pr.Value, true
		}
	}
	return 0, false
}

// ParamEnv returns the parameter environment of the program.
func (p *Program) ParamEnv() map[string]int64 {
	env := make(map[string]int64, len(p.Params))
	for _, pr := range p.Params {
		env[pr.Name] = pr.Value
	}
	return env
}
