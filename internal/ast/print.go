package ast

import (
	"fmt"
	"strings"
)

// String renders the program back to DRL source form. The output reparses
// to an equivalent program, which the parser round-trip test relies on.
func (p *Program) String() string {
	var b strings.Builder
	for _, pr := range p.Params {
		fmt.Fprintf(&b, "param %s = %d\n", pr.Name, pr.Value)
	}
	if len(p.Params) > 0 {
		b.WriteByte('\n')
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%s]", d)
		}
		if a.ElemSize != 8 {
			fmt.Fprintf(&b, " elem %d", a.ElemSize)
		}
		if a.Stripe != nil {
			fmt.Fprintf(&b, " %s", a.Stripe)
		}
		if a.File != "" && a.File != a.Name+".dat" {
			fmt.Fprintf(&b, " file %q", a.File)
		}
		b.WriteByte('\n')
	}
	for _, n := range p.Nests {
		fmt.Fprintf(&b, "\nnest %s {\n", n.Name)
		n.Loop.emit(&b, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func writeIndent(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

func (l *Loop) emit(b *strings.Builder, indent int) {
	writeIndent(b, indent)
	fmt.Fprintf(b, "for %s = %s to %s", l.Var, l.Lo, l.Hi)
	if l.Step != 1 {
		fmt.Fprintf(b, " step %d", l.Step)
	}
	b.WriteString(" {\n")
	for _, s := range l.Body {
		s.emit(b, indent+1)
	}
	writeIndent(b, indent)
	b.WriteString("}\n")
}

func (a *Assign) emit(b *strings.Builder, indent int) {
	writeIndent(b, indent)
	b.WriteString(a.LHS.String())
	b.WriteString(" = ")
	if len(a.RHS) == 0 {
		b.WriteString("0")
	}
	for i, r := range a.RHS {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(r.String())
	}
	b.WriteString(";\n")
}

func (r *ReadStmt) emit(b *strings.Builder, indent int) {
	writeIndent(b, indent)
	fmt.Fprintf(b, "read %s;\n", r.Ref)
}
