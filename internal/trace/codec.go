// Binary trace codec: the out-of-core representation of a request trace.
//
// The text format of Encode/Decode is the paper's interchange format; it is
// fine for the paper-scale traces but it is ~40 bytes per request and must
// be parsed line by line. The binary format here is the streaming
// counterpart: a small self-describing header followed by fixed-size
// chunks that decode independently into reusable request arenas, so a
// trace far larger than RAM replays with bounded memory — the reader holds
// exactly one chunk at a time.
//
// Layout (all multi-byte integers are varints; see chunk framing below):
//
//	header  = magic "\xd9PCT" | version u8 | flags u8 (0)
//	        | uvarint numProcs | uvarint numDisks
//	        | uvarint numRequests | uvarint chunkCap
//	chunk   = count u32le | payloadLen u32le | payload
//	payload = request × count, each:
//	          uvarint (proc<<1 | writeBit)
//	          uvarint (float64bits(arrival) XOR float64bits(prevArrival))
//	          zigzag-uvarint (block − prevBlock)
//	          uvarint size
//
// Arrival times are delta-encoded on their IEEE-754 bit patterns (XOR with
// the previous request's bits): neighboring arrivals in a sorted trace
// share their exponent and high mantissa bits, so the XOR has many leading
// zero bytes and the varint stays short — and unlike an arithmetic delta
// the reconstruction is exact, bit for bit, which the streaming replay's
// bit-identity contract requires. Block numbers use a zigzag varint delta
// (disk access locality keeps the deltas small). Both delta states reset
// at every chunk boundary, so any chunk decodes without its predecessors.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"diskreuse/internal/metrics"
)

// Binary format constants.
const (
	// binaryMagic opens every binary trace file. The first byte (0xD9) is
	// outside ASCII, so no text trace can start with it and sniffing the
	// encoding from the first bytes is unambiguous.
	binaryMagic = "\xd9PCT"
	// BinaryVersion is the format version this package writes.
	BinaryVersion = 1
	// DefaultChunkRequests is the default chunk capacity. 8192 requests ≈
	// 256 KiB decoded — small enough that a reader plus its per-disk
	// partition scratch stays far under any realistic memory budget, big
	// enough that per-chunk framing and fan-out costs vanish.
	DefaultChunkRequests = 8192
	// maxChunkRequests bounds the chunk capacity a reader will accept, so
	// a corrupt header cannot make it allocate an absurd arena.
	maxChunkRequests = 1 << 22
	// maxReqEncoding is the worst-case encoded size of one request
	// (4 varints of ≤ 10 bytes each); readers use it to sanity-check the
	// declared payload length before buffering a chunk.
	maxReqEncoding = 40
	// chunkFrameLen is the fixed chunk framing: count and payload length,
	// both little-endian u32.
	chunkFrameLen = 8
)

// IsBinaryTrace reports whether the byte prefix opens a binary trace
// (starts with the binary magic). Four bytes suffice.
func IsBinaryTrace(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic
}

// Header describes a binary trace.
type Header struct {
	// NumProcs is the number of distinct processor (tenant) ids; every
	// request's Proc must lie in [0, NumProcs).
	NumProcs int
	// NumDisks records the disk count the trace was generated against —
	// metadata for the consumer (dpcsim adopts it when -disks is not
	// given); the codec itself never maps blocks to disks.
	NumDisks int
	// NumRequests is the total request count; the reader verifies it
	// against the sum of the chunk counts.
	NumRequests int64
	// ChunkCap is the maximum requests per chunk; zero selects
	// DefaultChunkRequests.
	ChunkCap int
}

func (h Header) validate() error {
	if h.NumProcs <= 0 {
		return fmt.Errorf("trace: header NumProcs %d must be positive", h.NumProcs)
	}
	if h.NumDisks <= 0 {
		return fmt.Errorf("trace: header NumDisks %d must be positive", h.NumDisks)
	}
	if h.NumRequests < 0 {
		return fmt.Errorf("trace: header NumRequests %d must be >= 0", h.NumRequests)
	}
	if h.ChunkCap < 0 {
		return fmt.Errorf("trace: header ChunkCap %d must be >= 0 (0 selects the default %d)", h.ChunkCap, DefaultChunkRequests)
	}
	if h.ChunkCap > maxChunkRequests {
		return fmt.Errorf("trace: header ChunkCap %d exceeds the maximum %d", h.ChunkCap, maxChunkRequests)
	}
	return nil
}

// Source is the simulator-facing iterator over a trace: both the in-memory
// slice (SliceSource) and the chunked binary reader (Reader) satisfy it,
// so a consumer written against Source replays traces of any size with the
// memory footprint of one chunk.
//
// Next returns the next chunk of requests in trace order and io.EOF after
// the last one. The returned slice is only valid until the next Next or
// Close call: implementations reuse one arena across chunks, which is what
// makes steady-state streaming allocation-free.
type Source interface {
	// Requests returns the total request count, or -1 when unknown.
	Requests() int64
	// Next returns the next chunk, or nil and io.EOF at the end.
	Next() ([]Request, error)
	// Close releases the source's decode arena. The source must not be
	// used afterwards.
	Close() error
}

// arenaPools holds sync.Pool request arenas bucketed by exact capacity.
// Chunk capacities come from file headers, so in practice one or two
// buckets exist and every reader of the same format hits the same pool;
// keying by exact capacity keeps the pre-sizing exact — an arena is never
// grown or reallocated after it leaves the pool.
var arenaPools sync.Map // int (capacity) → *sync.Pool

func arenaGet(capacity int) []Request {
	p, ok := arenaPools.Load(capacity)
	if !ok {
		p, _ = arenaPools.LoadOrStore(capacity, &sync.Pool{
			New: func() any { return make([]Request, capacity) },
		})
	}
	return p.(*sync.Pool).Get().([]Request)
}

func arenaPut(arena []Request) {
	capacity := cap(arena)
	if capacity == 0 {
		return
	}
	p, ok := arenaPools.Load(capacity)
	if !ok {
		p, _ = arenaPools.LoadOrStore(capacity, &sync.Pool{
			New: func() any { return make([]Request, capacity) },
		})
	}
	p.(*sync.Pool).Put(arena[:capacity])
}

// Writer encodes requests into the chunked binary format. Write may be
// called any number of times with any slice sizes; the writer re-chunks
// internally. Close flushes the final partial chunk and verifies the
// header's declared request count was written exactly.
type Writer struct {
	w       *bufio.Writer
	hdr     Header
	pending int   // requests encoded into buf's current chunk
	written int64 // total requests written
	buf     []byte
	frame   [chunkFrameLen]byte
	prevA   uint64 // arrival bits of the previous request in the chunk
	prevB   int64  // block of the previous request in the chunk
}

// NewWriter writes the header and returns a chunking writer. The header's
// ChunkCap zero value selects DefaultChunkRequests.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.ChunkCap == 0 {
		h.ChunkCap = DefaultChunkRequests
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hb []byte
	hb = append(hb, binaryMagic...)
	hb = append(hb, BinaryVersion, 0)
	hb = binary.AppendUvarint(hb, uint64(h.NumProcs))
	hb = binary.AppendUvarint(hb, uint64(h.NumDisks))
	hb = binary.AppendUvarint(hb, uint64(h.NumRequests))
	hb = binary.AppendUvarint(hb, uint64(h.ChunkCap))
	if _, err := bw.Write(hb); err != nil {
		return nil, err
	}
	return &Writer{
		w:   bw,
		hdr: h,
		buf: make([]byte, 0, h.ChunkCap*16), // typical encodings are ≤ 16 B/req
	}, nil
}

// Header returns the header the writer was created with.
func (w *Writer) Header() Header { return w.hdr }

// Write appends requests to the trace.
func (w *Writer) Write(reqs []Request) error {
	for i := range reqs {
		r := &reqs[i]
		if r.Proc < 0 || r.Proc >= w.hdr.NumProcs {
			return fmt.Errorf("trace: request %d: proc %d outside header range 0..%d",
				w.written+int64(w.pending), r.Proc, w.hdr.NumProcs-1)
		}
		if r.Size < 0 {
			return fmt.Errorf("trace: request %d: negative size %d", w.written+int64(w.pending), r.Size)
		}
		meta := uint64(r.Proc) << 1
		if r.Write {
			meta |= 1
		}
		bits := math.Float64bits(r.Arrival)
		w.buf = binary.AppendUvarint(w.buf, meta)
		w.buf = binary.AppendUvarint(w.buf, bits^w.prevA)
		w.buf = binary.AppendVarint(w.buf, r.Block-w.prevB)
		w.buf = binary.AppendUvarint(w.buf, uint64(r.Size))
		w.prevA, w.prevB = bits, r.Block
		w.pending++
		if w.pending == w.hdr.ChunkCap {
			if err := w.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Writer) flushChunk() error {
	if w.pending == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(w.frame[0:4], uint32(w.pending))
	binary.LittleEndian.PutUint32(w.frame[4:8], uint32(len(w.buf)))
	if _, err := w.w.Write(w.frame[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.written += int64(w.pending)
	w.pending = 0
	w.buf = w.buf[:0]
	w.prevA, w.prevB = 0, 0 // delta state resets at every chunk boundary
	return nil
}

// Close flushes the final chunk and checks the declared request count.
// It does not close the underlying io.Writer.
func (w *Writer) Close() error {
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.written != w.hdr.NumRequests {
		return fmt.Errorf("trace: wrote %d requests but the header declared %d", w.written, w.hdr.NumRequests)
	}
	return nil
}

// EncodeBinary writes reqs as one binary trace. numProcs and numDisks
// become header metadata; numProcs zero derives the count from the
// requests (max proc id + 1, minimum 1).
func EncodeBinary(w io.Writer, reqs []Request, numProcs, numDisks int) error {
	if numProcs == 0 {
		numProcs = 1
		for i := range reqs {
			if reqs[i].Proc >= numProcs {
				numProcs = reqs[i].Proc + 1
			}
		}
	}
	bw, err := NewWriter(w, Header{
		NumProcs:    numProcs,
		NumDisks:    numDisks,
		NumRequests: int64(len(reqs)),
	})
	if err != nil {
		return err
	}
	if err := bw.Write(reqs); err != nil {
		return err
	}
	return bw.Close()
}

// Reader streams a binary trace chunk by chunk. It decodes into a pooled
// arena pre-sized to the header's chunk capacity, so after the first chunk
// (or with a warm pool, from the very first) the steady state allocates
// nothing per chunk. Close returns the arena to the pool.
type Reader struct {
	r       *bufio.Reader
	hdr     Header
	arena   []Request
	payload []byte
	frame   [chunkFrameLen]byte
	chunk   int   // index of the next chunk, for error messages
	decoded int64 // requests decoded so far
	done    bool

	// Live decode-throughput counters; nil unless SetMetrics installed
	// them. Updated once per chunk, never inside the decode loop.
	mChunks, mRequests, mBytes *metrics.Counter
}

// Live metric names the binary decoder publishes via SetMetrics.
const (
	metricTraceChunks   = "trace_chunks_decoded_total"
	metricTraceRequests = "trace_requests_decoded_total"
	metricTraceBytes    = "trace_bytes_decoded_total"
)

// SetMetrics installs live decode-throughput counters — chunks, requests,
// and payload bytes decoded — resolved once here so Next pays only nil
// checks at chunk granularity. A nil registry is a no-op.
func (r *Reader) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.mChunks = reg.Counter(metricTraceChunks, "binary trace chunks decoded")
	r.mRequests = reg.Counter(metricTraceRequests, "binary trace requests decoded")
	r.mBytes = reg.Counter(metricTraceBytes, "binary trace payload bytes decoded (before framing)")
}

// NewReader reads and validates the header of a binary trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic)+2)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", errTruncated(err))
	}
	if !IsBinaryTrace(magic) {
		return nil, fmt.Errorf("trace: bad magic %q: not a binary trace", magic[:len(binaryMagic)])
	}
	if v := magic[len(binaryMagic)]; v != BinaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (want %d)", v, BinaryVersion)
	}
	var h Header
	var err error
	if h.NumProcs, err = readUvarintInt(br, "NumProcs"); err != nil {
		return nil, err
	}
	if h.NumDisks, err = readUvarintInt(br, "NumDisks"); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading header NumRequests: %w", errTruncated(err))
	}
	if n > math.MaxInt64 {
		return nil, fmt.Errorf("trace: header NumRequests %d overflows", n)
	}
	h.NumRequests = int64(n)
	if h.ChunkCap, err = readUvarintInt(br, "ChunkCap"); err != nil {
		return nil, err
	}
	if h.ChunkCap == 0 {
		return nil, fmt.Errorf("trace: header ChunkCap must be positive")
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &Reader{
		r:       br,
		hdr:     h,
		arena:   arenaGet(h.ChunkCap),
		payload: make([]byte, 0, h.ChunkCap*16),
	}, nil
}

func readUvarintInt(r io.ByteReader, field string) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("trace: reading header %s: %w", field, errTruncated(err))
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("trace: header %s %d overflows", field, v)
	}
	return int(v), nil
}

// errTruncated rewrites a bare EOF into a diagnosis: EOF in the middle of
// a structure means the file was cut short, not that it ended cleanly.
func errTruncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("truncated trace: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// Header returns the trace's header.
func (r *Reader) Header() Header { return r.hdr }

// Requests returns the header's declared request count.
func (r *Reader) Requests() int64 { return r.hdr.NumRequests }

// Next decodes the next chunk into the reader's arena and returns it. The
// slice is valid until the next Next or Close call. After the final chunk
// it verifies the total against the header and returns io.EOF.
func (r *Reader) Next() ([]Request, error) {
	if r.done {
		return nil, io.EOF
	}
	if _, err := io.ReadFull(r.r, r.frame[:]); err != nil {
		if err == io.EOF {
			// Clean end of file between chunks: the trace is complete iff
			// the chunk counts add up to the header's declaration.
			r.done = true
			if r.decoded != r.hdr.NumRequests {
				return nil, fmt.Errorf("trace: decoded %d requests but the header declared %d (truncated trace?)",
					r.decoded, r.hdr.NumRequests)
			}
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trace: chunk %d: reading chunk header: %w", r.chunk, errTruncated(err))
	}
	count := int(binary.LittleEndian.Uint32(r.frame[0:4]))
	payloadLen := int(binary.LittleEndian.Uint32(r.frame[4:8]))
	switch {
	case count == 0:
		return nil, fmt.Errorf("trace: chunk %d: corrupt chunk header: zero request count", r.chunk)
	case count > r.hdr.ChunkCap:
		return nil, fmt.Errorf("trace: chunk %d: corrupt chunk header: count %d exceeds chunk capacity %d",
			r.chunk, count, r.hdr.ChunkCap)
	case payloadLen < count*4 || payloadLen > count*maxReqEncoding:
		return nil, fmt.Errorf("trace: chunk %d: corrupt chunk header: payload length %d implausible for %d requests",
			r.chunk, payloadLen, count)
	case int64(count) > r.hdr.NumRequests-r.decoded:
		return nil, fmt.Errorf("trace: chunk %d: corrupt chunk header: count %d overruns the header's declared total %d",
			r.chunk, count, r.hdr.NumRequests)
	}
	if cap(r.payload) < payloadLen {
		r.payload = make([]byte, payloadLen)
	}
	buf := r.payload[:payloadLen]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("trace: chunk %d: reading %d-byte payload: %w", r.chunk, payloadLen, errTruncated(err))
	}
	// The decode loop is the stream replay's hot path (BenchmarkRunStream is
	// decode-bound), so each field checks the single-byte case in place —
	// meta and the zigzag block delta are almost always one byte — and only
	// longer varints call uvarintAt, whose two-byte early exit covers the
	// page size and most arrival XOR deltas. This replaces binary.Uvarint on
	// a fresh sub-slice per field, which is a non-inlinable call even for
	// one-byte values.
	out := r.arena[:count]
	var prevA uint64
	var prevB int64
	maxProc := uint64(r.hdr.NumProcs - 1)
	pos := 0
	for i := 0; i < count; i++ {
		var meta uint64
		if uint(pos) < uint(len(buf)) && buf[pos] < 0x80 {
			meta = uint64(buf[pos])
			pos++
		} else {
			v, n := uvarintAt(buf, pos)
			if n < 0 {
				return nil, r.corrupt(i, "meta varint")
			}
			meta, pos = v, n
		}
		if meta>>1 > maxProc {
			return nil, fmt.Errorf("trace: chunk %d: request %d: proc %d outside header range 0..%d",
				r.chunk, i, meta>>1, r.hdr.NumProcs-1)
		}
		var abits uint64
		if uint(pos) < uint(len(buf)) && buf[pos] < 0x80 {
			abits = uint64(buf[pos])
			pos++
		} else {
			v, n := uvarintAt(buf, pos)
			if n < 0 {
				return nil, r.corrupt(i, "arrival varint")
			}
			abits, pos = v, n
		}
		prevA ^= abits
		arrival := math.Float64frombits(prevA)
		if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
			return nil, fmt.Errorf("trace: chunk %d: request %d: non-finite arrival", r.chunk, i)
		}
		var bdelta int64
		if uint(pos) < uint(len(buf)) && buf[pos] < 0x80 {
			b := buf[pos]
			bdelta = int64(b>>1) ^ -int64(b&1)
			pos++
		} else {
			v, n := varintAt(buf, pos)
			if n < 0 {
				return nil, r.corrupt(i, "block varint")
			}
			bdelta, pos = v, n
		}
		prevB += bdelta
		var size uint64
		if uint(pos) < uint(len(buf)) && buf[pos] < 0x80 {
			size = uint64(buf[pos])
			pos++
		} else {
			v, n := uvarintAt(buf, pos)
			if n < 0 {
				return nil, r.corrupt(i, "size varint")
			}
			size, pos = v, n
		}
		if size > math.MaxInt64 {
			return nil, fmt.Errorf("trace: chunk %d: request %d: size %d overflows", r.chunk, i, size)
		}
		out[i] = Request{
			Arrival: arrival,
			Block:   prevB,
			Size:    int64(size),
			Write:   meta&1 != 0,
			Proc:    int(meta >> 1),
		}
	}
	if pos != payloadLen {
		return nil, fmt.Errorf("trace: chunk %d: %d trailing bytes after %d requests (corrupt payload)",
			r.chunk, payloadLen-pos, count)
	}
	r.chunk++
	r.decoded += int64(count)
	if r.mChunks != nil {
		r.mChunks.Inc()
		r.mRequests.Add(float64(count))
		r.mBytes.Add(float64(chunkFrameLen + payloadLen))
	}
	return out, nil
}

func (r *Reader) corrupt(i int, what string) error {
	return fmt.Errorf("trace: chunk %d: request %d: truncated or corrupt %s", r.chunk, i, what)
}

// Close returns the decode arena to the pool. It does not close the
// underlying io.Reader.
func (r *Reader) Close() error {
	if r.arena != nil {
		arenaPut(r.arena)
		r.arena = nil
	}
	r.done = true
	return nil
}

// DecodeBinary reads a whole binary trace into memory — the bridge for
// consumers that need random access (e.g. the closed-loop replay) or for
// binary traces arriving on a non-seekable stream.
func DecodeBinary(rd io.Reader) ([]Request, error) {
	r, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []Request
	if n := r.Requests(); n > 0 && n <= maxChunkRequests {
		out = make([]Request, 0, n)
	}
	for {
		chunk, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}

// SliceSource adapts an in-memory request slice to the Source interface,
// yielding it in chunks without copying. It is the in-memory counterpart
// the streaming replay is checked bit-identical against.
type SliceSource struct {
	reqs  []Request
	chunk int
	off   int
}

// NewSliceSource wraps reqs; chunk <= 0 selects DefaultChunkRequests.
func NewSliceSource(reqs []Request, chunk int) *SliceSource {
	if chunk <= 0 {
		chunk = DefaultChunkRequests
	}
	return &SliceSource{reqs: reqs, chunk: chunk}
}

// Requests returns the slice length.
func (s *SliceSource) Requests() int64 { return int64(len(s.reqs)) }

// Next returns the next chunk-sized window of the slice.
func (s *SliceSource) Next() ([]Request, error) {
	if s.off >= len(s.reqs) {
		return nil, io.EOF
	}
	end := s.off + s.chunk
	if end > len(s.reqs) {
		end = len(s.reqs)
	}
	out := s.reqs[s.off:end]
	s.off = end
	return out, nil
}

// Close is a no-op (the slice belongs to the caller).
func (s *SliceSource) Close() error {
	s.off = len(s.reqs)
	return nil
}

// uvarintAt decodes an unsigned varint from buf at pos and returns the value
// and the position just past it; a negative position means the varint is
// truncated or overflows 64 bits. The decode loop handles the single-byte
// case in place and calls this for the rest, so the two-byte early exit here
// covers nearly everything — typically the page size and arrival deltas —
// before uvarintSlowAt's general loop.
func uvarintAt(buf []byte, pos int) (uint64, int) {
	if uint(pos) < uint(len(buf)) {
		b := buf[pos]
		if b < 0x80 {
			return uint64(b), pos + 1
		}
		if uint(pos+1) < uint(len(buf)) {
			if b2 := buf[pos+1]; b2 < 0x80 {
				return uint64(b&0x7f) | uint64(b2)<<7, pos + 2
			}
		}
	}
	return uvarintSlowAt(buf, pos)
}

// uvarintSlowAt finishes varints of three or more bytes with the same error
// conditions as binary.Uvarint: truncation and 64-bit overflow are negative.
func uvarintSlowAt(buf []byte, pos int) (uint64, int) {
	var x uint64
	var s uint
	for i := pos; i < len(buf); i++ {
		b := buf[i]
		if b < 0x80 {
			if s == 63 && b > 1 {
				return 0, -1 // value overflows 64 bits
			}
			return x | uint64(b)<<s, i + 1
		}
		if s == 63 {
			return 0, -1 // more than ten continuation bytes
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, -1 // truncated
}

// varintAt is uvarintAt plus the zigzag decode used for block deltas.
func varintAt(buf []byte, pos int) (int64, int) {
	ux, n := uvarintAt(buf, pos)
	return int64(ux>>1) ^ -int64(ux&1), n
}
