package trace

import (
	"fmt"
	"math/bits"

	"diskreuse/internal/core"
	"diskreuse/internal/interp"
)

// Phase is one barrier-delimited batch of execution: each processor runs
// its iteration list concurrently with the others, and all processors join
// the barrier before the next phase begins. The single-processor case is a
// single phase with one list; the multiprocessor experiments use one phase
// per nest (§6's execution model).
type Phase struct {
	PerProc [][]int // iteration ids in execution order, indexed by processor
}

// Coalesce selects how repeated touches to the same page are absorbed
// before they become disk requests.
type Coalesce int

const (
	// FirstTouch emits one read and at most one write request per
	// (processor, nest, page): the compiler's out-of-core I/O insertion
	// fetches each page a nest needs once and writes each dirty page once.
	// Request counts are then independent of iteration order — matching
	// the paper's Table 2, which lists a single request count per
	// application across all versions — while arrival times still reflect
	// the schedule.
	FirstTouch Coalesce = iota
	// LRU models a small per-processor file cache instead: a touch to a
	// resident page is absorbed; a miss fetches the page, evicting the
	// least recently used. Request counts then depend on access order.
	LRU
)

// GenConfig controls trace generation.
type GenConfig struct {
	// ComputePerIter is the CPU time each iteration spends outside I/O,
	// standing in for the paper's SUN Blade1000 cycle estimates.
	ComputePerIter float64
	// Coalesce selects the request-coalescing model (default FirstTouch).
	Coalesce Coalesce
	// CachePages is the per-processor cache capacity in pages for the LRU
	// model. Zero selects DefaultCachePages.
	CachePages int
	// ServiceEstimate estimates the I/O completion time the generating
	// processor waits for on a cache miss (closed-loop generation). Zero
	// selects a 4-KiB full-speed Ultrastar service time.
	ServiceEstimate float64
}

// DefaultCachePages is the default per-processor cache capacity. It is
// deliberately small relative to the arrays: the paper's applications are
// out-of-core, so the cache absorbs only short-term reuse.
const DefaultCachePages = 64

// touchKey identifies a first-touch coalescing unit.
type touchKey struct {
	nest  int
	page  int64
	write bool
}

// lruNode is one resident page on the cache's recency ring.
type lruNode struct {
	page       int64
	prev, next *lruNode
}

// pageCache is a tiny LRU set of resident pages: a map for O(1) lookup
// plus an intrusive doubly-linked recency ring (root.next is most recent,
// root.prev least recent), so eviction is O(1) instead of a scan over the
// whole cache. Every recency stamp is distinct, so this is exactly the
// eviction order the earlier stamp-scan implementation produced.
type pageCache struct {
	cap   int
	pages map[int64]*lruNode
	root  lruNode // sentinel of the recency ring
}

func newPageCache(capacity int) *pageCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &pageCache{cap: capacity, pages: make(map[int64]*lruNode, capacity)}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

// touch returns true on hit; on miss it inserts the page, evicting the
// least recently used one if full.
func (c *pageCache) touch(page int64) bool {
	if n, ok := c.pages[page]; ok {
		c.unlink(n)
		c.pushFront(n)
		return true
	}
	var n *lruNode
	if len(c.pages) >= c.cap {
		n = c.root.prev // least recently used
		c.unlink(n)
		delete(c.pages, n.page)
		n.page = page
	} else {
		n = &lruNode{page: page}
	}
	c.pushFront(n)
	c.pages[page] = n
	return false
}

func (c *pageCache) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (c *pageCache) pushFront(n *lruNode) {
	n.prev = &c.root
	n.next = c.root.next
	c.root.next.prev = n
	c.root.next = n
}

// Generate produces the disk request trace for an execution described by
// phases over the iteration space of r. Each processor has its own clock;
// a cache miss emits a request at the current clock and advances it by the
// service estimate (closed-loop generation, as when the source program
// blocks on a read), and each finished iteration advances it by the
// compute time. Clocks synchronize to the barrier (max of all clocks)
// between phases. The returned requests are sorted by arrival time.
//
// The page-coalescing loop honors the engine the space was built with: on
// the compiled engine each iteration's linear indices come off the
// Streamer's stride tables and pages off precomputed per-array tables; on
// the interp engine the original per-access Accesses/ElemPage loop runs as
// the reference oracle. Both produce bit-identical request traces.
func Generate(r *core.Restructurer, phases []Phase, cfg GenConfig) ([]Request, error) {
	if cfg.CachePages <= 0 {
		cfg.CachePages = DefaultCachePages
	}
	if cfg.ServiceEstimate <= 0 {
		cfg.ServiceEstimate = 5.474e-3 // 4 KiB at full Ultrastar speed
	}
	procs := 0
	for _, ph := range phases {
		if len(ph.PerProc) > procs {
			procs = len(ph.PerProc)
		}
	}
	if procs == 0 {
		return nil, fmt.Errorf("trace: no processors in phases")
	}
	if r.Space.Engine() == interp.EngineCompiled {
		return generateCompiled(r, phases, cfg, procs)
	}
	return generateInterp(r, phases, cfg, procs)
}

// generateInterp is the tree-walk oracle path of Generate, kept verbatim:
// per-access affine re-evaluation via Space.Accesses and page lookup via
// Layout.ElemPage.
func generateInterp(r *core.Restructurer, phases []Phase, cfg GenConfig, procs int) ([]Request, error) {
	clocks := make([]float64, procs)
	caches := make([]*pageCache, procs)
	touched := make([]map[touchKey]bool, procs)
	for p := range caches {
		caches[p] = newPageCache(cfg.CachePages)
		touched[p] = map[touchKey]bool{}
	}

	// absorb reports whether the access to page by processor p during nest
	// execution can be satisfied without a disk request.
	absorb := func(p int, nest int, page int64, write bool) bool {
		if cfg.Coalesce == LRU {
			return caches[p].touch(page)
		}
		k := touchKey{nest: nest, page: page, write: write}
		if touched[p][k] {
			return true
		}
		touched[p][k] = true
		return false
	}

	var reqs []Request
	var buf []interp.Access
	seen := make([]bool, r.Space.NumIterations())
	for _, ph := range phases {
		for p, order := range ph.PerProc {
			for _, id := range order {
				if id < 0 || id >= len(seen) {
					return nil, fmt.Errorf("trace: iteration id %d out of range", id)
				}
				if seen[id] {
					return nil, fmt.Errorf("trace: iteration %d appears twice", id)
				}
				seen[id] = true
				nest := r.Space.Nest(id)
				buf = r.Space.Accesses(id, buf[:0])
				for _, a := range buf {
					page, err := r.Layout.ElemPage(a.Array, a.Lin)
					if err != nil {
						return nil, err
					}
					if absorb(p, nest, page, a.Write) {
						continue
					}
					reqs = append(reqs, Request{
						Arrival: clocks[p],
						Block:   page,
						Size:    r.Layout.PageSize,
						Write:   a.Write,
						Proc:    p,
					})
					clocks[p] += cfg.ServiceEstimate
				}
				clocks[p] += cfg.ComputePerIter
			}
		}
		// Barrier: everyone waits for the slowest processor.
		maxClock := 0.0
		for _, c := range clocks {
			if c > maxClock {
				maxClock = c
			}
		}
		for p := range clocks {
			clocks[p] = maxClock
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("trace: iteration %d never executed", id)
		}
	}
	SortByArrival(reqs)
	return reqs, nil
}

// touchTableMax caps the flat first-touch table at 16 MiB per processor;
// larger page spaces fall back to per-nest maps (same absorb semantics,
// so the emitted trace is identical either way).
const touchTableMax = 1 << 24

// generateCompiled is the stride-compiled path of Generate. Linear element
// indices stream off the Space's compiled kernels (O(1) updates between
// consecutive iterations of a processor's order), and the page of element
// lin of array a is pageBase[a] + lin/elemsPerPage[a] — exact because the
// layout aligns every extent base to the stripe unit (a multiple of the
// page size) and requires the element size to divide the page size. When
// elements-per-page is a power of two the division is a shift.
// First-touch coalescing uses one flat byte of read/write bits per
// (processor, nest, page) — the same (nest, page, write) first-touch unit
// as the oracle's map, minus the hashing — with a map fallback for page
// spaces too large to table.
func generateCompiled(r *core.Restructurer, phases []Phase, cfg GenConfig, procs int) ([]Request, error) {
	numArrays := len(r.Space.Prog.Arrays)
	numNests := len(r.Space.Prog.Nests)
	pageBase := make([]int64, numArrays)
	elemsPerPage := make([]int64, numArrays)
	pageShift := make([]int, numArrays)
	elems := make([]int64, numArrays)
	for _, ext := range r.Layout.Extents {
		a := ext.Array
		epp := r.Layout.PageSize / a.ElemSize
		pageBase[a.Index] = ext.Base / r.Layout.PageSize
		elemsPerPage[a.Index] = epp
		pageShift[a.Index] = -1
		if epp&(epp-1) == 0 {
			pageShift[a.Index] = bits.TrailingZeros64(uint64(epp))
		}
		elems[a.Index] = a.Elems()
	}
	clocks := make([]float64, procs)
	caches := make([]*pageCache, procs)
	// Flat table: touched[p][nest*maxPage+page] holds touch bits (1 = read
	// seen, 2 = write seen). Allocated lazily per processor.
	maxPage := (r.Layout.TotalBytes() + r.Layout.PageSize - 1) / r.Layout.PageSize
	tableLen := int64(numNests) * maxPage
	useTable := tableLen > 0 && tableLen <= touchTableMax
	touched := make([][]uint8, procs)
	touchedMaps := make([][]map[int64]uint8, procs)
	for p := range caches {
		caches[p] = newPageCache(cfg.CachePages)
		if !useTable {
			touchedMaps[p] = make([]map[int64]uint8, numNests)
		}
	}

	// Every access emits at most one request, so AccessCount caps the
	// request count; pre-sizing (bounded) avoids append-growth copies of
	// the hot output slice.
	reqs := make([]Request, 0, min(r.Space.AccessCount(), 1<<20))
	str := r.Space.NewStreamer()
	seen := make([]bool, r.Space.NumIterations())
	for _, ph := range phases {
		for p, order := range ph.PerProc {
			tf := touched[p]
			if useTable && cfg.Coalesce != LRU && tf == nil {
				tf = make([]uint8, tableLen)
				touched[p] = tf
			}
			for _, id := range order {
				if id < 0 || id >= len(seen) {
					return nil, fmt.Errorf("trace: iteration id %d out of range", id)
				}
				if seen[id] {
					return nil, fmt.Errorf("trace: iteration %d appears twice", id)
				}
				seen[id] = true
				refs, vals := str.Step(id)
				nest := str.Nest()
				nestOff := int64(nest) * maxPage
				for j := range refs {
					lin := vals[j]
					ai := refs[j].ArrIdx
					if lin < 0 || lin >= elems[ai] {
						// Out of range: route through the oracle's lookup so
						// the error matches ElemPage's exactly.
						_, err := r.Layout.ElemPage(refs[j].Arr, lin)
						return nil, err
					}
					var page int64
					if sh := pageShift[ai]; sh >= 0 {
						page = pageBase[ai] + lin>>uint(sh)
					} else {
						page = pageBase[ai] + lin/elemsPerPage[ai]
					}
					write := refs[j].Write
					if cfg.Coalesce == LRU {
						if caches[p].touch(page) {
							continue
						}
					} else {
						bit := uint8(1)
						if write {
							bit = 2
						}
						if useTable {
							if tf[nestOff+page]&bit != 0 {
								continue
							}
							tf[nestOff+page] |= bit
						} else {
							tm := touchedMaps[p][nest]
							if tm == nil {
								tm = map[int64]uint8{}
								touchedMaps[p][nest] = tm
							}
							if tm[page]&bit != 0 {
								continue
							}
							tm[page] |= bit
						}
					}
					reqs = append(reqs, Request{
						Arrival: clocks[p],
						Block:   page,
						Size:    r.Layout.PageSize,
						Write:   write,
						Proc:    p,
					})
					clocks[p] += cfg.ServiceEstimate
				}
				clocks[p] += cfg.ComputePerIter
			}
		}
		// Barrier: everyone waits for the slowest processor.
		maxClock := 0.0
		for _, c := range clocks {
			if c > maxClock {
				maxClock = c
			}
		}
		for p := range clocks {
			clocks[p] = maxClock
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("trace: iteration %d never executed", id)
		}
	}
	SortByArrival(reqs)
	return reqs, nil
}

// SinglePhase wraps a single-processor schedule as one phase.
func SinglePhase(s *core.Schedule) []Phase {
	return []Phase{{PerProc: [][]int{s.Order}}}
}

// VerifyPhases checks that the phased execution respects every dependence
// edge of the graph: an edge u -> v is satisfied if u's phase precedes v's,
// or they share a phase AND a processor with u ordered before v. Barriers
// order distinct phases; nothing orders two processors within a phase.
func VerifyPhases(space *interp.Space, g *interp.DepGraph, phases []Phase) error {
	n := space.NumIterations()
	phaseOf := make([]int, n)
	procOf := make([]int, n)
	posOf := make([]int, n)
	placed := make([]bool, n)
	for pi, ph := range phases {
		for p, order := range ph.PerProc {
			for pos, id := range order {
				if id < 0 || id >= n {
					return fmt.Errorf("trace: phase %d: id %d out of range", pi, id)
				}
				if placed[id] {
					return fmt.Errorf("trace: iteration %d placed twice", id)
				}
				placed[id] = true
				phaseOf[id], procOf[id], posOf[id] = pi, p, pos
			}
		}
	}
	for id, ok := range placed {
		if !ok {
			return fmt.Errorf("trace: iteration %d not placed", id)
		}
	}
	for v := 0; v < n; v++ {
		for _, u32 := range g.Preds[v] {
			u := int(u32)
			switch {
			case phaseOf[u] < phaseOf[v]:
			case phaseOf[u] > phaseOf[v]:
				return fmt.Errorf("trace: dependence %v -> %v runs backwards across phases",
					space.IterAt(u), space.IterAt(v))
			case procOf[u] != procOf[v]:
				return fmt.Errorf("trace: dependence %v -> %v crosses processors %d/%d within a phase",
					space.IterAt(u), space.IterAt(v), procOf[u], procOf[v])
			case posOf[u] >= posOf[v]:
				return fmt.Errorf("trace: dependence %v -> %v out of order on processor %d",
					space.IterAt(u), space.IterAt(v), procOf[u])
			}
		}
	}
	return nil
}

// NestPhases builds one phase per nest from a per-processor assignment of
// iteration ids (each inner list already in the desired execution order).
// perProcOrders[p] holds processor p's full iteration order; iterations are
// split into phases by their nest, preserving relative order.
func NestPhases(space *interp.Space, perProcOrders [][]int, numNests int) []Phase {
	phases := make([]Phase, numNests)
	procs := len(perProcOrders)
	for k := range phases {
		phases[k].PerProc = make([][]int, procs)
	}
	for p, order := range perProcOrders {
		for _, id := range order {
			k := space.Nest(id)
			phases[k].PerProc[p] = append(phases[k].PerProc[p], id)
		}
	}
	return phases
}
