package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"diskreuse/internal/core"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func build(t *testing.T, src string) *core.Restructurer {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Block: 12, Size: 4096, Write: false, Proc: 0},
		{Arrival: 0.0123456, Block: 99, Size: 32768, Write: true, Proc: 3},
		{Arrival: 1.5, Block: 0, Size: 4096, Write: false, Proc: 1},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if math.Abs(got[i].Arrival-reqs[i].Arrival) > 1e-9 ||
			got[i].Block != reqs[i].Block || got[i].Size != reqs[i].Size ||
			got[i].Write != reqs[i].Write || got[i].Proc != reqs[i].Proc {
			t.Errorf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestDecodeCommentsAndErrors(t *testing.T) {
	good := "# comment\n\n1.0 5 4096 R 0\n2.0 6 4096 w 1\n"
	reqs, err := Decode(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[1].Write != true {
		t.Errorf("reqs = %+v", reqs)
	}
	bad := []string{
		"1.0 5 4096 R\n",
		"x 5 4096 R 0\n",
		"1.0 x 4096 R 0\n",
		"1.0 5 x R 0\n",
		"1.0 5 4096 Q 0\n",
		"1.0 5 4096 R x\n",
	}
	for _, b := range bad {
		if _, err := Decode(strings.NewReader(b)); err == nil {
			t.Errorf("Decode(%q) should fail", b)
		}
	}
}

func TestPageCacheLRU(t *testing.T) {
	c := newPageCache(2)
	if c.touch(1) {
		t.Error("first touch must miss")
	}
	if !c.touch(1) {
		t.Error("second touch must hit")
	}
	c.touch(2)
	c.touch(1) // refresh 1; LRU is now 2
	c.touch(3) // evicts 2
	if !c.touch(1) {
		t.Error("1 must still be resident")
	}
	if c.touch(2) {
		t.Error("2 must have been evicted")
	}
}

const seqScanSrc = `
array A[8192] stripe(unit=4K, factor=4, start=0)
nest L { for i = 0 to 8191 { read A[i]; } }
`

func TestGenerateSequentialScan(t *testing.T) {
	r := build(t, seqScanSrc)
	s := r.OriginalSchedule()
	reqs, err := Generate(r, SinglePhase(s), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// 8192 float64s = 64 KiB = 16 pages: one request per page.
	if len(reqs) != 16 {
		t.Fatalf("requests = %d, want 16", len(reqs))
	}
	for i, rq := range reqs {
		if rq.Block != int64(i) {
			t.Errorf("request %d block = %d", i, rq.Block)
		}
		if rq.Write || rq.Proc != 0 || rq.Size != 4096 {
			t.Errorf("request %d = %+v", i, rq)
		}
	}
	// Arrivals strictly increasing (closed loop + compute time).
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Errorf("arrivals not increasing at %d", i)
		}
	}
}

func TestGenerateCacheSuppressesReuse(t *testing.T) {
	// Two nests reading the same small array back to back: the second scan
	// hits cache entirely when the array fits.
	r := build(t, `
array A[512] stripe(unit=4K, factor=2, start=0)
nest L1 { for i = 0 to 511 { read A[i]; } }
nest L2 { for i = 0 to 511 { read A[i]; } }
`)
	s := r.OriginalSchedule()
	reqs, err := Generate(r, SinglePhase(s), GenConfig{ComputePerIter: 1e-6, Coalesce: LRU, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	// 512 float64s = 4 KiB = 1 page; second nest hits in the LRU cache.
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1", len(reqs))
	}
	// Under first-touch coalescing each nest fetches the page once.
	reqs, err = Generate(r, SinglePhase(s), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("first-touch requests = %d, want 2", len(reqs))
	}
}

// First-touch coalescing makes request counts independent of iteration
// order: the restructured schedule issues exactly the same requests as the
// original, only at different times (the paper's Table 2 lists one request
// count per application across all versions).
func TestFirstTouchCountsOrderIndependent(t *testing.T) {
	r := build(t, `
array A[8192] stripe(unit=4K, factor=4, start=0)
array B[8192] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 1 to 8190 { A[i] = B[i] + B[i-1] + B[i+1]; } }
nest L2 { for i = 0 to 8191 { B[i] = A[i]; } }
`)
	orig, err := Generate(r, SinglePhase(r.OriginalSchedule()), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	restr, err := Generate(r, SinglePhase(rs), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(restr) {
		t.Fatalf("request counts differ: %d vs %d", len(orig), len(restr))
	}
	count := func(reqs []Request) map[string]int {
		m := map[string]int{}
		for _, rq := range reqs {
			key := "R"
			if rq.Write {
				key = "W"
			}
			m[fmt.Sprintf("%s%d", key, rq.Block)]++
		}
		return m
	}
	co, cr := count(orig), count(restr)
	for k, v := range co {
		if cr[k] != v {
			t.Fatalf("request multiset differs at %s: %d vs %d", k, v, cr[k])
		}
	}
}

func TestGenerateWriteType(t *testing.T) {
	r := build(t, `
array A[512] stripe(unit=4K, factor=2, start=0)
array B[512] stripe(unit=4K, factor=2, start=0)
nest L { for i = 0 to 511 { B[i] = A[i]; } }
`)
	reqs, err := Generate(r, SinglePhase(r.OriginalSchedule()), GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var rCount, wCount int
	for _, rq := range reqs {
		if rq.Write {
			wCount++
		} else {
			rCount++
		}
	}
	if rCount != 1 || wCount != 1 {
		t.Errorf("reads=%d writes=%d, want 1 and 1", rCount, wCount)
	}
}

func TestGenerateMultiProcBarriers(t *testing.T) {
	r := build(t, `
array A[4096] stripe(unit=4K, factor=4, start=0)
array B[4096] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 0 to 4095 { A[i] = B[i]; } }
nest L2 { for i = 0 to 4095 { B[i] = A[i]; } }
`)
	// Two processors, split by halves; phases per nest.
	n := r.Space.NumIterations() / 2 // 4096 per nest
	perProc := [][]int{{}, {}}
	for id := 0; id < n; id++ {
		p := 0
		if id >= n/2 {
			p = 1
		}
		perProc[p] = append(perProc[p], id)
	}
	for id := n; id < 2*n; id++ {
		p := 0
		if id-n >= n/2 {
			p = 1
		}
		perProc[p] = append(perProc[p], id)
	}
	phases := NestPhases(r.Space, perProc, len(r.Prog.Nests))
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	if err := VerifyPhases(r.Space, r.Graph, phases); err != nil {
		t.Fatal(err)
	}
	reqs, err := Generate(r, phases, GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	// Requests from both processors present.
	procs := map[int]bool{}
	for _, rq := range reqs {
		procs[rq.Proc] = true
	}
	if !procs[0] || !procs[1] {
		t.Errorf("procs seen = %v", procs)
	}
	// Phase-2 requests must all arrive after the barrier, i.e. after every
	// phase-1 request from the SLOWER processor. Weaker, robust check: the
	// trace is sorted.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("trace not sorted by arrival")
		}
	}
}

func TestVerifyPhasesCatchesViolations(t *testing.T) {
	r := build(t, `
array A[1024] stripe(unit=4K, factor=2, start=0)
nest L1 { for i = 0 to 1023 { A[i] = A[i]; } }
nest L2 { for i = 0 to 1023 { read A[i]; } }
`)
	n := 1024
	// Violation: consumer phase before producer phase.
	bad := []Phase{
		{PerProc: [][]int{rangeIDs(n, 2*n)}},
		{PerProc: [][]int{rangeIDs(0, n)}},
	}
	if err := VerifyPhases(r.Space, r.Graph, bad); err == nil {
		t.Error("backwards phases must fail")
	}
	// Violation: same phase, different processors.
	bad2 := []Phase{{PerProc: [][]int{rangeIDs(0, n), rangeIDs(n, 2*n)}}}
	if err := VerifyPhases(r.Space, r.Graph, bad2); err == nil {
		t.Error("cross-processor same-phase dependence must fail")
	}
	// Legal: both nests on one processor in order.
	good := []Phase{{PerProc: [][]int{rangeIDs(0, 2*n)}}}
	if err := VerifyPhases(r.Space, r.Graph, good); err != nil {
		t.Errorf("legal phases rejected: %v", err)
	}
	// Missing iteration.
	if err := VerifyPhases(r.Space, r.Graph, []Phase{{PerProc: [][]int{rangeIDs(0, n)}}}); err == nil {
		t.Error("missing iterations must fail")
	}
	// Duplicate iteration.
	dup := []Phase{{PerProc: [][]int{append(rangeIDs(0, 2*n), 0)}}}
	if err := VerifyPhases(r.Space, r.Graph, dup); err == nil {
		t.Error("duplicate iterations must fail")
	}
}

func rangeIDs(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

func TestGenerateErrors(t *testing.T) {
	r := build(t, seqScanSrc)
	if _, err := Generate(r, nil, GenConfig{}); err == nil {
		t.Error("no phases must fail")
	}
	if _, err := Generate(r, []Phase{{PerProc: [][]int{{0, 0}}}}, GenConfig{}); err == nil {
		t.Error("duplicate iteration must fail")
	}
	if _, err := Generate(r, []Phase{{PerProc: [][]int{{-1}}}}, GenConfig{}); err == nil {
		t.Error("bad id must fail")
	}
	short := []Phase{{PerProc: [][]int{{0, 1, 2}}}}
	if _, err := Generate(r, short, GenConfig{}); err == nil {
		t.Error("missing iterations must fail")
	}
}

// The clustering effect the whole paper rests on: a restructured schedule
// produces per-disk request streams that are contiguous in time, while the
// original interleaves them.
func TestGeneratedTraceClustersByDisk(t *testing.T) {
	r := build(t, `
array A[16384] stripe(unit=4K, factor=4, start=0)
array B[16384] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 0 to 16383 { A[i] = B[i]; } }
nest L2 { for i = 0 to 16383 { B[i] = A[i]; } }
`)
	countDiskSwitches := func(reqs []Request) int {
		switches := 0
		prev := -1
		for _, rq := range reqs {
			d, err := r.Layout.PageDisk(rq.Block)
			if err != nil {
				t.Fatal(err)
			}
			if d != prev {
				switches++
				prev = d
			}
		}
		return switches
	}
	orig, err := Generate(r, SinglePhase(r.OriginalSchedule()), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	restructured, err := Generate(r, SinglePhase(rs), GenConfig{ComputePerIter: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	so, sr := countDiskSwitches(orig), countDiskSwitches(restructured)
	if sr >= so {
		t.Errorf("restructured trace switches disks %d times, original %d — expected improvement", sr, so)
	}
	if sr != 4 {
		t.Errorf("restructured trace should visit each disk once, switches = %d", sr)
	}
}

// stampCache is the earlier O(cap)-eviction page cache, kept as the
// reference model: a recency stamp per page, evicting the minimum stamp.
// Stamps are distinct, so its eviction order is true LRU.
type stampCache struct {
	cap   int
	pages map[int64]int
	clock int
}

func (c *stampCache) touch(page int64) bool {
	c.clock++
	if _, ok := c.pages[page]; ok {
		c.pages[page] = c.clock
		return true
	}
	if len(c.pages) >= c.cap {
		oldPage, oldStamp := int64(-1), c.clock+1
		for p, s := range c.pages {
			if s < oldStamp {
				oldPage, oldStamp = p, s
			}
		}
		delete(c.pages, oldPage)
	}
	c.pages[page] = c.clock
	return false
}

// Property: the linked-list cache hits and misses exactly like the
// reference stamp-scan on random access streams — same results per touch
// means same eviction order throughout.
func TestQuickPageCacheMatchesStampScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + rng.Intn(16)
		lru := newPageCache(capacity)
		ref := &stampCache{cap: capacity, pages: make(map[int64]int, capacity)}
		span := int64(1 + rng.Intn(3*capacity)) // force plenty of evictions
		for step := 0; step < 2000; step++ {
			page := rng.Int63n(span)
			got, want := lru.touch(page), ref.touch(page)
			if got != want {
				t.Fatalf("trial %d (cap %d) step %d page %d: touch = %v, reference = %v",
					trial, capacity, step, page, got, want)
			}
		}
		if len(lru.pages) != len(ref.pages) {
			t.Fatalf("trial %d: resident count %d, reference %d",
				trial, len(lru.pages), len(ref.pages))
		}
		for p := range ref.pages {
			if _, ok := lru.pages[p]; !ok {
				t.Fatalf("trial %d: page %d resident in reference only", trial, p)
			}
		}
	}
}

func TestProcStreams(t *testing.T) {
	reqs := []Request{
		{Proc: 3}, {Proc: 1}, {Proc: 3}, {Proc: 0}, {Proc: 1}, {Proc: 3},
	}
	ids, per := ProcStreams(reqs)
	if want := []int{3, 1, 0}; !reflect.DeepEqual(ids, want) {
		t.Errorf("procIDs = %v, want first-appearance order %v", ids, want)
	}
	want := [][]int{{0, 2, 5}, {1, 4}, {3}}
	if !reflect.DeepEqual(per, want) {
		t.Errorf("perProc = %v, want %v", per, want)
	}
	// The flat carve must size each stream exactly: appending one more
	// index to any stream may not alias into its neighbor's backing.
	per[0] = append(per[0], 99)
	if !reflect.DeepEqual(per[1], []int{1, 4}) {
		t.Errorf("append to stream 0 corrupted stream 1: %v", per[1])
	}

	ids, per = ProcStreams(nil)
	if len(ids) != 0 || len(per) != 0 {
		t.Errorf("empty trace: ids=%v per=%v", ids, per)
	}
}
