package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzDecode feeds the trace parser arbitrary text: it must never panic,
// and anything it accepts must survive an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"0.0 0 4096 R 0\n",
		"# comment\n\n1.5 12 32768 W 3\n2.5 13 4096 r 1\n",
		"x y z\n",
		"1.0 5 4096 Q 0\n",
		"999999999.9 9223372036854775807 1 w 255\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		reqs, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, r := range reqs {
			if math.IsNaN(r.Arrival) {
				t.Fatalf("decoded NaN arrival from %q", in)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, reqs); err != nil {
			t.Fatalf("encode of decoded trace failed: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of encoded trace failed: %v\n%s", err, buf.String())
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed request count: %d -> %d", len(reqs), len(again))
		}
		for i := range reqs {
			if again[i].Block != reqs[i].Block || again[i].Size != reqs[i].Size ||
				again[i].Write != reqs[i].Write || again[i].Proc != reqs[i].Proc {
				t.Fatalf("round trip changed request %d: %+v -> %+v", i, reqs[i], again[i])
			}
			if math.Abs(again[i].Arrival-reqs[i].Arrival) > 1e-6+1e-9*math.Abs(reqs[i].Arrival) {
				t.Fatalf("round trip moved arrival %d: %v -> %v", i, reqs[i].Arrival, again[i].Arrival)
			}
		}
	})
}
