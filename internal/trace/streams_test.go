package trace

import (
	"math/rand"
	"reflect"
	"testing"
)

// Adversarial coverage for the two hot-path helpers the simulator's trace
// preparation leans on: SortedByArrival (which gates skipping a defensive
// copy-and-sort) and ProcStreams (whose flat-backing grouping must exactly
// match the obvious map-append reference).

func arrivalsOf(times ...float64) []Request {
	reqs := make([]Request, len(times))
	for i, at := range times {
		reqs[i] = Request{Arrival: at, Block: int64(i)}
	}
	return reqs
}

func TestSortedByArrival(t *testing.T) {
	cases := []struct {
		name string
		reqs []Request
		want bool
	}{
		{"empty", nil, true},
		{"single", arrivalsOf(3.5), true},
		{"sorted", arrivalsOf(0, 1, 2, 3), true},
		{"all ties", arrivalsOf(2, 2, 2, 2), true},
		{"sorted with ties", arrivalsOf(0, 1, 1, 2, 2, 2, 5), true},
		{"reverse", arrivalsOf(3, 2, 1, 0), false},
		{"dip at end", arrivalsOf(0, 1, 2, 1.5), false},
		{"dip at start", arrivalsOf(1, 0, 2, 3), false},
		{"negative times sorted", arrivalsOf(-3, -1, 0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := SortedByArrival(tc.reqs); got != tc.want {
				t.Fatalf("SortedByArrival = %v, want %v", got, tc.want)
			}
		})
	}

	// Randomized cross-check: SortedByArrival is true exactly when a stable
	// sort is a no-op.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		reqs := make([]Request, rng.Intn(8))
		for i := range reqs {
			reqs[i] = Request{Arrival: float64(rng.Intn(4)), Block: int64(i)}
		}
		sorted := append([]Request(nil), reqs...)
		SortByArrival(sorted)
		want := len(reqs) == 0 || reflect.DeepEqual(reqs, sorted)
		if got := SortedByArrival(reqs); got != want {
			t.Fatalf("SortedByArrival(%v) = %v, stable sort no-op = %v", reqs, got, want)
		}
	}
}

// procStreamsRef is the obvious map-append reference implementation.
func procStreamsRef(reqs []Request) (procIDs []int, perProc [][]int) {
	idx := map[int]int{}
	for i, r := range reqs {
		k, ok := idx[r.Proc]
		if !ok {
			k = len(procIDs)
			idx[r.Proc] = k
			procIDs = append(procIDs, r.Proc)
			perProc = append(perProc, nil)
		}
		perProc[k] = append(perProc[k], i)
	}
	return procIDs, perProc
}

func procsOf(procs ...int) []Request {
	reqs := make([]Request, len(procs))
	for i, p := range procs {
		reqs[i] = Request{Arrival: float64(i), Proc: p}
	}
	return reqs
}

func TestProcStreamsAdversarial(t *testing.T) {
	cases := []struct {
		name string
		reqs []Request
	}{
		{"empty", nil},
		{"single", procsOf(0)},
		{"one proc many requests", procsOf(4, 4, 4, 4)},
		{"interleaved", procsOf(0, 1, 0, 1, 0)},
		{"first appearance order", procsOf(2, 0, 1, 0, 2)},
		{"negative and sparse ids", procsOf(-1, 1000000, -1, 3, 1000000)},
		{"singleton tail", procsOf(0, 0, 0, 7)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkProcStreams(t, tc.reqs)
		})
	}

	t.Run("randomized", func(t *testing.T) {
		rng := rand.New(rand.NewSource(29))
		for trial := 0; trial < 300; trial++ {
			reqs := make([]Request, rng.Intn(40))
			for i := range reqs {
				reqs[i] = Request{Arrival: float64(i), Proc: rng.Intn(5) - 1}
			}
			checkProcStreams(t, reqs)
		}
	})
}

func checkProcStreams(t *testing.T, reqs []Request) {
	t.Helper()
	procIDs, perProc := ProcStreams(reqs)
	wantIDs, wantPer := procStreamsRef(reqs)
	if len(procIDs) != len(wantIDs) || (len(procIDs) > 0 && !reflect.DeepEqual(procIDs, wantIDs)) {
		t.Fatalf("proc ids %v, want %v", procIDs, wantIDs)
	}
	if len(perProc) != len(wantPer) {
		t.Fatalf("%d streams, want %d", len(perProc), len(wantPer))
	}
	total := 0
	for k := range perProc {
		if len(perProc[k]) > 0 && !reflect.DeepEqual(perProc[k], wantPer[k]) {
			t.Fatalf("stream %d (proc %d): %v, want %v", k, procIDs[k], perProc[k], wantPer[k])
		}
		total += len(perProc[k])
		// Every index belongs to its processor, in increasing input order.
		for j, i := range perProc[k] {
			if reqs[i].Proc != procIDs[k] {
				t.Fatalf("stream %d holds index %d of proc %d", k, i, reqs[i].Proc)
			}
			if j > 0 && perProc[k][j-1] >= i {
				t.Fatalf("stream %d not in input order: %v", k, perProc[k])
			}
		}
	}
	if total != len(reqs) {
		t.Fatalf("streams cover %d of %d requests", total, len(reqs))
	}
}
