package trace

import "sort"

// Hint is a compiler-inserted power-management directive (Son et al. [25],
// discussed in §3 of the paper): because the compiler knows the disk
// access pattern of the restructured code, it can tell a spun-down disk to
// start spinning up *before* the first request of its next burst arrives,
// eliminating the reactive spin-up latency.
type Hint struct {
	Time float64 // when the spin-up should begin
	Disk int
}

// ProactiveHints post-processes a trace: for every per-disk idle gap long
// enough that a TPM disk would have spun down (gap >= threshold), it emits
// a hint to begin spinning up spinUpTime before the gap-ending request
// arrives. Hints are returned sorted by time.
//
// The hint is clamped to never precede the moment the disk would have
// finished spinning down (threshold + spinDownTime after the gap began):
// for gaps barely over the threshold the wake-up is only partially hidden,
// exactly as a real early-wake directive would behave.
func ProactiveHints(reqs []Request, diskOf func(block int64) (int, error),
	threshold, spinDownTime, spinUpTime float64) ([]Hint, error) {

	// Every disk's stream implicitly starts at time 0 (disks are powered
	// from application start), so the idle period before a disk's first
	// request also gets a wake-up hint when it is long enough.
	last := map[int]float64{} // disk -> last arrival seen (default 0)
	var hints []Hint
	sorted := append([]Request(nil), reqs...)
	SortByArrival(sorted)
	for _, r := range sorted {
		d, err := diskOf(r.Block)
		if err != nil {
			return nil, err
		}
		prev := last[d]
		if gap := r.Arrival - prev; gap >= threshold {
			at := r.Arrival - spinUpTime
			if earliest := prev + threshold + spinDownTime; at < earliest {
				at = earliest
			}
			hints = append(hints, Hint{Time: at, Disk: d})
		}
		last[d] = r.Arrival
	}
	sort.Slice(hints, func(i, j int) bool { return hints[i].Time < hints[j].Time })
	return hints, nil
}
