// Multi-tenant workload synthesizer: many phase-shifted application
// instances merged onto one disk array, written directly to the chunked
// binary format. This is the `dpcbench -scale` workload — the regime where
// online energy-aware policies are evaluated: each tenant alternates
// bursts of spatially local requests with long think periods, and the
// tenants' phases are staggered so the array sees overlapping bursts
// rather than lockstep idleness. The generators are merged with a K-way
// heap, so a trace of any length is produced in one pass with O(tenants)
// state — nothing is ever materialized in memory.
package trace

import (
	"container/heap"
	"fmt"
	"io"
)

// SynthConfig parameterizes the multi-tenant synthesizer. The zero value
// of every field except Tenants and Requests selects a default.
type SynthConfig struct {
	// Tenants is the number of phase-shifted application instances; each
	// tenant issues its requests as one processor (Proc = tenant id).
	Tenants int
	// Requests is the total request count across all tenants.
	Requests int64
	// NumDisks is the disk count recorded in the header and used to size
	// the tenants' block regions across the array. Zero selects 16.
	NumDisks int
	// Seed makes the workload reproducible; the same config and seed
	// always produce the identical byte stream.
	Seed int64
	// PageSize is the request size in bytes (default 4096).
	PageSize int64
	// RegionPages is each tenant's private block region in pages; zero
	// selects 64 stripes' worth per disk (NumDisks * 64 * stripe pages).
	RegionPages int64
	// BurstLen is the mean requests per burst (default 512).
	BurstLen int
	// IntraGap is the mean seconds between requests inside a burst
	// (default 2 ms).
	IntraGap float64
	// IdleGap is the mean think time between a tenant's bursts (default
	// 30 s — comfortably past the Ultrastar's 15.2 s break-even, so TPM
	// and DRPM have real idleness to harvest).
	IdleGap float64
	// PhaseShift is the stagger between tenant start times; zero selects
	// IdleGap / Tenants, spreading the tenants' bursts over the cycle.
	PhaseShift float64
	// WritePct is the percentage of write requests (default 30).
	WritePct int
	// RunLen is the mean sequential run length in pages before the block
	// cursor jumps within the region (default 64 — strong locality, the
	// regime compiler-restructured codes produce).
	RunLen int
	// ChunkCap overrides the binary chunk capacity (0 = default).
	ChunkCap int
}

// synthStripePages is the stripe extent (in pages) the synthesizer lays
// tenant regions out with; consumers replaying the trace should stripe
// with the same unit to reproduce the intended per-disk interleave.
const synthStripePages = 8

func (c SynthConfig) withDefaults() (SynthConfig, error) {
	if c.Tenants <= 0 {
		return c, fmt.Errorf("trace: synth Tenants %d must be positive", c.Tenants)
	}
	if c.Requests <= 0 {
		return c, fmt.Errorf("trace: synth Requests %d must be positive", c.Requests)
	}
	if c.NumDisks == 0 {
		c.NumDisks = 16
	}
	if c.NumDisks < 0 {
		return c, fmt.Errorf("trace: synth NumDisks %d must be >= 0", c.NumDisks)
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.RegionPages <= 0 {
		c.RegionPages = int64(c.NumDisks) * 64 * synthStripePages
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 512
	}
	if c.IntraGap <= 0 {
		c.IntraGap = 2e-3
	}
	if c.IdleGap <= 0 {
		c.IdleGap = 30
	}
	if c.PhaseShift == 0 {
		c.PhaseShift = c.IdleGap / float64(c.Tenants)
	}
	if c.PhaseShift < 0 {
		return c, fmt.Errorf("trace: synth PhaseShift %v must be >= 0", c.PhaseShift)
	}
	if c.WritePct == 0 {
		c.WritePct = 30
	}
	if c.WritePct < 0 || c.WritePct > 100 {
		return c, fmt.Errorf("trace: synth WritePct %d must be in 0..100", c.WritePct)
	}
	if c.RunLen <= 0 {
		c.RunLen = 64
	}
	return c, nil
}

// synthRNG is a self-contained xorshift64* generator, so synthesized
// workloads are reproducible across Go releases (math/rand makes no such
// promise for its stream).
type synthRNG uint64

func newSynthRNG(seed int64) *synthRNG {
	s := synthRNG(seed)*2685821657736338717 + 1442695040888963407
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &s
}

func (r *synthRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = synthRNG(x)
	return x * 2685821657736338717
}

func (r *synthRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// float unit-interval sample with 53 bits of the stream.
func (r *synthRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// tenant is one synthetic application instance: a monotone request
// generator with burst/think alternation and a local block cursor.
type tenant struct {
	id        int
	rng       *synthRNG
	remaining int64
	clock     float64 // arrival of the pending request
	burstLeft int     // requests left in the current burst
	cursor    int64   // block cursor within the tenant's region
	base      int64   // region base block
	pending   Request
}

// advance produces the tenant's next request into pending. The clock is
// strictly nondecreasing, which the K-way merge depends on.
func (t *tenant) advance(cfg *SynthConfig) {
	r := t.rng
	if t.burstLeft == 0 {
		// Think period, exponential-ish around IdleGap: 0.5–1.5 mean.
		t.clock += cfg.IdleGap * (0.5 + r.float())
		t.burstLeft = 1 + r.intn(2*cfg.BurstLen)
	} else {
		t.clock += cfg.IntraGap * (0.5 + r.float())
	}
	t.burstLeft--
	if r.intn(cfg.RunLen) == 0 {
		t.cursor = int64(r.intn(int(cfg.RegionPages)))
	} else {
		t.cursor++
		if t.cursor >= cfg.RegionPages {
			t.cursor = 0
		}
	}
	t.pending = Request{
		Arrival: t.clock,
		Block:   t.base + t.cursor,
		Size:    cfg.PageSize,
		Write:   r.intn(100) < cfg.WritePct,
		Proc:    t.id,
	}
	t.remaining--
}

// tenantHeap orders tenants by pending arrival, tenant id as tie-break, so
// the merged stream depends only on the config and seed.
type tenantHeap []*tenant

func (h tenantHeap) Len() int { return len(h) }
func (h tenantHeap) Less(i, j int) bool {
	if h[i].pending.Arrival != h[j].pending.Arrival {
		return h[i].pending.Arrival < h[j].pending.Arrival
	}
	return h[i].id < h[j].id
}
func (h tenantHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tenantHeap) Push(x any)   { *h = append(*h, x.(*tenant)) }
func (h *tenantHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WriteSynthetic streams a synthesized multi-tenant trace to w in the
// binary format and returns the header it wrote. The output is globally
// sorted by arrival (the merge invariant), so it replays through the
// streaming simulator directly.
func WriteSynthetic(w io.Writer, cfg SynthConfig) (Header, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Header{}, err
	}
	hdr := Header{
		NumProcs:    cfg.Tenants,
		NumDisks:    cfg.NumDisks,
		NumRequests: cfg.Requests,
		ChunkCap:    cfg.ChunkCap,
	}
	bw, err := NewWriter(w, hdr)
	if err != nil {
		return Header{}, err
	}
	perTenant := cfg.Requests / int64(cfg.Tenants)
	extra := cfg.Requests % int64(cfg.Tenants)
	hs := make(tenantHeap, 0, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		n := perTenant
		if int64(i) < extra {
			n++
		}
		if n == 0 {
			continue
		}
		t := &tenant{
			id:        i,
			rng:       newSynthRNG(cfg.Seed ^ int64(i)*0x5deece66d),
			remaining: n,
			clock:     float64(i) * cfg.PhaseShift,
			base:      int64(i) * cfg.RegionPages,
		}
		t.advance(&cfg)
		hs = append(hs, t)
	}
	heap.Init(&hs)

	buf := make([]Request, 0, 1024)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := bw.Write(buf)
		buf = buf[:0]
		return err
	}
	for hs.Len() > 0 {
		t := hs[0]
		buf = append(buf, t.pending)
		if len(buf) == cap(buf) {
			if err := flush(); err != nil {
				return Header{}, err
			}
		}
		if t.remaining > 0 {
			t.advance(&cfg)
			heap.Fix(&hs, 0)
		} else {
			heap.Pop(&hs)
		}
	}
	if err := flush(); err != nil {
		return Header{}, err
	}
	if err := bw.Close(); err != nil {
		return Header{}, err
	}
	return bw.Header(), nil
}

// SynthDiskOf returns the block→disk mapping matching the synthesizer's
// layout assumptions: round-robin striping of synthStripePages-page
// stripes over numDisks disks.
func SynthDiskOf(numDisks int) func(block int64) (int, error) {
	return func(block int64) (int, error) {
		if block < 0 {
			return 0, fmt.Errorf("trace: negative block %d", block)
		}
		return int((block / synthStripePages) % int64(numDisks)), nil
	}
}
