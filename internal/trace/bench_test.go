package trace

import (
	"context"
	"sort"
	"testing"
	"time"

	"diskreuse/internal/apps"
	"diskreuse/internal/core"
	"diskreuse/internal/interp"
	"diskreuse/internal/sema"
)

func benchProgram(b testing.TB) *sema.Program {
	b.Helper()
	app, err := apps.ByName("RSense", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchRestructurer(b testing.TB, e interp.Engine) *core.Restructurer {
	b.Helper()
	r, err := core.NewCtx(context.Background(), benchProgram(b), nil, core.Options{Jobs: 0, Engine: e})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkGenerateTrace measures the page-coalescing trace generation
// loop under both engines: the compiled path streams linear indices off
// stride tables and maps pages with precomputed per-array tables; the
// interp path is the per-access Accesses/ElemPage reference loop.
func BenchmarkGenerateTrace(b *testing.B) {
	for _, e := range []interp.Engine{interp.EngineCompiled, interp.EngineInterp} {
		b.Run(e.String(), func(b *testing.B) {
			r := benchRestructurer(b, e)
			phases := SinglePhase(r.OriginalSchedule())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Generate(r, phases, GenConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCompiledEngineFaster is the CI bench smoke for the compiled engine:
// the full front end plus trace generation on apps.Small must be faster
// compiled than tree-walked, with margin. It measures medians of three
// runs so one scheduler hiccup cannot flake the suite, and it double-
// checks that the two engines emit identical traces before comparing
// clocks.
func TestCompiledEngineFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	p := benchProgram(t)
	run := func(e interp.Engine) (time.Duration, []Request) {
		start := time.Now()
		r, err := core.NewCtx(context.Background(), p, nil, core.Options{Jobs: 1, Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := Generate(r, SinglePhase(r.OriginalSchedule()), GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), reqs
	}
	median := func(e interp.Engine) (time.Duration, []Request) {
		var ds []time.Duration
		var reqs []Request
		for i := 0; i < 3; i++ {
			d, r := run(e)
			ds = append(ds, d)
			reqs = r
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[1], reqs
	}
	compiled, creqs := median(interp.EngineCompiled)
	interpD, ireqs := median(interp.EngineInterp)
	if len(creqs) != len(ireqs) {
		t.Fatalf("engines disagree: %d vs %d requests", len(creqs), len(ireqs))
	}
	for i := range creqs {
		if creqs[i] != ireqs[i] {
			t.Fatalf("request %d differs: compiled %+v, interp %+v", i, creqs[i], ireqs[i])
		}
	}
	if compiled*12/10 >= interpD {
		t.Errorf("compiled engine not faster with margin: compiled %v, interp %v", compiled, interpD)
	}
	t.Logf("front end + trace on apps.Small: compiled %v, interp %v (%.1fx)",
		compiled, interpD, float64(interpD)/float64(compiled))
}
