// Package trace defines the disk I/O request trace that connects the
// compiler side of the system to the disk simulator, mirroring §7.1 of the
// paper: the compiler-transformed code is run through a trace generator,
// and the simulator is driven by the resulting externally-provided request
// trace. Each request carries the five fields the paper lists — arrival
// time, start block, size, read/write type, and processor id.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Request is one disk I/O request.
type Request struct {
	Arrival float64 // seconds since application start
	Block   int64   // logical page-block number (striped over I/O nodes)
	Size    int64   // bytes
	Write   bool
	Proc    int // id of the requesting processor
}

// Encode writes requests in the paper's five-field text format, one request
// per line: arrival time in milliseconds, start block, size in bytes,
// R or W, processor id.
func Encode(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		typ := "R"
		if r.Write {
			typ = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.6f %d %d %s %d\n",
			r.Arrival*1e3, r.Block, r.Size, typ, r.Proc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format produced by Encode.
func Decode(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(f))
		}
		ms, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", lineNo, f[0])
		}
		block, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block %q", lineNo, f[1])
		}
		size, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size %q", lineNo, f[2])
		}
		var write bool
		switch f[3] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad type %q", lineNo, f[3])
		}
		proc, err := strconv.Atoi(f[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad processor %q", lineNo, f[4])
		}
		out = append(out, Request{Arrival: ms / 1e3, Block: block, Size: size, Write: write, Proc: proc})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortByArrival orders requests by arrival time (stable, preserving
// generation order for equal times).
func SortByArrival(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
}

// SortedByArrival reports whether reqs is already in arrival order. The
// simulator uses it to skip the defensive copy-and-sort on traces that come
// straight out of Generate (which always sorts): any subsequence of a
// sorted slice is itself sorted, with equal-arrival relative order
// preserved, so skipping the stable re-sort is exact.
func SortedByArrival(reqs []Request) bool {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return false
		}
	}
	return true
}

// ProcStreams groups reqs by processor id: it returns the processor ids in
// first-appearance order and, for each, the indices of that processor's
// requests in input order. The index lists are carved out of one flat
// backing array sized by a counting pass, so the grouping costs two sweeps
// and three allocations regardless of the processor count. The closed-loop
// simulator hoists this grouping into trace preparation, leaving its issue
// loop free of map lookups.
func ProcStreams(reqs []Request) (procIDs []int, perProc [][]int) {
	count := map[int]int{}
	for _, r := range reqs {
		count[r.Proc]++
	}
	slot := make(map[int]int, len(count))
	procIDs = make([]int, 0, len(count))
	perProc = make([][]int, 0, len(count))
	backing := make([]int, len(reqs))
	off := 0
	for i, r := range reqs {
		k, ok := slot[r.Proc]
		if !ok {
			k = len(procIDs)
			slot[r.Proc] = k
			procIDs = append(procIDs, r.Proc)
			n := count[r.Proc]
			perProc = append(perProc, backing[off:off:off+n])
			off += n
		}
		perProc[k] = append(perProc[k], i)
	}
	return procIDs, perProc
}
