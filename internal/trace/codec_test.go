package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"testing"

	"diskreuse/internal/core"
	"diskreuse/internal/drlgen"
	"diskreuse/internal/layout"
	"diskreuse/internal/metrics"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

// pipelineTrace compiles a drlgen program and generates its restructured
// request trace — the codec's property tests run on real pipeline output,
// not just synthetic request streams.
func pipelineTrace(t *testing.T, seed int64) []Request {
	t.Helper()
	c := drlgen.Generate(seed, drlgen.Config{MaxIterations: 64})
	astProg, err := parser.Parse(c.Source)
	if err != nil {
		t.Fatalf("seed %d: parse: %v", seed, err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		t.Fatalf("seed %d: sema: %v", seed, err)
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		t.Fatalf("seed %d: layout: %v", seed, err)
	}
	r, err := core.New(prog, lay)
	if err != nil {
		t.Fatalf("seed %d: core: %v", seed, err)
	}
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatalf("seed %d: schedule: %v", seed, err)
	}
	reqs, err := Generate(r, SinglePhase(sched), GenConfig{ComputePerIter: 1e-3})
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	return reqs
}

func roundTrip(t *testing.T, reqs []Request, numProcs, numDisks int) {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, reqs, numProcs, numDisks); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) == 0 && len(reqs) == 0 {
		return
	}
	if !reflect.DeepEqual(reqs, got) {
		t.Fatalf("round trip is not the identity: %d requests in, %d out", len(reqs), len(got))
	}
}

// TestBinaryRoundTripPipeline: encode→decode is the identity, bit for bit
// (arrival float bits included), on generated pipeline traces.
func TestBinaryRoundTripPipeline(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		reqs := pipelineTrace(t, seed)
		roundTrip(t, reqs, 0, 4)
	}
}

// TestBinaryRoundTripShapes exercises the codec's edge shapes: empty
// traces, single requests, chunk-boundary counts, unsorted arrivals,
// negative and descending blocks, denormal-adjacent arrivals.
func TestBinaryRoundTripShapes(t *testing.T) {
	shapes := map[string][]Request{
		"empty":  {},
		"single": {{Arrival: 1.5, Block: 42, Size: 4096, Write: true, Proc: 3}},
		"zeros":  {{}, {}, {}},
		"extremes": {
			{Arrival: 0, Block: math.MaxInt64, Size: math.MaxInt64, Proc: 0},
			{Arrival: math.MaxFloat64, Block: math.MinInt64 + 1, Size: 0, Write: true, Proc: 7},
			{Arrival: math.SmallestNonzeroFloat64, Block: 0, Size: 1, Proc: 1},
		},
		"unsorted": {
			{Arrival: 9, Block: 5, Size: 512},
			{Arrival: 1, Block: 9000, Size: 512},
			{Arrival: 4, Block: 1, Size: 512, Write: true},
		},
	}
	for name, reqs := range shapes {
		t.Run(name, func(t *testing.T) { roundTrip(t, reqs, 8, 2) })
	}

	t.Run("chunk-boundaries", func(t *testing.T) {
		// Counts straddling the chunk capacity, with a tiny capacity so
		// multi-chunk framing and delta-state resets are exercised.
		for _, n := range []int{6, 7, 8} {
			reqs := make([]Request, n)
			for i := range reqs {
				reqs[i] = Request{Arrival: float64(i) * 0.25, Block: int64(i * 13), Size: 4096, Proc: i % 3}
			}
			var buf bytes.Buffer
			w, err := NewWriter(&buf, Header{NumProcs: 3, NumDisks: 2, NumRequests: int64(n), ChunkCap: 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(reqs); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reqs, got) {
				t.Fatalf("n=%d: round trip is not the identity", n)
			}
		}
	})
}

// TestBinaryWriterValidation covers the writer's input contract.
func TestBinaryWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{NumProcs: 0, NumDisks: 1}); err == nil {
		t.Error("zero NumProcs accepted")
	}
	if _, err := NewWriter(&buf, Header{NumProcs: 1, NumDisks: 0}); err == nil {
		t.Error("zero NumDisks accepted")
	}
	if _, err := NewWriter(&buf, Header{NumProcs: 1, NumDisks: 1, ChunkCap: maxChunkRequests + 1}); err == nil {
		t.Error("oversized ChunkCap accepted")
	}

	w, err := NewWriter(&buf, Header{NumProcs: 2, NumDisks: 1, NumRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]Request{{Proc: 2}}); err == nil {
		t.Error("proc outside the header range accepted")
	}
	if err := w.Write([]Request{{Size: -1}}); err == nil {
		t.Error("negative size accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("Close accepted a request count short of the declaration")
	}
}

// headerLen computes the encoded header size for corruption tests from
// the documented layout.
func headerLen(h Header) int {
	n := len(binaryMagic) + 2
	var b []byte
	for _, v := range []uint64{uint64(h.NumProcs), uint64(h.NumDisks), uint64(h.NumRequests), uint64(h.ChunkCap)} {
		b = binary.AppendUvarint(b[:0], v)
		n += len(b)
	}
	return n
}

// corruptTrace returns a small valid two-chunk encoding plus the offsets
// of its first chunk frame.
func corruptTrace(t *testing.T) (data []byte, frameOff int) {
	t.Helper()
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Arrival: float64(i), Block: int64(100 + i), Size: 4096, Proc: i % 2}
	}
	var buf bytes.Buffer
	h := Header{NumProcs: 2, NumDisks: 4, NumRequests: 10, ChunkCap: 6}
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(reqs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), headerLen(w.Header())
}

// TestBinaryTruncation: every strict prefix of a valid trace must fail to
// decode — a cut anywhere (mid-header, mid-frame, mid-payload, or at a
// clean chunk boundary short of the declared total) is always detected.
func TestBinaryTruncation(t *testing.T) {
	data, _ := corruptTrace(t)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBinary(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(data))
		}
	}
	if _, err := DecodeBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("decode of the full trace failed: %v", err)
	}
}

// TestBinaryCorruption: targeted header and frame corruptions produce
// errors (with the chunk index for framing violations), and flipping any
// single byte anywhere never panics and never yields a silently wrong
// request count.
func TestBinaryCorruption(t *testing.T) {
	data, frameOff := corruptTrace(t)
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), data...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"bad-magic":   mutate(func(b []byte) { b[0] ^= 0xff }),
		"bad-version": mutate(func(b []byte) { b[4] = 99 }),
		"zero-count": mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameOff:], 0)
		}),
		"count-over-cap": mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameOff:], 7) // ChunkCap is 6
		}),
		"payload-too-short": mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameOff+4:], 3) // < count*4
		}),
		"payload-too-long": mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameOff+4:], 6*maxReqEncoding+1)
		}),
	}
	for name, b := range cases {
		if _, err := DecodeBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}

	for i := range data {
		for _, bit := range []byte{0x01, 0xff} {
			b := append([]byte(nil), data...)
			b[i] ^= bit
			got, err := DecodeBinary(bytes.NewReader(b))
			if err != nil {
				continue
			}
			// A flip the framing cannot catch must still decode exactly the
			// declared request count with finite arrivals.
			if len(got) != 10 {
				t.Fatalf("flip at %d: silent success with %d requests (want 10)", i, len(got))
			}
			for _, r := range got {
				if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
					t.Fatalf("flip at %d: silent success with non-finite arrival", i)
				}
			}
		}
	}
}

// TestStreamDecodeAllocsPerChunk asserts the pooled-arena contract: once
// the arena pool is warm, decoding is allocation-free per chunk — the
// fixed per-reader setup cost amortizes to well under one allocation per
// chunk over a many-chunk trace.
func TestStreamDecodeAllocsPerChunk(t *testing.T) {
	const chunkCap, chunks = 256, 64
	reqs := make([]Request, chunkCap*chunks)
	for i := range reqs {
		reqs[i] = Request{Arrival: float64(i) * 1e-3, Block: int64(i % 4096), Size: 4096, Proc: i % 4}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{NumProcs: 4, NumDisks: 8, NumRequests: int64(len(reqs)), ChunkCap: chunkCap})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(reqs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	decodeAll := func() {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			chunk, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(chunk)
		}
		rd.Close()
		if n != len(reqs) {
			t.Fatalf("decoded %d of %d requests", n, len(reqs))
		}
	}
	decodeAll() // warm the arena pool
	allocs := testing.AllocsPerRun(10, decodeAll)
	if perChunk := allocs / chunks; perChunk >= 1 {
		t.Errorf("%.1f allocs per full decode = %.2f per chunk; steady-state chunk decode must be allocation-free", allocs, perChunk)
	}
}

// BenchmarkBinaryCodec tracks encode and streaming-decode throughput and
// the bytes-per-request density of the format.
func BenchmarkBinaryCodec(b *testing.B) {
	const n = 1 << 16
	reqs := make([]Request, n)
	tt := 0.0
	for i := range reqs {
		tt += float64(i%7) * 1e-3
		reqs[i] = Request{Arrival: tt, Block: int64((i * 13) % 65536), Size: 4096, Write: i%3 == 0, Proc: i % 4}
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, reqs, 4, 16); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportMetric(float64(len(data))/n, "B/req")

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := EncodeBinary(&buf, reqs, 4, 16); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "reqs/s")
	})
	b.Run("decode-stream", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			for {
				_, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			rd.Close()
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "reqs/s")
	})
}

// FuzzTraceCodec feeds the binary decoder arbitrary bytes: it must never
// panic, and any trace it accepts must re-encode and decode back to the
// identical request sequence.
func FuzzTraceCodec(f *testing.F) {
	seedTraces := [][]Request{
		{},
		{{Arrival: 0.5, Block: 7, Size: 4096, Write: true, Proc: 1}},
		{{Arrival: 1, Block: 10, Size: 512}, {Arrival: 2, Block: 11, Size: 512, Proc: 2}, {Arrival: 2, Block: 5, Size: 1024, Write: true}},
	}
	for _, reqs := range seedTraces {
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, reqs, 4, 8); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			cut := append([]byte(nil), buf.Bytes()[:buf.Len()/2]...)
			f.Add(cut)
			flip := append([]byte(nil), buf.Bytes()...)
			flip[buf.Len()/2] ^= 0x40
			f.Add(flip)
		}
	}
	f.Add([]byte(binaryMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		numProcs := 1
		for i := range reqs {
			if reqs[i].Proc >= numProcs {
				numProcs = reqs[i].Proc + 1
			}
			if math.IsNaN(reqs[i].Arrival) || math.IsInf(reqs[i].Arrival, 0) {
				t.Fatalf("decoder accepted a non-finite arrival")
			}
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, reqs, numProcs, 1); err != nil {
			t.Fatalf("re-encode of an accepted trace failed: %v", err)
		}
		again, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of a re-encoded trace failed: %v", err)
		}
		if len(reqs) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(reqs, again) {
			t.Fatalf("re-encode round trip changed the trace")
		}
	})
}

// TestSynthWriteStream checks the multi-tenant synthesizer's contract:
// deterministic output for a seed, globally arrival-sorted, the declared
// request count split across all tenants, and blocks inside each tenant's
// private region.
func TestSynthWriteStream(t *testing.T) {
	cfg := SynthConfig{Tenants: 5, Requests: 4000, NumDisks: 8, Seed: 42, ChunkCap: 512}
	var a, b bytes.Buffer
	hdrA, err := WriteSynthetic(&a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSynthetic(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same config and seed produced different byte streams")
	}
	if hdrA.NumProcs != 5 || hdrA.NumRequests != 4000 || hdrA.NumDisks != 8 {
		t.Fatalf("unexpected header %+v", hdrA)
	}
	reqs, err := DecodeBinary(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(reqs)) != cfg.Requests {
		t.Fatalf("decoded %d requests, want %d", len(reqs), cfg.Requests)
	}
	if !SortedByArrival(reqs) {
		t.Fatal("synthesized trace is not arrival-sorted")
	}
	perTenant := make([]int64, cfg.Tenants)
	region := int64(cfg.NumDisks) * 64 * synthStripePages
	diskOf := SynthDiskOf(cfg.NumDisks)
	for i, r := range reqs {
		if r.Proc < 0 || r.Proc >= cfg.Tenants {
			t.Fatalf("request %d: proc %d outside 0..%d", i, r.Proc, cfg.Tenants-1)
		}
		perTenant[r.Proc]++
		base := int64(r.Proc) * region
		if r.Block < base || r.Block >= base+region {
			t.Fatalf("request %d: block %d outside tenant %d's region [%d, %d)", i, r.Block, r.Proc, base, base+region)
		}
		d, err := diskOf(r.Block)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d >= cfg.NumDisks {
			t.Fatalf("request %d: disk %d outside 0..%d", i, d, cfg.NumDisks-1)
		}
	}
	for p, n := range perTenant {
		if n != 800 {
			t.Errorf("tenant %d issued %d requests, want an even 800", p, n)
		}
	}
}

// SetMetrics publishes decode throughput at chunk granularity: the final
// counters must reconcile with the header and the encoded size.
func TestReaderSetMetrics(t *testing.T) {
	reqs := pipelineTrace(t, 3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{NumProcs: 8, NumDisks: 4, NumRequests: int64(len(reqs)), ChunkCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(reqs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	reg := metrics.NewRegistry()
	rd.SetMetrics(reg)
	rd.SetMetrics(nil) // no-op, must not clear the installed counters
	var chunks int
	for {
		chunk, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		chunks++
		if v, _ := reg.Value("trace_chunks_decoded_total"); v != float64(chunks) {
			t.Fatalf("after %d chunks counter reads %v", chunks, v)
		}
		_ = chunk
	}
	if v, _ := reg.Value("trace_requests_decoded_total"); v != float64(len(reqs)) {
		t.Errorf("requests counter = %v, want %d", v, len(reqs))
	}
	if v, _ := reg.Value("trace_bytes_decoded_total"); v <= 0 || v >= float64(buf.Len()) {
		t.Errorf("bytes counter = %v, want in (0, %d)", v, buf.Len())
	}
}
