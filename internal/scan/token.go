// Package scan tokenizes DRL ("disk-resident loops") source text, the small
// loop-nest language this project uses as its compiler front-end in place of
// the paper's SUIF infrastructure. DRL programs declare symbolic parameters,
// disk-resident arrays with striping clauses, and nests of for-loops whose
// bodies read and write array elements through affine subscripts.
package scan

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal, with optional K/M/G suffix
	STRING // double-quoted string literal

	// Keywords.
	PARAM
	ARRAY
	NEST
	FOR
	TO
	STEP
	STRIPE
	UNIT
	FACTOR
	START
	FILEKW
	ELEM
	READ

	// Punctuation and operators.
	ASSIGN // =
	LBRACK // [
	RBRACK // ]
	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	COMMA  // ,
	SEMI   // ;
	PLUS   // +
	MINUS  // -
	STAR   // *
)

var kindNames = map[Kind]string{
	EOF:    "EOF",
	IDENT:  "identifier",
	INT:    "integer",
	STRING: "string",
	PARAM:  "param",
	ARRAY:  "array",
	NEST:   "nest",
	FOR:    "for",
	TO:     "to",
	STEP:   "step",
	STRIPE: "stripe",
	UNIT:   "unit",
	FACTOR: "factor",
	START:  "start",
	FILEKW: "file",
	ELEM:   "elem",
	READ:   "read",
	ASSIGN: "=",
	LBRACK: "[",
	RBRACK: "]",
	LPAREN: "(",
	RPAREN: ")",
	LBRACE: "{",
	RBRACE: "}",
	COMMA:  ",",
	SEMI:   ";",
	PLUS:   "+",
	MINUS:  "-",
	STAR:   "*",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"param":  PARAM,
	"array":  ARRAY,
	"nest":   NEST,
	"for":    FOR,
	"to":     TO,
	"step":   STEP,
	"stripe": STRIPE,
	"unit":   UNIT,
	"factor": FACTOR,
	"start":  START,
	"file":   FILEKW,
	"elem":   ELEM,
	"read":   READ,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT; unquoted value for STRING
	Val  int64  // value for INT (size suffixes applied)
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("ident(%s)", t.Text)
	case INT:
		return fmt.Sprintf("int(%d)", t.Val)
	case STRING:
		return fmt.Sprintf("string(%q)", t.Text)
	default:
		return t.Kind.String()
	}
}
