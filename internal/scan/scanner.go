package scan

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Scanner turns DRL source text into a stream of tokens. Comments run from
// '#' or '//' to end of line. Integer literals accept K, M, and G binary
// suffixes (32K == 32768).
type Scanner struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a Scanner over src.
func New(src string) *Scanner {
	return &Scanner{src: []rune(src), line: 1, col: 1}
}

// Error is a scan error with its source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (s *Scanner) errorf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) peek() rune {
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *Scanner) peek2() rune {
	if s.pos+1 >= len(s.src) {
		return 0
	}
	return s.src[s.pos+1]
}

func (s *Scanner) advance() rune {
	r := s.src[s.pos]
	s.pos++
	if r == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return r
}

func (s *Scanner) skipSpaceAndComments() {
	for s.pos < len(s.src) {
		r := s.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			s.advance()
		case r == '#':
			for s.pos < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case r == '/' && s.peek2() == '/':
			for s.pos < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next returns the next token, or an error on malformed input. At end of
// input it returns an EOF token.
func (s *Scanner) Next() (Token, error) {
	s.skipSpaceAndComments()
	start := Pos{Line: s.line, Col: s.col}
	if s.pos >= len(s.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	r := s.peek()
	switch {
	case isIdentStart(r):
		var b strings.Builder
		for s.pos < len(s.src) && isIdentPart(s.peek()) {
			b.WriteRune(s.advance())
		}
		text := b.String()
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start}, nil

	case unicode.IsDigit(r):
		var b strings.Builder
		for s.pos < len(s.src) && unicode.IsDigit(s.peek()) {
			b.WriteRune(s.advance())
		}
		v, err := strconv.ParseInt(b.String(), 10, 64)
		if err != nil {
			return Token{}, s.errorf(start, "bad integer literal %q: %v", b.String(), err)
		}
		// Optional binary size suffix.
		switch s.peek() {
		case 'K', 'k':
			s.advance()
			v <<= 10
		case 'M', 'm':
			s.advance()
			v <<= 20
		case 'G', 'g':
			s.advance()
			v <<= 30
		}
		if s.pos < len(s.src) && isIdentPart(s.peek()) {
			return Token{}, s.errorf(start, "malformed number: unexpected %q after literal", s.peek())
		}
		return Token{Kind: INT, Val: v, Pos: start}, nil

	case r == '"':
		s.advance()
		var b strings.Builder
		for {
			if s.pos >= len(s.src) {
				return Token{}, s.errorf(start, "unterminated string literal")
			}
			c := s.advance()
			if c == '"' {
				break
			}
			if c == '\n' {
				return Token{}, s.errorf(start, "newline in string literal")
			}
			b.WriteRune(c)
		}
		return Token{Kind: STRING, Text: b.String(), Pos: start}, nil
	}

	s.advance()
	var k Kind
	switch r {
	case '=':
		k = ASSIGN
	case '[':
		k = LBRACK
	case ']':
		k = RBRACK
	case '(':
		k = LPAREN
	case ')':
		k = RPAREN
	case '{':
		k = LBRACE
	case '}':
		k = RBRACE
	case ',':
		k = COMMA
	case ';':
		k = SEMI
	case '+':
		k = PLUS
	case '-':
		k = MINUS
	case '*':
		k = STAR
	default:
		return Token{}, s.errorf(start, "unexpected character %q", r)
	}
	return Token{Kind: k, Text: string(r), Pos: start}, nil
}

// All scans the entire input and returns every token including the final
// EOF, or the first error encountered.
func All(src string) ([]Token, error) {
	sc := New(src)
	var toks []Token
	for {
		t, err := sc.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
