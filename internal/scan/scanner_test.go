package scan

import (
	"strings"
	"testing"
)

func kindsOf(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanBasicProgram(t *testing.T) {
	src := `
param N = 8
array U1[N][N] stripe(unit=32K, factor=4, start=0) file "u1.dat"
nest L1 {
  for i = 0 to N-1 {
    U1[i][i] = U1[i][i] + 1;
  }
}
`
	toks, err := All(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		PARAM, IDENT, ASSIGN, INT,
		ARRAY, IDENT, LBRACK, IDENT, RBRACK, LBRACK, IDENT, RBRACK,
		STRIPE, LPAREN, UNIT, ASSIGN, INT, COMMA, FACTOR, ASSIGN, INT, COMMA, START, ASSIGN, INT, RPAREN,
		FILEKW, STRING,
		NEST, IDENT, LBRACE,
		FOR, IDENT, ASSIGN, INT, TO, IDENT, MINUS, INT, LBRACE,
		IDENT, LBRACK, IDENT, RBRACK, LBRACK, IDENT, RBRACK, ASSIGN,
		IDENT, LBRACK, IDENT, RBRACK, LBRACK, IDENT, RBRACK, PLUS, INT, SEMI,
		RBRACE, RBRACE, EOF,
	}
	got := kindsOf(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d\ngot: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (token %v)", i, got[i], want[i], toks[i])
		}
	}
}

func TestScanSizeSuffixes(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"32K", 32768},
		{"2M", 2 << 20},
		{"1G", 1 << 30},
		{"7", 7},
	}
	for _, c := range cases {
		toks, err := All(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if toks[0].Kind != INT || toks[0].Val != c.want {
			t.Errorf("%s scanned to %v, want int(%d)", c.src, toks[0], c.want)
		}
	}
}

func TestScanComments(t *testing.T) {
	src := "param N = 4 # trailing comment\n// whole-line comment\nparam M = 5"
	toks, err := All(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 9 { // param N = 4 param M = 5 EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestScanPositions(t *testing.T) {
	toks, err := All("param\n  N")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("param pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("N pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestScanErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		"@",
		"123abc",
		"\"newline\nin string\"",
	}
	for _, src := range cases {
		if _, err := All(src); err == nil {
			t.Errorf("All(%q) should fail", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error %q lacks position", err)
		}
	}
}

func TestScanString(t *testing.T) {
	toks, err := All(`file "data/u 1.dat"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != STRING || toks[1].Text != "data/u 1.dat" {
		t.Errorf("string token = %v", toks[1])
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := All(`x 5 "s" =`)
	wants := []string{`ident(x)`, `int(5)`, `string("s")`, `=`, `EOF`}
	for i, w := range wants {
		if got := toks[i].String(); got != w {
			t.Errorf("token %d String() = %q, want %q", i, got, w)
		}
	}
}
