package par

import (
	"testing"

	"diskreuse/internal/core"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func build(t *testing.T, src string) *core.Restructurer {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The Fig. 5/6 scenario: three nests over one array, with different access
// patterns. Loop parallelization gives each processor corresponding
// iteration-space blocks (different data); layout-aware parallelization
// gives each processor the iterations touching the same data region.
const fig56Src = `
param N = 64
array U[N][N] stripe(unit=4K, factor=4, start=0)
array V[N][N] stripe(unit=4K, factor=4, start=0)
nest L1 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      V[i][j] = U[i][j];
    }
  }
}
nest L2 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      V[i][j] = U[N-1-i][j];
    }
  }
}
nest L3 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      V[i][j] = U[i][j] + 1;
    }
  }
}
`

func TestLoopParallelizeBasics(t *testing.T) {
	r := build(t, fig56Src)
	a, err := LoopParallelize(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckIntraNest(r); err != nil {
		t.Fatal(err)
	}
	for k := range r.Prog.Nests {
		if a.ParallelLevel[k] != 0 {
			t.Errorf("nest %d level = %d, want 0", k, a.ParallelLevel[k])
		}
	}
	loads := a.Loads()
	for p, l := range loads {
		if l != 64*64*3/4 {
			t.Errorf("proc %d load = %d", p, l)
		}
	}
	if im := a.Imbalance(); im != 1.0 {
		t.Errorf("imbalance = %v", im)
	}
	// §6.1 problem (Fig. 6a): processor 0 owns rows 0..15 of the iteration
	// space in EVERY nest — so in L2 it touches U rows 48..63 while in L1
	// it touches U rows 0..15: different data regions.
	// Verify the assignment really is position-based.
	it0 := r.Space.NestFirst[0]       // L1 (0,0)
	it2 := r.Space.NestFirst[1]       // L2 (0,0)
	if a.Owner[it0] != a.Owner[it2] { // same position -> same proc
		t.Errorf("corresponding blocks should share a processor under §6.1")
	}
}

func TestLayoutAwareAlignsDataRegions(t *testing.T) {
	r := build(t, fig56Src)
	a, err := LayoutAware(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckIntraNest(r); err != nil {
		t.Fatal(err)
	}
	// Under §6.2, ownership follows the U region touched: L1's iteration
	// (0,0) touches U[0][0]; L2's iteration (63,0) touches U[0][0] too.
	// Both must run on the same processor.
	l1start := r.Space.NestFirst[0] // L1 (0,0)
	l2 := -1
	for id := r.Space.NestFirst[1]; id < r.Space.NestFirst[2]; id++ {
		it := r.Space.IterAt(id)
		if it.Iter[0] == 63 && it.Iter[1] == 0 {
			l2 = id
		}
	}
	if l2 < 0 {
		t.Fatal("L2 iteration (63,0) not found")
	}
	if a.Owner[l1start] != a.Owner[l2] {
		t.Errorf("iterations touching the same region must share a processor: %d vs %d",
			a.Owner[l1start], a.Owner[l2])
	}
	// And L2's (0,0) (touching U[63][0]) must be on the LAST processor's
	// region, unlike under loop parallelization.
	if a.Owner[r.Space.NestFirst[1]] != 3 {
		t.Errorf("L2 (0,0) owner = %d, want 3", a.Owner[r.Space.NestFirst[1]])
	}
}

// diskFootprint returns, per processor, the set of disks its iterations'
// primary references touch.
func diskFootprint(r *core.Restructurer, a *Assignment) []map[int]bool {
	fp := make([]map[int]bool, a.Procs)
	for p := range fp {
		fp[p] = map[int]bool{}
	}
	for id, p := range a.Owner {
		for _, d := range r.TouchedDisks(id) {
			fp[p][int(d)] = true
		}
	}
	return fp
}

func TestLayoutAwareShrinksDiskFootprint(t *testing.T) {
	// Row-block striping: stripe unit of 4K = 8 rows of 64 float64s...
	// actually one row = 512 B, so a stripe holds 8 rows; with factor 4,
	// processor regions of 16 rows map to 2 disks each under layout-aware
	// assignment, while loop parallelization mixes regions in L2.
	r := build(t, fig56Src)
	la, err := LayoutAware(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LoopParallelize(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	fpLA := diskFootprint(r, la)
	fpLP := diskFootprint(r, lp)
	sum := func(fps []map[int]bool) int {
		total := 0
		for _, f := range fps {
			total += len(f)
		}
		return total
	}
	if sum(fpLA) > sum(fpLP) {
		t.Errorf("layout-aware footprint %d should not exceed loop-parallel footprint %d",
			sum(fpLA), sum(fpLP))
	}
}

func TestSequentialFallbackForSerialNest(t *testing.T) {
	// A wavefront nest with distances (1,0) and (0,1) has no
	// communication-free level: it must run sequentially on processor 0.
	r := build(t, `
array A[64][64] stripe(unit=4K, factor=4, start=0)
nest L {
  for i = 1 to 63 {
    for j = 1 to 63 {
      A[i][j] = A[i-1][j] + A[i][j-1];
    }
  }
}
`)
	a, err := LoopParallelize(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.ParallelLevel[0] != -1 {
		t.Errorf("level = %d, want -1", a.ParallelLevel[0])
	}
	for id, p := range a.Owner {
		if p != 0 {
			t.Fatalf("iteration %d owner = %d, want 0", id, p)
		}
	}
	if err := a.CheckIntraNest(r); err != nil {
		t.Fatal(err)
	}
	// Layout-aware must stay legal too (repair path).
	la, err := LayoutAware(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.CheckIntraNest(r); err != nil {
		t.Fatal(err)
	}
}

func TestInnerLevelParallelization(t *testing.T) {
	// Distance (1,0): level 0 carries it, but level 1 is communication-
	// free, so the inner loop is partitioned.
	r := build(t, `
array A[64][64] stripe(unit=4K, factor=4, start=0)
nest L {
  for i = 1 to 63 {
    for j = 0 to 63 {
      A[i][j] = A[i-1][j];
    }
  }
}
`)
	a, err := LoopParallelize(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.ParallelLevel[0] != 1 {
		t.Errorf("level = %d, want 1", a.ParallelLevel[0])
	}
	if err := a.CheckIntraNest(r); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetsPartition(t *testing.T) {
	r := build(t, fig56Src)
	a, err := LayoutAware(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs := a.Subsets()
	total := 0
	seen := make([]bool, r.Space.NumIterations())
	for _, sub := range subs {
		for _, id := range sub {
			if seen[id] {
				t.Fatalf("iteration %d in two subsets", id)
			}
			seen[id] = true
			total++
		}
		// program order within subset
		for i := 1; i < len(sub); i++ {
			if sub[i-1] >= sub[i] {
				t.Fatal("subset not in program order")
			}
		}
	}
	if total != r.Space.NumIterations() {
		t.Fatalf("subsets cover %d of %d", total, r.Space.NumIterations())
	}
}

func TestPerProcessorRestructuring(t *testing.T) {
	// End-to-end §6.2 + §5: partition, then disk-reuse schedule each
	// processor's subset; every subset schedule must be legal and
	// clustered.
	r := build(t, fig56Src)
	a, err := LayoutAware(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, sub := range a.Subsets() {
		if len(sub) == 0 {
			continue
		}
		s, err := r.ScheduleFor(sub)
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
		st := core.Stats(s, r.Layout.NumDisks())
		if st.Iterations != len(sub) {
			t.Fatalf("proc %d scheduled %d of %d", p, st.Iterations, len(sub))
		}
	}
}

func TestSingleProcessorDegenerate(t *testing.T) {
	r := build(t, fig56Src)
	a, err := LayoutAware(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Owner {
		if p != 0 {
			t.Fatal("single processor must own everything")
		}
	}
	if _, err := LoopParallelize(r, 0); err == nil {
		t.Error("zero processors must fail")
	}
}

func TestBlockOwner(t *testing.T) {
	cases := []struct {
		v, lo, hi int64
		procs     int
		want      int
	}{
		{0, 0, 63, 4, 0},
		{15, 0, 63, 4, 0},
		{16, 0, 63, 4, 1},
		{63, 0, 63, 4, 3},
		{10, 10, 10, 4, 0},
		{5, 0, 2, 4, 3}, // clamped
	}
	for _, c := range cases {
		if got := blockOwner(c.v, c.lo, c.hi, c.procs); got != c.want {
			t.Errorf("blockOwner(%d,%d,%d,%d) = %d, want %d", c.v, c.lo, c.hi, c.procs, got, c.want)
		}
	}
}

// Property: over random programs and processor counts, both parallelizers
// always produce total, legal assignments: every iteration owned by exactly
// one processor in range, and no intra-nest dependence crossing processors.
func TestQuickAssignmentsAlwaysLegal(t *testing.T) {
	shapes := []string{
		`
array A[48][48] stripe(unit=4K, factor=4, start=0)
array B[48][48] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 0 to 47 { for j = 0 to 47 { B[i][j] = A[i][j]; } } }
nest L2 { for i = 0 to 47 { for j = 0 to 47 { A[i][j] = B[j][i]; } } }
`,
		`
array A[64][64] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 1 to 62 { for j = 0 to 63 { A[i][j] = A[i-1][j]; } } }
nest L2 { for i = 0 to 63 { for j = 1 to 62 { A[i][j] = A[i][j-1]; } } }
`,
		`
array V[96] stripe(unit=4K, factor=3, start=0)
array M[96][96] stripe(unit=4K, factor=3, start=0)
nest L { for i = 0 to 95 { for j = 0 to 95 { V[i] = M[i][j] + V[i]; } } }
`,
	}
	for _, src := range shapes {
		r := build(t, src)
		for _, procs := range []int{1, 2, 3, 4, 7} {
			for _, mk := range []func(*core.Restructurer, int) (*Assignment, error){
				LoopParallelize, LayoutAware, DataSpacePartition,
			} {
				a, err := mk(r, procs)
				if err != nil {
					t.Fatalf("procs=%d: %v\n%s", procs, err, src)
				}
				if len(a.Owner) != r.Space.NumIterations() {
					t.Fatalf("assignment not total: %d of %d", len(a.Owner), r.Space.NumIterations())
				}
				for id, p := range a.Owner {
					if p < 0 || p >= procs {
						t.Fatalf("iteration %d owner %d outside 0..%d", id, p, procs-1)
					}
				}
				if err := a.CheckIntraNest(r); err != nil {
					t.Fatalf("procs=%d: %v\n%s", procs, err, src)
				}
			}
		}
	}
}
