// Package par implements the multiprocessor code-structuring of §6 of the
// paper: the conventional loop-based parallelization baseline (§6.1) and
// the disk-layout-aware, data-space-oriented parallelization (§6.2) that
// assigns to each processor the loop iterations touching "its" array
// region across ALL nests, so each processor keeps exercising the same
// small set of disks.
//
// Execution model. Processors synchronize with a barrier between nests and
// run a nest's assigned iterations concurrently. Parallelization is
// therefore restricted to communication-free loops — an outermost loop
// level k such that every dependence distance has d[k] == 0 — which keeps
// every intra-nest dependence on a single processor. Nests with no such
// level run sequentially on processor 0 (the conservative reading of
// "parallelize the outermost loop as much as possible"). The strict check
// is enforced by Assignment.CheckIntraNest.
package par

import (
	"fmt"

	"diskreuse/internal/core"
	"diskreuse/internal/dep"
	"diskreuse/internal/sema"
)

// Assignment maps every global iteration to a processor.
type Assignment struct {
	Procs int
	// Owner[id] is the processor executing global iteration id.
	Owner []int
	// ParallelLevel[k] is the loop level of nest k that was partitioned,
	// or -1 when the nest runs sequentially on processor 0.
	ParallelLevel []int
}

// Subsets returns, per processor, its iteration ids in program order.
func (a *Assignment) Subsets() [][]int {
	out := make([][]int, a.Procs)
	for id, p := range a.Owner {
		out[p] = append(out[p], id)
	}
	return out
}

// Loads returns the number of iterations per processor.
func (a *Assignment) Loads() []int {
	loads := make([]int, a.Procs)
	for _, p := range a.Owner {
		loads[p]++
	}
	return loads
}

// Imbalance returns max load over mean load (1.0 = perfectly balanced).
func (a *Assignment) Imbalance() float64 {
	loads := a.Loads()
	max, sum := 0, 0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(a.Procs) / float64(sum)
}

// CheckIntraNest verifies that no dependence edge inside a single nest
// crosses processors — the legality condition of the barrier-between-nests
// execution model.
func (a *Assignment) CheckIntraNest(r *core.Restructurer) error {
	space := r.Space
	for u := range r.Graph.Preds {
		for _, p := range r.Graph.Preds[u] {
			if space.Nest(u) == space.Nest(int(p)) && a.Owner[u] != a.Owner[int(p)] {
				return fmt.Errorf("par: intra-nest dependence %v -> %v crosses processors %d -> %d",
					space.IterAt(int(p)), space.IterAt(u), a.Owner[p], a.Owner[u])
			}
		}
	}
	return nil
}

// commFreeLevel returns the outermost loop level of nest n whose
// partitioning severs no dependence: every dependence provably has
// distance zero at that level (exact zero entries, or known-zero entries
// of an underdetermined solution family such as an accumulation's (0, t)
// distances). ok is false when no such level exists.
func commFreeLevel(n *sema.Nest) (int, bool) {
	deps := dep.AnalyzeNest(n)
	for k := 0; k < n.Depth(); k++ {
		ok := true
		for _, d := range deps {
			if !d.KnownZeroAt(k) {
				ok = false
				break
			}
		}
		if ok {
			return k, true
		}
	}
	return 0, false
}

// blockOwner maps value v in [lo, hi] to one of procs contiguous blocks.
func blockOwner(v, lo, hi int64, procs int) int {
	span := hi - lo + 1
	if span <= 0 {
		return 0
	}
	chunk := (span + int64(procs) - 1) / int64(procs)
	p := int((v - lo) / chunk)
	if p < 0 {
		p = 0
	}
	if p >= procs {
		p = procs - 1
	}
	return p
}

// LoopParallelize implements the §6.1 baseline: each nest independently
// gets its outermost communication-free loop block-partitioned over the
// processors. As the paper's Fig. 6(a) illustrates, corresponding blocks
// of different nests land on the same processor even when they touch
// entirely different array regions.
func LoopParallelize(r *core.Restructurer, procs int) (*Assignment, error) {
	if procs < 1 {
		return nil, fmt.Errorf("par: need at least one processor, got %d", procs)
	}
	a := &Assignment{
		Procs:         procs,
		Owner:         make([]int, r.Space.NumIterations()),
		ParallelLevel: make([]int, len(r.Prog.Nests)),
	}
	levels := make([]int, len(r.Prog.Nests))
	ranges := make([]dep.Interval, len(r.Prog.Nests))
	for k, n := range r.Prog.Nests {
		lvl, ok := commFreeLevel(n)
		if !ok || procs == 1 {
			levels[k] = -1
			a.ParallelLevel[k] = -1
			continue
		}
		levels[k] = lvl
		a.ParallelLevel[k] = lvl
		ivs, err := dep.IterIntervals(n)
		if err != nil {
			return nil, err
		}
		ranges[k] = ivs[n.Loops[lvl].Var]
	}
	for id := 0; id < r.Space.NumIterations(); id++ {
		it := r.Space.IterAt(id)
		lvl := levels[it.Nest]
		if lvl < 0 {
			a.Owner[id] = 0
			continue
		}
		rg := ranges[it.Nest]
		a.Owner[id] = blockOwner(it.Iter[lvl], rg.Lo, rg.Hi, procs)
	}
	return a, nil
}

// arrayVote is the per-array "unification step" of §6.2.2: each nest casts
// a vote for the array dimension its parallel iterator drives (row-block =
// dimension 0, column-block = dimension 1, ...), and the most frequently
// requested distribution wins.
func arrayVote(r *core.Restructurer, levels []int) map[*sema.Array]int {
	votes := map[*sema.Array]map[int]int{}
	for k, n := range r.Prog.Nests {
		lvl := levels[k]
		if lvl < 0 {
			continue
		}
		parVar := n.Loops[lvl].Var
		for _, st := range n.Stmts {
			for _, ref := range st.Refs() {
				for dim, sub := range ref.Subs {
					if sub.Coeff(parVar) != 0 {
						if votes[ref.Array] == nil {
							votes[ref.Array] = map[int]int{}
						}
						votes[ref.Array][dim]++
						break // vote once per reference
					}
				}
			}
		}
	}
	out := map[*sema.Array]int{}
	for arr, vs := range votes {
		best, bestCount := 0, -1
		for dim := 0; dim < len(arr.Dims); dim++ {
			if c := vs[dim]; c > bestCount {
				best, bestCount = dim, c
			}
		}
		out[arr] = best
	}
	return out
}

// LayoutAware implements the §6.2 disk-layout-aware parallelization. Its
// objective, per §6.2.1, is to "partition the disks in the storage system
// across the processors by localizing accesses to each disk to a single
// processor as much as possible": every iteration is assigned to the
// processor that owns the disk its primary reference touches, so the
// iterations of every nest that access the same disk-resident region run
// on the same processor (the Fig. 6(b) assignment), regardless of where
// they sit in their own iteration spaces. Nests where this split would
// sever an intra-nest dependence fall back to their §6.1 owners,
// preserving legality ("the maximum possible disk reuse allowed by data
// dependences").
func LayoutAware(r *core.Restructurer, procs int) (*Assignment, error) {
	base, err := LoopParallelize(r, procs)
	if err != nil {
		return nil, err
	}
	if procs == 1 {
		return base, nil
	}
	numDisks := r.Layout.NumDisks()
	a := &Assignment{
		Procs:         procs,
		Owner:         make([]int, r.Space.NumIterations()),
		ParallelLevel: append([]int(nil), base.ParallelLevel...),
	}
	for id := range a.Owner {
		// Contiguous disk blocks per processor: processor p owns disks
		// [p·D/P, (p+1)·D/P).
		a.Owner[id] = r.PrimaryDisk(id) * procs / numDisks
		if a.Owner[id] >= procs {
			a.Owner[id] = procs - 1
		}
	}
	if err := a.repairIllegalNests(r, base); err != nil {
		return nil, err
	}
	return a, nil
}

// DataSpacePartition is the §6.2.2 unification-vote partitioner, kept as
// an alternative strategy (and ablation baseline) to LayoutAware's direct
// disk-affinity assignment. Every array gets a unified block distribution
// along its voted dimension (Z_{s,j} derived by the majority vote over the
// distributions the nests demand), and each iteration goes to the
// processor owning the region its primary reference touches. Iterations
// with no ownership signal keep their §6.1 owner.
func DataSpacePartition(r *core.Restructurer, procs int) (*Assignment, error) {
	base, err := LoopParallelize(r, procs)
	if err != nil {
		return nil, err
	}
	if procs == 1 {
		return base, nil
	}
	votes := arrayVote(r, base.ParallelLevel)
	a := &Assignment{
		Procs:         procs,
		Owner:         make([]int, r.Space.NumIterations()),
		ParallelLevel: append([]int(nil), base.ParallelLevel...),
	}
	copy(a.Owner, base.Owner)

	// Precompute per nest: the primary reference, and whether ownership by
	// data region is usable (the nest is parallelizable and the primary
	// ref's voted-dimension subscript varies with some iterator).
	type nestPlan struct {
		usable bool
		ref    *sema.Ref
		dim    int
		block  int64
	}
	plans := make([]nestPlan, len(r.Prog.Nests))
	for k, n := range r.Prog.Nests {
		if base.ParallelLevel[k] < 0 {
			continue
		}
		ref := primaryRefOf(n)
		dim, ok := votes[ref.Array]
		if !ok {
			continue
		}
		sub := ref.Subs[dim]
		if sub.IsConst() {
			continue
		}
		extent := ref.Array.Dims[dim]
		plans[k] = nestPlan{
			usable: true,
			ref:    ref,
			dim:    dim,
			block:  (extent + int64(procs) - 1) / int64(procs),
		}
	}

	for id := 0; id < r.Space.NumIterations(); id++ {
		it := r.Space.IterAt(id)
		plan := plans[it.Nest]
		if !plan.usable {
			continue
		}
		n := r.Prog.Nests[it.Nest]
		env := n.Env(it.Iter)
		v := plan.ref.Subs[plan.dim].MustEval(env)
		p := int(v / plan.block)
		if p < 0 {
			p = 0
		}
		if p >= procs {
			p = procs - 1
		}
		a.Owner[id] = p
	}

	// Legality: the data-space assignment must not split an intra-nest
	// dependence across processors. If it does for some nest, fall back to
	// the §6.1 owners for that nest (the paper's "maximum possible disk
	// reuse allowed by data dependences").
	if err := a.repairIllegalNests(r, base); err != nil {
		return nil, err
	}
	return a, nil
}

// repairIllegalNests reverts nests whose data-space assignment breaks an
// intra-nest dependence back to their loop-parallelized owners.
func (a *Assignment) repairIllegalNests(r *core.Restructurer, base *Assignment) error {
	space := r.Space
	bad := map[int]bool{}
	for u := range r.Graph.Preds {
		for _, p := range r.Graph.Preds[u] {
			if nu := space.Nest(u); nu == space.Nest(int(p)) && a.Owner[u] != a.Owner[int(p)] {
				bad[nu] = true
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	for id := 0; id < space.NumIterations(); id++ {
		if bad[space.Nest(id)] {
			a.Owner[id] = base.Owner[id]
		}
	}
	// The base assignment is legal by construction; re-check to be safe.
	return a.CheckIntraNest(r)
}

func primaryRefOf(n *sema.Nest) *sema.Ref {
	st := n.Stmts[0]
	if len(st.Reads) > 0 {
		return st.Reads[0]
	}
	return st.Write
}
