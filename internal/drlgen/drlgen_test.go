package drlgen

import (
	"strings"
	"testing"

	"diskreuse/internal/interp"
	"diskreuse/internal/layout"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

// mustCompile runs a generated source through parse → sema → layout →
// space enumeration → bounds validation, failing the test on any error:
// generated programs are valid by construction.
func mustCompile(t *testing.T, c Case) {
	t.Helper()
	astProg, err := parser.Parse(c.Source)
	if err != nil {
		t.Fatalf("seed %d: parse: %v\nsource:\n%s", c.Seed, err, c.Source)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		t.Fatalf("seed %d: sema: %v\nsource:\n%s", c.Seed, err, c.Source)
	}
	if _, err := layout.New(prog, 0); err != nil {
		t.Fatalf("seed %d: layout: %v\nsource:\n%s", c.Seed, err, c.Source)
	}
	s, err := interp.BuildSpace(prog)
	if err != nil {
		t.Fatalf("seed %d: space: %v\nsource:\n%s", c.Seed, err, c.Source)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("seed %d: bounds: %v\nsource:\n%s", c.Seed, err, c.Source)
	}
	if n := s.NumIterations(); n < 1 {
		t.Fatalf("seed %d: %d iterations", c.Seed, n)
	}
}

func TestGenerateValidByConstruction(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		mustCompile(t, Generate(seed, Config{}))
	}
}

func TestGenerateRespectsIterationCap(t *testing.T) {
	cfg := Config{MaxIterations: 64}
	for seed := int64(0); seed < 100; seed++ {
		c := Generate(seed, cfg)
		astProg, err := parser.Parse(c.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := sema.Analyze(astProg, sema.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := interp.BuildSpace(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := s.NumIterations(); n > 64 {
			t.Errorf("seed %d: %d iterations exceeds cap 64\n%s", seed, n, c.Source)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if a.Source != b.Source {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestFromBytesMinimal(t *testing.T) {
	// Exhausted entropy must still produce a valid program.
	for _, data := range [][]byte{nil, {}, {0}, {0xff}, {1, 2, 3}} {
		c := FromBytes(data, Config{})
		mustCompile(t, c)
	}
}

func TestGeneratedShapesVary(t *testing.T) {
	// Sanity that the knobs actually appear in output across seeds.
	var sawParam, sawStep, sawTriangular, sawRead bool
	for seed := int64(0); seed < 200; seed++ {
		src := Generate(seed, Config{}).Source
		sawParam = sawParam || strings.Contains(src, "param ")
		sawStep = sawStep || strings.Contains(src, " step 2")
		sawTriangular = sawTriangular || strings.Contains(src, "for j = i")
		sawRead = sawRead || strings.Contains(src, "read ")
	}
	for name, saw := range map[string]bool{
		"param": sawParam, "step": sawStep, "triangular": sawTriangular, "read": sawRead,
	} {
		if !saw {
			t.Errorf("no generated program used %s in 200 seeds", name)
		}
	}
}

// FuzzGen feeds fuzzer-controlled bytes through the generator and asserts
// the valid-by-construction contract end to end.
func FuzzGen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 42, 250, 3, 99, 18, 0, 0, 1, 255, 13, 64})
	f.Add([]byte("interesting entropy for the DRL generator fuzz target"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := FromBytes(data, Config{})
		astProg, err := parser.Parse(c.Source)
		if err != nil {
			t.Fatalf("parse: %v\nsource:\n%s", err, c.Source)
		}
		prog, err := sema.Analyze(astProg, sema.Options{})
		if err != nil {
			t.Fatalf("sema: %v\nsource:\n%s", err, c.Source)
		}
		if _, err := layout.New(prog, 0); err != nil {
			t.Fatalf("layout: %v\nsource:\n%s", err, c.Source)
		}
		s, err := interp.BuildSpace(prog)
		if err != nil {
			t.Fatalf("space: %v\nsource:\n%s", err, c.Source)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("bounds: %v\nsource:\n%s", err, c.Source)
		}
	})
}
