// Package drlgen generates random DRL programs that are valid by
// construction: every generated source parses, passes semantic analysis,
// admits a layout, and yields an iteration space whose subscripts stay in
// bounds. The generator is the input side of the randomized correctness
// harness (internal/invariant): a seed (or a fuzzer-supplied byte stream)
// deterministically selects loop-nest shapes, array shapes, striping
// parameters, and reference patterns, and the emitted source is fed through
// the full compile → restructure → trace → simulate pipeline.
//
// Validity is guaranteed structurally, not by retrying: subscript
// expressions are generated first, their value ranges are computed by
// interval arithmetic over the loop bounds, constants are shifted so every
// subscript is non-negative, and array dimensions are sized post hoc to
// cover the maximum touched index. Element sizes and stripe units are drawn
// from divisors/multiples of the 4 KiB page, so the layout divisibility
// checks always pass.
package drlgen

import (
	"fmt"
	"math/rand"
	"strings"

	"diskreuse/internal/affine"
)

// Config bounds the shape of generated programs. The zero value of every
// field selects the listed default; the percentage knobs accept -1 to mean
// "never" (0 also selects the default, so the zero Config is usable).
type Config struct {
	MaxArrays     int // max arrays per program (default 3)
	MaxNests      int // max loop nests (default 3)
	MinDepth      int // min loop depth per nest (default 1)
	MaxDepth      int // max loop depth per nest (default 2)
	MinExtent     int // min iterations per loop level (default 1)
	MaxExtent     int // max iterations per loop level (default 6)
	MaxStmts      int // max statements per nest body (default 3)
	MaxIterations int // cap on the whole program's iteration count (default 512)

	// Percentage knobs: chance in [0,100]; 0 selects the default, -1 disables.
	DepPairPct    int // read derived from an earlier write's subscripts (default 50)
	TriangularPct int // inner loop bound referencing an outer iterator (default 25)
	ParamPct      int // constant loop bound emitted via a param decl (default 20)
	StepPct       int // loop step 2 instead of 1 (default 20)
}

// withDefaults resolves zero fields to their documented defaults and
// normalizes the percentage knobs.
func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.MaxArrays, 3)
	def(&c.MaxNests, 3)
	def(&c.MinDepth, 1)
	def(&c.MaxDepth, 2)
	def(&c.MinExtent, 1)
	def(&c.MaxExtent, 6)
	def(&c.MaxStmts, 3)
	def(&c.MaxIterations, 512)
	def(&c.DepPairPct, 50)
	def(&c.TriangularPct, 25)
	def(&c.ParamPct, 20)
	def(&c.StepPct, 20)
	if c.MaxDepth < c.MinDepth {
		c.MaxDepth = c.MinDepth
	}
	if c.MaxExtent < c.MinExtent {
		c.MaxExtent = c.MinExtent
	}
	pct := func(v *int) {
		if *v < 0 {
			*v = 0
		} else if *v > 100 {
			*v = 100
		}
	}
	pct(&c.DepPairPct)
	pct(&c.TriangularPct)
	pct(&c.ParamPct)
	pct(&c.StepPct)
	return c
}

// Case is one generated program. Seed is -1 for byte-stream (fuzz) cases.
type Case struct {
	Seed   int64
	Source string
}

// entropy is the single randomness abstraction behind both entry points:
// seeded PRNG draws for Generate, and a consumed byte stream for FromBytes.
// When the byte stream runs out every draw returns 0, so any prefix of a
// fuzzer input degrades gracefully into the minimal valid program rather
// than an error.
type entropy struct {
	rng  *rand.Rand
	data []byte
	pos  int
}

// intn draws a uniform value in [0, n). Byte mode consumes two bytes per
// draw so moduli up to MaxExtent stay reasonably uniform.
func (e *entropy) intn(n int) int {
	if n <= 1 {
		return 0
	}
	if e.rng != nil {
		return e.rng.Intn(n)
	}
	v := 0
	for i := 0; i < 2; i++ {
		var b byte
		if e.pos < len(e.data) {
			b = e.data[e.pos]
			e.pos++
		}
		v = v<<8 | int(b)
	}
	return v % n
}

// between draws a uniform value in [lo, hi] (inclusive).
func (e *entropy) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + e.intn(hi-lo+1)
}

// pct is true with probability p percent.
func (e *entropy) pct(p int) bool { return e.intn(100) < p }

// Generate emits the program selected by seed under cfg. The same
// (seed, cfg) pair always yields the same source.
func Generate(seed int64, cfg Config) Case {
	g := newGen(&entropy{rng: rand.New(rand.NewSource(seed))}, cfg)
	return Case{Seed: seed, Source: g.program()}
}

// FromBytes emits the program selected by a fuzzer-controlled byte stream.
// Every input, including the empty one, yields a valid program.
func FromBytes(data []byte, cfg Config) Case {
	g := newGen(&entropy{data: data}, cfg)
	return Case{Seed: -1, Source: g.program()}
}

// garray is an array being sized as references to it are generated: need[d]
// tracks the maximum touched index of dimension d, and the declaration is
// emitted post hoc with Dims[d] = need[d]+1.
type garray struct {
	name   string
	rank   int
	elem   int64 // element size in bytes; divides the 4 KiB page
	unitK  int   // stripe unit in KiB; multiple of the 4 KiB page
	factor int
	start  int
	need   []int64
}

// glevel is one loop level with its emitted bounds and the value range
// [lo, hi] its iterator can take (used for interval arithmetic).
type glevel struct {
	v      string
	loSrc  string
	hiSrc  string
	lo, hi int64
	step   int64
}

// gref is one generated array reference: per-dimension affine subscripts
// over the nest's iterator names.
type gref struct {
	arr  *garray
	subs []affine.Expr
}

// gen carries the generation state of one program.
type gen struct {
	e      *entropy
	cfg    Config
	arrays []*garray
	params []string // emitted param declarations, in order
	// writes records every write reference generated so far, across nests,
	// paired with its nest's levels for range recomputation. Dep-pair reads
	// clone one of these with a shifted constant, inducing flow/anti/output
	// dependences for the scheduler to respect.
	writes []depSource
}

type depSource struct {
	ref    gref
	levels []glevel
}

func newGen(e *entropy, cfg Config) *gen {
	return &gen{e: e, cfg: cfg.withDefaults()}
}

// program generates the whole source: arrays and nests are generated first
// (sizing the arrays as a side effect), then assembled in declaration order
// params, arrays, nests.
func (g *gen) program() string {
	numArrays := g.e.between(1, g.cfg.MaxArrays)
	for i := 0; i < numArrays; i++ {
		a := &garray{
			name:   string(rune('A' + i)),
			rank:   g.e.between(1, 2),
			elem:   []int64{8, 512, 4096}[g.e.intn(3)],
			unitK:  4 * g.e.between(1, 4),
			factor: g.e.between(1, 4),
			start:  g.e.intn(2),
		}
		a.need = make([]int64, a.rank)
		g.arrays = append(g.arrays, a)
	}
	numNests := g.e.between(1, g.cfg.MaxNests)
	capPerNest := g.cfg.MaxIterations / numNests
	if capPerNest < 1 {
		capPerNest = 1
	}
	nests := make([]string, numNests)
	for k := range nests {
		nests[k] = g.nest(k, capPerNest)
	}

	var b strings.Builder
	for _, p := range g.params {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for _, a := range g.arrays {
		fmt.Fprintf(&b, "array %s", a.name)
		for _, n := range a.need {
			fmt.Fprintf(&b, "[%d]", n+1)
		}
		fmt.Fprintf(&b, " elem %d stripe(unit=%dK, factor=%d, start=%d)\n",
			a.elem, a.unitK, a.factor, a.start)
	}
	for _, n := range nests {
		b.WriteString(n)
	}
	return b.String()
}

// nest generates one loop nest whose worst-case iteration count stays
// within budget.
func (g *gen) nest(idx, budget int) string {
	depth := g.e.between(g.cfg.MinDepth, g.cfg.MaxDepth)
	levels := make([]glevel, 0, depth)
	prod := 1
	for l := 0; l < depth; l++ {
		remaining := budget / prod
		if remaining < 1 {
			remaining = 1
		}
		lv := g.level(l, levels, remaining)
		count := int((lv.hi-lv.lo)/lv.step) + 1
		prod *= count
		levels = append(levels, lv)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "nest n%d {\n", idx)
	for l, lv := range levels {
		indent(&b, l+1)
		fmt.Fprintf(&b, "for %s = %s to %s", lv.v, lv.loSrc, lv.hiSrc)
		if lv.step != 1 {
			fmt.Fprintf(&b, " step %d", lv.step)
		}
		b.WriteString(" {\n")
	}
	nStmts := g.e.between(1, g.cfg.MaxStmts)
	for s := 0; s < nStmts; s++ {
		indent(&b, depth+1)
		g.stmt(&b, levels)
	}
	for l := depth; l >= 1; l-- {
		indent(&b, l)
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

// level generates loop level l. The worst-case trip count never exceeds
// remaining, keeping the whole-program iteration count under
// Config.MaxIterations.
func (g *gen) level(l int, outer []glevel, remaining int) glevel {
	lv := glevel{v: string(rune('i' + l)), step: 1}
	if g.e.pct(g.cfg.StepPct) {
		lv.step = 2
	}
	size := g.e.between(g.cfg.MinExtent, g.cfg.MaxExtent)

	if l > 0 && g.e.pct(g.cfg.TriangularPct) {
		// Triangular: lo tracks an outer iterator, hi is a constant high
		// enough that the loop body runs for every outer value. Worst-case
		// trip count (outer at its minimum) must fit the budget.
		m := g.e.intn(l)
		off := int64(g.e.intn(2))
		hi := outer[m].hi + off + int64(size) - 1
		lo := outer[m].lo + off
		if worst := int((hi-lo)/lv.step) + 1; worst <= remaining {
			lv.lo, lv.hi = lo, hi
			loExpr := affine.Term(outer[m].v, 1).AddConst(off)
			lv.loSrc = loExpr.String()
			lv.hiSrc = fmt.Sprintf("%d", hi)
			return lv
		}
	}

	// Rectangular: constant bounds, optionally via a param declaration.
	if maxSize := (remaining-1)*int(lv.step) + 1; size > maxSize {
		size = maxSize
	}
	if size < 1 {
		size = 1
	}
	lo := int64(g.e.intn(3))
	hi := lo + int64(size) - 1
	lv.lo, lv.hi = lo, hi
	lv.loSrc = fmt.Sprintf("%d", lo)
	lv.hiSrc = fmt.Sprintf("%d", hi)
	if g.e.pct(g.cfg.ParamPct) {
		name := fmt.Sprintf("P%d", len(g.params))
		g.params = append(g.params, fmt.Sprintf("param %s = %d", name, hi))
		lv.hiSrc = name
	}
	return lv
}

// stmt emits one statement: either a pure read ("read A[i];") or an
// assignment whose right-hand side sums read references and constants.
func (g *gen) stmt(b *strings.Builder, levels []glevel) {
	if g.e.pct(20) {
		r := g.ref(levels)
		fmt.Fprintf(b, "read %s;\n", g.refSrc(r))
		return
	}
	w := g.ref(levels)
	g.writes = append(g.writes, depSource{ref: w, levels: levels})
	fmt.Fprintf(b, "%s =", g.refSrc(w))
	nReads := g.e.between(1, 2)
	for t := 0; t < nReads; t++ {
		if t > 0 {
			b.WriteString(" +")
		}
		var r gref
		if len(g.writes) > 0 && g.e.pct(g.cfg.DepPairPct) {
			r = g.depRef(levels)
		} else {
			r = g.ref(levels)
		}
		if coef := g.e.intn(3); coef >= 2 {
			fmt.Fprintf(b, " %d*%s", coef, g.refSrc(r))
		} else {
			fmt.Fprintf(b, " %s", g.refSrc(r))
		}
	}
	if g.e.pct(30) {
		fmt.Fprintf(b, " + %d", g.e.intn(5))
	}
	b.WriteString(";\n")
}

// refSrc renders a reference as source text.
func (g *gen) refSrc(r gref) string {
	var b strings.Builder
	b.WriteString(r.arr.name)
	for _, s := range r.subs {
		fmt.Fprintf(&b, "[%s]", s.String())
	}
	return b.String()
}

// ref generates a fresh reference: per dimension, a subscript over the
// nest's iterators whose value range (by interval arithmetic over the loop
// bounds) is shifted non-negative, and the array's needed extent grows to
// cover it.
func (g *gen) ref(levels []glevel) gref {
	a := g.arrays[g.e.intn(len(g.arrays))]
	r := gref{arr: a, subs: make([]affine.Expr, a.rank)}
	for d := 0; d < a.rank; d++ {
		var e affine.Expr
		switch kind := g.e.intn(3); {
		case kind == 1 && len(levels) >= 2:
			// Sum or difference of two distinct iterators.
			la := g.e.intn(len(levels))
			lb := (la + 1 + g.e.intn(len(levels)-1)) % len(levels)
			c := int64(1)
			if g.e.pct(40) {
				c = -1
			}
			e = affine.Term(levels[la].v, 1).Add(affine.Term(levels[lb].v, c))
		case kind == 2:
			e = affine.Constant(int64(g.e.intn(4)))
		default:
			// Single iterator with coefficient 1, 2, or -1.
			lvl := g.e.intn(len(levels))
			c := []int64{1, 1, 2, -1}[g.e.intn(4)]
			e = affine.Term(levels[lvl].v, c)
		}
		mn, _ := exprRange(e, levels)
		shift := int64(g.e.intn(3))
		if mn < 0 {
			shift += -mn
		}
		e = e.AddConst(shift)
		r.subs[d] = e
		if _, mx := exprRange(e, levels); mx >= a.need[d] {
			a.need[d] = mx
		}
	}
	return r
}

// depRef derives a read from a previously generated write: same array, same
// linear subscript part, constant shifted by -1..1 (then renormalized
// non-negative). When the source write came from the same nest this induces
// loop-carried flow/anti dependences; across nests it induces inter-nest
// edges. Writes from other nests may use iterator names this nest lacks, so
// unknown iterators are substituted with in-scope ones.
func (g *gen) depRef(levels []glevel) gref {
	src := g.writes[g.e.intn(len(g.writes))]
	a := src.ref.arr
	r := gref{arr: a, subs: make([]affine.Expr, a.rank)}
	inScope := make(map[string]bool, len(levels))
	for _, lv := range levels {
		inScope[lv.v] = true
	}
	for d := range src.ref.subs {
		e := src.ref.subs[d].Clone()
		for _, v := range e.Vars() {
			if !inScope[v] {
				e = e.Subst(v, affine.Term(levels[g.e.intn(len(levels))].v, 1))
			}
		}
		e = e.AddConst(int64(g.e.intn(3) - 1))
		mn, _ := exprRange(e, levels)
		if mn < 0 {
			e = e.AddConst(-mn)
		}
		r.subs[d] = e
		if _, mx := exprRange(e, levels); mx >= a.need[d] {
			a.need[d] = mx
		}
	}
	return r
}

// exprRange computes the value range of an affine expression by interval
// arithmetic over each iterator's [lo, hi] range. For triangular loops the
// per-level range is itself an over-approximation, which is safe: arrays
// are sized to the upper bound.
func exprRange(e affine.Expr, levels []glevel) (mn, mx int64) {
	mn, mx = e.Const, e.Const
	for _, lv := range levels {
		c := e.Coeff(lv.v)
		if c > 0 {
			mn += c * lv.lo
			mx += c * lv.hi
		} else if c < 0 {
			mn += c * lv.hi
			mx += c * lv.lo
		}
	}
	return mn, mx
}
