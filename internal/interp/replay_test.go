package interp

import (
	"testing"

	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

// replaySpace compiles a small program with a loop-carried flow dependence:
// iteration i reads the element iteration i-1 wrote.
func replaySpace(t *testing.T) *Space {
	t.Helper()
	src := `
array A[16] elem 8 stripe(unit=4K, factor=2, start=0)
array B[16] elem 8 stripe(unit=4K, factor=2, start=0)
nest n0 {
  for i = 1 to 7 {
    A[i] = A[i - 1] + B[i];
  }
}
`
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSpace(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func statesEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestFinalStoreStateDetectsIllegalReorder(t *testing.T) {
	s := replaySpace(t)
	n := s.NumIterations()
	orig := make([]int, n)
	for i := range orig {
		orig[i] = i
	}
	base := s.FinalStoreState(orig)

	// Program order replayed twice is deterministic.
	if !statesEqual(base, s.FinalStoreState(orig)) {
		t.Fatal("program-order replay not deterministic")
	}

	// Swapping two flow-dependent iterations must change the final state:
	// iteration 1 reads A[1] written by... here each i depends on i-1, so
	// swapping any adjacent pair is illegal.
	swapped := make([]int, n)
	copy(swapped, orig)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	g := s.BuildDeps()
	if err := s.VerifySchedule(g, swapped); err == nil {
		t.Fatal("expected adjacent swap to violate a dependence")
	}
	if statesEqual(base, s.FinalStoreState(swapped)) {
		t.Fatal("illegal reorder produced identical final store state")
	}
}

func TestFinalStoreStateInvariantUnderLegalReorder(t *testing.T) {
	// Two independent nests over disjoint arrays: interleaving them in any
	// way is legal and must preserve the final state.
	src := `
array A[8] elem 8 stripe(unit=4K, factor=1, start=0)
array B[8] elem 8 stripe(unit=4K, factor=1, start=0)
nest n0 {
  for i = 0 to 3 {
    A[i] = A[i] + 1;
  }
}
nest n1 {
  for i = 0 to 3 {
    B[i] = B[i] + 2;
  }
}
`
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSpace(prog)
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumIterations()
	orig := make([]int, n)
	for i := range orig {
		orig[i] = i
	}
	// Perfect interleave of the two nests: 0,4,1,5,2,6,3,7.
	inter := []int{0, 4, 1, 5, 2, 6, 3, 7}
	if len(inter) != n {
		t.Fatalf("test expects 8 iterations, got %d", n)
	}
	g := s.BuildDeps()
	if err := s.VerifySchedule(g, inter); err != nil {
		t.Fatalf("interleave should be legal: %v", err)
	}
	if !statesEqual(s.FinalStoreState(orig), s.FinalStoreState(inter)) {
		t.Fatal("legal reorder changed the final store state")
	}
}
