package interp

// Metamorphic store-state replay: executing the program's iterations in any
// legal order (one respecting every dependence edge) must leave every array
// element with exactly the same final value as program order. Rather than
// model real arithmetic, the replay assigns each write a value that hashes
// the writing statement instance together with the values it read, so any
// illegal reorder — a flow, anti, or output violation — propagates into a
// differing final state with overwhelming probability.

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FinalStoreState abstractly executes the iterations in the given order and
// returns the per-array element states: states[a][lin] is the hash value
// of array a's element lin after the last write (or its seed value if never
// written). order must be a permutation of the iteration ids; entries are
// trusted (use VerifySchedule for the legality oracle).
//
// Each element starts from a hash of its (array, element) identity. Each
// statement instance writes mix-fold(stmt identity, values read, in access
// order), so the value stored by a write depends on every value it read —
// the dataflow the dependence edges protect.
func (s *Space) FinalStoreState(order []int) [][]uint64 {
	states := make([][]uint64, len(s.Prog.Arrays))
	for i, a := range s.Prog.Arrays {
		st := make([]uint64, a.Elems())
		for j := range st {
			st[j] = mix(uint64(i+1)<<32 ^ uint64(j))
		}
		states[i] = st
	}
	var buf []Access
	for _, u := range order {
		buf = s.Accesses(u, buf[:0])
		i := 0
		for i < len(buf) {
			// One statement's group: reads first, then its write (if any).
			stmt := buf[i].Stmt
			j := i
			for j < len(buf) && buf[j].Stmt == stmt {
				j++
			}
			h := mix(uint64(u)<<16 | uint64(stmt))
			wrote := -1
			for k := i; k < j; k++ {
				a := buf[k]
				if a.Write {
					wrote = k
					continue
				}
				h = mix(h ^ states[a.Array.Index][a.Lin])
			}
			if wrote >= 0 {
				a := buf[wrote]
				states[a.Array.Index][a.Lin] = h
			}
			i = j
		}
	}
	return states
}
