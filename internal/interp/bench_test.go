package interp

import (
	"context"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/sema"
)

// benchProgram compiles RSense at Small scale: five striped arrays, so the
// array-sharded dependence build has real fan-out, and enough iterations
// to clear the parallel crossover thresholds.
func benchProgram(b *testing.B) *sema.Program {
	b.Helper()
	app, err := apps.ByName("RSense", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

var benchJobs = []struct {
	name string
	jobs int
}{
	{"serial", 1},
	{"jobs4", 4},
}

var benchEngines = []Engine{EngineCompiled, EngineInterp}

func BenchmarkBuildSpace(b *testing.B) {
	p := benchProgram(b)
	ctx := context.Background()
	for _, e := range benchEngines {
		b.Run(e.String(), func(b *testing.B) {
			for _, bj := range benchJobs {
				b.Run(bj.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := BuildSpaceOpts(ctx, p, BuildOptions{Jobs: bj.jobs, Engine: e}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

func BenchmarkBuildDeps(b *testing.B) {
	p := benchProgram(b)
	ctx := context.Background()
	for _, e := range benchEngines {
		s, err := BuildSpaceOpts(ctx, p, BuildOptions{Jobs: 0, Engine: e})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.String(), func(b *testing.B) {
			for _, bj := range benchJobs {
				b.Run(bj.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := s.BuildDepsCtx(ctx, bj.jobs); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkAccesses measures the per-iteration access enumeration that
// dominates trace generation and disk attribution: a sequential Streamer
// sweep over the whole iteration space. On the compiled engine the sweep
// rides the stride tables; on the interp engine the Streamer delegates to
// the tree-walk Accesses oracle.
func BenchmarkAccesses(b *testing.B) {
	p := benchProgram(b)
	ctx := context.Background()
	for _, e := range benchEngines {
		s, err := BuildSpaceOpts(ctx, p, BuildOptions{Jobs: 0, Engine: e})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.String(), func(b *testing.B) {
			b.ReportAllocs()
			st := s.NewStreamer()
			n := s.NumIterations()
			var buf []Access
			for i := 0; i < b.N; i++ {
				buf = st.Accesses(i%n, buf[:0])
			}
		})
	}
}
