package interp

import (
	"context"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/sema"
)

// benchProgram compiles RSense at Small scale: five striped arrays, so the
// array-sharded dependence build has real fan-out, and enough iterations
// to clear the parallel crossover thresholds.
func benchProgram(b *testing.B) *sema.Program {
	b.Helper()
	app, err := apps.ByName("RSense", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

var benchJobs = []struct {
	name string
	jobs int
}{
	{"serial", 1},
	{"jobs4", 4},
}

func BenchmarkBuildSpace(b *testing.B) {
	p := benchProgram(b)
	ctx := context.Background()
	for _, bj := range benchJobs {
		b.Run(bj.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildSpaceCtx(ctx, p, bj.jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildDeps(b *testing.B) {
	p := benchProgram(b)
	ctx := context.Background()
	s, err := BuildSpaceCtx(ctx, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, bj := range benchJobs {
		b.Run(bj.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.BuildDepsCtx(ctx, bj.jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
