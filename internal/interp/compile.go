// Closure-compiled execution engine: checked sema.Program nests are lowered
// once into flat iteration kernels — per-level bounds for odometer
// enumeration and per-reference stride tables — so the hot front-end passes
// (space enumeration, subscript validation, dependence replay, disk
// attribution, trace generation) advance each reference's linear element
// index in O(1) per iteration instead of re-evaluating the affine access
// function c0 + Σ coef[l]·iv[l] from scratch.
//
// The lowering exploits the same strength reduction classic compilers apply
// to affine array accesses: between lexicographically consecutive
// iterations only a suffix of the iteration vector changes, so every live
// linear index moves by Σ coef[l]·Δiv[l] over the changed levels — in the
// common case (innermost level advances by its step) a single precomputed
// addition per reference.
//
// The original tree-walk interpreter is kept verbatim as the reference
// oracle (Engine == EngineInterp); both engines are pinned bit-identical by
// internal/invariant's engine-parity family and FuzzEngineParity.
package interp

import (
	"context"
	"fmt"

	"diskreuse/internal/affine"
	"diskreuse/internal/conc"
	"diskreuse/internal/sema"
)

// Engine selects how the front end executes a program's iteration space.
type Engine int

const (
	// EngineCompiled (the default) runs the stride-compiled kernels.
	EngineCompiled Engine = iota
	// EngineInterp runs the original tree-walk interpreter — the slower
	// reference oracle the compiled engine is checked against.
	EngineInterp
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	if e == EngineInterp {
		return "interp"
	}
	return "compiled"
}

// ParseEngine parses a -engine flag value. The empty string selects the
// default compiled engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "compiled":
		return EngineCompiled, nil
	case "interp":
		return EngineInterp, nil
	}
	return 0, fmt.Errorf("interp: unknown engine %q (want compiled or interp)", s)
}

// CompiledRef is one array reference of a kernel, lowered to a stride
// table over the nest's iteration vector: Lin(iv) = c0 + Σ coef[l]·iv[l].
// Refs are stored in emission order — each statement's reads before its
// write — so a kernel row streams accesses without the per-iteration
// statement-grouping pass Space.Accesses performs.
type CompiledRef struct {
	Arr    *sema.Array
	ArrIdx int // Arr.Index, hoisted for slice-indexed page/disk tables
	Write  bool
	Stmt   int

	c0   int64
	coef []int64 // stride per loop level, len == nest depth
	fast int64   // coef[depth-1] * innermost step: the common-case delta
}

// kernel is one nest lowered for compiled execution.
type kernel struct {
	nestIdx int
	depth   int
	bounds  []sema.LoopBound
	refs    []CompiledRef
	count   int64 // exact iteration count
}

// compileKernel lowers a checked nest: bounds once, strides once, refs in
// emission order, and the exact iteration count (closed-form innermost
// level, so counting costs one odometer sweep of the outer levels instead
// of a full enumeration).
func compileKernel(n *sema.Nest) *kernel {
	iters := n.Iterators()
	depth := len(iters)
	k := &kernel{
		nestIdx: n.Index,
		depth:   depth,
		bounds:  n.Bounds(),
	}
	addRef := func(r *sema.Ref, write bool, stmt int) {
		a := r.Array
		strides := make([]int64, len(a.Dims))
		st := int64(1)
		for d := len(a.Dims) - 1; d >= 0; d-- {
			strides[d] = st
			st *= a.Dims[d]
		}
		cr := CompiledRef{
			Arr:    a,
			ArrIdx: a.Index,
			Write:  write,
			Stmt:   stmt,
			coef:   make([]int64, depth),
		}
		for d, sub := range r.Subs {
			cr.c0 += sub.Const * strides[d]
			for l, v := range iters {
				cr.coef[l] += sub.Coeff(v) * strides[d]
			}
		}
		cr.fast = cr.coef[depth-1] * k.bounds[depth-1].Step
		k.refs = append(k.refs, cr)
	}
	for _, st := range n.Stmts {
		for _, r := range st.Reads {
			addRef(r, false, st.Index)
		}
		if st.Write != nil {
			addRef(st.Write, true, st.Index)
		}
	}
	k.count = k.countIterations()
	return k
}

// countIterations computes the nest's exact iteration count: the outer
// depth-1 levels are swept with the odometer and the innermost level
// contributes (hi-lo)/step + 1 in closed form.
func (k *kernel) countIterations() int64 {
	inner := k.bounds[k.depth-1]
	innerSpan := func(iv []int64) int64 {
		lo := inner.Lo.EvalVec(iv)
		hi := inner.Hi.EvalVec(iv)
		if hi < lo {
			return 0
		}
		return (hi-lo)/inner.Step + 1
	}
	if k.depth == 1 {
		return innerSpan(nil)
	}
	o := newOdometer(k.bounds[:k.depth-1])
	var count int64
	for ok := o.reset(); ok; ok = o.next() {
		count += innerSpan(o.iv)
	}
	return count
}

// enumerateInto fills flat (len == count*depth) with the nest's iteration
// vectors in lexicographic order. The odometer only walks the outer
// depth-1 levels; each innermost range is a run written by a tight loop —
// prefix copy plus one incrementing coordinate — with bound re-evaluation
// only between runs.
func (k *kernel) enumerateInto(flat []int64) {
	d := k.depth
	inner := k.bounds[d-1]
	step := inner.Step
	pos := 0
	if d == 1 {
		lo, hi := inner.Lo.EvalVec(nil), inner.Hi.EvalVec(nil)
		for v := lo; v <= hi; v += step {
			flat[pos] = v
			pos++
		}
	} else if d == 2 {
		o := newOdometer(k.bounds[:1])
		for ok := o.reset(); ok; ok = o.next() {
			lo, hi := inner.Lo.EvalVec(o.iv), inner.Hi.EvalVec(o.iv)
			p0 := o.iv[0]
			for v := lo; v <= hi; v += step {
				flat[pos] = p0
				flat[pos+1] = v
				pos += 2
			}
		}
	} else {
		o := newOdometer(k.bounds[:d-1])
		for ok := o.reset(); ok; ok = o.next() {
			lo, hi := inner.Lo.EvalVec(o.iv), inner.Hi.EvalVec(o.iv)
			for v := lo; v <= hi; v += step {
				pos += copy(flat[pos:], o.iv)
				flat[pos] = v
				pos++
			}
		}
	}
	if pos != len(flat) {
		// The count and the sweep come from the same bounds; disagreement
		// means the lowering is broken, not the input.
		panic(fmt.Sprintf("interp: kernel enumerated %d values, want %d", pos, len(flat)))
	}
}

// odometer enumerates a bounds list lexicographically without recursion.
// Each level's hi bound is cached while its enclosing prefix is unchanged,
// so advancing costs one compare+add per iteration in the common case and
// bound re-evaluation only at carries.
type odometer struct {
	b      []sema.LoopBound
	iv, hi []int64
}

func newOdometer(b []sema.LoopBound) *odometer {
	return &odometer{b: b, iv: make([]int64, len(b)), hi: make([]int64, len(b))}
}

// reset positions the odometer at the first iteration, skipping leading
// empty subtrees; it returns false when the whole space is empty.
func (o *odometer) reset() bool { return o.refill(0) }

// next advances to the lexicographically following iteration, returning
// false when the space is exhausted.
func (o *odometer) next() bool {
	for l := len(o.iv) - 1; l >= 0; l-- {
		o.iv[l] += o.b[l].Step
		if o.iv[l] <= o.hi[l] {
			return o.refill(l + 1)
		}
	}
	return false
}

// refill places levels from..depth-1 at their lower bounds, re-evaluating
// their (prefix-dependent) bounds. When a level's range is empty it
// backtracks: some enclosing level advances and the refill resumes below
// it. Returns false when no iteration remains.
func (o *odometer) refill(from int) bool {
	for l := from; l < len(o.iv); l++ {
		lo := o.b[l].Lo.EvalVec(o.iv)
		hi := o.b[l].Hi.EvalVec(o.iv)
		o.iv[l], o.hi[l] = lo, hi
		if lo > hi {
			for {
				l--
				if l < 0 {
					return false
				}
				o.iv[l] += o.b[l].Step
				if o.iv[l] <= o.hi[l] {
					break
				}
			}
		}
	}
	return true
}

// Engine returns the engine the space was built with and that its
// consumers (validation, dependence build, trace generation) honor.
func (s *Space) Engine() Engine { return s.engine }

// Streamer streams iteration accesses off the compiled kernels, keeping
// one arena-backed row of live linear indices (one slot per reference of
// the current nest). When consecutive Step/Accesses calls visit
// consecutive global ids, every live index advances by its stride delta —
// the strength-reduced fast path; any other id reseeds the row from the
// iteration vector in O(refs × depth).
//
// A Streamer is single-goroutine state: chunked parallel passes create one
// per worker shard. On a Space built with EngineInterp, Accesses delegates
// to the tree-walk oracle.
type Streamer struct {
	s  *Space
	id int // last streamed global id

	// cached window of the current nest
	nest           int
	nestLo, nestHi int // global id range; zero-width before the first Step
	k              *kernel
	arena          []int64
	vals           []int64
}

// NewStreamer returns a fresh streamer over the space.
func (s *Space) NewStreamer() *Streamer {
	maxRefs := 0
	for _, k := range s.kernels {
		if len(k.refs) > maxRefs {
			maxRefs = len(k.refs)
		}
	}
	return &Streamer{s: s, nest: -1, id: -2, vals: make([]int64, maxRefs)}
}

// Nest returns the nest of the last Step call.
func (st *Streamer) Nest() int { return st.nest }

// Step advances the streamer to global iteration id and returns the
// nest's compiled reference row together with the parallel slice of live
// linear indices. Both slices are valid until the next Step call.
func (st *Streamer) Step(id int) ([]CompiledRef, []int64) {
	if id < st.nestLo || id >= st.nestHi {
		s := st.s
		k := s.Nest(id)
		st.nest = k
		st.nestLo = s.NestFirst[k]
		st.k = s.kernels[k]
		st.nestHi = st.nestLo + int(st.k.count)
		st.arena = s.arena[k]
	}
	k := st.k
	d := k.depth
	off := (id - st.nestLo) * d
	iv := st.arena[off : off+d]
	vals := st.vals[:len(k.refs)]
	if id == st.id+1 && off > 0 {
		// The previous row of the arena is the previous iteration. Find
		// the outermost changed level: everything below it changed too
		// (lexicographic order), everything above is untouched.
		prev := st.arena[off-d : off]
		l0 := 0
		for l0 < d-1 && prev[l0] == iv[l0] {
			l0++
		}
		if l0 == d-1 {
			// Only the innermost level moved, and it moved by its step.
			for j := range vals {
				vals[j] += k.refs[j].fast
			}
		} else {
			for j := range vals {
				v := vals[j]
				coef := k.refs[j].coef
				for l := l0; l < d; l++ {
					v += coef[l] * (iv[l] - prev[l])
				}
				vals[j] = v
			}
		}
	} else {
		for j := range vals {
			r := &k.refs[j]
			v := r.c0
			for l, c := range r.coef {
				v += c * iv[l]
			}
			vals[j] = v
		}
	}
	st.id = id
	return k.refs, vals
}

// Accesses is a drop-in replacement for Space.Accesses that exploits
// sequential id locality through the compiled kernels; on an
// EngineInterp space it is exactly Space.Accesses.
func (st *Streamer) Accesses(id int, buf []Access) []Access {
	if st.s.engine == EngineInterp {
		return st.s.Accesses(id, buf)
	}
	refs, vals := st.Step(id)
	for j := range refs {
		r := &refs[j]
		buf = append(buf, Access{Array: r.Arr, Lin: vals[j], Write: r.Write, Stmt: r.Stmt})
	}
	return buf
}

// bucketSizes returns the exact number of accesses each array receives
// from iterations [lo, hi) — the pre-size for BuildDepsCtx's per-array
// buckets. Access counts per iteration are fixed per nest, so the result
// is a sum of range-overlap × per-nest ref counts. It works off the
// always-present compiled refs, so both engines get exact pre-sizing.
func (s *Space) bucketSizes(lo, hi int) []int {
	sizes := make([]int, len(s.Prog.Arrays))
	for i, refs := range s.refs {
		nestLo := s.NestFirst[i]
		nestHi := s.total
		if i+1 < len(s.NestFirst) {
			nestHi = s.NestFirst[i+1]
		}
		a, b := max(lo, nestLo), min(hi, nestHi)
		if b <= a {
			continue
		}
		span := b - a
		for j := range refs {
			sizes[refs[j].arr.Index] += span
		}
	}
	return sizes
}

// AccessCount returns the total number of element accesses the whole
// iteration space performs — Σ over nests of iterations × references. It
// is an exact pre-size for full access sweeps and an upper bound for
// coalesced ones, available on either engine.
func (s *Space) AccessCount() int {
	total := 0
	for i, refs := range s.refs {
		nestHi := s.total
		if i+1 < len(s.NestFirst) {
			nestHi = s.NestFirst[i+1]
		}
		total += (nestHi - s.NestFirst[i]) * len(refs)
	}
	return total
}

// checkForm is one subscript dimension of one reference lowered for
// incremental validation: value(iv) = c0 + Σ coef[l]·iv[l], legal while
// 0 <= value < extent.
type checkForm struct {
	c0     int64
	coef   []int64 // padded to nest depth
	fast   int64
	extent int64
}

// checkKernel is a nest's references lowered for compiled validation, in
// the same write-first-per-statement order the tree-walk validator checks,
// so both engines report identical first violations.
type checkKernel struct {
	refs  []*sema.Ref
	ranks []int
	forms []checkForm // concatenated per ref
}

// compileChecks lowers every nest's subscripts for compiled validation.
func (s *Space) compileChecks() []checkKernel {
	out := make([]checkKernel, len(s.Prog.Nests))
	for i, n := range s.Prog.Nests {
		vars := n.Iterators()
		depth := len(vars)
		step := n.Loops[depth-1].Step
		ck := &out[i]
		for _, st := range n.Stmts {
			for _, r := range st.Refs() {
				ck.refs = append(ck.refs, r)
				ck.ranks = append(ck.ranks, len(r.Subs))
				for d, sub := range r.Subs {
					ve := sub.MustBind(vars)
					f := checkForm{c0: ve.C0, coef: make([]int64, depth), extent: r.Array.Dims[d]}
					copy(f.coef, ve.Coef)
					f.fast = f.coef[depth-1] * step
					ck.forms = append(ck.forms, f)
				}
			}
		}
	}
	return out
}

// validateCompiled is ValidateCtx's compiled-engine path: every
// subscript value is carried incrementally across consecutive iterations
// of a chunk (the same stride deltas the Streamer applies to linear
// indices), so the per-iteration cost is one compare per dimension plus
// one add per changed level. References are checked in the same
// write-first-per-statement order as the tree-walk path and the error is
// formatted identically, so both engines report the same first violation
// on the serial path.
func (s *Space) validateCompiled(ctx context.Context, jobs int) error {
	cks := s.compileChecks()
	maxForms := 0
	for i := range cks {
		if len(cks[i].forms) > maxForms {
			maxForms = len(cks[i].forms)
		}
	}
	chunks := conc.Chunks(s.total, chunkCount(s.total, jobs))
	errs := make([]error, len(chunks))
	poolErr := conc.ForEach(ctx, len(chunks), jobs, func(_ context.Context, k int) error {
		valsBuf := make([]int64, maxForms)
		nest, last := -1, -2
		nestLo, nestHi := 0, 0
		var arena []int64
		d := 0
		for id := chunks[k][0]; id < chunks[k][1]; id++ {
			if id < nestLo || id >= nestHi {
				nest = s.Nest(id)
				nestLo = s.NestFirst[nest]
				nestHi = nestLo + int(s.kernels[nest].count)
				arena = s.arena[nest]
				d = s.depths[nest]
			}
			off := (id - nestLo) * d
			iv := arena[off : off+d]
			ck := &cks[nest]
			fs := ck.forms
			vals := valsBuf[:len(fs)]
			if id == last+1 && off > 0 {
				prev := arena[off-d : off]
				l0 := 0
				for l0 < d-1 && prev[l0] == iv[l0] {
					l0++
				}
				if l0 == d-1 {
					for j := range fs {
						vals[j] += fs[j].fast
					}
				} else {
					for j := range fs {
						v := vals[j]
						coef := fs[j].coef
						for l := l0; l < d; l++ {
							v += coef[l] * (iv[l] - prev[l])
						}
						vals[j] = v
					}
				}
			} else {
				for j := range fs {
					v := fs[j].c0
					for l, c := range fs[j].coef {
						v += c * iv[l]
					}
					vals[j] = v
				}
			}
			last = id
			fi := 0
			for ri, r := range ck.refs {
				rank := ck.ranks[ri]
				for dm := 0; dm < rank; dm++ {
					if v := vals[fi+dm]; v < 0 || v >= fs[fi+dm].extent {
						n := s.Prog.Nests[nest]
						errs[k] = fmt.Errorf("interp: nest %s iteration %s: %s subscripts %v out of bounds (dims %v)",
							n.Name, affine.Vector(iv), r, vals[fi:fi+rank], r.Array.Dims)
						return errs[k]
					}
				}
				fi += rank
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return poolErr
}
