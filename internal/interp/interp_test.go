package interp

import (
	"math/rand"
	"testing"

	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func analyze(t *testing.T, src string) *sema.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func space(t *testing.T, src string) *Space {
	t.Helper()
	s, err := BuildSpace(analyze(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceEnumeration(t *testing.T) {
	s := space(t, `
array A[10]
nest L1 { for i = 0 to 4 { read A[i]; } }
nest L2 { for i = 0 to 2 { read A[i]; } }
`)
	if s.NumIterations() != 8 {
		t.Fatalf("NumIterations = %d", s.NumIterations())
	}
	if s.NestFirst[0] != 0 || s.NestFirst[1] != 5 {
		t.Errorf("NestFirst = %v", s.NestFirst)
	}
	if it := s.IterAt(6); it.Nest != 1 || it.Iter[0] != 1 {
		t.Errorf("iter 6 = %v", it)
	}
	if s.IterAt(6).String() != "N1(1)" {
		t.Errorf("String = %q", s.IterAt(6).String())
	}
}

func TestAccessLinearization(t *testing.T) {
	s := space(t, `
array A[4][6]
nest L {
  for i = 0 to 3 {
    for j = 0 to 5 {
      A[i][j] = A[3-i][5-j];
    }
  }
}
`)
	// Iteration (1,2): write A[1][2] = lin 8; read A[2][3] = lin 15.
	var id int
	for k := 0; k < s.NumIterations(); k++ {
		if iv := s.IterVec(k); iv[0] == 1 && iv[1] == 2 {
			id = k
		}
	}
	accs := s.Accesses(id, nil)
	if len(accs) != 2 {
		t.Fatalf("accesses = %v", accs)
	}
	// reads come before the write of the same statement
	if accs[0].Write || accs[0].Lin != 15 {
		t.Errorf("read access = %+v", accs[0])
	}
	if !accs[1].Write || accs[1].Lin != 8 {
		t.Errorf("write access = %+v", accs[1])
	}
}

func TestValidateCatchesOutOfBounds(t *testing.T) {
	s := space(t, `
array A[4]
nest L { for i = 0 to 4 { read A[i]; } }
`)
	if err := s.Validate(); err == nil {
		t.Error("Validate should catch A[4] out of bounds")
	}
	ok := space(t, `
array A[5]
nest L { for i = 0 to 4 { read A[i]; } }
`)
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate false positive: %v", err)
	}
}

// Linearization can alias out-of-bounds subscripts into range; Validate
// must catch those too.
func TestValidateCatchesAliasedSubscripts(t *testing.T) {
	s := space(t, `
array A[4][4]
nest L { for i = 0 to 3 { read A[0][i+2]; } }
`)
	if err := s.Validate(); err == nil {
		t.Error("Validate should catch column overflow even though linear index stays in range")
	}
}

func TestDepGraphChain(t *testing.T) {
	// A[i] = A[i-1]: iteration i depends on i-1 — a chain.
	s := space(t, `
array A[10]
nest L { for i = 1 to 9 { A[i] = A[i-1]; } }
`)
	g := s.BuildDeps()
	for u := 1; u < 9; u++ {
		if len(g.Preds[u]) != 1 || g.Preds[u][0] != int32(u-1) {
			t.Errorf("Preds[%d] = %v", u, g.Preds[u])
		}
	}
	if len(g.Preds[0]) != 0 {
		t.Errorf("Preds[0] = %v", g.Preds[0])
	}
	if g.NumEdges() != 8 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	// Identity schedule is legal.
	order := make([]int, s.NumIterations())
	for i := range order {
		order[i] = i
	}
	if err := s.VerifySchedule(g, order); err != nil {
		t.Errorf("identity schedule rejected: %v", err)
	}
	// Reversed schedule is illegal.
	rev := make([]int, len(order))
	for i := range rev {
		rev[i] = len(order) - 1 - i
	}
	if err := s.VerifySchedule(g, rev); err == nil {
		t.Error("reversed schedule must be rejected")
	}
}

func TestDepGraphCrossNest(t *testing.T) {
	// L1 writes A, L2 reads A: every L2 iteration depends on the matching
	// L1 iteration (flow).
	s := space(t, `
array A[5]
array B[5]
nest L1 { for i = 0 to 4 { A[i] = B[i]; } }
nest L2 { for i = 0 to 4 { B[i] = A[i]; } }
`)
	g := s.BuildDeps()
	// L2 iteration i (global id 5+i) depends on L1 iteration i (id i):
	// flow via A[i] and anti via B[i].
	for i := 0; i < 5; i++ {
		u := 5 + i
		if len(g.Preds[u]) != 1 || g.Preds[u][0] != int32(i) {
			t.Errorf("Preds[%d] = %v", u, g.Preds[u])
		}
	}
}

func TestDepGraphAntiOutput(t *testing.T) {
	// Iteration order: read A[i+1] then later write A[i+1] at iteration
	// i+1: anti edge i -> i+1. Plus repeated writes to B[0]: output chain.
	s := space(t, `
array A[11]
array B[4]
nest L { for i = 0 to 9 { A[i] = A[i+1]; } }
nest M { for i = 0 to 3 { B[0] = A[i]; } }
`)
	g := s.BuildDeps()
	for u := 1; u < 10; u++ {
		found := false
		for _, p := range g.Preds[u] {
			if p == int32(u-1) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing anti edge %d -> %d: %v", u-1, u, g.Preds[u])
		}
	}
	// Output chain in nest M (ids 10..13).
	for u := 11; u <= 13; u++ {
		found := false
		for _, p := range g.Preds[u] {
			if p == int32(u-1) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing output edge %d -> %d: %v", u-1, u, g.Preds[u])
		}
	}
}

func TestDepGraphNoFalseEdges(t *testing.T) {
	// Fully independent iterations: no edges at all.
	s := space(t, `
array A[10]
array B[10]
nest L { for i = 0 to 9 { A[i] = B[i]; } }
`)
	g := s.BuildDeps()
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", g.NumEdges())
	}
}

func TestVerifyScheduleErrors(t *testing.T) {
	s := space(t, `
array A[3]
nest L { for i = 0 to 2 { read A[i]; } }
`)
	g := s.BuildDeps()
	if err := s.VerifySchedule(g, []int{0, 1}); err == nil {
		t.Error("short schedule must fail")
	}
	if err := s.VerifySchedule(g, []int{0, 0, 1}); err == nil {
		t.Error("duplicate entry must fail")
	}
	if err := s.VerifySchedule(g, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range entry must fail")
	}
	if err := s.VerifySchedule(g, []int{2, 0, 1}); err != nil {
		t.Errorf("independent permutation must pass: %v", err)
	}
}

// Property: any random topological-order-respecting permutation passes
// VerifySchedule; random permutations that break an edge fail.
func TestQuickRandomSchedules(t *testing.T) {
	s := space(t, `
array A[30]
nest L { for i = 1 to 29 { A[i] = A[i-1]; } }
nest M { for i = 0 to 9 { read A[i]; } }
`)
	g := s.BuildDeps()
	rng := rand.New(rand.NewSource(3))
	n := s.NumIterations()
	for trial := 0; trial < 30; trial++ {
		// Random legal schedule via randomized Kahn's algorithm.
		indeg := make([]int, n)
		for u := 0; u < n; u++ {
			indeg[u] = len(g.Preds[u])
		}
		var ready []int
		for u := 0; u < n; u++ {
			if indeg[u] == 0 {
				ready = append(ready, u)
			}
		}
		var order []int
		for len(ready) > 0 {
			k := rng.Intn(len(ready))
			u := ready[k]
			ready = append(ready[:k], ready[k+1:]...)
			order = append(order, u)
			for _, v := range g.Succs[u] {
				indeg[v]--
				if indeg[v] == 0 {
					ready = append(ready, int(v))
				}
			}
		}
		if err := s.VerifySchedule(g, order); err != nil {
			t.Fatalf("trial %d: legal schedule rejected: %v", trial, err)
		}
	}
}
