package interp

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomSource generates a small random DRL program whose subscripts are
// in-bounds by construction: every loop bound is capped by the smallest
// array a nest touches, and subscripts are drawn from {i, U-i, i+j, const}.
func randomSource(rng *rand.Rand) string {
	numArrays := 1 + rng.Intn(3)
	sizes := make([]int, numArrays)
	var b strings.Builder
	for a := range sizes {
		sizes[a] = 8 + rng.Intn(33)
		fmt.Fprintf(&b, "array A%d[%d]\n", a, sizes[a])
	}
	numNests := 1 + rng.Intn(3)
	for nn := 0; nn < numNests; nn++ {
		// Pick the arrays this nest touches, then bound the loops so every
		// subscript form stays within the smallest of them.
		used := []int{rng.Intn(numArrays)}
		if rng.Intn(2) == 0 {
			used = append(used, rng.Intn(numArrays))
		}
		minSize := sizes[used[0]]
		for _, a := range used[1:] {
			if sizes[a] < minSize {
				minSize = sizes[a]
			}
		}
		twoLevel := rng.Intn(2) == 0
		var hiI, hiJ int
		if twoLevel {
			hiI = 1 + rng.Intn(minSize/2-1)
			hiJ = minSize - 1 - hiI
			if hiJ > 6 {
				hiJ = 6
			}
		} else {
			hiI = 1 + rng.Intn(minSize-1)
		}
		sub := func() string {
			forms := []string{
				"i",
				fmt.Sprintf("%d-i", hiI),
				fmt.Sprintf("%d", rng.Intn(hiI+1)),
			}
			if twoLevel {
				forms = append(forms, "i+j", "j")
			}
			return forms[rng.Intn(len(forms))]
		}
		ref := func() string {
			return fmt.Sprintf("A%d[%s]", used[rng.Intn(len(used))], sub())
		}
		var stmts []string
		for k := 1 + rng.Intn(3); k > 0; k-- {
			if rng.Intn(3) == 0 {
				stmts = append(stmts, fmt.Sprintf("read %s;", ref()))
			} else {
				stmts = append(stmts, fmt.Sprintf("%s = %s;", ref(), ref()))
			}
		}
		fmt.Fprintf(&b, "nest L%d {\n", nn)
		if twoLevel {
			fmt.Fprintf(&b, "  for i = 0 to %d { for j = 0 to %d { %s } }\n",
				hiI, hiJ, strings.Join(stmts, " "))
		} else {
			fmt.Fprintf(&b, "  for i = 0 to %d { %s }\n", hiI, strings.Join(stmts, " "))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Property: the array-sharded parallel dependence build is bit-identical
// to the serial replay — reflect.DeepEqual on the whole graph, including
// the edge count — across randomized programs and every worker count 1..8.
func TestQuickParallelDepsMatchSerial(t *testing.T) {
	defer func(v int) { depCrossover = v }(depCrossover)
	depCrossover = 1 // force the sharded path even on tiny spaces

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		src := randomSource(rng)
		s := space(t, src)
		want := s.BuildDeps()
		for jobs := 1; jobs <= 8; jobs++ {
			got, err := s.BuildDepsCtx(ctx, jobs)
			if err != nil {
				t.Fatalf("trial %d jobs %d: %v\nsource:\n%s", trial, jobs, err, src)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d jobs %d: parallel graph differs from serial\nsource:\n%s",
					trial, jobs, src)
			}
		}
	}
}

// The parallel space build and chunked validation agree with the serial
// paths at every worker count.
func TestParallelSpaceAndValidateMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		src := randomSource(rng)
		want := space(t, src)
		for jobs := 1; jobs <= 8; jobs++ {
			got, err := BuildSpaceCtx(ctx, want.Prog, jobs)
			if err != nil {
				t.Fatalf("trial %d jobs %d: BuildSpaceCtx: %v", trial, jobs, err)
			}
			if !reflect.DeepEqual(want.arena, got.arena) ||
				!reflect.DeepEqual(want.NestFirst, got.NestFirst) {
				t.Fatalf("trial %d jobs %d: parallel space differs from serial\nsource:\n%s",
					trial, jobs, src)
			}
			if err := got.ValidateCtx(ctx, jobs); err != nil {
				t.Fatalf("trial %d jobs %d: ValidateCtx: %v", trial, jobs, err)
			}
		}
	}
}

// ValidateCtx still reports out-of-bounds subscripts on the chunked path,
// with the same message shape as the serial path.
func TestValidateCtxReportsOutOfBounds(t *testing.T) {
	s := space(t, `
array A[5]
nest L { for i = 0 to 6 { read A[i]; } }
`)
	for _, jobs := range []int{1, 4} {
		err := s.ValidateCtx(context.Background(), jobs)
		if err == nil {
			t.Fatalf("jobs %d: expected out-of-bounds error", jobs)
		}
		if !strings.Contains(err.Error(), "out of bounds") {
			t.Errorf("jobs %d: unexpected error %v", jobs, err)
		}
	}
}

// Cancellation propagates out of every parallel front-end entry point.
func TestParallelFrontEndCancellation(t *testing.T) {
	s := space(t, `
array A[10]
nest L { for i = 0 to 9 { A[i] = A[0]; } }
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildSpaceCtx(ctx, s.Prog, 4); err == nil {
		t.Error("BuildSpaceCtx: expected context error")
	}
	if err := s.ValidateCtx(ctx, 4); err == nil {
		t.Error("ValidateCtx: expected context error")
	}
	defer func(v int) { depCrossover = v }(depCrossover)
	depCrossover = 1
	if _, err := s.BuildDepsCtx(ctx, 4); err == nil {
		t.Error("BuildDepsCtx: expected context error")
	}
}
