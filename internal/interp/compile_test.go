package interp

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// buildBoth builds the same program under both engines.
func buildBoth(t *testing.T, src string, jobs int) (compiled, interp *Space) {
	t.Helper()
	prog := analyze(t, src)
	c, err := BuildSpaceOpts(context.Background(), prog, BuildOptions{Jobs: jobs, Engine: EngineCompiled})
	if err != nil {
		t.Fatalf("compiled build: %v", err)
	}
	i, err := BuildSpaceOpts(context.Background(), prog, BuildOptions{Jobs: jobs, Engine: EngineInterp})
	if err != nil {
		t.Fatalf("interp build: %v", err)
	}
	return c, i
}

// parityPrograms covers the enumeration shapes the odometer must get
// right: rectangular, strided, triangular (prefix-dependent bounds), and
// bounds that leave some subtrees empty so refill must backtrack.
var parityPrograms = map[string]string{
	"rectangular": `
array A[8][8]
nest L { for i = 0 to 7 { for j = 0 to 7 { A[i][j] = A[j][i]; } } }
`,
	"strided": `
array A[32]
nest L { for i = 0 to 31 step 3 { for j = 1 to 29 step 7 { A[j] = A[i]; } } }
`,
	"triangular": `
array A[10][10]
nest L { for i = 0 to 9 { for j = i to 9 { A[i][j] = A[j][i]; } } }
`,
	"empty-subtrees": `
array A[12][12]
nest Lead  { for i = 0 to 5 { for j = 8 - i to 3 { A[i][j] = A[j][i]; } } }
nest Trail { for i = 0 to 9 { for j = i to 4 { A[i][j] = A[j][i]; } } }
`,
	"deep": `
array A[6][6][6]
nest L { for i = 0 to 5 { for j = i to 5 { for k = j to 5 { read A[i][j][k]; } } } }
`,
	"multi-nest": `
array A[16]
array B[4][16]
nest L1 { for i = 0 to 15 { A[i] = A[15 - i]; } }
nest L2 { for i = 0 to 3 { for j = 2*i to 12 step 2 { B[i][j] = A[j]; } } }
`,
}

// TestEngineSpaceParity pins the compiled odometer enumeration to the
// tree-walk oracle across bound shapes and Jobs values.
func TestEngineSpaceParity(t *testing.T) {
	for name, src := range parityPrograms {
		for _, jobs := range []int{1, 4} {
			c, i := buildBoth(t, src, jobs)
			if !reflect.DeepEqual(c.arena, i.arena) {
				t.Errorf("%s jobs=%d: arenas differ: compiled %v, interp %v", name, jobs, c.arena, i.arena)
			}
			if !reflect.DeepEqual(c.NestFirst, i.NestFirst) {
				t.Errorf("%s jobs=%d: NestFirst differ: %v vs %v", name, jobs, c.NestFirst, i.NestFirst)
			}
		}
	}
}

// TestKernelCountMatchesTreeWalk checks the closed-form-innermost count
// against the oracle's full enumeration count.
func TestKernelCountMatchesTreeWalk(t *testing.T) {
	for name, src := range parityPrograms {
		prog := analyze(t, src)
		for i, n := range prog.Nests {
			k := compileKernel(n)
			if want := n.IterationCount(); k.count != want {
				t.Errorf("%s nest %d: kernel count %d, tree-walk %d", name, i, k.count, want)
			}
		}
	}
}

// TestEmptyKernelSpace checks that a program whose every nest is empty
// fails identically under both engines.
func TestEmptyKernelSpace(t *testing.T) {
	src := `
array A[4]
nest L { for i = 3 to 1 { read A[i]; } }
`
	prog := analyze(t, src)
	for _, e := range []Engine{EngineCompiled, EngineInterp} {
		_, err := BuildSpaceOpts(context.Background(), prog, BuildOptions{Jobs: 1, Engine: e})
		if err == nil || !strings.Contains(err.Error(), "no iterations") {
			t.Errorf("engine %v: err = %v, want no-iterations error", e, err)
		}
	}
}

// TestStreamerMatchesAccesses drives the Streamer both sequentially (fast
// path) and with random seeks (reseed path) and pins every result to
// Space.Accesses.
func TestStreamerMatchesAccesses(t *testing.T) {
	for name, src := range parityPrograms {
		c, _ := buildBoth(t, src, 1)
		st := c.NewStreamer()
		var got, want []Access
		for id := 0; id < c.NumIterations(); id++ {
			got = st.Accesses(id, got[:0])
			want = c.Accesses(id, want[:0])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: sequential accesses of id %d differ:\n got %v\nwant %v", name, id, got, want)
			}
		}
		rng := rand.New(rand.NewSource(1))
		for k := 0; k < 200; k++ {
			id := rng.Intn(c.NumIterations())
			got = st.Accesses(id, got[:0])
			want = c.Accesses(id, want[:0])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: random access of id %d differs:\n got %v\nwant %v", name, id, got, want)
			}
		}
	}
}

// TestStreamerDelegatesOnInterpEngine checks the oracle contract: on an
// interp-engine space the Streamer is exactly Space.Accesses.
func TestStreamerDelegatesOnInterpEngine(t *testing.T) {
	_, i := buildBoth(t, parityPrograms["multi-nest"], 1)
	st := i.NewStreamer()
	var got, want []Access
	for id := 0; id < i.NumIterations(); id++ {
		got = st.Accesses(id, got[:0])
		want = i.Accesses(id, want[:0])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("id %d: interp-engine streamer differs from Accesses", id)
		}
	}
}

// TestValidateParity checks that both engines accept the valid programs
// and report the identical error for an out-of-bounds one on the serial
// path.
func TestValidateParity(t *testing.T) {
	for name, src := range parityPrograms {
		c, i := buildBoth(t, src, 1)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: compiled validate: %v", name, err)
		}
		if err := i.Validate(); err != nil {
			t.Errorf("%s: interp validate: %v", name, err)
		}
	}
	oob := `
array A[8][8]
nest L { for i = 0 to 7 { for j = 0 to 7 { A[i][j] = A[i + 1][j]; } } }
`
	c, i := buildBoth(t, oob, 1)
	cerr, ierr := c.Validate(), i.Validate()
	if cerr == nil || ierr == nil {
		t.Fatalf("out-of-bounds program not caught: compiled %v, interp %v", cerr, ierr)
	}
	if cerr.Error() != ierr.Error() {
		t.Errorf("serial validation errors differ:\ncompiled: %v\n  interp: %v", cerr, ierr)
	}
}

// TestDepsParity pins BuildDeps and the sharded BuildDepsCtx to the same
// graph under both engines, including the forced-parallel path on spaces
// below the crossover.
func TestDepsParity(t *testing.T) {
	old := depCrossover
	depCrossover = 1
	defer func() { depCrossover = old }()
	for name, src := range parityPrograms {
		c, i := buildBoth(t, src, 1)
		want := i.BuildDeps()
		if got := c.BuildDeps(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: serial deps differ between engines", name)
		}
		for _, jobs := range []int{2, 8} {
			got, err := c.BuildDepsCtx(context.Background(), jobs)
			if err != nil {
				t.Fatalf("%s: BuildDepsCtx(compiled, %d): %v", name, jobs, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: compiled deps at jobs=%d differ from oracle", name, jobs)
			}
		}
	}
}

// TestParseEngine covers the flag surface.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineCompiled, true},
		{"compiled", EngineCompiled, true},
		{"interp", EngineInterp, true},
		{"tree-walk", 0, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if EngineCompiled.String() != "compiled" || EngineInterp.String() != "interp" {
		t.Errorf("String: %q, %q", EngineCompiled, EngineInterp)
	}
}
