// Package interp executes validated DRL programs abstractly: it enumerates
// iteration instances across all nests, resolves each iteration's array
// accesses to linear element indices, and builds the exact element-wise
// dependence graph that the disk-reuse scheduler must respect.
//
// The paper's Fig. 3 algorithm needs to know, for every loop iteration,
// (a) which disk(s) it touches and (b) which earlier iterations it depends
// on. Static distance vectors (package dep) answer (b) only within one
// nest and only for uniformly generated references; the interpreter
// computes the exact graph across all nests by replaying accesses in
// program order and recording flow (read-after-write), anti
// (write-after-read), and output (write-after-write) edges at element
// granularity.
package interp

import (
	"fmt"
	"sort"

	"diskreuse/internal/affine"
	"diskreuse/internal/sema"
)

// Iteration identifies one execution of a nest body.
type Iteration struct {
	Nest int           // index into Program.Nests
	Iter affine.Vector // iteration vector
}

func (it Iteration) String() string {
	return fmt.Sprintf("N%d%s", it.Nest, it.Iter)
}

// Access is one element touch performed by an iteration.
type Access struct {
	Array *sema.Array
	Lin   int64 // row-major linear element index
	Write bool
	Stmt  int // statement index within the nest body
}

// compiledRef is an array reference lowered to a linear function of the
// iteration vector: Lin(iv) = c0 + Σ coef[l]*iv[l].
type compiledRef struct {
	arr   *sema.Array
	coef  []int64
	c0    int64
	write bool
	stmt  int
	// raw subscripts kept for bounds validation
	subs []affine.Expr
}

// Space is the enumerated iteration space of a whole program: every
// iteration of every nest, in original program order, with compiled access
// functions.
type Space struct {
	Prog  *sema.Program
	Iters []Iteration // global id -> iteration
	// NestFirst[k] is the global id of nest k's first iteration.
	NestFirst []int

	refs [][]compiledRef // per nest
}

// BuildSpace enumerates prog's iterations and compiles its references.
func BuildSpace(prog *sema.Program) (*Space, error) {
	s := &Space{Prog: prog}
	for _, n := range prog.Nests {
		crefs, err := compileNest(n)
		if err != nil {
			return nil, err
		}
		s.refs = append(s.refs, crefs)
		s.NestFirst = append(s.NestFirst, len(s.Iters))
		nestIdx := n.Index
		n.ForEachIteration(func(iv affine.Vector) {
			s.Iters = append(s.Iters, Iteration{Nest: nestIdx, Iter: iv.Clone()})
		})
	}
	if len(s.Iters) == 0 {
		return nil, fmt.Errorf("interp: program has no iterations")
	}
	return s, nil
}

func compileNest(n *sema.Nest) ([]compiledRef, error) {
	iters := n.Iterators()
	var out []compiledRef
	addRef := func(r *sema.Ref, write bool, stmt int) error {
		a := r.Array
		// Row-major strides.
		strides := make([]int64, len(a.Dims))
		st := int64(1)
		for k := len(a.Dims) - 1; k >= 0; k-- {
			strides[k] = st
			st *= a.Dims[k]
		}
		cr := compiledRef{
			arr:   a,
			coef:  make([]int64, len(iters)),
			write: write,
			stmt:  stmt,
			subs:  r.Subs,
		}
		for k, sub := range r.Subs {
			cr.c0 += sub.Const * strides[k]
			for l, v := range iters {
				cr.coef[l] += sub.Coeff(v) * strides[k]
			}
		}
		out = append(out, cr)
		return nil
	}
	for _, st := range n.Stmts {
		if st.Write != nil {
			if err := addRef(st.Write, true, st.Index); err != nil {
				return nil, err
			}
		}
		for _, r := range st.Reads {
			if err := addRef(r, false, st.Index); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// NumIterations returns the total number of iteration instances.
func (s *Space) NumIterations() int { return len(s.Iters) }

// Accesses appends the accesses of global iteration id to buf and returns
// it. Accesses appear in statement order, with each statement's write
// after its reads (an assignment reads its operands before storing).
func (s *Space) Accesses(id int, buf []Access) []Access {
	it := s.Iters[id]
	iv := it.Iter
	refs := s.refs[it.Nest]
	// refs are stored write-first per statement; reorder to reads-then-
	// write per statement on the fly.
	i := 0
	for i < len(refs) {
		stmt := refs[i].stmt
		j := i
		for j < len(refs) && refs[j].stmt == stmt {
			j++
		}
		// reads first
		for k := i; k < j; k++ {
			if !refs[k].write {
				buf = append(buf, access(refs[k], iv))
			}
		}
		for k := i; k < j; k++ {
			if refs[k].write {
				buf = append(buf, access(refs[k], iv))
			}
		}
		i = j
	}
	return buf
}

func access(cr compiledRef, iv affine.Vector) Access {
	lin := cr.c0
	for l, c := range cr.coef {
		lin += c * iv[l]
	}
	return Access{Array: cr.arr, Lin: lin, Write: cr.write, Stmt: cr.stmt}
}

// Validate checks every access of every iteration against the array bounds
// dimension by dimension. It catches subscript errors that the linearized
// fast path would silently fold into a wrong (but in-range) element.
func (s *Space) Validate() error {
	for _, n := range s.Prog.Nests {
		iters := n.Iterators()
		var failed error
		n.ForEachIteration(func(iv affine.Vector) {
			if failed != nil {
				return
			}
			env := make(map[string]int64, len(iters))
			for l, v := range iters {
				env[v] = iv[l]
			}
			for _, st := range n.Stmts {
				for _, r := range st.Refs() {
					idx := r.Eval(env)
					if _, ok := r.Array.LinearIndex(idx); !ok {
						failed = fmt.Errorf("interp: nest %s iteration %s: %s subscripts %v out of bounds (dims %v)",
							n.Name, iv, r, idx, r.Array.Dims)
						return
					}
				}
			}
		})
		if failed != nil {
			return failed
		}
	}
	return nil
}

// DepGraph is the exact iteration-level dependence DAG. Preds[u] lists the
// global iteration ids that must execute before iteration u; Succs is the
// inverse. Both lists are sorted and duplicate-free. Edges always point
// from an earlier program-order iteration to a later one, so the graph is
// acyclic by construction.
type DepGraph struct {
	Preds [][]int32
	Succs [][]int32
	edges int
}

// NumEdges returns the number of dependence edges.
func (g *DepGraph) NumEdges() int { return g.edges }

// elemState tracks the access history of one array element during replay.
type elemState struct {
	lastWriter int32
	readers    []int32 // readers since the last write
}

// BuildDeps replays the program in original order and constructs the exact
// dependence graph. Same-iteration accesses never create edges (the
// iteration is the atomic scheduling unit).
func (s *Space) BuildDeps() *DepGraph {
	n := len(s.Iters)
	g := &DepGraph{
		Preds: make([][]int32, n),
		Succs: make([][]int32, n),
	}
	// Per-array element state, allocated lazily per array.
	states := map[*sema.Array][]elemState{}
	stateOf := func(a *sema.Array) []elemState {
		st, ok := states[a]
		if !ok {
			st = make([]elemState, a.Elems())
			for i := range st {
				st[i].lastWriter = -1
			}
			states[a] = st
		}
		return st
	}
	addEdge := func(from, to int32) {
		if from < 0 || from == to {
			return
		}
		g.Preds[to] = append(g.Preds[to], from)
	}
	var buf []Access
	for u := 0; u < n; u++ {
		buf = s.Accesses(u, buf[:0])
		for _, a := range buf {
			st := stateOf(a.Array)
			es := &st[a.Lin]
			if a.Write {
				addEdge(es.lastWriter, int32(u)) // output
				for _, r := range es.readers {   // anti
					addEdge(r, int32(u))
				}
				es.lastWriter = int32(u)
				es.readers = es.readers[:0]
			} else {
				addEdge(es.lastWriter, int32(u)) // flow
				if m := len(es.readers); m == 0 || es.readers[m-1] != int32(u) {
					es.readers = append(es.readers, int32(u))
				}
			}
		}
	}
	// Sort and deduplicate predecessor lists; build successor lists.
	for u := range g.Preds {
		ps := g.Preds[u]
		if len(ps) == 0 {
			continue
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		w := 0
		for i, p := range ps {
			if i == 0 || p != ps[i-1] {
				ps[w] = p
				w++
			}
		}
		g.Preds[u] = ps[:w]
		g.edges += w
		for _, p := range ps[:w] {
			g.Succs[p] = append(g.Succs[p], int32(u))
		}
	}
	return g
}

// VerifySchedule checks that order (a permutation of iteration ids) visits
// every iteration exactly once and respects every dependence edge. It is
// the correctness oracle for the restructuring transformations.
func (s *Space) VerifySchedule(g *DepGraph, order []int) error {
	n := len(s.Iters)
	if len(order) != n {
		return fmt.Errorf("interp: schedule has %d entries, want %d", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for p, id := range order {
		if id < 0 || id >= n {
			return fmt.Errorf("interp: schedule entry %d out of range", id)
		}
		if seen[id] {
			return fmt.Errorf("interp: iteration %d scheduled twice", id)
		}
		seen[id] = true
		pos[id] = p
	}
	for u := 0; u < n; u++ {
		for _, p := range g.Preds[u] {
			if pos[p] >= pos[u] {
				return fmt.Errorf("interp: dependence violated: %s must precede %s",
					s.Iters[p], s.Iters[u])
			}
		}
	}
	return nil
}
