// Package interp executes validated DRL programs abstractly: it enumerates
// iteration instances across all nests, resolves each iteration's array
// accesses to linear element indices, and builds the exact element-wise
// dependence graph that the disk-reuse scheduler must respect.
//
// The paper's Fig. 3 algorithm needs to know, for every loop iteration,
// (a) which disk(s) it touches and (b) which earlier iterations it depends
// on. Static distance vectors (package dep) answer (b) only within one
// nest and only for uniformly generated references; the interpreter
// computes the exact graph across all nests by replaying accesses in
// program order and recording flow (read-after-write), anti
// (write-after-read), and output (write-after-write) edges at element
// granularity.
package interp

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"diskreuse/internal/affine"
	"diskreuse/internal/conc"
	"diskreuse/internal/obs"
	"diskreuse/internal/sema"
)

// Iteration identifies one execution of a nest body.
type Iteration struct {
	Nest int           // index into Program.Nests
	Iter affine.Vector // iteration vector
}

func (it Iteration) String() string {
	return fmt.Sprintf("N%d%s", it.Nest, it.Iter)
}

// Access is one element touch performed by an iteration.
type Access struct {
	Array *sema.Array
	Lin   int64 // row-major linear element index
	Write bool
	Stmt  int // statement index within the nest body
}

// compiledRef is an array reference lowered to a linear function of the
// iteration vector: Lin(iv) = c0 + Σ coef[l]*iv[l].
type compiledRef struct {
	arr   *sema.Array
	coef  []int64
	c0    int64
	write bool
	stmt  int
	// raw subscripts kept for bounds validation
	subs []affine.Expr
}

// Space is the enumerated iteration space of a whole program: every
// iteration of every nest, in original program order, with compiled access
// functions.
//
// Iteration vectors live in one flat arena per nest — depths[k] int64
// coordinates per iteration, row-major in global id order — rather than a
// materialized []Iteration: the arena holds no pointers, so enumeration is
// a straight sequential fill and the collector never scans it. Iterations
// are viewed through Nest, IterVec, and IterAt.
type Space struct {
	Prog *sema.Program
	// NestFirst[k] is the global id of nest k's first iteration.
	NestFirst []int

	arena  [][]int64 // per nest: flat iteration vectors
	depths []int     // per nest: loop depth (arena row width)
	total  int

	refs    [][]compiledRef // per nest, write-first per statement
	engine  Engine
	kernels []*kernel // per nest; nil on the interp engine
}

// Nest returns the nest index of global iteration id.
func (s *Space) Nest(id int) int {
	// Nests are few; a backward scan beats a binary search and among
	// equal NestFirst entries (empty nests) lands on the owning nest.
	k := len(s.NestFirst) - 1
	for k > 0 && s.NestFirst[k] > id {
		k--
	}
	return k
}

// IterVec returns iteration id's vector: a view into the space's arena,
// valid for the space's lifetime. Callers must not mutate it.
func (s *Space) IterVec(id int) affine.Vector {
	return s.iterVecIn(s.Nest(id), id)
}

func (s *Space) iterVecIn(k, id int) affine.Vector {
	d := s.depths[k]
	off := (id - s.NestFirst[k]) * d
	return affine.Vector(s.arena[k][off : off+d : off+d])
}

// IterAt returns the Iteration view of global id.
func (s *Space) IterAt(id int) Iteration {
	k := s.Nest(id)
	return Iteration{Nest: k, Iter: s.iterVecIn(k, id)}
}

// BuildSpace enumerates prog's iterations and compiles its references on
// the calling goroutine — the serial path of BuildSpaceOpts with the
// default (compiled) engine.
func BuildSpace(prog *sema.Program) (*Space, error) {
	return BuildSpaceOpts(context.Background(), prog, BuildOptions{Jobs: 1})
}

// BuildSpaceCtx is BuildSpaceOpts with the default (compiled) engine.
func BuildSpaceCtx(ctx context.Context, prog *sema.Program, jobs int) (*Space, error) {
	return BuildSpaceOpts(ctx, prog, BuildOptions{Jobs: jobs})
}

// BuildOptions configures BuildSpaceOpts.
type BuildOptions struct {
	// Jobs bounds the enumeration worker pool (0 = GOMAXPROCS, 1 = inline
	// serial).
	Jobs int
	// Engine selects the execution engine the space is built for; the
	// space's consumers (validation, dependence build, trace generation)
	// honor it. The zero value is EngineCompiled.
	Engine Engine
	// Span, when non-nil, receives a "compile" child covering kernel
	// lowering on the compiled engine.
	Span *obs.Span
}

// BuildSpaceOpts enumerates prog's iterations and compiles its references,
// fanning the per-nest enumeration out over at most opt.Jobs workers (0 =
// GOMAXPROCS, 1 = inline serial). Each nest's slice of the space is
// enumerated independently and stitched in nest order, so the result is
// identical at every jobs value — and, by the engine-parity invariants, at
// either engine.
//
// On the compiled engine the nests are lowered to iteration kernels first;
// the exact per-nest volumes fall out of the lowering, so each nest's flat
// iteration-vector arena is allocated at final size and run-filled. The
// interp engine keeps the original two-pass tree-walk enumeration as the
// reference oracle, writing the same arena representation.
func BuildSpaceOpts(ctx context.Context, prog *sema.Program, opt BuildOptions) (*Space, error) {
	s := &Space{
		Prog:      prog,
		NestFirst: make([]int, len(prog.Nests)),
		arena:     make([][]int64, len(prog.Nests)),
		depths:    make([]int, len(prog.Nests)),
		refs:      make([][]compiledRef, len(prog.Nests)),
		engine:    opt.Engine,
	}
	for i, n := range prog.Nests {
		s.depths[i] = n.Depth()
		crefs, err := compileNest(n)
		if err != nil {
			return nil, err
		}
		s.refs[i] = crefs
	}
	if opt.Engine == EngineCompiled {
		return s.buildCompiled(ctx, opt)
	}
	return s.buildInterp(ctx, opt.Jobs)
}

// buildCompiled lowers every nest to an iteration kernel, then run-fills
// each nest's arena through the kernel's odometer: one exactly-sized
// allocation per nest, no append growth, no per-iteration headers.
func (s *Space) buildCompiled(ctx context.Context, opt BuildOptions) (*Space, error) {
	sp := opt.Span.Child("compile")
	s.kernels = make([]*kernel, len(s.Prog.Nests))
	for i, n := range s.Prog.Nests {
		s.kernels[i] = compileKernel(n)
	}
	sp.End()
	total := 0
	for i, k := range s.kernels {
		s.NestFirst[i] = total
		total += int(k.count)
	}
	if total == 0 {
		return nil, fmt.Errorf("interp: program has no iterations")
	}
	s.total = total
	err := conc.ForEach(ctx, len(s.kernels), opt.Jobs, func(_ context.Context, i int) error {
		k := s.kernels[i]
		if k.count == 0 {
			return nil
		}
		flat := make([]int64, int(k.count)*k.depth)
		k.enumerateInto(flat)
		s.arena[i] = flat
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// buildInterp is the original tree-walk enumeration, kept as the reference
// oracle: each nest is counted by a first enumeration pass and a second
// tree-walk pass copies every iteration vector into the nest's arena.
func (s *Space) buildInterp(ctx context.Context, jobs int) (*Space, error) {
	prog := s.Prog
	err := conc.ForEach(ctx, len(prog.Nests), jobs, func(_ context.Context, i int) error {
		n := prog.Nests[i]
		count := n.IterationCount()
		if count == 0 {
			return nil
		}
		depth := n.Depth()
		flat := make([]int64, 0, count*int64(depth))
		n.ForEachIteration(func(iv affine.Vector) {
			flat = append(flat, iv...)
		})
		s.arena[i] = flat
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i := range s.arena {
		s.NestFirst[i] = total
		total += len(s.arena[i]) / s.depths[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("interp: program has no iterations")
	}
	s.total = total
	return s, nil
}

func compileNest(n *sema.Nest) ([]compiledRef, error) {
	iters := n.Iterators()
	var out []compiledRef
	addRef := func(r *sema.Ref, write bool, stmt int) error {
		a := r.Array
		// Row-major strides.
		strides := make([]int64, len(a.Dims))
		st := int64(1)
		for k := len(a.Dims) - 1; k >= 0; k-- {
			strides[k] = st
			st *= a.Dims[k]
		}
		cr := compiledRef{
			arr:   a,
			coef:  make([]int64, len(iters)),
			write: write,
			stmt:  stmt,
			subs:  r.Subs,
		}
		for k, sub := range r.Subs {
			cr.c0 += sub.Const * strides[k]
			for l, v := range iters {
				cr.coef[l] += sub.Coeff(v) * strides[k]
			}
		}
		out = append(out, cr)
		return nil
	}
	for _, st := range n.Stmts {
		if st.Write != nil {
			if err := addRef(st.Write, true, st.Index); err != nil {
				return nil, err
			}
		}
		for _, r := range st.Reads {
			if err := addRef(r, false, st.Index); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// NumIterations returns the total number of iteration instances.
func (s *Space) NumIterations() int { return s.total }

// Accesses appends the accesses of global iteration id to buf and returns
// it. Accesses appear in statement order, with each statement's write
// after its reads (an assignment reads its operands before storing).
func (s *Space) Accesses(id int, buf []Access) []Access {
	k := s.Nest(id)
	iv := s.iterVecIn(k, id)
	refs := s.refs[k]
	// refs are stored write-first per statement; reorder to reads-then-
	// write per statement on the fly.
	i := 0
	for i < len(refs) {
		stmt := refs[i].stmt
		j := i
		for j < len(refs) && refs[j].stmt == stmt {
			j++
		}
		// reads first
		for k := i; k < j; k++ {
			if !refs[k].write {
				buf = append(buf, access(refs[k], iv))
			}
		}
		for k := i; k < j; k++ {
			if refs[k].write {
				buf = append(buf, access(refs[k], iv))
			}
		}
		i = j
	}
	return buf
}

func access(cr compiledRef, iv affine.Vector) Access {
	lin := cr.c0
	for l, c := range cr.coef {
		lin += c * iv[l]
	}
	return Access{Array: cr.arr, Lin: lin, Write: cr.write, Stmt: cr.stmt}
}

// Validate checks every access of every iteration against the array bounds
// dimension by dimension. It catches subscript errors that the linearized
// fast path would silently fold into a wrong (but in-range) element.
// Validate is the serial reference path of ValidateCtx.
func (s *Space) Validate() error {
	return s.ValidateCtx(context.Background(), 1)
}

// checkedRef is a reference with its subscripts compiled against the
// nest's iterator order, so validation evaluates them straight off the
// iteration vector — no per-iteration environment map.
type checkedRef struct {
	ref  *sema.Ref
	subs []affine.VecExpr
}

// ValidateCtx is Validate chunked over iteration ranges on at most jobs
// workers (0 = GOMAXPROCS, 1 = inline serial, which checks iterations in
// exact program order). The set of detected violations is the same at any
// jobs value; under parallel execution the reported violation is the
// earliest one of the first finishing chunk rather than the globally
// first. On a compiled-engine space the subscripts are checked through
// incremental stride updates instead of per-dimension re-evaluation; both
// paths check references in the same order and format identical errors.
func (s *Space) ValidateCtx(ctx context.Context, jobs int) error {
	if s.engine == EngineCompiled {
		return s.validateCompiled(ctx, jobs)
	}
	perNest := make([][]checkedRef, len(s.Prog.Nests))
	maxRank := 0
	for i, n := range s.Prog.Nests {
		vars := n.Iterators()
		for _, st := range n.Stmts {
			for _, r := range st.Refs() {
				cr := checkedRef{ref: r, subs: make([]affine.VecExpr, len(r.Subs))}
				for k, sub := range r.Subs {
					cr.subs[k] = sub.MustBind(vars)
				}
				if len(cr.subs) > maxRank {
					maxRank = len(cr.subs)
				}
				perNest[i] = append(perNest[i], cr)
			}
		}
	}
	chunks := conc.Chunks(s.total, chunkCount(s.total, jobs))
	errs := make([]error, len(chunks))
	poolErr := conc.ForEach(ctx, len(chunks), jobs, func(_ context.Context, k int) error {
		idx := make([]int64, maxRank)
		for id := chunks[k][0]; id < chunks[k][1]; id++ {
			it := s.IterAt(id)
			for _, cr := range perNest[it.Nest] {
				sub := idx[:len(cr.subs)]
				for d, e := range cr.subs {
					sub[d] = e.EvalVec(it.Iter)
				}
				if _, ok := cr.ref.Array.LinearIndex(sub); !ok {
					n := s.Prog.Nests[it.Nest]
					errs[k] = fmt.Errorf("interp: nest %s iteration %s: %s subscripts %v out of bounds (dims %v)",
						n.Name, it.Iter, cr.ref, sub, cr.ref.Array.Dims)
					return errs[k]
				}
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return poolErr
}

// chunkCount over-decomposes a chunked sweep relative to the worker count
// so uneven chunks still balance; it never splits finer than a minimum
// grain, keeping tiny inputs effectively serial.
func chunkCount(n, jobs int) int {
	const minGrain = 1 << 10
	return conc.ChunkCount(n, jobs, minGrain)
}

// DepGraph is the exact iteration-level dependence DAG. Preds[u] lists the
// global iteration ids that must execute before iteration u; Succs is the
// inverse. Both lists are sorted and duplicate-free. Edges always point
// from an earlier program-order iteration to a later one, so the graph is
// acyclic by construction.
type DepGraph struct {
	Preds [][]int32
	Succs [][]int32
	edges int
}

// NumEdges returns the number of dependence edges.
func (g *DepGraph) NumEdges() int { return g.edges }

// elemState tracks the access history of one array element during replay.
type elemState struct {
	lastWriter int32
	readers    []int32 // readers since the last write
}

// BuildDeps replays the program in original order and constructs the exact
// dependence graph. Same-iteration accesses never create edges (the
// iteration is the atomic scheduling unit).
func (s *Space) BuildDeps() *DepGraph {
	n := s.total
	g := &DepGraph{
		Preds: make([][]int32, n),
		Succs: make([][]int32, n),
	}
	// Per-array element state, allocated lazily per array.
	states := map[*sema.Array][]elemState{}
	stateOf := func(a *sema.Array) []elemState {
		st, ok := states[a]
		if !ok {
			st = make([]elemState, a.Elems())
			for i := range st {
				st[i].lastWriter = -1
			}
			states[a] = st
		}
		return st
	}
	addEdge := func(from, to int32) {
		if from < 0 || from == to {
			return
		}
		g.Preds[to] = append(g.Preds[to], from)
	}
	str := s.NewStreamer()
	var buf []Access
	for u := 0; u < n; u++ {
		buf = str.Accesses(u, buf[:0])
		for _, a := range buf {
			st := stateOf(a.Array)
			es := &st[a.Lin]
			if a.Write {
				addEdge(es.lastWriter, int32(u)) // output
				for _, r := range es.readers {   // anti
					addEdge(r, int32(u))
				}
				es.lastWriter = int32(u)
				es.readers = es.readers[:0]
			} else {
				addEdge(es.lastWriter, int32(u)) // flow
				if m := len(es.readers); m == 0 || es.readers[m-1] != int32(u) {
					es.readers = append(es.readers, int32(u))
				}
			}
		}
	}
	// Sort and deduplicate predecessor lists; build successor lists.
	for u := range g.Preds {
		ps := g.Preds[u]
		if len(ps) == 0 {
			continue
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		w := 0
		for i, p := range ps {
			if i == 0 || p != ps[i-1] {
				ps[w] = p
				w++
			}
		}
		g.Preds[u] = ps[:w]
		g.edges += w
		for _, p := range ps[:w] {
			g.Succs[p] = append(g.Succs[p], int32(u))
		}
	}
	return g
}

// depCrossover is the iteration count below which BuildDepsCtx always
// takes the serial path: the per-array fan-out only pays for itself once
// the access streams are long enough to amortize the bucketing pass. A
// variable so the determinism tests can force the parallel path on small
// programs.
var depCrossover = 1 << 12

// accessRec is one array touch in the global replay stream, restricted to
// a single array: the per-array unit of the sharded dependence build.
type accessRec struct {
	lin   int64
	u     int32
	write bool
}

// edge is one dependence constraint: iteration from must precede to.
type edge struct{ from, to int32 }

// BuildDepsCtx builds the exact dependence graph like BuildDeps, but
// sharded by array over at most jobs workers (0 = GOMAXPROCS): element
// state never crosses arrays, so each array's access stream is replayed
// independently, and the per-array edge lists are merged into the same
// sorted, deduplicated Preds/Succs the serial replay produces. The result
// is deep-equal to BuildDeps at every jobs value; jobs == 1 and small
// spaces (under the crossover threshold) take the serial path outright.
func (s *Space) BuildDepsCtx(ctx context.Context, jobs int) (*DepGraph, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	n := s.total
	if jobs == 1 || n < depCrossover {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.BuildDeps(), nil
	}

	// Stage 1: bucket every access by array, preserving global replay
	// order, on chunked workers. Chunk k's buckets hold the accesses of
	// iterations [lo_k, hi_k), so concatenating a bucket row across chunks
	// yields that array's full stream in program order. Per-iteration
	// access counts are fixed per nest, so every bucket is allocated at
	// its exact final size up front.
	numArrays := len(s.Prog.Arrays)
	chunks := conc.Chunks(n, chunkCount(n, jobs))
	buckets := make([][][]accessRec, len(chunks))
	err := conc.ForEach(ctx, len(chunks), jobs, func(_ context.Context, k int) error {
		bk := make([][]accessRec, numArrays)
		for ai, sz := range s.bucketSizes(chunks[k][0], chunks[k][1]) {
			if sz > 0 {
				bk[ai] = make([]accessRec, 0, sz)
			}
		}
		str := s.NewStreamer()
		var buf []Access
		for u := chunks[k][0]; u < chunks[k][1]; u++ {
			buf = str.Accesses(u, buf[:0])
			for _, a := range buf {
				ai := a.Array.Index
				bk[ai] = append(bk[ai], accessRec{lin: a.Lin, u: int32(u), write: a.Write})
			}
		}
		buckets[k] = bk
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stage 2: replay each array's stream on its own worker, emitting its
	// edge list. Edges are emitted while processing their target iteration,
	// so each list is grouped by ascending to.
	perArray := make([][]edge, numArrays)
	err = conc.ForEach(ctx, numArrays, jobs, func(_ context.Context, ai int) error {
		total := 0
		for k := range buckets {
			total += len(buckets[k][ai])
		}
		if total == 0 {
			return nil
		}
		stream := make([]accessRec, 0, total)
		for k := range buckets {
			stream = append(stream, buckets[k][ai]...)
		}
		perArray[ai] = replayArray(s.Prog.Arrays[ai], stream)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stage 3: merge the per-array edge lists into sorted, deduplicated
	// predecessor lists, chunked over target-iteration ranges. Each chunk
	// locates its [lo, hi) segment of every array's list by binary search
	// (the lists are sorted by to) and carves the merged lists from one
	// chunk-local backing array.
	g := &DepGraph{
		Preds: make([][]int32, n),
		Succs: make([][]int32, n),
	}
	mergeChunks := conc.Chunks(n, chunkCount(n, jobs))
	edgeCounts := make([]int, len(mergeChunks))
	err = conc.ForEach(ctx, len(mergeChunks), jobs, func(_ context.Context, k int) error {
		lo, hi := mergeChunks[k][0], mergeChunks[k][1]
		var segs [][]edge
		total := 0
		for _, es := range perArray {
			start := sort.Search(len(es), func(i int) bool { return es[i].to >= int32(lo) })
			end := start + sort.Search(len(es)-start, func(i int) bool { return es[start+i].to >= int32(hi) })
			if end > start {
				segs = append(segs, es[start:end])
				total += end - start
			}
		}
		if total == 0 {
			return nil
		}
		backing := make([]int32, 0, total)
		cur := make([]int, len(segs))
		count := 0
		for u := lo; u < hi; u++ {
			mark := len(backing)
			for si, seg := range segs {
				for cur[si] < len(seg) && seg[cur[si]].to == int32(u) {
					backing = append(backing, seg[cur[si]].from)
					cur[si]++
				}
			}
			ps := backing[mark:]
			if len(ps) == 0 {
				continue
			}
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
			w := 0
			for i, p := range ps {
				if i == 0 || p != ps[i-1] {
					ps[w] = p
					w++
				}
			}
			backing = backing[:mark+w]
			g.Preds[u] = backing[mark : mark+w : mark+w]
			count += w
		}
		edgeCounts[k] = count
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range edgeCounts {
		g.edges += c
	}

	// Stage 4: successor lists. Degrees first, then one ordered fill over
	// ascending u, so every Succs[p] comes out sorted exactly as the serial
	// build's append order produces.
	outdeg := make([]int32, n)
	for u := range g.Preds {
		for _, p := range g.Preds[u] {
			outdeg[p]++
		}
	}
	flat := make([]int32, g.edges)
	offs := make([]int32, n+1)
	for p := 0; p < n; p++ {
		offs[p+1] = offs[p] + outdeg[p]
	}
	pos := make([]int32, n)
	copy(pos, offs[:n])
	for u := 0; u < n; u++ {
		for _, p := range g.Preds[u] {
			flat[pos[p]] = int32(u)
			pos[p]++
		}
	}
	for p := 0; p < n; p++ {
		if outdeg[p] > 0 {
			g.Succs[p] = flat[offs[p]:offs[p+1]:offs[p+1]]
		}
	}
	return g, nil
}

// replayArray replays one array's access stream (already in global program
// order) against its element states, returning the dependence edges the
// stream induces. Identical to the inner loop of the serial BuildDeps,
// restricted to a single array.
func replayArray(a *sema.Array, stream []accessRec) []edge {
	st := make([]elemState, a.Elems())
	for i := range st {
		st[i].lastWriter = -1
	}
	var edges []edge
	add := func(from, to int32) {
		if from < 0 || from == to {
			return
		}
		edges = append(edges, edge{from: from, to: to})
	}
	for _, rec := range stream {
		es := &st[rec.lin]
		if rec.write {
			add(es.lastWriter, rec.u)      // output
			for _, r := range es.readers { // anti
				add(r, rec.u)
			}
			es.lastWriter = rec.u
			es.readers = es.readers[:0]
		} else {
			add(es.lastWriter, rec.u) // flow
			if m := len(es.readers); m == 0 || es.readers[m-1] != rec.u {
				es.readers = append(es.readers, rec.u)
			}
		}
	}
	return edges
}

// VerifySchedule checks that order (a permutation of iteration ids) visits
// every iteration exactly once and respects every dependence edge. It is
// the correctness oracle for the restructuring transformations.
func (s *Space) VerifySchedule(g *DepGraph, order []int) error {
	n := s.total
	if len(order) != n {
		return fmt.Errorf("interp: schedule has %d entries, want %d", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for p, id := range order {
		if id < 0 || id >= n {
			return fmt.Errorf("interp: schedule entry %d out of range", id)
		}
		if seen[id] {
			return fmt.Errorf("interp: iteration %d scheduled twice", id)
		}
		seen[id] = true
		pos[id] = p
	}
	for u := 0; u < n; u++ {
		for _, p := range g.Preds[u] {
			if pos[p] >= pos[u] {
				return fmt.Errorf("interp: dependence violated: %s must precede %s",
					s.IterAt(int(p)), s.IterAt(u))
			}
		}
	}
	return nil
}
