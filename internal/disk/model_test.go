package disk

import (
	"math"
	"testing"
)

func TestUltrastarDefaults(t *testing.T) {
	m := Ultrastar36Z15()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.RPMMax != 15000 || m.RPMMin != 3000 || m.RPMStep != 3000 {
		t.Errorf("RPM params wrong: %+v", m)
	}
	if m.PowerActive != 13.5 || m.PowerIdle != 10.2 || m.PowerStandby != 2.5 {
		t.Errorf("power params wrong: %+v", m)
	}
	if m.BreakEven != 15.2 || m.SpinUpTime != 10.9 || m.SpinDownTime != 1.5 {
		t.Errorf("transition params wrong: %+v", m)
	}
	levels := m.Levels()
	if len(levels) != 5 || levels[0] != 3000 || levels[4] != 15000 {
		t.Errorf("levels = %v", levels)
	}
}

func TestServiceTimeFullSpeed(t *testing.T) {
	m := Ultrastar36Z15()
	// 4 KiB at full speed: 3.4ms + 2ms + 4096/55e6 s ≈ 5.474 ms
	got := m.FullSpeedService(4096)
	want := 3.4e-3 + 2.0e-3 + 4096.0/55e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("service = %v, want %v", got, want)
	}
}

func TestServiceTimeScalesWithRPM(t *testing.T) {
	m := Ultrastar36Z15()
	full := m.ServiceTime(32768, 15000)
	slow := m.ServiceTime(32768, 3000)
	if slow <= full {
		t.Fatalf("slow %v must exceed full %v", slow, full)
	}
	// Seek component is speed-independent: slow - full = 4×(rot + xfer).
	rotXfer := 2.0e-3 + 32768.0/55e6
	if math.Abs((slow-full)-4*rotXfer) > 1e-9 {
		t.Errorf("scaling wrong: delta = %v, want %v", slow-full, 4*rotXfer)
	}
	// rpm <= 0 falls back to full speed.
	if m.ServiceTime(32768, 0) != full {
		t.Error("rpm 0 should mean full speed")
	}
}

func TestClampRPM(t *testing.T) {
	m := Ultrastar36Z15()
	cases := []struct{ in, want int }{
		{0, 3000}, {2999, 3000}, {3000, 3000}, {4500, 3000},
		{6000, 6000}, {14000, 12000}, {15000, 15000}, {99999, 15000},
	}
	for _, c := range cases {
		if got := m.ClampRPM(c.in); got != c.want {
			t.Errorf("ClampRPM(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.RPMMin = 0 },
		func(m *Model) { m.RPMMin = 16000 },
		func(m *Model) { m.RPMStep = 7000 },
		func(m *Model) { m.TransferRate = 0 },
		func(m *Model) { m.AvgSeek = -1 },
		func(m *Model) { m.PowerIdle = 99 },
	}
	for i, mutate := range bad {
		m := Ultrastar36Z15()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate should fail for %+v", i, m)
		}
	}
}

func TestTravelstarModel(t *testing.T) {
	m := Travelstar40GN()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Levels(); len(got) != 1 || got[0] != 4200 {
		t.Errorf("laptop disk levels = %v", got)
	}
	// §4: mobile disks have order-of-magnitude cheaper transitions than
	// server disks, which is why TPM was born there.
	s := Ultrastar36Z15()
	if m.BreakEven >= s.BreakEven/2 {
		t.Errorf("laptop break-even %v should be far below server %v", m.BreakEven, s.BreakEven)
	}
	if m.SpinUpTime >= s.SpinUpTime/3 {
		t.Errorf("laptop spin-up %v should be far below server %v", m.SpinUpTime, s.SpinUpTime)
	}
	// But it is much slower at moving data.
	if m.FullSpeedService(4096) <= s.FullSpeedService(4096) {
		t.Error("laptop service should be slower than server service")
	}
}
