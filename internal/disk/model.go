// Package disk models the server-class disk drive the paper simulates:
// the IBM Ultrastar 36Z15, with the physical, timing, and power parameters
// of Table 1, plus multi-speed (DRPM) service-time scaling.
//
// All times are in seconds and all energies in joules, carried as float64
// — the natural units for an analytic event-driven simulation.
package disk

import "fmt"

// Model describes one disk drive (one I/O node in the paper's storage
// architecture, since each I/O node has one disk in the evaluation).
type Model struct {
	Name string

	// Rotational speed levels (DRPM). A TPM-only disk uses RPMMax always.
	RPMMax  int
	RPMMin  int
	RPMStep int

	// Timing at full speed.
	AvgSeek      float64 // seconds
	AvgRotation  float64 // seconds (average rotational latency at RPMMax)
	TransferRate float64 // bytes/second at RPMMax

	// Power (Table 1).
	PowerActive  float64 // W, servicing requests at full speed
	PowerIdle    float64 // W, spinning at full speed, no requests
	PowerStandby float64 // W, spun down

	// TPM mode transitions (Table 1).
	SpinDownEnergy float64 // J, idle -> standby
	SpinDownTime   float64 // s
	SpinUpEnergy   float64 // J, standby -> active
	SpinUpTime     float64 // s

	// BreakEven is the idle duration above which a spin-down/up cycle
	// saves energy (Table 1: 15.2 s); TPM uses it as its idleness
	// threshold.
	BreakEven float64
}

// Ultrastar36Z15 returns the Table 1 disk model.
func Ultrastar36Z15() Model {
	return Model{
		Name:           "IBM Ultrastar 36Z15",
		RPMMax:         15000,
		RPMMin:         3000,
		RPMStep:        3000,
		AvgSeek:        3.4e-3,
		AvgRotation:    2.0e-3,
		TransferRate:   55e6,
		PowerActive:    13.5,
		PowerIdle:      10.2,
		PowerStandby:   2.5,
		SpinDownEnergy: 13,
		SpinDownTime:   1.5,
		SpinUpEnergy:   135,
		SpinUpTime:     10.9,
		BreakEven:      15.2,
	}
}

// Travelstar40GN returns a laptop-class disk model (IBM/Hitachi
// Travelstar-era 2.5" drive): slower and smaller than the Ultrastar, but
// with fast, cheap spin transitions and therefore a break-even time an
// order of magnitude shorter. §4 of the paper argues TPM "has been
// extensively studied in the context of mobile disks" and is effective
// there while server-class disks' long spin-up/down times make it hard to
// exploit observed idle periods — this model lets that claim be tested.
func Travelstar40GN() Model {
	return Model{
		Name:           "IBM Travelstar 40GN",
		RPMMax:         4200,
		RPMMin:         4200, // single-speed drive
		RPMStep:        4200,
		AvgSeek:        12e-3,
		AvgRotation:    7.1e-3,
		TransferRate:   25e6,
		PowerActive:    2.1,
		PowerIdle:      0.85,
		PowerStandby:   0.2,
		SpinDownEnergy: 0.4,
		SpinDownTime:   0.5,
		SpinUpEnergy:   3.0,
		SpinUpTime:     1.8,
		BreakEven:      4.5,
	}
}

// Validate checks internal consistency of the model.
func (m Model) Validate() error {
	switch {
	case m.RPMMax <= 0 || m.RPMMin <= 0 || m.RPMStep <= 0:
		return fmt.Errorf("disk: RPM levels must be positive")
	case m.RPMMin > m.RPMMax:
		return fmt.Errorf("disk: RPMMin %d > RPMMax %d", m.RPMMin, m.RPMMax)
	case (m.RPMMax-m.RPMMin)%m.RPMStep != 0:
		return fmt.Errorf("disk: RPM range %d..%d not a multiple of step %d", m.RPMMin, m.RPMMax, m.RPMStep)
	case m.TransferRate <= 0:
		return fmt.Errorf("disk: transfer rate must be positive")
	case m.AvgSeek < 0 || m.AvgRotation < 0:
		return fmt.Errorf("disk: negative timing parameter")
	case m.PowerActive < m.PowerIdle || m.PowerIdle < m.PowerStandby:
		return fmt.Errorf("disk: power ordering must be active >= idle >= standby")
	}
	return nil
}

// Levels returns the available RPM levels in ascending order.
func (m Model) Levels() []int {
	var out []int
	for r := m.RPMMin; r <= m.RPMMax; r += m.RPMStep {
		out = append(out, r)
	}
	return out
}

// ClampRPM snaps r to the nearest valid level at or above RPMMin.
func (m Model) ClampRPM(r int) int {
	if r <= m.RPMMin {
		return m.RPMMin
	}
	if r >= m.RPMMax {
		return m.RPMMax
	}
	// Snap down to a level boundary relative to RPMMin.
	k := (r - m.RPMMin) / m.RPMStep
	return m.RPMMin + k*m.RPMStep
}

// ServiceTime returns the time to service a request of the given size at
// rotational speed rpm. Seek time is speed-independent; rotational latency
// and media transfer rate scale linearly with RPM (the physical basis of
// DRPM's energy/performance trade).
func (m Model) ServiceTime(bytes int64, rpm int) float64 {
	if rpm <= 0 {
		rpm = m.RPMMax
	}
	scale := float64(m.RPMMax) / float64(rpm)
	rot := m.AvgRotation * scale
	xfer := float64(bytes) / (m.TransferRate / scale)
	return m.AvgSeek + rot + xfer
}

// FullSpeedService is ServiceTime at RPMMax.
func (m Model) FullSpeedService(bytes int64) float64 {
	return m.ServiceTime(bytes, m.RPMMax)
}
