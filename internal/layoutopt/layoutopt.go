// Package layoutopt implements the extension the paper's §8 outlines as
// future work: "a framework that combines application code restructuring
// with disk layout reorganization under a unified optimizer". Following
// the authors' companion work on energy-efficient disk layouts (Son et
// al., ICS'05 [23]), the optimizer searches over the layout parameters —
// stripe unit, stripe factor (number of disks), and starting disk — and
// evaluates each candidate by actually running the §5 restructuring and
// the TPM/DRPM simulation on the re-laid-out program, picking the layout
// with the lowest transformed disk energy.
package layoutopt

import (
	"fmt"
	"io"
	"text/tabwriter"

	"diskreuse/internal/apps"
	"diskreuse/internal/ast"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/layout"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// Candidate is one striping configuration applied to every array of the
// program (the paper's evaluation also stripes all arrays identically).
type Candidate struct {
	Unit   int64
	Factor int
	Start  int
}

func (c Candidate) String() string {
	return fmt.Sprintf("unit=%dKB factor=%d start=%d", c.Unit>>10, c.Factor, c.Start)
}

// DefaultCandidates is the uniform search space: stripe units from 16 KB
// to 128 KB, 2 to 16 disks, and starting disks 0 and 1. (The start-disk
// dimension was long advertised by Candidate but never generated — every
// candidate was pinned to disk 0, so layouts reachable only by rotating
// arrays off the first disk were never tried.)
func DefaultCandidates() []Candidate {
	var out []Candidate
	for _, unit := range []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		for _, factor := range []int{2, 4, 8, 16} {
			for _, start := range []int{0, 1} {
				out = append(out, Candidate{Unit: unit, Factor: factor, Start: start})
			}
		}
	}
	return out
}

// Result is the evaluation of one candidate layout.
type Result struct {
	Candidate
	// BaseEnergy is the untransformed, unmanaged energy under this layout.
	BaseEnergy float64
	// TTPMEnergy and TDRPMEnergy are the restructured energies under TPM
	// and DRPM.
	TTPMEnergy  float64
	TDRPMEnergy float64
	// Runs is the restructured schedule's disk-run count (clustering).
	Runs int
}

// Best returns the lower of the two transformed energies.
func (r Result) Best() float64 {
	if r.TTPMEnergy < r.TDRPMEnergy {
		return r.TTPMEnergy
	}
	return r.TDRPMEnergy
}

// Evaluate runs the full pipeline for one application under one candidate
// layout: compile, re-stripe every array, restructure, generate the trace,
// and simulate Base/T-TPM/T-DRPM.
func Evaluate(a apps.App, c Candidate) (Result, error) {
	prog, err := a.Compile()
	if err != nil {
		return Result{}, err
	}
	for _, arr := range prog.Arrays {
		arr.Stripe = ast.StripeSpec{Unit: c.Unit, Factor: c.Factor, Start: c.Start}
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return Result{}, err
	}
	r, err := core.New(prog, lay)
	if err != nil {
		return Result{}, err
	}
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		return Result{}, err
	}
	if err := r.Verify(sched); err != nil {
		return Result{}, err
	}
	model := disk.Ultrastar36Z15()
	gen := trace.GenConfig{
		ComputePerIter:  a.ComputePerIter,
		ServiceEstimate: model.FullSpeedService(lay.PageSize),
	}
	origTrace, err := trace.Generate(r, trace.SinglePhase(r.OriginalSchedule()), gen)
	if err != nil {
		return Result{}, err
	}
	restrTrace, err := trace.Generate(r, trace.SinglePhase(sched), gen)
	if err != nil {
		return Result{}, err
	}
	runSim := func(reqs []trace.Request, pol sim.Policy) (float64, error) {
		res, err := sim.Run(reqs, lay.PageDisk, sim.Config{
			Model: model, NumDisks: lay.NumDisks(), Policy: pol,
		})
		if err != nil {
			return 0, err
		}
		return res.Energy, nil
	}
	out := Result{
		Candidate: c,
		Runs:      core.Stats(sched, lay.NumDisks()).Runs,
	}
	if out.BaseEnergy, err = runSim(origTrace, sim.NoPM); err != nil {
		return Result{}, err
	}
	if out.TTPMEnergy, err = runSim(restrTrace, sim.TPM); err != nil {
		return Result{}, err
	}
	if out.TDRPMEnergy, err = runSim(restrTrace, sim.DRPM); err != nil {
		return Result{}, err
	}
	return out, nil
}

// Optimize evaluates every candidate (DefaultCandidates when nil) and
// returns the one with the lowest transformed energy, along with all
// results in evaluation order. Scoring goes through the re-attribution
// engine — compile once, score each candidate without re-running the front
// end — and is bit-for-bit identical to calling Evaluate per candidate.
func Optimize(a apps.App, candidates []Candidate) (Result, []Result, error) {
	if candidates == nil {
		candidates = DefaultCandidates()
	}
	if len(candidates) == 0 {
		return Result{}, nil, fmt.Errorf("layoutopt: no candidates")
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		return Result{}, nil, fmt.Errorf("layoutopt: %s: %w", a.Name, err)
	}
	var all []Result
	best := -1
	for _, c := range candidates {
		sc, err := e.Score(Uniform(e.NumArrays(), c))
		if err != nil {
			return Result{}, nil, fmt.Errorf("layoutopt: %s under %s: %w", a.Name, c, err)
		}
		all = append(all, Result{
			Candidate:   c,
			BaseEnergy:  sc.BaseEnergy,
			TTPMEnergy:  sc.TTPMEnergy,
			TDRPMEnergy: sc.TDRPMEnergy,
			Runs:        sc.Runs,
		})
		if best < 0 || all[len(all)-1].Best() < all[best].Best() {
			best = len(all) - 1
		}
	}
	return all[best], all, nil
}

// Report runs the optimizer for one application and writes a table of all
// candidates with the winner marked.
func Report(w io.Writer, a apps.App) error {
	best, all, err := Optimize(a, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: unified layout + restructuring search\n", a.Name)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "Layout\tBase (J)\tT-TPM (J)\tT-DRPM (J)\tRuns\t")
	for _, r := range all {
		mark := ""
		if r.Candidate == best.Candidate {
			mark = "<== best"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%d\t%s\n",
			r.Candidate, r.BaseEnergy, r.TTPMEnergy, r.TDRPMEnergy, r.Runs, mark)
	}
	return tw.Flush()
}
