package layoutopt

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"diskreuse/internal/conc"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
)

// Live metric names the beam search publishes when SearchOptions.Metrics
// is set.
const (
	metricSearchRounds     = "layoutopt_beam_rounds_total"
	metricSearchCandidates = "layoutopt_candidates_total"
	metricSearchCacheHits  = "layoutopt_score_cache_hits_total"
	metricSearchScored     = "layoutopt_candidates_scored_total"
)

// SearchOptions configures the beam search over per-array layouts.
type SearchOptions struct {
	// Units and Factors are the stripe-unit and stripe-factor menus a
	// mutation may pick from. Nil selects the defaults (16–128 KB, 2–16).
	Units   []int64
	Factors []int
	// MaxDisks bounds start+factor for every array (default 16).
	MaxDisks int
	// BeamWidth is the number of survivors kept per round (default 8).
	BeamWidth int
	// MaxRounds bounds the number of expansion rounds (default 12).
	MaxRounds int
	// Jobs bounds the scoring worker pool per round: 0 selects GOMAXPROCS,
	// 1 forces serial scoring; negative values are rejected. The beam is
	// bit-identical at any Jobs value.
	Jobs int
	// Span, when non-nil, receives one "layout-search" child with a
	// "beam-round" child per round and a "score" child per scored
	// candidate, so Chrome traces show search occupancy.
	Span *obs.Span
	// Metrics, when non-nil, receives live search progress — beam rounds,
	// candidates processed and scored, score-cache hits — readable mid-run
	// over the monitoring endpoint. Observe-only: the search never reads a
	// metric back, so the beam stays bit-identical with metrics enabled.
	Metrics *metrics.Registry
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Units == nil {
		o.Units = []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	}
	if o.Factors == nil {
		o.Factors = []int{2, 4, 8, 16}
	}
	if o.MaxDisks <= 0 {
		o.MaxDisks = 16
	}
	if o.BeamWidth <= 0 {
		o.BeamWidth = 8
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 12
	}
	return o
}

// SearchResult reports one beam search.
type SearchResult struct {
	// Best is the lowest-Best() survivor; its BaseEnergy is filled in.
	Best *Score
	// Beam is the final beam, best first, Base energies filled in.
	Beam []*Score
	// Rounds is the number of expansion rounds run.
	Rounds int
	// Candidates counts candidates the search processed (scored or
	// resolved from the score cache); Scored counts actual evaluations.
	Candidates int
	Scored     int
	// CacheHits/CacheMisses snapshot the engine's score-cache counters
	// over the search.
	CacheHits   int64
	CacheMisses int64
}

// dominated reports whether s is Pareto-dominated by t on the two
// transformed energies: t is no worse on both and strictly better on one.
func dominated(s, t *Score) bool {
	if t.TTPMEnergy > s.TTPMEnergy || t.TDRPMEnergy > s.TDRPMEnergy {
		return false
	}
	return t.TTPMEnergy < s.TTPMEnergy || t.TDRPMEnergy < s.TDRPMEnergy
}

// pruneDominated drops Pareto-dominated scores, preserving order.
func pruneDominated(pool []*Score) []*Score {
	out := pool[:0]
	for _, s := range pool {
		keep := true
		for _, t := range pool {
			if t != s && dominated(s, t) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

// sortBeam orders scores best-first with full deterministic tie-breaks.
func sortBeam(beam []*Score) {
	sort.Slice(beam, func(i, j int) bool {
		a, b := beam[i], beam[j]
		if a.Best() != b.Best() {
			return a.Best() < b.Best()
		}
		if a.TTPMEnergy != b.TTPMEnergy {
			return a.TTPMEnergy < b.TTPMEnergy
		}
		if a.TDRPMEnergy != b.TDRPMEnergy {
			return a.TDRPMEnergy < b.TDRPMEnergy
		}
		return a.Key < b.Key
	})
}

// seeds returns the initial candidate set: the declared assignment plus the
// uniform grid over the option menus (including start-disk variants, the
// space DefaultCandidates historically never covered).
func (e *Engine) seeds(opt SearchOptions) []Assignment {
	out := []Assignment{e.Declared()}
	for _, u := range opt.Units {
		for _, f := range opt.Factors {
			for _, s := range []int{0, 1} {
				if s+f > opt.MaxDisks {
					continue
				}
				out = append(out, Uniform(e.numArrays, Candidate{Unit: u, Factor: f, Start: s}))
			}
		}
	}
	return out
}

// neighbors yields every one-parameter per-array mutation of a.
func (e *Engine) neighbors(a Assignment, opt SearchOptions) []Assignment {
	var out []Assignment
	mutate := func(i int, f func(*Assignment)) {
		n := a.Clone()
		f(&n)
		if n[i].Start+n[i].Factor <= opt.MaxDisks {
			out = append(out, n)
		}
	}
	for i := range a {
		for _, u := range opt.Units {
			if u != a[i].Unit {
				mutate(i, func(n *Assignment) { (*n)[i].Unit = u })
			}
		}
		for _, f := range opt.Factors {
			if f != a[i].Factor {
				mutate(i, func(n *Assignment) { (*n)[i].Factor = f })
			}
		}
		if a[i].Start > 0 {
			mutate(i, func(n *Assignment) { (*n)[i].Start-- })
		}
		mutate(i, func(n *Assignment) { (*n)[i].Start++ })
	}
	return out
}

// SearchIn runs the parallel beam search over per-array stripe parameters
// within one phase (WholeProgram for the whole program): seed with the
// declared layout and a uniform grid, then repeatedly score every
// one-parameter mutation of the beam (fanning over internal/conc),
// Pareto-prune on (T-TPM, T-DRPM), and keep the best BeamWidth survivors,
// stopping when a round improves nothing or MaxRounds is reached. The
// result is bit-identical at any Jobs value: scores are pure functions of
// the candidate, candidates are generated and deduplicated in
// deterministic order, and the beam sort breaks all ties.
func (e *Engine) SearchIn(phase int, opt SearchOptions) (*SearchResult, error) {
	opt = opt.withDefaults()
	if opt.Jobs < 0 {
		return nil, fmt.Errorf("layoutopt: Jobs %d must be >= 0 (0 selects GOMAXPROCS, 1 forces the serial path)", opt.Jobs)
	}
	sp := opt.Span.Child("layout-search")
	defer sp.End()
	hits0, misses0 := e.CacheStats()
	res := &SearchResult{}
	visited := map[string]bool{}

	// Live progress counters (nil handles when no registry is configured).
	var mRounds, mCand *metrics.Counter
	if opt.Metrics != nil {
		mRounds = opt.Metrics.Counter(metricSearchRounds, "beam search expansion rounds run")
		mCand = opt.Metrics.Counter(metricSearchCandidates, "beam search candidates processed")
		// The cache and scored counts are deltas over the engine's own
		// counters; they are published once at the end of the search.
		defer func() {
			hits1, misses1 := e.CacheStats()
			opt.Metrics.Counter(metricSearchCacheHits, "score-cache hits during beam searches").Add(float64(hits1 - hits0))
			opt.Metrics.Counter(metricSearchScored, "candidates actually scored (cache misses)").Add(float64(misses1 - misses0))
		}()
	}

	// score evaluates a batch of unvisited candidates in slot order.
	score := func(batch []Assignment, round *obs.Span) ([]*Score, error) {
		out := make([]*Score, len(batch))
		err := conc.ForEach(context.Background(), len(batch), opt.Jobs, func(_ context.Context, i int) error {
			ssp := round.Child("score")
			defer ssp.End()
			sc, err := e.ScoreLite(phase, batch[i])
			if err != nil {
				return err
			}
			ssp.SetAttr("key", sc.Key)
			out[i] = sc
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Candidates += len(batch)
		mCand.Add(float64(len(batch)))
		return out, nil
	}

	// filterNew keeps candidates whose canonical key is unseen, marking
	// them seen — deterministic because the batch order is deterministic.
	filterNew := func(batch []Assignment) []Assignment {
		var out []Assignment
		for _, a := range batch {
			k := e.canonKey(phase, a)
			if visited[k] {
				continue
			}
			visited[k] = true
			out = append(out, a)
		}
		return out
	}

	rsp := sp.Child("beam-round")
	rsp.SetAttr("round", "seed")
	beam, err := score(filterNew(e.seeds(opt)), rsp)
	rsp.End()
	if err != nil {
		return nil, err
	}
	beam = pruneDominated(beam)
	sortBeam(beam)
	if len(beam) > opt.BeamWidth {
		beam = beam[:opt.BeamWidth]
	}
	if len(beam) == 0 {
		return nil, fmt.Errorf("layoutopt: empty seed beam")
	}

	for round := 0; round < opt.MaxRounds; round++ {
		var batch []Assignment
		for _, s := range beam {
			batch = append(batch, e.neighbors(s.Assignment, opt)...)
		}
		batch = filterNew(batch)
		if len(batch) == 0 {
			break
		}
		rsp := sp.Child("beam-round")
		rsp.SetAttr("round", strconv.Itoa(round))
		rsp.SetAttr("candidates", strconv.Itoa(len(batch)))
		scored, err := score(batch, rsp)
		rsp.End()
		if err != nil {
			return nil, err
		}
		res.Rounds++
		mRounds.Inc()
		prevBest := beam[0].Best()
		pool := append(beam, scored...)
		pool = pruneDominated(pool)
		sortBeam(pool)
		if len(pool) > opt.BeamWidth {
			pool = pool[:opt.BeamWidth]
		}
		beam = pool
		if !(beam[0].Best() < prevBest) {
			break
		}
	}

	// Backfill Base energies for the survivors (deferred by ScoreLite).
	for _, s := range beam {
		if _, err := e.ScoreIn(phase, s.Assignment); err != nil {
			return nil, err
		}
	}
	res.Beam = beam
	res.Best = beam[0]
	hits1, misses1 := e.CacheStats()
	res.CacheHits = hits1 - hits0
	res.CacheMisses = misses1 - misses0
	res.Scored = int(res.CacheMisses)
	sp.SetAttr("candidates", strconv.Itoa(res.Candidates))
	sp.SetAttr("best", res.Best.Key)
	return res, nil
}

// Search runs SearchIn over the whole program.
func (e *Engine) Search(opt SearchOptions) (*SearchResult, error) {
	return e.SearchIn(WholeProgram, opt)
}
