package layoutopt

import (
	"strings"
	"testing"

	"diskreuse/internal/apps"
)

func TestEvaluateTiny(t *testing.T) {
	a, err := apps.ByName("FFT", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(a, Candidate{Unit: 32 << 10, Factor: 4, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseEnergy <= 0 || r.TTPMEnergy <= 0 || r.TDRPMEnergy <= 0 {
		t.Fatalf("bad energies: %+v", r)
	}
	if r.Runs <= 0 {
		t.Errorf("runs = %d", r.Runs)
	}
	if r.Best() > r.TTPMEnergy || r.Best() > r.TDRPMEnergy {
		t.Errorf("Best() = %v not the minimum of %v/%v", r.Best(), r.TTPMEnergy, r.TDRPMEnergy)
	}
}

func TestOptimizePicksMinimum(t *testing.T) {
	a, err := apps.ByName("RSense", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{
		{Unit: 32 << 10, Factor: 2},
		{Unit: 32 << 10, Factor: 4},
		{Unit: 64 << 10, Factor: 4},
	}
	best, all, err := Optimize(a, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(cands) {
		t.Fatalf("evaluated %d of %d", len(all), len(cands))
	}
	for _, r := range all {
		if best.Best() > r.Best() {
			t.Errorf("best %v is worse than candidate %v", best, r)
		}
	}
	if _, _, err := Optimize(a, []Candidate{}); err == nil {
		t.Error("empty candidate list must fail")
	}
}

func TestReport(t *testing.T) {
	a, err := apps.ByName("Cholesky", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Report(&b, a); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Cholesky", "unit=32KB factor=8", "<== best", "T-DRPM (J)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultCandidates(t *testing.T) {
	cs := DefaultCandidates()
	if len(cs) != 32 {
		t.Fatalf("candidates = %d", len(cs))
	}
	seen := map[Candidate]bool{}
	starts := map[int]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
		starts[c.Start] = true
		if c.Unit < 16<<10 || c.Factor < 2 {
			t.Errorf("implausible candidate %v", c)
		}
	}
	// Regression: the generator used to pin Start to 0, so the start-disk
	// dimension of the space was silently never explored.
	if !starts[0] || !starts[1] || len(starts) != 2 {
		t.Fatalf("start disks covered = %v, want {0, 1}", starts)
	}
}

func TestEvaluateRejectsBadCandidate(t *testing.T) {
	a, err := apps.ByName("SCF", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Stripe unit below the page size is rejected by the layout.
	if _, err := Evaluate(a, Candidate{Unit: 1 << 10, Factor: 2}); err == nil {
		t.Error("sub-page stripe unit must fail")
	}
	// An Optimize run over a list containing a bad candidate fails loudly.
	if _, _, err := Optimize(a, []Candidate{{Unit: 1 << 10, Factor: 2}}); err == nil {
		t.Error("Optimize must propagate candidate errors")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Unit: 64 << 10, Factor: 4, Start: 1}
	if got := c.String(); got != "unit=64KB factor=4 start=1" {
		t.Errorf("String = %q", got)
	}
}
