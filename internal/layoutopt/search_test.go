package layoutopt

import (
	"fmt"
	"strings"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/drlgen"
	"diskreuse/internal/metrics"
)

// smallSearch keeps determinism tests cheap: a reduced menu and beam.
func smallSearch(jobs int) SearchOptions {
	return SearchOptions{
		Units:     []int64{16 << 10, 64 << 10},
		Factors:   []int{2, 4},
		MaxDisks:  6,
		BeamWidth: 4,
		MaxRounds: 3,
		Jobs:      jobs,
	}
}

// beamFingerprint renders a beam for bit-identity comparison: every survivor's
// canonical key and all its energies.
func beamFingerprint(res *SearchResult) string {
	var b strings.Builder
	for _, s := range res.Beam {
		fmt.Fprintf(&b, "%s base=%x ttpm=%x tdrpm=%x runs=%d disks=%d\n",
			s.Key, s.BaseEnergy, s.TTPMEnergy, s.TDRPMEnergy, s.Runs, s.NumDisks)
	}
	return b.String()
}

// TestSearchDeterministicAcrossJobs pins the ISSUE's determinism contract:
// Jobs=1 and Jobs=8 beam searches produce bit-identical beams — keys,
// energies, run counts — on real applications and on generated programs.
func TestSearchDeterministicAcrossJobs(t *testing.T) {
	score := func(a apps.App, phase int) (serial, parallel string) {
		t.Helper()
		e1, err := NewEngine(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := e1.SearchIn(phase, smallSearch(1))
		if err != nil {
			t.Fatal(err)
		}
		e8, err := NewEngine(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := e8.SearchIn(phase, smallSearch(8))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Rounds != r8.Rounds || r1.Candidates != r8.Candidates {
			t.Errorf("%s: search shape diverged: rounds %d/%d candidates %d/%d",
				a.Name, r1.Rounds, r8.Rounds, r1.Candidates, r8.Candidates)
		}
		return beamFingerprint(r1), beamFingerprint(r8)
	}
	for _, name := range []string{"fft", "visuo"} {
		a, err := apps.ByName(name, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		s, p := score(a, WholeProgram)
		if s != p {
			t.Errorf("%s: beams diverged across Jobs\nserial:\n%s\nparallel:\n%s", name, s, p)
		}
		s, p = score(a, 0)
		if s != p {
			t.Errorf("%s phase 0: beams diverged across Jobs\nserial:\n%s\nparallel:\n%s", name, s, p)
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		c := drlgen.Generate(seed, drlgen.Config{})
		a := apps.App{Name: fmt.Sprintf("drlgen-%d", seed), Source: c.Source, ComputePerIter: 1e-3}
		s, p := score(a, WholeProgram)
		if s != p {
			t.Errorf("seed %d: beams diverged across Jobs\nserial:\n%s\nparallel:\n%s", seed, s, p)
		}
	}
}

// TestSearchSurvivorsExact verifies every beam survivor of a real search
// against the independent full pipeline — the acceptance gate that the fast
// scorer never misranks what it reports.
func TestSearchSurvivorsExact(t *testing.T) {
	a, err := apps.ByName("cholesky", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(smallSearch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beam) == 0 {
		t.Fatal("empty beam")
	}
	for _, s := range res.Beam {
		want := evaluateAssignment(t, a, s.Assignment)
		if s.BaseEnergy != want.BaseEnergy || s.TTPMEnergy != want.TTPMEnergy ||
			s.TDRPMEnergy != want.TDRPMEnergy || s.Runs != want.Runs {
			t.Errorf("survivor %s diverged from full pipeline\ngot  %+v\nwant %+v", s.Key, s, want)
		}
	}
}

// TestDominance unit-tests the Pareto pruning rule.
func TestDominance(t *testing.T) {
	mk := func(tpm, drpm float64, key string) *Score {
		return &Score{Key: key, TTPMEnergy: tpm, TDRPMEnergy: drpm}
	}
	a := mk(10, 20, "a")
	b := mk(10, 25, "b") // dominated by a (equal TPM, worse DRPM)
	c := mk(5, 30, "c")  // incomparable with a
	d := mk(10, 20, "d") // equal to a: neither dominates
	if !dominated(b, a) || dominated(a, b) {
		t.Error("b must be dominated by a")
	}
	if dominated(c, a) || dominated(a, c) {
		t.Error("a and c are incomparable")
	}
	if dominated(a, d) || dominated(d, a) {
		t.Error("equal scores must not dominate each other")
	}
	pruned := pruneDominated([]*Score{a, b, c, d})
	if len(pruned) != 3 || pruned[0] != a || pruned[1] != c || pruned[2] != d {
		keys := make([]string, len(pruned))
		for i, s := range pruned {
			keys[i] = s.Key
		}
		t.Errorf("pruned = %v, want [a c d]", keys)
	}
}

// TestSortBeamTieBreak pins the deterministic ordering.
func TestSortBeamTieBreak(t *testing.T) {
	mk := func(tpm, drpm float64, key string) *Score {
		return &Score{Key: key, TTPMEnergy: tpm, TDRPMEnergy: drpm}
	}
	beam := []*Score{
		mk(10, 8, "z"), // Best 8
		mk(8, 10, "y"), // Best 8, lower TTPM
		mk(8, 10, "x"), // identical to y except key
		mk(7, 99, "w"), // Best 7
	}
	sortBeam(beam)
	got := []string{beam[0].Key, beam[1].Key, beam[2].Key, beam[3].Key}
	want := []string{"w", "x", "y", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortBeam order = %v, want %v", got, want)
		}
	}
}

// TestSearchVisitedDedup pins that equivalent candidates are only processed
// once per search: with factor menus that canonically collide, Candidates
// stays below the raw enumeration count and no key is scored twice.
func TestSearchVisitedDedup(t *testing.T) {
	a, err := apps.ByName("ast", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(smallSearch(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every processed candidate was either a cache miss (scored once) or a
	// hit from a previous search; within one fresh search, hits can only
	// come from ScoreIn backfills of already-scored survivors.
	if res.CacheMisses != int64(res.Candidates) {
		t.Errorf("candidates=%d misses=%d: visited dedup failed (a key was re-processed)",
			res.Candidates, res.CacheMisses)
	}
	if res.Scored != res.Candidates {
		t.Errorf("Scored = %d, want %d", res.Scored, res.Candidates)
	}
	if res.CacheHits != int64(len(res.Beam)) {
		t.Errorf("hits=%d, want one backfill hit per survivor (%d)", res.CacheHits, len(res.Beam))
	}
}

// TestSearchRejections pins option validation and error propagation.
func TestSearchRejections(t *testing.T) {
	a, err := apps.ByName("fft", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(SearchOptions{Jobs: -1}); err == nil ||
		!strings.Contains(err.Error(), "must be >= 0") {
		t.Errorf("negative Jobs: err = %v", err)
	}
	// A menu with a sub-page unit fails inside the scorer and must surface.
	if _, err := e.Search(SearchOptions{Units: []int64{1 << 10}, Jobs: 1}); err == nil {
		t.Error("sub-page unit menu must propagate the scoring error")
	}
}

// A search with a metrics registry publishes progress counters that
// reconcile with the SearchResult, and the beam itself stays bit-identical
// to a metrics-free search.
func TestSearchMetrics(t *testing.T) {
	a, err := apps.ByName("cholesky", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	ePlain, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := ePlain.SearchIn(WholeProgram, smallSearch(4))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	eLive, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallSearch(4)
	opt.Metrics = reg
	rLive, err := eLive.SearchIn(WholeProgram, opt)
	if err != nil {
		t.Fatal(err)
	}

	if beamFingerprint(rPlain) != beamFingerprint(rLive) {
		t.Error("beam differs with metrics enabled")
	}
	if v, _ := reg.Value("layoutopt_beam_rounds_total"); v != float64(rLive.Rounds) {
		t.Errorf("rounds counter = %v, want %d", v, rLive.Rounds)
	}
	if v, _ := reg.Value("layoutopt_candidates_total"); v != float64(rLive.Candidates) {
		t.Errorf("candidates counter = %v, want %d", v, rLive.Candidates)
	}
	if v, _ := reg.Value("layoutopt_candidates_scored_total"); v != float64(rLive.Scored) {
		t.Errorf("scored counter = %v, want %d", v, rLive.Scored)
	}
	if v, _ := reg.Value("layoutopt_score_cache_hits_total"); v != float64(rLive.CacheHits) {
		t.Errorf("cache-hit counter = %v, want %d", v, rLive.CacheHits)
	}
}
