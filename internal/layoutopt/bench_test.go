package layoutopt

import (
	"testing"
	"time"

	"diskreuse/internal/apps"
)

// benchApp builds the FFT Small engine once per benchmark.
func benchApp(b *testing.B) (apps.App, *Engine) {
	b.Helper()
	a, err := apps.ByName("fft", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	return a, e
}

// BenchmarkEvaluateFull is the baseline the engine is measured against: the
// full compile→restructure→generate→simulate pipeline per candidate.
func BenchmarkEvaluateFull(b *testing.B) {
	a, _ := benchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(a, Candidate{Unit: 64 << 10, Factor: 4, Start: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineColdSchedule scores candidates whose schedules are all new:
// every iteration re-derives the primary vector, reruns the Fig. 3
// scheduler, regenerates the abstract trace, and replays both policies.
func BenchmarkEngineColdSchedule(b *testing.B) {
	_, e := benchApp(b)
	n := e.NumArrays()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct stripe units (any page multiple) make distinct schedules.
		u := int64(16<<10) + int64(i)*e.pageSize
		if _, err := e.ScoreLite(WholeProgram, Uniform(n, Candidate{Unit: u, Factor: 4, Start: 0})); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReattributed is the hot path the tentpole names: candidates
// that share a memoized schedule (only non-primary arrays' specs change), so
// scoring is re-attribution plus two cached per-disk replays.
func BenchmarkEngineReattributed(b *testing.B) {
	a, err := apps.ByName("scf", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	free := -1
	for i, in := range e.firstIn[0] {
		if !in {
			free = i
			break
		}
	}
	if free < 0 {
		b.Fatal("no non-primary array to vary")
	}
	base := Uniform(e.NumArrays(), Candidate{Unit: 32 << 10, Factor: 4, Start: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specs := base.Clone()
		specs[free].Unit = int64(16<<10) + int64(i)*e.pageSize
		if _, err := e.ScoreLite(WholeProgram, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCacheHit scores one candidate repeatedly: pure LRU lookups.
func BenchmarkEngineCacheHit(b *testing.B) {
	_, e := benchApp(b)
	specs := Uniform(e.NumArrays(), Candidate{Unit: 64 << 10, Factor: 4, Start: 0})
	if _, err := e.ScoreLite(WholeProgram, specs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ScoreLite(WholeProgram, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReattributedScorerFaster is the CI bench smoke: in the re-attribution
// regime — the schedule memo hits and a candidate costs one disk re-mapping
// plus two (partially cached) replays — the engine must score candidates at
// least 10x faster than the full per-candidate pipeline (compile,
// restructure, generate, simulate). Measured on this workload the gap is
// ~17x; 10x leaves slack for a noisy shared runner.
func TestReattributedScorerFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	a, err := apps.ByName("scf", apps.Default)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// SCF has arrays that never appear as an iteration's first reference;
	// varying only their specs keeps the schedule memoized, so scoring is
	// re-attribution only.
	free := -1
	for i, in := range e.firstIn[0] {
		if !in {
			free = i
			break
		}
	}
	if free < 0 {
		t.Fatal("no non-primary array to vary")
	}
	base := Uniform(e.NumArrays(), Candidate{Unit: 32 << 10, Factor: 4, Start: 0})
	if _, err := e.ScoreLite(WholeProgram, base); err != nil {
		t.Fatal(err) // warms the schedule memo
	}
	// Per-iteration minima filter out scheduler noise on shared runners.
	const kFast = 20
	fast := time.Duration(1<<62 - 1)
	for i := 0; i < kFast; i++ {
		specs := base.Clone()
		// Units disjoint from base's 32K, so every score is a cache miss
		// resolved by re-attribution over the memoized schedule.
		specs[free].Unit = int64(136<<10) + int64(i)*e.pageSize
		t0 := time.Now()
		if _, err := e.ScoreLite(WholeProgram, specs); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < fast {
			fast = d
		}
	}
	const kFull = 3
	full := time.Duration(1<<62 - 1)
	for i := 0; i < kFull; i++ {
		t0 := time.Now()
		if _, err := Evaluate(a, Candidate{Unit: 32 << 10, Factor: 4, Start: 0}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < full {
			full = d
		}
	}
	t.Logf("reattribution-only=%s full-pipeline=%s speedup=%.1fx", fast, full, float64(full)/float64(fast))
	if fast*10 > full {
		t.Errorf("re-attribution scoring %s not 10x faster than full pipeline %s", fast, full)
	}
}
