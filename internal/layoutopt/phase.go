package layoutopt

import (
	"fmt"
	"strconv"

	"diskreuse/internal/obs"
	"diskreuse/internal/sim"
)

// PhaseOptions configures the phase-aware reconfiguration search.
type PhaseOptions struct {
	// Search configures the per-phase beam searches (and the static
	// whole-program search the reconfiguration is compared against).
	Search SearchOptions
	// TopK is how many survivors each phase contributes to the shared
	// candidate pool the plan is chosen from (default 4).
	TopK int
	// MigrateJPerByte is the energy charged per byte moved when an array's
	// layout changes at a phase boundary. Zero selects the model-derived
	// default: reading and rewriting every page at full-speed active power,
	// 2 × PowerActive × FullSpeedService(page) / page joules per byte.
	MigrateJPerByte float64
	// Span, when non-nil, receives a "phase-search" child span.
	Span *obs.Span
}

// PhasePlan is one policy's reconfiguration plan: the layout chosen for
// each phase, the migration bill, and the comparison against the best
// static (single-layout) plan under the same per-phase accounting.
type PhasePlan struct {
	Policy sim.Policy
	// Keys[p] / Layouts[p] identify the layout phase p runs under.
	Keys    []string
	Layouts []Assignment
	// PhaseEnergy[p] is phase p's transformed energy under Layouts[p].
	PhaseEnergy []float64
	// MigrationJ is the total energy charged for reconfigurations.
	MigrationJ float64
	// TotalEnergy = sum(PhaseEnergy) + MigrationJ.
	TotalEnergy float64
	// StaticKey and StaticEnergy describe the best single layout held for
	// the whole program (no migrations), scored with the same per-phase
	// accounting, so the two totals are directly comparable.
	StaticKey    string
	StaticEnergy float64
	// Reconfigures counts phase boundaries where the layout changes.
	Reconfigures int
	// Wins reports TotalEnergy < StaticEnergy.
	Wins bool
}

// PhaseResult reports a phase-aware search.
type PhaseResult struct {
	Phases int
	// Static is the whole-program search the phase plans are measured
	// against.
	Static *SearchResult
	// PerPhase[p] is phase p's beam search.
	PerPhase []*SearchResult
	// TPM and DRPM are the per-policy reconfiguration plans.
	TPM  *PhasePlan
	DRPM *PhasePlan
	// Candidates is the size of the pooled per-phase candidate set.
	Candidates int
}

// DefaultMigrateJPerByte returns the model-derived migration energy rate.
func (e *Engine) DefaultMigrateJPerByte() float64 {
	p := e.pageSize
	return 2 * e.Model.PowerActive * e.Model.FullSpeedService(p) / float64(p)
}

// migrationCost returns the energy to reconfigure from to's predecessor
// layout: every array whose canonical spec changes is rewritten in full.
func (e *Engine) migrationCost(from, to Assignment, jPerByte float64) float64 {
	bytes := int64(0)
	for i := range from {
		if e.canonSpec(i, from[i]) != e.canonSpec(i, to[i]) {
			bytes += e.arrayBytes[i]
		}
	}
	return float64(bytes) * jPerByte
}

// PhaseSearch splits the program at nest boundaries, runs a beam search
// per phase, and chooses — per policy — the energy-minimal sequence of
// per-phase layouts under the migration-cost model, reporting whether
// reconfiguring between phases beats holding the best static layout.
//
// Cross-phase dependences always point forward in program order, so any
// per-phase restructured order with phase barriers between them is a legal
// whole-program order; per-phase energies use per-phase clocks (each phase
// starts with spun-up, idle disks), and the static plan is scored with the
// same accounting so the comparison is internally consistent.
func (e *Engine) PhaseSearch(opt PhaseOptions) (*PhaseResult, error) {
	if opt.TopK <= 0 {
		opt.TopK = 4
	}
	if opt.MigrateJPerByte == 0 {
		opt.MigrateJPerByte = e.DefaultMigrateJPerByte()
	}
	sp := opt.Span.Child("phase-search")
	defer sp.End()
	search := opt.Search
	search.Span = sp

	static, err := e.Search(search)
	if err != nil {
		return nil, err
	}
	res := &PhaseResult{Phases: e.numNests, Static: static}

	// Pool the candidates every plan may pick from: each phase's TopK
	// survivors, the static winner, and the declared layout. The pool is
	// deduplicated by whole-program canonical key in deterministic order.
	pool := []Assignment{static.Best.Assignment, e.Declared()}
	res.PerPhase = make([]*SearchResult, e.numNests)
	for p := 0; p < e.numNests; p++ {
		pr, err := e.SearchIn(p, search)
		if err != nil {
			return nil, err
		}
		res.PerPhase[p] = pr
		for k := 0; k < opt.TopK && k < len(pr.Beam); k++ {
			pool = append(pool, pr.Beam[k].Assignment)
		}
	}
	seen := map[string]bool{}
	cands := pool[:0]
	for _, a := range pool {
		k := e.canonKey(WholeProgram, a)
		if seen[k] {
			continue
		}
		seen[k] = true
		cands = append(cands, a)
	}
	res.Candidates = len(cands)

	// Score every pooled candidate in every phase (the score cache absorbs
	// repeats), then run the per-policy DP over phase sequences.
	energy := make([][]*Score, e.numNests)
	for p := 0; p < e.numNests; p++ {
		energy[p] = make([]*Score, len(cands))
		for c, a := range cands {
			sc, err := e.ScoreIn(p, a)
			if err != nil {
				return nil, err
			}
			energy[p][c] = sc
		}
	}
	for _, pol := range []sim.Policy{sim.TPM, sim.DRPM} {
		plan, err := e.phasePlan(pol, cands, energy, opt.MigrateJPerByte)
		if err != nil {
			return nil, err
		}
		if pol == sim.TPM {
			res.TPM = plan
		} else {
			res.DRPM = plan
		}
	}
	sp.SetAttr("phases", strconv.Itoa(e.numNests))
	sp.SetAttr("pool", strconv.Itoa(len(cands)))
	return res, nil
}

// phasePlan runs the dynamic program for one policy: minimize
// sum(phase energy) + sum(migration) over per-phase choices from cands.
func (e *Engine) phasePlan(pol sim.Policy, cands []Assignment, energy [][]*Score, jPerByte float64) (*PhasePlan, error) {
	nPhases := len(energy)
	nCands := len(cands)
	if nPhases == 0 || nCands == 0 {
		return nil, fmt.Errorf("layoutopt: phase plan needs phases and candidates")
	}
	polEnergy := func(sc *Score) float64 {
		if pol == sim.TPM {
			return sc.TTPMEnergy
		}
		return sc.TDRPMEnergy
	}
	// cost[c] is the best total for phases 0..p ending on candidate c;
	// choice[p][c] is the predecessor candidate that achieves it.
	cost := make([]float64, nCands)
	choice := make([][]int, nPhases)
	for c := 0; c < nCands; c++ {
		cost[c] = polEnergy(energy[0][c])
	}
	for p := 1; p < nPhases; p++ {
		choice[p] = make([]int, nCands)
		next := make([]float64, nCands)
		for c := 0; c < nCands; c++ {
			bestPrev, bestCost := -1, 0.0
			for prev := 0; prev < nCands; prev++ {
				t := cost[prev] + e.migrationCost(cands[prev], cands[c], jPerByte)
				// Strict improvement keeps the lowest candidate index on
				// ties, so the plan is deterministic.
				if bestPrev < 0 || t < bestCost {
					bestPrev, bestCost = prev, t
				}
			}
			choice[p][c] = bestPrev
			next[c] = bestCost + polEnergy(energy[p][c])
		}
		cost = next
	}
	endC := 0
	for c := 1; c < nCands; c++ {
		if cost[c] < cost[endC] {
			endC = c
		}
	}
	seq := make([]int, nPhases)
	seq[nPhases-1] = endC
	for p := nPhases - 1; p > 0; p-- {
		seq[p-1] = choice[p][seq[p]]
	}

	plan := &PhasePlan{Policy: pol}
	plan.Keys = make([]string, nPhases)
	plan.Layouts = make([]Assignment, nPhases)
	plan.PhaseEnergy = make([]float64, nPhases)
	for p, c := range seq {
		plan.Layouts[p] = cands[c].Clone()
		plan.Keys[p] = energy[p][c].Key
		plan.PhaseEnergy[p] = polEnergy(energy[p][c])
		plan.TotalEnergy += plan.PhaseEnergy[p]
		if p > 0 {
			m := e.migrationCost(cands[seq[p-1]], cands[c], jPerByte)
			plan.MigrationJ += m
			plan.TotalEnergy += m
			if m > 0 {
				plan.Reconfigures++
			}
		}
	}
	// Static baseline: the best single candidate held across all phases,
	// no migrations, same per-phase accounting.
	staticC, staticE := -1, 0.0
	for c := 0; c < nCands; c++ {
		t := 0.0
		for p := 0; p < nPhases; p++ {
			t += polEnergy(energy[p][c])
		}
		if staticC < 0 || t < staticE {
			staticC, staticE = c, t
		}
	}
	plan.StaticKey = e.canonKey(WholeProgram, cands[staticC])
	plan.StaticEnergy = staticE
	plan.Wins = plan.TotalEnergy < plan.StaticEnergy
	return plan, nil
}
