package layoutopt

import "container/list"

// lruCache is a small string-keyed LRU used for candidate scores and for
// memoized restructured schedules. Both caches are keyed by canonical
// layout text (see canonKey), so permuted-but-equivalent layouts — e.g.
// candidates whose stripe units differ only beyond an array's extent, or
// factor-1 stripings with different units — deliberately collide and share
// one entry. Callers guard it with the engine mutex; the cache itself is
// not concurrency-safe.
type lruCache struct {
	cap int
	m   map[string]*list.Element
	l   *list.List
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, m: make(map[string]*list.Element, capacity), l: list.New()}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) add(key string, val any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.l.MoveToFront(el)
		return
	}
	if c.l.Len() >= c.cap {
		back := c.l.Back()
		delete(c.m, back.Value.(*lruEntry).key)
		c.l.Remove(back)
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, val: val})
}

// len returns the number of resident entries.
func (c *lruCache) len() int { return c.l.Len() }
