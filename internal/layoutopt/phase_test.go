package layoutopt

import (
	"fmt"
	"strings"
	"testing"

	"diskreuse/internal/apps"
)

// threePhaseDecls and threePhaseNests compose a three-phase, two-array
// program used for per-phase exactness: each phase both as part of the
// combined program and as a standalone single-nest program.
const threePhaseDecls = `
array X[64][8] elem 4096 stripe(unit=32K, factor=2, start=0)
array Y[32][16] elem 4096 stripe(unit=16K, factor=4, start=1)
`

var threePhaseNests = []string{`
nest P0 {
  for i = 1 to 63 {
    for j = 0 to 7 {
      X[i][j] = X[i-1][j] + 1;
    }
  }
}
`, `
nest P1 {
  for i = 1 to 31 {
    for j = 0 to 15 {
      Y[i][j] = Y[i-1][j] + X[j][7];
    }
  }
}
`, `
nest P2 {
  for i = 0 to 31 {
    for j = 1 to 15 {
      Y[i][j] = Y[i][j-1] + X[i][0];
    }
  }
}
`}

// TestPhaseScoreExact pins per-phase exactness: the engine's ScoreIn over
// phase p of the combined program must equal the full pipeline run over a
// standalone program containing only that phase's nest — per-phase clocks
// restart, per-nest coalescing is independent, and intra-phase dependences
// are all a phase carries, so phase p in isolation is exactly phase p of
// the program.
func TestPhaseScoreExact(t *testing.T) {
	combined := apps.App{
		Name:           "three-phase",
		Source:         threePhaseDecls + strings.Join(threePhaseNests, ""),
		ComputePerIter: 1e-3,
	}
	e, err := NewEngine(combined, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPhases() != len(threePhaseNests) {
		t.Fatalf("phases = %d, want %d", e.NumPhases(), len(threePhaseNests))
	}
	n := e.NumArrays()
	stag := e.Declared()
	stag[0].Unit = 64 << 10
	stag[1].Factor = 3
	stag[1].Start = 2
	cases := []Assignment{
		e.Declared(),
		Uniform(n, Candidate{Unit: 32 << 10, Factor: 4, Start: 0}),
		Uniform(n, Candidate{Unit: 64 << 10, Factor: 2, Start: 1}),
		stag,
	}
	for p := 0; p < e.NumPhases(); p++ {
		standalone := apps.App{
			Name:           fmt.Sprintf("three-phase-p%d", p),
			Source:         threePhaseDecls + threePhaseNests[p],
			ComputePerIter: combined.ComputePerIter,
		}
		for ci, specs := range cases {
			want := evaluateAssignment(t, standalone, specs)
			got, err := e.ScoreIn(p, specs)
			if err != nil {
				t.Fatal(err)
			}
			if got.BaseEnergy != want.BaseEnergy || got.TTPMEnergy != want.TTPMEnergy ||
				got.TDRPMEnergy != want.TDRPMEnergy || got.Runs != want.Runs {
				t.Errorf("phase %d case %d: diverged from standalone pipeline\ngot  %+v\nwant %+v",
					p, ci, got, want)
			}
		}
	}
}

// TestMigrationCostModel pins the migration bill: only arrays whose
// canonical spec changes are charged, at bytes × rate.
func TestMigrationCostModel(t *testing.T) {
	a, err := apps.ByName("visuo", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := e.NumArrays()
	rate := e.DefaultMigrateJPerByte()
	if rate <= 0 {
		t.Fatalf("default migration rate = %v", rate)
	}
	from := Uniform(n, Candidate{Unit: 32 << 10, Factor: 4, Start: 0})
	// Identical layouts migrate nothing.
	if got := e.migrationCost(from, from.Clone(), rate); got != 0 {
		t.Errorf("self migration = %v", got)
	}
	// Changing one array charges exactly its bytes.
	to := from.Clone()
	to[1].Factor = 8
	want := float64(e.ArrayBytes(1)) * rate
	if got := e.migrationCost(from, to, rate); got != want {
		t.Errorf("one-array migration = %v, want %v", got, want)
	}
	// A canonically equivalent change (factor 1, any unit) is free.
	f1a := Uniform(n, Candidate{Unit: 16 << 10, Factor: 1, Start: 0})
	f1b := Uniform(n, Candidate{Unit: 128 << 10, Factor: 1, Start: 0})
	if got := e.migrationCost(f1a, f1b, rate); got != 0 {
		t.Errorf("canonically equivalent migration = %v, want 0", got)
	}
}

// TestPhaseSearchConsistency runs the phase-aware search end to end on FFT —
// whose two phases touch the same data symmetrically, so reconfiguring can
// never beat static — and checks the plan's internal accounting.
func TestPhaseSearchConsistency(t *testing.T) {
	a, err := apps.ByName("fft", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.PhaseSearch(PhaseOptions{Search: smallSearch(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != e.NumPhases() || len(res.PerPhase) != res.Phases {
		t.Fatalf("phases = %d / %d", res.Phases, len(res.PerPhase))
	}
	if res.Static == nil || res.Static.Best == nil {
		t.Fatal("missing static search")
	}
	for _, plan := range []*PhasePlan{res.TPM, res.DRPM} {
		if plan == nil {
			t.Fatal("missing plan")
		}
		total := plan.MigrationJ
		for p, pe := range plan.PhaseEnergy {
			if pe <= 0 {
				t.Errorf("policy %v phase %d energy = %v", plan.Policy, p, pe)
			}
			total += pe
		}
		if total != plan.TotalEnergy {
			t.Errorf("policy %v: TotalEnergy %v != parts %v", plan.Policy, plan.TotalEnergy, total)
		}
		// The plan can never be worse than static: holding the static winner
		// in every phase is always an available choice with zero migration.
		if plan.TotalEnergy > plan.StaticEnergy {
			t.Errorf("policy %v: plan %v worse than static %v", plan.Policy, plan.TotalEnergy, plan.StaticEnergy)
		}
		if plan.Wins != (plan.TotalEnergy < plan.StaticEnergy) {
			t.Errorf("policy %v: Wins flag inconsistent", plan.Policy)
		}
		// FFT's phases are symmetric: the same layout is optimal for both, so
		// the plan must not pay for a migration.
		if plan.MigrationJ != 0 || plan.Reconfigures != 0 {
			t.Errorf("policy %v: symmetric phases reconfigured (%d, %v J)",
				plan.Policy, plan.Reconfigures, plan.MigrationJ)
		}
	}
}

// twoPhaseSource is a program built so no single layout suits both phases.
// A is 256×16 pages. The row sweep carries a global dependence chain —
// every iteration also reads the previous row's last element — so the
// Fig. 3 scheduler cannot reorder it and the layout alone decides the disk
// run structure: a large unit yields long single-disk runs (the other
// disks sleep), a 16 KB unit cycles all four disks every 16 pages and
// keeps them all spinning. The column sweep strides 16 pages per step in
// column chains: under 16 KB each column lands entirely on one disk
// ((16i+j)/4 mod 4 = j/4 mod 4) and columns cluster perfectly, while
// under larger units the disk alternates down every column. Reconfiguring
// between the two units costs one rewrite of A but saves most of a phase
// of idle power.
const twoPhaseSource = `
array A[256][16] elem 4096 stripe(unit=64K, factor=4, start=0)

nest RowSweep {
  for i = 1 to 255 {
    for j = 1 to 15 {
      A[i][j] = A[i][j-1] + A[i-1][15];
    }
  }
}

nest ColSweep {
  for j = 0 to 15 {
    for i = 1 to 255 {
      A[i][j] = A[i-1][j] + 1;
    }
  }
}
`

// TestPhaseSearchReconfigurationWins demonstrates the phase-aware payoff on
// a two-phase program whose access patterns demand different layouts: the
// reconfiguration plan must beat the best static layout even after paying
// the migration bill.
func TestPhaseSearchReconfigurationWins(t *testing.T) {
	a := apps.App{Name: "two-phase", Source: twoPhaseSource, ComputePerIter: 8e-3}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPhases() != 2 {
		t.Fatalf("phases = %d, want 2", e.NumPhases())
	}
	// The disk array's width is fixed at four: the search varies unit and
	// start within it, the scenario where reconfiguration pays (shrinking
	// the factor instead collapses every phase onto fewer disks and hides
	// the per-phase pattern mismatch the demo is about).
	res, err := e.PhaseSearch(PhaseOptions{Search: SearchOptions{
		Factors:  []int{4},
		MaxDisks: 4,
		Jobs:     1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	won := false
	for _, plan := range []*PhasePlan{res.TPM, res.DRPM} {
		t.Logf("policy=%v total=%.2f (migration=%.2f, reconfigures=%d) static=%.2f wins=%v",
			plan.Policy, plan.TotalEnergy, plan.MigrationJ, plan.Reconfigures,
			plan.StaticEnergy, plan.Wins)
		if plan.Wins {
			won = true
			if plan.Reconfigures == 0 {
				t.Errorf("policy %v wins without reconfiguring", plan.Policy)
			}
			if plan.MigrationJ <= 0 {
				t.Errorf("policy %v wins with no migration bill", plan.Policy)
			}
		}
	}
	if !won {
		t.Error("no policy's reconfiguration plan beat the best static layout")
	}
}
