package layoutopt

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"diskreuse/internal/apps"
	"diskreuse/internal/ast"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/layout"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// Assignment gives every array of the program its own stripe spec, indexed
// by sema.Array.Index — the per-array layout space the search explores
// (Son et al.'s per-array layouts rather than one uniform striping).
type Assignment []ast.StripeSpec

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// NumDisks returns the number of I/O nodes the assignment spans — the same
// max(start+factor) rule layout.New applies.
func (a Assignment) NumDisks() int {
	n := 0
	for _, s := range a {
		if end := s.Start + s.Factor; end > n {
			n = end
		}
	}
	return n
}

// Uniform builds the assignment that stripes all n arrays identically — the
// candidate space of the original uniform optimizer.
func Uniform(n int, c Candidate) Assignment {
	out := make(Assignment, n)
	for i := range out {
		out[i] = ast.StripeSpec{Unit: c.Unit, Factor: c.Factor, Start: c.Start}
	}
	return out
}

// Score is the evaluation of one assignment: the same three energies the
// full-pipeline Evaluate produces, plus the canonical key the score is
// cached under.
type Score struct {
	Assignment Assignment
	Key        string
	NumDisks   int
	// BaseEnergy is the untransformed, unmanaged (NoPM) energy.
	BaseEnergy float64
	// TTPMEnergy and TDRPMEnergy are the restructured energies.
	TTPMEnergy  float64
	TDRPMEnergy float64
	// Runs is the restructured schedule's disk-run count.
	Runs int

	// baseOnce guards the lazy BaseEnergy backfill (ScoreLite defers the
	// NoPM replay). Scores are shared pointers; do not copy them.
	baseOnce sync.Once
}

// Best returns the lower of the two transformed energies.
func (s *Score) Best() float64 {
	if s.TTPMEnergy < s.TDRPMEnergy {
		return s.TTPMEnergy
	}
	return s.TDRPMEnergy
}

// WholeProgram is the phase argument selecting the full iteration space.
const WholeProgram = -1

// schedEntry memoizes everything downstream of one restructured schedule:
// the abstract request trace (arrival/write/proc fixed, attribution open)
// and, per request, the array and within-array page byte offset that decide
// its disk under any candidate. Distinct assignments frequently share a
// schedule — the primary vector only sees arrays that ever come first in an
// iteration — so the entry is keyed by the primary-relevant sub-key and
// reused across them. The Reattributer pool hands each concurrent scorer
// its own scratch over the shared immutable trace.
type schedEntry struct {
	once sync.Once
	err  error

	reqs        []trace.Request
	reqArr      []int32
	reqPageByte []int64
	runs        int

	// scorers pools per-policy memoizing EnergyScorers over reqs; index is
	// the sim.Policy value. Scorers are single-goroutine, so each concurrent
	// score borrows one (with its accumulated per-disk replay cache) and
	// returns it.
	scorers [3]sync.Pool
}

func (en *schedEntry) diskOf(specs Assignment) func(i int) int {
	arr, off := en.reqArr, en.reqPageByte
	return func(i int) int {
		return layout.SpecDisk(specs[arr[i]], off[i])
	}
}

// Engine is the re-attribution-only layout scorer. It runs the front end
// once — parse, semantic analysis, iteration space, dependence graph — and
// sweeps the compiled access streams once into flat layout-independent
// tables. Scoring a candidate then touches none of that machinery: the
// primary-disk vector is re-derived with one SpecDisk per iteration, the
// Fig. 3 scheduler reruns over the cached dependence graph (memoized by
// primary sub-key), the abstract trace replays through sim.RunReattributed,
// and the finished Score lands in an LRU keyed by canonical layout text.
//
// Scores are bit-for-bit identical to the full compile→restructure→simulate
// pipeline (Evaluate): the abstract trace reproduces the generator's clock
// arithmetic exactly and re-attribution reproduces PageDisk exactly.
//
// The engine is safe for concurrent Score calls; the beam search fans
// scoring over internal/conc.
type Engine struct {
	App   apps.App
	R     *core.Restructurer
	Model disk.Model

	pageSize        int64
	computePerIter  float64
	serviceEstimate float64
	numArrays       int
	numNests        int
	arrayBytes      []int64

	// Per-iteration tables (layout-independent).
	nestOf    []int32
	firstArr  []int32 // array of the first (write-first compiled order) ref
	firstByte []int64 // byte offset of that element within its array

	// Flat per-access tables in (iteration, ref) order. An iteration's
	// accesses start at accBase[nest] + (id - NestFirst[nest]) * refsPerNest.
	accArr      []int32
	accPageByte []int64 // within-array byte offset of the page start
	accPacked   []int64 // layout-independent global page id (coalescing key)
	accWrite    []bool
	accBase     []int
	refsPerNest []int
	packedPages int64 // total packed pages across all arrays

	// firstIn[phase+1][arr] marks arrays appearing as some iteration's
	// first reference within the phase; index 0 is the whole program.
	firstIn [][]bool

	declared Assignment

	mu     sync.Mutex
	scores *lruCache // canonical key -> *Score
	scheds *lruCache // primary sub-key -> *schedEntry
	hits   atomic.Int64
	misses atomic.Int64

	// attPool recycles per-candidate attribution scratch (one carve feeds
	// both policy replays); Attribution.Build resizes across entries.
	attPool sync.Pool
}

// DefaultCacheSize bounds the score LRU (and the schedule memo).
const DefaultCacheSize = 4096

// NewEngine compiles the application once and builds the scorer.
// cacheSize <= 0 selects DefaultCacheSize.
func NewEngine(a apps.App, cacheSize int) (*Engine, error) {
	prog, err := a.Compile()
	if err != nil {
		return nil, err
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return nil, err
	}
	r, err := core.New(prog, lay)
	if err != nil {
		return nil, err
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	model := disk.Ultrastar36Z15()
	e := &Engine{
		App:             a,
		R:               r,
		Model:           model,
		pageSize:        lay.PageSize,
		computePerIter:  a.ComputePerIter,
		serviceEstimate: model.FullSpeedService(lay.PageSize),
		numArrays:       len(prog.Arrays),
		numNests:        len(prog.Nests),
		scores:          newLRUCache(cacheSize),
		scheds:          newLRUCache(max(64, cacheSize/4)),
	}
	e.declared = make(Assignment, e.numArrays)
	e.arrayBytes = make([]int64, e.numArrays)
	elemSize := make([]int64, e.numArrays)
	epp := make([]int64, e.numArrays)
	packedBase := make([]int64, e.numArrays)
	for _, arr := range prog.Arrays {
		i := arr.Index
		e.declared[i] = arr.Stripe
		e.arrayBytes[i] = arr.Bytes()
		elemSize[i] = arr.ElemSize
		epp[i] = lay.PageSize / arr.ElemSize
		packedBase[i] = e.packedPages
		e.packedPages += (arr.Bytes() + lay.PageSize - 1) / lay.PageSize
	}

	space := r.Space
	n := space.NumIterations()
	e.nestOf = make([]int32, n)
	e.firstArr = make([]int32, n)
	e.firstByte = make([]int64, n)
	e.accBase = make([]int, e.numNests)
	e.refsPerNest = make([]int, e.numNests)
	acc := space.AccessCount()
	e.accArr = make([]int32, 0, acc)
	e.accPageByte = make([]int64, 0, acc)
	e.accPacked = make([]int64, 0, acc)
	e.accWrite = make([]bool, 0, acc)
	e.firstIn = make([][]bool, e.numNests+1)
	for k := range e.firstIn {
		e.firstIn[k] = make([]bool, e.numArrays)
	}

	str := space.NewStreamer()
	for id := 0; id < n; id++ {
		refs, vals := str.Step(id)
		nest := str.Nest()
		e.nestOf[id] = int32(nest)
		if id == space.NestFirst[nest] {
			e.accBase[nest] = len(e.accArr)
			e.refsPerNest[nest] = len(refs)
		}
		ai0 := refs[0].ArrIdx
		e.firstArr[id] = int32(ai0)
		e.firstByte[id] = vals[0] * elemSize[ai0]
		e.firstIn[0][ai0] = true
		e.firstIn[nest+1][ai0] = true
		for j := range refs {
			ai := refs[j].ArrIdx
			pageIdx := vals[j] / epp[ai]
			e.accArr = append(e.accArr, int32(ai))
			e.accPageByte = append(e.accPageByte, pageIdx*e.pageSize)
			e.accPacked = append(e.accPacked, packedBase[ai]+pageIdx)
			e.accWrite = append(e.accWrite, refs[j].Write)
		}
	}
	return e, nil
}

// Declared returns the assignment the program's source declares.
func (e *Engine) Declared() Assignment { return e.declared.Clone() }

// NumArrays returns the number of arrays the program declares.
func (e *Engine) NumArrays() int { return e.numArrays }

// NumPhases returns the number of nests (the phase boundaries of the
// phase-aware search).
func (e *Engine) NumPhases() int { return e.numNests }

// ArrayBytes returns the byte size of array i (migration-cost input).
func (e *Engine) ArrayBytes(i int) int64 { return e.arrayBytes[i] }

// CacheStats returns the score cache's cumulative hit and miss counts.
func (e *Engine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// checkAssignment validates the candidate against the same constraints
// layout.New enforces (plus basic sanity on factor and start, which the
// parser normally guarantees).
func (e *Engine) checkAssignment(a Assignment) error {
	if len(a) != e.numArrays {
		return fmt.Errorf("layoutopt: assignment has %d specs for %d arrays", len(a), e.numArrays)
	}
	for i, s := range a {
		name := e.R.Prog.Arrays[i].Name
		if s.Unit <= 0 || s.Unit%e.pageSize != 0 {
			return fmt.Errorf("layout: array %s stripe unit %d not a multiple of page size %d",
				name, s.Unit, e.pageSize)
		}
		if s.Factor < 1 {
			return fmt.Errorf("layoutopt: array %s stripe factor %d must be >= 1", name, s.Factor)
		}
		if s.Start < 0 {
			return fmt.Errorf("layoutopt: array %s start disk %d must be >= 0", name, s.Start)
		}
	}
	return nil
}

// canonSpec renders one array's spec in canonical form: the stripe unit is
// clamped to the array's page-rounded extent when it cannot influence the
// byte→disk map — a unit at least as large as the array keeps the whole
// array in one chunk, and a factor of 1 sends every chunk to the start disk
// regardless of unit. Factor and start are never clamped: even disks that
// hold no data exist (numDisks = max over arrays of start+factor) and burn
// idle energy, so they are part of the score.
func (e *Engine) canonSpec(i int, s ast.StripeSpec) ast.StripeSpec {
	capUnit := (e.arrayBytes[i] + e.pageSize - 1) / e.pageSize * e.pageSize
	if capUnit < e.pageSize {
		capUnit = e.pageSize
	}
	if s.Unit >= capUnit || s.Factor == 1 {
		s.Unit = capUnit
	}
	return s
}

// canonKey returns the canonical cache key of an assignment within a phase.
// Equivalent assignments (identical byte→disk maps and disk counts) map to
// the same key.
func (e *Engine) canonKey(phase int, a Assignment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", phase)
	for i, s := range a {
		s = e.canonSpec(i, s)
		fmt.Fprintf(&b, "|u%df%ds%d", s.Unit, s.Factor, s.Start)
	}
	return b.String()
}

// schedKey returns the schedule-memo key: only arrays that appear as some
// iteration's first reference within the phase influence the primary vector
// and hence the Fig. 3 schedule, so other arrays' specs are masked out.
func (e *Engine) schedKey(phase, numDisks int, a Assignment) string {
	first := e.firstIn[0]
	if phase != WholeProgram {
		first = e.firstIn[phase+1]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p%d|d%d", phase, numDisks)
	for i, s := range a {
		if !first[i] {
			b.WriteString("|-")
			continue
		}
		s = e.canonSpec(i, s)
		fmt.Fprintf(&b, "|u%df%ds%d", s.Unit, s.Factor, s.Start)
	}
	return b.String()
}

// phaseMembers returns the iteration ids of a phase (nil for the whole
// program, meaning "all of them" to the scheduler).
func (e *Engine) phaseMembers(phase int) []int {
	if phase == WholeProgram {
		return nil
	}
	space := e.R.Space
	lo := space.NestFirst[phase]
	hi := space.NumIterations()
	if phase+1 < len(space.NestFirst) {
		hi = space.NestFirst[phase+1]
	}
	ids := make([]int, hi-lo)
	for i := range ids {
		ids[i] = lo + i
	}
	return ids
}

// primaryVec fills dst (len NumIterations) with each iteration's primary
// disk under the assignment: the disk of its first reference's element,
// exactly attributeDisks' j==0 rule via the same striping arithmetic.
func (e *Engine) primaryVec(a Assignment, dst []int) []int {
	n := len(e.firstArr)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for id := 0; id < n; id++ {
		dst[id] = layout.SpecDisk(a[e.firstArr[id]], e.firstByte[id])
	}
	return dst
}

// genTrace produces the abstract request trace of executing order on one
// processor: identical arrivals, sizes, write flags, and request order to
// trace.Generate over the same schedule — the clock arithmetic (service
// estimate per emission, compute time per iteration) is replayed verbatim —
// but with layout-independent packed page ids as blocks and, per request,
// the (array, page byte) pair that decides its disk under any candidate.
// First-touch coalescing uses the same (nest, page, write) unit as the
// generator, over packed pages (a bijection of the generator's global
// pages), so the emitted request set and order match exactly.
func (e *Engine) genTrace(order []int) (reqs []trace.Request, reqArr []int32, reqPageByte []int64) {
	tableLen := int64(e.numNests) * e.packedPages
	useTable := tableLen > 0 && tableLen <= touchTableMax
	var table []uint8
	var maps []map[int64]uint8
	if useTable {
		table = make([]uint8, tableLen)
	} else {
		maps = make([]map[int64]uint8, e.numNests)
	}
	total := 0
	for _, id := range order {
		total += e.refsPerNest[e.nestOf[id]]
	}
	reqs = make([]trace.Request, 0, total)
	reqArr = make([]int32, 0, total)
	reqPageByte = make([]int64, 0, total)
	clock := 0.0
	for _, id := range order {
		nest := int(e.nestOf[id])
		base := e.accBase[nest] + (id-e.R.Space.NestFirst[nest])*e.refsPerNest[nest]
		nestOff := int64(nest) * e.packedPages
		for j := base; j < base+e.refsPerNest[nest]; j++ {
			page := e.accPacked[j]
			bit := uint8(1)
			if e.accWrite[j] {
				bit = 2
			}
			if useTable {
				if table[nestOff+page]&bit != 0 {
					continue
				}
				table[nestOff+page] |= bit
			} else {
				tm := maps[nest]
				if tm == nil {
					tm = map[int64]uint8{}
					maps[nest] = tm
				}
				if tm[page]&bit != 0 {
					continue
				}
				tm[page] |= bit
			}
			reqs = append(reqs, trace.Request{
				Arrival: clock,
				Block:   page,
				Size:    e.pageSize,
				Write:   e.accWrite[j],
				Proc:    0,
			})
			reqArr = append(reqArr, e.accArr[j])
			reqPageByte = append(reqPageByte, e.accPageByte[j])
			clock += e.serviceEstimate
		}
		clock += e.computePerIter
	}
	return reqs, reqArr, reqPageByte
}

// touchTableMax mirrors the trace generator's flat-table cap; above it the
// per-nest map fallback keeps absorb semantics identical.
const touchTableMax = 1 << 24

// entryFor returns the memoized schedule entry for key, building it on
// first use. build produces the execution order (and the schedule's run
// count) when the entry is new.
func (e *Engine) entryFor(key string, build func() (order []int, runs int, err error)) (*schedEntry, error) {
	e.mu.Lock()
	var en *schedEntry
	if v, ok := e.scheds.get(key); ok {
		en = v.(*schedEntry)
	} else {
		en = &schedEntry{}
		e.scheds.add(key, en)
	}
	e.mu.Unlock()
	en.once.Do(func() {
		order, runs, err := build()
		if err != nil {
			en.err = err
			return
		}
		en.reqs, en.reqArr, en.reqPageByte = e.genTrace(order)
		en.runs = runs
		for _, pol := range []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM} {
			cfg := sim.Config{Model: e.Model, Policy: pol}
			sc, err := sim.NewEnergyScorer(en.reqs, cfg)
			if err != nil {
				en.err = err
				return
			}
			pool := &en.scorers[pol]
			pool.New = func() any { return sc.Clone() }
			pool.Put(sc)
		}
	})
	return en, en.err
}

// origEntry returns the phase's original-program-order entry — the
// layout-independent baseline trace Base energies replay against.
func (e *Engine) origEntry(phase int) (*schedEntry, error) {
	key := fmt.Sprintf("p%d|orig", phase)
	return e.entryFor(key, func() ([]int, int, error) {
		members := e.phaseMembers(phase)
		if members == nil {
			members = make([]int, e.R.Space.NumIterations())
			for i := range members {
				members[i] = i
			}
		}
		return members, 0, nil
	})
}

// ScoreIn scores an assignment over one phase (WholeProgram for the full
// iteration space). Safe for concurrent use.
func (e *Engine) ScoreIn(phase int, a Assignment) (*Score, error) {
	return e.scoreIn(phase, a, true)
}

// ScoreLite is ScoreIn without the Base (NoPM) replay: the beam search
// ranks candidates by transformed energies only, so the baseline — a third
// replay as costly as the other two — is deferred until a survivor is
// reported. BaseEnergy is NaN until some ScoreIn call on the same
// canonical layout backfills it (the cached Score is shared and updated in
// place under the engine lock).
func (e *Engine) ScoreLite(phase int, a Assignment) (*Score, error) {
	return e.scoreIn(phase, a, false)
}

func (e *Engine) scoreIn(phase int, a Assignment, needBase bool) (*Score, error) {
	if err := e.checkAssignment(a); err != nil {
		return nil, err
	}
	if phase != WholeProgram && (phase < 0 || phase >= e.numNests) {
		return nil, fmt.Errorf("layoutopt: phase %d outside 0..%d", phase, e.numNests-1)
	}
	key := e.canonKey(phase, a)
	numDisks := a.NumDisks()

	getAtt := func() *sim.Attribution {
		if v := e.attPool.Get(); v != nil {
			return v.(*sim.Attribution)
		}
		return &sim.Attribution{}
	}
	replayBoth := func(en *schedEntry, sc *Score) error {
		att := getAtt()
		defer e.attPool.Put(att)
		if err := att.Build(len(en.reqs), en.diskOf(a), numDisks); err != nil {
			return err
		}
		for _, pol := range []sim.Policy{sim.TPM, sim.DRPM} {
			es := en.scorers[pol].Get().(*sim.EnergyScorer)
			sum, err := es.ScoreAttribution(att)
			en.scorers[pol].Put(es)
			if err != nil {
				return err
			}
			if pol == sim.TPM {
				sc.TTPMEnergy = sum.Energy
			} else {
				sc.TDRPMEnergy = sum.Energy
			}
		}
		return nil
	}
	fillBase := func(sc *Score) error {
		var ferr error
		sc.baseOnce.Do(func() {
			orig, err := e.origEntry(phase)
			if err != nil {
				ferr = err
				return
			}
			es := orig.scorers[sim.NoPM].Get().(*sim.EnergyScorer)
			defer orig.scorers[sim.NoPM].Put(es)
			sum, err := es.Score(orig.diskOf(a), numDisks)
			if err != nil {
				ferr = err
				return
			}
			sc.BaseEnergy = sum.Energy
		})
		return ferr
	}

	e.mu.Lock()
	if v, ok := e.scores.get(key); ok {
		e.mu.Unlock()
		e.hits.Add(1)
		sc := v.(*Score)
		if needBase {
			if err := fillBase(sc); err != nil {
				return nil, err
			}
		}
		return sc, nil
	}
	e.mu.Unlock()
	e.misses.Add(1)

	restr, err := e.entryFor(e.schedKey(phase, numDisks, a), func() ([]int, int, error) {
		// The primary vector is only needed when the schedule memo misses.
		primary := e.primaryVec(a, nil)
		sched, err := e.R.ScheduleSubsetWithPrimary(numDisks, primary, e.phaseMembers(phase))
		if err != nil {
			return nil, 0, err
		}
		return sched.Order, core.Stats(sched, numDisks).Runs, nil
	})
	if err != nil {
		return nil, err
	}

	sc := &Score{Assignment: a.Clone(), Key: key, NumDisks: numDisks, Runs: restr.runs, BaseEnergy: math.NaN()}
	if err := replayBoth(restr, sc); err != nil {
		return nil, err
	}
	if needBase {
		if err := fillBase(sc); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.scores.add(key, sc)
	e.mu.Unlock()
	return sc, nil
}

// Score scores an assignment over the whole program.
func (e *Engine) Score(a Assignment) (*Score, error) {
	return e.ScoreIn(WholeProgram, a)
}
