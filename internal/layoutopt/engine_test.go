package layoutopt

import (
	"math"
	"strings"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/ast"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/layout"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// evaluateAssignment is the independent reference for per-array layouts: the
// same full compile→re-stripe→restructure→generate→simulate pipeline as
// Evaluate, but applying one spec per array instead of one uniform candidate.
// The engine must agree with it bit for bit.
func evaluateAssignment(t *testing.T, a apps.App, specs Assignment) Result {
	t.Helper()
	prog, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Arrays) != len(specs) {
		t.Fatalf("assignment has %d specs for %d arrays", len(specs), len(prog.Arrays))
	}
	for _, arr := range prog.Arrays {
		arr.Stripe = specs[arr.Index]
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(prog, lay)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(sched); err != nil {
		t.Fatal(err)
	}
	model := disk.Ultrastar36Z15()
	gen := trace.GenConfig{
		ComputePerIter:  a.ComputePerIter,
		ServiceEstimate: model.FullSpeedService(lay.PageSize),
	}
	origTrace, err := trace.Generate(r, trace.SinglePhase(r.OriginalSchedule()), gen)
	if err != nil {
		t.Fatal(err)
	}
	restrTrace, err := trace.Generate(r, trace.SinglePhase(sched), gen)
	if err != nil {
		t.Fatal(err)
	}
	runSim := func(reqs []trace.Request, pol sim.Policy) float64 {
		res, err := sim.Run(reqs, lay.PageDisk, sim.Config{
			Model: model, NumDisks: lay.NumDisks(), Policy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	return Result{
		Runs:        core.Stats(sched, lay.NumDisks()).Runs,
		BaseEnergy:  runSim(origTrace, sim.NoPM),
		TTPMEnergy:  runSim(restrTrace, sim.TPM),
		TDRPMEnergy: runSim(restrTrace, sim.DRPM),
	}
}

// TestEngineMatchesEvaluate is the exactness pin for uniform candidates: the
// re-attribution engine's Score must equal the full-pipeline Evaluate on every
// field, bit for bit, across applications and layouts.
func TestEngineMatchesEvaluate(t *testing.T) {
	for _, name := range []string{"fft", "ast", "cholesky", "rsense"} {
		a, err := apps.ByName(name, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []Candidate{
			{32 << 10, 8, 0}, {16 << 10, 2, 1}, {128 << 10, 16, 0}, {64 << 10, 4, 3},
		} {
			want, err := Evaluate(a, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Score(Uniform(e.NumArrays(), c))
			if err != nil {
				t.Fatal(err)
			}
			if got.BaseEnergy != want.BaseEnergy || got.TTPMEnergy != want.TTPMEnergy ||
				got.TDRPMEnergy != want.TDRPMEnergy || got.Runs != want.Runs {
				t.Errorf("%s %v: engine diverged from Evaluate\ngot  %+v\nwant %+v", name, c, got, want)
			}
			if got.NumDisks != c.Start+c.Factor {
				t.Errorf("%s %v: NumDisks = %d", name, c, got.NumDisks)
			}
		}
	}
}

// TestEngineNonUniformExact pins exactness on the per-array layouts only the
// engine's search explores: assignments where arrays stripe differently must
// match the full pipeline run over the same per-array re-striping.
func TestEngineNonUniformExact(t *testing.T) {
	for _, name := range []string{"visuo", "rsense", "scf"} {
		a, err := apps.ByName(name, apps.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := e.NumArrays()
		cases := []Assignment{e.Declared()}
		// A staggered assignment: each array gets a different unit, factor,
		// and start so every striping dimension varies across arrays.
		units := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10}
		factors := []int{2, 4, 8, 3}
		stag := make(Assignment, n)
		for i := range stag {
			stag[i] = ast.StripeSpec{Unit: units[i%len(units)], Factor: factors[i%len(factors)], Start: i % 3}
		}
		cases = append(cases, stag)
		// One array rotated off disk 0, the rest uniform.
		rot := Uniform(n, Candidate{Unit: 32 << 10, Factor: 4, Start: 0})
		rot[n-1].Start = 2
		rot[n-1].Factor = 2
		cases = append(cases, rot)
		for ci, specs := range cases {
			want := evaluateAssignment(t, a, specs)
			got, err := e.Score(specs)
			if err != nil {
				t.Fatal(err)
			}
			if got.BaseEnergy != want.BaseEnergy || got.TTPMEnergy != want.TTPMEnergy ||
				got.TDRPMEnergy != want.TDRPMEnergy || got.Runs != want.Runs {
				t.Errorf("%s case %d: engine diverged from full pipeline\ngot  %+v\nwant %+v",
					name, ci, got, want)
			}
		}
	}
}

// TestScoreCacheAccounting pins the LRU hit/miss accounting: first scores
// miss, repeats hit, and equivalent-but-permuted layouts resolve to the same
// cached entry.
func TestScoreCacheAccounting(t *testing.T) {
	a, err := apps.ByName("fft", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := Candidate{Unit: 32 << 10, Factor: 4, Start: 0}
	s1, err := e.Score(Uniform(e.NumArrays(), c))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := e.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first score: hits=%d misses=%d, want 0/1", h, m)
	}
	s2, err := e.Score(Uniform(e.NumArrays(), c))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := e.CacheStats(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", h, m)
	}
	if s1 != s2 {
		t.Fatal("repeat score did not return the cached *Score")
	}
	// A different phase is a different cache key even for the same layout.
	if _, err := e.ScoreIn(0, Uniform(e.NumArrays(), c)); err != nil {
		t.Fatal(err)
	}
	if h, m := e.CacheStats(); h != 1 || m != 2 {
		t.Fatalf("after phase score: hits=%d misses=%d, want 1/2", h, m)
	}
}

// TestScoreCacheEviction forces LRU eviction with a tiny cache and checks
// that a re-scored (evicted) layout misses again but reproduces the same
// energies.
func TestScoreCacheEviction(t *testing.T) {
	a, err := apps.ByName("cholesky", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := e.NumArrays()
	cands := []Candidate{{16 << 10, 2, 0}, {32 << 10, 4, 0}, {64 << 10, 8, 0}}
	first := make([]*Score, len(cands))
	for i, c := range cands {
		if first[i], err = e.Score(Uniform(n, c)); err != nil {
			t.Fatal(err)
		}
	}
	// Cache holds 2 entries; candidate 0 is the LRU victim by now.
	again, err := e.Score(Uniform(n, cands[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, m := e.CacheStats(); m != 4 {
		t.Fatalf("misses = %d, want 4 (3 cold + 1 evicted)", m)
	}
	if again == first[0] {
		t.Fatal("evicted entry should have been rebuilt, not returned")
	}
	if again.BaseEnergy != first[0].BaseEnergy || again.TTPMEnergy != first[0].TTPMEnergy ||
		again.TDRPMEnergy != first[0].TDRPMEnergy || again.Runs != first[0].Runs {
		t.Fatalf("rebuilt score diverged:\ngot  %+v\nwant %+v", again, first[0])
	}
}

// TestCanonicalEquivalence pins the canonical-hash collisions: permuted-but-
// equivalent per-array layouts — identical byte→disk maps — share one cache
// entry, while layouts that differ only in idle-disk count do not collapse.
func TestCanonicalEquivalence(t *testing.T) {
	a, err := apps.ByName("fft", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := e.NumArrays()

	// Factor 1 pins every chunk to the start disk, so any unit is the same
	// layout: all variants must collide on one cache entry.
	base := Uniform(n, Candidate{Unit: 16 << 10, Factor: 1, Start: 0})
	s0, err := e.Score(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{32 << 10, 4 << 10, 1 << 20} {
		v := Uniform(n, Candidate{Unit: u, Factor: 1, Start: 0})
		sv, err := e.Score(v)
		if err != nil {
			t.Fatal(err)
		}
		if sv != s0 {
			t.Errorf("factor=1 unit=%d: got a distinct cache entry (%s vs %s)", u, sv.Key, s0.Key)
		}
	}

	// A unit at least as large as the array keeps it in one chunk, so two
	// over-large units are the same layout.
	big := int64(1) << 30
	s1, err := e.Score(Uniform(n, Candidate{Unit: big, Factor: 4, Start: 0}))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Score(Uniform(n, Candidate{Unit: 2 * big, Factor: 4, Start: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("over-extent units did not collide: %s vs %s", s1.Key, s2.Key)
	}

	// Start and factor are never canonicalized away: shifting the start disk
	// changes the disk population (and idle energy) even when the data map on
	// populated disks is congruent.
	sA, err := e.Score(Uniform(n, Candidate{Unit: 32 << 10, Factor: 2, Start: 0}))
	if err != nil {
		t.Fatal(err)
	}
	sB, err := e.Score(Uniform(n, Candidate{Unit: 32 << 10, Factor: 2, Start: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if sA == sB || sA.Key == sB.Key {
		t.Error("start-disk variants must not share a cache entry")
	}
	if sA.NumDisks == sB.NumDisks {
		t.Errorf("start shift should change the disk span: %d vs %d", sA.NumDisks, sB.NumDisks)
	}
}

// TestScoreLiteDefersBase pins the lazy-baseline contract: ScoreLite leaves
// BaseEnergy NaN, and a later ScoreIn on the same layout backfills the shared
// entry in place.
func TestScoreLiteDefersBase(t *testing.T) {
	a, err := apps.ByName("rsense", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	specs := Uniform(e.NumArrays(), Candidate{Unit: 64 << 10, Factor: 4, Start: 0})
	lite, err := e.ScoreLite(WholeProgram, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(lite.BaseEnergy) {
		t.Fatalf("ScoreLite BaseEnergy = %v, want NaN", lite.BaseEnergy)
	}
	if lite.TTPMEnergy <= 0 || lite.TDRPMEnergy <= 0 {
		t.Fatalf("ScoreLite transformed energies missing: %+v", lite)
	}
	full, err := e.ScoreIn(WholeProgram, specs)
	if err != nil {
		t.Fatal(err)
	}
	if full != lite {
		t.Fatal("ScoreIn must resolve to the ScoreLite entry")
	}
	if math.IsNaN(full.BaseEnergy) || full.BaseEnergy <= 0 {
		t.Fatalf("backfilled BaseEnergy = %v", full.BaseEnergy)
	}
	want, err := Evaluate(a, Candidate{Unit: 64 << 10, Factor: 4, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if full.BaseEnergy != want.BaseEnergy {
		t.Fatalf("backfilled base %v != Evaluate %v", full.BaseEnergy, want.BaseEnergy)
	}
}

// TestEngineRejections pins the validation errors.
func TestEngineRejections(t *testing.T) {
	a, err := apps.ByName("scf", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := e.NumArrays()
	check := func(specs Assignment, phase int, frag string) {
		t.Helper()
		if _, err := e.ScoreIn(phase, specs); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("want error containing %q, got %v", frag, err)
		}
	}
	check(make(Assignment, n+1), WholeProgram, "specs for")
	check(Uniform(n, Candidate{Unit: 1 << 10, Factor: 2}), WholeProgram, "page size")
	check(Uniform(n, Candidate{Unit: 32 << 10, Factor: 0}), WholeProgram, "factor")
	bad := Uniform(n, Candidate{Unit: 32 << 10, Factor: 2})
	bad[0].Start = -1
	check(bad, WholeProgram, "start disk")
	good := Uniform(n, Candidate{Unit: 32 << 10, Factor: 2})
	check(good, e.NumPhases(), "phase")
	check(good, -2, "phase")
}
