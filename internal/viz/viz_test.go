package viz

import (
	"strings"
	"testing"

	"diskreuse/internal/disk"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

func TestRenderSynthetic(t *testing.T) {
	r := NewRecorder()
	r.Record(sim.Interval{Disk: 0, From: 0, To: 10, Kind: sim.StateBusy, RPM: 15000})
	r.Record(sim.Interval{Disk: 0, From: 10, To: 100, Kind: sim.StateStandby})
	r.Record(sim.Interval{Disk: 1, From: 0, To: 50, Kind: sim.StateIdle, RPM: 15000})
	r.Record(sim.Interval{Disk: 1, From: 50, To: 100, Kind: sim.StateIdle, RPM: 6000})
	var b strings.Builder
	if err := r.Render(&b, 50, 15000); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "disk 0 ") || !strings.Contains(out, "disk 1 ") {
		t.Fatalf("missing disk rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var row0, row1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "disk 0 ") {
			row0 = l
		}
		if strings.HasPrefix(l, "disk 1 ") {
			row1 = l
		}
	}
	if !strings.Contains(row0, "#") || !strings.Contains(row0, "_") {
		t.Errorf("disk 0 row should show busy then standby: %q", row0)
	}
	if !strings.Contains(row1, ".") || !strings.Contains(row1, "-") {
		t.Errorf("disk 1 row should show full-speed then low-RPM idle: %q", row1)
	}
	// Busy wins bucket conflicts.
	if row0[len("disk 0 ")] != '#' {
		t.Errorf("first bucket of disk 0 should be busy: %q", row0)
	}
}

func TestRenderEmptyAndDefaults(t *testing.T) {
	r := NewRecorder()
	var b strings.Builder
	if err := r.Render(&b, 0, 15000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no activity") {
		t.Errorf("empty render = %q", b.String())
	}
}

// End to end: record a real TPM simulation and verify the timeline shows a
// spin-down (standby) and that interval time accounting matches the meter.
func TestRecorderWithSimulator(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 100, Block: 0, Size: 4096},
		{Arrival: 101, Block: 8, Size: 4096},
	}
	rec := NewRecorder()
	diskOf := func(b int64) (int, error) { return int((b / 8) % 2), nil }
	res, err := sim.Run(reqs, diskOf, sim.Config{
		Model:    disk.Ultrastar36Z15(),
		NumDisks: 2,
		Policy:   sim.TPM,
		Record:   rec.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no intervals recorded")
	}
	// Total recorded time per disk equals the meter's accounted time.
	perDisk := map[int]float64{}
	last := map[int]float64{}
	for _, iv := range rec.intervals {
		perDisk[iv.Disk] += iv.To - iv.From
		if iv.From+1e-9 < last[iv.Disk] {
			t.Fatalf("intervals for disk %d out of order: %v before %v", iv.Disk, iv.From, last[iv.Disk])
		}
		last[iv.Disk] = iv.To
	}
	for d := 0; d < 2; d++ {
		want := res.PerDisk[d].Meter.TotalTime()
		if got := perDisk[d]; got < want-1e-6 || got > want+1e-6 {
			t.Errorf("disk %d recorded %.6f s, meter has %.6f s", d, got, want)
		}
	}
	var b strings.Builder
	if err := r2render(rec, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "_") || !strings.Contains(out, "^") {
		t.Errorf("TPM timeline should show standby and transitions:\n%s", out)
	}
	sum := rec.Summary()
	if !strings.Contains(sum, "disk  busy%") || !strings.Contains(sum, "0 ") {
		t.Errorf("summary:\n%s", sum)
	}
}

func r2render(r *Recorder, b *strings.Builder) error {
	return r.Render(b, 80, 15000)
}
