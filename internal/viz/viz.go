// Package viz renders the simulator's recorded disk-state intervals as an
// ASCII timeline — one row per disk, one column per time bucket — which
// makes the effect of the restructuring visible at a glance: the Base
// schedule shows every disk flickering between busy and idle, while the
// transformed schedule shows long solid idle/standby stretches broken by
// one compact busy cluster per disk.
//
//	disk 0 ######____________________________________________________
//	disk 1 ......^######_____________________________________________
//	disk 2 ......________^######_____________________________________
//
// Legend: '#' busy, '.' idle at full speed, '-' idle at reduced speed
// (DRPM), '_' standby (spun down), '^' transition (spin-up/down or speed
// shift), ' ' no activity recorded.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"diskreuse/internal/sim"
)

// Recorder collects simulator intervals for rendering. Use NewRecorder,
// pass Record as sim.Config.Record, run the simulation, then Render.
type Recorder struct {
	intervals []sim.Interval
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one interval; it is the sim.Config.Record callback.
func (r *Recorder) Record(iv sim.Interval) {
	r.intervals = append(r.intervals, iv)
}

// Len returns the number of recorded intervals.
func (r *Recorder) Len() int { return len(r.intervals) }

// glyph maps an interval to its timeline character.
func glyph(iv sim.Interval, fullRPM int) byte {
	switch iv.Kind {
	case sim.StateBusy:
		return '#'
	case sim.StateIdle:
		if iv.RPM > 0 && iv.RPM < fullRPM {
			return '-'
		}
		return '.'
	case sim.StateStandby:
		return '_'
	case sim.StateTransition:
		return '^'
	}
	return '?'
}

// precedence orders glyphs when several states share one bucket: the most
// "interesting" state wins so short events stay visible.
var precedence = map[byte]int{' ': 0, '.': 1, '-': 2, '_': 3, '^': 4, '#': 5}

// Render writes the timeline for all recorded intervals, using width
// character columns over [0, end] where end is the latest interval end.
// fullRPM distinguishes full-speed from reduced-speed idling (pass the
// disk model's RPMMax; zero treats all idling as full speed).
func (r *Recorder) Render(w io.Writer, width, fullRPM int) error {
	if width <= 0 {
		width = 72
	}
	if len(r.intervals) == 0 {
		_, err := fmt.Fprintln(w, "(no activity recorded)")
		return err
	}
	numDisks := 0
	end := 0.0
	for _, iv := range r.intervals {
		if iv.Disk+1 > numDisks {
			numDisks = iv.Disk + 1
		}
		if iv.To > end {
			end = iv.To
		}
	}
	if end <= 0 {
		end = 1
	}
	rows := make([][]byte, numDisks)
	for d := range rows {
		rows[d] = []byte(strings.Repeat(" ", width))
	}
	scale := float64(width) / end
	for _, iv := range r.intervals {
		g := glyph(iv, fullRPM)
		lo := int(iv.From * scale)
		hi := int(iv.To * scale)
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			if precedence[g] > precedence[rows[iv.Disk][c]] {
				rows[iv.Disk][c] = g
			}
		}
	}
	if _, err := fmt.Fprintf(w, "timeline over %.1f s ('#' busy, '.' idle, '-' low-RPM, '_' standby, '^' transition)\n", end); err != nil {
		return err
	}
	for d, row := range rows {
		if _, err := fmt.Fprintf(w, "disk %d %s\n", d, row); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns per-disk fractions of time in each state, sorted by
// disk, as a compact table.
func (r *Recorder) Summary() string {
	type acc struct{ busy, idle, standby, transition, total float64 }
	byDisk := map[int]*acc{}
	for _, iv := range r.intervals {
		a := byDisk[iv.Disk]
		if a == nil {
			a = &acc{}
			byDisk[iv.Disk] = a
		}
		dt := iv.To - iv.From
		a.total += dt
		switch iv.Kind {
		case sim.StateBusy:
			a.busy += dt
		case sim.StateIdle:
			a.idle += dt
		case sim.StateStandby:
			a.standby += dt
		case sim.StateTransition:
			a.transition += dt
		}
	}
	disks := make([]int, 0, len(byDisk))
	for d := range byDisk {
		disks = append(disks, d)
	}
	sort.Ints(disks)
	var b strings.Builder
	fmt.Fprintf(&b, "disk  busy%%  idle%%  standby%%  transition%%\n")
	for _, d := range disks {
		a := byDisk[d]
		if a.total <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%4d  %5.1f  %5.1f  %8.1f  %11.1f\n", d,
			100*a.busy/a.total, 100*a.idle/a.total,
			100*a.standby/a.total, 100*a.transition/a.total)
	}
	return b.String()
}
