package metrics

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// Canonical metric names the simulator publishes and the Reporter reads.
// They live here so the publisher (internal/sim), the heartbeat, and the
// monitoring docs agree on one spelling.
const (
	// SimRequestsReplayed counts requests the simulator has replayed.
	SimRequestsReplayed = "sim_requests_replayed_total"
	// SimDisksInState gauges how many disks were last observed in each
	// state (label "state": busy, idle, standby, transition).
	SimDisksInState = "sim_disks_in_state"
	// SimEnergyJoules gauges the total metered energy so far.
	SimEnergyJoules = "sim_energy_joules"
)

// diskStates is the heartbeat's fixed state-mix rendering order.
var diskStates = []string{"busy", "idle", "standby", "transition"}

// ReporterOptions configures a heartbeat Reporter.
type ReporterOptions struct {
	// Registry is the registry the heartbeat reads (required for ticker
	// lines; a Reporter with a nil registry still works as a Logf sink).
	Registry *Registry
	// Interval is the heartbeat period; zero disables the ticker, leaving
	// only Logf. Negative intervals are treated as zero.
	Interval time.Duration
	// Total is the expected final value of the progress counter, for the
	// percentage and ETA fields; zero renders neither.
	Total int64
	// Progress is the counter family the heartbeat tracks; empty selects
	// SimRequestsReplayed.
	Progress string
	// Out receives the heartbeat and Logf lines; nil selects os.Stderr —
	// never os.Stdout, so a -json or binary stdout stays machine-clean.
	Out io.Writer
}

// Reporter is the streaming progress heartbeat: a ticker goroutine renders
// one line per interval — progress, rate, ETA, heap, and the per-disk
// state mix — to stderr (never stdout, which may carry JSON or binary
// data). It doubles as the binaries' shared sink for one-off human-facing
// progress lines (Logf), so every such line takes the same
// stdout-safe path. A nil Reporter is a valid no-op.
type Reporter struct {
	opt  ReporterOptions
	mu   sync.Mutex // serializes writes to opt.Out
	stop chan struct{}
	done chan struct{}

	start    time.Time
	lastT    time.Time
	lastProg float64
}

// NewReporter returns a Reporter; Start begins the heartbeat. The zero
// options give a Logf-only reporter writing to stderr.
func NewReporter(opt ReporterOptions) *Reporter {
	if opt.Out == nil {
		opt.Out = os.Stderr
	}
	if opt.Progress == "" {
		opt.Progress = SimRequestsReplayed
	}
	if opt.Interval < 0 {
		opt.Interval = 0
	}
	return &Reporter{opt: opt}
}

// Logf writes one human-facing line to the reporter's writer (stderr by
// default), serialized against heartbeat lines. A trailing newline is
// added. Safe on a nil Reporter.
func (r *Reporter) Logf(format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fmt.Fprintf(r.opt.Out, format+"\n", args...)
	r.mu.Unlock()
}

// SetTotal sets the expected final progress value (see
// ReporterOptions.Total). It must be called before Start — binaries use it
// when the trace header, and with it the request count, is only read after
// the reporter announces startup lines. Safe on a nil Reporter.
func (r *Reporter) SetTotal(total int64) {
	if r == nil {
		return
	}
	r.opt.Total = total
}

// Start launches the heartbeat ticker. It is a no-op on a nil Reporter,
// with a zero interval, or when already started.
func (r *Reporter) Start() {
	if r == nil || r.opt.Interval <= 0 || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.start = time.Now()
	r.lastT = r.start
	r.lastProg, _ = r.opt.Registry.Value(r.opt.Progress)
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opt.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case now := <-t.C:
				r.beat(now, false)
			}
		}
	}()
}

// Stop halts the ticker, emitting one final heartbeat line so short runs
// still show their end state. Safe on a nil or never-started Reporter.
func (r *Reporter) Stop() {
	if r == nil || r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
	r.beat(time.Now(), true)
}

// beat renders one heartbeat line.
func (r *Reporter) beat(now time.Time, final bool) {
	prog, ok := r.opt.Registry.Value(r.opt.Progress)
	if !ok {
		prog = 0
	}
	dt := now.Sub(r.lastT).Seconds()
	rate := 0.0
	if dt > 0 {
		rate = (prog - r.lastProg) / dt
	}
	r.lastT, r.lastProg = now, prog

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	line := fmt.Sprintf("%7.1fs %s req", now.Sub(r.start).Seconds(), fmtCount(prog))
	if r.opt.Total > 0 {
		line += fmt.Sprintf(" (%.1f%%)", 100*prog/float64(r.opt.Total))
	}
	line += fmt.Sprintf("  %s req/s", fmtCount(rate))
	if r.opt.Total > 0 && rate > 0 && !final {
		if left := float64(r.opt.Total) - prog; left > 0 {
			line += fmt.Sprintf("  ETA %s", (time.Duration(left / rate * float64(time.Second))).Round(time.Second))
		}
	}
	line += fmt.Sprintf("  heap %s", fmtMiB(ms.HeapAlloc))
	if mix := r.stateMix(); mix != "" {
		line += "  disks " + mix
	}
	if e, ok := r.opt.Registry.Value(SimEnergyJoules); ok && e > 0 {
		line += fmt.Sprintf("  energy %.0f J", e)
	}
	r.Logf("%s", line)
}

// stateMix renders the per-disk state mix from the SimDisksInState gauges,
// e.g. "busy=1 idle=6 standby=1".
func (r *Reporter) stateMix() string {
	out := ""
	for _, st := range diskStates {
		v, ok := r.opt.Registry.Value(SimDisksInState, L("state", st))
		if !ok || v == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", st, int64(v))
	}
	return out
}

// fmtCount renders a large count compactly: 12345 → "12.3k", 2.1e7 →
// "21.0M".
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// fmtMiB renders a byte count in MiB.
func fmtMiB(n uint64) string {
	return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
}
