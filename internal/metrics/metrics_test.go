package metrics

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Negative and NaN adds are ignored — counters never go down.
	c.Add(-1)
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after bad adds = %v, want 3.5", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-lookup returned a different series")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "", L("disk", "0"))
	b := r.Counter("hits_total", "", L("disk", "1"))
	if a == b {
		t.Fatal("different label values must be different series")
	}
	// Label order must not matter.
	x := r.Gauge("st", "", L("a", "1"), L("b", "2"))
	y := r.Gauge("st", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Non-cumulative per-bucket counts: (≤1)=2, (≤2)=1, (≤5)=1, +Inf=1.
	want := []int64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.inf.Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_hist", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All methods must be safe on nil receivers.
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if _, ok := r.Value("x_total"); ok {
		t.Fatal("nil registry Value must report not-found")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry Snapshot = %v, want nil", got)
	}
}

func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Gauge("g", "", L("state", "idle")).Set(6)
	if v, ok := r.Value("a_total"); !ok || v != 4 {
		t.Fatalf("Value(a_total) = %v,%v", v, ok)
	}
	if v, ok := r.Value("g", L("state", "idle")); !ok || v != 6 {
		t.Fatalf("Value(g{state=idle}) = %v,%v", v, ok)
	}
	if _, ok := r.Value("g", L("state", "busy")); ok {
		t.Fatal("Value must miss on unknown label set")
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value must miss on unknown family")
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "bad metric name", func() { r.Counter("0bad", "") })
	mustPanic(t, "bad metric chars", func() { r.Counter("with space", "") })
	mustPanic(t, "bad label name", func() { r.Counter("ok_total", "", L("0bad", "v")) })
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	mustPanic(t, "counter re-registered as gauge", func() { r.Gauge("dual", "") })
}

func TestNonIncreasingBucketsPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "non-increasing buckets", func() { r.Histogram("h", "", []float64{1, 1}) })
	mustPanic(t, "decreasing buckets", func() { r.Histogram("h2", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2))
				r.Snapshot() // concurrent reads must be safe too
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", "", []float64{0.5}).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %v, want %d", got, workers*perWorker)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context must yield nil registry")
	}
	if WithRegistry(ctx, nil) != ctx {
		t.Fatal("attaching nil must return ctx unchanged")
	}
	r := NewRegistry()
	if got := FromContext(WithRegistry(ctx, r)); got != r {
		t.Fatalf("FromContext = %p, want %p", got, r)
	}
}
