package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running monitoring endpoint: /metrics serves the registry's
// Prometheus text exposition, /healthz answers 200 ok, and /debug/pprof/*
// exposes the stdlib profilers. It is the repository's first resident
// server — the monitoring substrate the planned dpcd service mounts.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (e.g. ":9090", or "127.0.0.1:0" for an ephemeral
// port) and serves the monitoring endpoints in a background goroutine until
// Close. The registry may keep changing after Serve returns; every scrape
// renders a fresh snapshot.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("metrics: Serve needs a non-nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteExposition(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address (with the ephemeral port
// resolved), e.g. "127.0.0.1:43521".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
