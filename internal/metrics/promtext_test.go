package metrics

// A minimal parser for the Prometheus text exposition format (version
// 0.0.4), used ONLY by tests to validate that WriteExposition's output is
// machine-parseable: it round-trips the exposition back into samples and
// cross-checks them against Snapshot. It is deliberately strict — unknown
// line shapes, bad escapes, or samples outside a declared family are
// errors, so format drift fails loudly.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promFamily is one parsed metric family.
type promFamily struct {
	Name, Help, Kind string
	Samples          []Sample
}

// parsePromText parses an exposition document into families in document
// order.
func parsePromText(r io.Reader) ([]promFamily, error) {
	var fams []promFamily
	byName := map[string]*promFamily{}
	cur := ""
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid HELP metric name %q", lineno, name)
			}
			if _, ok := byName[name]; ok {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineno, name)
			}
			fams = append(fams, promFamily{Name: name, Help: unescapeHelp(help)})
			byName[name] = &fams[len(fams)-1]
			cur = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, _ := strings.Cut(rest, " ")
			switch kind {
			case kindCounter, kindGauge, kindHistogram:
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", lineno, kind)
			}
			f, ok := byName[name]
			if !ok {
				fams = append(fams, promFamily{Name: name})
				byName[name] = &fams[len(fams)-1]
				f = byName[name]
			}
			if f.Kind != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineno, name)
			}
			f.Kind = kind
			cur = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		f, ok := byName[cur]
		if !ok || !sampleBelongs(f, s.Name) {
			return nil, fmt.Errorf("line %d: sample %q outside its family (current %q)", lineno, s.Name, cur)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name belongs to family f: the
// family name itself, or the histogram component suffixes.
func sampleBelongs(f *promFamily, name string) bool {
	if name == f.Name {
		return f.Kind != kindHistogram
	}
	if f.Kind != kindHistogram {
		return false
	}
	return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
}

// parseSampleLine parses `name{k="v",...} value` or `name value`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimLeft(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		// The format also allows +Inf/-Inf/NaN spellings.
		switch strings.TrimSpace(rest) {
		case "+Inf", "Inf":
			return s, fmt.Errorf("non-finite sample value %q", rest)
		}
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{k="v",...}` and returns the labels and the tail
// after the closing brace.
func parseLabels(in string) ([]Label, string, error) {
	var out []Label
	i := 1 // past '{'
	for {
		j := i
		for j < len(in) && in[j] != '=' {
			j++
		}
		if j >= len(in) {
			return nil, "", fmt.Errorf("unterminated label in %q", in)
		}
		key := in[i:j]
		if !validName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if j+1 >= len(in) || in[j+1] != '"' {
			return nil, "", fmt.Errorf("label %q missing quoted value", key)
		}
		val, next, err := parseQuoted(in[j+1:])
		if err != nil {
			return nil, "", err
		}
		out = append(out, Label{key, val})
		i = j + 1 + next
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label set in %q", in)
		}
		switch in[i] {
		case ',':
			i++
		case '}':
			return out, in[i+1:], nil
		default:
			return nil, "", fmt.Errorf("unexpected %q after label value", in[i])
		}
	}
}

// parseQuoted parses a double-quoted value with \\, \", and \n escapes,
// returning the value and the offset just past the closing quote.
func parseQuoted(in string) (string, int, error) {
	if len(in) == 0 || in[0] != '"' {
		return "", 0, fmt.Errorf("expected opening quote in %q", in)
	}
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape in %q", in)
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c in %q", in[i], in)
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value in %q", in)
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\n`, "\n")
	return strings.ReplaceAll(v, `\\`, `\`)
}
