//go:build race

package metrics

// raceEnabled reports whether the race detector is compiled in; timing
// budgets are meaningless under its instrumentation.
const raceEnabled = true
