package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry exercising every exposition
// feature: multiple families (registered out of name order), multiple
// labeled series, label escaping, and a histogram.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Gauge("zeta_depth", "current queue depth").Set(3)
	r.Counter("alpha_requests_total", "requests replayed", L("disk", "1")).Add(7)
	r.Counter("alpha_requests_total", "requests replayed", L("disk", "0")).Add(12)
	r.Counter("esc_total", `has "quotes" and \slashes`, L("path", "a\\b\"c\nd")).Inc()
	h := r.Histogram("stage_seconds", "stage durations", []float64{0.1, 1, 10}, L("stage", "parse"))
	// Binary-exact observations so the golden _sum line is fp-stable.
	for _, v := range []float64{0.0625, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	return r
}

const goldenExposition = `# HELP alpha_requests_total requests replayed
# TYPE alpha_requests_total counter
alpha_requests_total{disk="0"} 12
alpha_requests_total{disk="1"} 7
# HELP esc_total has "quotes" and \\slashes
# TYPE esc_total counter
esc_total{path="a\\b\"c\nd"} 1
# HELP stage_seconds stage durations
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="parse",le="0.1"} 1
stage_seconds_bucket{stage="parse",le="1"} 3
stage_seconds_bucket{stage="parse",le="10"} 4
stage_seconds_bucket{stage="parse",le="+Inf"} 5
stage_seconds_sum{stage="parse"} 56.0625
stage_seconds_count{stage="parse"} 5
# HELP zeta_depth current queue depth
# TYPE zeta_depth gauge
zeta_depth 3
`

func TestWriteExpositionGolden(t *testing.T) {
	r := buildTestRegistry()
	var b bytes.Buffer
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenExposition {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenExposition)
	}
	// Determinism: a second render of unchanged values is byte-identical.
	var b2 bytes.Buffer
	r.WriteExposition(&b2)
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("repeated exposition not byte-identical")
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var b bytes.Buffer
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := parsePromText(&b)
	if err != nil {
		t.Fatalf("exposition not machine-parseable: %v", err)
	}

	// Families come back sorted by name with the right kinds and help.
	wantKinds := map[string]string{
		"alpha_requests_total": kindCounter,
		"esc_total":            kindCounter,
		"stage_seconds":        kindHistogram,
		"zeta_depth":           kindGauge,
	}
	if len(fams) != len(wantKinds) {
		t.Fatalf("parsed %d families, want %d", len(fams), len(wantKinds))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Fatalf("families not sorted: %q before %q", fams[i-1].Name, fams[i].Name)
		}
	}
	for _, f := range fams {
		if f.Kind != wantKinds[f.Name] {
			t.Fatalf("family %q kind %q, want %q", f.Name, f.Kind, wantKinds[f.Name])
		}
	}

	// The escaped label value survives the round trip.
	var escVal string
	for _, f := range fams {
		if f.Name != "esc_total" {
			continue
		}
		if f.Help != `has "quotes" and \slashes` {
			t.Fatalf("help not round-tripped: %q", f.Help)
		}
		escVal = f.Samples[0].Labels[0].Value
	}
	if escVal != "a\\b\"c\nd" {
		t.Fatalf("label value not round-tripped: %q", escVal)
	}

	// Parsed samples match Snapshot exactly (same name/labels/value set).
	var parsed []Sample
	for _, f := range fams {
		parsed = append(parsed, f.Samples...)
	}
	snap := r.Snapshot()
	if len(parsed) != len(snap) {
		t.Fatalf("parsed %d samples, snapshot has %d", len(parsed), len(snap))
	}
	byID := map[string]float64{}
	for _, s := range snap {
		byID[s.id()] = s.Value
	}
	for _, s := range parsed {
		want, ok := byID[s.id()]
		if !ok {
			t.Fatalf("parsed sample %q not in snapshot", s.id())
		}
		if s.Value != want {
			t.Fatalf("sample %s = %v, snapshot has %v", s.Name, s.Value, want)
		}
	}
}

func TestHistogramBucketCumulativity(t *testing.T) {
	r := buildTestRegistry()
	var b bytes.Buffer
	r.WriteExposition(&b)
	fams, err := parsePromText(&b)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Kind != kindHistogram {
			continue
		}
		var prev float64 = -1
		var lastBucket, count float64
		sawInf := false
		for _, s := range f.Samples {
			switch s.Name {
			case f.Name + "_bucket":
				if s.Value < prev {
					t.Fatalf("%s buckets not cumulative: %v after %v", f.Name, s.Value, prev)
				}
				prev, lastBucket = s.Value, s.Value
				for _, l := range s.Labels {
					if l.Key == "le" && l.Value == "+Inf" {
						sawInf = true
					}
				}
			case f.Name + "_count":
				count = s.Value
			}
		}
		if !sawInf {
			t.Fatalf("%s missing +Inf bucket", f.Name)
		}
		if lastBucket != count {
			t.Fatalf("%s +Inf bucket %v != count %v", f.Name, lastBucket, count)
		}
	}
}

func TestSnapshotStability(t *testing.T) {
	r := buildTestRegistry()
	a, b := r.Snapshot(), r.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].id() != b[i].id() || a[i].Value != b[i].Value {
			t.Fatalf("snapshot not stable at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].id() >= a[i].id() {
			t.Fatalf("snapshot not sorted at %d", i)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {1, "1"}, {12, "12"}, {-3, "-3"},
		{0.1, "0.1"}, {56.05, "56.05"}, {3.16e-4, "0.000316"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Whatever the rendering, it must parse back to the same float.
	for _, v := range []float64{1e20, 1.5e-9, 123456789.25} {
		got := formatValue(v)
		back, err := strconv.ParseFloat(got, 64)
		if err != nil || back != v {
			t.Errorf("formatValue(%v) = %q does not round-trip (%v, %v)", v, got, back, err)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue(`plain`); got != "plain" {
		t.Errorf("plain value altered: %q", got)
	}
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escape = %q", got)
	}
	if !strings.Contains(goldenExposition, `path="a\\b\"c\nd"`) {
		t.Error("golden does not pin the escaped form")
	}
}
