// Package metrics is the repository's live-metrics leaf: a registry of
// atomic counters, gauges, and lock-free fixed-bucket histograms with
// Prometheus text-format exposition, built for in-flight observation of
// long runs — the counters internal/sim, internal/trace, internal/conc,
// internal/layoutopt, and internal/exp publish are readable while the
// pipeline is still running, unlike the post-hoc span reports of
// internal/obs.
//
// The package imports only the standard library and sits below every other
// internal package (including internal/obs, which bridges span timings
// into a Registry), so any layer can publish without import cycles.
//
// Everything is nil-tolerant, mirroring obs.Tracer's no-op fast path: a
// nil *Registry hands out nil *Counter/*Gauge/*Histogram values whose
// methods return immediately, so instrumented hot loops pay one pointer
// check when metrics are off and nothing allocates. Metrics are strictly
// observe-only: nothing in this package is ever read back by the
// instrumented code, so enabling a registry cannot perturb deterministic
// results.
package metrics

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric. Metrics with the same
// family name but different label sets are distinct series, exactly as in
// the Prometheus data model.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric kinds, in exposition TYPE-line spelling.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; getters take a mutex only on the (cold) lookup path,
// while the returned handles update lock-free atomics. A nil *Registry is
// a valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       string
	buckets    []float64 // histogram upper bounds (without +Inf)
	series     map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName enforces the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain ':', but
// none of ours do; the stricter check keeps both valid).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// seriesKey is the canonical label signature of one series: labels sorted
// by key, tab-separated — never shown to users, only a map key.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return key
}

// sortedLabels returns a sorted copy of labels (the order series are
// exposed and snapshotted in).
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// lookup returns the series for (name, labels), creating family and series
// with mk on first use. Mismatched kind or help on re-registration is a
// programming error and panics, like a duplicate flag registration.
func (r *Registry) lookup(name, help, kind string, buckets []float64, labels []Label, mk func(ls []Label) any) any {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = mk(sortedLabels(labels))
		f.series[key] = s
	}
	return s
}

// Counter returns the named monotonically increasing counter, creating it
// on first use. Returns nil (a no-op) when the registry is nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels, func(ls []Label) any {
		return &Counter{labels: ls}
	}).(*Counter)
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op) when the registry is nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels, func(ls []Label) any {
		return &Gauge{labels: ls}
	}).(*Gauge)
}

// Histogram returns the named fixed-bucket histogram, creating it on first
// use. buckets are the inclusive upper bounds, strictly increasing; the
// implicit +Inf bucket is always appended. Histograms created earlier keep
// their original buckets. Returns nil (a no-op) when the registry is nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q buckets must be strictly increasing", name))
		}
	}
	return r.lookup(name, help, kindHistogram, buckets, labels, func(ls []Label) any {
		return newHistogram(buckets, ls)
	}).(*Histogram)
}

// Value returns the current value of the (name, labels) series — counters
// and gauges only — and whether it exists. The Reporter uses it to render
// heartbeat lines; it is a read-side convenience, never a hot path.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	s, ok := f.series[seriesKey(labels)]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch m := s.(type) {
	case *Counter:
		return m.Value(), true
	case *Gauge:
		return m.Value(), true
	}
	return 0, false
}

// atomicFloat is a float64 updated with atomic bit operations. Set is a
// plain store; Add is a CAS loop (uncontended in practice: every hot-path
// writer owns its own series or updates at chunk granularity).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) {
	f.bits.Store(math.Float64bits(v))
}
func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing value. A nil Counter is a valid
// no-op, so call sites need no registry checks of their own.
type Counter struct {
	labels []Label
	v      atomicFloat
}

// Add increments the counter by v; negative or NaN increments are ignored
// (a counter never goes down).
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	c.v.add(v)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.add(1)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a value that can go up and down. A nil Gauge is a valid no-op.
type Gauge struct {
	labels []Label
	v      atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add on the bucket counter, one on the total count, and a CAS
// add on the sum. A nil Histogram is a valid no-op.
type Histogram struct {
	labels []Label
	upper  []float64 // bucket upper bounds, without +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(buckets []float64, labels []Label) *Histogram {
	return &Histogram{
		labels: labels,
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket menus are small (≤ ~20) and the common case hits
	// an early bucket, beating binary search's branch misses.
	placed := false
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// DefDurationBuckets is the default bucket menu for duration histograms in
// seconds: 100 µs to 100 s, one decade per two buckets — wide enough for
// both a microsecond parse stage and a multi-minute streaming replay.
var DefDurationBuckets = []float64{
	1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1, 3.16, 10, 31.6, 100,
}

// registryKey carries a *Registry through a context into internal/conc,
// mirroring obs.WithPool: conc sits below every consumer, so it reads its
// sink from the context instead of widening its API.
type registryKey struct{}

// WithRegistry attaches a registry to the context. Attaching nil returns
// ctx unchanged, so callers can thread a maybe-nil registry through
// unconditionally.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext extracts the registry from the context, or nil.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}
