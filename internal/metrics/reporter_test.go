package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReporterNilSafe(t *testing.T) {
	var r *Reporter
	r.Logf("ignored %d", 1)
	r.Start()
	r.Stop()
}

func TestReporterLogf(t *testing.T) {
	var b bytes.Buffer
	r := NewReporter(ReporterOptions{Out: &b})
	r.Logf("hello %s", "world")
	r.Logf("second")
	if got := b.String(); got != "hello world\nsecond\n" {
		t.Fatalf("Logf output = %q", got)
	}
	// Stop without Start is a no-op.
	r.Stop()
}

func TestReporterLogfConcurrent(t *testing.T) {
	var b bytes.Buffer
	r := NewReporter(ReporterOptions{Out: &b})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Logf("line-%04d", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "line-") || len(ln) != len("line-0000") {
			t.Fatalf("interleaved line %q", ln)
		}
	}
}

func TestReporterHeartbeatLine(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(SimRequestsReplayed, "").Add(5e6)
	reg.Gauge(SimDisksInState, "", L("state", "idle")).Set(6)
	reg.Gauge(SimDisksInState, "", L("state", "busy")).Set(2)
	reg.Gauge(SimEnergyJoules, "").Set(1234.25)

	var b bytes.Buffer
	r := NewReporter(ReporterOptions{Registry: reg, Interval: time.Hour, Total: 1e7, Out: &b})
	// Drive a beat directly instead of waiting for the ticker.
	r.start = time.Now().Add(-10 * time.Second)
	r.lastT = r.start
	r.beat(time.Now(), false)

	line := b.String()
	for _, want := range []string{"5.0M req", "(50.0%)", "req/s", "ETA", "heap", "busy=2 idle=6", "energy 1234 J"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "standby=") {
		t.Errorf("heartbeat %q shows zero-valued state", line)
	}
}

func TestReporterStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(SimRequestsReplayed, "")
	var b lockedBuffer
	r := NewReporter(ReporterOptions{Registry: reg, Interval: 5 * time.Millisecond, Total: 100, Out: &b})
	r.Start()
	r.Start() // double Start is a no-op
	c.Add(100)
	time.Sleep(25 * time.Millisecond)
	r.Stop()
	out := b.String()
	if !strings.Contains(out, "100 req (100.0%)") {
		t.Fatalf("heartbeat output missing final progress: %q", out)
	}
	// After Stop, the reporter can be restarted.
	r.Start()
	r.Stop()
}

func TestReporterZeroIntervalNoTicker(t *testing.T) {
	var b bytes.Buffer
	r := NewReporter(ReporterOptions{Registry: NewRegistry(), Out: &b})
	r.Start()
	r.Stop()
	if b.Len() != 0 {
		t.Fatalf("zero-interval reporter emitted %q", b.String())
	}
}

func TestFmtCount(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {999, "999"}, {12345, "12.3k"}, {2.1e7, "21.0M"}, {3.5e9, "3.50G"},
	}
	for _, c := range cases {
		if got := fmtCount(c.v); got != c.want {
			t.Errorf("fmtCount(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// lockedBuffer makes bytes.Buffer safe for the ticker goroutine + test reads.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
