package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed time-series value. Histograms expand into their
// Prometheus component series: one NAME_bucket sample per bucket (with an
// "le" label, cumulative counts), NAME_sum, and NAME_count.
type Sample struct {
	// Name is the sample's full exposition name (family name, or the
	// _bucket/_sum/_count suffix form for histogram components).
	Name string
	// Labels are the sample's labels, sorted by key ("le" last for
	// histogram buckets, matching exposition order).
	Labels []Label
	Value  float64
}

// id is the sample's sort identity: name, then label signature.
func (s Sample) id() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('\x00')
	for _, l := range s.Labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// snapshotFamily is one family's deterministic view.
type snapshotFamily struct {
	name, help, kind string
	samples          []Sample
}

// snapshot copies the registry into a stable-sorted view: families by
// name, series by label signature, histogram buckets in ascending bound
// order. Within one series the component reads are not atomic as a group
// (a scrape may see a count one observation ahead of the sum), which is
// the standard Prometheus exposure contract.
func (r *Registry) snapshot() []snapshotFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Copy the series maps under the lock; values are read outside it
	// (they are atomics, safe to read concurrently with writers).
	type famView struct {
		f    *family
		keys []string
		sers map[string]any
	}
	views := make([]famView, len(fams))
	for i, f := range fams {
		v := famView{f: f, sers: make(map[string]any, len(f.series))}
		for k, s := range f.series {
			v.keys = append(v.keys, k)
			v.sers[k] = s
		}
		sort.Strings(v.keys)
		views[i] = v
	}
	r.mu.Unlock()

	sort.Slice(views, func(i, j int) bool { return views[i].f.name < views[j].f.name })
	out := make([]snapshotFamily, 0, len(views))
	for _, v := range views {
		sf := snapshotFamily{name: v.f.name, help: v.f.help, kind: v.f.kind}
		for _, k := range v.keys {
			switch m := v.sers[k].(type) {
			case *Counter:
				sf.samples = append(sf.samples, Sample{Name: v.f.name, Labels: m.labels, Value: m.Value()})
			case *Gauge:
				sf.samples = append(sf.samples, Sample{Name: v.f.name, Labels: m.labels, Value: m.Value()})
			case *Histogram:
				sf.samples = append(sf.samples, histogramSamples(v.f.name, m)...)
			}
		}
		out = append(out, sf)
	}
	return out
}

// histogramSamples expands one histogram series into its exposition
// components. Bucket counts are cumulative, as the text format requires.
func histogramSamples(name string, h *Histogram) []Sample {
	out := make([]Sample, 0, len(h.upper)+3)
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		out = append(out, Sample{
			Name:   name + "_bucket",
			Labels: append(append([]Label(nil), h.labels...), Label{"le", formatValue(ub)}),
			Value:  float64(cum),
		})
	}
	cum += h.inf.Load()
	out = append(out, Sample{
		Name:   name + "_bucket",
		Labels: append(append([]Label(nil), h.labels...), Label{"le", "+Inf"}),
		Value:  float64(cum),
	})
	out = append(out,
		Sample{Name: name + "_sum", Labels: h.labels, Value: h.Sum()},
		Sample{Name: name + "_count", Labels: h.labels, Value: float64(h.Count())})
	return out
}

// Snapshot returns every sample in the registry, stable-sorted by (name,
// labels) so repeated snapshots of unchanged values are byte-identical —
// the property the golden exposition tests pin. A nil registry snapshots
// to nil.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.snapshot() {
		out = append(out, f.samples...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id() < out[j].id() })
	return out
}

// formatValue renders a sample value: integers (the overwhelmingly common
// case for counters) print without an exponent, everything else in the
// shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue applies the exposition format's label-value escaping:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies HELP-line escaping: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeSample renders one exposition line.
func writeSample(w io.Writer, s Sample) error {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteExposition renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its HELP and
// TYPE lines, series sorted by label signature, histogram buckets
// cumulative and closed by +Inf. The output is deterministic for fixed
// values, so tests can golden-pin it. A nil registry writes nothing.
func (r *Registry) WriteExposition(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}
