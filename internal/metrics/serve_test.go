package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(SimRequestsReplayed, "requests replayed")
	c.Add(41)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("Addr() = %q", addr)
	}

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	_ = ct

	code, body, ct = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, SimRequestsReplayed+" 41") {
		t.Fatalf("/metrics body missing counter: %q", body)
	}
	if fams, err := parsePromText(strings.NewReader(body)); err != nil || len(fams) == 0 {
		t.Fatalf("/metrics body not parseable: %v", err)
	}

	// Scrapes are live: a second scrape sees the updated counter.
	c.Add(1)
	_, body, _ = get("/metrics")
	if !strings.Contains(body, SimRequestsReplayed+" 42") {
		t.Fatalf("second scrape stale: %q", body)
	}

	code, _, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestServeNilRegistry(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil registry) must error")
	}
}

func TestServeCloseNil(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil Server Addr must be empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", NewRegistry()); err == nil {
		t.Fatal("Serve on a bad address must error")
	}
}
