package metrics

import (
	"testing"
)

// Package-level handles so the benchmarked calls go through the same
// nil-checked pointers the instrumented code holds, and the compiler cannot
// prove them dead.
var (
	benchCounter *Counter
	benchGauge   *Gauge
	benchHist    *Histogram
)

func BenchmarkCounterAddEnabled(b *testing.B) {
	r := NewRegistry()
	benchCounter = r.Counter("bench_total", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCounter.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	benchCounter = nil
	for i := 0; i < b.N; i++ {
		benchCounter.Add(1)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	r := NewRegistry()
	benchHist = r.Histogram("bench_seconds", "", DefDurationBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchHist.Observe(0.01)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	benchHist = nil
	for i := 0; i < b.N; i++ {
		benchHist.Observe(0.01)
	}
}

// TestNilMetricsOverheadBudget is the CI guard for the disabled fast path:
// with a nil registry, an instrumented call site must cost under 2 ns —
// i.e. one pointer check, no allocation, no atomic. The inner loop of 1000
// calls amortizes the benchmark harness overhead out of the measurement.
func TestNilMetricsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing budget not meaningful under the race detector")
	}
	const inner = 1000
	benchCounter, benchGauge, benchHist = nil, nil, nil
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < inner; j++ {
				benchCounter.Add(1)
				benchGauge.Set(1)
				benchHist.Observe(1)
			}
		}
	})
	// Three nil-path calls per inner iteration.
	perCall := float64(res.T.Nanoseconds()) / float64(res.N) / float64(inner) / 3
	t.Logf("nil fast path: %.3f ns/call", perCall)
	if perCall >= 2.0 {
		t.Fatalf("nil metrics fast path costs %.3f ns/call, budget is <2 ns", perCall)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("nil metrics fast path allocates (%d allocs/op)", res.AllocsPerOp())
	}
}
