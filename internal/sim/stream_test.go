package sim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"diskreuse/internal/obs"
	"diskreuse/internal/trace"
)

// streamLegs replays pt through every streaming source shape — in-memory
// slice chunks and the binary codec — and requires each leg bit-identical
// to the in-memory RunPrepared replay: Result, interval stream, telemetry,
// and attribution.
func TestRunStreamMatchesPrepared(t *testing.T) {
	const nReq, nDisks = 20000, 8
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		t.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := trace.EncodeBinary(&encoded, pt.Sorted(), 0, nDisks); err != nil {
		t.Fatal(err)
	}

	type leg struct {
		name string
		src  func() trace.Source
	}
	legs := []leg{
		{"slice", func() trace.Source { return pt.Source() }},
		{"slice-small-chunks", func() trace.Source { return trace.NewSliceSource(pt.Sorted(), 777) }},
		{"binary", func() trace.Source {
			rd, err := trace.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return rd
		}},
	}

	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		for _, jobs := range []int{1, 8} {
			run := func(stream trace.Source) (*Result, []Interval, *obs.SimTelemetry, *obs.ProcAttribution) {
				var ivs []Interval
				tel := obs.NewSimTelemetry(nDisks)
				attr := obs.NewProcAttribution(nDisks, 4)
				c := cfg(pol, nDisks)
				c.Jobs = jobs
				c.Record = func(iv Interval) { ivs = append(ivs, iv) }
				c.Telemetry = tel
				c.Attribution = attr
				var res *Result
				var err error
				if stream == nil {
					res, err = RunPrepared(pt, c)
				} else {
					defer stream.Close()
					res, err = RunStream(stream, diskOf, c)
				}
				if err != nil {
					t.Fatalf("%s jobs=%d: %v", pol, jobs, err)
				}
				return res, ivs, tel, attr
			}
			wantRes, wantIvs, wantTel, wantAttr := run(nil)
			for _, l := range legs {
				res, ivs, tel, attr := run(l.src())
				if !reflect.DeepEqual(wantRes, res) {
					t.Errorf("%s jobs=%d %s: Result differs from RunPrepared", pol, jobs, l.name)
				}
				if !reflect.DeepEqual(wantIvs, ivs) {
					t.Errorf("%s jobs=%d %s: interval stream differs from RunPrepared", pol, jobs, l.name)
				}
				if !reflect.DeepEqual(wantTel, tel) {
					t.Errorf("%s jobs=%d %s: telemetry differs from RunPrepared", pol, jobs, l.name)
				}
				if !reflect.DeepEqual(wantAttr, attr) {
					t.Errorf("%s jobs=%d %s: attribution differs from RunPrepared", pol, jobs, l.name)
				}
			}
		}
	}
}

// TestStreamAttributionAccounting checks the attribution bookkeeping
// against the run's own totals: per-disk attributed busy time and request
// counts must equal the disk stats exactly, and the per-tenant energy
// shares must never exceed the run's total energy.
func TestStreamAttributionAccounting(t *testing.T) {
	const nReq, nDisks, nProcs = 20000, 8, 4
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		attr := obs.NewProcAttribution(nDisks, nProcs)
		c := cfg(pol, nDisks)
		c.Attribution = attr
		res, err := RunStream(pt.Source(), diskOf, c)
		if err != nil {
			t.Fatal(err)
		}
		for d := range res.PerDisk {
			busy, n := attr.DiskTotals(d)
			if n != res.PerDisk[d].Requests {
				t.Errorf("%s disk %d: attributed %d requests, disk stats say %d", pol, d, n, res.PerDisk[d].Requests)
			}
			if math.Abs(busy-res.PerDisk[d].BusyTime) > 1e-9*(1+res.PerDisk[d].BusyTime) {
				t.Errorf("%s disk %d: attributed busy %v, disk stats say %v", pol, d, busy, res.PerDisk[d].BusyTime)
			}
		}
		shares := AttributeEnergy(res, attr)
		if len(shares) != nProcs {
			t.Fatalf("%s: AttributeEnergy returned %d shares, want %d", pol, len(shares), nProcs)
		}
		sum := 0.0
		for p, s := range shares {
			if s < 0 {
				t.Errorf("%s: tenant %d has negative energy %v", pol, p, s)
			}
			sum += s
		}
		if sum > res.Energy*(1+1e-9) {
			t.Errorf("%s: attributed energy %v exceeds run total %v", pol, sum, res.Energy)
		}
		// Every request-serving disk's energy is fully attributed, so the
		// shares account for nearly all of this trace's energy (every disk
		// serves requests here).
		if sum < res.Energy*0.99 {
			t.Errorf("%s: attributed energy %v is under 99%% of run total %v", pol, sum, res.Energy)
		}
	}
}

// TestRunStreamValidation covers the streaming path's input contract.
func TestRunStreamValidation(t *testing.T) {
	const nDisks = 4
	diskOf := modDisk(nDisks)
	sorted := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 1, Block: 1, Size: 4096},
	}

	t.Run("unsorted", func(t *testing.T) {
		reqs := []trace.Request{
			{Arrival: 5, Block: 0, Size: 4096},
			{Arrival: 1, Block: 1, Size: 4096},
		}
		c := cfg(TPM, nDisks)
		if _, err := RunStream(trace.NewSliceSource(reqs, 0), diskOf, c); err == nil {
			t.Fatal("unsorted trace accepted")
		}
	})
	t.Run("unsorted-across-chunks", func(t *testing.T) {
		reqs := []trace.Request{
			{Arrival: 5, Block: 0, Size: 4096},
			{Arrival: 1, Block: 1, Size: 4096},
		}
		c := cfg(TPM, nDisks)
		if _, err := RunStream(trace.NewSliceSource(reqs, 1), diskOf, c); err == nil {
			t.Fatal("chunk-boundary sort violation accepted")
		}
	})
	t.Run("closed-loop", func(t *testing.T) {
		c := cfg(TPM, nDisks)
		c.ClosedLoop = true
		if _, err := RunStream(trace.NewSliceSource(sorted, 0), diskOf, c); err == nil {
			t.Fatal("closed-loop streaming accepted")
		}
	})
	t.Run("no-disk-count", func(t *testing.T) {
		c := cfg(TPM, nDisks)
		c.NumDisks = 0
		if _, err := RunStream(trace.NewSliceSource(sorted, 0), diskOf, c); err == nil {
			t.Fatal("missing NumDisks accepted")
		}
	})
	t.Run("disk-out-of-range", func(t *testing.T) {
		c := cfg(TPM, nDisks)
		bad := func(block int64) (int, error) { return nDisks, nil }
		if _, err := RunStream(trace.NewSliceSource(sorted, 0), bad, c); err == nil {
			t.Fatal("out-of-range disk accepted")
		}
	})
	t.Run("attribution-proc-range", func(t *testing.T) {
		c := cfg(TPM, nDisks)
		c.Attribution = obs.NewProcAttribution(nDisks, 1)
		reqs := []trace.Request{{Arrival: 0, Block: 0, Size: 4096, Proc: 3}}
		if _, err := RunStream(trace.NewSliceSource(reqs, 0), diskOf, c); err == nil {
			t.Fatal("proc id outside the attribution range accepted")
		}
	})
	t.Run("attribution-disk-count", func(t *testing.T) {
		c := cfg(TPM, nDisks)
		c.Attribution = obs.NewProcAttribution(nDisks+1, 4)
		if _, err := RunStream(trace.NewSliceSource(sorted, 0), diskOf, c); err == nil {
			t.Fatal("attribution sized for the wrong disk count accepted")
		}
	})
}

// BenchmarkRunStream compares the streaming replay's throughput against
// the in-memory RunPrepared path it must stay within 0.8× of (BENCH_7),
// over both source shapes: zero-copy slice chunks and the binary codec.
func BenchmarkRunStream(b *testing.B) {
	const nReq, nDisks = 1 << 16, 16
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		b.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := trace.EncodeBinary(&encoded, pt.Sorted(), 0, nDisks); err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B) {
		b.ReportMetric(float64(nReq*b.N)/b.Elapsed().Seconds(), "reqs/s")
	}
	b.Run("prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunPrepared(pt, cfg(TPM, nDisks)); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
	b.Run("stream-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunStream(pt.Source(), diskOf, cfg(TPM, nDisks)); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
	b.Run("stream-binary", func(b *testing.B) {
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			rd, err := trace.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			_, err = RunStream(rd, diskOf, cfg(TPM, nDisks))
			rd.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
}
