package sim

import (
	"math"
	"reflect"
	"testing"

	"diskreuse/internal/disk"
	"diskreuse/internal/trace"
)

func cfg(p Policy, disks int) Config {
	return Config{Model: disk.Ultrastar36Z15(), NumDisks: disks, Policy: p}
}

func evenDisk(block int64) (int, error) { return int(block % 2), nil }
func oneDisk(block int64) (int, error)  { return 0, nil }

func TestNoPMEnergyAccounting(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// Two requests 10 s apart on one disk.
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 10, Block: 0, Size: 4096},
	}
	res, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc := m.FullSpeedService(4096)
	// Open-loop replay: arrivals are fixed at 0 and 10; the second request
	// completes one service time after 10.
	wantMakespan := 10 + svc
	if math.Abs(res.Makespan-wantMakespan) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, wantMakespan)
	}
	// Energy = active during 2 services + idle the rest.
	wantEnergy := 2*svc*13.5 + (wantMakespan-2*svc)*10.2
	if math.Abs(res.Energy-wantEnergy) > 1e-6 {
		t.Errorf("energy = %v, want %v", res.Energy, wantEnergy)
	}
	// Time accounting closes exactly for NoPM.
	st := res.PerDisk[0]
	if math.Abs(st.Meter.TotalTime()-wantMakespan) > 1e-9 {
		t.Errorf("TotalTime = %v, want %v", st.Meter.TotalTime(), wantMakespan)
	}
	// Disk I/O (busy) time is exactly the two services; responses match.
	if math.Abs(res.IOTime-2*svc) > 1e-9 {
		t.Errorf("IOTime = %v, want %v", res.IOTime, 2*svc)
	}
	if math.Abs(res.ResponseTime-2*svc) > 1e-9 {
		t.Errorf("ResponseTime = %v, want %v", res.ResponseTime, 2*svc)
	}
}

func TestTPMSpinsDownOnLongIdle(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// 100 s gap >> 15.2 s break-even: TPM must spin down and save energy.
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 100, Block: 0, Size: 4096},
	}
	base, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	tpm, err := Run(reqs, oneDisk, cfg(TPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tpm.Energy >= base.Energy {
		t.Errorf("TPM %v J should beat NoPM %v J on a 100s gap", tpm.Energy, base.Energy)
	}
	st := tpm.PerDisk[0]
	if st.Meter.SpinDowns != 1 || st.Meter.SpinUps != 1 {
		t.Errorf("spin downs/ups = %d/%d", st.Meter.SpinDowns, st.Meter.SpinUps)
	}
	if st.GapsOverBreakEven != 1 {
		t.Errorf("GapsOverBreakEven = %d", st.GapsOverBreakEven)
	}
	// The second request's RESPONSE pays the spin-up latency; the disk's
	// busy time (the paper's I/O-time metric) is unchanged — TPM "does not
	// incur significant performance penalties" on that metric.
	if tpm.ResponseTime <= base.ResponseTime+m.SpinUpTime-1e-9 {
		t.Errorf("TPM ResponseTime %v must include the spin-up penalty over %v", tpm.ResponseTime, base.ResponseTime)
	}
	if math.Abs(tpm.IOTime-base.IOTime) > 1e-9 {
		t.Errorf("TPM busy time %v should equal NoPM's %v", tpm.IOTime, base.IOTime)
	}
}

func TestTPMIgnoresShortIdle(t *testing.T) {
	// 5 s gaps < 15.2 s threshold: TPM behaves exactly like NoPM.
	var reqs []trace.Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, trace.Request{Arrival: float64(i) * 5, Block: 0, Size: 4096})
	}
	base, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	tpm, err := Run(reqs, oneDisk, cfg(TPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tpm.Energy-base.Energy) > 1e-9 {
		t.Errorf("TPM %v != NoPM %v with short gaps", tpm.Energy, base.Energy)
	}
	if tpm.PerDisk[0].Meter.SpinDowns != 0 {
		t.Error("no spin-down expected")
	}
}

func TestTPMBorderlineGap(t *testing.T) {
	// Gap just over the threshold but shorter than threshold + spin-down
	// + spin-up: the request must wait for the residual spin-down before
	// spinning up; energy bookkeeping must not go negative anywhere.
	m := disk.Ultrastar36Z15()
	gap := m.BreakEven + 0.5
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: gap, Block: 0, Size: 4096},
	}
	res, err := Run(reqs, oneDisk, cfg(TPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerDisk[0]
	if st.Meter.StandbyTime != 0 {
		t.Errorf("standby time = %v, want 0 for borderline gap", st.Meter.StandbyTime)
	}
	if st.Meter.SpinUps != 1 {
		t.Errorf("spin ups = %d", st.Meter.SpinUps)
	}
	// Completion: spin-down finishes at svc+thr+1.5, then spin-up 10.9.
	svc := m.FullSpeedService(4096)
	wantCompletion := svc + m.BreakEven + m.SpinDownTime + m.SpinUpTime + svc
	if math.Abs(st.LastCompletion-wantCompletion) > 1e-9 {
		t.Errorf("completion = %v, want %v", st.LastCompletion, wantCompletion)
	}
}

func TestDRPMCoastsDownDuringIdle(t *testing.T) {
	// One long gap: DRPM should step down through the levels and idle at
	// low speed, saving energy versus NoPM without TPM's spin-up penalty.
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 120, Block: 0, Size: 4096},
	}
	base, _ := Run(reqs, oneDisk, cfg(NoPM, 1))
	drpm, err := Run(reqs, oneDisk, cfg(DRPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if drpm.Energy >= base.Energy {
		t.Errorf("DRPM %v J should beat NoPM %v J", drpm.Energy, base.Energy)
	}
	st := drpm.PerDisk[0]
	if st.Meter.SpeedShifts < 4 {
		t.Errorf("speed shifts = %d, want >= 4 (coast to minimum)", st.Meter.SpeedShifts)
	}
	// DRPM services the second request at reduced speed: its busy time
	// exceeds NoPM's (the DRPM performance cost), while its response
	// avoids TPM's full 10.9 s spin-up wait.
	if drpm.IOTime <= base.IOTime {
		t.Errorf("DRPM busy time %v should exceed NoPM's %v", drpm.IOTime, base.IOTime)
	}
	tpm, _ := Run(reqs, oneDisk, cfg(TPM, 1))
	if drpm.ResponseTime >= tpm.ResponseTime {
		t.Errorf("DRPM ResponseTime %v should be below TPM's %v", drpm.ResponseTime, tpm.ResponseTime)
	}
}

func TestDRPMControllerRaisesFloor(t *testing.T) {
	// Dense request train with tiny gaps after a long coast: the first
	// window is serviced slowly; the controller must raise the floor and
	// recover speed.
	var reqs []trace.Request
	reqs = append(reqs, trace.Request{Arrival: 0, Block: 0, Size: 4096})
	tt := 200.0 // long coast
	for i := 0; i < 300; i++ {
		reqs = append(reqs, trace.Request{Arrival: tt, Block: 0, Size: 4096})
		tt += 0.006
	}
	c := cfg(DRPM, 1)
	c.DRPMWindow = 50
	res, err := Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerDisk[0]
	// Shifts: down during coast (4) and at least one up-shift from the
	// controller.
	if st.Meter.SpeedShifts <= 4 {
		t.Errorf("controller never raised speed: shifts = %d", st.Meter.SpeedShifts)
	}
}

func TestRunValidation(t *testing.T) {
	reqs := []trace.Request{{Arrival: 0, Block: 0, Size: 4096}}
	if _, err := Run(reqs, oneDisk, Config{Model: disk.Ultrastar36Z15(), NumDisks: 0}); err == nil {
		t.Error("zero disks must fail")
	}
	bad := disk.Ultrastar36Z15()
	bad.RPMStep = 7000
	if _, err := Run(reqs, oneDisk, Config{Model: bad, NumDisks: 1}); err == nil {
		t.Error("invalid model must fail")
	}
	if _, err := Run(reqs, func(int64) (int, error) { return 5, nil }, cfg(NoPM, 2)); err == nil {
		t.Error("disk index out of range must fail")
	}
}

func TestMultiDiskSeparation(t *testing.T) {
	// Alternate blocks across two disks; each disk sees half the load and
	// the per-disk stats must sum to the totals.
	var reqs []trace.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, trace.Request{Arrival: float64(i), Block: int64(i), Size: 4096})
	}
	res, err := Run(reqs, evenDisk, cfg(NoPM, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDisk[0].Requests != 10 || res.PerDisk[1].Requests != 10 {
		t.Errorf("per-disk requests: %d, %d", res.PerDisk[0].Requests, res.PerDisk[1].Requests)
	}
	sum := res.PerDisk[0].Meter.Total() + res.PerDisk[1].Meter.Total()
	if math.Abs(sum-res.Energy) > 1e-9 {
		t.Errorf("energy sum %v != total %v", sum, res.Energy)
	}
	// Both disks account for the full makespan.
	for d := 0; d < 2; d++ {
		if math.Abs(res.PerDisk[d].Meter.TotalTime()-res.Makespan) > 1e-9 {
			t.Errorf("disk %d accounts %v of %v", d, res.PerDisk[d].Meter.TotalTime(), res.Makespan)
		}
	}
}

func TestQueueingDelay(t *testing.T) {
	// Two processors issue simultaneously to one disk: the second queues
	// behind the first.
	m := disk.Ultrastar36Z15()
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096, Proc: 0},
		{Arrival: 0, Block: 0, Size: 4096, Proc: 1},
	}
	res, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc := m.FullSpeedService(4096)
	if math.Abs(res.ResponseTime-3*svc) > 1e-9 { // svc + 2·svc
		t.Errorf("ResponseTime = %v, want %v", res.ResponseTime, 3*svc)
	}
	if math.Abs(res.IOTime-2*svc) > 1e-9 { // busy time is just 2 services
		t.Errorf("IOTime = %v, want %v", res.IOTime, 2*svc)
	}
	// The same two requests from ONE fully synchronous processor
	// (AsyncDepth 1) replay closed-loop: the second is issued only after
	// the first completes — no queueing in the response either.
	for i := range reqs {
		reqs[i].Proc = 0
	}
	c := cfg(NoPM, 1)
	c.ClosedLoop = true
	c.AsyncDepth = 1
	res, err = Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ResponseTime-2*svc) > 1e-9 {
		t.Errorf("closed-loop ResponseTime = %v, want %v", res.ResponseTime, 2*svc)
	}
}

// The headline behavior (§7.2): a trace whose per-disk accesses are
// clustered in time yields more DRPM/TPM savings than an interleaved trace
// with the same requests.
func TestClusteredTraceSavesMoreEnergy(t *testing.T) {
	const D = 4
	const perDisk = 200
	const spacing = 0.2
	mkReq := func(k int, dsk int64, at float64) trace.Request {
		return trace.Request{Arrival: at, Block: dsk, Size: 4096}
	}
	roundRobin := func(block int64) (int, error) { return int(block % D), nil }

	// Interleaved: d0,d1,d2,d3,d0,... every `spacing` seconds.
	var inter []trace.Request
	tt := 0.0
	for i := 0; i < D*perDisk; i++ {
		inter = append(inter, mkReq(i, int64(i%D), tt))
		tt += spacing
	}
	// Clustered: all of d0 first, then d1, ... with the same total span.
	var clus []trace.Request
	tt = 0.0
	for d := 0; d < D; d++ {
		for i := 0; i < perDisk; i++ {
			clus = append(clus, mkReq(i, int64(d), tt))
			tt += spacing
		}
	}
	for _, pol := range []Policy{TPM, DRPM} {
		ri, err := Run(inter, roundRobin, cfg(pol, D))
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Run(clus, roundRobin, cfg(pol, D))
		if err != nil {
			t.Fatal(err)
		}
		if rc.Energy >= ri.Energy {
			t.Errorf("%v: clustered %v J should beat interleaved %v J", pol, rc.Energy, ri.Energy)
		}
	}
}

// Property: energy totals equal the sum of the meters' component energies
// and all components are non-negative, for every policy.
func TestEnergyComponentsConsistent(t *testing.T) {
	var reqs []trace.Request
	tt := 0.0
	for i := 0; i < 120; i++ {
		reqs = append(reqs, trace.Request{Arrival: tt, Block: int64(i), Size: 4096, Write: i%3 == 0})
		if i%10 == 9 {
			tt += 30 // periodic long gap
		} else {
			tt += 0.01
		}
	}
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		res, err := Run(reqs, evenDisk, cfg(pol, 2))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, st := range res.PerDisk {
			m := st.Meter
			for _, v := range []float64{m.ActiveEnergy, m.IdleEnergy, m.StandbyEnergy, m.TransitionEnergy,
				m.ActiveTime, m.IdleTime, m.StandbyTime, m.TransitionTime} {
				if v < 0 {
					t.Errorf("%v: negative component %v", pol, m)
				}
			}
			sum += m.Total()
		}
		if math.Abs(sum-res.Energy) > 1e-9 {
			t.Errorf("%v: sum %v != total %v", pol, sum, res.Energy)
		}
		if res.Requests != len(reqs) {
			t.Errorf("%v: requests = %d", pol, res.Requests)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if NoPM.String() != "NoPM" || TPM.String() != "TPM" || DRPM.String() != "DRPM" {
		t.Error("Policy.String wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must stringify")
	}
}

// mustFinite guards against the NaN trap: math.Abs(NaN-want) > eps is
// false, so assertions would silently pass on NaN results.
func mustFinite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s is not finite: %v", name, v)
	}
}

func TestResultsAreFinite(t *testing.T) {
	var reqs []trace.Request
	tt := 0.0
	for i := 0; i < 250; i++ {
		reqs = append(reqs, trace.Request{Arrival: tt, Block: int64(i), Size: 4096})
		if i%25 == 24 {
			tt += 40
		} else {
			tt += 0.008
		}
	}
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		res, err := Run(reqs, evenDisk, cfg(pol, 2))
		if err != nil {
			t.Fatal(err)
		}
		mustFinite(t, "Energy", res.Energy)
		mustFinite(t, "IOTime", res.IOTime)
		mustFinite(t, "Makespan", res.Makespan)
		if res.Energy <= 0 {
			t.Errorf("%v: energy %v must be positive", pol, res.Energy)
		}
		for d, st := range res.PerDisk {
			mustFinite(t, "disk meter", st.Meter.Total())
			if st.Meter.Total() <= 0 {
				t.Errorf("%v disk %d: zero energy", pol, d)
			}
		}
	}
}

func TestProactiveHintsHideSpinUp(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// One long gap; the hint fires early enough to hide the whole wake-up.
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 100, Block: 0, Size: 4096},
	}
	reactive, err := Run(reqs, oneDisk, cfg(TPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	hints, err := trace.ProactiveHints(reqs, oneDisk, m.BreakEven, m.SpinDownTime, m.SpinUpTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 1 {
		t.Fatalf("hints = %v", hints)
	}
	if math.Abs(hints[0].Time-(100-m.SpinUpTime)) > 1e-9 {
		t.Errorf("hint time = %v", hints[0].Time)
	}
	c := cfg(TPM, 1)
	c.Hints = hints
	proactive, err := Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	// The reactive run pays the 10.9 s wake in the second response; the
	// proactive one does not.
	svc := m.FullSpeedService(4096)
	if reactive.ResponseTime < 2*svc+m.SpinUpTime-1e-9 {
		t.Errorf("reactive response %v should include the wake", reactive.ResponseTime)
	}
	if math.Abs(proactive.ResponseTime-2*svc) > 1e-9 {
		t.Errorf("proactive response = %v, want %v", proactive.ResponseTime, 2*svc)
	}
	// Proactive also finishes earlier (shorter makespan => less energy).
	if proactive.Makespan >= reactive.Makespan {
		t.Errorf("proactive makespan %v should beat reactive %v", proactive.Makespan, reactive.Makespan)
	}
	if proactive.PerDisk[0].Meter.SpinUps != 1 {
		t.Errorf("spin ups = %d", proactive.PerDisk[0].Meter.SpinUps)
	}
}

func TestProactiveHintsClampedToSpinDown(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// Gap barely over threshold: the hint cannot precede the spin-down's
	// completion, so only part of the wake is hidden.
	gap := m.BreakEven + m.SpinDownTime + 2
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: gap, Block: 0, Size: 4096},
	}
	hints, err := trace.ProactiveHints(reqs, oneDisk, m.BreakEven, m.SpinDownTime, m.SpinUpTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 1 {
		t.Fatalf("hints = %v", hints)
	}
	c := cfg(TPM, 1)
	c.Hints = hints
	pro, err := Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(reqs, oneDisk, cfg(TPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if pro.ResponseTime >= re.ResponseTime {
		t.Errorf("partial hiding should still help: %v vs %v", pro.ResponseTime, re.ResponseTime)
	}
}

func TestHintValidation(t *testing.T) {
	reqs := []trace.Request{{Arrival: 0, Block: 0, Size: 4096}}
	c := cfg(TPM, 1)
	c.Hints = []trace.Hint{{Time: 1, Disk: 5}}
	if _, err := Run(reqs, oneDisk, c); err == nil {
		t.Error("hint for unknown disk must fail")
	}
	// Hints are harmless for short gaps and other policies.
	short := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 1, Block: 0, Size: 4096},
	}
	c = cfg(TPM, 1)
	c.Hints = []trace.Hint{{Time: 0.5, Disk: 0}}
	res, err := Run(short, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDisk[0].Meter.SpinUps != 0 {
		t.Error("redundant hint must not wake anything")
	}
	c.Policy = DRPM
	if _, err := Run(short, oneDisk, c); err != nil {
		t.Errorf("DRPM must ignore hints: %v", err)
	}
}

func TestRAIDWidthParallelism(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// Two processors fire simultaneously at one I/O node. With one
	// physical disk the second queues; with RAID width 2 they run in
	// parallel.
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096, Proc: 0},
		{Arrival: 0, Block: 0, Size: 4096, Proc: 1},
	}
	svc := m.FullSpeedService(4096)
	serial, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.ResponseTime-3*svc) > 1e-9 {
		t.Errorf("serial response = %v, want %v", serial.ResponseTime, 3*svc)
	}
	c := cfg(NoPM, 1)
	c.RAIDWidth = 2
	par, err := Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.ResponseTime-2*svc) > 1e-9 {
		t.Errorf("parallel response = %v, want %v", par.ResponseTime, 2*svc)
	}
	if math.Abs(par.Makespan-svc) > 1e-9 {
		t.Errorf("parallel makespan = %v, want %v", par.Makespan, svc)
	}
}

func TestRAIDWidthScalesPower(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Block: 0, Size: 4096},
		{Arrival: 10, Block: 0, Size: 4096},
	}
	one, err := Run(reqs, oneDisk, cfg(NoPM, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(NoPM, 1)
	c.RAIDWidth = 3
	three, err := Run(reqs, oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	// Same timing (no contention), triple the power draw.
	if math.Abs(three.Makespan-one.Makespan) > 1e-9 {
		t.Errorf("makespan changed: %v vs %v", three.Makespan, one.Makespan)
	}
	if math.Abs(three.Energy-3*one.Energy) > 1e-6 {
		t.Errorf("energy = %v, want %v", three.Energy, 3*one.Energy)
	}
}

// The paper's footnote: "the experiments with low-level striping generated
// similar results" — normalized savings are nearly unchanged by RAID width
// because both the baseline and the managed run scale together.
func TestRAIDWidthPreservesNormalizedSavings(t *testing.T) {
	var reqs []trace.Request
	tt := 0.0
	for burst := 0; burst < 6; burst++ {
		for i := 0; i < 40; i++ {
			reqs = append(reqs, trace.Request{Arrival: tt, Block: int64(i), Size: 4096})
			tt += 0.006
		}
		tt += 60 // long sleepable gap
	}
	saving := func(width int) float64 {
		base := cfg(NoPM, 1)
		base.RAIDWidth = width
		b, err := Run(reqs, oneDisk, base)
		if err != nil {
			t.Fatal(err)
		}
		tc := cfg(TPM, 1)
		tc.RAIDWidth = width
		tp, err := Run(reqs, oneDisk, tc)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - tp.Energy/b.Energy
	}
	s1, s4 := saving(1), saving(4)
	if s1 <= 0 {
		t.Fatalf("expected TPM savings, got %v", s1)
	}
	if math.Abs(s1-s4) > 0.05 {
		t.Errorf("normalized savings should be similar across widths: %.3f vs %.3f", s1, s4)
	}
}

// The §4 claim: the same 8-second idle periods that are useless to TPM on
// a server-class disk (break-even 15.2 s) are profitable on a mobile disk
// with order-of-magnitude cheaper spin transitions.
func TestMobileDiskMakesTPMViable(t *testing.T) {
	var reqs []trace.Request
	tt := 0.0
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 10; i++ {
			reqs = append(reqs, trace.Request{Arrival: tt, Block: 0, Size: 4096})
			tt += 0.03
		}
		tt += 20 // idle period: above the mobile break-even, below the server's...
	}
	run := func(m disk.Model, pol Policy) float64 {
		res, err := Run(reqs, oneDisk, Config{Model: m, NumDisks: 1, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	server := disk.Ultrastar36Z15()
	mobile := disk.Travelstar40GN()
	// Server: 20 s > 15.2 s break-even, but barely — marginal gains at best.
	serverSaving := 1 - run(server, TPM)/run(server, NoPM)
	mobileSaving := 1 - run(mobile, TPM)/run(mobile, NoPM)
	if mobileSaving <= serverSaving {
		t.Errorf("mobile TPM saving %.1f%% should beat server %.1f%% on 20s idles",
			100*mobileSaving, 100*serverSaving)
	}
	if mobileSaving < 0.3 {
		t.Errorf("mobile TPM should thrive on 20s idles, got %.1f%%", 100*mobileSaving)
	}
	// Shorter 12 s idles: useless for the server disk, still good for mobile.
	var short []trace.Request
	tt = 0
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 10; i++ {
			short = append(short, trace.Request{Arrival: tt, Block: 0, Size: 4096})
			tt += 0.03
		}
		tt += 12
	}
	reqs = short
	if s := 1 - run(server, TPM)/run(server, NoPM); s > 0.001 {
		t.Errorf("server TPM should do nothing on 12s idles, saved %.2f%%", 100*s)
	}
	if s := 1 - run(mobile, TPM)/run(mobile, NoPM); s < 0.1 {
		t.Errorf("mobile TPM should exploit 12s idles, saved only %.2f%%", 100*s)
	}
}

// TestSortedFastPathEquivalence pins the allocation-lean replay paths: a
// shuffled trace must produce results identical to the same trace in
// arrival order (the presorted fast path skips the defensive copy and the
// per-disk stable re-sort), for both replay models and all policies — and
// Run must never mutate the caller's slice.
func TestSortedFastPathEquivalence(t *testing.T) {
	var sorted []trace.Request
	for i := 0; i < 400; i++ {
		sorted = append(sorted, trace.Request{
			Arrival: float64(i) * 0.9,
			Block:   int64(i * 7 % 32),
			Size:    4096,
			Proc:    i % 3,
		})
	}
	// Deterministic shuffle (LCG index permutation).
	shuffled := make([]trace.Request, len(sorted))
	perm := make([]int, len(sorted))
	for i := range perm {
		perm[i] = i
	}
	state := uint64(42)
	for i := len(perm) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, p := range perm {
		shuffled[i] = sorted[p]
	}
	backup := append([]trace.Request(nil), shuffled...)

	diskOf := func(block int64) (int, error) { return int(block % 4), nil }
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		for _, closed := range []bool{false, true} {
			c := cfg(pol, 4)
			c.ClosedLoop = closed
			a, err := Run(sorted, diskOf, c)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(shuffled, diskOf, c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s closed=%v: shuffled input changed the result", pol, closed)
			}
		}
	}
	if !reflect.DeepEqual(shuffled, backup) {
		t.Error("Run mutated the caller's request slice")
	}
}
