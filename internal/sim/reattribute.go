package sim

import (
	"fmt"

	"diskreuse/internal/trace"
)

// Reattributer replays one fixed request stream under many block-to-disk
// mappings. A candidate disk layout changes only where each request lands —
// never the arrival order, sizes, or processor streams — so the layout
// search prepares the stream once (arrival-order verification and the
// per-processor grouping) and re-attributes per candidate: one counting
// pass, one carve of the per-disk shards into reusable scratch, then the
// ordinary prepared replay. Nothing is re-sorted or re-generated.
//
// RunReattributed produces exactly the Result that PrepareTrace followed by
// RunPrepared would for the same attribution: the scratch carve is the same
// flat-backing carve PrepareTrace performs, and the replay goes through the
// identical open-loop machinery, so energies agree bit for bit.
//
// A Reattributer owns mutable scratch: concurrent RunReattributed calls on
// one value race. Parallel searches give each worker its own via Clone.
type Reattributer struct {
	sorted   []trace.Request
	procIDs  []int
	procReqs [][]int

	// Per-run scratch, reused across candidates.
	diskIdx []int
	counts  []int
	backing []trace.Request
	perDisk [][]trace.Request
}

// NewReattributer prepares the layout-independent part of a replay over
// sorted, which must already be in arrival order (the layout search's
// traces are generated sorted). sorted is aliased, never mutated.
func NewReattributer(sorted []trace.Request) (*Reattributer, error) {
	if !trace.SortedByArrival(sorted) {
		return nil, fmt.Errorf("sim: reattributed trace must be sorted by arrival")
	}
	procIDs, procReqs := trace.ProcStreams(sorted)
	return &Reattributer{
		sorted:   sorted,
		procIDs:  procIDs,
		procReqs: procReqs,
		diskIdx:  make([]int, len(sorted)),
		backing:  make([]trace.Request, len(sorted)),
	}, nil
}

// Clone returns a Reattributer sharing the immutable stream and processor
// grouping but with its own scratch, so parallel workers can re-attribute
// the same trace concurrently.
func (ra *Reattributer) Clone() *Reattributer {
	return &Reattributer{
		sorted:   ra.sorted,
		procIDs:  ra.procIDs,
		procReqs: ra.procReqs,
		diskIdx:  make([]int, len(ra.sorted)),
		backing:  make([]trace.Request, len(ra.sorted)),
	}
}

// Requests returns the number of requests in the stream.
func (ra *Reattributer) Requests() int { return len(ra.sorted) }

// Sorted returns the arrival-ordered request stream (read-only).
func (ra *Reattributer) Sorted() []trace.Request { return ra.sorted }

// RunReattributed replays ra's request stream with per-request disk
// attribution diskOf(i) — the disk of ra.Sorted()[i] under the candidate
// layout — and simulates it under cfg. cfg.NumDisks must be set explicitly
// (there is no prepared trace to adopt it from). The result is bit-for-bit
// identical to PrepareTrace + RunPrepared with an equivalent block-to-disk
// mapping.
func RunReattributed(ra *Reattributer, diskOf func(i int) int, cfg Config) (*Result, error) {
	numDisks := cfg.NumDisks
	if numDisks <= 0 {
		return nil, fmt.Errorf("sim: RunReattributed needs an explicit positive NumDisks (got %d)", numDisks)
	}
	if cap(ra.counts) < numDisks {
		ra.counts = make([]int, numDisks)
		ra.perDisk = make([][]trace.Request, numDisks)
	}
	counts := ra.counts[:numDisks]
	for d := range counts {
		counts[d] = 0
	}
	for i := range ra.sorted {
		d := diskOf(i)
		if d < 0 || d >= numDisks {
			return nil, fmt.Errorf("sim: request %d maps to disk %d outside 0..%d", i, d, numDisks-1)
		}
		ra.diskIdx[i] = d
		counts[d]++
	}
	perDisk := ra.perDisk[:numDisks]
	off := 0
	for d, n := range counts {
		perDisk[d] = ra.backing[off:off : off+n]
		off += n
	}
	for i, r := range ra.sorted {
		d := ra.diskIdx[i]
		perDisk[d] = append(perDisk[d], r)
	}
	pt := &PreparedTrace{
		numDisks: numDisks,
		sorted:   ra.sorted,
		diskIdx:  ra.diskIdx,
		perDisk:  perDisk,
		procIDs:  ra.procIDs,
		procReqs: ra.procReqs,
	}
	return RunPrepared(pt, cfg)
}
