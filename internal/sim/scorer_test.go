package sim

import (
	"strings"
	"testing"

	"diskreuse/internal/disk"
	"diskreuse/internal/trace"
)

// TestEnergyScorerMatchesPrepared pins the memoizing scorer's exactness:
// every summary field equals the corresponding Result field of the full
// prepared replay, bit for bit, across policies and disk counts — both on
// the first (replaying) pass and on a second (fully cached) pass, and
// after interleaving other candidates so cached entries are re-folded
// against different makespans.
func TestEnergyScorerMatchesPrepared(t *testing.T) {
	model := disk.Ultrastar36Z15()
	reqs := randomTrace(42, 800, 6, 3)
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		sc, err := NewEnergyScorer(reqs, Config{Model: model, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		check := func(shift, disks int, pass string) {
			t.Helper()
			diskOf := func(i int) int { return int((reqs[i].Block + int64(shift)) % int64(disks)) }
			got, err := sc.Score(diskOf, disks)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := PrepareTrace(reqs, func(b int64) (int, error) {
				return int((b + int64(shift)) % int64(disks)), nil
			}, disks)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunPrepared(pt, Config{Model: model, NumDisks: disks, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if got.Energy != want.Energy || got.IOTime != want.IOTime ||
				got.ResponseTime != want.ResponseTime || got.Makespan != want.Makespan ||
				got.Requests != want.Requests {
				t.Fatalf("pol=%v disks=%d shift=%d %s: scorer diverged\ngot  %+v\nwant %+v",
					pol, disks, shift, pass, got, want)
			}
		}
		// First passes replay, repeats hit the per-disk cache; candidates
		// with different disk counts interleave so partial overlaps (same
		// subsequence, different makespan) are re-folded from cache.
		for _, disks := range []int{1, 4, 6} {
			for shift := 0; shift < 3; shift++ {
				check(shift, disks, "cold")
			}
		}
		for _, disks := range []int{6, 4, 1} {
			for shift := 2; shift >= 0; shift-- {
				check(shift, disks, "cached")
			}
		}
	}
}

// TestEnergyScorerSharedAttribution pins that one attribution carve can
// feed scorers of different policies and yields the same summaries as the
// per-scorer convenience path.
func TestEnergyScorerSharedAttribution(t *testing.T) {
	model := disk.Ultrastar36Z15()
	reqs := randomTrace(9, 500, 4, 2)
	const disks = 4
	diskOf := func(i int) int { return int(reqs[i].Block % disks) }
	var att Attribution
	if err := att.Build(len(reqs), diskOf, disks); err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{TPM, DRPM} {
		sc, err := NewEnergyScorer(reqs, Config{Model: model, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		viaAtt, err := sc.ScoreAttribution(&att)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sc.Clone().Score(diskOf, disks)
		if err != nil {
			t.Fatal(err)
		}
		if viaAtt != direct {
			t.Fatalf("pol=%v: shared attribution diverged\ngot  %+v\nwant %+v", pol, viaAtt, direct)
		}
	}
}

func TestEnergyScorerClone(t *testing.T) {
	reqs := randomTrace(5, 300, 3, 1)
	sc, err := NewEnergyScorer(reqs, Config{Model: disk.Ultrastar36Z15(), Policy: DRPM})
	if err != nil {
		t.Fatal(err)
	}
	diskOf := func(i int) int { return int(reqs[i].Block % 3) }
	a, err := sc.Score(diskOf, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Clone().Score(diskOf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("clone diverged:\ngot  %+v\nwant %+v", b, a)
	}
}

func TestEnergyScorerRejections(t *testing.T) {
	reqs := randomTrace(1, 100, 2, 1)
	model := disk.Ultrastar36Z15()

	bad := append(reqs[:0:0], reqs...)
	bad[0].Arrival = bad[len(bad)-1].Arrival + 1
	if _, err := NewEnergyScorer(bad, Config{Model: model}); err == nil ||
		!strings.Contains(err.Error(), "sorted by arrival") {
		t.Fatalf("unsorted: err = %v", err)
	}
	if _, err := NewEnergyScorer(reqs, Config{Model: model, ClosedLoop: true}); err == nil ||
		!strings.Contains(err.Error(), "open-loop") {
		t.Fatalf("closed loop: err = %v", err)
	}
	if _, err := NewEnergyScorer(reqs, Config{Model: model, Record: func(Interval) {}}); err == nil ||
		!strings.Contains(err.Error(), "observers") {
		t.Fatalf("record: err = %v", err)
	}
	if _, err := NewEnergyScorer(reqs, Config{Model: model, Hints: []trace.Hint{{}}}); err == nil {
		t.Fatal("hints must be rejected")
	}

	sc, err := NewEnergyScorer(reqs, Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Score(func(int) int { return 0 }, 0); err == nil ||
		!strings.Contains(err.Error(), "positive disk count") {
		t.Fatalf("zero disks: err = %v", err)
	}
	if _, err := sc.Score(func(int) int { return 5 }, 2); err == nil ||
		!strings.Contains(err.Error(), "outside 0..1") {
		t.Fatalf("out of range: err = %v", err)
	}
	var att Attribution
	if err := att.Build(10, func(int) int { return 0 }, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ScoreAttribution(&att); err == nil ||
		!strings.Contains(err.Error(), "built over") {
		t.Fatalf("length mismatch: err = %v", err)
	}
}
