package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"

	"diskreuse/internal/conc"
	"diskreuse/internal/obs"
	"diskreuse/internal/trace"
)

// RunStream is the out-of-core replay path: it consumes a trace.Source
// chunk by chunk instead of a prepared in-memory trace, so a trace far
// larger than RAM replays with the memory footprint of one chunk plus the
// per-disk simulator state. The source must be arrival-sorted (generated
// and synthesized traces are; RunStream verifies as it goes, across chunk
// boundaries too) and the replay is open-loop only — the closed-loop model
// needs every processor's full request stream in memory.
//
// The per-disk shards of the open-loop replay become streaming reducers:
// each chunk is partitioned per disk and the per-disk subsequences fan out
// over cfg.Jobs workers against persistent per-disk simulator state, with
// per-disk partial response-time sums and makespans folded in disk order
// at the end — the same float summation order as RunPrepared's disk-major
// fold, so the Result, the Record stream, the telemetry, and the
// attribution are bit-identical to the in-memory path at any Jobs count.
//
// cfg.NumDisks must be set explicitly (there is no prepared trace to
// adopt it from). When cfg.Record is set, intervals are buffered per disk
// until the end of the replay so the stream matches the in-memory path
// exactly — recording therefore costs memory proportional to the interval
// count and is meant for paper-scale traces, not out-of-core ones.
func RunStream(src trace.Source, diskOf func(block int64) (int, error), cfg Config) (*Result, error) {
	cfg, err := cfg.normalize(0)
	if err != nil {
		return nil, err
	}
	if cfg.ClosedLoop {
		return nil, fmt.Errorf("sim: the streaming replay is open-loop only (the closed-loop model needs the whole trace in memory; decode it and use Run)")
	}

	res := &Result{
		PerDisk: make([]DiskStats, cfg.NumDisks),
		Policy:  cfg.Policy,
	}
	states := newStates(cfg, res)

	sp := cfg.Span.Child("stream-replay")
	defer sp.End()

	// Per-disk streaming reducer state: the partial folds RunPrepared's
	// workers keep, plus this chunk's request indices. The scratch index
	// lists are reused across chunks, so the steady state allocates
	// nothing per chunk once they reach their high-water marks.
	type shard struct {
		resp     float64
		makespan float64
		idx      []int
		ivs      []Interval
	}
	shards := make([]shard, cfg.NumDisks)
	record := cfg.Record
	if record != nil {
		for d := range states {
			buf := &shards[d].ivs
			states[d].cfg.Record = func(iv Interval) { *buf = append(*buf, iv) }
		}
	}
	attr := cfg.Attribution
	// Live metrics update at chunk granularity: the requests counter and
	// energy gauge move once per chunk (between sharded passes, so the
	// meter reads are race-free), which is what a monitoring scrape of a
	// long out-of-core replay watches.
	lm := states[0].lm
	touched := make([]int, 0, cfg.NumDisks)
	lastArrival := math.Inf(-1)
	maxprocs := runtime.GOMAXPROCS(0)
	var total, chunks int64
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			continue
		}
		jobs := cfg.Jobs
		if jobs == 0 && (len(chunk) < minParallelRequests || maxprocs == 1) {
			jobs = 1
		}
		if jobs == 1 {
			// Fused serial path: when the replay is effectively serial
			// there is nothing to fan out, so one pass does validation,
			// disk attribution, and replay together — no scratch index
			// lists and no second walk over the chunk. The per-disk
			// accumulation order (each disk's requests in arrival order)
			// is the same as the sharded path's, so the two are
			// bit-identical.
			for i := range chunk {
				r := &chunk[i]
				if r.Arrival < lastArrival {
					return nil, fmt.Errorf("sim: streaming replay requires an arrival-sorted trace: request %d arrives at %v after %v",
						total+int64(i), r.Arrival, lastArrival)
				}
				lastArrival = r.Arrival
				d, err := diskOf(r.Block)
				if err != nil {
					return nil, err
				}
				if d < 0 || d >= cfg.NumDisks {
					return nil, fmt.Errorf("sim: block %d maps to disk %d outside 0..%d", r.Block, d, cfg.NumDisks-1)
				}
				if attr != nil && (r.Proc < 0 || r.Proc >= attr.NumProcs()) {
					return nil, fmt.Errorf("sim: Attribution sized for %d processors but the trace has processor id %d (size it with obs.NewProcAttribution)",
						attr.NumProcs(), r.Proc)
				}
				sh := &shards[d]
				st := &res.PerDisk[d]
				busy0 := st.BusyTime
				completion, rt := states[d].service(r.Arrival, r.Size, st)
				sh.resp += rt
				if completion > sh.makespan {
					sh.makespan = completion
				}
				if attr != nil {
					attr.Observe(d, r.Proc, st.BusyTime-busy0, rt)
				}
			}
			total += int64(len(chunk))
			chunks++
			if lm != nil {
				lm.requests.Add(float64(len(chunk)))
				lm.publishEnergy(res.PerDisk)
			}
			continue
		}
		touched = touched[:0]
		if shards[0].idx == nil {
			// Pre-size the scratch index lists for a uniform spread of this
			// chunk size, so the first chunk doesn't pay growth reallocs;
			// skewed disks still grow to their high-water mark once.
			presize := 2*len(chunk)/cfg.NumDisks + 16
			for d := range shards {
				shards[d].idx = make([]int, 0, presize)
			}
		}
		for i := range chunk {
			r := &chunk[i]
			if r.Arrival < lastArrival {
				return nil, fmt.Errorf("sim: streaming replay requires an arrival-sorted trace: request %d arrives at %v after %v",
					total+int64(i), r.Arrival, lastArrival)
			}
			lastArrival = r.Arrival
			d, err := diskOf(r.Block)
			if err != nil {
				return nil, err
			}
			if d < 0 || d >= cfg.NumDisks {
				return nil, fmt.Errorf("sim: block %d maps to disk %d outside 0..%d", r.Block, d, cfg.NumDisks-1)
			}
			if attr != nil && (r.Proc < 0 || r.Proc >= attr.NumProcs()) {
				return nil, fmt.Errorf("sim: Attribution sized for %d processors but the trace has processor id %d (size it with obs.NewProcAttribution)",
					attr.NumProcs(), r.Proc)
			}
			if len(shards[d].idx) == 0 {
				touched = append(touched, d)
			}
			shards[d].idx = append(shards[d].idx, i)
		}
		total += int64(len(chunk))
		chunks++
		err = conc.ForEach(context.Background(), len(touched), jobs, func(_ context.Context, k int) error {
			d := touched[k]
			sh := &shards[d]
			ds := states[d]
			st := &res.PerDisk[d]
			for _, i := range sh.idx {
				r := &chunk[i]
				busy0 := st.BusyTime
				completion, rt := ds.service(r.Arrival, r.Size, st)
				sh.resp += rt
				if completion > sh.makespan {
					sh.makespan = completion
				}
				if attr != nil {
					attr.Observe(d, r.Proc, st.BusyTime-busy0, rt)
				}
			}
			sh.idx = sh.idx[:0]
			return nil
		})
		if err != nil {
			return nil, err
		}
		if lm != nil {
			lm.requests.Add(float64(len(chunk)))
			lm.publishEnergy(res.PerDisk)
		}
	}
	res.Requests = int(total)
	sp.SetAttr("chunks", strconv.FormatInt(chunks, 10))
	sp.SetAttr("requests", strconv.FormatInt(total, 10))

	// Fold the per-disk partials in disk order — the same summation and
	// interval order as the serial disk-major loop.
	for d := range shards {
		res.ResponseTime += shards[d].resp
		if shards[d].makespan > res.Makespan {
			res.Makespan = shards[d].makespan
		}
	}
	if record != nil {
		for d := range shards {
			for _, iv := range shards[d].ivs {
				record(iv)
			}
			// The tail accounting below emits directly.
			states[d].cfg.Record = record
		}
	}
	finishRun(cfg, states, res)
	return res, nil
}

// AttributeEnergy divides a run's metered energy among the processors
// (tenants) of its attribution accumulator: each disk's active energy is
// shared in proportion to the busy time a tenant consumed there, and its
// idle, standby, and transition energy — the cost of keeping the disk
// available between requests — in proportion to the tenant's request
// count on that disk. The returned slice is indexed by processor id.
//
// Disks that served no requests keep their (idle-tail) energy
// unattributed, so the per-tenant shares sum to at most res.Energy, with
// the remainder being the standing cost of request-free disks.
func AttributeEnergy(res *Result, attr *obs.ProcAttribution) []float64 {
	out := make([]float64, attr.NumProcs())
	for d := range res.PerDisk {
		if d >= attr.NumDisks() {
			break
		}
		m := &res.PerDisk[d].Meter
		busyTot, reqTot := attr.DiskTotals(d)
		shared := m.IdleEnergy + m.StandbyEnergy + m.TransitionEnergy
		for p := range out {
			c := attr.Cell(d, p)
			if busyTot > 0 && c.BusyS > 0 {
				out[p] += m.ActiveEnergy * (c.BusyS / busyTot)
			}
			if reqTot > 0 && c.Requests > 0 {
				out[p] += shared * (float64(c.Requests) / float64(reqTot))
			}
		}
	}
	return out
}
