package sim

import (
	"reflect"
	"strings"
	"testing"

	"diskreuse/internal/trace"
)

// lcg is a deterministic pseudo-random source for the property tests (no
// seed-dependent flakiness, reproducible failures).
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

// randomTrace builds a bursty multi-disk, multi-processor trace: dense
// request trains, occasional sleepable gaps (so TPM/DRPM state machines
// exercise their transitions), exact-arrival ties (so tie-break and stable
// ordering paths are hit), and mixed sizes.
func randomTrace(seed uint64, n, disks, procs int) []trace.Request {
	g := lcg(seed)
	reqs := make([]trace.Request, 0, n)
	tt := 0.0
	for i := 0; i < n; i++ {
		switch g.intn(20) {
		case 0:
			tt += 20 + float64(g.intn(40)) // long, sleepable gap
		case 1, 2:
			// exact-arrival tie with the previous request
		default:
			tt += float64(g.intn(100)) * 1e-3
		}
		size := int64(4096)
		if g.intn(4) == 0 {
			size = 8192
		}
		reqs = append(reqs, trace.Request{
			Arrival: tt,
			Block:   int64(g.intn(disks * 64)),
			Size:    size,
			Write:   g.intn(3) == 0,
			Proc:    g.intn(procs),
		})
	}
	return reqs
}

func modDisk(disks int) func(int64) (int, error) {
	return func(b int64) (int, error) { return int(b % int64(disks)), nil }
}

// TestParallelOpenLoopMatchesSerial pins the sharded open-loop replay's
// determinism contract: at every worker count 1..8 the Result is
// reflect.DeepEqual to the serial (Jobs 1) run — same float summation
// order, same per-disk stats — and the recorded interval stream is
// identical element for element.
func TestParallelOpenLoopMatchesSerial(t *testing.T) {
	cases := []struct {
		seed            uint64
		n, disks, procs int
	}{
		{1, 400, 1, 1},
		{2, 800, 4, 3},
		{3, 1500, 8, 4},
		{4, 300, 5, 2},
	}
	for _, tc := range cases {
		reqs := randomTrace(tc.seed, tc.n, tc.disks, tc.procs)
		diskOf := modDisk(tc.disks)
		for _, pol := range []Policy{NoPM, TPM, DRPM} {
			ref := cfg(pol, tc.disks)
			ref.Jobs = 1
			var refIvs []Interval
			ref.Record = func(iv Interval) { refIvs = append(refIvs, iv) }
			want, err := Run(reqs, diskOf, ref)
			if err != nil {
				t.Fatal(err)
			}
			for jobs := 2; jobs <= 8; jobs++ {
				c := cfg(pol, tc.disks)
				c.Jobs = jobs
				var ivs []Interval
				c.Record = func(iv Interval) { ivs = append(ivs, iv) }
				got, err := Run(reqs, diskOf, c)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d %v jobs=%d: result differs from serial", tc.seed, pol, jobs)
				}
				if !reflect.DeepEqual(ivs, refIvs) {
					t.Errorf("seed %d %v jobs=%d: interval stream differs from serial", tc.seed, pol, jobs)
				}
			}
		}
	}
}

// TestRunPreparedMatchesRun pins the bucket-once-replay-many contract: one
// PreparedTrace reused across every policy and both replay models gives
// results identical to preparing from scratch per run.
func TestRunPreparedMatchesRun(t *testing.T) {
	const disks = 8
	reqs := randomTrace(9, 900, disks, 4)
	diskOf := modDisk(disks)
	pt, err := PrepareTrace(reqs, diskOf, disks)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumDisks() != disks || pt.Requests() != len(reqs) {
		t.Fatalf("prepared trace: %d disks, %d requests", pt.NumDisks(), pt.Requests())
	}
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		for _, closed := range []bool{false, true} {
			c := cfg(pol, disks)
			c.ClosedLoop = closed
			direct, err := Run(reqs, diskOf, c)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := RunPrepared(pt, c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reused, direct) {
				t.Errorf("%v closed=%v: prepared-trace reuse changed the result", pol, closed)
			}
		}
	}
}

// TestPrepareTraceNotMutatedByRun pins the immutability contract behind
// the harness's read-only sharing: replaying a PreparedTrace — serial,
// parallel, closed-loop, RAID-striped — must leave every prepared
// artifact bit-identical, so concurrent RunPrepared calls are safe.
func TestPrepareTraceNotMutatedByRun(t *testing.T) {
	const disks = 4
	reqs := randomTrace(7, 600, disks, 3)
	pt, err := PrepareTrace(reqs, modDisk(disks), disks)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]trace.Request(nil), pt.sorted...)
	diskIdx := append([]int(nil), pt.diskIdx...)
	perDisk := make([][]trace.Request, len(pt.perDisk))
	for d := range pt.perDisk {
		perDisk[d] = append([]trace.Request(nil), pt.perDisk[d]...)
	}
	procIDs := append([]int(nil), pt.procIDs...)
	procReqs := make([][]int, len(pt.procReqs))
	for k := range pt.procReqs {
		procReqs[k] = append([]int(nil), pt.procReqs[k]...)
	}

	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		for _, closed := range []bool{false, true} {
			c := cfg(pol, disks)
			c.ClosedLoop = closed
			c.Jobs = 3
			c.RAIDWidth = 2
			if _, err := RunPrepared(pt, c); err != nil {
				t.Fatal(err)
			}
		}
	}

	if !reflect.DeepEqual(pt.sorted, sorted) {
		t.Error("Run mutated the prepared arrival order")
	}
	if !reflect.DeepEqual(pt.diskIdx, diskIdx) {
		t.Error("Run mutated the prepared disk attribution")
	}
	if !reflect.DeepEqual(pt.perDisk, perDisk) {
		t.Error("Run mutated the prepared per-disk queues")
	}
	if !reflect.DeepEqual(pt.procIDs, procIDs) || !reflect.DeepEqual(pt.procReqs, procReqs) {
		t.Error("Run mutated the prepared processor streams")
	}
}

// TestClosedLoopTieBreakIsInsertionIndependent pins the streamHeap
// tie-break: processors whose next issues fall at the exact same time are
// serviced in processor-id order, so permuting equal-arrival input lines
// (which permutes the heap's insertion history) cannot change the replay.
func TestClosedLoopTieBreakIsInsertionIndependent(t *testing.T) {
	// Three processors, identical arrival clocks, per-processor sizes: the
	// service order at each tie determines each request's queueing delay,
	// so any insertion-order dependence would show in ResponseTime.
	mk := func(order []int) []trace.Request {
		var reqs []trace.Request
		for step := 0; step < 5; step++ {
			for _, p := range order {
				reqs = append(reqs, trace.Request{
					Arrival: float64(step) * 2,
					Block:   0,
					Size:    4096 << p,
					Proc:    p,
				})
			}
		}
		return reqs
	}
	c := cfg(NoPM, 1)
	c.ClosedLoop = true
	c.AsyncDepth = 1
	fwd, err := Run(mk([]int{0, 1, 2}), oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(mk([]int{2, 1, 0}), oneDisk, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Errorf("equal-time replay depends on input permutation: %+v vs %+v", fwd, rev)
	}
}

// TestConfigValidation covers the explicit knob validation: negative Jobs,
// RAIDWidth, and AsyncDepth are rejected with messages naming the field,
// and RunPrepared enforces NumDisks consistency with the prepared trace.
func TestConfigValidation(t *testing.T) {
	reqs := []trace.Request{{Arrival: 0, Block: 0, Size: 4096}}
	for _, tc := range []struct {
		field string
		mut   func(*Config)
	}{
		{"Jobs", func(c *Config) { c.Jobs = -1 }},
		{"RAIDWidth", func(c *Config) { c.RAIDWidth = -2 }},
		{"AsyncDepth", func(c *Config) { c.AsyncDepth = -3 }},
	} {
		c := cfg(NoPM, 1)
		tc.mut(&c)
		_, err := Run(reqs, oneDisk, c)
		if err == nil || !strings.Contains(err.Error(), tc.field) {
			t.Errorf("negative %s: err = %v, want an error naming %s", tc.field, err, tc.field)
		}
	}

	pt, err := PrepareTrace(reqs, oneDisk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPrepared(pt, cfg(NoPM, 3)); err == nil {
		t.Error("NumDisks mismatch with the prepared trace must fail")
	}
	// Zero NumDisks adopts the prepared trace's disk count.
	res, err := RunPrepared(pt, cfg(NoPM, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDisk) != 2 {
		t.Errorf("PerDisk = %d disks, want 2 from the prepared trace", len(res.PerDisk))
	}
	// PrepareTrace itself validates the mapping.
	if _, err := PrepareTrace(reqs, oneDisk, 0); err == nil {
		t.Error("zero disks must fail")
	}
	if _, err := PrepareTrace(reqs, func(int64) (int, error) { return 7, nil }, 2); err == nil {
		t.Error("disk index out of range must fail")
	}
}
