// Package sim is the trace-driven disk power simulator of §7.1: it replays
// an I/O request trace against a bank of simulated disks (one per I/O
// node), applies a power-management policy — none, TPM spin-down, or DRPM
// dynamic speed-setting — and reports disk energy and disk I/O time.
//
// Policies:
//
//   - NoPM: the disk idles at full speed between requests. This is the
//     "Base" version all paper numbers are normalized to.
//   - TPM (traditional power management, Douglis et al. [12]): after the
//     break-even threshold of idleness the disk spins down; the next
//     request pays the spin-up latency and energy.
//   - DRPM (dynamic RPM, Gurumurthi et al. [13]): the disk steps its
//     rotational speed down one level at a time while idle, bounded below
//     by a floor the controller adjusts per n-request window based on the
//     observed average response time versus the full-speed estimate.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"strconv"

	"diskreuse/internal/conc"
	"diskreuse/internal/disk"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/power"
	"diskreuse/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	Model    disk.Model
	NumDisks int
	Policy   Policy

	// TPMThreshold is the idleness threshold before spin-down; zero
	// selects the model's break-even time (Table 1).
	TPMThreshold float64
	// DRPMWindow is the controller window in requests (Table 1: 100).
	DRPMWindow int
	// DRPMRaise is the response-time ratio (observed mean over full-speed
	// estimate) above which the controller raises the operating speed one
	// level. Zero selects the default.
	DRPMRaise float64
	// DRPMLower is the ratio below which the controller lowers the
	// operating speed one level (slack available). Zero selects the
	// default; a negative value disables operational lowering entirely,
	// leaving idle-time coasting as the only way down. When positive it
	// must be < DRPMRaise. The defaults bracket the one-level-down service
	// ratio (≈1.10 for 4-KiB pages), pinning the operational equilibrium
	// at a single step below full speed — the modest savings/penalty
	// balance reported for DRPM on unmodified codes.
	DRPMLower float64
	// DRPMDwell is how long a DRPM disk lingers at a speed level during an
	// idle period before coasting further down.
	DRPMDwell float64

	// ClosedLoop selects the replay model. The default (false) is the
	// paper's methodology: the simulator "is driven by externally-provided
	// disk I/O request traces" — arrival times are fixed, so a policy-
	// induced stall delays that disk's queue but never feeds back into the
	// issue stream. With ClosedLoop true, each processor re-issues its
	// requests only as earlier ones complete (per AsyncDepth), modeling a
	// blocking application; stalls then propagate and can cascade across
	// disks.
	ClosedLoop bool

	// ThinkEstimate is the per-request service estimate the trace
	// generator used for its clocks; the closed-loop replay recovers each
	// request's think time as the arrival gap minus this estimate. Zero
	// selects the full-speed service time of a 4-KiB page.
	ThinkEstimate float64

	// AsyncDepth is the number of outstanding requests a processor may
	// have in flight before blocking on the oldest (closed-loop replay
	// only) — the prefetch depth of the parallel I/O library. Zero selects
	// DefaultAsyncDepth; 1 means fully synchronous I/O.
	AsyncDepth int

	// Hints are compiler-inserted proactive spin-up directives (the [25]
	// extension): a TPM disk that spun down begins its spin-up at the hint
	// time instead of waiting for the next request, hiding some or all of
	// the wake-up latency. Ignored by NoPM and DRPM.
	Hints []trace.Hint

	// Record, when non-nil, receives every state interval of every disk as
	// the simulation accounts it (used by the timeline visualization).
	// Intervals for one disk are emitted in increasing time order.
	Record func(iv Interval)

	// Telemetry, when non-nil, accumulates per-disk event telemetry (time
	// in state, spin-up/down and speed-shift counts, idle-period
	// histograms) from the same interval stream Record sees. It must be
	// sized for the run's disk count. Unlike Record, telemetry is fed
	// directly from the sharded per-disk replays — per-disk state is
	// disjoint, so no buffering is needed and the accumulated telemetry is
	// identical at every Jobs value.
	Telemetry *obs.SimTelemetry

	// Span, when non-nil, receives one "disk-replay" child span per disk
	// shard of the open-loop replay (or one "closed-replay" child for the
	// closed-loop model), so a trace export shows the simulator's fan-out.
	Span *obs.Span

	// Attribution, when non-nil, accumulates per-(disk, processor)
	// service attribution — requests, busy time, response time — fed from
	// the replay loops (per-disk rows, so it needs no locking and is
	// identical at every Jobs value). It must be sized for the run's disk
	// count, and every request's processor id must lie inside its
	// processor range. AttributeEnergy turns the accumulated shares into
	// per-tenant energy.
	Attribution *obs.ProcAttribution

	// Metrics, when non-nil, receives live replay metrics: the
	// requests-replayed counter, per-disk state occupancy and current-state
	// series, spin/shift event counters, and the energy-so-far gauge —
	// readable mid-run over the monitoring endpoint while Record, Telemetry,
	// and Attribution only settle at the end. Publishing is strictly
	// observe-only (the simulator never reads a metric back), so enabling it
	// cannot perturb the bit-identical deterministic results contract.
	Metrics *metrics.Registry

	// RAIDWidth is the number of physical disks behind each I/O node —
	// the RAID-level striping of Fig. 1, which is hidden from the compiler
	// (power is still managed at I/O-node granularity, as in the paper).
	// Width w lets a node service w requests concurrently and multiplies
	// its power draw and transition energies by w. Zero or 1 models one
	// disk per node, the paper's default evaluation setup. Negative widths
	// are rejected.
	RAIDWidth int

	// Jobs bounds how many disks replay concurrently in the open-loop
	// model. The open-loop replay is feedback-free across disks (a
	// policy-induced stall delays that disk's queue but never feeds back
	// into the issue stream), so the per-disk replays are independent and
	// fan out over a bounded worker pool. Zero selects
	// runtime.GOMAXPROCS(0), with a small-trace cutoff that keeps tiny
	// replays serial; 1 forces the fully serial path; negative values are
	// rejected. Results are bit-identical at every Jobs value: each disk
	// writes its own stats slot, and the per-disk partial response-time
	// sums, makespans, and interval logs are folded in disk order — the
	// same float summation order and interval order as the serial path.
	// The closed-loop replay is inherently cross-disk sequential (stalls
	// propagate through the shared issue heap) and ignores Jobs.
	Jobs int
}

// StateKind classifies a disk's activity during an interval.
type StateKind int

// Disk states for recorded intervals.
const (
	StateBusy StateKind = iota
	StateIdle
	StateStandby
	StateTransition
)

func (k StateKind) String() string {
	switch k {
	case StateBusy:
		return "busy"
	case StateIdle:
		return "idle"
	case StateStandby:
		return "standby"
	case StateTransition:
		return "transition"
	}
	return fmt.Sprintf("StateKind(%d)", int(k))
}

// Interval is one recorded span of disk activity.
type Interval struct {
	Disk     int
	From, To float64
	Kind     StateKind
	RPM      int // rotational speed during the interval (0 in standby)
}

// DefaultAsyncDepth is the default per-processor outstanding-request
// window.
const DefaultAsyncDepth = 8

// Default DRPM controller constants. DRPMRaise/DRPMLower bracket the
// response-time degradation the controller tolerates; the defaults let the
// disk trade roughly one speed level's worth of service-time increase for
// its quadratic power reduction, matching the modest savings/penalty
// balance reported for DRPM on unmodified codes. The coast dwell is of the
// same order as the TPM break-even time: coasting below the operating
// point costs a multi-second recovery ramp when the next burst arrives, so
// it must only happen during idleness long enough to amortize it.
const (
	DefaultDRPMRaise = 1.15
	DefaultDRPMLower = 1.07
	DefaultDRPMDwell = 0.7
)

// queuePressureFactor is the queue-wait (in full-speed service times) past
// which a DRPM disk abandons gradual control and ramps to full speed even
// mid-burst, paying the transition stall — the high-watermark response of
// [13]. It is deliberately large: changing speed while requests queue
// stalls the disk for seconds, so it must amortize over a long burst.
const queuePressureFactor = 100

// Policy selects the power-management scheme.
type Policy int

const (
	// NoPM applies no power management.
	NoPM Policy = iota
	// TPM is threshold-based spin-down.
	TPM
	// DRPM is multi-speed dynamic RPM management.
	DRPM
)

func (p Policy) String() string {
	switch p {
	case NoPM:
		return "NoPM"
	case TPM:
		return "TPM"
	case DRPM:
		return "DRPM"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// DiskStats reports one disk's simulation outcome.
type DiskStats struct {
	Requests int
	// BusyTime is the disk's total service time — the paper's "disk I/O
	// time": it grows when DRPM services at reduced speed and is barely
	// affected by TPM transitions.
	BusyTime float64
	// ResponseTime is the sum of request response times (completion minus
	// issue), including queueing and wake-up delays.
	ResponseTime float64
	// LastCompletion is when the disk finished its final request.
	LastCompletion float64
	// Meter holds the energy/state accounting.
	Meter power.Meter
	// GapsOverBreakEven counts idle gaps long enough for a TPM disk to
	// profit from spinning down.
	GapsOverBreakEven int
	// LongestGap is the longest idle gap observed (seconds).
	LongestGap float64
}

// Result is the outcome of a simulation run.
type Result struct {
	PerDisk []DiskStats
	Energy  float64 // total J across disks
	// IOTime is the total disk I/O (busy) time across disks — the
	// performance metric of Figures 10(a)/10(b).
	IOTime float64
	// ResponseTime is the total request response time (a secondary,
	// latency-oriented metric).
	ResponseTime float64
	Makespan     float64 // time of the last completion (s)
	Requests     int
	Policy       Policy
}

// procStream is one processor's request sequence with recovered think
// times: think[k] is the compute delay between completing request k-1 and
// issuing request k. The requests themselves live in the prepared trace;
// idx holds their positions in its arrival order.
type procStream struct {
	proc  int       // processor id (the heap tie-break)
	idx   []int     // indices into the prepared trace's sorted order
	think []float64 // recovered compute gaps, one per request
	next  int       // position in idx of the next request to issue
	ready float64   // time the processor can issue it
	// completions is a ring of the last AsyncDepth completion times; a new
	// request blocks on the completion AsyncDepth requests back.
	completions []float64
}

// streamHeap orders processors by the issue time of their next request,
// breaking exact-time ties by processor id so the replay order depends
// only on the trace, never on the heap's insertion history.
type streamHeap []*procStream

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].proc < h[j].proc
}
func (h streamHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)   { *h = append(*h, x.(*procStream)) }
func (h *streamHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run replays reqs against cfg.NumDisks disks. diskOf maps a request's
// block number to its disk using the striping information, exactly as the
// paper's simulator consumes externally provided striping parameters.
//
// Run is PrepareTrace followed by RunPrepared; callers replaying the same
// trace under several configurations (the harness's 5–7 policy versions
// per app) should prepare once and call RunPrepared per version instead.
// reqs is never mutated.
func Run(reqs []trace.Request, diskOf func(block int64) (int, error), cfg Config) (*Result, error) {
	pt, err := PrepareTrace(reqs, diskOf, cfg.NumDisks)
	if err != nil {
		return nil, err
	}
	return RunPrepared(pt, cfg)
}

// RunPrepared replays a prepared trace under one configuration. The
// default (open-loop) replay is the paper's trace-driven methodology with
// fixed arrival times; cfg.ClosedLoop instead re-issues each processor's
// requests only as earlier ones complete. Disks service requests FIFO in
// issue order either way.
//
// cfg.NumDisks zero adopts the prepared trace's disk count; any other
// value must match it. RunPrepared only reads pt, so concurrent calls may
// share one PreparedTrace.
func RunPrepared(pt *PreparedTrace, cfg Config) (*Result, error) {
	cfg, err := cfg.normalize(pt.numDisks)
	if err != nil {
		return nil, err
	}
	if attr := cfg.Attribution; attr != nil {
		for _, p := range pt.procIDs {
			if p < 0 || p >= attr.NumProcs() {
				return nil, fmt.Errorf("sim: Attribution sized for %d processors but the trace has processor id %d (size it with obs.NewProcAttribution)",
					attr.NumProcs(), p)
			}
		}
	}

	res := &Result{
		PerDisk:  make([]DiskStats, cfg.NumDisks),
		Requests: len(pt.sorted),
		Policy:   cfg.Policy,
	}
	states := newStates(cfg, res)
	if cfg.ClosedLoop {
		sp := cfg.Span.Child("closed-replay")
		runClosedLoop(pt, cfg, states, res)
		sp.End()
	} else {
		if err := runOpenLoop(pt, cfg, states, res); err != nil {
			return nil, err
		}
	}
	finishRun(cfg, states, res)
	return res, nil
}

// newStates builds the per-disk simulators and their energy meters for one
// run: per-disk state plus the meter model scaling for RAID-level striping
// (Fig. 1) — each I/O node's meter accounts for all of its physical disks,
// so power draws and transition energies scale with the width while the
// timing model stays per physical disk.
func newStates(cfg Config, res *Result) []*diskSim {
	meterModel := cfg.Model
	if w := float64(cfg.RAIDWidth); w > 1 {
		meterModel.PowerActive *= w
		meterModel.PowerIdle *= w
		meterModel.PowerStandby *= w
		meterModel.SpinDownEnergy *= w
		meterModel.SpinUpEnergy *= w
	}
	lm := newLiveMetrics(cfg.Metrics, cfg.NumDisks)
	states := make([]*diskSim, cfg.NumDisks)
	for d := 0; d < cfg.NumDisks; d++ {
		res.PerDisk[d].Meter = *power.NewMeter(meterModel)
		states[d] = newDiskSim(cfg)
		states[d].id = d
		states[d].lm = lm
	}
	for _, h := range cfg.Hints {
		states[h.Disk].hints = append(states[h.Disk].hints, h.Time)
	}
	return states
}

// finishRun accounts the tail after the replay: every disk stays powered
// until the application's last request completes, with the policy applied
// to the final gap (no spin-up at the end), then the per-disk energies
// fold into the totals and the telemetry's still-open request-free tail
// periods close.
func finishRun(cfg Config, states []*diskSim, res *Result) {
	for d := 0; d < cfg.NumDisks; d++ {
		st := &res.PerDisk[d]
		states[d].finish(res.Makespan-states[d].clock, st)
		res.Energy += st.Meter.Total()
		res.IOTime += st.BusyTime
	}
	if len(states) > 0 && states[0].lm != nil {
		states[0].lm.energy.Set(res.Energy)
	}
	cfg.Telemetry.Finish()
}

// normalize validates the configuration and fills defaults, returning the
// resolved copy. traceDisks is the prepared trace's disk count, or 0 for
// the streaming path where the trace carries no prepared attribution (the
// caller must then set NumDisks explicitly). Every Config field is checked
// here, so a bad value surfaces as a clear error from RunPrepared or
// RunStream instead of a panic or silent misbehavior deep inside the
// replay.
func (cfg Config) normalize(traceDisks int) (Config, error) {
	if err := cfg.Model.Validate(); err != nil {
		return cfg, err
	}
	if cfg.NumDisks < 0 {
		return cfg, fmt.Errorf("sim: NumDisks %d must be >= 0 (0 adopts the prepared trace's disk count)", cfg.NumDisks)
	}
	if cfg.NumDisks == 0 {
		cfg.NumDisks = traceDisks
	}
	if cfg.NumDisks == 0 {
		return cfg, fmt.Errorf("sim: the streaming replay needs an explicit NumDisks (no prepared trace to adopt it from)")
	}
	if traceDisks > 0 && cfg.NumDisks != traceDisks {
		return cfg, fmt.Errorf("sim: Config.NumDisks %d does not match the prepared trace's %d disks", cfg.NumDisks, traceDisks)
	}
	if cfg.Jobs < 0 {
		return cfg, fmt.Errorf("sim: Jobs %d must be >= 0 (0 selects GOMAXPROCS, 1 forces the serial path)", cfg.Jobs)
	}
	if cfg.RAIDWidth < 0 {
		return cfg, fmt.Errorf("sim: RAIDWidth %d must be >= 0 (0 or 1 models one disk per I/O node)", cfg.RAIDWidth)
	}
	if cfg.AsyncDepth < 0 {
		return cfg, fmt.Errorf("sim: AsyncDepth %d must be >= 0 (0 selects the default depth %d)", cfg.AsyncDepth, DefaultAsyncDepth)
	}
	if cfg.TPMThreshold < 0 {
		return cfg, fmt.Errorf("sim: TPMThreshold %v must be >= 0 (0 selects the model's break-even time)", cfg.TPMThreshold)
	}
	if cfg.DRPMWindow < 0 {
		return cfg, fmt.Errorf("sim: DRPMWindow %d must be >= 0 (0 selects the default window of 100 requests)", cfg.DRPMWindow)
	}
	if cfg.DRPMRaise < 0 {
		return cfg, fmt.Errorf("sim: DRPMRaise %v must be >= 0 (0 selects the default %v)", cfg.DRPMRaise, DefaultDRPMRaise)
	}
	if cfg.DRPMDwell < 0 {
		return cfg, fmt.Errorf("sim: DRPMDwell %v must be >= 0 (0 selects the default %v)", cfg.DRPMDwell, DefaultDRPMDwell)
	}
	if cfg.ThinkEstimate < 0 {
		return cfg, fmt.Errorf("sim: ThinkEstimate %v must be >= 0 (0 selects the full-speed service time of a 4-KiB page)", cfg.ThinkEstimate)
	}
	if cfg.Telemetry != nil && cfg.Telemetry.NumDisks() != cfg.NumDisks {
		return cfg, fmt.Errorf("sim: Telemetry sized for %d disks but the run has %d (size it with obs.NewSimTelemetry(NumDisks))", cfg.Telemetry.NumDisks(), cfg.NumDisks)
	}
	if cfg.Attribution != nil && cfg.Attribution.NumDisks() != cfg.NumDisks {
		return cfg, fmt.Errorf("sim: Attribution sized for %d disks but the run has %d (size it with obs.NewProcAttribution(NumDisks, NumProcs))", cfg.Attribution.NumDisks(), cfg.NumDisks)
	}
	// advanceGap consumes each disk's hints with a forward-only cursor, so
	// out-of-order hints would be silently dropped — reject them instead.
	if len(cfg.Hints) > 0 {
		last := make([]float64, cfg.NumDisks)
		seen := make([]bool, cfg.NumDisks)
		for _, h := range cfg.Hints {
			if h.Disk < 0 || h.Disk >= cfg.NumDisks {
				return cfg, fmt.Errorf("sim: hint for disk %d outside 0..%d", h.Disk, cfg.NumDisks-1)
			}
			if seen[h.Disk] && h.Time < last[h.Disk] {
				return cfg, fmt.Errorf("sim: hints for disk %d must be in nondecreasing time order (%v after %v)", h.Disk, h.Time, last[h.Disk])
			}
			last[h.Disk], seen[h.Disk] = h.Time, true
		}
	}

	if cfg.TPMThreshold == 0 {
		cfg.TPMThreshold = cfg.Model.BreakEven
	}
	if cfg.DRPMWindow == 0 {
		cfg.DRPMWindow = 100
	}
	if cfg.DRPMRaise == 0 {
		cfg.DRPMRaise = DefaultDRPMRaise
	}
	if cfg.DRPMLower == 0 {
		cfg.DRPMLower = DefaultDRPMLower
	}
	if cfg.DRPMLower > 0 && cfg.DRPMLower >= cfg.DRPMRaise {
		return cfg, fmt.Errorf("sim: DRPMLower %v must be below DRPMRaise %v", cfg.DRPMLower, cfg.DRPMRaise)
	}
	if cfg.DRPMDwell == 0 {
		cfg.DRPMDwell = DefaultDRPMDwell
	}
	if cfg.ThinkEstimate == 0 {
		cfg.ThinkEstimate = cfg.Model.FullSpeedService(4096)
	}
	if cfg.AsyncDepth == 0 {
		cfg.AsyncDepth = DefaultAsyncDepth
	}
	if cfg.RAIDWidth == 0 {
		cfg.RAIDWidth = 1
	}
	return cfg, nil
}

// minParallelRequests is the auto-mode (Jobs 0) cutoff below which the
// open-loop replay stays serial: spawning a worker per disk costs more
// than replaying a tiny trace. An explicit Jobs >= 2 always shards, so
// tests can pin the parallel path on small inputs; the result is
// bit-identical either way.
const minParallelRequests = 4096

// runOpenLoop replays the trace with fixed arrival times: each disk
// services its requests FIFO in arrival order (the paper's trace-driven
// methodology). The open-loop model is feedback-free across disks — a
// policy-induced stall delays that disk's queue but never the issue
// stream — so the per-disk replays are independent and fan out over a
// bounded worker pool (Config.Jobs): the same disk-level independence the
// paper exploits for power management, reused for simulation speed.
//
// Each worker replays one disk's prepared subsequence, writing its own
// DiskStats slot and producing a partial response-time sum, a partial
// makespan, and (when a recorder is configured) a buffered interval log.
// The reducer folds the partials in disk order — the same float summation
// order and the same interval order as the serial disk-major loop — so
// the Result and the Record stream are bit-identical at any worker count.
func runOpenLoop(pt *PreparedTrace, cfg Config, states []*diskSim, res *Result) error {
	type partial struct {
		resp     float64
		makespan float64
		ivs      []Interval
	}
	parts := make([]partial, pt.numDisks)
	record := cfg.Record
	attr := cfg.Attribution
	jobs := cfg.Jobs
	if jobs == 0 && len(pt.sorted) < minParallelRequests {
		jobs = 1
	}
	err := conc.ForEach(context.Background(), pt.numDisks, jobs, func(_ context.Context, d int) error {
		sp := cfg.Span.Child("disk-replay")
		sp.SetAttr("disk", strconv.Itoa(d))
		sp.SetAttr("requests", strconv.Itoa(len(pt.perDisk[d])))
		defer sp.End()
		ds := states[d]
		if record != nil {
			// Buffer this disk's intervals; the reducer replays the
			// buffers in disk order, so the recorder sees the exact
			// serial stream from a single goroutine.
			buf := &parts[d].ivs
			ds.cfg.Record = func(iv Interval) { *buf = append(*buf, iv) }
		}
		st := &res.PerDisk[d]
		var resp, makespan float64
		var served reqCounter
		if ds.lm != nil {
			served.c = ds.lm.requests
		}
		for _, r := range pt.perDisk[d] {
			busy0 := st.BusyTime
			completion, rt := ds.service(r.Arrival, r.Size, st)
			served.inc()
			resp += rt
			if completion > makespan {
				makespan = completion
			}
			if attr != nil {
				attr.Observe(d, r.Proc, st.BusyTime-busy0, rt)
			}
		}
		served.flush()
		parts[d].resp = resp
		parts[d].makespan = makespan
		if record != nil {
			// The tail accounting after the replay emits directly.
			ds.cfg.Record = record
		}
		return nil
	})
	if err != nil {
		return err
	}
	for d := range parts {
		res.ResponseTime += parts[d].resp
		if parts[d].makespan > res.Makespan {
			res.Makespan = parts[d].makespan
		}
		for _, iv := range parts[d].ivs {
			record(iv)
		}
	}
	return nil
}

// runClosedLoop replays the trace with per-processor feedback: each
// processor issues its next request only after its compute gap and subject
// to the AsyncDepth outstanding-request window. Stalls propagate through
// the shared issue heap and can cascade across disks, so this path stays
// sequential — but it reuses the prepared attribution: the issue loop
// reads disks from the precomputed index and processor streams from the
// prepared grouping, with no diskOf calls or map lookups per request.
func runClosedLoop(pt *PreparedTrace, cfg Config, states []*diskSim, res *Result) {
	sorted := pt.sorted
	// Think times depend on cfg.ThinkEstimate, so they are recovered per
	// run — into one flat backing carved per stream, reusing the prepared
	// per-processor index lists.
	streams := make([]procStream, len(pt.procIDs))
	thinkBacking := make([]float64, len(sorted))
	ringBacking := make([]float64, cfg.AsyncDepth*len(pt.procIDs))
	off := 0
	for k, p := range pt.procIDs {
		idx := pt.procReqs[k]
		think := thinkBacking[off : off+len(idx)]
		off += len(idx)
		think[0] = sorted[idx[0]].Arrival
		for j := 1; j < len(idx); j++ {
			t := sorted[idx[j]].Arrival - sorted[idx[j-1]].Arrival - cfg.ThinkEstimate
			if t < 0 {
				t = 0
			}
			think[j] = t
		}
		streams[k] = procStream{
			proc:        p,
			idx:         idx,
			think:       think,
			ready:       think[0],
			completions: ringBacking[k*cfg.AsyncDepth : (k+1)*cfg.AsyncDepth],
		}
	}

	// The heap never outgrows the processor count: Pop shrinks the slice
	// and Push re-appends within the same backing array, so sizing the
	// capacity once keeps the issue loop allocation-free.
	hs := make(streamHeap, 0, len(streams))
	h := &hs
	for k := range streams {
		heap.Push(h, &streams[k])
	}
	var served reqCounter
	if len(states) > 0 && states[0].lm != nil {
		served.c = states[0].lm.requests
	}
	defer served.flush()
	for h.Len() > 0 {
		ps := heap.Pop(h).(*procStream)
		k := ps.next
		i := ps.idx[k]
		r, d := sorted[i], pt.diskIdx[i]
		issue := ps.ready
		st := &res.PerDisk[d]
		busy0 := st.BusyTime
		completion, resp := states[d].service(issue, r.Size, st)
		served.inc()
		if attr := cfg.Attribution; attr != nil {
			attr.Observe(d, r.Proc, st.BusyTime-busy0, resp)
		}
		res.ResponseTime += resp
		if completion > res.Makespan {
			res.Makespan = completion
		}
		ps.completions[k%cfg.AsyncDepth] = completion
		ps.next++
		if ps.next < len(ps.idx) {
			// The processor issues the next request after its compute gap,
			// but no sooner than the completion AsyncDepth requests back
			// (the outstanding window is full until then).
			ready := issue + ps.think[ps.next]
			if ps.next >= cfg.AsyncDepth {
				if w := ps.completions[(ps.next-cfg.AsyncDepth)%cfg.AsyncDepth]; w > ready {
					ready = w
				}
			}
			ps.ready = ready
			heap.Push(h, ps)
		}
	}
}

// diskSim simulates one disk.
type diskSim struct {
	cfg   Config
	tel   *obs.SimTelemetry // telemetry sink; nil when disabled
	lm    *liveMetrics      // live metrics sink; nil when disabled
	m     disk.Model
	clock float64 // completion time of the last serviced request

	rpm        int // current rotational speed
	target     int // DRPM controller's chosen operating speed
	winCount   int
	winResp    float64
	winFullEst float64

	// hints holds pending proactive spin-up times (ascending); hintIdx is
	// the next unconsumed one.
	hints   []float64
	hintIdx int

	id int // disk index, for recorded intervals

	// sub holds the busy-until time of each physical disk behind this I/O
	// node (RAID-level striping); length is Config.RAIDWidth.
	sub []float64
}

func newDiskSim(cfg Config) *diskSim {
	return &diskSim{
		cfg:    cfg,
		tel:    cfg.Telemetry,
		m:      cfg.Model,
		rpm:    cfg.Model.RPMMax,
		target: cfg.Model.RPMMax,
		sub:    make([]float64, cfg.RAIDWidth),
	}
}

// syncSubs clamps every physical disk's busy-until time up to the node
// clock (after a node-wide stall such as a speed shift).
func (ds *diskSim) syncSubs() {
	for k := range ds.sub {
		if ds.sub[k] < ds.clock {
			ds.sub[k] = ds.clock
		}
	}
}

// diskStateOf maps the simulator's interval kinds onto the observability
// layer's disk states. The enums are kept separate (obs must not import
// sim) and mapped explicitly so a change in either is a compile/test error
// here, not a silent misclassification.
func diskStateOf(k StateKind) obs.DiskState {
	switch k {
	case StateBusy:
		return obs.DiskBusy
	case StateIdle:
		return obs.DiskIdle
	case StateStandby:
		return obs.DiskStandby
	case StateTransition:
		return obs.DiskTransition
	}
	panic(fmt.Sprintf("sim: unmapped state kind %d", int(k)))
}

// The charge helpers account a state span in the energy meter and, when a
// recorder or telemetry sink is configured, emit the corresponding
// interval. Telemetry is fed directly — even from sharded replays, since
// its state is per disk — while Record may be swapped for a per-disk
// buffer by the parallel open-loop path.

func (ds *diskSim) emit(kind StateKind, from, to float64, rpm int) {
	if to <= from {
		return
	}
	if ds.tel != nil {
		ds.tel.Observe(ds.id, diskStateOf(kind), from, to, rpm)
	}
	if ds.lm != nil {
		ds.lm.observeInterval(ds.id, kind, to-from)
	}
	if ds.cfg.Record != nil {
		ds.cfg.Record(Interval{Disk: ds.id, From: from, To: to, Kind: kind, RPM: rpm})
	}
}

func (ds *diskSim) chargeIdle(st *DiskStats, from, dt float64, rpm int) {
	st.Meter.Idle(dt, rpm)
	ds.emit(StateIdle, from, from+dt, rpm)
}

func (ds *diskSim) chargeActive(st *DiskStats, from, dt float64, rpm int) {
	st.Meter.Active(dt, rpm)
	ds.emit(StateBusy, from, from+dt, rpm)
}

func (ds *diskSim) chargeStandby(st *DiskStats, from, dt float64) {
	st.Meter.Standby(dt)
	ds.emit(StateStandby, from, from+dt, 0)
}

func (ds *diskSim) chargeSpinDown(st *DiskStats, from float64) {
	st.Meter.SpinDown()
	if ds.lm != nil {
		ds.lm.spinDowns.Inc()
	}
	ds.emit(StateTransition, from, from+ds.m.SpinDownTime, 0)
}

func (ds *diskSim) chargeSpinUp(st *DiskStats, from float64) {
	st.Meter.SpinUp()
	if ds.lm != nil {
		ds.lm.spinUps.Inc()
	}
	ds.emit(StateTransition, from, from+ds.m.SpinUpTime, ds.m.RPMMax)
}

// chargeShift accounts a DRPM speed change and returns its duration.
func (ds *diskSim) chargeShift(st *DiskStats, from float64, fromRPM, toRPM int) float64 {
	st.Meter.Shift(fromRPM, toRPM)
	if ds.lm != nil {
		ds.lm.shifts.Inc()
	}
	dt := power.ShiftTime(ds.m, fromRPM, toRPM)
	ds.emit(StateTransition, from, from+dt, toRPM)
	return dt
}

// service handles one request issued at the given time and returns its
// completion time and response time (completion minus issue).
func (ds *diskSim) service(issue float64, size int64, st *DiskStats) (completion, resp float64) {
	st.Requests++
	// Idleness is an I/O-node property: the node is idle only when every
	// physical disk behind it has finished (ds.clock is the latest such
	// completion). Power management acts at node granularity (§2).
	nodeReady := issue
	if issue > ds.clock {
		gap := issue - ds.clock
		if gap > st.LongestGap {
			st.LongestGap = gap
		}
		if gap >= ds.m.BreakEven {
			st.GapsOverBreakEven++
		}
		nodeReady = ds.advanceGap(gap, st)
		ds.syncSubs()
	}
	// Dispatch to the least-loaded physical disk (RAID-level striping).
	k := 0
	for i := range ds.sub {
		if ds.sub[i] < ds.sub[k] {
			k = i
		}
	}
	dispatch := nodeReady
	if ds.sub[k] > dispatch {
		dispatch = ds.sub[k] // queueing delay behind earlier requests
	}
	// Queueing wait that full-speed service would also (approximately)
	// have suffered; the DRPM controller compares against it so it reacts
	// to its own slowdown, not to offered load.
	loadWait := dispatch - issue
	// DRPM queue-pressure ramp: a request that has waited many service
	// times in the queue means the disk is far too slow for the offered
	// load — ramp straight to full speed (the watermark mechanism of [13])
	// instead of waiting out the response-time window.
	if ds.cfg.Policy == DRPM && ds.rpm < ds.m.RPMMax {
		if loadWait > queuePressureFactor*ds.m.FullSpeedService(size) {
			old := ds.rpm
			ds.rpm = ds.m.RPMMax
			ds.target = ds.m.RPMMax
			ds.clock += ds.chargeShift(st, ds.clock, old, ds.rpm)
			ds.syncSubs()
			if ds.sub[k] > dispatch {
				dispatch = ds.sub[k]
			}
		}
	}
	svc := ds.m.ServiceTime(size, ds.rpm)
	ds.chargeActive(st, dispatch, svc, ds.rpm)
	completion = dispatch + svc // the data is ready for the processor here
	ds.sub[k] = completion
	if completion > ds.clock {
		ds.clock = completion
	}
	resp = completion - issue
	st.BusyTime += svc
	st.ResponseTime += resp
	st.LastCompletion = ds.clock
	ds.observe(resp, loadWait, size)
	// A DRPM disk running below the controller's operating point recovers
	// one level after servicing (a sustained burst keeps pulling it up);
	// the shift occupies the disk but the already-delivered data does not
	// wait for it.
	if ds.cfg.Policy == DRPM && ds.rpm < ds.target {
		next := ds.m.ClampRPM(ds.rpm + ds.m.RPMStep)
		ds.clock += ds.chargeShift(st, ds.clock, ds.rpm, next)
		ds.syncSubs()
		ds.rpm = next
		st.LastCompletion = ds.clock
	}
	return completion, resp
}

// finish accounts the idle tail from the disk's last completion to the
// application end.
func (ds *diskSim) finish(gap float64, st *DiskStats) {
	if gap <= 0 {
		return
	}
	if gap > st.LongestGap {
		st.LongestGap = gap
	}
	ds.advanceGapTail(gap, st)
}

// advanceGap consumes an idle gap according to the policy and returns the
// time service can begin (gap start time is ds.clock; the returned time is
// ds.clock + gap + any wake-up penalty).
func (ds *diskSim) advanceGap(gap float64, st *DiskStats) float64 {
	begin := ds.clock
	switch ds.cfg.Policy {
	case NoPM:
		ds.chargeIdle(st, begin, gap, ds.m.RPMMax)
		return begin + gap

	case TPM:
		thr := ds.cfg.TPMThreshold
		arrivalAt := begin + gap
		// Drop hints that this gap has already passed by.
		for ds.hintIdx < len(ds.hints) && ds.hints[ds.hintIdx] < begin {
			ds.hintIdx++
		}
		if gap < thr {
			// The disk never spins down; in-gap hints are redundant.
			for ds.hintIdx < len(ds.hints) && ds.hints[ds.hintIdx] <= arrivalAt {
				ds.hintIdx++
			}
			ds.chargeIdle(st, begin, gap, ds.m.RPMMax)
			return begin + gap
		}
		// Idle until the threshold fires, spin down, stand by until either
		// a proactive hint or the request itself triggers the spin-up;
		// service starts once the spin-up completes (and never before the
		// spin-down finished, for gaps barely over the threshold).
		ds.chargeIdle(st, begin, thr, ds.m.RPMMax)
		ds.chargeSpinDown(st, begin+thr)
		spinDownDone := begin + thr + ds.m.SpinDownTime
		wakeStart := arrivalAt
		if ds.hintIdx < len(ds.hints) && ds.hints[ds.hintIdx] <= arrivalAt {
			// Proactive early wake; a directive arriving while the
			// spin-down is still completing takes effect right after it.
			wakeStart = ds.hints[ds.hintIdx]
			for ds.hintIdx < len(ds.hints) && ds.hints[ds.hintIdx] <= arrivalAt {
				ds.hintIdx++
			}
		}
		if spinDownDone > wakeStart {
			wakeStart = spinDownDone
		}
		if wakeStart > spinDownDone {
			ds.chargeStandby(st, spinDownDone, wakeStart-spinDownDone)
		}
		ds.chargeSpinUp(st, wakeStart)
		ready := wakeStart + ds.m.SpinUpTime
		if ready < arrivalAt {
			// The hint hid the whole wake-up: the disk idles, spinning,
			// until the request arrives.
			ds.chargeIdle(st, ready, arrivalAt-ready, ds.m.RPMMax)
			ready = arrivalAt
		}
		return ready

	case DRPM:
		// All speed changes happen while the disk is idle (transitions
		// stall the spindle for seconds, so a busy disk never shifts). The
		// disk first moves toward the controller's operating point — up or
		// down — then, if the idleness persists beyond the dwell, coasts
		// one level at a time toward the minimum speed: an idle spindle
		// has no response-time constraint.
		cursor := begin
		remaining := gap
		for {
			var next int
			var dwell float64
			switch {
			case ds.rpm > ds.target: // settle down to the operating point
				next = ds.m.ClampRPM(ds.rpm - ds.m.RPMStep)
			case ds.rpm > ds.m.RPMMin: // coast below it after a dwell
				next = ds.m.ClampRPM(ds.rpm - ds.m.RPMStep)
				dwell = ds.cfg.DRPMDwell
			default:
				// At or below both the operating point and the floor, or
				// recovery is pending: idle out the gap (recovery happens
				// as requests are serviced, never during idleness).
				ds.chargeIdle(st, cursor, remaining, ds.rpm)
				return begin + gap
			}
			shift := power.ShiftTime(ds.m, ds.rpm, next)
			if remaining < dwell+shift {
				ds.chargeIdle(st, cursor, remaining, ds.rpm)
				return begin + gap
			}
			if dwell > 0 {
				ds.chargeIdle(st, cursor, dwell, ds.rpm)
				cursor += dwell
				remaining -= dwell
			}
			cursor += ds.chargeShift(st, cursor, ds.rpm, next)
			remaining -= shift
			ds.rpm = next
		}
	}
	ds.chargeIdle(st, begin, gap, ds.m.RPMMax)
	return begin + gap
}

// advanceGapTail is advanceGap without a terminating request: TPM disks
// that spin down stay down; DRPM disks coast and stay slow.
func (ds *diskSim) advanceGapTail(gap float64, st *DiskStats) {
	begin := ds.clock
	switch ds.cfg.Policy {
	case TPM:
		thr := ds.cfg.TPMThreshold
		if gap < thr {
			ds.chargeIdle(st, begin, gap, ds.m.RPMMax)
			return
		}
		ds.chargeIdle(st, begin, thr, ds.m.RPMMax)
		ds.chargeSpinDown(st, begin+thr)
		if rest := gap - thr - ds.m.SpinDownTime; rest > 0 {
			ds.chargeStandby(st, begin+thr+ds.m.SpinDownTime, rest)
		}
	case DRPM:
		ds.advanceGap(gap, st)
	default:
		ds.chargeIdle(st, begin, gap, ds.m.RPMMax)
	}
}

// observe feeds the DRPM controller: at each window boundary it compares
// the window's mean response time against the full-speed estimate — "the
// selection of the disk speed level is made based on the change in the
// average disk response time recorded for n-request windows" (§4) — and
// moves the operating speed one level: up when the degradation exceeds
// DRPMRaise (perf suffering: recover speed immediately), down when it is
// below DRPMLower (slack available: trade speed for quadratic power).
func (ds *diskSim) observe(resp, loadWait float64, size int64) {
	if ds.cfg.Policy != DRPM {
		return
	}
	ds.winCount++
	ds.winResp += resp
	ds.winFullEst += loadWait + ds.m.FullSpeedService(size)
	if ds.winCount < ds.cfg.DRPMWindow {
		return
	}
	avgResp := ds.winResp / float64(ds.winCount)
	avgFull := ds.winFullEst / float64(ds.winCount)
	ds.winCount, ds.winResp, ds.winFullEst = 0, 0, 0
	switch {
	case avgResp > ds.cfg.DRPMRaise*avgFull:
		ds.target = ds.m.ClampRPM(ds.target + ds.m.RPMStep)
	case ds.cfg.DRPMLower > 0 && avgResp < ds.cfg.DRPMLower*avgFull:
		ds.target = ds.m.ClampRPM(ds.target - ds.m.RPMStep)
	}
	// The spindle itself only moves during idleness (advanceGap), after a
	// service (the recovery step in run), or under queue pressure.
}
