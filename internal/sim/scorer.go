package sim

import (
	"fmt"

	"diskreuse/internal/power"
	"diskreuse/internal/trace"
)

// EnergySummary is the scalar outcome of a memoized open-loop replay — the
// fields of Result a layout search ranks candidates by, folded in exactly
// the order RunPrepared folds them, so every value is bit-identical to the
// full replay's.
type EnergySummary struct {
	Energy       float64
	IOTime       float64
	ResponseTime float64
	Makespan     float64
	Requests     int
}

// Attribution is one candidate's request→disk mapping in the carved form
// the scorer consumes: per-disk index subsequences plus their hashes. A
// candidate is scored under several power policies; building the
// attribution once and passing it to each policy's scorer avoids repeating
// the O(requests) carve. The zero value is ready; Build reuses the backing
// across candidates of any size.
type Attribution struct {
	n        int
	numDisks int
	hashes   []uint64
	counts   []int
	idxBack  []int32
	perDisk  [][]int32
}

// Build fills the attribution for a stream of n requests mapped by
// diskOf(i) onto numDisks disks.
func (a *Attribution) Build(n int, diskOf func(i int) int, numDisks int) error {
	if numDisks <= 0 {
		return fmt.Errorf("sim: attribution needs a positive disk count (got %d)", numDisks)
	}
	if cap(a.counts) < numDisks {
		a.counts = make([]int, numDisks)
		a.hashes = make([]uint64, numDisks)
		a.perDisk = make([][]int32, numDisks)
	}
	if cap(a.idxBack) < n {
		a.idxBack = make([]int32, n)
	}
	a.n, a.numDisks = n, numDisks
	counts := a.counts[:numDisks]
	hashes := a.hashes[:numDisks]
	for d := range counts {
		counts[d] = 0
		hashes[d] = fnvOffset
	}
	perDisk := a.perDisk[:numDisks]
	off := 0
	// Two passes: count, carve disjoint sub-slices out of the flat backing,
	// then scatter — the same carve PrepareTrace performs over requests.
	for i := 0; i < n; i++ {
		d := diskOf(i)
		if d < 0 || d >= numDisks {
			return fmt.Errorf("sim: request %d maps to disk %d outside 0..%d", i, d, numDisks-1)
		}
		counts[d]++
	}
	for d, c := range counts {
		perDisk[d] = a.idxBack[off:off : off+c]
		off += c
	}
	for i := 0; i < n; i++ {
		d := diskOf(i)
		perDisk[d] = append(perDisk[d], int32(i))
		hashes[d] = (hashes[d] ^ uint64(uint32(i))) * fnvPrime
	}
	return nil
}

// diskReplayEntry caches one disk's replay of one request subsequence: the
// simulator and stats state at the end of the subsequence, plus the
// partial folds runOpenLoop computes per disk. idx pins the exact
// subsequence so a hash collision can never return a wrong entry.
type diskReplayEntry struct {
	idx      []int32
	ds       diskSim
	st       DiskStats
	resp     float64
	makespan float64
}

// EnergyScorer scores many disk attributions of one fixed request stream
// under one policy configuration, memoizing per-disk replays.
//
// The open-loop replay is feedback-free across disks: a disk's busy/idle
// trajectory — and therefore its energy — is a pure function of the
// subsequence of requests attributed to it. Disks interact only through
// the final makespan, which finishRun uses to bill every disk's idle tail.
// Neighboring layout candidates move only the requests of the arrays they
// re-stripe, so most disks receive a subsequence the scorer has already
// replayed: Score then skips the replay entirely and re-runs only the
// cheap finish tail against the candidate's makespan, on a copy of the
// cached state. Cache hits are verified by comparing the full index
// subsequence, never just its hash, so results are exact, not
// probabilistically exact.
//
// An EnergyScorer is not safe for concurrent use; parallel searches give
// each worker its own via Clone (workers then build disjoint caches).
type EnergyScorer struct {
	sorted []trace.Request
	cfg    Config // normalized; NumDisks varies per Score call

	entries map[uint64][]*diskReplayEntry
	bytes   int // cached index bytes, for the flush bound
	empty   *diskReplayEntry

	att Attribution // scratch for the Score convenience path
}

// scorerCacheBytes bounds the memory the subsequence cache may hold before
// it is flushed wholesale (correctness is unaffected; only reuse resets).
const scorerCacheBytes = 64 << 20

// NewEnergyScorer prepares a memoizing scorer over an arrival-ordered
// request stream under cfg. sorted is aliased, never mutated.
// cfg.NumDisks is ignored (each Score call supplies its own disk count);
// features that observe per-request events or couple disks — ClosedLoop,
// Record, Telemetry, Attribution, Hints, Span — must be off, since
// memoized replays are skipped, not re-observed.
func NewEnergyScorer(sorted []trace.Request, cfg Config) (*EnergyScorer, error) {
	if !trace.SortedByArrival(sorted) {
		return nil, fmt.Errorf("sim: EnergyScorer stream must be sorted by arrival")
	}
	if cfg.ClosedLoop {
		return nil, fmt.Errorf("sim: EnergyScorer replays open-loop only")
	}
	if cfg.Record != nil || cfg.Telemetry != nil || cfg.Attribution != nil || cfg.Span != nil || len(cfg.Hints) > 0 {
		return nil, fmt.Errorf("sim: EnergyScorer cannot drive per-request observers (Record/Telemetry/Attribution/Span/Hints)")
	}
	cfg.NumDisks = 0
	norm, err := cfg.normalize(1)
	if err != nil {
		return nil, err
	}
	s := &EnergyScorer{
		sorted:  sorted,
		cfg:     norm,
		entries: make(map[uint64][]*diskReplayEntry),
	}
	s.empty = &diskReplayEntry{ds: *newDiskSim(norm)}
	s.empty.st.Meter = *newMeterFor(norm)
	return s, nil
}

// newMeterFor builds the per-disk meter newStates would, including the
// RAID-width power scaling.
func newMeterFor(cfg Config) *power.Meter {
	meterModel := cfg.Model
	if w := float64(cfg.RAIDWidth); w > 1 {
		meterModel.PowerActive *= w
		meterModel.PowerIdle *= w
		meterModel.PowerStandby *= w
		meterModel.SpinDownEnergy *= w
		meterModel.SpinUpEnergy *= w
	}
	return power.NewMeter(meterModel)
}

// Clone returns a scorer over the same stream and configuration with an
// empty cache and its own scratch, for use from another goroutine.
func (s *EnergyScorer) Clone() *EnergyScorer {
	return &EnergyScorer{
		sorted:  s.sorted,
		cfg:     s.cfg,
		entries: make(map[uint64][]*diskReplayEntry),
		empty:   s.empty,
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Score replays the stream with per-request attribution diskOf(i) over
// numDisks disks and returns the summary RunPrepared would produce —
// bit-for-bit — reusing cached per-disk replays where the attribution
// leaves a disk's subsequence unchanged.
func (s *EnergyScorer) Score(diskOf func(i int) int, numDisks int) (EnergySummary, error) {
	if err := s.att.Build(len(s.sorted), diskOf, numDisks); err != nil {
		return EnergySummary{}, err
	}
	return s.ScoreAttribution(&s.att)
}

// ScoreAttribution scores a pre-built attribution, so one carve can feed
// several policies' scorers. att must have been built over a stream of the
// same length.
func (s *EnergyScorer) ScoreAttribution(att *Attribution) (EnergySummary, error) {
	if att.n != len(s.sorted) {
		return EnergySummary{}, fmt.Errorf("sim: attribution built over %d requests, stream has %d", att.n, len(s.sorted))
	}
	numDisks := att.numDisks

	// Resolve each disk's entry, replaying subsequences seen for the first
	// time, then fold partials and run the finish tail exactly as
	// runOpenLoop + finishRun do: response times and makespan in disk
	// order, then per-disk finish and energy sum in disk order.
	ents := make([]*diskReplayEntry, numDisks)
	sum := EnergySummary{Requests: len(s.sorted)}
	for d := 0; d < numDisks; d++ {
		en := s.lookupOrReplay(att.hashes[d], att.perDisk[d])
		ents[d] = en
		sum.ResponseTime += en.resp
		if en.makespan > sum.Makespan {
			sum.Makespan = en.makespan
		}
	}
	for d := 0; d < numDisks; d++ {
		en := ents[d]
		ds := en.ds
		ds.sub = append([]float64(nil), en.ds.sub...)
		st := en.st
		ds.finish(sum.Makespan-ds.clock, &st)
		sum.Energy += st.Meter.Total()
		sum.IOTime += st.BusyTime
	}
	return sum, nil
}

// lookupOrReplay returns the cached entry for the subsequence, verifying
// the indices element-wise, or replays and caches it.
func (s *EnergyScorer) lookupOrReplay(h uint64, idx []int32) *diskReplayEntry {
	if len(idx) == 0 {
		return s.empty
	}
	for _, en := range s.entries[h] {
		if len(en.idx) != len(idx) {
			continue
		}
		same := true
		for k := range idx {
			if en.idx[k] != idx[k] {
				same = false
				break
			}
		}
		if same {
			return en
		}
	}
	en := &diskReplayEntry{idx: append([]int32(nil), idx...)}
	en.ds = *newDiskSim(s.cfg)
	en.st.Meter = *newMeterFor(s.cfg)
	for _, i := range idx {
		r := &s.sorted[i]
		completion, rt := en.ds.service(r.Arrival, r.Size, &en.st)
		en.resp += rt
		if completion > en.makespan {
			en.makespan = completion
		}
	}
	if s.bytes += 4 * len(idx); s.bytes > scorerCacheBytes {
		s.entries = make(map[uint64][]*diskReplayEntry)
		s.bytes = 4 * len(idx)
	}
	s.entries[h] = append(s.entries[h], en)
	return en
}
