package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"diskreuse/internal/obs"
	"diskreuse/internal/trace"
)

// telemetryTrace is a bursty two-disk trace with gaps long enough for TPM
// spin-downs and DRPM coasting.
func telemetryTrace() []trace.Request {
	var reqs []trace.Request
	tt := 0.0
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 6; i++ {
			reqs = append(reqs, trace.Request{Arrival: tt, Block: int64(i), Size: 4096})
			tt += 0.01
		}
		tt += 60 // sleepable gap
	}
	return reqs
}

func telCfg(p Policy, disks, jobs int, tel *obs.SimTelemetry) Config {
	c := cfg(p, disks)
	c.Jobs = jobs
	c.Telemetry = tel
	return c
}

// TestTelemetryMatchesMeter cross-checks the event telemetry against the
// power meter's independent bookkeeping: transition counts must agree
// exactly, and per-state times within float tolerance.
func TestTelemetryMatchesMeter(t *testing.T) {
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		tel := obs.NewSimTelemetry(2)
		res, err := Run(telemetryTrace(), evenDisk, telCfg(pol, 2, 1, tel))
		if err != nil {
			t.Fatal(err)
		}
		for d, st := range res.PerDisk {
			dt := &tel.Disks[d]
			if dt.SpinUps != st.Meter.SpinUps || dt.SpinDowns != st.Meter.SpinDowns || dt.SpeedShifts != st.Meter.SpeedShifts {
				t.Errorf("%v disk %d: telemetry transitions up/down/shift = %d/%d/%d, meter = %d/%d/%d",
					pol, d, dt.SpinUps, dt.SpinDowns, dt.SpeedShifts,
					st.Meter.SpinUps, st.Meter.SpinDowns, st.Meter.SpeedShifts)
			}
			for state, want := range map[obs.DiskState]float64{
				obs.DiskBusy:       st.Meter.ActiveTime,
				obs.DiskIdle:       st.Meter.IdleTime,
				obs.DiskStandby:    st.Meter.StandbyTime,
				obs.DiskTransition: st.Meter.TransitionTime,
			} {
				if got := dt.TimeIn[state]; math.Abs(got-want) > 1e-9 {
					t.Errorf("%v disk %d: time in %v = %v, meter says %v", pol, d, state, got, want)
				}
			}
		}
		// The idle-locality claim on this trace: gaps are ~60 s, so the
		// longest request-free run must be at least that (TPM's includes the
		// spin-down + standby + spin-up span).
		idle := tel.IdleLocality()
		if idle.Periods == 0 || idle.LongestIdleS < 55 {
			t.Errorf("%v: idle locality %+v, want >= 55 s longest", pol, idle)
		}
	}
}

// TestTelemetryParallelMatchesSerial: the sharded open-loop replay feeds
// telemetry from per-disk workers; the result must be bit-identical to the
// serial replay at any worker count.
func TestTelemetryParallelMatchesSerial(t *testing.T) {
	reqs := telemetryTrace()
	serial := obs.NewSimTelemetry(2)
	if _, err := Run(reqs, evenDisk, telCfg(TPM, 2, 1, serial)); err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		par := obs.NewSimTelemetry(2)
		if _, err := Run(reqs, evenDisk, telCfg(TPM, 2, jobs, par)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("jobs=%d telemetry differs from serial:\n%+v\nvs\n%+v", jobs, serial, par)
		}
	}
}

// TestTelemetryComposesWithRecord: the Record hook and the telemetry sink
// observe the same interval stream; installing both must not perturb either.
func TestTelemetryComposesWithRecord(t *testing.T) {
	reqs := telemetryTrace()
	tel := obs.NewSimTelemetry(2)
	var recorded []Interval
	c := telCfg(TPM, 2, 1, tel)
	c.Record = func(iv Interval) { recorded = append(recorded, iv) }
	if _, err := Run(reqs, evenDisk, c); err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("Record hook saw nothing")
	}
	// Replaying the recorded stream into a fresh collector reproduces the
	// live telemetry exactly (Record delivers disks in order, each disk's
	// intervals in time order — the same contract Observe needs).
	replay := obs.NewSimTelemetry(2)
	for _, iv := range recorded {
		var state obs.DiskState
		switch iv.Kind {
		case StateBusy:
			state = obs.DiskBusy
		case StateIdle:
			state = obs.DiskIdle
		case StateStandby:
			state = obs.DiskStandby
		case StateTransition:
			state = obs.DiskTransition
		}
		replay.Observe(iv.Disk, state, iv.From, iv.To, iv.RPM)
	}
	replay.Finish()
	if !reflect.DeepEqual(tel, replay) {
		t.Errorf("telemetry fed live differs from telemetry fed off Record:\n%+v\nvs\n%+v", tel, replay)
	}
}

// TestTelemetryClosedLoop: the closed-loop replay feeds the same sink.
func TestTelemetryClosedLoop(t *testing.T) {
	tel := obs.NewSimTelemetry(2)
	c := telCfg(TPM, 2, 1, tel)
	c.ClosedLoop = true
	if _, err := Run(telemetryTrace(), evenDisk, c); err != nil {
		t.Fatal(err)
	}
	if idle := tel.IdleLocality(); idle.Periods == 0 {
		t.Errorf("closed-loop telemetry empty: %+v", idle)
	}
}

// TestNormalizeValidation covers the consolidated Config validation added
// with the telemetry work: every tunable rejects negatives with an error
// naming the field, and a mis-sized Telemetry is caught up front instead of
// silently dropping events.
func TestNormalizeValidation(t *testing.T) {
	reqs := []trace.Request{{Arrival: 0, Block: 0, Size: 4096}}
	for _, tc := range []struct {
		field string
		mut   func(*Config)
	}{
		{"NumDisks", func(c *Config) { c.NumDisks = -1 }},
		{"TPMThreshold", func(c *Config) { c.TPMThreshold = -1 }},
		{"DRPMWindow", func(c *Config) { c.DRPMWindow = -1 }},
		{"DRPMRaise", func(c *Config) { c.DRPMRaise = -5 }},
		{"DRPMDwell", func(c *Config) { c.DRPMDwell = -1 }},
		{"ThinkEstimate", func(c *Config) { c.ThinkEstimate = -0.5 }},
	} {
		c := cfg(NoPM, 1)
		tc.mut(&c)
		_, err := Run(reqs, oneDisk, c)
		if err == nil || !strings.Contains(err.Error(), tc.field) {
			t.Errorf("negative %s: err = %v, want an error naming %s", tc.field, err, tc.field)
		}
	}
	// Telemetry sized for the wrong disk count.
	c := cfg(NoPM, 2)
	c.Telemetry = obs.NewSimTelemetry(5)
	if _, err := Run(reqs, oneDisk, c); err == nil || !strings.Contains(err.Error(), "Telemetry") {
		t.Errorf("mis-sized Telemetry: err = %v", err)
	}
	// Correctly sized telemetry passes.
	c.Telemetry = obs.NewSimTelemetry(2)
	if _, err := Run(reqs, oneDisk, c); err != nil {
		t.Errorf("well-sized Telemetry rejected: %v", err)
	}
	// A negative DRPMLower stays meaningful (disables lowering).
	c = cfg(DRPM, 1)
	c.DRPMLower = -1
	if _, err := Run(reqs, oneDisk, c); err != nil {
		t.Errorf("negative DRPMLower must stay legal: %v", err)
	}
	// DRPMLower above DRPMRaise is rejected.
	c = cfg(DRPM, 1)
	c.DRPMLower = 500
	c.DRPMRaise = 100
	if _, err := Run(reqs, oneDisk, c); err == nil {
		t.Error("DRPMLower >= DRPMRaise must fail")
	}
	// Out-of-order hints are rejected.
	c = cfg(TPM, 1)
	c.Hints = []trace.Hint{{Disk: 0, Time: 10}, {Disk: 0, Time: 5}}
	if _, err := Run(reqs, oneDisk, c); err == nil || !strings.Contains(err.Error(), "nondecreasing") {
		t.Errorf("out-of-order hints: err = %v", err)
	}
	// Hint for a disk outside the run.
	c = cfg(TPM, 1)
	c.Hints = []trace.Hint{{Disk: 3, Time: 10}}
	if _, err := Run(reqs, oneDisk, c); err == nil {
		t.Error("hint for a foreign disk must fail")
	}
}
