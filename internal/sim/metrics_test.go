package sim

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/trace"
)

// Enabling live metrics must be invisible to the deterministic results
// contract: Result, interval stream, and telemetry bit-identical to a
// no-metrics run at every policy and worker count, on both the prepared
// and the streaming paths.
func TestMetricsBitIdentity(t *testing.T) {
	const nReq, nDisks = 20000, 8
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol Policy, jobs int, reg *metrics.Registry, stream bool) (*Result, []Interval, *obs.SimTelemetry) {
		var ivs []Interval
		tel := obs.NewSimTelemetry(nDisks)
		c := cfg(pol, nDisks)
		c.Jobs = jobs
		c.Metrics = reg
		c.Record = func(iv Interval) { ivs = append(ivs, iv) }
		c.Telemetry = tel
		var res *Result
		var err error
		if stream {
			src := trace.NewSliceSource(pt.Sorted(), 777)
			defer src.Close()
			res, err = RunStream(src, diskOf, c)
		} else {
			res, err = RunPrepared(pt, c)
		}
		if err != nil {
			t.Fatalf("%s jobs=%d: %v", pol, jobs, err)
		}
		return res, ivs, tel
	}
	for _, pol := range []Policy{NoPM, TPM, DRPM} {
		for _, jobs := range []int{1, 8} {
			for _, stream := range []bool{false, true} {
				wantRes, wantIvs, wantTel := run(pol, jobs, nil, stream)
				res, ivs, tel := run(pol, jobs, metrics.NewRegistry(), stream)
				if !reflect.DeepEqual(wantRes, res) {
					t.Errorf("%s jobs=%d stream=%v: Result differs with metrics enabled", pol, jobs, stream)
				}
				if !reflect.DeepEqual(wantIvs, ivs) {
					t.Errorf("%s jobs=%d stream=%v: interval stream differs with metrics enabled", pol, jobs, stream)
				}
				if !reflect.DeepEqual(wantTel, tel) {
					t.Errorf("%s jobs=%d stream=%v: telemetry differs with metrics enabled", pol, jobs, stream)
				}
			}
		}
	}
}

// The published values must reconcile with the run's own results: request
// counter equals the replayed count, the energy gauge settles to
// Result.Energy, per-disk occupancy matches the telemetry, and the
// current-state gauges always partition the disk population.
func TestMetricsValues(t *testing.T) {
	const nReq, nDisks = 20000, 8
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 8} {
		reg := metrics.NewRegistry()
		tel := obs.NewSimTelemetry(nDisks)
		c := cfg(TPM, nDisks)
		c.Jobs = jobs
		c.Metrics = reg
		c.Telemetry = tel
		res, err := RunPrepared(pt, c)
		if err != nil {
			t.Fatal(err)
		}

		if v, ok := reg.Value(metrics.SimRequestsReplayed); !ok || v != nReq {
			t.Errorf("jobs=%d: requests counter = %v,%v, want %d", jobs, v, ok, nReq)
		}
		if v, ok := reg.Value(metrics.SimEnergyJoules); !ok || v != res.Energy {
			t.Errorf("jobs=%d: energy gauge = %v, want %v", jobs, v, res.Energy)
		}
		// TPM on a gappy trace must have spun down and back up.
		if v, _ := reg.Value(metricSpinEvents, metrics.L("event", "spin_down")); v == 0 {
			t.Errorf("jobs=%d: no spin_down events recorded", jobs)
		}
		if v, _ := reg.Value(metricSpinEvents, metrics.L("event", "spin_up")); v == 0 {
			t.Errorf("jobs=%d: no spin_up events recorded", jobs)
		}
		// Per-disk occupancy counters agree with the telemetry's
		// time-in-state to float tolerance (both fold the same intervals,
		// but in different summation orders).
		for d := 0; d < nDisks; d++ {
			ds := &tel.Disks[d]
			for k := 0; k < numStateKinds; k++ {
				got, _ := reg.Value(metricDiskStateSeconds,
					metrics.L("disk", strconv.Itoa(d)), metrics.L("state", StateKind(k).String()))
				want := ds.TimeIn[diskStateOf(StateKind(k))]
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("jobs=%d disk %d %s: occupancy %v, telemetry %v", jobs, d, StateKind(k), got, want)
				}
			}
		}
		// The current-state gauges partition the disks.
		var population float64
		for k := 0; k < numStateKinds; k++ {
			v, _ := reg.Value(metrics.SimDisksInState, metrics.L("state", StateKind(k).String()))
			population += v
		}
		if population != nDisks {
			t.Errorf("jobs=%d: disks-in-state gauges sum to %v, want %d", jobs, population, nDisks)
		}
	}
}

// The streaming replay publishes at chunk granularity; the final counter
// and gauge still settle to the exact totals.
func TestStreamMetricsValues(t *testing.T) {
	const nReq, nDisks = 20000, 8
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c := cfg(DRPM, nDisks)
	c.Metrics = reg
	src := trace.NewSliceSource(pt.Sorted(), 777)
	defer src.Close()
	res, err := RunStream(src, diskOf, c)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Value(metrics.SimRequestsReplayed); !ok || v != float64(res.Requests) {
		t.Errorf("requests counter = %v,%v, want %d", v, ok, res.Requests)
	}
	if v, ok := reg.Value(metrics.SimEnergyJoules); !ok || v != res.Energy {
		t.Errorf("energy gauge = %v, want %v", v, res.Energy)
	}
	if v, _ := reg.Value(metricSpinEvents, metrics.L("event", "speed_shift")); v == 0 {
		t.Error("DRPM run recorded no speed_shift events")
	}
}
