package sim

import (
	"runtime"
	"testing"

	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/trace"
)

// benchReplayTrace builds a bursty multi-disk trace large enough that the
// per-disk fan-out clears the auto-mode serial cutoff: dense request
// trains round-robining over the disks, with periodic sleepable gaps so
// the TPM/DRPM state machines do real transition work.
func benchReplayTrace(n, disks int) ([]trace.Request, func(int64) (int, error)) {
	g := lcg(1)
	reqs := make([]trace.Request, 0, n)
	tt := 0.0
	for i := 0; i < n; i++ {
		if i%2048 == 2047 {
			tt += 30 // sleepable gap
		} else {
			tt += float64(g.intn(8)) * 1e-3
		}
		reqs = append(reqs, trace.Request{
			Arrival: tt,
			Block:   int64(g.intn(disks * 512)),
			Size:    4096,
			Proc:    i % 4,
		})
	}
	return reqs, modDisk(disks)
}

// BenchmarkSimRun tracks the simulator hot path along the two axes this
// repo optimizes: per-disk open-loop sharding (serial vs. parallel) and
// trace-preparation reuse (Run re-buckets per call; RunPrepared replays a
// shared PreparedTrace). The "versions" pair replays one trace under
// three policy versions — the harness's bucket-once-replay-many pattern.
func BenchmarkSimRun(b *testing.B) {
	const nReq, nDisks = 1 << 16, 16
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		b.Fatal(err)
	}
	mkCfg := func(pol Policy, closed bool, jobs int) Config {
		c := cfg(pol, nDisks)
		c.ClosedLoop = closed
		c.Jobs = jobs
		return c
	}
	runPrepared := func(b *testing.B, c Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := RunPrepared(pt, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nReq*b.N)/b.Elapsed().Seconds(), "reqs/s")
	}
	runFresh := func(b *testing.B, c Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := Run(reqs, diskOf, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nReq*b.N)/b.Elapsed().Seconds(), "reqs/s")
	}

	par := runtime.GOMAXPROCS(0)
	b.Run("open/serial", func(b *testing.B) { runFresh(b, mkCfg(TPM, false, 1)) })
	b.Run("open/parallel", func(b *testing.B) { runFresh(b, mkCfg(TPM, false, par)) })
	b.Run("open/serial-prepared", func(b *testing.B) { runPrepared(b, mkCfg(TPM, false, 1)) })
	b.Run("open/parallel-prepared", func(b *testing.B) { runPrepared(b, mkCfg(TPM, false, par)) })
	b.Run("closed/serial", func(b *testing.B) { runFresh(b, mkCfg(TPM, true, 1)) })
	b.Run("closed/prepared", func(b *testing.B) { runPrepared(b, mkCfg(TPM, true, 1)) })

	// The harness pattern: one trace replayed under >= 3 policy versions.
	versions := []Policy{NoPM, TPM, DRPM}
	b.Run("versions/unprepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pol := range versions {
				if _, err := Run(reqs, diskOf, mkCfg(pol, false, par)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("versions/prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vpt, err := PrepareTrace(reqs, diskOf, nDisks)
			if err != nil {
				b.Fatal(err)
			}
			for _, pol := range versions {
				if _, err := RunPrepared(vpt, mkCfg(pol, false, par)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTracerOverhead guards the observability bargain: with no
// telemetry sink installed the replay must run at full speed (the "off"
// case is the baseline BenchmarkSimRun path and must stay within ~2% of
// it), and the "on" case bounds what a live SimTelemetry costs.
func BenchmarkTracerOverhead(b *testing.B) {
	const nReq, nDisks = 1 << 16, 16
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, tel bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			c := cfg(TPM, nDisks)
			if tel {
				c.Telemetry = obs.NewSimTelemetry(nDisks)
			}
			if _, err := RunPrepared(pt, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nReq*b.N)/b.Elapsed().Seconds(), "reqs/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkMetricsOverhead is the live-metrics counterpart of
// BenchmarkTracerOverhead: the "off" case (nil Config.Metrics) must stay at
// the baseline replay speed — the hot loop pays only nil pointer checks —
// and the "on" case bounds what live publication costs.
func BenchmarkMetricsOverhead(b *testing.B) {
	const nReq, nDisks = 1 << 16, 16
	reqs, diskOf := benchReplayTrace(nReq, nDisks)
	pt, err := PrepareTrace(reqs, diskOf, nDisks)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, live bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			c := cfg(TPM, nDisks)
			if live {
				c.Metrics = metrics.NewRegistry()
			}
			if _, err := RunPrepared(pt, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nReq*b.N)/b.Elapsed().Seconds(), "reqs/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
