package sim

import (
	"strconv"

	"diskreuse/internal/metrics"
)

// Live metric names the simulator publishes beyond the canonical ones
// declared in internal/metrics (SimRequestsReplayed, SimDisksInState,
// SimEnergyJoules).
const (
	metricDiskStateSeconds = "sim_disk_state_seconds_total"
	metricDiskState        = "sim_disk_state"
	metricSpinEvents       = "sim_spin_events_total"
)

// numStateKinds is the size of the StateKind enum (busy, idle, standby,
// transition).
const numStateKinds = 4

// reqFlushBatch is how many serviced requests a replay loop accumulates
// locally before flushing them into the shared requests-replayed counter —
// coarse enough that the hot loop almost never touches the shared atomic,
// fine enough that a monitoring scrape sees steady progress.
const reqFlushBatch = 8192

// liveMetrics is the simulator's pre-resolved bundle of metric handles: all
// registry lookups happen once at run start, so the replay hot paths touch
// only lock-free atomics (and only behind a nil check when metrics are
// off). It is strictly observe-only — the simulator never reads any of
// these values back, so publishing cannot perturb the bit-identical
// deterministic results contract.
type liveMetrics struct {
	requests  *metrics.Counter
	energy    *metrics.Gauge
	spinUps   *metrics.Counter
	spinDowns *metrics.Counter
	shifts    *metrics.Counter

	// Per-(disk, state) handles indexed disk*numStateKinds+kind, so the
	// per-disk shards update disjoint series without cross-disk contention.
	stateSecs []*metrics.Counter // cumulative seconds in state
	stateNow  []*metrics.Gauge   // 0/1 current-state indicator

	// inState aggregates the 0/1 indicators per state for the heartbeat's
	// state mix; it only changes when a disk changes state.
	inState [numStateKinds]*metrics.Gauge

	// last is each disk's last-observed state (a plain slice: each entry is
	// written only by the worker replaying that disk).
	last []StateKind
}

// newLiveMetrics resolves every handle the replay will touch. All disks
// start in the idle state (spun up, no request in service), matching the
// simulators' initial condition. Returns nil when reg is nil, so the hot
// paths gate on one pointer check.
func newLiveMetrics(reg *metrics.Registry, numDisks int) *liveMetrics {
	if reg == nil {
		return nil
	}
	lm := &liveMetrics{
		requests:  reg.Counter(metrics.SimRequestsReplayed, "requests replayed by the simulator"),
		energy:    reg.Gauge(metrics.SimEnergyJoules, "total metered energy so far (J)"),
		spinUps:   reg.Counter(metricSpinEvents, "disk power-state transition events", metrics.L("event", "spin_up")),
		spinDowns: reg.Counter(metricSpinEvents, "disk power-state transition events", metrics.L("event", "spin_down")),
		shifts:    reg.Counter(metricSpinEvents, "disk power-state transition events", metrics.L("event", "speed_shift")),
		stateSecs: make([]*metrics.Counter, numDisks*numStateKinds),
		stateNow:  make([]*metrics.Gauge, numDisks*numStateKinds),
		last:      make([]StateKind, numDisks),
	}
	for k := 0; k < numStateKinds; k++ {
		st := StateKind(k).String()
		lm.inState[k] = reg.Gauge(metrics.SimDisksInState, "disks last observed in each state", metrics.L("state", st))
	}
	for d := 0; d < numDisks; d++ {
		disk := metrics.L("disk", strconv.Itoa(d))
		for k := 0; k < numStateKinds; k++ {
			st := metrics.L("state", StateKind(k).String())
			lm.stateSecs[d*numStateKinds+k] = reg.Counter(metricDiskStateSeconds, "simulated seconds each disk spent per state", disk, st)
			lm.stateNow[d*numStateKinds+k] = reg.Gauge(metricDiskState, "1 for each disk's last observed state, else 0", disk, st)
		}
		lm.last[d] = StateIdle
		lm.stateNow[d*numStateKinds+int(StateIdle)].Set(1)
	}
	lm.inState[StateIdle].Set(float64(numDisks))
	return lm
}

// observeInterval publishes one accounted state interval: occupancy seconds
// always, plus the current-state gauges when the disk changed state. Called
// from emit with lm non-nil; per-disk entries are only touched by the
// worker replaying that disk, so the only shared writes are the rare
// state-change gauge updates.
func (lm *liveMetrics) observeInterval(disk int, kind StateKind, dt float64) {
	lm.stateSecs[disk*numStateKinds+int(kind)].Add(dt)
	if last := lm.last[disk]; kind != last {
		lm.stateNow[disk*numStateKinds+int(last)].Set(0)
		lm.inState[last].Dec()
		lm.stateNow[disk*numStateKinds+int(kind)].Set(1)
		lm.inState[kind].Inc()
		lm.last[disk] = kind
	}
}

// publishEnergy sets the energy-so-far gauge from the per-disk meters. Safe
// to call between (not during) sharded passes. No-op on nil.
func (lm *liveMetrics) publishEnergy(per []DiskStats) {
	if lm == nil {
		return
	}
	tot := 0.0
	for d := range per {
		tot += per[d].Meter.Total()
	}
	lm.energy.Set(tot)
}

// reqCounter batches a replay loop's serviced-request count into the shared
// live counter every reqFlushBatch requests. The zero value (nil counter)
// is a no-op; each worker keeps its own instance.
type reqCounter struct {
	c       *metrics.Counter
	pending int
}

func (rc *reqCounter) inc() {
	if rc.c == nil {
		return
	}
	rc.pending++
	if rc.pending >= reqFlushBatch {
		rc.c.Add(float64(rc.pending))
		rc.pending = 0
	}
}

func (rc *reqCounter) flush() {
	if rc.c == nil || rc.pending == 0 {
		return
	}
	rc.c.Add(float64(rc.pending))
	rc.pending = 0
}
