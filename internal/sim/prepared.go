package sim

import (
	"fmt"

	"diskreuse/internal/trace"
)

// PreparedTrace is the replay-ready form of a request trace against a
// fixed block-to-disk mapping: the arrival sort, per-request disk
// attribution, flat-backed per-disk carve, and per-processor grouping are
// all done once by PrepareTrace, so any number of policy or parameter
// variants can replay the same trace through RunPrepared without repeating
// the bucketing work — bucket once, replay many. The experiment harness
// prepares each execution's trace once and shares it read-only across all
// of an application's version simulations.
//
// A PreparedTrace is immutable after PrepareTrace returns; concurrent
// RunPrepared calls against the same value are safe.
type PreparedTrace struct {
	numDisks int
	// sorted is the trace in arrival order. It aliases the caller's slice
	// when that was already sorted (the replay never mutates it); equal
	// arrivals keep their input order (stable sort), matching the serial
	// replay exactly.
	sorted []trace.Request
	// diskIdx[i] is the disk servicing sorted[i] — the attribution the
	// closed-loop issue loop reads instead of calling diskOf per request.
	diskIdx []int
	// perDisk[d] is disk d's subsequence of sorted, carved out of one flat
	// backing array sized by a counting pass. Subsequences of an
	// arrival-ordered slice are arrival-ordered, so each is replay-ready.
	perDisk [][]trace.Request
	// procIDs lists processor ids in first-appearance order; procReqs[k]
	// holds the indices into sorted of the requests procIDs[k] issued,
	// carved from one flat backing (see trace.ProcStreams).
	procIDs  []int
	procReqs [][]int
}

// NumDisks returns the disk count the trace was prepared against.
func (pt *PreparedTrace) NumDisks() int { return pt.numDisks }

// Requests returns the number of requests in the prepared trace.
func (pt *PreparedTrace) Requests() int { return len(pt.sorted) }

// Sorted returns the prepared trace's requests in arrival order. The
// slice is shared with the replay — callers must treat it as read-only.
func (pt *PreparedTrace) Sorted() []trace.Request { return pt.sorted }

// Source returns the prepared trace's arrival-ordered requests as a
// streaming trace.Source: chunked read-only views of the in-memory slice,
// the same iterator contract the chunked binary file reader satisfies.
// RunStream over this source is bit-identical to RunPrepared.
func (pt *PreparedTrace) Source() trace.Source {
	return trace.NewSliceSource(pt.sorted, 0)
}

// PrepareTrace attributes every request of reqs to its disk and buckets the
// trace for replay: one counting pass, one flat per-disk carve, one stable
// arrival sort (skipped when reqs is already sorted, the common case for
// generated traces), and one per-processor grouping. diskOf maps a
// request's block number to its disk using the striping information,
// exactly as the paper's simulator consumes externally provided striping
// parameters. reqs is never mutated.
func PrepareTrace(reqs []trace.Request, diskOf func(block int64) (int, error), numDisks int) (*PreparedTrace, error) {
	if numDisks <= 0 {
		return nil, fmt.Errorf("sim: NumDisks must be positive")
	}
	sorted := reqs
	if !trace.SortedByArrival(reqs) {
		sorted = append([]trace.Request(nil), reqs...)
		trace.SortByArrival(sorted)
	}
	diskIdx := make([]int, len(sorted))
	counts := make([]int, numDisks)
	for i, r := range sorted {
		d, err := diskOf(r.Block)
		if err != nil {
			return nil, err
		}
		if d < 0 || d >= numDisks {
			return nil, fmt.Errorf("sim: block %d maps to disk %d outside 0..%d", r.Block, d, numDisks-1)
		}
		diskIdx[i] = d
		counts[d]++
	}
	backing := make([]trace.Request, len(sorted))
	perDisk := make([][]trace.Request, numDisks)
	off := 0
	for d, n := range counts {
		perDisk[d] = backing[off : off : off+n]
		off += n
	}
	for i, r := range sorted {
		d := diskIdx[i]
		perDisk[d] = append(perDisk[d], r)
	}
	procIDs, procReqs := trace.ProcStreams(sorted)
	return &PreparedTrace{
		numDisks: numDisks,
		sorted:   sorted,
		diskIdx:  diskIdx,
		perDisk:  perDisk,
		procIDs:  procIDs,
		procReqs: procReqs,
	}, nil
}
