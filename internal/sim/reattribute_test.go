package sim

import (
	"reflect"
	"strings"
	"testing"

	"diskreuse/internal/disk"
	"diskreuse/internal/trace"
)

// TestRunReattributedMatchesPrepared pins the re-attribution contract: for
// any per-request disk mapping, RunReattributed produces a Result that is
// reflect.DeepEqual to PrepareTrace + RunPrepared over the same mapping,
// across policies, disk counts, and worker counts — and the scratch reuse
// across candidates never leaks state between runs.
func TestRunReattributedMatchesPrepared(t *testing.T) {
	model := disk.Ultrastar36Z15()
	for _, disks := range []int{1, 3, 8} {
		reqs := randomTrace(uint64(7+disks), 600, disks, 3)
		ra, err := NewReattributer(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{NoPM, TPM, DRPM} {
			for _, jobs := range []int{1, 4} {
				// Several candidate mappings through one Reattributer, in
				// sequence, so scratch reuse is exercised.
				for shift := 0; shift < 3; shift++ {
					cfg := Config{Model: model, NumDisks: disks, Policy: pol, Jobs: jobs}
					diskOf := func(i int) int {
						return int((reqs[i].Block + int64(shift)) % int64(disks))
					}
					got, err := RunReattributed(ra, diskOf, cfg)
					if err != nil {
						t.Fatal(err)
					}
					pt, err := PrepareTrace(reqs, func(b int64) (int, error) {
						return int((b + int64(shift)) % int64(disks)), nil
					}, disks)
					if err != nil {
						t.Fatal(err)
					}
					want, err := RunPrepared(pt, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("disks=%d pol=%v jobs=%d shift=%d: reattributed run diverged\ngot  %+v\nwant %+v",
							disks, pol, jobs, shift, got, want)
					}
				}
			}
		}
	}
}

func TestReattributerClone(t *testing.T) {
	reqs := randomTrace(11, 400, 4, 2)
	ra, err := NewReattributer(reqs)
	if err != nil {
		t.Fatal(err)
	}
	cl := ra.Clone()
	cfg := Config{Model: disk.Ultrastar36Z15(), NumDisks: 4, Policy: TPM}
	diskOf := func(i int) int { return int(reqs[i].Block % 4) }
	a, err := RunReattributed(ra, diskOf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReattributed(cl, diskOf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clone diverged:\ngot  %+v\nwant %+v", b, a)
	}
	if ra.Requests() != len(reqs) || cl.Requests() != len(reqs) {
		t.Fatalf("Requests() = %d/%d, want %d", ra.Requests(), cl.Requests(), len(reqs))
	}
}

func TestReattributerErrors(t *testing.T) {
	unsorted := []trace.Request{
		{Arrival: 1, Size: 4096}, {Arrival: 0, Size: 4096},
	}
	if _, err := NewReattributer(unsorted); err == nil || !strings.Contains(err.Error(), "sorted by arrival") {
		t.Fatalf("unsorted stream: err = %v", err)
	}

	reqs := randomTrace(3, 50, 2, 1)
	ra, err := NewReattributer(reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: disk.Ultrastar36Z15(), Policy: NoPM}
	if _, err := RunReattributed(ra, func(int) int { return 0 }, cfg); err == nil ||
		!strings.Contains(err.Error(), "positive NumDisks") {
		t.Fatalf("missing NumDisks: err = %v", err)
	}
	cfg.NumDisks = 2
	if _, err := RunReattributed(ra, func(int) int { return 2 }, cfg); err == nil ||
		!strings.Contains(err.Error(), "outside 0..1") {
		t.Fatalf("out-of-range disk: err = %v", err)
	}
	if _, err := RunReattributed(ra, func(int) int { return -1 }, cfg); err == nil {
		t.Fatal("negative disk must fail")
	}
}
