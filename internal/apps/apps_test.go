package apps

import (
	"testing"

	"diskreuse/internal/core"
	"diskreuse/internal/interp"
	"diskreuse/internal/par"
	"diskreuse/internal/trace"
)

func TestSuiteCompilesAndValidates(t *testing.T) {
	for _, size := range []Size{Tiny, Default} {
		for _, a := range Suite(size) {
			p, err := a.Compile()
			if err != nil {
				t.Fatalf("%s (size %d): %v", a.Name, size, err)
			}
			s, err := interp.BuildSpace(p)
			if err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s: %v\nsource:\n%s", a.Name, err, a.Source)
			}
			if a.ComputePerIter <= 0 {
				t.Errorf("%s: ComputePerIter not set", a.Name)
			}
			if p.NumDisks() != 8 {
				t.Errorf("%s: disks = %d, want 8 (Table 1)", a.Name, p.NumDisks())
			}
		}
	}
}

func TestSuiteOrderAndNames(t *testing.T) {
	want := []string{"AST", "FFT", "Cholesky", "Visuo", "SCF", "RSense"}
	suite := Suite(Tiny)
	if len(suite) != len(want) {
		t.Fatalf("suite size = %d", len(suite))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("app %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Description == "" {
			t.Errorf("%s: empty description", a.Name)
		}
	}
	if _, err := ByName("fft", Tiny); err != nil {
		t.Errorf("ByName case-insensitive lookup failed: %v", err)
	}
	if _, err := ByName("nope", Tiny); err == nil {
		t.Error("unknown app must fail")
	}
}

// Every app must be schedulable (legal disk-reuse schedule) at Tiny scale.
func TestSuiteRestructurable(t *testing.T) {
	for _, a := range Suite(Tiny) {
		p, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		s, err := r.DiskReuseSchedule()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := r.Verify(s); err != nil {
			t.Fatalf("%s: illegal schedule: %v", a.Name, err)
		}
	}
}

// The multiprocessor experiments need most apps to have parallel nests.
func TestSuiteParallelizability(t *testing.T) {
	parallelNests := map[string]int{}
	totalNests := map[string]int{}
	for _, a := range Suite(Tiny) {
		p, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := par.LoopParallelize(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := asg.CheckIntraNest(r); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, lvl := range asg.ParallelLevel {
			totalNests[a.Name]++
			if lvl >= 0 {
				parallelNests[a.Name]++
			}
		}
	}
	// Stencil, FFT, Visuo, SCF, RSense should parallelize all nests;
	// Cholesky's panel nests stay sequential but its update nests must
	// parallelize.
	for _, name := range []string{"AST", "FFT", "Visuo", "SCF", "RSense"} {
		if parallelNests[name] != totalNests[name] {
			t.Errorf("%s: %d of %d nests parallel", name, parallelNests[name], totalNests[name])
		}
	}
	if parallelNests["Cholesky"] == 0 {
		t.Errorf("Cholesky: no parallel nests (total %d)", totalNests["Cholesky"])
	}
}

// Trace generation must work end to end for every app, and restructuring
// must reduce disk interleaving.
func TestSuiteTraceGeneration(t *testing.T) {
	for _, a := range Suite(Tiny) {
		p, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := trace.Generate(r, trace.SinglePhase(r.OriginalSchedule()), trace.GenConfig{ComputePerIter: a.ComputePerIter})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(orig) == 0 {
			t.Fatalf("%s: empty trace", a.Name)
		}
		rs, err := r.DiskReuseSchedule()
		if err != nil {
			t.Fatal(err)
		}
		restr, err := trace.Generate(r, trace.SinglePhase(rs), trace.GenConfig{ComputePerIter: a.ComputePerIter})
		if err != nil {
			t.Fatal(err)
		}
		// Same pages are touched either way; request counts can differ
		// slightly because cache behavior depends on order, but not wildly.
		ratio := float64(len(restr)) / float64(len(orig))
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: request count changed wildly under restructuring: %d vs %d",
				a.Name, len(restr), len(orig))
		}
	}
}

// Default-size iteration spaces stay within the scheduler's comfort zone.
func TestDefaultSizesAreTractable(t *testing.T) {
	for _, a := range Suite(Default) {
		p, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := interp.BuildSpace(p)
		if err != nil {
			t.Fatal(err)
		}
		n := s.NumIterations()
		if n < 2000 {
			t.Errorf("%s: only %d iterations — too small to be representative", a.Name, n)
		}
		if n > 2_000_000 {
			t.Errorf("%s: %d iterations — scheduling would be too slow", a.Name, n)
		}
	}
}
