// Package apps provides the six disk-intensive scientific workloads of the
// paper's evaluation (Table 2) as DRL programs: AST (astrophysics), FFT,
// Cholesky factorization, Visuo (3-D visualization), SCF (quantum
// chemistry), and RSense (remote sensing database).
//
// The originals are proprietary codes operating on 87–153 GB of
// disk-resident data; what matters for the paper's results is each
// application's *access-pattern character* — how its loop nests sweep the
// striped arrays — so each workload here is a scaled-down generator that
// reproduces that character:
//
//   - AST: Jacobi-style time-stepped stencil sweeps over two fields. At
//     tile granularity a 5-point stencil touches the vertical neighbor
//     tiles fully but the horizontal neighbors only through ~1/512 of
//     their elements (one element column of a 512-element tile), so the
//     tile-level encoding carries the vertical halo only.
//   - FFT: alternating row-major passes and transposed (column-major)
//     passes, the classic out-of-core FFT data movement.
//   - Cholesky: right-looking blocked factorization with triangular
//     update nests reading panel columns.
//   - Visuo: slicing a 3-D volume along all three axes (axial, coronal,
//     sagittal), with wildly different strides per nest.
//   - SCF: pair-interaction matrix sweeps contracting a large
//     two-dimensional integral array against small vectors.
//   - RSense: multi-band raster composition followed by a transposed
//     region query over the composite.
//
// Arrays are declared at page-block granularity (elem 4096): one DRL
// element is one 4-KiB disk page of the underlying array, the natural
// out-of-core tile. Accesses to disk-resident data are made at page-block
// granularity in the paper's setup (§7.1), so this loses nothing.
package apps

import (
	"fmt"
	"strings"

	"diskreuse/internal/obs"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

// App is one benchmark application.
type App struct {
	Name        string
	Description string
	Source      string // DRL program text
	// ComputePerIter is the CPU time per loop iteration in seconds,
	// standing in for the paper's measured cycle estimates; it is tuned so
	// the applications spend roughly 75–82% of their time in disk I/O, as
	// the paper reports.
	ComputePerIter float64
}

// Compile parses and analyzes the application's DRL source.
func (a App) Compile() (*sema.Program, error) {
	return a.CompileTraced(nil)
}

// CompileTraced is Compile with per-stage spans ("parse", "sema") recorded
// under parent; a nil parent traces nothing.
func (a App) CompileTraced(parent *obs.Span) (*sema.Program, error) {
	sp := parent.Child("parse")
	prog, err := parser.Parse(a.Source)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	sp = parent.Child("sema")
	p, err := sema.Analyze(prog, sema.Options{})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	return p, nil
}

// Size selects the workload scale.
type Size int

const (
	// Tiny is for unit tests: a few thousand iterations per app.
	Tiny Size = iota
	// Small is for micro-benchmarks of the analysis front-end: large
	// enough that parallel passes clear their crossover thresholds, small
	// enough that a benchmark iteration stays well under a second.
	Small
	// Default is the evaluation scale used by the benchmark harness.
	Default
)

// stripeClause is the Table 1 striping: 32 KB stripe unit, 8 disks,
// starting at the first disk.
const stripeClause = "stripe(unit=32K, factor=8, start=0)"

// elemClause declares page-granular elements.
const elemClause = "elem 4096"

func arr(name string, dims ...int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "array %s", name)
	for _, d := range dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	fmt.Fprintf(&b, " %s %s\n", elemClause, stripeClause)
	return b.String()
}

// AST: time-stepped Jacobi stencil, alternating U->V and V->U sweeps.
func astApp(size Size) App {
	rows, cols, steps := 192, 192, 4
	switch size {
	case Tiny:
		rows, cols, steps = 16, 16, 2
	case Small:
		rows, cols, steps = 64, 64, 2
	}
	var b strings.Builder
	b.WriteString(arr("U", rows, cols))
	b.WriteString(arr("V", rows, cols))
	src, dst := "U", "V"
	for t := 0; t < 2*steps; t++ {
		fmt.Fprintf(&b, `
nest Sweep%d {
  for i = 1 to %d {
    for j = 1 to %d {
      %s[i][j] = %s[i][j] + %s[i-1][j] + %s[i+1][j];
    }
  }
}
`, t, rows-2, cols-2, dst, src, src, src)
		src, dst = dst, src
	}
	return App{
		Name:           "AST",
		Description:    "Astrophysics (time-stepped 2-D stencil)",
		Source:         b.String(),
		ComputePerIter: 1.2e-3,
	}
}

// FFT: out-of-core FFT data movement — row passes and transposed passes.
func fftApp(size Size) App {
	n, m := 192, 192
	switch size {
	case Tiny:
		n, m = 16, 16
	case Small:
		n, m = 64, 64
	}
	var b strings.Builder
	b.WriteString(arr("A", n, m))
	b.WriteString(arr("B", n, m))
	b.WriteString(fmt.Sprintf(`
nest RowPass1 {
  for i = 0 to %d {
    for j = 0 to %d {
      B[i][j] = A[i][j];
    }
  }
}

nest Transpose1 {
  for i = 0 to %d {
    for j = 0 to %d {
      A[i][j] = B[j][i];
    }
  }
}

nest RowPass2 {
  for i = 0 to %d {
    for j = 0 to %d {
      B[i][j] = A[i][j];
    }
  }
}

nest Transpose2 {
  for i = 0 to %d {
    for j = 0 to %d {
      A[i][j] = B[j][i];
    }
  }
}
`, n-1, m-1,
		min(n, m)-1, min(n, m)-1,
		n-1, m-1,
		min(n, m)-1, min(n, m)-1))
	return App{
		Name:           "FFT",
		Description:    "Fast Fourier Transform (out-of-core passes + transposes)",
		Source:         b.String(),
		ComputePerIter: 1.0e-3,
	}
}

// Cholesky: right-looking blocked factorization; one update nest per panel.
func choleskyApp(size Size) App {
	n, panel := 96, 6
	switch size {
	case Tiny:
		n, panel = 12, 4
	case Small:
		n, panel = 48, 6
	}
	var b strings.Builder
	b.WriteString(arr("A", n, n))
	for k := 0; k*panel+panel < n; k++ {
		base := k * panel
		fmt.Fprintf(&b, `
nest Panel%d {
  for i = %d to %d {
    for j = %d to %d {
      A[i][j] = A[i][j] + A[i][%d];
    }
  }
}

nest Update%d {
  for i = %d to %d {
    for j = %d to i {
      for kk = %d to %d {
        A[i][j] = A[i][j] + A[i][kk] + A[j][kk];
      }
    }
  }
}
`, k, base, n-1, base, base+panel-1, base,
			k, base+panel, n-1, base+panel, base, base+panel-1)
	}
	return App{
		Name:           "Cholesky",
		Description:    "Cholesky Factorization (right-looking blocked)",
		Source:         b.String(),
		ComputePerIter: 0.5e-3,
	}
}

// Visuo: 3-D volume sliced along three axes into three image planes.
func visuoApp(size Size) App {
	d, r, c := 24, 64, 64
	switch size {
	case Tiny:
		d, r, c = 4, 8, 8
	case Small:
		d, r, c = 8, 32, 32
	}
	var b strings.Builder
	b.WriteString(arr("Vol", d, r, c))
	b.WriteString(arr("Axial", r, c))
	b.WriteString(arr("Coronal", d, c))
	b.WriteString(arr("Sagittal", d, r))
	fmt.Fprintf(&b, `
nest AxialPass {
  for z = 0 to %d {
    for y = 0 to %d {
      for x = 0 to %d {
        Axial[y][x] = Axial[y][x] + Vol[z][y][x];
      }
    }
  }
}

nest CoronalPass {
  for y = 0 to %d {
    for z = 0 to %d {
      for x = 0 to %d {
        Coronal[z][x] = Coronal[z][x] + Vol[z][y][x];
      }
    }
  }
}

nest SagittalPass {
  for x = 0 to %d {
    for z = 0 to %d {
      for y = 0 to %d {
        Sagittal[z][y] = Sagittal[z][y] + Vol[z][y][x];
      }
    }
  }
}
`, d-1, r-1, c-1,
		r-1, d-1, c-1,
		c-1, d-1, r-1)
	return App{
		Name:           "Visuo",
		Description:    "3D Visualization (axial/coronal/sagittal volume slicing)",
		Source:         b.String(),
		ComputePerIter: 0.6e-3,
	}
}

// SCF: pair-interaction sweeps over a large integral matrix.
func scfApp(size Size) App {
	n := 256
	switch size {
	case Tiny:
		n = 20
	case Small:
		n = 96
	}
	var b strings.Builder
	b.WriteString(arr("K", n, n))
	b.WriteString(arr("F", n))
	b.WriteString(arr("G", n))
	fmt.Fprintf(&b, `
nest Fock {
  for i = 0 to %d {
    for j = 0 to %d {
      G[i] = K[i][j] + F[j] + G[i];
    }
  }
}

nest Exchange {
  for i = 0 to %d {
    for j = 0 to %d {
      F[i] = K[j][i] + F[i];
    }
  }
}
`, n-1, n-1, n-1, n-1)
	return App{
		Name:           "SCF",
		Description:    "Quantum Chemistry (self-consistent field integral sweeps)",
		Source:         b.String(),
		ComputePerIter: 0.8e-3,
	}
}

// RSense: multi-band raster composition plus a transposed region query.
func rsenseApp(size Size) App {
	r, c := 128, 128
	switch size {
	case Tiny:
		r, c = 12, 12
	case Small:
		r, c = 64, 64
	}
	var b strings.Builder
	for _, band := range []string{"Band1", "Band2", "Band3", "Band4"} {
		b.WriteString(arr(band, r, c))
	}
	b.WriteString(arr("Comp", r, c))
	fmt.Fprintf(&b, `
nest Compose {
  for i = 0 to %d {
    for j = 0 to %d {
      Comp[i][j] = Band1[i][j] + Band2[i][j] + Band3[i][j] + Band4[i][j];
    }
  }
}

nest Query {
  for j = 0 to %d {
    for i = 0 to %d {
      Band1[i][j] = Comp[i][j] + Band1[i][j];
    }
  }
}
`, r-1, c-1, c-1, r-1)
	return App{
		Name:           "RSense",
		Description:    "Remote Sensing Database (band composition + region query)",
		Source:         b.String(),
		ComputePerIter: 0.7e-3,
	}
}

// Suite returns the six applications at the given scale, in the paper's
// Table 2 order.
func Suite(size Size) []App {
	return []App{
		astApp(size),
		fftApp(size),
		choleskyApp(size),
		visuoApp(size),
		scfApp(size),
		rsenseApp(size),
	}
}

// ByName returns the named application at the given scale.
func ByName(name string, size Size) (App, error) {
	for _, a := range Suite(size) {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
