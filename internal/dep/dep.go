// Package dep implements the data dependence analysis the paper's
// transformations rely on (§5, §6.1): exact constant distance vectors for
// uniformly generated affine reference pairs, the classic GCD test as a
// conservative fallback, cross-nest region-overlap tests, and detection of
// the outermost parallelizable loop from the distance matrix.
package dep

import (
	"fmt"
	"math/big"

	"diskreuse/internal/affine"
	"diskreuse/internal/sema"
)

// Kind classifies a dependence.
type Kind int

const (
	// Flow is a true (read-after-write) dependence.
	Flow Kind = iota
	// Anti is a write-after-read dependence.
	Anti
	// Output is a write-after-write dependence.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dependence records a data dependence between two statements of one nest.
// When Exact is true, Distance is the constant distance vector (lexico-
// graphically non-negative, destination iteration minus source iteration).
// When Exact is false the dependence exists (or could not be disproven)
// but has no single constant distance; Known then marks the entries of
// Distance that are nevertheless fixed across the whole solution family
// (e.g. an accumulation F[i] += ... inside an (i,j) nest has distances
// (0, t) for all t: entry 0 is known zero, entry 1 is free). Consumers must
// treat unknown entries conservatively.
type Dependence struct {
	Src, Dst *sema.Stmt
	Array    *sema.Array
	Kind     Kind
	Distance affine.Vector
	Exact    bool
	Known    []bool // per-level, meaningful when !Exact; nil = nothing known
}

// KnownZeroAt reports whether the dependence provably has distance zero at
// loop level k (true for exact zero entries and for known-zero entries of
// an inexact family).
func (d Dependence) KnownZeroAt(k int) bool {
	if k >= len(d.Distance) {
		return false
	}
	if d.Exact {
		return d.Distance[k] == 0
	}
	return d.Known != nil && k < len(d.Known) && d.Known[k] && d.Distance[k] == 0
}

func (d Dependence) String() string {
	dist := "*"
	if d.Exact {
		dist = d.Distance.String()
	}
	return fmt.Sprintf("%s dep on %s: S%d -> S%d, distance %s",
		d.Kind, d.Array.Name, d.Src.Index, d.Dst.Index, dist)
}

// AnalyzeNest computes all data dependences between statement pairs of the
// nest. Same-statement same-iteration accesses (distance zero) are omitted:
// the scheduling unit throughout this project is a whole iteration, which
// keeps intra-iteration ordering intact by construction.
func AnalyzeNest(n *sema.Nest) []Dependence {
	var deps []Dependence
	for i, s1 := range n.Stmts {
		for j := i; j < len(n.Stmts); j++ {
			s2 := n.Stmts[j]
			deps = append(deps, analyzePair(n, s1, s2)...)
		}
	}
	return deps
}

// refAccess pairs a reference with whether it writes.
type refAccess struct {
	ref   *sema.Ref
	write bool
}

func accesses(s *sema.Stmt) []refAccess {
	var out []refAccess
	if s.Write != nil {
		out = append(out, refAccess{s.Write, true})
	}
	for _, r := range s.Reads {
		out = append(out, refAccess{r, false})
	}
	return out
}

func analyzePair(n *sema.Nest, s1, s2 *sema.Stmt) []Dependence {
	var deps []Dependence
	acc1, acc2 := accesses(s1), accesses(s2)
	for i1, a1 := range acc1 {
		for i2, a2 := range acc2 {
			if s1 == s2 && i2 < i1 {
				continue // unordered pairs within one statement
			}
			if a1.ref.Array != a2.ref.Array {
				continue
			}
			if !a1.write && !a2.write {
				continue // read-read pairs carry no dependence
			}
			if d, ok := testPair(n, s1, a1, s2, a2); ok {
				deps = append(deps, d)
			}
		}
	}
	return deps
}

func kindOf(srcWrite, dstWrite bool) Kind {
	switch {
	case srcWrite && dstWrite:
		return Output
	case srcWrite:
		return Flow
	default:
		return Anti
	}
}

// testPair tests for a dependence between reference a1 of s1 and a2 of s2.
func testPair(n *sema.Nest, s1 *sema.Stmt, a1 refAccess, s2 *sema.Stmt, a2 refAccess) (Dependence, bool) {
	iters := n.Iterators()
	// Region disjointness (a Banerjee-style bounds test): if the two
	// references' touched regions are disjoint in some dimension over the
	// whole iteration domain, no dependence exists regardless of subscript
	// form. This prunes the false positives the value-blind GCD test keeps,
	// e.g. a triangular update reading panel columns it never writes.
	r1, err1 := RefRegion(n, a1.ref)
	r2, err2 := RefRegion(n, a2.ref)
	if err1 == nil && err2 == nil && !regionsIntersect(r1, r2) {
		return Dependence{}, false
	}
	// Try the exact uniformly-generated path: solve A·d = Δc where row k of
	// A holds the iterator coefficients of subscript k (identical for both
	// refs) and Δc is the constant difference.
	if uniform(a1.ref, a2.ref) {
		d, known, state := solveDistance(iters, a1.ref, a2.ref)
		switch state {
		case solNone:
			return Dependence{}, false
		case solUnique:
			return orient(s1, a1, s2, a2, d)
		case solMany:
			return Dependence{
				Src: s1, Dst: s2, Array: a1.ref.Array,
				Kind: kindOf(a1.write, a2.write), Exact: false,
				Distance: d, Known: known,
			}, true
		}
	}
	// Non-uniform: per-dimension GCD test. If any dimension has no integer
	// solution there is no dependence; otherwise assume one conservatively.
	for k := range a1.ref.Subs {
		var coeffs []int64
		e1, e2 := a1.ref.Subs[k], a2.ref.Subs[k]
		for _, v := range iters {
			coeffs = append(coeffs, e1.Coeff(v), -e2.Coeff(v))
		}
		if !affine.GCDTestSolvable(coeffs, e2.Const-e1.Const) {
			return Dependence{}, false
		}
	}
	return Dependence{
		Src: s1, Dst: s2, Array: a1.ref.Array,
		Kind: kindOf(a1.write, a2.write), Exact: false,
	}, true
}

// orient turns a raw solution d = i2 - i1 into a lexicographically
// non-negative dependence, flipping source and destination if needed.
func orient(s1 *sema.Stmt, a1 refAccess, s2 *sema.Stmt, a2 refAccess, d affine.Vector) (Dependence, bool) {
	switch {
	case d.LexPositive():
		return Dependence{
			Src: s1, Dst: s2, Array: a1.ref.Array,
			Kind: kindOf(a1.write, a2.write), Distance: d, Exact: true,
		}, true
	case d.LexNegative():
		return Dependence{
			Src: s2, Dst: s1, Array: a1.ref.Array,
			Kind: kindOf(a2.write, a1.write), Distance: d.Neg(), Exact: true,
		}, true
	default: // same iteration
		if s1 == s2 {
			return Dependence{}, false
		}
		// Statement order decides; statements execute in index order.
		src, dst := s1, s2
		srcW, dstW := a1.write, a2.write
		if s1.Index > s2.Index {
			src, dst = s2, s1
			srcW, dstW = a2.write, a1.write
		}
		return Dependence{
			Src: src, Dst: dst, Array: a1.ref.Array,
			Kind: kindOf(srcW, dstW), Distance: d, Exact: true,
		}, true
	}
}

// uniform reports whether the two references are uniformly generated:
// identical iterator coefficients in every subscript dimension.
func uniform(r1, r2 *sema.Ref) bool {
	if len(r1.Subs) != len(r2.Subs) {
		return false
	}
	for k := range r1.Subs {
		if !r1.Subs[k].SameLinearPart(r2.Subs[k]) {
			return false
		}
	}
	return true
}

type solState int

const (
	solNone   solState = iota // no integer solution: no dependence
	solUnique                 // unique integer distance vector
	solMany                   // underdetermined: family of solutions
)

// solveDistance solves A·d = c1 - c2 for the distance vector d over the
// nest iterators, using exact rational Gaussian elimination. For
// underdetermined systems (solMany) it also reports which entries of d are
// fixed across the entire solution family (known), with their values in
// the returned vector.
func solveDistance(iters []string, r1, r2 *sema.Ref) (affine.Vector, []bool, solState) {
	m := len(r1.Subs)
	nv := len(iters)
	// Build augmented matrix [A | b], b_k = c1_k - c2_k (from
	// A·i1 + c1 = A·i2 + c2 with d = i2 - i1: A·d = c1 - c2).
	mat := make([][]*big.Rat, m)
	for k := 0; k < m; k++ {
		mat[k] = make([]*big.Rat, nv+1)
		for j, v := range iters {
			mat[k][j] = big.NewRat(r1.Subs[k].Coeff(v), 1)
		}
		mat[k][nv] = big.NewRat(r1.Subs[k].Const-r2.Subs[k].Const, 1)
	}
	// Gaussian elimination to row echelon form.
	pivotCol := make([]int, 0, m)
	row := 0
	for col := 0; col < nv && row < m; col++ {
		p := -1
		for r := row; r < m; r++ {
			if mat[r][col].Sign() != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			continue
		}
		mat[row], mat[p] = mat[p], mat[row]
		inv := new(big.Rat).Inv(mat[row][col])
		for j := col; j <= nv; j++ {
			mat[row][j].Mul(mat[row][j], inv)
		}
		for r := 0; r < m; r++ {
			if r == row || mat[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(mat[r][col])
			for j := col; j <= nv; j++ {
				t := new(big.Rat).Mul(f, mat[row][j])
				mat[r][j].Sub(mat[r][j], t)
			}
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	// Inconsistent system: a zero row with nonzero rhs.
	for r := row; r < m; r++ {
		if mat[r][nv].Sign() != 0 {
			return nil, nil, solNone
		}
	}
	if len(pivotCol) < nv {
		// Underdetermined. A pivot variable is still fixed when its row has
		// zero coefficients on every free column: d[col] = rhs then holds
		// for every solution. A fixed non-integral value kills the whole
		// family (no integer solutions have that coordinate).
		isPivot := make([]bool, nv)
		for _, c := range pivotCol {
			isPivot[c] = true
		}
		d := make(affine.Vector, nv)
		known := make([]bool, nv)
		for r, col := range pivotCol {
			fixed := true
			for c := 0; c < nv; c++ {
				if !isPivot[c] && mat[r][c].Sign() != 0 {
					fixed = false
					break
				}
			}
			if !fixed {
				continue
			}
			val := mat[r][nv]
			if !val.IsInt() {
				return nil, nil, solNone
			}
			d[col] = val.Num().Int64()
			known[col] = true
		}
		return d, known, solMany
	}
	// Unique rational solution; must be integral to be a real dependence.
	d := make(affine.Vector, nv)
	for r, col := range pivotCol {
		val := mat[r][nv]
		if !val.IsInt() {
			return nil, nil, solNone
		}
		d[col] = val.Num().Int64()
	}
	return d, nil, solUnique
}

// DistanceMatrix gathers the exact distance vectors of all dependences of
// the nest. allExact is false if any dependence lacks a constant distance,
// in which case conservative consumers should treat the nest as fully
// serialized.
func DistanceMatrix(n *sema.Nest) (m affine.Matrix, allExact bool) {
	allExact = true
	for _, d := range AnalyzeNest(n) {
		if !d.Exact {
			allExact = false
			continue
		}
		if d.Distance.IsZero() {
			continue // loop-independent; carried by no loop
		}
		m = append(m, d.Distance)
	}
	return m, allExact
}

// ParallelizableLoop returns the outermost loop of the nest that can run in
// parallel (0-based level), applying the §6.1 conditions to the nest's
// distance matrix. ok is false when no loop is parallelizable (including
// the conservative case of inexact dependences).
func ParallelizableLoop(n *sema.Nest) (level int, ok bool) {
	m, allExact := DistanceMatrix(n)
	if !allExact {
		return 0, false
	}
	return m.ParallelizableLoop(n.Depth())
}
