package dep

import (
	"fmt"

	"diskreuse/internal/affine"
	"diskreuse/internal/sema"
)

// Interval is an inclusive integer range.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersects reports whether two intervals share at least one integer.
func (iv Interval) Intersects(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi) }

// evalInterval computes the range of affine expression e when each variable
// ranges over env[v].
func evalInterval(e affine.Expr, env map[string]Interval) (Interval, error) {
	out := Interval{Lo: e.Const, Hi: e.Const}
	for v, c := range e.Coeffs {
		iv, ok := env[v]
		if !ok {
			return Interval{}, fmt.Errorf("dep: unbound variable %s in %s", v, e)
		}
		if c >= 0 {
			out.Lo += c * iv.Lo
			out.Hi += c * iv.Hi
		} else {
			out.Lo += c * iv.Hi
			out.Hi += c * iv.Lo
		}
	}
	return out, nil
}

// IterIntervals computes a per-iterator enclosing interval for the nest by
// interval arithmetic over the loop bounds (handling triangular bounds that
// reference outer iterators). The result over-approximates the true
// iteration domain, which is the right direction for dependence tests.
func IterIntervals(n *sema.Nest) (map[string]Interval, error) {
	env := map[string]Interval{}
	for _, l := range n.Loops {
		lo, err := evalInterval(l.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := evalInterval(l.Hi, env)
		if err != nil {
			return nil, err
		}
		env[l.Var] = Interval{Lo: lo.Lo, Hi: hi.Hi}
	}
	return env, nil
}

// RefRegion computes the per-dimension bounding box of the array region a
// reference can touch over its nest's iteration domain.
func RefRegion(n *sema.Nest, r *sema.Ref) ([]Interval, error) {
	env, err := IterIntervals(n)
	if err != nil {
		return nil, err
	}
	out := make([]Interval, len(r.Subs))
	for k, sub := range r.Subs {
		iv, err := evalInterval(sub, env)
		if err != nil {
			return nil, err
		}
		out[k] = iv
	}
	return out, nil
}

// regionsIntersect reports whether two bounding boxes overlap in every
// dimension.
func regionsIntersect(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !a[k].Intersects(b[k]) {
			return false
		}
	}
	return true
}

// NestsInterfere returns the arrays through which nest n1 (executing first)
// and nest n2 may carry a cross-nest data dependence: some write region in
// one nest overlaps an access region of the same array in the other. The
// test is conservative (bounding boxes); an empty result proves the nests'
// iterations can be freely interleaved.
func NestsInterfere(n1, n2 *sema.Nest) ([]*sema.Array, error) {
	type acc struct {
		region []Interval
		write  bool
	}
	collect := func(n *sema.Nest) (map[*sema.Array][]acc, error) {
		m := map[*sema.Array][]acc{}
		for _, s := range n.Stmts {
			for _, a := range accesses(s) {
				reg, err := RefRegion(n, a.ref)
				if err != nil {
					return nil, err
				}
				m[a.ref.Array] = append(m[a.ref.Array], acc{region: reg, write: a.write})
			}
		}
		return m, nil
	}
	m1, err := collect(n1)
	if err != nil {
		return nil, err
	}
	m2, err := collect(n2)
	if err != nil {
		return nil, err
	}
	var out []*sema.Array
	seen := map[*sema.Array]bool{}
	for arr, as1 := range m1 {
		as2, ok := m2[arr]
		if !ok {
			continue
		}
		for _, a1 := range as1 {
			for _, a2 := range as2 {
				if !a1.write && !a2.write {
					continue
				}
				if regionsIntersect(a1.region, a2.region) && !seen[arr] {
					seen[arr] = true
					out = append(out, arr)
				}
			}
		}
	}
	return out, nil
}
