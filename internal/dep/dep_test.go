package dep

import (
	"testing"

	"diskreuse/internal/affine"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func analyze(t *testing.T, src string) *sema.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nestOf(t *testing.T, src string) *sema.Nest {
	t.Helper()
	return analyze(t, src).Nests[0]
}

func TestFlowDependenceDistanceOne(t *testing.T) {
	// A[i] = A[i-1]: flow dependence with distance (1).
	n := nestOf(t, `
array A[100]
nest L { for i = 1 to 99 { A[i] = A[i-1]; } }
`)
	deps := AnalyzeNest(n)
	var flow []Dependence
	for _, d := range deps {
		if d.Kind == Flow && !d.Distance.IsZero() {
			flow = append(flow, d)
		}
	}
	if len(flow) != 1 {
		t.Fatalf("flow deps = %v", deps)
	}
	d := flow[0]
	if !d.Exact || !d.Distance.Equal(affine.NewVector(1)) {
		t.Errorf("distance = %v exact=%v", d.Distance, d.Exact)
	}
	if d.Array.Name != "A" {
		t.Errorf("array = %s", d.Array.Name)
	}
}

func TestStencil2DDistances(t *testing.T) {
	// A[i][j] = A[i-1][j] + A[i][j-1]: distances (1,0) and (0,1).
	n := nestOf(t, `
array A[64][64]
nest L {
  for i = 1 to 63 {
    for j = 1 to 63 {
      A[i][j] = A[i-1][j] + A[i][j-1];
    }
  }
}
`)
	m, allExact := DistanceMatrix(n)
	if !allExact {
		t.Fatal("should be exact")
	}
	want := map[string]bool{"(1, 0)": false, "(0, 1)": false}
	for _, v := range m {
		if _, ok := want[v.String()]; ok {
			want[v.String()] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing distance %s in %v", k, m)
		}
	}
	// Neither loop is parallelizable... actually loop 1 (j) IS
	// parallelizable w.r.t. (1,0) via the lex-positive prefix, but (0,1)
	// has d[1]=1 with zero prefix, so no loop is parallelizable.
	if _, ok := ParallelizableLoop(n); ok {
		t.Error("no loop should be parallelizable")
	}
}

func TestOuterParallelizable(t *testing.T) {
	// A[i][j] = A[i][j-1]: distance (0,1); loop i parallelizable.
	n := nestOf(t, `
array A[64][64]
nest L {
  for i = 0 to 63 {
    for j = 1 to 63 {
      A[i][j] = A[i][j-1];
    }
  }
}
`)
	level, ok := ParallelizableLoop(n)
	if !ok || level != 0 {
		t.Errorf("ParallelizableLoop = %d,%v", level, ok)
	}
}

func TestInnerParallelizable(t *testing.T) {
	// A[i][j] = A[i-1][j]: distance (1,0); outer carries it, inner parallel.
	n := nestOf(t, `
array A[64][64]
nest L {
  for i = 1 to 63 {
    for j = 0 to 63 {
      A[i][j] = A[i-1][j];
    }
  }
}
`)
	level, ok := ParallelizableLoop(n)
	if !ok || level != 1 {
		t.Errorf("ParallelizableLoop = %d,%v", level, ok)
	}
}

func TestNoDependenceDisjoint(t *testing.T) {
	// Writes to even elements, reads odd elements: GCD proves independence
	// in the uniform solver (2i vs 2i+1 -> non-integral distance).
	n := nestOf(t, `
array A[200]
nest L { for i = 0 to 99 { A[2*i] = A[2*i+1]; } }
`)
	for _, d := range AnalyzeNest(n) {
		if !d.Distance.IsZero() || !d.Exact {
			t.Errorf("unexpected dependence %v", d)
		}
	}
	// The only dependences should be output self-dep distance... actually
	// A[2i] = A[2i+1] has no self flow; writes hit distinct elements.
	m, allExact := DistanceMatrix(n)
	if !allExact || len(m) != 0 {
		t.Errorf("matrix = %v exact=%v", m, allExact)
	}
}

func TestTransposeNonUniform(t *testing.T) {
	// B[i][j] = B[j][i] is not uniformly generated; GCD test cannot
	// disprove, so we get a conservative (inexact) dependence.
	n := nestOf(t, `
array B[32][32]
nest L {
  for i = 0 to 31 {
    for j = 0 to 31 {
      B[i][j] = B[j][i];
    }
  }
}
`)
	deps := AnalyzeNest(n)
	foundInexact := false
	for _, d := range deps {
		if !d.Exact {
			foundInexact = true
		}
	}
	if !foundInexact {
		t.Errorf("expected conservative dependence, got %v", deps)
	}
	if _, ok := ParallelizableLoop(n); ok {
		t.Error("conservative dependence must block parallelization")
	}
}

func TestAntiAndOutputKinds(t *testing.T) {
	// A[i] = A[i+1]: read of i+1 happens before write of i+1 one iteration
	// later -> anti dependence distance (1).
	n := nestOf(t, `
array A[101]
nest L { for i = 0 to 99 { A[i] = A[i+1]; } }
`)
	foundAnti := false
	for _, d := range AnalyzeNest(n) {
		if d.Kind == Anti && d.Exact && d.Distance.Equal(affine.NewVector(1)) {
			foundAnti = true
		}
	}
	if !foundAnti {
		t.Errorf("missing anti dependence: %v", AnalyzeNest(n))
	}

	// Two statements writing the same location: output dependence, distance 0.
	n2 := nestOf(t, `
array A[100]
array B[100]
nest L { for i = 0 to 99 {
  A[i] = B[i];
  A[i] = B[i] + 1;
} }
`)
	foundOut := false
	for _, d := range AnalyzeNest(n2) {
		if d.Kind == Output && d.Distance.IsZero() && d.Src.Index == 0 && d.Dst.Index == 1 {
			foundOut = true
		}
	}
	if !foundOut {
		t.Errorf("missing output dependence: %v", AnalyzeNest(n2))
	}
}

func TestCrossStatementFlowSameIteration(t *testing.T) {
	// S0 writes A[i], S1 reads A[i]: flow, distance 0, S0 -> S1.
	n := nestOf(t, `
array A[100]
array B[100]
nest L { for i = 0 to 99 {
  A[i] = B[i];
  B[i] = A[i];
} }
`)
	found := false
	for _, d := range AnalyzeNest(n) {
		if d.Kind == Flow && d.Distance.IsZero() && d.Src.Index == 0 && d.Dst.Index == 1 && d.Array.Name == "A" {
			found = true
		}
	}
	if !found {
		t.Errorf("deps = %v", AnalyzeNest(n))
	}
}

func TestSkewedDistance(t *testing.T) {
	// A[i+j][j] = A[i+j-2][j-1]: uniform with delta (2,1) on subscripts
	// (i+j, j); solving gives d = (1,1).
	n := nestOf(t, `
array A[200][100]
nest L {
  for i = 2 to 90 {
    for j = 1 to 90 {
      A[i+j][j] = A[i+j-2][j-1];
    }
  }
}
`)
	m, allExact := DistanceMatrix(n)
	if !allExact || len(m) != 1 || !m[0].Equal(affine.NewVector(1, 1)) {
		t.Errorf("matrix = %v exact = %v", m, allExact)
	}
}

func TestUnderdeterminedSolution(t *testing.T) {
	// A[i] inside a 2-deep nest: subscript ignores j, so the distance in j
	// is unconstrained -> inexact dependence.
	n := nestOf(t, `
array A[100]
nest L {
  for i = 1 to 9 {
    for j = 0 to 9 {
      A[i] = A[i-1];
    }
  }
}
`)
	deps := AnalyzeNest(n)
	inexact := 0
	for _, d := range deps {
		if !d.Exact {
			inexact++
		}
	}
	if inexact == 0 {
		t.Errorf("expected inexact dependences, got %v", deps)
	}
}

func TestDependenceString(t *testing.T) {
	n := nestOf(t, `
array A[100]
nest L { for i = 1 to 99 { A[i] = A[i-1]; } }
`)
	deps := AnalyzeNest(n)
	if len(deps) == 0 {
		t.Fatal("no deps")
	}
	s := deps[0].String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestIterIntervalsTriangular(t *testing.T) {
	n := nestOf(t, `
array A[100][100]
nest L {
  for i = 0 to 9 {
    for j = i to 9 {
      read A[i][j];
    }
  }
}
`)
	env, err := IterIntervals(n)
	if err != nil {
		t.Fatal(err)
	}
	if env["i"] != (Interval{0, 9}) {
		t.Errorf("i interval = %v", env["i"])
	}
	if env["j"] != (Interval{0, 9}) { // lower bound i ranges 0..9 -> lo 0
		t.Errorf("j interval = %v", env["j"])
	}
}

func TestRefRegion(t *testing.T) {
	p := analyze(t, `
array A[100][100]
nest L {
  for i = 0 to 9 {
    for j = 0 to 4 {
      A[i+1][2*j] = A[i][j];
    }
  }
}
`)
	n := p.Nests[0]
	w, err := RefRegion(n, n.Stmts[0].Write)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != (Interval{1, 10}) || w[1] != (Interval{0, 8}) {
		t.Errorf("write region = %v", w)
	}
}

func TestNestsInterfere(t *testing.T) {
	p := analyze(t, `
array A[100]
array B[100]
nest L1 { for i = 0 to 49 { A[i] = B[i]; } }
nest L2 { for i = 0 to 49 { B[i] = A[i+50]; } }
nest L3 { for i = 50 to 99 { A[i] = B[i]; } }
`)
	// L1 writes A[0..49], L2 reads A[50..99]: no overlap on A; but L1
	// reads B[0..49] and L2 writes B[0..49]: interference via B.
	arrs, err := NestsInterfere(p.Nests[0], p.Nests[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(arrs) != 1 || arrs[0].Name != "B" {
		t.Errorf("interfere(L1,L2) = %v", arrs)
	}
	// L2 writes B[0..49]; L3 reads B[50..99] and writes A[50..99], which L2
	// reads (A[50..99]): interference via A.
	arrs, err = NestsInterfere(p.Nests[1], p.Nests[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(arrs) != 1 || arrs[0].Name != "A" {
		t.Errorf("interfere(L2,L3) = %v", arrs)
	}
	// L1 and L3 touch disjoint halves of both arrays: independent.
	arrs, err = NestsInterfere(p.Nests[0], p.Nests[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(arrs) != 0 {
		t.Errorf("interfere(L1,L3) = %v", arrs)
	}
}

func TestIntervalBasics(t *testing.T) {
	if (Interval{3, 2}).Intersects(Interval{0, 10}) {
		t.Error("empty interval cannot intersect")
	}
	if !(Interval{0, 5}).Intersects(Interval{5, 9}) {
		t.Error("touching intervals intersect")
	}
	if (Interval{0, 4}).Intersects(Interval{5, 9}) {
		t.Error("disjoint intervals must not intersect")
	}
	if (Interval{1, 2}).String() != "[1, 2]" {
		t.Error("String wrong")
	}
}
