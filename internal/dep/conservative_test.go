package dep

import (
	"fmt"
	"math/rand"
	"testing"

	"diskreuse/internal/affine"
	"diskreuse/internal/interp"
)

// allows reports whether static dependence d is consistent with an observed
// iteration-difference vector diff: an exact dependence allows exactly its
// distance (in either orientation — the exact graph orients by program
// order, the static analysis by lexicographic order); an inexact one allows
// any vector matching its known entries; a fallback dependence (no
// distance information) allows everything.
func allows(d Dependence, diff affine.Vector) bool {
	if !d.Exact && d.Known == nil {
		return true
	}
	check := func(v affine.Vector) bool {
		for k := range diff {
			if k >= len(v) {
				return false
			}
			if d.Exact || (k < len(d.Known) && d.Known[k]) {
				if v[k] != diff[k] {
					return false
				}
			}
		}
		return true
	}
	return check(d.Distance) || check(d.Distance.Neg())
}

// TestStaticAnalysisIsConservative cross-validates the static tests
// against the exact element-wise dependence graph: every edge the
// interpreter finds inside a nest must be predicted ("allowed") by some
// static dependence of that nest. Misses would mean the parallelizer could
// split a real dependence across processors.
func TestStaticAnalysisIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(20060304))
	templates := []func(a, b, c int) string{
		func(a, b, c int) string { // 1-D shifted self-dependence
			return fmt.Sprintf(`
array A[64]
nest L { for i = %d to 60 { A[i] = A[i-%d] + A[i+%d]; } }`, 2+b, 1+a%2, b%3)
		},
		func(a, b, c int) string { // 2-D skewed accesses
			return fmt.Sprintf(`
array A[96][96]
nest L {
  for i = 2 to 30 {
    for j = 2 to 30 {
      A[i+%d][j] = A[i][j+%d] + A[i-1][j-%d];
    }
  }
}`, a%3, b%3, c%2+1)
		},
		func(a, b, c int) string { // strided writes vs reads
			return fmt.Sprintf(`
array A[128]
nest L { for i = 0 to 20 { A[%d*i+%d] = A[%d*i]; } }`, 1+a%3, b%4, 1+c%3)
		},
		func(a, b, c int) string { // two statements, two arrays
			return fmt.Sprintf(`
array A[64]
array B[64]
nest L { for i = 1 to 40 {
  A[i] = B[i-%d];
  B[i] = A[i-%d];
} }`, 1+a%2, b%3)
		},
		func(a, b, c int) string { // accumulation in a 2-D nest
			return fmt.Sprintf(`
array A[64]
array K[64][64]
nest L {
  for i = 0 to 30 {
    for j = 0 to 30 {
      A[i] = K[i][j] + A[i];
    }
  }
}`)
		},
	}
	for trial := 0; trial < 60; trial++ {
		tmpl := templates[trial%len(templates)]
		src := tmpl(rng.Intn(10), rng.Intn(10), rng.Intn(10))
		p := analyze(t, src)
		space, err := interp.BuildSpace(p)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if err := space.Validate(); err != nil {
			// Template produced out-of-bounds subscripts; skip this draw.
			continue
		}
		g := space.BuildDeps()
		n := p.Nests[0]
		static := AnalyzeNest(n)
		for v := 0; v < space.NumIterations(); v++ {
			for _, u := range g.Preds[v] {
				iu, iv := space.IterAt(int(u)), space.IterAt(v)
				if iu.Nest != iv.Nest {
					continue
				}
				diff := iv.Iter.Sub(iu.Iter)
				found := false
				for _, d := range static {
					if allows(d, diff) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: exact edge %v -> %v (diff %v) not predicted by static analysis %v\nprogram:%s",
						trial, iu, iv, diff, static, src)
				}
			}
		}
	}
}

// TestNoStaticDepsMeansNoExactDeps is the complementary direction for the
// independence claims the parallelizer relies on: when static analysis
// reports no dependences at all, the exact graph must agree.
func TestNoStaticDepsMeansNoExactDeps(t *testing.T) {
	srcs := []string{
		`array A[64]
array B[64]
nest L { for i = 0 to 63 { A[i] = B[i]; } }`,
		`array A[200]
nest L { for i = 0 to 99 { A[2*i] = A[2*i+1] + 1; } }`,
		`array A[64][64]
nest L { for i = 0 to 31 { for j = 0 to 31 { A[i][j] = A[i+32][j+32]; } } }`,
	}
	for _, src := range srcs {
		p := analyze(t, src)
		if deps := AnalyzeNest(p.Nests[0]); len(deps) != 0 {
			t.Fatalf("expected no static deps, got %v\n%s", deps, src)
		}
		space, err := interp.BuildSpace(p)
		if err != nil {
			t.Fatal(err)
		}
		if g := space.BuildDeps(); g.NumEdges() != 0 {
			t.Fatalf("static says independent but exact graph has %d edges\n%s", g.NumEdges(), src)
		}
	}
}
