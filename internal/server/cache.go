// Package server is the dpcd service: a stdlib-only net/http JSON API
// that accepts DRL programs and simulation configs, runs the existing
// compile → restructure → trace → simulate pipeline, and returns or
// streams the results. Its core is a content-addressed artifact cache:
// requests are keyed by a hash of everything that determines the prepared
// artifacts (program bytes, processor count, engine, trace-generation
// options, disk model), and the expensive immutable exp.Artifacts —
// parsed AST, compiled kernels, restructured schedules, prepared traces —
// are memoized in a bounded LRU with singleflight-style in-flight
// deduplication, so N concurrent identical submissions compile once and
// every replay shares the one cached value read-only.
package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"diskreuse/internal/exp"
	"diskreuse/internal/metrics"
)

// CacheStatus says how a request's artifacts were obtained; it is
// returned to clients in the X-DPCD-Cache response header.
type CacheStatus string

const (
	// StatusMiss: this request ran the pipeline.
	StatusMiss CacheStatus = "miss"
	// StatusHit: the artifacts were already cached.
	StatusHit CacheStatus = "hit"
	// StatusDedup: another in-flight request was already building the
	// same artifacts; this one waited for it instead of compiling again.
	StatusDedup CacheStatus = "dedup"
)

// ArtifactKey content-addresses a compilation: it hashes exactly the
// inputs PrepareApp's output depends on — the program bytes, the
// processor count (selects the execution plans), the front-end engine,
// the trace-generation knobs (cache pages, compute per iteration), and
// the disk model (its full-speed service time seeds the generated
// arrivals). Replay-only parameters (power-management thresholds, RAID
// width, streaming, proactive hints) are deliberately excluded: they
// do not change the artifacts, so requests differing only in policy
// share one cache entry.
func ArtifactKey(program string, procs int, engine string, cachePages int, computePerIter float64, model string) string {
	h := sha256.New()
	fmt.Fprintf(h, "dpcd-artifact-v1\nprocs=%d\nengine=%s\ncache_pages=%d\ncompute_per_iter=%016x\nmodel=%s\nprogram=%d\n",
		procs, engine, cachePages, math.Float64bits(computePerIter), model, len(program))
	h.Write([]byte(program))
	return hex.EncodeToString(h.Sum(nil))
}

// call is one in-flight artifact build; waiters block on done.
type call struct {
	done chan struct{}
	art  *exp.Artifacts
	err  error
}

// Cache is the bounded content-addressed artifact cache. All methods are
// safe for concurrent use. Entries are immutable exp.Artifacts, so a hit
// hands back a value that any number of requests may replay concurrently.
type Cache struct {
	capacity int

	mu       sync.Mutex // held only for map/list ops, never across a build
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call

	hits      *metrics.Counter
	misses    *metrics.Counter
	dedups    *metrics.Counter
	evictions *metrics.Counter
	size      *metrics.Gauge
}

type entry struct {
	key string
	art *exp.Artifacts
}

// NewCache returns a cache bounded to capacity entries. The registry
// (which may be nil) receives the cache's hit/miss/dedup/eviction
// counters and the live entry-count gauge.
func NewCache(capacity int, reg *metrics.Registry) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity:  capacity,
		ll:        list.New(),
		entries:   make(map[string]*list.Element),
		inflight:  make(map[string]*call),
		hits:      reg.Counter("dpcd_cache_hits_total", "artifact cache hits"),
		misses:    reg.Counter("dpcd_cache_misses_total", "artifact cache misses (pipeline executions)"),
		dedups:    reg.Counter("dpcd_cache_dedup_total", "requests coalesced onto an in-flight build"),
		evictions: reg.Counter("dpcd_cache_evictions_total", "artifact cache LRU evictions"),
		size:      reg.Gauge("dpcd_cache_entries", "artifacts currently cached"),
	}
	return c
}

// Get returns the artifacts for key, building them at most once across
// all concurrent callers: a cached key is a hit; a key with a build in
// flight waits for that build (dedup); otherwise this caller runs build
// (miss) and everyone arriving meanwhile waits on it. Failed builds are
// not cached — the error is shared with the coalesced waiters of that
// one attempt and the next Get retries.
func (c *Cache) Get(key string, build func() (*exp.Artifacts, error)) (*exp.Artifacts, CacheStatus, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		art := el.Value.(*entry).art
		c.mu.Unlock()
		c.hits.Inc()
		return art, StatusHit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.dedups.Inc()
		<-cl.done
		return cl.art, StatusDedup, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()
	c.misses.Inc()

	cl.art, cl.err = build()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insertLocked(key, cl.art)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.art, StatusMiss, cl.err
}

// insertLocked adds a built entry, evicting from the LRU tail past
// capacity. Callers hold the lock.
func (c *Cache) insertLocked(key string, art *exp.Artifacts) {
	if el, ok := c.entries[key]; ok {
		// A concurrent build of the same key already landed (possible if
		// an entry was evicted and rebuilt while this build ran); keep
		// the existing entry authoritative.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, art: art})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*entry).key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.ll.Len()))
}

// Lookup returns the cached artifacts for key without building, promoting
// the entry on hit. It backs GET /v1/artifacts/{hash}.
func (c *Cache) Lookup(key string) (*exp.Artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).art, true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the cached keys from most to least recently used.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}
