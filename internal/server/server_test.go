package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskreuse/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testProgram has two nests sweeping one striped array in opposite
// orders, so the restructured versions have something to improve.
const testProgram = `array A[48][16] elem 4096 stripe(unit=32K, factor=8, start=0)
nest Sweep {
  for i = 0 to 47 {
    for j = 0 to 15 {
      A[i][j] = A[i][j];
    }
  }
}
nest Transpose {
  for j = 0 to 15 {
    for i = 0 to 47 {
      A[i][j] = A[i][j];
    }
  }
}
`

// newTestServer returns a server with fully deterministic responses:
// Jobs=1 pins every fan-out to the serial path.
func newTestServer(cfg Config) *Server {
	cfg.Jobs = 1
	return New(cfg)
}

// post routes a request body through the full handler chain.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// checkGolden compares got against the named testdata file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func mustRequestJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCompileGolden pins the compile request/response pair byte for byte.
func TestCompileGolden(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, CompileRequest{Program: testProgram, Name: "golden", Procs: 2})
	rec := post(s, "/v1/compile", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "compile_response.golden.json", rec.Body.Bytes())
}

// TestSimulateGolden pins the full multi-processor simulate response —
// every field of it is a deterministic function of the request, so the
// comparison is raw bytes with no normalization at all.
func TestSimulateGolden(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram, Name: "golden", Procs: 2},
	})
	rec := post(s, "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "simulate_response.golden.json", rec.Body.Bytes())
}

// TestSimulateReportGolden pins the ?report=json variant with the
// wall-clock timings zeroed, the same schema-pin approach as the exp
// harness's report golden.
func TestSimulateReportGolden(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram, Name: "golden", Procs: 2},
	})
	rec := post(s, "/v1/simulate?report=json", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report == nil {
		t.Fatal("?report=json response has no report")
	}
	if len(resp.Report.Stages) == 0 {
		t.Error("report on a cache miss should carry pipeline stage timings")
	}
	resp.Report.ZeroTimings()
	got, err := json.MarshalIndent(&resp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "simulate_report.golden.json", append(got, '\n'))
}

// TestErrorPaths is the 4xx table: every malformed or unprocessable
// request maps to a structured error JSON with the right status and code,
// and nothing maps to a 5xx.
func TestErrorPaths(t *testing.T) {
	s := newTestServer(Config{MaxBodyBytes: 4096, MaxIterations: 5000})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"malformed JSON", "POST", "/v1/simulate", `{"program":`, 400, CodeBadRequest},
		{"not JSON at all", "POST", "/v1/compile", `hello`, 400, CodeBadRequest},
		{"unknown field", "POST", "/v1/compile", `{"program":"x","bogus":1}`, 400, CodeBadRequest},
		{"trailing garbage", "POST", "/v1/compile", `{"program":"x"} extra`, 400, CodeBadRequest},
		{"wrong top-level type", "POST", "/v1/simulate", `[1,2,3]`, 400, CodeBadRequest},
		{"empty program", "POST", "/v1/compile", `{"program":"  "}`, 400, CodeBadRequest},
		{"missing program", "POST", "/v1/simulate", `{}`, 400, CodeBadRequest},
		{"negative procs", "POST", "/v1/compile", `{"program":"x","procs":-1}`, 422, CodeInvalidConfig},
		{"bad engine", "POST", "/v1/compile", `{"program":"x","engine":"quantum"}`, 422, CodeInvalidConfig},
		{"negative cache_pages", "POST", "/v1/compile", `{"program":"x","cache_pages":-5}`, 422, CodeInvalidConfig},
		{"negative compute_per_iter", "POST", "/v1/compile", `{"program":"x","compute_per_iter":-1}`, 422, CodeInvalidConfig},
		{"DRL parse error", "POST", "/v1/compile", `{"program":"nest ("}`, 422, CodeCompileFailed},
		{"DRL sema error", "POST", "/v1/compile",
			`{"program":"array A[4] elem 4096\nnest N { for i = 0 to 3 { B[i] = B[i]; } }"}`, 422, CodeCompileFailed},
		{"iteration budget", "POST", "/v1/compile",
			`{"program":"array A[4] elem 4096\nnest N { for i = 0 to 999999999 { A[0] = A[0]; } }"}`, 422, CodeTooManyIters},
		{"negative sim param", "POST", "/v1/simulate",
			`{"program":"x","sim":{"tpm_threshold":-1}}`, 422, CodeInvalidConfig},
		{"negative raid width", "POST", "/v1/simulate",
			`{"program":"x","sim":{"raid_width":-2}}`, 422, CodeInvalidConfig},
		{"unknown version", "POST", "/v1/simulate",
			fmt.Sprintf(`{"program":%q,"versions":["Turbo"]}`, testProgram), 422, CodeInvalidConfig},
		{"multiproc version at procs=1", "POST", "/v1/simulate",
			fmt.Sprintf(`{"program":%q,"versions":["T-TPM-m"]}`, testProgram), 422, CodeInvalidConfig},
		{"oversized body", "POST", "/v1/simulate",
			`{"program":"` + strings.Repeat("x", 8192) + `"}`, 413, CodeBodyTooLarge},
		{"artifact not cached", "GET", "/v1/artifacts/deadbeef", "", 404, CodeNotFound},
		{"wrong method compile", "GET", "/v1/compile", "", 405, CodeMethodNotAllowed},
		{"wrong method artifacts", "POST", "/v1/artifacts/deadbeef", `{}`, 405, CodeMethodNotAllowed},
		{"stream with report", "POST", "/v1/simulate?stream=ndjson&report=json",
			fmt.Sprintf(`{"program":%q}`, testProgram), 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if rec.Code >= 500 {
				t.Fatalf("server answered 5xx: %d", rec.Code)
			}
			var eb ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not structured JSON: %v (%s)", err, rec.Body)
			}
			if eb.Error.Code != tc.code || eb.Error.Status != tc.status || eb.Error.Message == "" {
				t.Errorf("error = %+v, want code %q status %d and a message", eb.Error, tc.code, tc.status)
			}
		})
	}
}

// TestCacheStatusAndByteIdentity is the repeat-submission contract: the
// second identical simulate hits the cache, skips the pipeline (compile
// counter stays at 1), and returns a byte-identical body.
func TestCacheStatusAndByteIdentity(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram, Procs: 2},
	})
	first := post(s, "/v1/simulate", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-DPCD-Cache"); got != string(StatusMiss) {
		t.Errorf("first X-DPCD-Cache = %q, want miss", got)
	}
	second := post(s, "/v1/simulate", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-DPCD-Cache"); got != string(StatusHit) {
		t.Errorf("second X-DPCD-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("hit response is not byte-identical to the miss response")
	}
	if a, b := first.Header().Get("X-DPCD-Artifact"), second.Header().Get("X-DPCD-Artifact"); a == "" || a != b {
		t.Errorf("artifact headers differ: %q vs %q", a, b)
	}
	if v, _ := s.Metrics().Value("dpcd_compiles_total"); v != 1 {
		t.Errorf("dpcd_compiles_total = %v, want 1 (the hit must skip the pipeline)", v)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_hits_total"); v != 1 {
		t.Errorf("dpcd_cache_hits_total = %v, want 1", v)
	}

	// A replay-only parameter change shares the artifact (same key) but
	// produces a different result body.
	tweaked := post(s, "/v1/simulate", mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram, Procs: 2},
		Sim:            SimConfig{TPMThreshold: 3.5},
	}))
	if got := tweaked.Header().Get("X-DPCD-Cache"); got != string(StatusHit) {
		t.Errorf("policy-tweaked request X-DPCD-Cache = %q, want hit (policy params are not in the key)", got)
	}
	if bytes.Equal(tweaked.Body.Bytes(), first.Body.Bytes()) {
		t.Error("changing tpm_threshold must change the result body")
	}
}

// TestCompileThenArtifactLookup covers GET /v1/artifacts/{hash}.
func TestCompileThenArtifactLookup(t *testing.T) {
	s := newTestServer(Config{})
	rec := post(s, "/v1/compile", mustRequestJSON(t, CompileRequest{Program: testProgram, Name: "lookup"}))
	if rec.Code != http.StatusOK {
		t.Fatalf("compile: %d %s", rec.Code, rec.Body)
	}
	var info ArtifactInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	got := get(s, "/v1/artifacts/"+info.Artifact)
	if got.Code != http.StatusOK {
		t.Fatalf("artifact lookup: %d %s", got.Code, got.Body)
	}
	var looked ArtifactInfo
	if err := json.Unmarshal(got.Body.Bytes(), &looked); err != nil {
		t.Fatal(err)
	}
	if looked.Artifact != info.Artifact || looked.Name != "lookup" ||
		looked.NumDisks != info.NumDisks || looked.DataBytes != info.DataBytes {
		t.Errorf("lookup = %+v, want the compiled artifact %+v", looked, info)
	}
}

// TestStreamNDJSON checks the streamed variant: interval lines, one
// result line per version, a done line — and results identical to the
// sync path's.
func TestStreamNDJSON(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram},
		Versions:       []string{"Base", "T-TPM-s"},
	})
	sync := post(s, "/v1/simulate", body)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync: %d %s", sync.Code, sync.Body)
	}
	var syncResp SimulateResponse
	if err := json.Unmarshal(sync.Body.Bytes(), &syncResp); err != nil {
		t.Fatal(err)
	}

	rec := post(s, "/v1/simulate?stream=ndjson", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var intervals, results int
	var done bool
	var streamed []VersionResult
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var sl StreamLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch sl.Type {
		case "interval":
			intervals++
			if sl.ToS < sl.FromS || sl.State == "" {
				t.Fatalf("malformed interval line: %q", line)
			}
		case "result":
			results++
			streamed = append(streamed, *sl.Result)
		case "done":
			done = true
			if sl.Artifact == "" {
				t.Error("done line has no artifact hash")
			}
		default:
			t.Fatalf("unexpected line type %q", sl.Type)
		}
	}
	if intervals == 0 || results != 2 || !done {
		t.Fatalf("stream shape: %d intervals, %d results, done=%v", intervals, results, done)
	}
	a, _ := json.Marshal(syncResp.Results)
	b, _ := json.Marshal(streamed)
	if !bytes.Equal(a, b) {
		t.Errorf("streamed results differ from sync results:\n%s\nvs\n%s", b, a)
	}
}

// TestChromeTraceFlag checks the ?trace=chrome export.
func TestChromeTraceFlag(t *testing.T) {
	s := newTestServer(Config{})
	rec := post(s, "/v1/simulate?trace=chrome", mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram},
		Versions:       []string{"Base"},
	}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(resp.ChromeTrace, &ct); err != nil {
		t.Fatalf("chrome_trace is not a Chrome trace_event document: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Error("chrome_trace has no events")
	}
}

// TestMetricsEndpoint checks the exposition surface end to end.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(Config{})
	post(s, "/v1/compile", mustRequestJSON(t, CompileRequest{Program: testProgram}))
	rec := get(s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"dpcd_compiles_total 1",
		"dpcd_cache_misses_total 1",
		"dpcd_cache_entries 1",
		`dpcd_requests_total{code="200",endpoint="compile"} 1`,
		`dpcd_request_seconds_count{endpoint="compile"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSharedRegistry checks that a caller-supplied registry receives the
// server's series alongside its own (the cmd/dpcd wiring).
func TestSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestServer(Config{Metrics: reg})
	post(s, "/v1/simulate", mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram},
		Versions:       []string{"Base"},
	}))
	if v, ok := reg.Value("dpcd_compiles_total"); !ok || v != 1 {
		t.Errorf("shared registry dpcd_compiles_total = %v, %v", v, ok)
	}
	// The simulator's own live series publish through the same registry.
	if _, ok := reg.Value("sim_requests_total"); !ok {
		t.Log("sim live series not present (acceptable if the simulator publishes under other names)")
	}
}
