package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"diskreuse/internal/exp"
	"diskreuse/internal/metrics"
)

// TestConcurrentIdenticalSubmissions is the singleflight contract under
// load: M goroutines POST the same simulate request simultaneously;
// exactly one pipeline execution happens (compile counter), every
// response is 200 with a bit-identical body, and the cache statuses
// partition into one miss plus hits/dedups.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	s := newTestServer(Config{})
	body := mustRequestJSON(t, SimulateRequest{
		CompileRequest: CompileRequest{Program: testProgram, Procs: 2},
		Versions:       []string{"Base", "T-TPM-m"},
	})
	const m = 16
	bodies := make([][]byte, m)
	statuses := make([]string, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(s, "/v1/simulate", body)
			if rec.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d: %s", i, rec.Code, rec.Body)
				return
			}
			bodies[i] = rec.Body.Bytes()
			statuses[i] = rec.Header().Get("X-DPCD-Cache")
		}(i)
	}
	wg.Wait()

	if v, _ := s.Metrics().Value("dpcd_compiles_total"); v != 1 {
		t.Errorf("dpcd_compiles_total = %v, want exactly 1 for %d identical submissions", v, m)
	}
	var misses, dedups, hits int
	for i := range statuses {
		switch CacheStatus(statuses[i]) {
		case StatusMiss:
			misses++
		case StatusDedup:
			dedups++
		case StatusHit:
			hits++
		default:
			t.Errorf("goroutine %d: unexpected cache status %q", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("goroutine %d: response body differs from goroutine 0", i)
		}
	}
	if misses != 1 || misses+dedups+hits != m {
		t.Errorf("status partition: %d miss, %d dedup, %d hit; want 1 miss and %d total", misses, dedups, hits, m)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_misses_total"); v != 1 {
		t.Errorf("dpcd_cache_misses_total = %v, want 1", v)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_dedup_total"); v != float64(dedups) {
		t.Errorf("dpcd_cache_dedup_total = %v, want %d", v, dedups)
	}
}

// TestCacheSingleflight drives the Cache directly: concurrent Gets of one
// key run the build function exactly once, and a failed build is shared
// with its waiters but never cached.
func TestCacheSingleflight(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(4, reg)
	gate := make(chan struct{})
	var builds int
	art := &exp.Artifacts{}
	build := func() (*exp.Artifacts, error) {
		builds++ // safe: singleflight means one builder
		<-gate
		return art, nil
	}
	const m = 8
	var wg sync.WaitGroup
	statuses := make([]CacheStatus, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, st, err := c.Get("k", build)
			if err != nil || got != art {
				t.Errorf("Get: %v, %v", got, err)
			}
			statuses[i] = st
		}(i)
	}
	// Open the gate once at least the first builder is registered; any
	// goroutine still arriving afterwards sees a plain hit, which the
	// partition check below allows.
	for c.Len() == 0 {
		select {
		case gate <- struct{}{}:
		default:
		}
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	var misses int
	for _, st := range statuses {
		if st == StatusMiss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want 1 (statuses %v)", misses, statuses)
	}

	// Failed builds propagate but are not cached.
	wantErr := fmt.Errorf("boom")
	_, _, err := c.Get("bad", func() (*exp.Artifacts, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("error Get = %v, want %v", err, wantErr)
	}
	if _, ok := c.Lookup("bad"); ok {
		t.Error("failed build was cached")
	}
	// The next Get retries the build.
	got, st, err := c.Get("bad", func() (*exp.Artifacts, error) { return art, nil })
	if err != nil || got != art || st != StatusMiss {
		t.Errorf("retry Get = %v, %v, %v; want artifacts, miss, nil", got, st, err)
	}
}

// TestLRUEvictionAccounting churns a capacity-2 server cache with three
// distinct programs and checks the eviction order, the metrics, and that
// an evicted program recompiles.
func TestLRUEvictionAccounting(t *testing.T) {
	s := newTestServer(Config{CacheEntries: 2})
	prog := func(n int) string {
		return fmt.Sprintf(`array A[%d] elem 4096 stripe(unit=32K, factor=8, start=0)
nest N { for i = 0 to %d { A[i] = A[i]; } }
`, 8*(n+1), 8*(n+1)-1)
	}
	postProg := func(n int) *CompileRequest {
		cr := &CompileRequest{Program: prog(n)}
		rec := post(s, "/v1/compile", mustRequestJSON(t, cr))
		if rec.Code != http.StatusOK {
			t.Fatalf("compile %d: %d %s", n, rec.Code, rec.Body)
		}
		return cr
	}
	keyOf := func(n int) string {
		return ArtifactKey(prog(n), 1, "compiled", 0, 0, "IBM Ultrastar 36Z15")
	}

	postProg(0) // cache: [0]
	postProg(1) // cache: [1 0]
	postProg(0) // hit, promotes: [0 1]
	postProg(2) // evicts 1:     [2 0]

	if got, want := s.Cache().Len(), 2; got != want {
		t.Fatalf("cache len = %d, want %d", got, want)
	}
	keys := s.Cache().Keys()
	if len(keys) != 2 || keys[0] != keyOf(2) || keys[1] != keyOf(0) {
		t.Errorf("MRU order = %v, want [key(2) key(0)]", keys)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_evictions_total"); v != 1 {
		t.Errorf("evictions = %v, want 1", v)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_entries"); v != 2 {
		t.Errorf("entries gauge = %v, want 2", v)
	}
	if v, _ := s.Metrics().Value("dpcd_compiles_total"); v != 3 {
		t.Errorf("compiles = %v, want 3", v)
	}

	// Program 1 was evicted: resubmitting recompiles (miss), evicting 0.
	rec := post(s, "/v1/compile", mustRequestJSON(t, &CompileRequest{Program: prog(1)}))
	if got := rec.Header().Get("X-DPCD-Cache"); got != string(StatusMiss) {
		t.Errorf("evicted resubmission X-DPCD-Cache = %q, want miss", got)
	}
	if v, _ := s.Metrics().Value("dpcd_compiles_total"); v != 4 {
		t.Errorf("compiles after resubmission = %v, want 4", v)
	}
	if v, _ := s.Metrics().Value("dpcd_cache_evictions_total"); v != 2 {
		t.Errorf("evictions after resubmission = %v, want 2", v)
	}
	if got := get(s, "/v1/artifacts/"+keyOf(0)); got.Code != http.StatusNotFound {
		t.Errorf("evicted artifact lookup = %d, want 404", got.Code)
	}
}
