package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"diskreuse/internal/exp"
	"diskreuse/internal/obs"
)

// CompileRequest is the body of POST /v1/compile: a DRL program plus the
// options that shape the prepared artifacts. Unknown fields are rejected.
type CompileRequest struct {
	// Program is the DRL source text. Required.
	Program string `json:"program"`
	// Name labels the program in responses and reports; defaults to
	// "request".
	Name string `json:"name,omitempty"`
	// Procs is the processor count the execution plans are prepared for;
	// 0 means 1.
	Procs int `json:"procs,omitempty"`
	// Engine selects the analysis front end: "compiled" (default) or
	// "interp".
	Engine string `json:"engine,omitempty"`
	// CachePages overrides the trace generator's page-cache size; 0 keeps
	// the default.
	CachePages int `json:"cache_pages,omitempty"`
	// ComputePerIter is the modeled CPU time per loop iteration in
	// seconds; 0 keeps the default.
	ComputePerIter float64 `json:"compute_per_iter,omitempty"`
}

// SimConfig carries the replay-only simulation overrides of a simulate
// request. These never affect the cached artifacts — only how the
// prepared trace is replayed.
type SimConfig struct {
	TPMThreshold float64 `json:"tpm_threshold,omitempty"`
	DRPMWindow   int     `json:"drpm_window,omitempty"`
	DRPMRaise    float64 `json:"drpm_raise,omitempty"`
	DRPMLower    float64 `json:"drpm_lower,omitempty"`
	RAIDWidth    int     `json:"raid_width,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	CompileRequest
	// Versions restricts which versions are simulated; empty runs every
	// version the processor count allows (plus P-TPM when Proactive).
	Versions []string `json:"versions,omitempty"`
	// Proactive adds the P-TPM extension version.
	Proactive bool `json:"proactive,omitempty"`
	// Sim carries the replay-only policy overrides.
	Sim SimConfig `json:"sim,omitempty"`
}

// ArtifactInfo describes one cached (or just-built) artifact set; it is
// the body of a compile response and of GET /v1/artifacts/{hash}.
type ArtifactInfo struct {
	// Artifact is the content-address: the hex SHA-256 ArtifactKey.
	Artifact   string         `json:"artifact"`
	Name       string         `json:"name"`
	Procs      int            `json:"procs"`
	Engine     string         `json:"engine"`
	NumDisks   int            `json:"num_disks"`
	Arrays     int            `json:"arrays"`
	Nests      int            `json:"nests"`
	DataBytes  int64          `json:"data_bytes"`
	Executions []exp.ExecInfo `json:"executions"`
}

// VersionResult is one version's measurement in a simulate response.
// NormEnergy and PerfDegradation are Base-relative and only present when
// the Base version was part of the same request.
type VersionResult struct {
	Version         string        `json:"version"`
	Policy          string        `json:"policy"`
	EnergyJ         float64       `json:"energy_j"`
	NormEnergy      float64       `json:"norm_energy,omitempty"`
	IOTimeS         float64       `json:"io_time_s"`
	ResponseS       float64       `json:"response_s"`
	PerfDegradation float64       `json:"perf_degradation,omitempty"`
	Requests        int           `json:"requests"`
	SpinUps         int           `json:"spin_ups"`
	SpeedShifts     int           `json:"speed_shifts"`
	DiskRuns        int           `json:"disk_runs"`
	Idle            obs.IdleStats `json:"idle"`
	IdleHist        []int         `json:"idle_hist,omitempty"`
}

// SimulateResponse is the body of a (non-streaming) simulate response.
// Everything in it is a deterministic function of the request, so repeat
// submissions get byte-identical bodies whether they hit or miss the
// artifact cache (cache status travels in the X-DPCD-Cache header, never
// in the body). The optional Report and ChromeTrace carry wall-clock
// timings and are only attached when requested via query flags.
type SimulateResponse struct {
	Artifact    string          `json:"artifact"`
	Name        string          `json:"name"`
	Procs       int             `json:"procs"`
	NumDisks    int             `json:"num_disks"`
	Results     []VersionResult `json:"results"`
	Report      *obs.Report     `json:"report,omitempty"`
	ChromeTrace json.RawMessage `json:"chrome_trace,omitempty"`
}

// StreamLine is one NDJSON record of a streamed simulate response. The
// stream is: one "interval" line per disk-state interval (per version, in
// the replay's deterministic disk-major order), one "result" line after
// each version, and a final "done" line.
type StreamLine struct {
	Type string `json:"type"` // "interval", "result", "done"
	// Interval fields.
	Version string  `json:"version,omitempty"`
	Disk    int     `json:"disk,omitempty"`
	FromS   float64 `json:"from_s,omitempty"`
	ToS     float64 `json:"to_s,omitempty"`
	State   string  `json:"state,omitempty"`
	RPM     int     `json:"rpm,omitempty"`
	// Result / done / error payloads.
	Result   *VersionResult `json:"result,omitempty"`
	Artifact string         `json:"artifact,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// ErrorDetail is the structured error every non-2xx response carries.
type ErrorDetail struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody wraps ErrorDetail as the full error response body.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// Error codes of the structured error model.
const (
	CodeBadRequest       = "bad_request"    // malformed JSON, unknown field, missing program
	CodeBodyTooLarge     = "body_too_large" // request body over the configured limit
	CodeCompileFailed    = "compile_failed" // DRL parse or semantic analysis error
	CodeInvalidConfig    = "invalid_config" // bad option or simulation parameter
	CodeTooManyIters     = "too_many_iters" // program exceeds the iteration budget
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
)

// apiError is an error that already knows its HTTP mapping.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errUnprocessable(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError renders err as the structured error JSON. Unclassified
// errors from the pipeline are deterministic functions of the request
// (bad programs, impossible configs), so they map to 422 — handlers never
// answer 5xx for any input.
func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = errUnprocessable(CodeInvalidConfig, "%s", err.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Status: ae.status, Code: ae.code, Message: ae.msg}})
}

// decodeRequest strictly decodes a JSON request body into dst: unknown
// fields, trailing garbage, and syntax errors are 400s; a body over the
// MaxBytesReader limit is a 413.
func decodeRequest(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBodyTooLarge,
				msg: fmt.Sprintf("request body exceeds the %d-byte limit", maxErr.Limit)}
		}
		return errBadRequest("invalid request JSON: %s", err.Error())
	}
	// Reject trailing non-whitespace so a request is exactly one JSON
	// document.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errBadRequest("request body has trailing data after the JSON document")
	}
	return nil
}

// validate normalizes a compile request and rejects bad option values.
func (cr *CompileRequest) validate() error {
	if strings.TrimSpace(cr.Program) == "" {
		return errBadRequest("request needs a non-empty \"program\" field with DRL source")
	}
	if cr.Name == "" {
		cr.Name = "request"
	}
	if cr.Procs < 0 {
		return errUnprocessable(CodeInvalidConfig, "procs %d must be >= 0 (0 selects 1)", cr.Procs)
	}
	if cr.Procs == 0 {
		cr.Procs = 1
	}
	if cr.Engine == "" {
		cr.Engine = "compiled"
	}
	if cr.CachePages < 0 {
		return errUnprocessable(CodeInvalidConfig, "cache_pages %d must be >= 0", cr.CachePages)
	}
	if cr.ComputePerIter < 0 {
		return errUnprocessable(CodeInvalidConfig, "compute_per_iter %v must be >= 0", cr.ComputePerIter)
	}
	return nil
}

// validate rejects replay-only overrides no sim.Config would accept.
func (sc *SimConfig) validate() error {
	if sc.TPMThreshold < 0 {
		return errUnprocessable(CodeInvalidConfig, "sim.tpm_threshold %v must be >= 0", sc.TPMThreshold)
	}
	if sc.DRPMWindow < 0 {
		return errUnprocessable(CodeInvalidConfig, "sim.drpm_window %d must be >= 0", sc.DRPMWindow)
	}
	if sc.DRPMRaise < 0 || sc.DRPMLower < 0 {
		return errUnprocessable(CodeInvalidConfig, "sim.drpm_raise/drpm_lower must be >= 0")
	}
	if sc.RAIDWidth < 0 {
		return errUnprocessable(CodeInvalidConfig, "sim.raid_width %d must be >= 0", sc.RAIDWidth)
	}
	return nil
}
