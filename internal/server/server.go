package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"diskreuse/internal/apps"
	"diskreuse/internal/disk"
	"diskreuse/internal/exp"
	"diskreuse/internal/interp"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
)

// Config tunes a Server. The zero value selects the documented defaults.
type Config struct {
	// CacheEntries bounds the artifact cache; 0 selects 64.
	CacheEntries int
	// MaxBodyBytes bounds request bodies; 0 selects 1 MiB.
	MaxBodyBytes int64
	// MaxIterations bounds the total loop-iteration budget of a submitted
	// program (counting every loop-level step), rejecting pathological
	// inputs before they reach the pipeline; 0 selects 1<<22.
	MaxIterations int64
	// Jobs is the per-request pipeline/simulation parallelism
	// (exp.Options.Jobs); 0 selects GOMAXPROCS.
	Jobs int
	// Metrics receives the service's counters and histograms and backs
	// the /metrics endpoint; nil creates a private registry.
	Metrics *metrics.Registry
}

func (c *Config) fill() {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1 << 22
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
}

// Server is the dpcd HTTP service. Create one with New and mount it as an
// http.Handler; it is safe for any number of concurrent requests.
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	compiles *metrics.Counter
	latency  map[string]*metrics.Histogram
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries, cfg.Metrics),
		mux:      http.NewServeMux(),
		compiles: cfg.Metrics.Counter("dpcd_compiles_total", "pipeline executions (artifact builds)"),
		latency:  make(map[string]*metrics.Histogram),
	}
	for _, ep := range []string{"compile", "simulate", "artifacts"} {
		s.latency[ep] = cfg.Metrics.Histogram("dpcd_request_seconds",
			"request latency by endpoint", metrics.DefDurationBuckets, metrics.L("endpoint", ep))
	}
	s.mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("GET /v1/artifacts/{hash}", s.instrument("artifacts", s.handleArtifact))
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Metrics.WriteExposition(w)
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Known paths with the wrong method are 405s with the structured
	// error body, not the mux's plain-text default.
	for _, p := range []string{"/v1/compile", "/v1/simulate", "/v1/artifacts/{hash}"} {
		s.mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed,
				msg: fmt.Sprintf("method %s is not allowed on %s", r.Method, r.URL.Path)})
		})
	}
	return s
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Cache returns the artifact cache (exposed for tests and tooling).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP dispatches to the service's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// instrument wraps a handler with the per-endpoint request counter,
// latency histogram, and body-size limit.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.latency[endpoint].Observe(time.Since(start).Seconds())
		s.cfg.Metrics.Counter("dpcd_requests_total", "requests by endpoint and status code",
			metrics.L("endpoint", endpoint), metrics.L("code", strconv.Itoa(sw.code))).Inc()
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the flusher underneath.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// compiled is the pre-validated form of a compile request: the engine
// parsed, the program checked, and the content-address computed.
type compiled struct {
	cr     *CompileRequest
	engine interp.Engine
	key    string
}

// admit validates a compile request and content-addresses it. The parse,
// semantic analysis, and iteration-budget check only run when the key is
// not already cached: a cached key proves the identical program bytes
// already passed them, which keeps the hit path free of front-end work.
func (s *Server) admit(cr *CompileRequest) (*compiled, error) {
	if err := cr.validate(); err != nil {
		return nil, err
	}
	eng, err := interp.ParseEngine(cr.Engine)
	if err != nil {
		return nil, errUnprocessable(CodeInvalidConfig, "%s", err.Error())
	}
	key := ArtifactKey(cr.Program, cr.Procs, eng.String(), cr.CachePages, cr.ComputePerIter, disk.Ultrastar36Z15().Name)
	c := &compiled{cr: cr, engine: eng, key: key}
	if _, ok := s.cache.Lookup(key); ok {
		return c, nil
	}
	prog, err := parser.Parse(cr.Program)
	if err != nil {
		return nil, errUnprocessable(CodeCompileFailed, "%s", err.Error())
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		return nil, errUnprocessable(CodeCompileFailed, "%s", err.Error())
	}
	if n, ok := iterationsWithin(p, s.cfg.MaxIterations); !ok {
		return nil, errUnprocessable(CodeTooManyIters,
			"program exceeds the %d-iteration budget (counted %d loop steps before giving up)", s.cfg.MaxIterations, n)
	}
	return c, nil
}

// iterationsWithin counts the program's loop steps (every iteration of
// every loop level, innermost levels in closed form) and reports whether
// the total stays within limit. It aborts as soon as the budget is
// exceeded, so a pathological bound like "for i = 0 to 10^18" is rejected
// in microseconds instead of enumerated.
func iterationsWithin(p *sema.Program, limit int64) (int64, bool) {
	var steps int64
	for _, n := range p.Nests {
		if !countSteps(0, make([]int64, n.Depth()), n.Bounds(), &steps, limit) {
			return steps, false
		}
	}
	return steps, true
}

func countSteps(level int, iv []int64, bs []sema.LoopBound, steps *int64, limit int64) bool {
	b := bs[level]
	lo, hi := b.Lo.EvalVec(iv), b.Hi.EvalVec(iv)
	if hi < lo || b.Step <= 0 {
		return true
	}
	if level == len(bs)-1 {
		*steps += (hi-lo)/b.Step + 1
		return *steps <= limit
	}
	for v := lo; v <= hi; v += b.Step {
		*steps++
		if *steps > limit {
			return false
		}
		iv[level] = v
		if !countSteps(level+1, iv, bs, steps, limit) {
			return false
		}
	}
	return true
}

// artifacts resolves a compile request through the content-addressed
// cache, running the pipeline at most once per key across all concurrent
// requests. tr (which may be nil) traces the build when this request is
// the one that runs it.
func (s *Server) artifacts(ctx context.Context, c *compiled, tr *obs.Tracer) (*exp.Artifacts, CacheStatus, error) {
	return s.cache.Get(c.key, func() (*exp.Artifacts, error) {
		s.compiles.Inc()
		a := apps.App{Name: c.cr.Name, Source: c.cr.Program, ComputePerIter: c.cr.ComputePerIter}
		opt := exp.Options{
			Procs:      c.cr.Procs,
			CachePages: c.cr.CachePages,
			Engine:     c.engine,
			Jobs:       s.cfg.Jobs,
			Tracer:     tr,
			Metrics:    s.cfg.Metrics,
		}
		return exp.PrepareApp(ctx, a, opt)
	})
}

// info summarizes artifacts as the compile / artifact-lookup body.
func (c *compiled) info(art *exp.Artifacts) *ArtifactInfo {
	p := art.Program()
	return &ArtifactInfo{
		Artifact:   c.key,
		Name:       art.App().Name,
		Procs:      c.cr.Procs,
		Engine:     c.engine.String(),
		NumDisks:   art.NumDisks(),
		Arrays:     len(p.Arrays),
		Nests:      len(p.Nests),
		DataBytes:  art.DataBytes(),
		Executions: art.Executions(),
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var cr CompileRequest
	if err := decodeRequest(r, &cr); err != nil {
		writeError(w, err)
		return
	}
	c, err := s.admit(&cr)
	if err != nil {
		writeError(w, err)
		return
	}
	art, status, err := s.artifacts(r.Context(), c, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, s.cacheHeaders(status, c.key), c.info(art))
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	art, ok := s.cache.Lookup(hash)
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, code: CodeNotFound,
			msg: fmt.Sprintf("no cached artifact %q (artifacts are evicted LRU; re-POST the program)", hash)})
		return
	}
	// Reconstruct the request-shaped metadata from the artifacts. The
	// engine and trace knobs are part of the key, not recoverable from
	// the artifacts themselves, so this view reports only what they
	// determined.
	info := &ArtifactInfo{
		Artifact:   hash,
		Name:       art.App().Name,
		NumDisks:   art.NumDisks(),
		Arrays:     len(art.Program().Arrays),
		Nests:      len(art.Program().Nests),
		DataBytes:  art.DataBytes(),
		Executions: art.Executions(),
	}
	writeResult(w, nil, info)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeRequest(r, &req); err != nil {
		writeError(w, err)
		return
	}
	// Cheap request-shape checks come before the compile front end, so a
	// bad replay parameter is reported even alongside a bad program.
	if err := req.Sim.validate(); err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	wantReport := q.Get("report") == "json"
	wantChrome := q.Get("trace") == "chrome"
	streaming := q.Get("stream") == "ndjson"
	if streaming && (wantReport || wantChrome) {
		writeError(w, errBadRequest("stream=ndjson cannot be combined with report or trace flags"))
		return
	}
	c, err := s.admit(&req.CompileRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	versions, err := resolveVersions(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	var tr *obs.Tracer
	if wantReport || wantChrome {
		tr = obs.NewTracer()
	}
	art, status, err := s.artifacts(r.Context(), c, tr)
	if err != nil {
		writeError(w, err)
		return
	}

	opt := exp.Options{
		Procs:        req.Procs,
		CachePages:   req.CachePages,
		Engine:       c.engine,
		Jobs:         s.cfg.Jobs,
		TPMThreshold: req.Sim.TPMThreshold,
		DRPMWindow:   req.Sim.DRPMWindow,
		DRPMRaise:    req.Sim.DRPMRaise,
		DRPMLower:    req.Sim.DRPMLower,
		RAIDWidth:    req.Sim.RAIDWidth,
		Proactive:    req.Proactive,
		Tracer:       tr,
		Metrics:      s.cfg.Metrics,
	}

	if streaming {
		s.streamSimulate(w, c, art, status, opt, versions)
		return
	}

	ar := exp.AppResult{App: art.App(), DataBytes: art.DataBytes()}
	for _, v := range versions {
		rr, err := art.RunVersionObserved(v, opt, exp.Observers{})
		if err != nil {
			writeError(w, err)
			return
		}
		ar.Results = append(ar.Results, rr)
	}
	exp.Normalize(&ar)

	resp := &SimulateResponse{
		Artifact: c.key,
		Name:     art.App().Name,
		Procs:    req.Procs,
		NumDisks: art.NumDisks(),
	}
	for _, rr := range ar.Results {
		resp.Results = append(resp.Results, versionResult(rr))
	}
	if wantReport {
		sr := &exp.SuiteResult{Procs: req.Procs, Apps: []exp.AppResult{ar}}
		resp.Report = exp.BuildReport(tr, sr)
	}
	if wantChrome {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err == nil {
			resp.ChromeTrace = json.RawMessage(buf.Bytes())
		}
	}
	writeResult(w, s.cacheHeaders(status, c.key), resp)
}

// streamSimulate writes the NDJSON response: per-interval lines, a result
// line per version, and a final done line. Each version's intervals are
// buffered until its replay succeeds, so a failing version yields an
// error line instead of a truncated interval stream.
func (s *Server) streamSimulate(w http.ResponseWriter, c *compiled, art *exp.Artifacts, status CacheStatus, opt exp.Options, versions []exp.Version) {
	for k, v := range s.cacheHeaders(status, c.key) {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)

	ar := exp.AppResult{App: art.App(), DataBytes: art.DataBytes()}
	var lines []StreamLine
	for _, v := range versions {
		lines = lines[:0]
		rr, err := art.RunVersionObserved(v, opt, exp.Observers{
			Record: func(iv sim.Interval) {
				lines = append(lines, StreamLine{
					Type: "interval", Version: string(v), Disk: iv.Disk,
					FromS: iv.From, ToS: iv.To, State: iv.Kind.String(), RPM: iv.RPM,
				})
			},
		})
		if err != nil {
			// Headers are already out; signal the failure in-band and
			// stop the stream.
			enc.Encode(StreamLine{Type: "error", Version: string(v), Error: err.Error()})
			return
		}
		ar.Results = append(ar.Results, rr)
		for i := range lines {
			enc.Encode(lines[i])
		}
		rc.Flush()
	}
	exp.Normalize(&ar)
	for _, rr := range ar.Results {
		vr := versionResult(rr)
		enc.Encode(StreamLine{Type: "result", Version: vr.Version, Result: &vr})
	}
	enc.Encode(StreamLine{Type: "done", Artifact: c.key})
	rc.Flush()
}

// resolveVersions maps the request's version names to the evaluated set,
// defaulting to every version the processor count allows.
func resolveVersions(req *SimulateRequest) ([]exp.Version, error) {
	allowed := exp.VersionsFor(req.Procs)
	if req.Proactive {
		allowed = append(allowed, exp.VPTPM)
	}
	if len(req.Versions) == 0 {
		return allowed, nil
	}
	in := make(map[exp.Version]bool, len(req.Versions))
	for _, name := range req.Versions {
		v := exp.Version(name)
		ok := false
		for _, a := range allowed {
			if v == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, errUnprocessable(CodeInvalidConfig,
				"unknown version %q for procs=%d (allowed: %v)", name, req.Procs, allowed)
		}
		in[v] = true
	}
	// Keep report order regardless of request order, and drop duplicates,
	// so equivalent requests produce identical bodies.
	var out []exp.Version
	for _, v := range allowed {
		if in[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// versionResult converts a RunResult to its response form.
func versionResult(rr exp.RunResult) VersionResult {
	return VersionResult{
		Version:         string(rr.Version),
		Policy:          exp.PolicyOf(rr.Version).String(),
		EnergyJ:         rr.Energy,
		NormEnergy:      rr.NormEnergy,
		IOTimeS:         rr.IOTime,
		ResponseS:       rr.Response,
		PerfDegradation: rr.PerfDegradation,
		Requests:        rr.Requests,
		SpinUps:         rr.SpinUps,
		SpeedShifts:     rr.SpeedShifts,
		DiskRuns:        rr.DiskRuns,
		Idle: obs.IdleStats{
			Periods:      rr.IdlePeriods,
			TotalIdleS:   rr.TotalIdle,
			MeanIdleS:    rr.MeanIdle,
			LongestIdleS: rr.LongestIdle,
		},
		IdleHist: obs.TrimHist(rr.IdleHist),
	}
}

// cacheHeaders names the cache outcome and content-address of a request.
// They live in headers, not the body, so result bodies stay byte-identical
// across hits, misses, and deduplicated builds.
func (s *Server) cacheHeaders(status CacheStatus, key string) map[string]string {
	return map[string]string{
		"X-DPCD-Cache":    string(status),
		"X-DPCD-Artifact": key,
	}
}

// writeResult renders a 200 JSON response with deterministic encoding.
func writeResult(w http.ResponseWriter, headers map[string]string, body any) {
	for k, v := range headers {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(body)
}
