package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"diskreuse/internal/apps"
)

// benchRequest builds a Small-scale simulate request; varying salt (the
// modeled per-iteration compute time) perturbs the content-address
// without meaningfully changing the work, which is how the cold path
// defeats the cache below.
func benchRequest(t testing.TB, salt int) string {
	t.Helper()
	a, err := apps.ByName("Cholesky", apps.Small)
	if err != nil {
		t.Fatal(err)
	}
	cpi := a.ComputePerIter * (1 + float64(salt)*1e-12)
	return fmt.Sprintf(`{"program":%q,"compute_per_iter":%g,"versions":["Base"]}`, a.Source, cpi)
}

func mustSimulate(t testing.TB, s *Server, body string) {
	t.Helper()
	rec := post(s, "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", rec.Code, rec.Body)
	}
}

// BenchmarkServerCacheHit measures the repeat-submission path: identical
// request, artifacts served from the cache, only the Base replay and the
// JSON round trip remain.
func BenchmarkServerCacheHit(b *testing.B) {
	s := New(Config{})
	body := benchRequest(b, 0)
	mustSimulate(b, s, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustSimulate(b, s, body)
	}
}

// BenchmarkServerCacheMiss measures the cold path: every request has a
// fresh content-address, so the full parse → sema → restructure → trace
// pipeline runs each iteration.
func BenchmarkServerCacheMiss(b *testing.B) {
	s := New(Config{CacheEntries: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustSimulate(b, s, benchRequest(b, i+1))
	}
}

// TestServerCacheHitFaster is the acceptance pin behind the benchmarks: a
// cache hit must answer at least 10x faster than a cold compile of the
// same Small-scale request. Min-of-K timing keeps scheduler noise out.
func TestServerCacheHitFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	s := New(Config{})
	warm := benchRequest(t, 0)
	mustSimulate(t, s, warm) // populate the cache

	const kHit, kCold = 20, 3
	hit := time.Duration(1<<62 - 1)
	for i := 0; i < kHit; i++ {
		start := time.Now()
		mustSimulate(t, s, warm)
		if d := time.Since(start); d < hit {
			hit = d
		}
	}
	cold := time.Duration(1<<62 - 1)
	for i := 0; i < kCold; i++ {
		start := time.Now()
		mustSimulate(t, s, benchRequest(t, i+1))
		if d := time.Since(start); d < cold {
			cold = d
		}
	}
	t.Logf("cache hit %v vs cold %v (%.1fx)", hit, cold, float64(cold)/float64(hit))
	if hit*10 > cold {
		t.Errorf("cache hit %v is not >=10x faster than cold %v", hit, cold)
	}
}
