//go:build race

package server

// raceEnabled reports whether this test binary was built with -race;
// timing-assertion tests skip themselves under the detector's overhead.
const raceEnabled = true
