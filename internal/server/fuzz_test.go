package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzServer is shared across fuzz iterations so the cache and in-flight
// paths get exercised by repeated inputs; the tight iteration budget
// keeps pathological-but-valid programs from stalling the fuzzer.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Config{
		CacheEntries:  8,
		MaxBodyBytes:  1 << 16,
		MaxIterations: 20000,
		Jobs:          1,
	})
})

// FuzzServerRequest throws arbitrary bytes at the JSON request decoder
// and, through it, the DRL front end: whatever the body, the server must
// answer 200 or a structured 4xx — never a 5xx, never a panic. Seeds
// cover the valid request shapes, every decode error class, and the DRL
// fragments of the parser's FuzzParse corpus wrapped in request JSON.
func FuzzServerRequest(f *testing.F) {
	validTiny := `array A[16] elem 4096 stripe(unit=32K, factor=8, start=0)
nest N { for i = 0 to 15 { A[i] = A[i]; } }
`
	f.Add([]byte(fmt.Sprintf(`{"program":%q}`, validTiny)))
	f.Add([]byte(fmt.Sprintf(`{"program":%q,"procs":2,"versions":["Base","T-TPM-m"],"sim":{"tpm_threshold":2.5}}`, validTiny)))
	f.Add([]byte(fmt.Sprintf(`{"program":%q,"engine":"interp","proactive":true}`, validTiny)))
	f.Add([]byte(`{"program":`))
	f.Add([]byte(`{"program":"x","bogus":1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"program":"nest ("}`))
	f.Add([]byte(`{"program":"array A[4] elem 4096\nnest N { for i = 0 to 99999999 { A[0] = A[0]; } }"}`))
	// DRL bodies from the FuzzParse seed corpus, wrapped as requests.
	for _, drl := range []string{
		"array A[2][3] elem 512 stripe(unit=8K, factor=3, start=1)\nnest N { for i = 0 to 1 { A[i][0] = A[i][0]; } }",
		"for i = 0 to { }",
		"array A[1] elem 4096\nnest N { for i = 0 to -1 { A[i] = A[i]; } }",
		"param P = 4\narray A[P] elem 4096\nnest N { for i = 0 to P-1 { A[i] = A[i]; } }",
	} {
		f.Add([]byte(fmt.Sprintf(`{"program":%q}`, drl)))
		f.Add([]byte(drl)) // raw DRL is not JSON: must be a clean 400
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzServer()
		for _, path := range []string{"/v1/simulate", "/v1/compile"} {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("%s answered %d for body %q", path, rec.Code, body)
			}
			if rec.Code != http.StatusOK {
				var eb ErrorBody
				if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
					t.Fatalf("%s: %d response is not structured error JSON: %v (%s)", path, rec.Code, err, rec.Body)
				}
				if eb.Error.Status != rec.Code || eb.Error.Code == "" || eb.Error.Message == "" {
					t.Fatalf("%s: malformed error detail %+v for status %d", path, eb.Error, rec.Code)
				}
			}
		}
	})
}
