package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"diskreuse/internal/disk"
	"diskreuse/internal/obs"
	"diskreuse/internal/sema"
)

// Table1 renders the default simulation parameters in the layout of the
// paper's Table 1.
func Table1(m disk.Model, stripe sema.Options) string {
	def := stripe.DefaultStripe
	if def.Unit == 0 {
		def = sema.DefaultStripe
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Parameter\tValue")
	rows := []struct {
		k, v string
	}{
		{"Disk Model", m.Name},
		{"RPM", fmt.Sprintf("%d", m.RPMMax)},
		{"Average Seek Time", fmt.Sprintf("%.1f ms", m.AvgSeek*1e3)},
		{"Average Rotation Time", fmt.Sprintf("%.0f ms", m.AvgRotation*1e3)},
		{"Internal Transfer Rate", fmt.Sprintf("%.0f MB/sec", m.TransferRate/1e6)},
		{"Power (active)", fmt.Sprintf("%.1f W", m.PowerActive)},
		{"Power (idle)", fmt.Sprintf("%.1f W", m.PowerIdle)},
		{"Power (standby)", fmt.Sprintf("%.1f W", m.PowerStandby)},
		{"Energy (spin down: idle -> standby)", fmt.Sprintf("%.0f J", m.SpinDownEnergy)},
		{"Time (spin down: idle -> standby)", fmt.Sprintf("%.1f sec", m.SpinDownTime)},
		{"Energy (spin up: standby -> active)", fmt.Sprintf("%.0f J", m.SpinUpEnergy)},
		{"Time (spin up: standby -> active)", fmt.Sprintf("%.1f sec", m.SpinUpTime)},
		{"TPM Break-even Threshold", fmt.Sprintf("%.1f sec", m.BreakEven)},
		{"Maximum RPM Level", fmt.Sprintf("%d RPM", m.RPMMax)},
		{"Minimum RPM Level", fmt.Sprintf("%d RPM", m.RPMMin)},
		{"RPM Step-Size", fmt.Sprintf("%d RPM", m.RPMStep)},
		{"Window Size", "100"},
		{"Stripe unit (stripe size)", fmt.Sprintf("%d KB", def.Unit>>10)},
		{"Stripe factor (number of disks)", fmt.Sprintf("%d", def.Factor)},
		{"Starting iodevice (starting disk)", fmt.Sprintf("%d (the first disk)", def.Start)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\n", r.k, r.v)
	}
	w.Flush()
	return b.String()
}

// Table2 renders the application characteristics table (paper Table 2):
// name, description, data size, request count, and the Base version's
// absolute energy and disk I/O time, which all other numbers are
// normalized against.
func Table2(sr *SuiteResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Name\tDescription\tData Size (MB)\tNumber of Disk Reqs\tBase Energy (J)\tI/O Time (ms)")
	for i := range sr.Apps {
		ar := &sr.Apps[i]
		base, ok := ar.Get(VBase)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%d\t%.1f\t%.1f\n",
			ar.App.Name, ar.App.Description,
			float64(ar.DataBytes)/(1<<20),
			base.Requests, base.Energy, base.IOTime*1e3)
	}
	w.Flush()
	return b.String()
}

// figure renders one of the paper's bar charts as a table: one row per
// application, one column per version, plus the suite average.
func figure(sr *SuiteResult, title string, value func(RunResult) float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	versions := VersionsFor(sr.Procs)
	fmt.Fprint(w, "App")
	for _, v := range versions {
		fmt.Fprintf(w, "\t%s", v)
	}
	fmt.Fprintln(w)
	sums := make([]float64, len(versions))
	for i := range sr.Apps {
		ar := &sr.Apps[i]
		fmt.Fprint(w, ar.App.Name)
		for j, v := range versions {
			r, ok := ar.Get(v)
			if !ok {
				fmt.Fprint(w, "\t-")
				continue
			}
			val := value(r)
			sums[j] += val
			fmt.Fprintf(w, "\t%.3f", val)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "AVG")
	for j := range versions {
		fmt.Fprintf(w, "\t%.3f", sums[j]/float64(len(sr.Apps)))
	}
	fmt.Fprintln(w)
	w.Flush()
	return b.String()
}

// Figure9 renders the normalized energy consumption results — Fig. 9(a)
// for a single-processor SuiteResult, Fig. 9(b) for a multiprocessor one.
func Figure9(sr *SuiteResult) string {
	sub := "(a) single processor"
	if sr.Procs > 1 {
		sub = fmt.Sprintf("(b) %d processors", sr.Procs)
	}
	return figure(sr, "Figure 9"+sub+": normalized disk energy (Base = 1.0)",
		func(r RunResult) float64 { return r.NormEnergy })
}

// Figure10 renders the performance (disk I/O time) degradation results —
// Fig. 10(a) for a single-processor SuiteResult, Fig. 10(b) for a
// multiprocessor one. Values are fractions over Base (0.05 = 5% slower).
func Figure10(sr *SuiteResult) string {
	sub := "(a) single processor"
	if sr.Procs > 1 {
		sub = fmt.Sprintf("(b) %d processors", sr.Procs)
	}
	return figure(sr, "Figure 10"+sub+": disk I/O time degradation over Base",
		func(r RunResult) float64 { return r.PerfDegradation })
}

// Summary renders the per-version suite averages in the style of the
// paper's abstract (average energy saving and performance degradation).
func Summary(sr *SuiteResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Version\tAvg energy saving\tAvg I/O time degradation\n")
	for _, v := range VersionsFor(sr.Procs) {
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\n", v,
			100*sr.AverageSaving(v), 100*sr.AverageDegradation(v))
	}
	w.Flush()
	return b.String()
}

// SuiteJSON is the machine-readable mirror of one suite run: the
// per-version suite averages behind Summary plus the per-(app, version)
// normalized metrics behind Figures 9 and 10. It is the record format of
// the BENCH_suite.json perf-trajectory file that cmd/dpcbench -json
// writes.
type SuiteJSON struct {
	Procs    int           `json:"procs"`
	Versions []VersionJSON `json:"versions"`
	Apps     []AppJSON     `json:"apps"`
}

// VersionJSON holds one version's suite-average metrics.
type VersionJSON struct {
	Version         string  `json:"version"`
	AvgEnergySaving float64 `json:"avg_energy_saving"`
	AvgDegradation  float64 `json:"avg_perf_degradation"`
}

// AppJSON holds one application's per-version results.
type AppJSON struct {
	App       string       `json:"app"`
	DataBytes int64        `json:"data_bytes"`
	Results   []ResultJSON `json:"results"`
}

// ResultJSON is one (app, version) measurement.
type ResultJSON struct {
	Version         string  `json:"version"`
	EnergyJ         float64 `json:"energy_j"`
	NormEnergy      float64 `json:"norm_energy"`
	IOTimeS         float64 `json:"io_time_s"`
	PerfDegradation float64 `json:"perf_degradation"`
	ResponseS       float64 `json:"response_s"`
	Requests        int     `json:"requests"`
	SpinUps         int     `json:"spin_ups"`
	SpeedShifts     int     `json:"speed_shifts"`
	IdlePeriods     int     `json:"idle_periods,omitempty"`
	MeanIdleS       float64 `json:"mean_idle_s,omitempty"`
	LongestIdleS    float64 `json:"longest_idle_s,omitempty"`
}

// ToJSON converts a suite result to its machine-readable form.
func ToJSON(sr *SuiteResult) SuiteJSON {
	out := SuiteJSON{Procs: sr.Procs}
	for _, v := range VersionsFor(sr.Procs) {
		out.Versions = append(out.Versions, VersionJSON{
			Version:         string(v),
			AvgEnergySaving: sr.AverageSaving(v),
			AvgDegradation:  sr.AverageDegradation(v),
		})
	}
	for i := range sr.Apps {
		ar := &sr.Apps[i]
		aj := AppJSON{App: ar.App.Name, DataBytes: ar.DataBytes}
		for _, r := range ar.Results {
			aj.Results = append(aj.Results, ResultJSON{
				Version:         string(r.Version),
				EnergyJ:         r.Energy,
				NormEnergy:      r.NormEnergy,
				IOTimeS:         r.IOTime,
				PerfDegradation: r.PerfDegradation,
				ResponseS:       r.Response,
				Requests:        r.Requests,
				SpinUps:         r.SpinUps,
				SpeedShifts:     r.SpeedShifts,
				IdlePeriods:     r.IdlePeriods,
				MeanIdleS:       r.MeanIdle,
				LongestIdleS:    r.LongestIdle,
			})
		}
		out.Apps = append(out.Apps, aj)
	}
	return out
}

// WriteJSON emits one or more suite results (e.g. the 1-processor and
// 4-processor grids) as an indented JSON array of SuiteJSON records.
func WriteJSON(w io.Writer, suites ...*SuiteResult) error {
	out := make([]SuiteJSON, 0, len(suites))
	for _, sr := range suites {
		if sr == nil {
			continue
		}
		out = append(out, ToJSON(sr))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the suite's results in long form — app, version, procs,
// energy, normalized energy, I/O time, degradation, requests — for
// plotting tools.
func WriteCSV(w io.Writer, sr *SuiteResult) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "version", "procs", "energy_j", "norm_energy",
		"io_time_s", "perf_degradation", "response_s", "requests", "spin_ups", "speed_shifts",
		"idle_periods", "mean_idle_s", "longest_idle_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range sr.Apps {
		ar := &sr.Apps[i]
		for _, r := range ar.Results {
			rec := []string{
				r.App,
				string(r.Version),
				strconv.Itoa(r.Procs),
				strconv.FormatFloat(r.Energy, 'f', 3, 64),
				strconv.FormatFloat(r.NormEnergy, 'f', 6, 64),
				strconv.FormatFloat(r.IOTime, 'f', 6, 64),
				strconv.FormatFloat(r.PerfDegradation, 'f', 6, 64),
				strconv.FormatFloat(r.Response, 'f', 6, 64),
				strconv.Itoa(r.Requests),
				strconv.Itoa(r.SpinUps),
				strconv.Itoa(r.SpeedShifts),
				strconv.Itoa(r.IdlePeriods),
				strconv.FormatFloat(r.MeanIdle, 'f', 6, 64),
				strconv.FormatFloat(r.LongestIdle, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// BuildReport assembles the observability report for one or more suite
// runs: the per-app × per-version energy/degradation/idle-locality rows,
// plus — when tr is non-nil — the aggregated pipeline stage timings,
// worker-pool occupancy, and counters recorded during the runs. The row
// content is deterministic; only the timing fields vary run to run (zero
// them with Report.ZeroTimings for golden comparisons).
func BuildReport(tr *obs.Tracer, suites ...*SuiteResult) *obs.Report {
	rep := &obs.Report{}
	for _, sr := range suites {
		if sr == nil {
			continue
		}
		s := obs.SuiteReport{Procs: sr.Procs}
		for i := range sr.Apps {
			for _, r := range sr.Apps[i].Results {
				s.Rows = append(s.Rows, obs.Row{
					App:             r.App,
					Version:         string(r.Version),
					EnergyJ:         r.Energy,
					NormEnergy:      r.NormEnergy,
					IOTimeS:         r.IOTime,
					PerfDegradation: r.PerfDegradation,
					Requests:        r.Requests,
					SpinUps:         r.SpinUps,
					SpeedShifts:     r.SpeedShifts,
					Idle: obs.IdleStats{
						Periods:      r.IdlePeriods,
						TotalIdleS:   r.TotalIdle,
						MeanIdleS:    r.MeanIdle,
						LongestIdleS: r.LongestIdle,
					},
					IdleHist: obs.TrimHist(r.IdleHist),
				})
			}
		}
		rep.Suites = append(rep.Suites, s)
	}
	if tr != nil {
		rep.Stages = tr.Totals()
		ps := tr.Pool().Snapshot()
		rep.Pool = &ps
		rep.Counters = tr.Counters()
	}
	return rep
}
