package exp

import (
	"encoding/csv"
	"math"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/disk"
	"diskreuse/internal/metrics"
	"diskreuse/internal/sema"
)

func TestRunAppTiny(t *testing.T) {
	a, err := apps.ByName("AST", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4} {
		ar, err := RunApp(a, Options{Size: apps.Tiny, Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		want := VersionsFor(procs)
		if len(ar.Results) != len(want) {
			t.Fatalf("procs=%d: %d results, want %d", procs, len(ar.Results), len(want))
		}
		base, ok := ar.Get(VBase)
		if !ok {
			t.Fatal("no Base result")
		}
		if math.Abs(base.NormEnergy-1) > 1e-12 || base.PerfDegradation != 0 {
			t.Errorf("Base must normalize to 1.0/0.0, got %v/%v", base.NormEnergy, base.PerfDegradation)
		}
		for _, r := range ar.Results {
			if math.IsNaN(r.Energy) || r.Energy <= 0 {
				t.Errorf("%s: bad energy %v", r.Version, r.Energy)
			}
			if r.Requests <= 0 {
				t.Errorf("%s: no requests", r.Version)
			}
			if r.Procs != procs {
				t.Errorf("%s: procs = %d", r.Version, r.Procs)
			}
		}
		// Request counts depend only on the processor assignment, not on
		// iteration order: the loop-parallelized versions (Base, TPM,
		// DRPM, T-*-s) all match, as do the two layout-aware versions.
		for _, r := range ar.Results {
			switch r.Version {
			case VTTPMm, VTDRPMm:
			default:
				if r.Requests != base.Requests {
					t.Errorf("%s: requests %d != base %d", r.Version, r.Requests, base.Requests)
				}
			}
		}
		if m1, ok1 := ar.Get(VTTPMm); ok1 {
			if m2, ok2 := ar.Get(VTDRPMm); ok2 && m1.Requests != m2.Requests {
				t.Errorf("T-TPM-m requests %d != T-DRPM-m %d", m1.Requests, m2.Requests)
			}
		}
	}
}

func TestVersionsFor(t *testing.T) {
	if got := VersionsFor(1); len(got) != 5 {
		t.Errorf("1P versions = %v", got)
	}
	got := VersionsFor(4)
	if len(got) != 7 || got[5] != VTTPMm || got[6] != VTDRPMm {
		t.Errorf("4P versions = %v", got)
	}
}

func TestRunSuiteTinyAndReports(t *testing.T) {
	sr, err := RunSuite(Options{Size: apps.Tiny, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Apps) != 6 {
		t.Fatalf("apps = %d", len(sr.Apps))
	}
	t1 := Table1(disk.Ultrastar36Z15(), sema.Options{})
	for _, want := range []string{"IBM Ultrastar 36Z15", "15.2 sec", "32 KB", "13.5 W", "Window Size"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2(sr)
	for _, want := range []string{"AST", "RSense", "Base Energy (J)", "Number of Disk Reqs"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	f9 := Figure9(sr)
	if !strings.Contains(f9, "Figure 9(b) 2 processors") || !strings.Contains(f9, "T-DRPM-m") || !strings.Contains(f9, "AVG") {
		t.Errorf("Figure9:\n%s", f9)
	}
	f10 := Figure10(sr)
	if !strings.Contains(f10, "Figure 10(b)") || !strings.Contains(f10, "Cholesky") {
		t.Errorf("Figure10:\n%s", f10)
	}
	sum := Summary(sr)
	if !strings.Contains(sum, "Avg energy saving") || !strings.Contains(sum, "T-TPM-s") {
		t.Errorf("Summary:\n%s", sum)
	}

	one, err := RunSuite(Options{Size: apps.Tiny, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Figure9(one), "Figure 9(a) single processor") {
		t.Error("Figure9 1P title wrong")
	}
}

// Default-scale suite results are expensive; compute them once for all
// shape tests.
var (
	defaultOnce sync.Once
	default1P   *SuiteResult
	default4P   *SuiteResult
	defaultErr  error
)

func defaultSuites(t *testing.T) (*SuiteResult, *SuiteResult) {
	t.Helper()
	if testing.Short() {
		t.Skip("default-scale shape test skipped in -short mode")
	}
	defaultOnce.Do(func() {
		default1P, defaultErr = RunSuite(Options{Size: apps.Default, Procs: 1})
		if defaultErr != nil {
			return
		}
		default4P, defaultErr = RunSuite(Options{Size: apps.Default, Procs: 4})
	})
	if defaultErr != nil {
		t.Fatal(defaultErr)
	}
	return default1P, default4P
}

// TestShapeSingleProcessor verifies the qualitative single-processor
// results of §7.2 / Fig. 9(a) & 10(a):
//
//   - TPM alone saves almost nothing (idle times below break-even);
//   - DRPM alone does better;
//   - code restructuring amplifies both (T-TPM-s ≫ TPM, T-DRPM-s > DRPM);
//   - T-DRPM-s is the overall winner;
//   - performance: TPM costs ~nothing, restructuring reduces DRPM's cost.
func TestShapeSingleProcessor(t *testing.T) {
	one, _ := defaultSuites(t)
	s := func(v Version) float64 { return one.AverageSaving(v) }
	p := func(v Version) float64 { return one.AverageDegradation(v) }

	if s(VTPM) > 0.15 {
		t.Errorf("TPM alone should save little, got %.1f%%", 100*s(VTPM))
	}
	if s(VDRPM) <= s(VTPM) {
		t.Errorf("DRPM (%.1f%%) should beat TPM (%.1f%%)", 100*s(VDRPM), 100*s(VTPM))
	}
	if s(VTTPMs) <= s(VTPM)+0.05 {
		t.Errorf("T-TPM-s (%.1f%%) should clearly beat TPM (%.1f%%)", 100*s(VTTPMs), 100*s(VTPM))
	}
	if s(VTDRPMs) <= s(VDRPM) {
		t.Errorf("T-DRPM-s (%.1f%%) should beat DRPM (%.1f%%)", 100*s(VTDRPMs), 100*s(VDRPM))
	}
	for _, v := range []Version{VTPM, VDRPM, VTTPMs} {
		if s(VTDRPMs) < s(v) {
			t.Errorf("T-DRPM-s (%.1f%%) should be the best; %s has %.1f%%",
				100*s(VTDRPMs), v, 100*s(v))
		}
	}
	if p(VTPM) > 0.01 {
		t.Errorf("TPM perf cost should be ~0, got %.1f%%", 100*p(VTPM))
	}
	if p(VTDRPMs) >= p(VDRPM) {
		t.Errorf("restructuring should reduce DRPM's perf cost: %.1f%% vs %.1f%%",
			100*p(VTDRPMs), 100*p(VDRPM))
	}
}

// TestShapeMultiProcessor verifies the qualitative 4-processor results of
// §7.2 / Fig. 9(b) & 10(b): interleaving from multiple processors erodes
// the single-processor transformations, and the disk-layout-aware
// multiprocessor versions recover the savings.
func TestShapeMultiProcessor(t *testing.T) {
	one, four := defaultSuites(t)
	s1 := func(v Version) float64 { return one.AverageSaving(v) }
	s4 := func(v Version) float64 { return four.AverageSaving(v) }

	// Single-CPU restructuring loses effectiveness under interleaving.
	if s4(VTTPMs) >= s1(VTTPMs) {
		t.Errorf("T-TPM-s should degrade from 1P (%.1f%%) to 4P (%.1f%%)",
			100*s1(VTTPMs), 100*s4(VTTPMs))
	}
	if s4(VTDRPMs) >= s1(VTDRPMs) {
		t.Errorf("T-DRPM-s should degrade from 1P (%.1f%%) to 4P (%.1f%%)",
			100*s1(VTDRPMs), 100*s4(VTDRPMs))
	}
	// The layout-aware versions bring significant benefits over the
	// single-CPU transformations (the paper's headline multiprocessor
	// conclusion). Allow a small tolerance on the DRPM pair, where both
	// are strong.
	if s4(VTTPMm) <= s4(VTTPMs) {
		t.Errorf("T-TPM-m (%.1f%%) should beat T-TPM-s (%.1f%%) at 4P",
			100*s4(VTTPMm), 100*s4(VTTPMs))
	}
	if s4(VTDRPMm) < s4(VTDRPMs)-0.02 {
		t.Errorf("T-DRPM-m (%.1f%%) should match or beat T-DRPM-s (%.1f%%) at 4P",
			100*s4(VTDRPMm), 100*s4(VTDRPMs))
	}
	// Every transformed version still beats doing nothing.
	for _, v := range []Version{VTTPMm, VTDRPMm} {
		if s4(v) <= 0 {
			t.Errorf("%s should save energy at 4P, got %.1f%%", v, 100*s4(v))
		}
	}
}

// TestParallelDeterminism is the determinism regression test for the
// concurrent harness: RunSuite fanned out over 8 workers must produce a
// SuiteResult deep-equal — bit-identical floats included — to the fully
// serial Jobs=1 run, for both single- and multi-processor grids. The
// fan-out only shares read-only memoized artifacts and writes results into
// fixed (app, version) slots, so any divergence here means shared mutable
// state leaked into the pipeline.
func TestParallelDeterminism(t *testing.T) {
	for _, procs := range []int{1, 4} {
		serial, err := RunSuite(Options{Size: apps.Tiny, Procs: procs, Jobs: 1})
		if err != nil {
			t.Fatalf("procs=%d serial: %v", procs, err)
		}
		parallel, err := RunSuite(Options{Size: apps.Tiny, Procs: procs, Jobs: 8})
		if err != nil {
			t.Fatalf("procs=%d parallel: %v", procs, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("procs=%d: parallel result differs from serial", procs)
			for i := range serial.Apps {
				for j := range serial.Apps[i].Results {
					s, p := serial.Apps[i].Results[j], parallel.Apps[i].Results[j]
					if s != p {
						t.Logf("  %s/%s: serial %+v != parallel %+v", s.App, s.Version, s, p)
					}
				}
			}
		}
	}
}

// RunApp's per-version fan-out must be deterministic too, including the
// P-TPM extension (whose hints derive from the shared trace).
func TestRunAppParallelDeterminism(t *testing.T) {
	a, err := apps.ByName("FFT", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Size: apps.Tiny, Procs: 4, Proactive: true}
	opt.Jobs = 1
	serial, err := RunApp(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 8
	parallel, err := RunApp(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("RunApp parallel result differs from serial:\n%+v\n%+v", serial, parallel)
	}
}

func TestAveragesEmptyVersion(t *testing.T) {
	sr := &SuiteResult{Procs: 1}
	if sr.AverageSaving(VBase) != 0 || sr.AverageDegradation(VBase) != 0 {
		t.Error("empty suite averages must be zero")
	}
}

// The P-TPM extension (proactive spin-up hints over the restructured
// schedule) must never do worse than reactive T-TPM on energy, and must
// reduce the summed response time when any spin-ups happen.
func TestProactiveExtension(t *testing.T) {
	a, err := apps.ByName("RSense", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RunApp(a, Options{Size: apps.Tiny, Procs: 1, Proactive: true})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := ar.Get(VPTPM)
	if !ok {
		t.Fatal("no P-TPM result")
	}
	reactive, ok := ar.Get(VTTPMs)
	if !ok {
		t.Fatal("no T-TPM-s result")
	}
	if p.Energy > reactive.Energy*1.0001 {
		t.Errorf("P-TPM energy %v should not exceed T-TPM-s %v", p.Energy, reactive.Energy)
	}
	// Without Proactive the extra version is absent.
	ar2, err := RunApp(a, Options{Size: apps.Tiny, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ar2.Get(VPTPM); ok {
		t.Error("P-TPM should only appear with Options.Proactive")
	}
}

func TestWriteCSV(t *testing.T) {
	sr, err := RunSuite(Options{Size: apps.Tiny, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, sr); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(strings.NewReader(b.String()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 6 apps × 7 versions
	if len(recs) != 1+6*7 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "app" || recs[0][4] != "norm_energy" {
		t.Errorf("header = %v", recs[0])
	}
	for _, rec := range recs[1:] {
		if _, err := strconv.ParseFloat(rec[3], 64); err != nil {
			t.Fatalf("bad energy field %q", rec[3])
		}
	}
}

// A metrics-enabled suite run publishes harness progress that reconciles
// with the suite shape, and the results stay bit-identical to a
// metrics-free run.
func TestSuiteMetrics(t *testing.T) {
	plain, err := RunSuite(Options{Size: apps.Tiny, Procs: 2, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	live, err := RunSuite(Options{Size: apps.Tiny, Procs: 2, Jobs: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, live) {
		t.Error("suite result differs with metrics enabled")
	}
	nApps := len(live.Apps)
	if v, _ := reg.Value("exp_apps_prepared_total"); v != float64(nApps) {
		t.Errorf("apps-prepared counter = %v, want %d", v, nApps)
	}
	var cells, wantReqs float64
	for i := range live.Apps {
		v, _ := reg.Value("exp_versions_simulated_total", metrics.L("app", live.Apps[i].App.Name))
		cells += v
		if v != float64(len(live.Apps[i].Results)) {
			t.Errorf("%s: versions counter = %v, want %d", live.Apps[i].App.Name, v, len(live.Apps[i].Results))
		}
		for j := range live.Apps[i].Results {
			wantReqs += float64(live.Apps[i].Results[j].Requests)
		}
	}
	// The simulator's live series rode along on the same registry.
	if v, _ := reg.Value(metrics.SimRequestsReplayed); v != wantReqs {
		t.Errorf("sim requests counter = %v, want %v", v, wantReqs)
	}
	if v, _ := reg.Value("conc_pool_tasks_total"); v == 0 {
		t.Error("pool task counter never moved")
	}
}
