package exp

import (
	"context"

	"diskreuse/internal/conc"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker pool of
// at most jobs goroutines. It is the fan-out primitive under RunSuite and
// RunApp: callers own the output ordering by writing results into slot i of
// a preallocated slice, so the completion order of workers never shows in
// the result.
//
// The pool itself lives in internal/conc so the compilation front-end
// (interp, core) can share it without importing the experiment harness;
// ForEach is kept as a delegating alias for exp's own callers and tests.
// See conc.ForEach for the jobs semantics (0 = GOMAXPROCS, 1 = inline
// serial) and the error/cancellation contract.
func ForEach(ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) error) error {
	return conc.ForEach(ctx, n, jobs, fn)
}
