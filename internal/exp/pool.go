package exp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker pool of
// at most jobs goroutines. It is the fan-out primitive under RunSuite and
// RunApp: callers own the output ordering by writing results into slot i of
// a preallocated slice, so the completion order of workers never shows in
// the result.
//
// jobs <= 0 selects runtime.GOMAXPROCS(0). jobs == 1 runs every call inline
// on the calling goroutine in index order — the fully serial reference
// path, with no goroutines involved.
//
// The first error cancels the pool: the context passed to fn is canceled,
// no new indices are dispatched, and ForEach returns that error after all
// in-flight calls finish. If the parent context is canceled, ForEach
// returns its error.
func ForEach(ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
