package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTinyReport runs the tiny 2-processor suite under a tracer and
// returns its report with the wall-clock fields zeroed — the deterministic
// form golden tests compare.
func buildTinyReport(t *testing.T, jobs int) *obs.Report {
	t.Helper()
	tr := obs.NewTracer()
	sr, err := RunSuite(Options{Size: apps.Tiny, Procs: 2, Jobs: jobs, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(tr, sr)
	rep.ZeroTimings()
	return rep
}

// TestReportGolden pins the obs.Report JSON schema: the zeroed-timings
// report of the tiny suite must match testdata/report_tiny.golden.json
// byte for byte (regenerate with go test ./internal/exp -run ReportGolden
// -update), and must be identical whether the suite ran serially or fanned
// out over 8 workers.
func TestReportGolden(t *testing.T) {
	rep := buildTinyReport(t, 1)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_tiny.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Content determinism across worker counts: with timings zeroed the
	// parallel run's report is byte-identical.
	par := buildTinyReport(t, 8)
	var parBuf bytes.Buffer
	if err := par.WriteJSON(&parBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parBuf.Bytes(), want) {
		t.Errorf("jobs=8 report differs from the serial golden:\n%s", parBuf.Bytes())
	}
}

// TestToJSONRoundTrip: the SuiteJSON form must survive a marshal/unmarshal
// cycle unchanged, including the idle-locality fields threaded from the
// simulator telemetry.
func TestToJSONRoundTrip(t *testing.T) {
	sr, err := RunSuite(Options{Size: apps.Tiny, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sr); err != nil {
		t.Fatal(err)
	}
	var back []SuiteJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("suites = %d", len(back))
	}
	if want := ToJSON(sr); !reflect.DeepEqual(back[0], want) {
		t.Errorf("round trip drifted:\n%+v\nvs\n%+v", back[0], want)
	}
	for _, a := range back[0].Apps {
		for _, r := range a.Results {
			if r.IdlePeriods <= 0 || r.LongestIdleS <= 0 {
				t.Errorf("%s/%s: idle telemetry empty: %+v", a.App, r.Version, r)
			}
		}
	}
}

// TestSharedTracerUnderFanOut drives one Tracer from the full 8-worker
// suite fan-out — under -race this is the thread-safety assertion for the
// span, counter, and pool paths — and then checks every pipeline stage
// registered spans.
func TestSharedTracerUnderFanOut(t *testing.T) {
	tr := obs.NewTracer()
	if _, err := RunSuite(Options{Size: apps.Tiny, Procs: 4, Jobs: 8, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.SpanCount() == 0 {
		t.Fatal("no spans recorded")
	}
	stages := make(map[string]int)
	for _, st := range tr.Totals() {
		stages[st.Name] = st.Count
	}
	for _, name := range []string{"prepare", "parse", "sema", "layout", "space",
		"validate", "deps", "attribute-disks", "restructure",
		"generate-trace", "prepare-trace", "sim", "disk-replay"} {
		if stages[name] == 0 {
			t.Errorf("stage %q recorded no spans (got %v)", name, stages)
		}
	}
	if ps := tr.Pool().Snapshot(); ps.Tasks == 0 || ps.Pools == 0 {
		t.Errorf("pool stats empty: %+v", ps)
	}
}

// A nil tracer must not change results: the telemetry behind the idle
// fields is always collected, so the RunResult content is identical with
// observability on or off.
func TestTracerDoesNotPerturbResults(t *testing.T) {
	a, err := apps.ByName("AST", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunApp(a, Options{Size: apps.Tiny, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunApp(a, Options{Size: apps.Tiny, Procs: 2, Tracer: obs.NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracer perturbed results:\n%+v\nvs\n%+v", plain, traced)
	}
}
