// Package exp is the experiment harness for §7 of the paper: it runs each
// application under the seven evaluated versions — Base, TPM, DRPM,
// T-TPM-s, T-DRPM-s, T-TPM-m, T-DRPM-m — for single- and multi-processor
// executions, and reports disk energy and disk I/O time normalized to the
// Base version, regenerating the data behind Table 2 and Figures 9 and 10.
package exp

import (
	"context"
	"fmt"
	"runtime"

	"diskreuse/internal/apps"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/interp"
	"diskreuse/internal/layout"
	"diskreuse/internal/metrics"
	"diskreuse/internal/obs"
	"diskreuse/internal/par"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// Version names one evaluated configuration (§7.1).
type Version string

// The seven versions of the paper's evaluation, plus one extension.
const (
	VBase   Version = "Base"
	VTPM    Version = "TPM"
	VDRPM   Version = "DRPM"
	VTTPMs  Version = "T-TPM-s"
	VTDRPMs Version = "T-DRPM-s"
	VTTPMm  Version = "T-TPM-m"
	VTDRPMm Version = "T-DRPM-m"
	// VPTPM is the proactive-TPM extension (Son et al. [25], discussed in
	// the paper's §3): the restructured schedule plus compiler-inserted
	// spin-up directives that hide the reactive wake-up latency. Only
	// evaluated when Options.Proactive is set.
	VPTPM Version = "P-TPM"
)

// VersionsFor returns the versions evaluated at a processor count: the
// multi-processor-specific T-*-m versions only exist for procs > 1.
func VersionsFor(procs int) []Version {
	vs := []Version{VBase, VTPM, VDRPM, VTTPMs, VTDRPMs}
	if procs > 1 {
		vs = append(vs, VTTPMm, VTDRPMm)
	}
	return vs
}

// PolicyOf maps a version to its power-management policy.
func PolicyOf(v Version) sim.Policy {
	switch v {
	case VTPM, VTTPMs, VTTPMm:
		return sim.TPM
	case VDRPM, VTDRPMs, VTDRPMm:
		return sim.DRPM
	default:
		return sim.NoPM
	}
}

// Options configures an experiment run.
type Options struct {
	Size  apps.Size
	Procs int
	Model disk.Model // zero Name selects the Ultrastar 36Z15
	// Sim overrides (zero = defaults).
	TPMThreshold float64
	DRPMWindow   int
	DRPMRaise    float64
	DRPMLower    float64
	RAIDWidth    int
	// Trace generation overrides.
	CachePages int
	// Stream replays every version through the out-of-core streaming path
	// (sim.RunStream over a chunked view of the prepared trace) instead of
	// the in-memory replay. Results are bit-identical by construction; the
	// knob exercises the streaming reducers on the paper suite.
	Stream bool
	// Proactive adds the P-TPM extension version (restructured schedule
	// with compiler-inserted spin-up hints) to every run.
	Proactive bool
	// Jobs bounds how many pipeline cells — per-app artifact preparations
	// and (app, version) simulations — run concurrently, and is threaded
	// through to the simulator's per-disk open-loop sharding
	// (sim.Config.Jobs) and the analysis front-end (core.Options.Jobs).
	// Zero selects runtime.GOMAXPROCS(0); 1 forces the fully serial path;
	// negative values are rejected.
	// Results are deterministic and bit-identical at every Jobs value:
	// cells share only read-only memoized artifacts (including the
	// prepared traces), and each writes its own result slot.
	Jobs int
	// Engine selects the front-end execution engine (core.Options.Engine):
	// the stride-compiled kernels (interp.EngineCompiled, the zero value)
	// or the tree-walk reference oracle (interp.EngineInterp). Both
	// produce bit-identical results; interp exists for cross-checking and
	// as the baseline of the engine speedup benchmarks.
	Engine interp.Engine
	// Tracer, when non-nil, records hierarchical spans for every pipeline
	// stage (parse, sema, space, validate, deps, attribute-disks,
	// restructure, generate-trace, prepare-trace) and every simulation —
	// including the simulator's per-disk shards — plus worker-pool
	// occupancy. A shared Tracer is safe under any Jobs fan-out; nil pays
	// only nil checks. The simulator event telemetry behind RunResult's
	// idle-locality fields is always collected: it derives from the
	// deterministic interval stream, so results stay bit-identical with or
	// without a tracer.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives live harness progress — apps
	// prepared, per-app (app, version) simulation cells finished — plus the
	// simulator's and worker pool's own live series (it is threaded into
	// sim.Config.Metrics and the pool context), so a monitoring scrape
	// shows where a long suite run is. Observe-only; results stay
	// bit-identical with metrics enabled.
	Metrics *metrics.Registry
}

// Live metric names the harness publishes when Options.Metrics is set.
const (
	metricAppsPrepared = "exp_apps_prepared_total"
	metricVersionsDone = "exp_versions_simulated_total"
)

func (o *Options) fill() {
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.Model.Name == "" {
		o.Model = disk.Ultrastar36Z15()
	}
	if o.Jobs == 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
}

// validate rejects option values that fill must not paper over. Negative
// Jobs is an error rather than an alias for the default, matching
// sim.Config.Jobs and core.Options.Jobs.
func (o *Options) validate() error {
	if o.Jobs < 0 {
		return fmt.Errorf("exp: Jobs %d must be >= 0 (0 selects GOMAXPROCS, 1 forces the serial path)", o.Jobs)
	}
	return nil
}

// versionsOf lists the versions an Options evaluates, in report order.
func versionsOf(opt Options) []Version {
	vs := VersionsFor(opt.Procs)
	if opt.Proactive {
		vs = append(vs, VPTPM)
	}
	return vs
}

// RunResult is one (app, version) measurement.
type RunResult struct {
	App      string
	Version  Version
	Procs    int
	Energy   float64 // J
	IOTime   float64 // s, total disk busy time
	Response float64 // s, summed request response times
	Requests int
	// NormEnergy is Energy / Base-energy at the same processor count; the
	// quantity Figures 9(a)/9(b) plot.
	NormEnergy float64
	// PerfDegradation is (IOTime - Base-IOTime) / Base-IOTime; the
	// quantity Figures 10(a)/10(b) plot.
	PerfDegradation float64
	SpinUps         int
	SpeedShifts     int
	// DiskRuns counts the maximal same-disk spans in the schedule (per
	// processor, summed); fewer runs = better clustering.
	DiskRuns int
	// Idle-locality telemetry, summed over the run's disks: how many
	// request-free periods the disks saw and how long they were. The
	// restructuring exists to concentrate idleness into fewer, longer
	// periods, so these quantify the mechanism behind NormEnergy.
	IdlePeriods int
	TotalIdle   float64 // s
	MeanIdle    float64 // s
	LongestIdle float64 // s
	// IdleHist is the aggregate log-2 histogram of idle-period lengths
	// (bucket i covers the obs.IdleBucketLabel(i) range). A fixed-size
	// array keeps RunResult comparable.
	IdleHist [obs.IdleBucketCount]int
}

// AppResult collects all version results for one application.
type AppResult struct {
	App       apps.App
	DataBytes int64
	Results   []RunResult
}

// Get returns the result for a version.
func (ar *AppResult) Get(v Version) (RunResult, bool) {
	for _, r := range ar.Results {
		if r.Version == v {
			return r, true
		}
	}
	return RunResult{}, false
}

// SuiteResult is a full suite run at one processor count.
type SuiteResult struct {
	Procs int
	Apps  []AppResult
}

// AverageSaving returns the mean energy saving (1 - normalized energy) of
// a version across the suite, as a fraction.
func (sr *SuiteResult) AverageSaving(v Version) float64 {
	var sum float64
	var n int
	for i := range sr.Apps {
		if r, ok := sr.Apps[i].Get(v); ok {
			sum += 1 - r.NormEnergy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AverageDegradation returns the mean performance degradation of a version
// across the suite, as a fraction.
func (sr *SuiteResult) AverageDegradation(v Version) float64 {
	var sum float64
	var n int
	for i := range sr.Apps {
		if r, ok := sr.Apps[i].Get(v); ok {
			sum += r.PerfDegradation
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// execution is a fully prepared run: phases, clustering stats, the
// generated request trace, and its simulator-ready prepared form (disk
// attribution, per-disk carve, arrival sort — done once here instead of
// once per policy version). Once prepared it is shared read-only by every
// version simulation that replays it.
type execution struct {
	phases   []trace.Phase
	diskRuns int
	reqs     []trace.Request
	prep     *sim.PreparedTrace
}

// prepare builds the three execution plans a processor count needs:
// original order, single-processor-style restructured order, and (for
// procs > 1) the layout-aware restructured order.
func prepare(r *core.Restructurer, procs int) (orig, restrS, restrM *execution, err error) {
	numDisks := r.Layout.NumDisks()
	if procs == 1 {
		o := r.OriginalSchedule()
		s, err := r.DiskReuseSchedule()
		if err != nil {
			return nil, nil, nil, err
		}
		if err := r.Verify(s); err != nil {
			return nil, nil, nil, err
		}
		return &execution{phases: trace.SinglePhase(o), diskRuns: core.Stats(o, numDisks).Runs},
			&execution{phases: trace.SinglePhase(s), diskRuns: core.Stats(s, numDisks).Runs},
			nil, nil
	}

	lp, err := par.LoopParallelize(r, procs)
	if err != nil {
		return nil, nil, nil, err
	}
	la, err := par.LayoutAware(r, procs)
	if err != nil {
		return nil, nil, nil, err
	}
	numNests := len(r.Prog.Nests)

	build := func(a *par.Assignment, restructure bool) (*execution, error) {
		perProc := make([][]int, procs)
		runs := 0
		for p, sub := range a.Subsets() {
			// Split the processor's iterations by nest (barrier phases).
			byNest := make([][]int, numNests)
			for _, id := range sub {
				k := r.Space.Nest(id)
				byNest[k] = append(byNest[k], id)
			}
			for _, group := range byNest {
				if len(group) == 0 {
					continue
				}
				order := group
				if restructure {
					s, err := r.ScheduleFor(group)
					if err != nil {
						return nil, err
					}
					order = s.Order
					runs += core.Stats(s, numDisks).Runs
				} else {
					runs += runsOf(r, group)
				}
				perProc[p] = append(perProc[p], order...)
			}
		}
		phases := trace.NestPhases(r.Space, perProc, numNests)
		if err := trace.VerifyPhases(r.Space, r.Graph, phases); err != nil {
			return nil, err
		}
		return &execution{phases: phases, diskRuns: runs}, nil
	}

	orig, err = build(lp, false)
	if err != nil {
		return nil, nil, nil, err
	}
	restrS, err = build(lp, true)
	if err != nil {
		return nil, nil, nil, err
	}
	restrM, err = build(la, true)
	if err != nil {
		return nil, nil, nil, err
	}
	return orig, restrS, restrM, nil
}

// runsOf counts same-disk runs in an unrestructured iteration order.
func runsOf(r *core.Restructurer, order []int) int {
	runs, prev := 0, -1
	for _, id := range order {
		d := r.PrimaryDisk(id)
		if d != prev {
			runs++
			prev = d
		}
	}
	return runs
}

// Artifacts memoizes the expensive per-application pipeline stages — the
// parsed and sema-analyzed program, the disk layout, and the prepared
// executions with their generated and simulator-prepared traces — so the
// seven version simulations share them read-only instead of re-deriving
// them. One Artifacts value is computed per (app, procs) cell; every field
// is immutable after PrepareApp returns, so any number of RunVersion calls
// — including calls from concurrent server requests against one cached
// value — may share it.
type Artifacts struct {
	app                  apps.App
	prog                 *sema.Program
	lay                  *layout.Layout
	orig, restrS, restrM *execution
}

// App returns the application the artifacts were prepared from.
func (art *Artifacts) App() apps.App { return art.app }

// Program returns the parsed and sema-analyzed program.
func (art *Artifacts) Program() *sema.Program { return art.prog }

// NumDisks returns the disk count of the application's layout.
func (art *Artifacts) NumDisks() int { return art.lay.NumDisks() }

// DataBytes returns the total bytes of disk-resident array data.
func (art *Artifacts) DataBytes() int64 { return dataBytes(art.prog) }

// ExecInfo summarizes one prepared execution plan.
type ExecInfo struct {
	// Kind is "original", "restructured", or "layout-aware".
	Kind string `json:"kind"`
	// Requests is the generated trace's request count.
	Requests int `json:"requests"`
	// DiskRuns counts maximal same-disk spans in the schedule.
	DiskRuns int `json:"disk_runs"`
}

// Executions summarizes the prepared execution plans in a fixed order
// (original, restructured, layout-aware; the last only for procs > 1).
func (art *Artifacts) Executions() []ExecInfo {
	var out []ExecInfo
	for _, e := range []struct {
		kind string
		ex   *execution
	}{{"original", art.orig}, {"restructured", art.restrS}, {"layout-aware", art.restrM}} {
		if e.ex == nil {
			continue
		}
		out = append(out, ExecInfo{Kind: e.kind, Requests: len(e.ex.reqs), DiskRuns: e.ex.diskRuns})
	}
	return out
}

// TraceFor returns the generated request trace the version replays. The
// slice is shared with the prepared replay — callers must treat it as
// read-only. Versions whose execution was not prepared (the T-*-m versions
// at procs == 1) return nil.
func (art *Artifacts) TraceFor(v Version) []trace.Request {
	e := art.execOf(v)
	if e == nil {
		return nil
	}
	return e.reqs
}

// PrepareApp runs the compile → layout → restructure → trace stages of the
// pipeline once for an application, producing the shared artifacts every
// version simulation replays. The front-end analyses (space enumeration,
// validation, dependence build, disk attribution) share the caller's Jobs
// budget, so -jobs accelerates preparation as well as simulation. It is
// the artifact-prepare seam the dpcd service content-addresses: everything
// expensive and immutable happens here, everything per-request (telemetry,
// policy parameters, replays) happens in RunVersionObserved.
func PrepareApp(ctx context.Context, a apps.App, opt Options) (*Artifacts, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	root := opt.Tracer.Start("prepare", "pipeline")
	root.SetAttr("app", a.Name)
	defer root.End()
	p, err := a.CompileTraced(root)
	if err != nil {
		return nil, err
	}
	sp := root.Child("layout")
	lay, err := layout.New(p, 0)
	sp.End()
	if err != nil {
		return nil, err
	}
	r, err := core.NewCtx(ctx, p, lay, core.Options{Jobs: opt.Jobs, Engine: opt.Engine, Span: root})
	if err != nil {
		return nil, err
	}
	sp = root.Child("restructure")
	orig, restrS, restrM, err := prepare(r, opt.Procs)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", a.Name, err)
	}
	genCfg := trace.GenConfig{
		ComputePerIter:  a.ComputePerIter,
		CachePages:      opt.CachePages,
		ServiceEstimate: opt.Model.FullSpeedService(lay.PageSize),
	}
	for _, e := range []*execution{orig, restrS, restrM} {
		if e == nil {
			continue
		}
		sp = root.Child("generate-trace")
		e.reqs, err = trace.Generate(r, e.phases, genCfg)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", a.Name, err)
		}
		// Bucket once, replay many: the counting pass, disk attribution,
		// and per-disk carve happen here instead of inside every one of
		// the 5–7 version simulations that share this execution.
		sp = root.Child("prepare-trace")
		e.prep, err = sim.PrepareTrace(e.reqs, lay.PageDisk, lay.NumDisks())
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", a.Name, err)
		}
	}
	return &Artifacts{app: a, prog: p, lay: lay, orig: orig, restrS: restrS, restrM: restrM}, nil
}

// execOf selects the execution a version replays.
func (art *Artifacts) execOf(v Version) *execution {
	switch v {
	case VTTPMs, VTDRPMs:
		return art.restrS
	case VTTPMm, VTDRPMm:
		return art.restrM
	case VPTPM:
		// The extension applies to the best transformed schedule
		// available: layout-aware when multiprocessing, single-CPU
		// restructured otherwise.
		if art.restrM != nil {
			return art.restrM
		}
		return art.restrS
	default:
		return art.orig
	}
}

// Observers carries the per-run observer sinks of one version simulation.
// Every field is owned by exactly one RunVersionObserved call: the sinks
// accumulate mutable per-run state (telemetry state machines, attribution
// cells, the interval stream), so they must never be stored alongside the
// shared, immutable Artifacts — concurrent simulate requests replaying one
// cached PreparedTrace each bring their own Observers and never alias each
// other's telemetry. A zero Observers is valid: RunVersionObserved then
// creates a private telemetry collector for the RunResult's idle-locality
// fields and attaches nothing else.
type Observers struct {
	// Telemetry accumulates per-disk event telemetry; nil lets
	// RunVersionObserved create a fresh, call-private collector (the
	// RunResult's idle fields need one either way). A non-nil collector
	// must be sized for the artifacts' disk count and must not be shared
	// with any other in-flight run.
	Telemetry *obs.SimTelemetry
	// Attribution, when non-nil, accumulates per-(disk, processor) service
	// attribution; it must be sized for the artifacts' disk count and the
	// trace's processor ids, and, like Telemetry, owned by this run alone.
	Attribution *obs.ProcAttribution
	// Record, when non-nil, receives every state interval of every disk in
	// the deterministic disk-major order (the dpcd NDJSON streaming hook).
	Record func(sim.Interval)
}

// runVersion simulates one version against the memoized artifacts with a
// private telemetry collector — the harness path.
func (art *Artifacts) runVersion(v Version, opt Options) (RunResult, error) {
	return art.RunVersionObserved(v, opt, Observers{})
}

// RunVersion simulates one version against the memoized artifacts and
// returns its raw (unnormalized) measurement. It only reads art, so any
// number of RunVersion calls may run concurrently over the same artifacts.
func (art *Artifacts) RunVersion(v Version, opt Options) (RunResult, error) {
	return art.RunVersionObserved(v, opt, Observers{})
}

// RunVersionObserved is RunVersion with caller-supplied observer sinks.
// art is only read; all mutable per-run state lives in obsv and in run-
// local simulator state, which is what makes one cached Artifacts safe to
// share across concurrent requests. Zero option fields take their
// defaults, as in PrepareApp.
func (art *Artifacts) RunVersionObserved(v Version, opt Options, obsv Observers) (RunResult, error) {
	if err := opt.validate(); err != nil {
		return RunResult{}, err
	}
	opt.fill()
	root := opt.Tracer.Start("sim", "sim")
	root.SetAttr("app", art.app.Name)
	root.SetAttr("version", string(v))
	defer root.End()
	e := art.execOf(v)
	if e == nil {
		return RunResult{}, fmt.Errorf("exp: %s: version %s needs procs > 1 (no layout-aware execution was prepared)", art.app.Name, v)
	}
	tel := obsv.Telemetry
	if tel == nil {
		tel = obs.NewSimTelemetry(art.lay.NumDisks())
	}
	cfg := sim.Config{
		Model:        opt.Model,
		NumDisks:     art.lay.NumDisks(),
		TPMThreshold: opt.TPMThreshold,
		DRPMWindow:   opt.DRPMWindow,
		DRPMRaise:    opt.DRPMRaise,
		DRPMLower:    opt.DRPMLower,
		RAIDWidth:    opt.RAIDWidth,
		Policy:       PolicyOf(v),
		Jobs:         opt.Jobs,
		Telemetry:    tel,
		Attribution:  obsv.Attribution,
		Record:       obsv.Record,
		Span:         root,
		Metrics:      opt.Metrics,
	}
	if v == VPTPM {
		cfg.Policy = sim.TPM
		thr := cfg.TPMThreshold
		if thr <= 0 {
			thr = cfg.Model.BreakEven
		}
		var err error
		cfg.Hints, err = trace.ProactiveHints(e.reqs, art.lay.PageDisk,
			thr, cfg.Model.SpinDownTime, cfg.Model.SpinUpTime)
		if err != nil {
			return RunResult{}, fmt.Errorf("exp: %s/%s: %w", art.app.Name, v, err)
		}
	}
	var res *sim.Result
	var err error
	if opt.Stream {
		res, err = sim.RunStream(e.prep.Source(), art.lay.PageDisk, cfg)
	} else {
		res, err = sim.RunPrepared(e.prep, cfg)
	}
	if err != nil {
		return RunResult{}, fmt.Errorf("exp: %s/%s: %w", art.app.Name, v, err)
	}
	rr := RunResult{
		App:      art.app.Name,
		Version:  v,
		Procs:    opt.Procs,
		Energy:   res.Energy,
		IOTime:   res.IOTime,
		Response: res.ResponseTime,
		Requests: res.Requests,
		DiskRuns: e.diskRuns,
	}
	for _, st := range res.PerDisk {
		rr.SpinUps += st.Meter.SpinUps
		rr.SpeedShifts += st.Meter.SpeedShifts
	}
	idle := tel.IdleLocality()
	rr.IdlePeriods = idle.Periods
	rr.TotalIdle = idle.TotalIdleS
	rr.MeanIdle = idle.MeanIdleS
	rr.LongestIdle = idle.LongestIdleS
	rr.IdleHist = tel.Histogram()
	if opt.Metrics != nil {
		opt.Metrics.Counter(metricVersionsDone, "(app, version) simulation cells finished",
			metrics.L("app", art.app.Name)).Inc()
	}
	return rr, nil
}

// Normalize fills the Base-relative metrics once every version of an app
// has been measured. Doing this after the fan-out (rather than interleaved
// with it, as the serial pipeline used to) keeps the math identical at
// every Jobs value: each version's raw numbers never depend on evaluation
// order. Results missing a Base row are left unnormalized.
func Normalize(ar *AppResult) {
	base, ok := ar.Get(VBase)
	if !ok {
		return
	}
	for i := range ar.Results {
		r := &ar.Results[i]
		if base.Energy > 0 {
			r.NormEnergy = r.Energy / base.Energy
		}
		if base.IOTime > 0 {
			r.PerfDegradation = (r.IOTime - base.IOTime) / base.IOTime
		}
	}
}

// RunApp evaluates one application under all versions for the configured
// processor count.
func RunApp(a apps.App, opt Options) (*AppResult, error) {
	return RunAppContext(context.Background(), a, opt)
}

// RunAppContext is RunApp with cancellation: the version simulations fan
// out across opt.Jobs workers, and the first error (or ctx cancellation)
// stops the remaining ones.
func RunAppContext(ctx context.Context, a apps.App, opt Options) (*AppResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	ctx = obs.WithPool(ctx, opt.Tracer.Pool())
	ctx = metrics.WithRegistry(ctx, opt.Metrics)
	art, err := PrepareApp(ctx, a, opt)
	if err != nil {
		return nil, err
	}
	versions := versionsOf(opt)
	ar := &AppResult{App: a, DataBytes: dataBytes(art.prog), Results: make([]RunResult, len(versions))}
	err = ForEach(ctx, len(versions), opt.Jobs, func(ctx context.Context, i int) error {
		rr, err := art.runVersion(versions[i], opt)
		if err != nil {
			return err
		}
		ar.Results[i] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	Normalize(ar)
	return ar, nil
}

func dataBytes(p *sema.Program) int64 {
	var total int64
	for _, a := range p.Arrays {
		total += a.Bytes()
	}
	return total
}

// RunSuite evaluates the whole application suite.
func RunSuite(opt Options) (*SuiteResult, error) {
	return RunSuiteContext(context.Background(), opt)
}

// RunSuiteContext evaluates the suite with a two-stage fan-out over
// opt.Jobs workers: first every application's pipeline artifacts (compile,
// restructure, trace generation) are prepared concurrently, then every
// (app, version) simulation cell runs concurrently against the memoized,
// read-only artifacts. Results land in fixed (app, version) slots, so the
// output is deterministic — deep-equal to the Jobs=1 serial run — and the
// first error (or ctx cancellation) stops the remaining work.
func RunSuiteContext(ctx context.Context, opt Options) (*SuiteResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	ctx = obs.WithPool(ctx, opt.Tracer.Pool())
	ctx = metrics.WithRegistry(ctx, opt.Metrics)
	suite := apps.Suite(opt.Size)
	versions := versionsOf(opt)

	arts := make([]*Artifacts, len(suite))
	err := ForEach(ctx, len(suite), opt.Jobs, func(ctx context.Context, i int) error {
		a, err := PrepareApp(ctx, suite[i], opt)
		if err != nil {
			return err
		}
		arts[i] = a
		if opt.Metrics != nil {
			opt.Metrics.Counter(metricAppsPrepared, "application pipelines prepared").Inc()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sr := &SuiteResult{Procs: opt.Procs, Apps: make([]AppResult, len(suite))}
	for i := range suite {
		sr.Apps[i] = AppResult{
			App:       suite[i],
			DataBytes: dataBytes(arts[i].prog),
			Results:   make([]RunResult, len(versions)),
		}
	}
	err = ForEach(ctx, len(suite)*len(versions), opt.Jobs, func(ctx context.Context, k int) error {
		i, j := k/len(versions), k%len(versions)
		rr, err := arts[i].runVersion(versions[j], opt)
		if err != nil {
			return err
		}
		sr.Apps[i].Results[j] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range sr.Apps {
		Normalize(&sr.Apps[i])
	}
	return sr, nil
}
