package exp

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 64} {
		var hits [57]atomic.Int32
		err := ForEach(context.Background(), len(hits), jobs, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("jobs=%d: index %d visited %d times", jobs, i, got)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		order = append(order, i) // safe: jobs=1 runs inline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 3 {
			return boom
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop dispatching promptly after the error: with 1000
	// indices and 4 workers, a canceled context should have cut the sweep
	// well short (workers check ctx before each dispatch).
	if after.Load() > 996 {
		t.Errorf("cancellation did not stop dispatch (%d calls saw a canceled ctx)", after.Load())
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var cur, peak atomic.Int32
	err := ForEach(context.Background(), 50, jobs, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("observed %d concurrent calls, want <= %d", p, jobs)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1_000_000, 2, func(ctx context.Context, i int) error {
			mu.Lock()
			ran++
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after parent cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1_000_000 {
		t.Error("cancellation should have stopped the sweep early")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Error("fn must not run for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
