package exp

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/obs"
	"diskreuse/internal/sim"
)

// TestConcurrentObserversIndependent pins the sharing contract of the
// artifact-prepare seam: one Artifacts value (with its shared PreparedTrace)
// may serve any number of concurrent RunVersionObserved calls, as long as
// each brings its own Observers. Every concurrent replay must produce the
// same result, telemetry, attribution, and interval stream as a serial
// oracle run — no cross-request aliasing of mutable observer state. Run
// under -race this also proves the artifacts really are read-only.
func TestConcurrentObserversIndependent(t *testing.T) {
	a, err := apps.ByName("FFT", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Size: apps.Tiny, Procs: 4, Jobs: 1}
	if err := opt.validate(); err != nil {
		t.Fatal(err)
	}
	opt.fill()
	art, err := PrepareApp(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}

	type capture struct {
		rr   RunResult
		idle obs.IdleStats
		per  []obs.ProcCell
		ivs  []sim.Interval
	}
	run := func(v Version) (capture, error) {
		tel := obs.NewSimTelemetry(art.NumDisks())
		attr := obs.NewProcAttribution(art.NumDisks(), opt.Procs)
		var ivs []sim.Interval
		rr, err := art.RunVersionObserved(v, opt, Observers{
			Telemetry:   tel,
			Attribution: attr,
			Record:      func(iv sim.Interval) { ivs = append(ivs, iv) },
		})
		return capture{rr: rr, idle: tel.IdleLocality(), per: attr.PerProc(), ivs: ivs}, err
	}

	// Serial oracle: one run per version, nothing in flight.
	versions := []Version{VTPM, VTDRPMm, VTTPMs}
	want := make(map[Version]capture, len(versions))
	for _, v := range versions {
		c, err := run(v)
		if err != nil {
			t.Fatalf("oracle %s: %v", v, err)
		}
		want[v] = c
	}

	// Concurrent replays over the one shared Artifacts: several goroutines
	// per version, each with private sinks.
	const perVersion = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(versions)*perVersion)
	for _, v := range versions {
		for g := 0; g < perVersion; g++ {
			wg.Add(1)
			go func(v Version, g int) {
				defer wg.Done()
				got, err := run(v)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[v]) {
					t.Errorf("goroutine %d: concurrent %s run diverged from serial oracle", g, v)
				}
			}(v, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunVersionNeedsLayoutAwareExecution pins the error (not panic) for
// requesting a multi-processor version from single-processor artifacts —
// the case a service must turn into a 4xx.
func TestRunVersionNeedsLayoutAwareExecution(t *testing.T) {
	a, err := apps.ByName("FFT", apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Size: apps.Tiny, Procs: 1}
	art, err := PrepareApp(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := art.RunVersion(VTTPMm, opt); err == nil {
		t.Fatalf("RunVersion(%s) on procs=1 artifacts: want error, got nil", VTTPMm)
	}
}
