package parser

import (
	"strings"
	"testing"

	"diskreuse/internal/affine"
	"diskreuse/internal/ast"
)

const figure2Src = `
# The code fragment of Figure 2(a) of the paper: three nests over two
# disk-resident arrays with entirely different access patterns.
param N = 64
param K = 8

array U1[2*N][2*N] stripe(unit=32K, factor=4, start=0)
array U2[2*N][2*N] stripe(unit=32K, factor=4, start=0)

nest L1 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      U1[i][j] = U1[i][j] + 1;
    }
  }
}

nest L2 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      U2[i][j] = U1[2*i][2*j] + U1[2*i][2*j+1];
    }
  }
}

nest L3 {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      read U2[i+N][j+N];
    }
  }
}
`

func TestParseFigure2(t *testing.T) {
	prog, err := Parse(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Params) != 2 || len(prog.Arrays) != 2 || len(prog.Nests) != 3 {
		t.Fatalf("counts: params=%d arrays=%d nests=%d", len(prog.Params), len(prog.Arrays), len(prog.Nests))
	}
	if v, ok := prog.LookupParam("N"); !ok || v != 64 {
		t.Errorf("param N = %d,%v", v, ok)
	}
	u1 := prog.LookupArray("U1")
	if u1 == nil {
		t.Fatal("U1 not found")
	}
	// Params fold to constants at parse time: 2*N = 128.
	wantDim := affine.Constant(128)
	if !u1.Dims[0].Equal(wantDim) || !u1.Dims[1].Equal(wantDim) {
		t.Errorf("U1 dims = %v, %v; want 128", u1.Dims[0], u1.Dims[1])
	}
	if u1.Stripe == nil || u1.Stripe.Unit != 32768 || u1.Stripe.Factor != 4 || u1.Stripe.Start != 0 {
		t.Errorf("U1 stripe = %+v", u1.Stripe)
	}
	if u1.File != "U1.dat" {
		t.Errorf("U1 file = %q, want default", u1.File)
	}

	l2 := prog.Nests[1]
	if l2.Name != "L2" {
		t.Errorf("nest name = %q", l2.Name)
	}
	if got := l2.Loop.Depth(); got != 2 {
		t.Errorf("L2 depth = %d", got)
	}
	if got := l2.Loop.Iterators(); len(got) != 2 || got[0] != "i" || got[1] != "j" {
		t.Errorf("L2 iterators = %v", got)
	}
	inner := l2.Loop.Body[0].(*ast.Loop)
	asg := inner.Body[0].(*ast.Assign)
	if asg.LHS.Array != "U2" || len(asg.RHS) != 2 {
		t.Errorf("L2 stmt = %v = %v", asg.LHS, asg.RHS)
	}
	// U1[2*i][2*j+1]
	r := asg.RHS[1]
	if !r.Subs[0].Equal(affine.Term("i", 2)) {
		t.Errorf("sub0 = %v", r.Subs[0])
	}
	if !r.Subs[1].Equal(affine.Term("j", 2).AddConst(1)) {
		t.Errorf("sub1 = %v", r.Subs[1])
	}

	names := l2.ArrayNames()
	if len(names) != 2 || names[0] != "U2" || names[1] != "U1" {
		t.Errorf("ArrayNames = %v", names)
	}
}

func TestParseRoundTrip(t *testing.T) {
	prog, err := Parse(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, text)
	}
	if prog2.String() != text {
		t.Errorf("round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, prog2.String())
	}
}

func TestParseStepAndElem(t *testing.T) {
	src := `
array A[100] elem 4 stripe(unit=1K, factor=2, start=1) file "a.bin"
nest L {
  for i = 0 to 99 step 2 {
    read A[i];
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Arrays[0]
	if a.ElemSize != 4 || a.File != "a.bin" || a.Stripe.Unit != 1024 {
		t.Errorf("array = %+v stripe=%+v", a, a.Stripe)
	}
	if prog.Nests[0].Loop.Step != 2 {
		t.Errorf("step = %d", prog.Nests[0].Loop.Step)
	}
}

func TestParseScalarRHSTerms(t *testing.T) {
	src := `
param N = 4
array A[N][N]
nest L {
  for i = 0 to N-1 {
    for j = 0 to N-1 {
      A[i][j] = 2*A[j][i] + i + 3;
    }
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inner := prog.Nests[0].Loop.Body[0].(*ast.Loop)
	asg := inner.Body[0].(*ast.Assign)
	if len(asg.RHS) != 1 || asg.RHS[0].Array != "A" {
		t.Errorf("RHS refs = %v", asg.RHS)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSubstr string
	}{
		{"param N = i", "constant"},
		{"array A", "dimension"},
		{"array A[4] nest L { for i = 0 to 3 { A[i*i] = 1; } }", "non-affine"},
		{"nest L { read A[0]; }", "for-loop"},
		{"array A[4] nest L { for i = 0 to 3 step 0 { read A[i]; } }", "positive"},
		{"array A[4] nest L { for i = 0 to 3 { A = 1; } }", "subscripts"},
		{"array A[4] elem 0", "positive"},
		{"array A[4] stripe(unit=0, factor=2, start=0)", "invalid stripe"},
		{"bogus", "declaration"},
		{"nest L { for i = 0 to 3 { ", "statement"},
		{"param N = 1 param N = 2", "duplicate param"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSubstr) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSubstr)
		}
	}
}

func TestParseNegativeBounds(t *testing.T) {
	src := `
param N = 4
array A[N]
nest L {
  for i = -2 to N-1 {
    read A[i+2];
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lo := prog.Nests[0].Loop.Lo
	if !lo.Equal(affine.Constant(-2)) {
		t.Errorf("lo = %v", lo)
	}
}

func TestParseParenthesizedAffine(t *testing.T) {
	src := `
param N = 8
array A[4*N]
nest L {
  for i = 0 to N-1 {
    read A[2*(i+1) - (N - i)];
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inner := prog.Nests[0].Loop
	r := inner.Body[0].(*ast.ReadStmt).Ref
	// 2*(i+1) - (N - i) = 3i - N + 2 = 3i - 6 with N = 8 folded.
	want := affine.Term("i", 3).AddConst(-6)
	if !r.Subs[0].Equal(want) {
		t.Errorf("subscript = %v, want %v", r.Subs[0], want)
	}
}

func TestParseUnaryMinusFactor(t *testing.T) {
	src := `
array A[64]
nest L {
  for i = 0 to 9 {
    read A[2 * -i + 40];
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Nests[0].Loop.Body[0].(*ast.ReadStmt).Ref
	want := affine.Term("i", -2).AddConst(40)
	if !r.Subs[0].Equal(want) {
		t.Errorf("subscript = %v, want %v", r.Subs[0], want)
	}
}

func TestParseMoreErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"array A[4] nest L { for i = 0 to 3 { read A[(i]; } }", "expected )"},
		{"array A[4] nest L { for i = 0 to 3 { read A[]; } }", "expected expression"},
		{"array A[4] nest L { for i = 0 to 3 { A[i] = ;; } }", "expected operand"},
		{"array A[4] nest L { for i = 0 to 3 { read A[i] } }", "expected ;"},
		{"array A[i*j]", "non-affine"},
		{"array A[4] stripe(unit=4K factor=2, start=0)", "expected ,"},
		{"array A[4] elem x", "expected integer"},
		{"param N", "expected ="},
		{"nest 5 { }", "expected identifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}
