package parser

import (
	"strings"
	"testing"

	"diskreuse/internal/sema"
)

// FuzzParse drives the whole front end with arbitrary input: the parser
// must never panic, and any program it accepts must either be rejected by
// semantic analysis or survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		figure2Src,
		"param N = 4\narray A[N]\nnest L { for i = 0 to N-1 { read A[i]; } }",
		"array A[4] elem 4096 stripe(unit=32K, factor=8, start=1) file \"a\"\nnest L { for i = 0 to 3 { A[i] = A[i] + 1; } }",
		"array A[8][8]\nnest L { for i = 0 to 7 { for j = i to 7 { A[i][j] = A[j][i]; } } }",
		"# comment\nparam K = 1K\narray A[K]\nnest L { for i = 0 to 1023 step 2 { read A[i]; } }",
		"nest L {",
		"array A[0]",
		"param = 3",
		strings.Repeat("param N = 1\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		lowered, err := sema.Analyze(prog, sema.Options{})
		if err != nil {
			return
		}
		_ = lowered
		// Accepted programs must print and reparse to an equivalent form.
		printed := prog.String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of accepted program failed: %v\n--- printed ---\n%s\n--- original ---\n%s",
				err, printed, src)
		}
		if prog2.String() != printed {
			t.Fatalf("print/reparse not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				printed, prog2.String())
		}
	})
}
