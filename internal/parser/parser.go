// Package parser builds ast.Program values from DRL source text.
//
// The grammar (EBNF, '#' comments to end of line):
//
//	program   = { paramDecl | arrayDecl | nestDecl } .
//	paramDecl = "param" IDENT "=" affExpr .                 // must be constant
//	arrayDecl = "array" IDENT { "[" affExpr "]" }
//	            [ "elem" INT ] [ stripeSpec ] [ "file" STRING ] .
//	stripeSpec= "stripe" "(" "unit" "=" INT ","
//	            "factor" "=" INT "," "start" "=" INT ")" .
//	nestDecl  = "nest" IDENT "{" loop "}" .
//	loop      = "for" IDENT "=" affExpr "to" affExpr [ "step" INT ]
//	            "{" { loop | stmt } "}" .
//	stmt      = ref "=" rhs ";" | "read" ref ";" .
//	rhs       = rhsTerm { ("+"|"-") rhsTerm } .
//	rhsTerm   = [ INT "*" ] ( ref | IDENT | INT ) .
//	ref       = IDENT "[" affExpr "]" { "[" affExpr "]" } .
//	affExpr   = [ "-" ] affTerm { ("+"|"-") affTerm } .
//	affTerm   = affFactor { "*" affFactor } .               // affine: ≤1 variable factor
//	affFactor = INT | IDENT | "(" affExpr ")" .
//
// Expressions are required to be affine; a product of two variable
// subexpressions is a parse error.
package parser

import (
	"fmt"

	"diskreuse/internal/affine"
	"diskreuse/internal/ast"
	"diskreuse/internal/scan"
)

// Error is a parse error with a source position.
type Error struct {
	Pos scan.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []scan.Token
	pos  int
	// params holds the values of parameters declared so far. Because a
	// param must be declared before use, the parser folds parameter names
	// to constants on the spot, which lets expressions like i*N stay
	// affine.
	params map[string]int64
}

// Parse parses a complete DRL program.
func Parse(src string) (*ast.Program, error) {
	toks, err := scan.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: map[string]int64{}}
	return p.program()
}

func (p *parser) cur() scan.Token  { return p.toks[p.pos] }
func (p *parser) next() scan.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(pos scan.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k scan.Kind) (scan.Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf(t.Pos, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for {
		switch t := p.cur(); t.Kind {
		case scan.EOF:
			return prog, nil
		case scan.PARAM:
			d, err := p.paramDecl()
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, d)
		case scan.ARRAY:
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, d)
		case scan.NEST:
			d, err := p.nestDecl()
			if err != nil {
				return nil, err
			}
			prog.Nests = append(prog.Nests, d)
		default:
			return nil, p.errorf(t.Pos, "expected declaration (param, array, or nest), found %s", t)
		}
	}
}

func (p *parser) paramDecl() (*ast.Param, error) {
	kw := p.next() // param
	name, err := p.expect(scan.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.ASSIGN); err != nil {
		return nil, err
	}
	e, err := p.affExpr()
	if err != nil {
		return nil, err
	}
	if !e.IsConst() {
		return nil, p.errorf(kw.Pos, "param %s must have a constant value, got %s", name.Text, e)
	}
	if _, dup := p.params[name.Text]; dup {
		return nil, p.errorf(kw.Pos, "duplicate param %s", name.Text)
	}
	p.params[name.Text] = e.Const
	return &ast.Param{Name: name.Text, Value: e.Const, Pos: kw.Pos}, nil
}

func (p *parser) arrayDecl() (*ast.Array, error) {
	kw := p.next() // array
	name, err := p.expect(scan.IDENT)
	if err != nil {
		return nil, err
	}
	a := &ast.Array{Name: name.Text, ElemSize: 8, Pos: kw.Pos}
	for p.cur().Kind == scan.LBRACK {
		p.next()
		e, err := p.affExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.RBRACK); err != nil {
			return nil, err
		}
		a.Dims = append(a.Dims, e)
	}
	if len(a.Dims) == 0 {
		return nil, p.errorf(kw.Pos, "array %s needs at least one dimension", a.Name)
	}
	if p.cur().Kind == scan.ELEM {
		p.next()
		sz, err := p.expect(scan.INT)
		if err != nil {
			return nil, err
		}
		if sz.Val <= 0 {
			return nil, p.errorf(sz.Pos, "elem size must be positive, got %d", sz.Val)
		}
		a.ElemSize = sz.Val
	}
	if p.cur().Kind == scan.STRIPE {
		spec, err := p.stripeSpec()
		if err != nil {
			return nil, err
		}
		a.Stripe = spec
	}
	if p.cur().Kind == scan.FILEKW {
		p.next()
		f, err := p.expect(scan.STRING)
		if err != nil {
			return nil, err
		}
		a.File = f.Text
	} else {
		a.File = a.Name + ".dat"
	}
	return a, nil
}

func (p *parser) stripeSpec() (*ast.StripeSpec, error) {
	p.next() // stripe
	if _, err := p.expect(scan.LPAREN); err != nil {
		return nil, err
	}
	spec := &ast.StripeSpec{}
	readField := func(kw scan.Kind) (int64, error) {
		if _, err := p.expect(kw); err != nil {
			return 0, err
		}
		if _, err := p.expect(scan.ASSIGN); err != nil {
			return 0, err
		}
		v, err := p.expect(scan.INT)
		if err != nil {
			return 0, err
		}
		return v.Val, nil
	}
	unit, err := readField(scan.UNIT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.COMMA); err != nil {
		return nil, err
	}
	factor, err := readField(scan.FACTOR)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.COMMA); err != nil {
		return nil, err
	}
	start, err := readField(scan.START)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.RPAREN); err != nil {
		return nil, err
	}
	spec.Unit = unit
	spec.Factor = int(factor)
	spec.Start = int(start)
	if spec.Unit <= 0 || spec.Factor <= 0 || spec.Start < 0 {
		return nil, p.errorf(p.cur().Pos, "invalid stripe spec %s", spec)
	}
	return spec, nil
}

func (p *parser) nestDecl() (*ast.Nest, error) {
	kw := p.next() // nest
	name, err := p.expect(scan.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.LBRACE); err != nil {
		return nil, err
	}
	if p.cur().Kind != scan.FOR {
		return nil, p.errorf(p.cur().Pos, "nest %s must contain a for-loop", name.Text)
	}
	loop, err := p.loop()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.RBRACE); err != nil {
		return nil, err
	}
	return &ast.Nest{Name: name.Text, Loop: loop, Pos: kw.Pos}, nil
}

func (p *parser) loop() (*ast.Loop, error) {
	kw := p.next() // for
	v, err := p.expect(scan.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.affExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.TO); err != nil {
		return nil, err
	}
	hi, err := p.affExpr()
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if p.cur().Kind == scan.STEP {
		p.next()
		s, err := p.expect(scan.INT)
		if err != nil {
			return nil, err
		}
		if s.Val <= 0 {
			return nil, p.errorf(s.Pos, "loop step must be positive, got %d", s.Val)
		}
		step = s.Val
	}
	if _, err := p.expect(scan.LBRACE); err != nil {
		return nil, err
	}
	l := &ast.Loop{Var: v.Text, Lo: lo, Hi: hi, Step: step, Pos: kw.Pos}
	for p.cur().Kind != scan.RBRACE {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		l.Body = append(l.Body, s)
	}
	p.next() // }
	return l, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch t := p.cur(); t.Kind {
	case scan.FOR:
		return p.loop()
	case scan.READ:
		p.next()
		r, err := p.ref()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.SEMI); err != nil {
			return nil, err
		}
		return &ast.ReadStmt{Ref: r, Pos: t.Pos}, nil
	case scan.IDENT:
		lhs, err := p.ref()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.ASSIGN); err != nil {
			return nil, err
		}
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.SEMI); err != nil {
			return nil, err
		}
		return &ast.Assign{LHS: lhs, RHS: rhs, Pos: t.Pos}, nil
	default:
		return nil, p.errorf(t.Pos, "expected statement, found %s", t)
	}
}

// rhs parses the right-hand side of an assignment and returns the array
// references it reads, in source order. Scalar terms (constants, iterator
// or parameter uses) are accepted and discarded: they touch no disk data.
func (p *parser) rhs() ([]*ast.Ref, error) {
	var refs []*ast.Ref
	for {
		// Optional "INT *" scaling prefix.
		if p.cur().Kind == scan.INT && p.toks[p.pos+1].Kind == scan.STAR {
			p.next()
			p.next()
		}
		switch t := p.cur(); t.Kind {
		case scan.IDENT:
			if p.toks[p.pos+1].Kind == scan.LBRACK {
				r, err := p.ref()
				if err != nil {
					return nil, err
				}
				refs = append(refs, r)
			} else {
				p.next() // scalar use of iterator/param
			}
		case scan.INT:
			p.next()
		default:
			return nil, p.errorf(t.Pos, "expected operand in expression, found %s", t)
		}
		switch p.cur().Kind {
		case scan.PLUS, scan.MINUS, scan.STAR:
			p.next()
		default:
			return refs, nil
		}
	}
}

func (p *parser) ref() (*ast.Ref, error) {
	name, err := p.expect(scan.IDENT)
	if err != nil {
		return nil, err
	}
	r := &ast.Ref{Array: name.Text, Pos: name.Pos}
	if p.cur().Kind != scan.LBRACK {
		return nil, p.errorf(p.cur().Pos, "array reference %s needs subscripts", name.Text)
	}
	for p.cur().Kind == scan.LBRACK {
		p.next()
		e, err := p.affExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.RBRACK); err != nil {
			return nil, err
		}
		r.Subs = append(r.Subs, e)
	}
	return r, nil
}

// affExpr parses an affine expression over iterators and parameters.
func (p *parser) affExpr() (affine.Expr, error) {
	neg := false
	if p.cur().Kind == scan.MINUS {
		p.next()
		neg = true
	}
	e, err := p.affTerm()
	if err != nil {
		return affine.Expr{}, err
	}
	if neg {
		e = e.Neg()
	}
	for {
		switch p.cur().Kind {
		case scan.PLUS:
			p.next()
			t, err := p.affTerm()
			if err != nil {
				return affine.Expr{}, err
			}
			e = e.Add(t)
		case scan.MINUS:
			p.next()
			t, err := p.affTerm()
			if err != nil {
				return affine.Expr{}, err
			}
			e = e.Sub(t)
		default:
			return e, nil
		}
	}
}

func (p *parser) affTerm() (affine.Expr, error) {
	e, err := p.affFactor()
	if err != nil {
		return affine.Expr{}, err
	}
	for p.cur().Kind == scan.STAR {
		star := p.next()
		f, err := p.affFactor()
		if err != nil {
			return affine.Expr{}, err
		}
		switch {
		case f.IsConst():
			e = e.Scale(f.Const)
		case e.IsConst():
			e = f.Scale(e.Const)
		default:
			return affine.Expr{}, p.errorf(star.Pos, "non-affine product %s * %s", e, f)
		}
	}
	return e, nil
}

func (p *parser) affFactor() (affine.Expr, error) {
	switch t := p.cur(); t.Kind {
	case scan.INT:
		p.next()
		return affine.Constant(t.Val), nil
	case scan.IDENT:
		p.next()
		if v, ok := p.params[t.Text]; ok {
			return affine.Constant(v), nil
		}
		return affine.Var(t.Text), nil
	case scan.MINUS:
		p.next()
		f, err := p.affFactor()
		if err != nil {
			return affine.Expr{}, err
		}
		return f.Neg(), nil
	case scan.LPAREN:
		p.next()
		e, err := p.affExpr()
		if err != nil {
			return affine.Expr{}, err
		}
		if _, err := p.expect(scan.RPAREN); err != nil {
			return affine.Expr{}, err
		}
		return e, nil
	default:
		return affine.Expr{}, p.errorf(t.Pos, "expected expression, found %s", t)
	}
}
