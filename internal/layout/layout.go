// Package layout models the storage architecture of §2 of the paper: data
// arrays striped over I/O nodes ("disks"), with the I/O-node-level striping
// exposed to the compiler. Each array lives in its own file (the paper's
// one-to-one array/file assumption), files are concatenated into a global
// logical byte space, and accesses happen at page-block granularity (§7.1).
//
// The package answers the two questions every other phase asks:
//
//   - which disk holds a given array element (compiler side), and
//   - which disk holds a given logical page (simulator side).
package layout

import (
	"fmt"
	"sort"

	"diskreuse/internal/ast"
	"diskreuse/internal/sema"
)

// DefaultPageSize is the access granularity for disk requests. The paper
// states accesses to disk-resident data are made at a page-block
// granularity; 4 KiB is the conventional page size.
const DefaultPageSize = 4096

// Extent records where an array's backing file sits in the global logical
// byte space.
type Extent struct {
	Array *sema.Array
	Base  int64 // global byte offset of the file start; stripe-unit aligned
}

// Layout maps arrays and pages to disks.
type Layout struct {
	PageSize int64
	Extents  []Extent
	numDisks int
	totalLen int64

	byArray map[*sema.Array]int
}

// New builds the layout for prog. It validates the divisibility constraints
// that keep the mapping well formed: the page size must divide every
// array's stripe unit (so a page never spans two disks), and every array's
// element size must divide the page size (so an element never spans two
// pages).
func New(prog *sema.Program, pageSize int64) (*Layout, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	l := &Layout{
		PageSize: pageSize,
		byArray:  make(map[*sema.Array]int, len(prog.Arrays)),
	}
	var base int64
	for _, a := range prog.Arrays {
		s := a.Stripe
		if s.Unit%pageSize != 0 {
			return nil, fmt.Errorf("layout: array %s stripe unit %d not a multiple of page size %d",
				a.Name, s.Unit, pageSize)
		}
		if pageSize%a.ElemSize != 0 {
			return nil, fmt.Errorf("layout: array %s element size %d does not divide page size %d",
				a.Name, a.ElemSize, pageSize)
		}
		// Align the file base to the stripe unit so stripe arithmetic
		// stays local to the array.
		if rem := base % s.Unit; rem != 0 {
			base += s.Unit - rem
		}
		l.byArray[a] = len(l.Extents)
		l.Extents = append(l.Extents, Extent{Array: a, Base: base})
		base += a.Bytes()
		if end := s.Start + s.Factor; end > l.numDisks {
			l.numDisks = end
		}
	}
	l.totalLen = base
	if l.numDisks == 0 {
		return nil, fmt.Errorf("layout: program has no striped arrays")
	}
	return l, nil
}

// NumDisks returns the number of I/O nodes the data spans.
func (l *Layout) NumDisks() int { return l.numDisks }

// TotalBytes returns the extent of the global logical byte space.
func (l *Layout) TotalBytes() int64 { return l.totalLen }

// extentOf returns the extent record for array a.
func (l *Layout) extentOf(a *sema.Array) (Extent, error) {
	i, ok := l.byArray[a]
	if !ok {
		return Extent{}, fmt.Errorf("layout: array %s not in layout", a.Name)
	}
	return l.Extents[i], nil
}

// ElemByte returns the global byte offset of element lin of array a.
func (l *Layout) ElemByte(a *sema.Array, lin int64) (int64, error) {
	ext, err := l.extentOf(a)
	if err != nil {
		return 0, err
	}
	if lin < 0 || lin >= a.Elems() {
		return 0, fmt.Errorf("layout: element %d out of range for array %s (%d elements)",
			lin, a.Name, a.Elems())
	}
	return ext.Base + lin*a.ElemSize, nil
}

// SpecDisk returns the disk of the byte at file-relative offset off under
// stripe spec s — the striping rule of §2 factored out as a pure function:
// consecutive stripe-unit-sized chunks of the file go to consecutive disks
// round-robin, beginning at the start disk. ElemDisk and PageDisk apply it
// through a built Layout; the layout search's re-attribution scorer applies
// it directly to candidate specs without building one.
func SpecDisk(s ast.StripeSpec, off int64) int {
	return s.Start + int((off/s.Unit)%int64(s.Factor))
}

// ElemDisk returns the disk (I/O node) holding element lin of array a,
// per the striping rule of §2.
func (l *Layout) ElemDisk(a *sema.Array, lin int64) (int, error) {
	if _, err := l.extentOf(a); err != nil {
		return 0, err
	}
	if lin < 0 || lin >= a.Elems() {
		return 0, fmt.Errorf("layout: element %d out of range for array %s (%d elements)",
			lin, a.Name, a.Elems())
	}
	return SpecDisk(a.Stripe, lin*a.ElemSize), nil
}

// ElemPage returns the global logical page number of element lin of a.
func (l *Layout) ElemPage(a *sema.Array, lin int64) (int64, error) {
	b, err := l.ElemByte(a, lin)
	if err != nil {
		return 0, err
	}
	return b / l.PageSize, nil
}

// PageDisk maps a global logical page number to the disk holding it. It is
// the simulator-side inverse of ElemPage/ElemDisk: given the striping
// information (provided "in an external file" in the paper's simulator), it
// locates the array extent containing the page and applies its striping.
func (l *Layout) PageDisk(page int64) (int, error) {
	byteOff := page * l.PageSize
	// Extents are sorted by Base; binary-search the containing extent.
	i := sort.Search(len(l.Extents), func(i int) bool {
		return l.Extents[i].Base > byteOff
	}) - 1
	if i < 0 {
		return 0, fmt.Errorf("layout: page %d before first extent", page)
	}
	ext := l.Extents[i]
	a := ext.Array
	off := byteOff - ext.Base
	if off >= a.Bytes() {
		return 0, fmt.Errorf("layout: page %d falls in inter-file padding or past end", page)
	}
	return SpecDisk(a.Stripe, off), nil
}

// ArrayOfPage returns the array whose file contains the page, or nil for
// padding/out-of-range pages.
func (l *Layout) ArrayOfPage(page int64) *sema.Array {
	byteOff := page * l.PageSize
	i := sort.Search(len(l.Extents), func(i int) bool {
		return l.Extents[i].Base > byteOff
	}) - 1
	if i < 0 {
		return nil
	}
	ext := l.Extents[i]
	if byteOff-ext.Base >= ext.Array.Bytes() {
		return nil
	}
	return ext.Array
}

// StripeRange describes the span of element linear indices of one stripe of
// an array that lives on a particular disk.
type StripeRange struct {
	Disk     int
	Stripe   int64 // stripe index within the array's file
	FromElem int64 // first linear element index (inclusive)
	ToElem   int64 // last linear element index (inclusive)
}

// StripesOnDisk enumerates the stripes of array a that live on disk d, in
// file order. This is the quasi-affine structure behind the per-disk loop
// nests the restructurer generates (the "for ss" stripe loops of Fig. 2(c)).
func (l *Layout) StripesOnDisk(a *sema.Array, d int) []StripeRange {
	s := a.Stripe
	rel := d - s.Start
	if rel < 0 || rel >= s.Factor {
		return nil
	}
	elemsPerStripe := s.Unit / a.ElemSize
	total := a.Elems()
	numStripes := (a.Bytes() + s.Unit - 1) / s.Unit
	var out []StripeRange
	for st := int64(rel); st < numStripes; st += int64(s.Factor) {
		from := st * elemsPerStripe
		to := from + elemsPerStripe - 1
		if to >= total {
			to = total - 1
		}
		out = append(out, StripeRange{Disk: d, Stripe: st, FromElem: from, ToElem: to})
	}
	return out
}

// DisksOfArray returns the set of disks array a is striped over, ascending.
func (l *Layout) DisksOfArray(a *sema.Array) []int {
	ds := make([]int, 0, a.Stripe.Factor)
	numStripes := (a.Bytes() + a.Stripe.Unit - 1) / a.Stripe.Unit
	n := int64(a.Stripe.Factor)
	if numStripes < n {
		n = numStripes
	}
	for k := 0; k < int(n); k++ {
		ds = append(ds, a.Stripe.Start+k)
	}
	return ds
}
