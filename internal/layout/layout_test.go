package layout

import (
	"math/rand"
	"testing"

	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func analyze(t *testing.T, src string) *sema.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const twoArraySrc = `
param N = 64
array U1[N][N] stripe(unit=4K, factor=4, start=0)
array U2[N][N] stripe(unit=4K, factor=4, start=0)
nest L { for i = 0 to N-1 { for j = 0 to N-1 { U2[i][j] = U1[i][j]; } } }
`

func TestLayoutBasics(t *testing.T) {
	p := analyze(t, twoArraySrc)
	l, err := New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumDisks() != 4 {
		t.Errorf("NumDisks = %d", l.NumDisks())
	}
	u1 := p.Array("U1")
	u2 := p.Array("U2")
	// 64x64 float64 = 32 KiB per array; stripe unit 4 KiB => 8 stripes,
	// disks 0,1,2,3,0,1,2,3.
	if d, _ := l.ElemDisk(u1, 0); d != 0 {
		t.Errorf("first elem disk = %d", d)
	}
	// element 512 (byte 4096) starts stripe 1 => disk 1
	if d, _ := l.ElemDisk(u1, 512); d != 1 {
		t.Errorf("elem 512 disk = %d, want 1", d)
	}
	// stripe 4 wraps to disk 0
	if d, _ := l.ElemDisk(u1, 2048); d != 0 {
		t.Errorf("elem 2048 disk = %d, want 0", d)
	}
	// U2's file follows U1's, aligned.
	ext2 := l.Extents[1]
	if ext2.Array != u2 || ext2.Base != u1.Bytes() {
		t.Errorf("U2 extent = %+v", ext2)
	}
	if l.TotalBytes() != u1.Bytes()+u2.Bytes() {
		t.Errorf("TotalBytes = %d", l.TotalBytes())
	}
}

// Property: for every element, PageDisk(ElemPage(e)) == ElemDisk(e). This
// is the compiler/simulator consistency invariant: the disk the compiler
// thinks an element lives on must be the disk the trace-driven simulator
// charges the request to.
func TestCompilerSimulatorDiskAgreement(t *testing.T) {
	p := analyze(t, `
param N = 32
array A[N][N] elem 4 stripe(unit=4K, factor=3, start=1)
array B[1024] stripe(unit=8K, factor=5, start=0)
nest L { for i = 0 to N-1 { for j = 0 to N-1 { B[i*N+j] = A[i][j]; } } }
`)
	l, err := New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Arrays {
		for lin := int64(0); lin < a.Elems(); lin++ {
			ed, err := l.ElemDisk(a, lin)
			if err != nil {
				t.Fatal(err)
			}
			pg, err := l.ElemPage(a, lin)
			if err != nil {
				t.Fatal(err)
			}
			pd, err := l.PageDisk(pg)
			if err != nil {
				t.Fatalf("PageDisk(%d): %v", pg, err)
			}
			if ed != pd {
				t.Fatalf("array %s elem %d: ElemDisk=%d PageDisk=%d", a.Name, lin, ed, pd)
			}
			if got := l.ArrayOfPage(pg); got != a {
				t.Fatalf("ArrayOfPage(%d) = %v, want %s", pg, got, a.Name)
			}
		}
	}
}

func TestStripesOnDisk(t *testing.T) {
	p := analyze(t, twoArraySrc)
	l, err := New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	u1 := p.Array("U1")
	// 8 stripes over 4 disks: disk 2 gets stripes 2 and 6.
	srs := l.StripesOnDisk(u1, 2)
	if len(srs) != 2 || srs[0].Stripe != 2 || srs[1].Stripe != 6 {
		t.Fatalf("StripesOnDisk = %+v", srs)
	}
	// 4 KiB / 8 B = 512 elements per stripe.
	if srs[0].FromElem != 1024 || srs[0].ToElem != 1535 {
		t.Errorf("stripe 2 range = %+v", srs[0])
	}
	// Every element of every stripe range must actually map to that disk.
	for d := 0; d < l.NumDisks(); d++ {
		for _, sr := range l.StripesOnDisk(u1, d) {
			for lin := sr.FromElem; lin <= sr.ToElem; lin += 100 {
				got, _ := l.ElemDisk(u1, lin)
				if got != d {
					t.Fatalf("stripe claims disk %d but elem %d maps to %d", d, lin, got)
				}
			}
		}
	}
	if got := l.StripesOnDisk(u1, 9); got != nil {
		t.Errorf("disk outside factor should have no stripes, got %v", got)
	}
}

// Property: stripe ranges for all disks tile the array exactly.
func TestStripesPartitionArray(t *testing.T) {
	p := analyze(t, `
array A[1000] elem 4 stripe(unit=4K, factor=3, start=0)
nest L { for i = 0 to 999 { read A[i]; } }
`)
	l, err := New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Array("A")
	covered := make([]bool, a.Elems())
	for d := 0; d < l.NumDisks(); d++ {
		for _, sr := range l.StripesOnDisk(a, d) {
			for lin := sr.FromElem; lin <= sr.ToElem; lin++ {
				if covered[lin] {
					t.Fatalf("element %d covered twice", lin)
				}
				covered[lin] = true
			}
		}
	}
	for lin, ok := range covered {
		if !ok {
			t.Fatalf("element %d not covered", lin)
		}
	}
}

func TestDisksOfArray(t *testing.T) {
	p := analyze(t, `
array Small[10] stripe(unit=4K, factor=8, start=2)
array Big[100000] stripe(unit=4K, factor=4, start=0)
nest L { for i = 0 to 9 { read Small[i]; } }
`)
	l, err := New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Small is 80 bytes: a single stripe on disk 2 only.
	if ds := l.DisksOfArray(p.Array("Small")); len(ds) != 1 || ds[0] != 2 {
		t.Errorf("Small disks = %v", ds)
	}
	if ds := l.DisksOfArray(p.Array("Big")); len(ds) != 4 || ds[0] != 0 || ds[3] != 3 {
		t.Errorf("Big disks = %v", ds)
	}
}

func TestLayoutValidation(t *testing.T) {
	p := analyze(t, `
array A[100] stripe(unit=2K, factor=2, start=0)
nest L { for i = 0 to 99 { read A[i]; } }
`)
	if _, err := New(p, 4096); err == nil {
		t.Error("stripe unit smaller than page size must fail")
	}
	p2 := analyze(t, `
array A[100] elem 24 stripe(unit=4K, factor=2, start=0)
nest L { for i = 0 to 99 { read A[i]; } }
`)
	if _, err := New(p2, 4096); err == nil {
		t.Error("element size not dividing page size must fail")
	}
}

func TestLayoutErrors(t *testing.T) {
	p := analyze(t, twoArraySrc)
	l, err := New(p, 0) // default page size
	if err != nil {
		t.Fatal(err)
	}
	if l.PageSize != DefaultPageSize {
		t.Errorf("PageSize = %d", l.PageSize)
	}
	u1 := p.Array("U1")
	if _, err := l.ElemDisk(u1, -1); err == nil {
		t.Error("negative elem must fail")
	}
	if _, err := l.ElemDisk(u1, u1.Elems()); err == nil {
		t.Error("past-end elem must fail")
	}
	if _, err := l.PageDisk(-1); err == nil {
		t.Error("negative page must fail")
	}
	if _, err := l.PageDisk(1 << 40); err == nil {
		t.Error("out-of-range page must fail")
	}
	other := &sema.Array{Name: "ghost", Dims: []int64{4}, ElemSize: 8}
	if _, err := l.ElemDisk(other, 0); err == nil {
		t.Error("unknown array must fail")
	}
}

// Property (randomized): ElemByte is strictly increasing in lin and
// page-disk agreement holds at random points for random layouts.
func TestQuickRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	units := []int64{4096, 8192, 16384, 32768}
	for trial := 0; trial < 25; trial++ {
		factor := 1 + rng.Intn(8)
		start := rng.Intn(4)
		unit := units[rng.Intn(len(units))]
		n := 200 + rng.Intn(5000)
		src := `
array A[` + itoa(n) + `] stripe(unit=` + itoa64(unit) + `, factor=` + itoa(factor) + `, start=` + itoa(start) + `)
nest L { for i = 0 to ` + itoa(n-1) + ` { read A[i]; } }
`
		p := analyze(t, src)
		l, err := New(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		a := p.Array("A")
		for k := 0; k < 50; k++ {
			lin := rng.Int63n(a.Elems())
			ed, err := l.ElemDisk(a, lin)
			if err != nil {
				t.Fatal(err)
			}
			pg, _ := l.ElemPage(a, lin)
			pd, err := l.PageDisk(pg)
			if err != nil {
				t.Fatal(err)
			}
			if ed != pd {
				t.Fatalf("trial %d: elem %d disk mismatch %d vs %d", trial, lin, ed, pd)
			}
			if ed < start || ed >= start+factor {
				t.Fatalf("trial %d: disk %d outside [%d,%d)", trial, ed, start, start+factor)
			}
		}
	}
}

func itoa(n int) string { return itoa64(int64(n)) }

func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
