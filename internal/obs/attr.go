package obs

// ProcAttribution accumulates per-(disk, processor) service attribution
// from a simulation's replay: how many requests each processor (tenant)
// issued to each disk, how much disk busy time it consumed there, and its
// summed response time. The simulator feeds it from its per-disk replay
// shards — each disk's row is written only by that disk's worker, so the
// accumulator needs no locking and the totals are identical at every
// worker count. It is the measurement behind per-tenant energy
// attribution on multi-tenant merged traces.
//
// A nil ProcAttribution is a valid no-op sink.
type ProcAttribution struct {
	numDisks, numProcs int
	cells              []ProcCell // [disk*numProcs + proc]
}

// ProcCell is one (disk, processor) attribution cell.
type ProcCell struct {
	// Requests the processor issued to the disk.
	Requests int
	// BusyS is the disk service time those requests consumed (s).
	BusyS float64
	// RespS is their summed response time (s).
	RespS float64
}

// NewProcAttribution returns an accumulator sized for numDisks disks and
// numProcs processors.
func NewProcAttribution(numDisks, numProcs int) *ProcAttribution {
	if numDisks < 0 {
		numDisks = 0
	}
	if numProcs < 0 {
		numProcs = 0
	}
	return &ProcAttribution{
		numDisks: numDisks,
		numProcs: numProcs,
		cells:    make([]ProcCell, numDisks*numProcs),
	}
}

// NumDisks returns the disk count the accumulator was sized for.
func (a *ProcAttribution) NumDisks() int {
	if a == nil {
		return 0
	}
	return a.numDisks
}

// NumProcs returns the processor count the accumulator was sized for.
func (a *ProcAttribution) NumProcs() int {
	if a == nil {
		return 0
	}
	return a.numProcs
}

// Observe folds one serviced request into the (disk, proc) cell.
// Out-of-range indices are ignored (the simulator validates sizing up
// front, so this only guards foreign callers).
func (a *ProcAttribution) Observe(disk, proc int, busy, resp float64) {
	if a == nil || disk < 0 || disk >= a.numDisks || proc < 0 || proc >= a.numProcs {
		return
	}
	c := &a.cells[disk*a.numProcs+proc]
	c.Requests++
	c.BusyS += busy
	c.RespS += resp
}

// Cell returns the (disk, proc) cell; out-of-range indices return a zero
// cell.
func (a *ProcAttribution) Cell(disk, proc int) ProcCell {
	if a == nil || disk < 0 || disk >= a.numDisks || proc < 0 || proc >= a.numProcs {
		return ProcCell{}
	}
	return a.cells[disk*a.numProcs+proc]
}

// DiskTotals returns a disk's total attributed busy time and request
// count across all processors.
func (a *ProcAttribution) DiskTotals(disk int) (busy float64, requests int) {
	if a == nil || disk < 0 || disk >= a.numDisks {
		return 0, 0
	}
	for p := 0; p < a.numProcs; p++ {
		c := &a.cells[disk*a.numProcs+p]
		busy += c.BusyS
		requests += c.Requests
	}
	return busy, requests
}

// PerProc folds the per-disk cells into one attribution row per
// processor, summing in disk order.
func (a *ProcAttribution) PerProc() []ProcCell {
	if a == nil {
		return nil
	}
	out := make([]ProcCell, a.numProcs)
	for d := 0; d < a.numDisks; d++ {
		for p := 0; p < a.numProcs; p++ {
			c := a.cells[d*a.numProcs+p]
			out[p].Requests += c.Requests
			out[p].BusyS += c.BusyS
			out[p].RespS += c.RespS
		}
	}
	return out
}
