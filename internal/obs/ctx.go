package obs

import "context"

// poolKey carries a *PoolStats through a context into internal/conc, which
// sits below this package's other consumers and therefore cannot take a
// tracer parameter without widening its API.
type poolKey struct{}

// WithPool attaches a worker-pool statistics sink to the context.
// Attaching nil returns ctx unchanged, so callers can thread
// tracer.Pool() through unconditionally.
func WithPool(ctx context.Context, p *PoolStats) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom extracts the pool statistics sink from the context, or nil.
func PoolFrom(ctx context.Context) *PoolStats {
	p, _ := ctx.Value(poolKey{}).(*PoolStats)
	return p
}
