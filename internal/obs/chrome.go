package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace_event record. The exporter emits
// complete events ("ph": "X") for spans, metadata events ("ph": "M") for
// thread names, and counter events ("ph": "C") for tracer counters — the
// subset chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// rootOf walks a span's parent chain inside byID and returns the root
// ancestor's id (the span's own id when it has no registered parent).
func rootOf(s *Span, byID map[int64]*Span) int64 {
	for s.parent != 0 {
		p, ok := byID[s.parent]
		if !ok {
			break
		}
		s = p
	}
	return s.id
}

// WriteChromeTrace exports every ended span (and the counters) as Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto. Each root
// span and its descendants render on their own thread row, so concurrent
// pipelines (one per app, one per simulation) do not overlap visually.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.snapshot()
	byID := make(map[int64]*Span, len(spans))
	for _, s := range spans {
		byID[s.id] = s
	}
	// Assign one tid per root ancestor, in (start, id) order of the roots.
	tids := make(map[int64]int)
	var events []chromeEvent
	for _, s := range spans {
		root := rootOf(s, byID)
		tid, ok := tids[root]
		if !ok {
			tid = len(tids) + 1
			tids[root] = tid
			rs := byID[root]
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": fmt.Sprintf("%s-%d", rs.track, root)},
			})
		}
		dur := float64(s.end-s.start) / float64(time.Microsecond)
		ev := chromeEvent{
			Name: s.name,
			Cat:  s.track,
			Ph:   "X",
			TS:   float64(s.start) / float64(time.Microsecond),
			Dur:  &dur,
			PID:  1,
			TID:  tid,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	var maxTS float64
	for _, ev := range events {
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
	}
	for _, cv := range t.Counters() {
		events = append(events, chromeEvent{
			Name: cv.Name, Ph: "C", TS: maxTS, PID: 1, TID: 0,
			Args: map[string]any{"value": cv.Value},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTree renders the ended spans as an indented text tree — the compact
// human view of the same hierarchy the Chrome export carries. Children
// print under their parents in (start, id) order with durations and
// attributes; counters follow at the end.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.snapshot()
	byID := make(map[int64]*Span, len(spans))
	children := make(map[int64][]*Span)
	var roots []*Span
	for _, s := range spans {
		byID[s.id] = s
	}
	for _, s := range spans {
		if s.parent != 0 && byID[s.parent] != nil {
			children[s.parent] = append(children[s.parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var print func(s *Span, depth int) error
	print = func(s *Span, depth int) error {
		var attrs strings.Builder
		for _, a := range s.attrs {
			fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%s%s%s  %.3fms\n",
			strings.Repeat("  ", depth), s.name, attrs.String(),
			float64(s.end-s.start)/float64(time.Millisecond)); err != nil {
			return err
		}
		for _, c := range children[s.id] {
			if err := print(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range roots {
		if err := print(s, 0); err != nil {
			return err
		}
	}
	for _, cv := range t.Counters() {
		if _, err := fmt.Fprintf(w, "counter %s = %d\n", cv.Name, cv.Value); err != nil {
			return err
		}
	}
	return nil
}
