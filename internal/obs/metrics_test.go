package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"diskreuse/internal/metrics"
)

// bridgeHist resolves the same histogram handle the bridge publishes to.
func bridgeHist(reg *metrics.Registry, stage string) *metrics.Histogram {
	return reg.Histogram(MetricStageSeconds,
		"wall time of ended tracer spans by stage",
		metrics.DefDurationBuckets, metrics.L("stage", stage))
}

// The bridge must agree with the tracer's own post-hoc aggregation: per
// stage, histogram count equals StageTiming.Count exactly and histogram sum
// equals TotalMS (converted to seconds) to float tolerance.
func TestWithMetricsPinsTotals(t *testing.T) {
	tr := NewTracer()
	reg := metrics.NewRegistry()
	WithMetrics(tr, reg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sp := tr.Start("replay", "sim")
				ch := sp.Child("score")
				time.Sleep(10 * time.Microsecond)
				ch.End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	totals := tr.Totals()
	if len(totals) != 2 {
		t.Fatalf("Totals() has %d stages, want 2: %+v", len(totals), totals)
	}
	for _, st := range totals {
		h := bridgeHist(reg, st.Name)
		if got := h.Count(); got != int64(st.Count) {
			t.Errorf("stage %q: histogram count %d, Totals count %d", st.Name, got, st.Count)
		}
		wantSec := st.TotalMS / 1e3
		if got := h.Sum(); math.Abs(got-wantSec) > 1e-9*(1+math.Abs(wantSec)) {
			t.Errorf("stage %q: histogram sum %v s, Totals %v s", st.Name, got, wantSec)
		}
	}
}

// Only spans ended while the bridge is installed are observed; uninstalling
// with a nil registry stops publication without touching the tracer.
func TestWithMetricsInstallUninstall(t *testing.T) {
	tr := NewTracer()
	before := tr.Start("early", "t")
	before.End() // no bridge yet: unobserved

	reg := metrics.NewRegistry()
	WithMetrics(tr, reg)
	mid := tr.Start("early", "t")
	mid.End()

	WithMetrics(tr, nil)
	after := tr.Start("early", "t")
	after.End()

	if got := bridgeHist(reg, "early").Count(); got != 1 {
		t.Errorf("bridge observed %d spans, want exactly the one ended while installed", got)
	}
	if got := tr.SpanCount(); got != 3 {
		t.Errorf("tracer recorded %d spans, want 3", got)
	}
}

// Nil tracer and nil registry are both safe.
func TestWithMetricsNilSafety(t *testing.T) {
	WithMetrics(nil, metrics.NewRegistry())
	WithMetrics(nil, nil)
	var tr *Tracer
	sp := tr.Start("x", "t")
	sp.End()
}
