package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Report is the renderable aggregation of one instrumented evaluation:
// per-app × per-version result rows (energy, degradation, idle locality),
// the pipeline stage timings, and the worker-pool occupancy. The
// experiment harness builds it (exp.BuildReport); the binaries render it
// with -report text|json|csv.
//
// Content determinism: everything except the timing fields (TotalMS,
// PoolSnapshot times) is a pure function of the evaluated workload —
// golden tests compare reports with ZeroTimings applied.
type Report struct {
	Suites   []SuiteReport  `json:"suites"`
	Stages   []StageTiming  `json:"stages,omitempty"`
	Pool     *PoolSnapshot  `json:"pool,omitempty"`
	Counters []CounterValue `json:"counters,omitempty"`
}

// SuiteReport is one processor-count grid of result rows.
type SuiteReport struct {
	Procs int   `json:"procs"`
	Rows  []Row `json:"rows"`
}

// Row is one (app, version) measurement with its idle-locality telemetry.
type Row struct {
	App             string  `json:"app"`
	Version         string  `json:"version"`
	EnergyJ         float64 `json:"energy_j"`
	NormEnergy      float64 `json:"norm_energy"`
	IOTimeS         float64 `json:"io_time_s"`
	PerfDegradation float64 `json:"perf_degradation"`
	Requests        int     `json:"requests"`
	SpinUps         int     `json:"spin_ups"`
	SpeedShifts     int     `json:"speed_shifts"`
	// Idle is the idle-locality summary across the run's disks; IdleHist
	// is the aggregate log-2 idle-period histogram with trailing empty
	// buckets trimmed (index i covers the IdleBucketLabel(i) range).
	Idle     IdleStats `json:"idle"`
	IdleHist []int     `json:"idle_hist,omitempty"`
}

// TrimHist drops trailing zero buckets from a full histogram for compact
// serialization.
func TrimHist(h [IdleBucketCount]int) []int {
	n := IdleBucketCount
	for n > 0 && h[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return append([]int(nil), h[:n]...)
}

// ZeroTimings clears every wall-clock-derived field, leaving only content
// that is deterministic across runs and worker counts — the form golden
// tests compare.
func (r *Report) ZeroTimings() {
	for i := range r.Stages {
		r.Stages[i].TotalMS = 0
	}
	if r.Pool != nil {
		r.Pool.TaskTimeMS = 0
		r.Pool.WorkerTimeMS = 0
		r.Pool.Occupancy = 0
		r.Pool.QueueWaitMS = 0
	}
}

// Render writes the report in the named format: "text", "json", or "csv".
func (r *Report) Render(w io.Writer, format string) error {
	switch format {
	case "text", "":
		return r.WriteText(w)
	case "json":
		return r.WriteJSON(w)
	case "csv":
		return r.WriteCSV(w)
	}
	return fmt.Errorf("obs: unknown report format %q (want text, json, or csv)", format)
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as per-suite tables followed by the stage
// timing and worker-pool summaries.
func (r *Report) WriteText(w io.Writer) error {
	for _, s := range r.Suites {
		if _, err := fmt.Fprintf(w, "Report: %d processor(s)\n", s.Procs); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "App\tVersion\tEnergy (J)\tNorm\tDegr (%)\tSpinUps\tShifts\tIdle periods\tMean idle (s)\tLongest idle (s)")
		for _, row := range s.Rows {
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.3f\t%.2f\t%d\t%d\t%d\t%.3f\t%.3f\n",
				row.App, row.Version, row.EnergyJ, row.NormEnergy, 100*row.PerfDegradation,
				row.SpinUps, row.SpeedShifts,
				row.Idle.Periods, row.Idle.MeanIdleS, row.Idle.LongestIdleS)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(r.Stages) > 0 {
		if _, err := fmt.Fprintln(w, "Pipeline stages:"); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "Stage\tSpans\tTotal (ms)")
		for _, st := range r.Stages {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\n", st.Name, st.Count, st.TotalMS)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if r.Pool != nil {
		if _, err := fmt.Fprintf(w, "Worker pool: %s\n", r.Pool); err != nil {
			return err
		}
	}
	for _, cv := range r.Counters {
		if _, err := fmt.Fprintf(w, "counter %s = %d\n", cv.Name, cv.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the result rows in long form (one row per suite × app ×
// version), with the idle-locality columns appended. Stage timings and
// pool statistics are JSON/text-only.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"procs", "app", "version", "energy_j", "norm_energy",
		"io_time_s", "perf_degradation", "requests", "spin_ups", "speed_shifts",
		"idle_periods", "mean_idle_s", "longest_idle_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range r.Suites {
		for _, row := range s.Rows {
			rec := []string{
				strconv.Itoa(s.Procs),
				row.App,
				row.Version,
				strconv.FormatFloat(row.EnergyJ, 'f', 3, 64),
				strconv.FormatFloat(row.NormEnergy, 'f', 6, 64),
				strconv.FormatFloat(row.IOTimeS, 'f', 6, 64),
				strconv.FormatFloat(row.PerfDegradation, 'f', 6, 64),
				strconv.Itoa(row.Requests),
				strconv.Itoa(row.SpinUps),
				strconv.Itoa(row.SpeedShifts),
				strconv.Itoa(row.Idle.Periods),
				strconv.FormatFloat(row.Idle.MeanIdleS, 'f', 6, 64),
				strconv.FormatFloat(row.Idle.LongestIdleS, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
