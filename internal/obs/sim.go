package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// DiskState classifies one recorded interval of simulated disk activity.
// The values mirror internal/sim's interval kinds; the simulator maps its
// own enum onto this one explicitly so the two packages stay decoupled.
type DiskState uint8

// Disk states, in the simulator's emission vocabulary.
const (
	DiskBusy DiskState = iota
	DiskIdle
	DiskStandby
	DiskTransition
	numDiskStates
)

func (s DiskState) String() string {
	switch s {
	case DiskBusy:
		return "busy"
	case DiskIdle:
		return "idle"
	case DiskStandby:
		return "standby"
	case DiskTransition:
		return "transition"
	}
	return fmt.Sprintf("DiskState(%d)", uint8(s))
}

// Idle-period histogram geometry: log-2 buckets over seconds. Bucket i
// covers [2^(i+minIdleExp), 2^(i+minIdleExp+1)) seconds; the first and
// last buckets absorb the tails. With minIdleExp = -10 the range spans
// ~1 ms to ~36 h, bracketing everything the replayed traces produce.
const (
	minIdleExp = -10
	// IdleBucketCount is the number of log-2 idle-period buckets.
	IdleBucketCount = 28
)

// IdleBucket returns the histogram bucket of an idle period of d seconds.
func IdleBucket(d float64) int {
	if d <= 0 {
		return 0
	}
	_, exp := math.Frexp(d) // d = frac * 2^exp, frac in [0.5, 1)
	b := exp - 1 - minIdleExp
	if b < 0 {
		return 0
	}
	if b >= IdleBucketCount {
		return IdleBucketCount - 1
	}
	return b
}

// IdleBucketLabel names a histogram bucket's half-open range in seconds.
func IdleBucketLabel(i int) string {
	lo, hi := i+minIdleExp, i+minIdleExp+1
	switch {
	case i <= 0:
		return fmt.Sprintf("[0, 2^%d) s", hi)
	case i >= IdleBucketCount-1:
		return fmt.Sprintf("[2^%d, inf) s", lo)
	default:
		return fmt.Sprintf("[2^%d, 2^%d) s", lo, hi)
	}
}

// IdleStats is the idle-locality summary: how many request-free periods a
// disk (or a bank of disks) saw, their total and mean length, and the
// longest one. The compiler restructuring of the paper's §5 exists to
// lengthen exactly these periods — same total idleness concentrated into
// fewer, longer runs — so MeanIdleS and LongestIdleS quantify the claim
// directly: growing them past the TPM break-even (or the DRPM coast dwell)
// is what converts idle time into energy savings.
type IdleStats struct {
	Periods      int     `json:"periods"`
	TotalIdleS   float64 `json:"total_idle_s"`
	MeanIdleS    float64 `json:"mean_idle_s"`
	LongestIdleS float64 `json:"longest_idle_s"`
}

// DiskTelemetry accumulates one disk's event telemetry from its recorded
// interval stream: time in each state, classified transition counts, and
// the request-free (idle-period) histogram. Intervals must be observed in
// increasing time order — the order the simulator's Record hook guarantees
// per disk.
type DiskTelemetry struct {
	// TimeIn is seconds spent in each DiskState (indexed by DiskState).
	TimeIn [numDiskStates]float64
	// Transition counts, classified from the interval stream.
	SpinUps, SpinDowns, SpeedShifts int
	// IdleHist is the log-2 histogram of request-free period lengths.
	IdleHist [IdleBucketCount]int
	// Idle-locality accumulators over closed request-free periods.
	IdlePeriods int
	TotalIdle   float64
	LongestIdle float64

	// Run state machine: a request-free period is a maximal span of
	// consecutive non-busy intervals between busy ones.
	prev             DiskState
	prevRPM          int
	seen             bool
	inRun            bool
	runStart, runEnd float64
}

// observe folds one interval into the disk's telemetry.
func (d *DiskTelemetry) observe(state DiskState, from, to float64, rpm int) {
	if to < from {
		to = from
	}
	if int(state) < len(d.TimeIn) {
		d.TimeIn[state] += to - from
	}
	if state == DiskTransition {
		switch {
		case rpm == 0:
			d.SpinDowns++
		case d.seen && (d.prev == DiskStandby || (d.prev == DiskTransition && d.prevRPM == 0)):
			// Coming out of standby (or straight off the spin-down that
			// put the disk there): a TPM spin-up. Any other transition at
			// a positive speed is a DRPM level shift.
			d.SpinUps++
		default:
			d.SpeedShifts++
		}
	}
	if state == DiskBusy {
		d.closeRun()
	} else {
		if !d.inRun {
			d.inRun = true
			d.runStart = from
		}
		d.runEnd = to
	}
	d.prev, d.prevRPM, d.seen = state, rpm, true
}

// closeRun finishes the open request-free period, if any.
func (d *DiskTelemetry) closeRun() {
	if !d.inRun {
		return
	}
	run := d.runEnd - d.runStart
	d.inRun = false
	d.IdlePeriods++
	d.TotalIdle += run
	if run > d.LongestIdle {
		d.LongestIdle = run
	}
	d.IdleHist[IdleBucket(run)]++
}

// Idle returns the disk's idle-locality summary.
func (d *DiskTelemetry) Idle() IdleStats {
	st := IdleStats{Periods: d.IdlePeriods, TotalIdleS: d.TotalIdle, LongestIdleS: d.LongestIdle}
	if st.Periods > 0 {
		st.MeanIdleS = st.TotalIdleS / float64(st.Periods)
	}
	return st
}

// SimTelemetry collects per-disk event telemetry for one simulation run,
// fed from the simulator's Record hook. State is strictly per disk, so
// Observe calls for different disks may run concurrently (the sharded
// open-loop replay observes each disk from its own worker); calls for one
// disk must arrive in increasing time order, which the simulator
// guarantees. A nil SimTelemetry is a valid no-op sink.
type SimTelemetry struct {
	Disks []DiskTelemetry
}

// NewSimTelemetry returns a collector for numDisks disks.
func NewSimTelemetry(numDisks int) *SimTelemetry {
	if numDisks < 0 {
		numDisks = 0
	}
	return &SimTelemetry{Disks: make([]DiskTelemetry, numDisks)}
}

// NumDisks returns how many disks the collector was sized for.
func (t *SimTelemetry) NumDisks() int {
	if t == nil {
		return 0
	}
	return len(t.Disks)
}

// Observe folds one recorded interval into the per-disk telemetry.
// Out-of-range disks are ignored (the simulator validates sizing up
// front, so this only guards foreign callers).
func (t *SimTelemetry) Observe(disk int, state DiskState, from, to float64, rpm int) {
	if t == nil || disk < 0 || disk >= len(t.Disks) {
		return
	}
	t.Disks[disk].observe(state, from, to, rpm)
}

// Finish closes any still-open request-free periods (the tail idleness
// after each disk's last request). Idempotent; the simulator calls it
// when a run completes.
func (t *SimTelemetry) Finish() {
	if t == nil {
		return
	}
	for i := range t.Disks {
		t.Disks[i].closeRun()
	}
}

// IdleLocality aggregates the idle-locality summary across all disks.
func (t *SimTelemetry) IdleLocality() IdleStats {
	var st IdleStats
	if t == nil {
		return st
	}
	for i := range t.Disks {
		d := &t.Disks[i]
		st.Periods += d.IdlePeriods
		st.TotalIdleS += d.TotalIdle
		if d.LongestIdle > st.LongestIdleS {
			st.LongestIdleS = d.LongestIdle
		}
	}
	if st.Periods > 0 {
		st.MeanIdleS = st.TotalIdleS / float64(st.Periods)
	}
	return st
}

// Histogram aggregates the idle-period histogram across all disks.
func (t *SimTelemetry) Histogram() [IdleBucketCount]int {
	var h [IdleBucketCount]int
	if t == nil {
		return h
	}
	for i := range t.Disks {
		for b, n := range t.Disks[i].IdleHist {
			h[b] += n
		}
	}
	return h
}

// WriteText renders the per-disk telemetry and the aggregate idle-period
// histogram as a human-readable table.
func (t *SimTelemetry) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "Disk\tBusy (s)\tIdle (s)\tStandby (s)\tTransition (s)\tSpinUps\tSpinDowns\tShifts\tIdle periods\tMean idle (s)\tLongest idle (s)")
	for i := range t.Disks {
		d := &t.Disks[i]
		idle := d.Idle()
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%.3f\t%.3f\n",
			i, d.TimeIn[DiskBusy], d.TimeIn[DiskIdle], d.TimeIn[DiskStandby], d.TimeIn[DiskTransition],
			d.SpinUps, d.SpinDowns, d.SpeedShifts,
			idle.Periods, idle.MeanIdleS, idle.LongestIdleS)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	hist := t.Histogram()
	maxN := 0
	for _, n := range hist {
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "Idle-period histogram (all disks):"); err != nil {
		return err
	}
	for b, n := range hist {
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+n*40/maxN)
		if _, err := fmt.Fprintf(w, "  %-16s %6d %s\n", IdleBucketLabel(b), n, bar); err != nil {
			return err
		}
	}
	return nil
}
