package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the stdlib profilers the binaries expose as
// -cpuprofile/-memprofile: a CPU profile streaming to cpuPath and a heap
// profile written to memPath at stop time. Either path may be empty to
// skip that profile. The returned stop function must run exactly once at
// exit (it stops the CPU profile and writes the heap snapshot); it is
// never nil.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: create CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: create heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
