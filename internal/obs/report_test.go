package obs

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Suites: []SuiteReport{{
			Procs: 2,
			Rows: []Row{
				{App: "cholesky", Version: "Base", EnergyJ: 120.5, NormEnergy: 1,
					IOTimeS: 3.25, Requests: 640,
					Idle:     IdleStats{Periods: 4, TotalIdleS: 8, MeanIdleS: 2, LongestIdleS: 5},
					IdleHist: []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2}},
				{App: "cholesky", Version: "T-TPM", EnergyJ: 80.3, NormEnergy: 0.666,
					PerfDegradation: 0.031, Requests: 640, SpinUps: 3, SpeedShifts: 0,
					Idle: IdleStats{Periods: 2, TotalIdleS: 8, MeanIdleS: 4, LongestIdleS: 6}},
			},
		}},
		Stages:   []StageTiming{{Name: "parse", Count: 6, TotalMS: 1.5}, {Name: "sim", Count: 12, TotalMS: 90}},
		Pool:     &PoolSnapshot{Pools: 3, Tasks: 24, TaskTimeMS: 50, WorkerTimeMS: 100, Occupancy: 0.5, QueueWaitMS: 50},
		Counters: []CounterValue{{Name: "requests", Value: 1280}},
	}
}

func TestRenderText(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().Render(&sb, "text"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Report: 2 processor(s)", "cholesky", "T-TPM",
		"Mean idle (s)", "Pipeline stages:", "parse", "Worker pool:", "counter requests = 1280"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	// "" is an alias for text.
	var sb2 strings.Builder
	if err := sampleReport().Render(&sb2, ""); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("empty format must render identically to text")
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var sb strings.Builder
	if err := rep.Render(&sb, "json"); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Suites) != 1 || len(back.Suites[0].Rows) != 2 {
		t.Fatalf("round-trip shape: %+v", back.Suites)
	}
	if back.Suites[0].Rows[0].Idle != rep.Suites[0].Rows[0].Idle {
		t.Errorf("idle stats lost: %+v", back.Suites[0].Rows[0].Idle)
	}
	if back.Pool == nil || *back.Pool != *rep.Pool {
		t.Errorf("pool lost: %+v", back.Pool)
	}
	if len(back.Stages) != 2 || back.Stages[1] != rep.Stages[1] {
		t.Errorf("stages lost: %+v", back.Stages)
	}
}

func TestRenderCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().Render(&sb, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "procs" || recs[0][10] != "idle_periods" || recs[0][12] != "longest_idle_s" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][1] != "cholesky" || recs[2][2] != "T-TPM" || recs[2][8] != "3" {
		t.Errorf("rows = %v", recs[1:])
	}
}

func TestRenderUnknownFormat(t *testing.T) {
	err := sampleReport().Render(&strings.Builder{}, "yaml")
	if err == nil || !strings.Contains(err.Error(), "yaml") {
		t.Errorf("want unknown-format error, got %v", err)
	}
}

func TestZeroTimings(t *testing.T) {
	rep := sampleReport()
	rep.ZeroTimings()
	for _, st := range rep.Stages {
		if st.TotalMS != 0 {
			t.Errorf("stage %s keeps TotalMS %v", st.Name, st.TotalMS)
		}
		if st.Count == 0 {
			t.Errorf("stage %s lost its count", st.Name)
		}
	}
	if p := rep.Pool; p.TaskTimeMS != 0 || p.WorkerTimeMS != 0 || p.Occupancy != 0 || p.QueueWaitMS != 0 {
		t.Errorf("pool keeps timings: %+v", p)
	}
	if rep.Pool.Tasks != 24 {
		t.Error("ZeroTimings must keep deterministic counts")
	}
	// Safe on a bare report too.
	(&Report{}).ZeroTimings()
}

func TestTrimHist(t *testing.T) {
	var h [IdleBucketCount]int
	if got := TrimHist(h); got != nil {
		t.Errorf("empty histogram trims to %v, want nil", got)
	}
	h[0], h[5] = 1, 2
	got := TrimHist(h)
	if len(got) != 6 || got[0] != 1 || got[5] != 2 {
		t.Errorf("TrimHist = %v", got)
	}
	h[IdleBucketCount-1] = 7
	if got := TrimHist(h); len(got) != IdleBucketCount {
		t.Errorf("full-width trim = %d buckets", len(got))
	}
}

// TestChromeTrace checks the exporter end to end: metadata rows per root,
// X events with microsecond timings and attr args, C events for counters.
func TestChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("prepare", "pipeline")
	root.SetAttr("app", "fft")
	child := root.Child("parse")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	other := tr.Start("sim", "sim")
	other.End()
	tr.Counter("requests").Add(9)

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, sb.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, spans, counters int
	tids := make(map[string]int)
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			tids[ev.Name] = ev.TID
			if ev.Name == "parse" && ev.Dur < 900 { // slept 1 ms = 1000 µs
				t.Errorf("parse dur = %v µs, want >= 900", ev.Dur)
			}
			if ev.Name == "prepare" && ev.Args["app"] != "fft" {
				t.Errorf("prepare args = %v", ev.Args)
			}
		case "C":
			counters++
			if ev.Name != "requests" || ev.Args["value"].(float64) != 9 {
				t.Errorf("counter event = %+v", ev)
			}
		}
	}
	if meta != 2 || spans != 3 || counters != 1 {
		t.Errorf("events = %d meta, %d spans, %d counters", meta, spans, counters)
	}
	if tids["prepare"] != tids["parse"] {
		t.Error("child must share its root's thread row")
	}
	if tids["prepare"] == tids["sim"] {
		t.Error("distinct roots must get distinct thread rows")
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("prepare", "pipeline")
	child := root.Child("parse")
	child.SetAttr("app", "fft")
	child.End()
	root.End()
	tr.Counter("n").Add(2)
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "prepare") || !strings.Contains(out, "  parse app=fft") {
		t.Errorf("tree output:\n%s", out)
	}
	if !strings.Contains(out, "counter n = 2") {
		t.Errorf("tree missing counters:\n%s", out)
	}
}
