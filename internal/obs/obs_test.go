package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilNoOps: every type's nil receiver must be a silent sink, so
// instrumented code runs identically with observability off.
func TestNilNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y")
	if sp != nil {
		t.Error("nil tracer must start nil spans")
	}
	if c := sp.Child("z"); c != nil {
		t.Error("nil span must have nil children")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if tr.SpanCount() != 0 || tr.Totals() != nil || tr.Counters() != nil {
		t.Error("nil tracer must report nothing")
	}
	if c := tr.Counter("n"); c != nil {
		t.Error("nil tracer must hand out nil counters")
	}
	var cnt *Counter
	cnt.Add(3)
	if cnt.Value() != 0 {
		t.Error("nil counter must stay zero")
	}
	if p := tr.Pool(); p != nil {
		t.Error("nil tracer must have a nil pool")
	}
	var ps *PoolStats
	ps.ObserveTask(time.Second)
	ps.ObservePool(time.Second, 4)
	if snap := ps.Snapshot(); snap != (PoolSnapshot{}) {
		t.Errorf("nil pool snapshot = %+v", snap)
	}
	var st *SimTelemetry
	st.Observe(0, DiskBusy, 0, 1, 0)
	st.Finish()
	if st.NumDisks() != 0 || st.IdleLocality() != (IdleStats{}) {
		t.Error("nil telemetry must report nothing")
	}
	var sb strings.Builder
	if err := st.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil telemetry must write nothing")
	}
}

func TestSpanTreeAndTotals(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("prepare", "pipeline")
	root.SetAttr("app", "cholesky")
	a := root.Child("parse")
	a.End()
	b := root.Child("parse")
	b.End()
	c := root.Child("sema")
	c.End()
	root.End()
	open := tr.Start("never-ended", "pipeline")
	_ = open

	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want 4 (unended spans are not exported)", got)
	}
	tot := tr.Totals()
	byName := make(map[string]StageTiming)
	for _, st := range tot {
		byName[st.Name] = st
	}
	if byName["parse"].Count != 2 || byName["sema"].Count != 1 || byName["prepare"].Count != 1 {
		t.Errorf("Totals = %+v", tot)
	}
	if _, ok := byName["never-ended"]; ok {
		t.Error("unended span leaked into Totals")
	}
	// Totals are sorted by name.
	for i := 1; i < len(tot); i++ {
		if tot[i-1].Name > tot[i].Name {
			t.Errorf("Totals not sorted: %+v", tot)
		}
	}
}

// TestEndIdempotent: only the first End publishes, so a deferred End can
// back up an explicit one without double-counting.
func TestEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("x", "t")
	sp.End()
	sp.End()
	if got := tr.SpanCount(); got != 1 {
		t.Errorf("SpanCount after double End = %d, want 1", got)
	}
}

func TestCounters(t *testing.T) {
	tr := NewTracer()
	tr.Counter("reqs").Add(3)
	tr.Counter("reqs").Add(2)
	tr.Counter("apps").Add(1)
	cvs := tr.Counters()
	if len(cvs) != 2 || cvs[0] != (CounterValue{Name: "apps", Value: 1}) || cvs[1] != (CounterValue{Name: "reqs", Value: 5}) {
		t.Errorf("Counters = %+v", cvs)
	}
}

func TestPoolStats(t *testing.T) {
	var p PoolStats
	p.ObserveTask(30 * time.Millisecond)
	p.ObserveTask(10 * time.Millisecond)
	p.ObservePool(20*time.Millisecond, 4) // 80 ms of worker capacity
	s := p.Snapshot()
	if s.Pools != 1 || s.Tasks != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.TaskTimeMS != 40 || s.WorkerTimeMS != 80 {
		t.Errorf("times = %+v", s)
	}
	if s.Occupancy != 0.5 || s.QueueWaitMS != 40 {
		t.Errorf("occupancy = %+v", s)
	}
	if got := s.String(); !strings.Contains(got, "tasks=2") || !strings.Contains(got, "occupancy=0.50") {
		t.Errorf("String = %q", got)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines — the
// -race run is the assertion that a shared Tracer is safe under fan-out.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := tr.Start("work", "t")
			for i := 0; i < each; i++ {
				c := root.Child("step")
				c.SetAttr("i", "x")
				c.End()
				tr.Counter("steps").Add(1)
				tr.Pool().ObserveTask(time.Microsecond)
			}
			root.End()
		}()
	}
	wg.Wait()
	if got := tr.SpanCount(); got != workers*(each+1) {
		t.Errorf("SpanCount = %d, want %d", got, workers*(each+1))
	}
	if got := tr.Counter("steps").Value(); got != workers*each {
		t.Errorf("steps = %d", got)
	}
	// Ids must be unique across the fan-out.
	seen := make(map[int64]bool)
	for _, s := range tr.snapshot() {
		if seen[s.id] {
			t.Fatalf("duplicate span id %d", s.id)
		}
		seen[s.id] = true
	}
}
