package obs

import (
	"math"
	"strings"
	"testing"
)

func TestIdleBucket(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0}, {-1, 0}, // degenerate
		{1e-9, 0},                             // below the first bucket's floor
		{math.Exp2(minIdleExp) * 1.001, 0},    // just inside bucket 0
		{0.5, 9}, {1, 10}, {1.5, 10}, {2, 11}, // 2^0 s lands in bucket -minIdleExp
		{3600, 21},
		{1e9, IdleBucketCount - 1}, // clamps into the open-ended tail
	}
	for _, c := range cases {
		if got := IdleBucket(c.d); got != c.want {
			t.Errorf("IdleBucket(%g) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bucket boundaries are half-open: 2^k opens bucket k-minIdleExp.
	for k := -5; k < 10; k++ {
		d := math.Exp2(float64(k))
		if IdleBucket(d) != IdleBucket(d*1.5) {
			t.Errorf("2^%d and 1.5*2^%d should share a bucket", k, k)
		}
		if IdleBucket(d) == IdleBucket(d*0.99) {
			t.Errorf("2^%d must open a new bucket over %g", k, d*0.99)
		}
	}
	if got := IdleBucketLabel(0); !strings.Contains(got, "[0,") {
		t.Errorf("label(0) = %q", got)
	}
	if got := IdleBucketLabel(IdleBucketCount - 1); !strings.Contains(got, "inf") {
		t.Errorf("label(last) = %q", got)
	}
	if got := IdleBucketLabel(10); got != "[2^0, 2^1) s" {
		t.Errorf("label(10) = %q", got)
	}
}

// TestTransitionClassification walks a TPM-shaped interval stream through
// one disk: spin-down (transition at rpm 0), standby, spin-up (transition
// after standby), and a DRPM shift (transition between active speeds).
func TestTransitionClassification(t *testing.T) {
	tel := NewSimTelemetry(1)
	tel.Observe(0, DiskBusy, 0, 1, 15000)
	tel.Observe(0, DiskIdle, 1, 3, 15000)
	tel.Observe(0, DiskTransition, 3, 4.5, 0) // spin-down
	tel.Observe(0, DiskStandby, 4.5, 50, 0)
	tel.Observe(0, DiskTransition, 50, 60.9, 15000) // spin-up
	tel.Observe(0, DiskBusy, 60.9, 61, 15000)
	tel.Observe(0, DiskIdle, 61, 62, 15000)
	tel.Observe(0, DiskTransition, 62, 62.5, 9000) // DRPM lowering: a shift
	tel.Observe(0, DiskIdle, 62.5, 70, 9000)
	tel.Observe(0, DiskTransition, 70, 70.5, 15000) // DRPM raise: a shift
	tel.Observe(0, DiskBusy, 70.5, 71, 15000)
	tel.Finish()

	d := &tel.Disks[0]
	if d.SpinDowns != 1 || d.SpinUps != 1 || d.SpeedShifts != 2 {
		t.Errorf("transitions = down:%d up:%d shift:%d, want 1/1/2", d.SpinDowns, d.SpinUps, d.SpeedShifts)
	}
	if got := d.TimeIn[DiskBusy]; math.Abs(got-1.6) > 1e-9 {
		t.Errorf("busy time = %g, want 1.6", got)
	}
	if got := d.TimeIn[DiskStandby]; math.Abs(got-45.5) > 1e-9 {
		t.Errorf("standby time = %g, want 45.5", got)
	}
	// Request-free runs: [1,60.9] (idle+down+standby+up), [61,70.5], none open.
	idle := tel.IdleLocality()
	if idle.Periods != 2 {
		t.Fatalf("idle periods = %d, want 2", idle.Periods)
	}
	if math.Abs(idle.LongestIdleS-59.9) > 1e-9 {
		t.Errorf("longest idle = %g, want 59.9", idle.LongestIdleS)
	}
	if math.Abs(idle.TotalIdleS-(59.9+9.5)) > 1e-9 {
		t.Errorf("total idle = %g", idle.TotalIdleS)
	}
	if math.Abs(idle.MeanIdleS-idle.TotalIdleS/2) > 1e-9 {
		t.Errorf("mean idle = %g", idle.MeanIdleS)
	}
}

// A spin-up may also follow the spin-down transition directly (request
// arrives mid-spin-down, no standby interval in between).
func TestSpinUpAfterSpinDownTransition(t *testing.T) {
	tel := NewSimTelemetry(1)
	tel.Observe(0, DiskIdle, 0, 10, 15000)
	tel.Observe(0, DiskTransition, 10, 11, 0)     // spin-down begins
	tel.Observe(0, DiskTransition, 11, 21, 15000) // immediately reversed
	tel.Observe(0, DiskBusy, 21, 22, 15000)
	tel.Finish()
	d := &tel.Disks[0]
	if d.SpinDowns != 1 || d.SpinUps != 1 || d.SpeedShifts != 0 {
		t.Errorf("transitions = down:%d up:%d shift:%d, want 1/1/0", d.SpinDowns, d.SpinUps, d.SpeedShifts)
	}
}

// TestFinishIdempotent: Finish closes the tail run exactly once.
func TestFinishIdempotent(t *testing.T) {
	tel := NewSimTelemetry(1)
	tel.Observe(0, DiskBusy, 0, 1, 15000)
	tel.Observe(0, DiskIdle, 1, 5, 15000)
	tel.Finish()
	tel.Finish()
	idle := tel.IdleLocality()
	if idle.Periods != 1 || idle.TotalIdleS != 4 {
		t.Errorf("idle after double Finish = %+v", idle)
	}
	h := tel.Histogram()
	if h[IdleBucket(4)] != 1 {
		t.Errorf("histogram = %v", h)
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 1 {
		t.Errorf("histogram holds %d periods, want 1", total)
	}
}

// A disk that never sees a request contributes nothing: idle periods are
// request-free spans BETWEEN activity, and a wholly silent disk has no
// bracketing busy interval (Observe is never called for it).
func TestAggregationAcrossDisks(t *testing.T) {
	tel := NewSimTelemetry(3)
	tel.Observe(0, DiskBusy, 0, 1, 15000)
	tel.Observe(0, DiskIdle, 1, 2, 15000)
	tel.Observe(1, DiskBusy, 0, 0.5, 15000)
	tel.Observe(1, DiskIdle, 0.5, 8.5, 15000)
	tel.Finish()
	if tel.NumDisks() != 3 {
		t.Fatalf("NumDisks = %d", tel.NumDisks())
	}
	idle := tel.IdleLocality()
	if idle.Periods != 2 || idle.LongestIdleS != 8 || idle.TotalIdleS != 9 {
		t.Errorf("aggregate idle = %+v", idle)
	}
	// Out-of-range disks are ignored, not fatal.
	tel.Observe(7, DiskBusy, 0, 1, 0)
	tel.Observe(-1, DiskBusy, 0, 1, 0)
	if got := tel.IdleLocality(); got != idle {
		t.Errorf("out-of-range Observe changed telemetry: %+v", got)
	}

	var sb strings.Builder
	if err := tel.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Disk", "Idle periods", "Idle-period histogram", "[2^3, 2^4) s"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestDiskStateString(t *testing.T) {
	for s, want := range map[DiskState]string{
		DiskBusy: "busy", DiskIdle: "idle", DiskStandby: "standby",
		DiskTransition: "transition", DiskState(99): "DiskState(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
}
