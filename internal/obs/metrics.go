package obs

import (
	"sync"
	"time"

	"diskreuse/internal/metrics"
)

// MetricStageSeconds is the histogram the tracer bridge publishes: wall time
// of every ended span, labelled by stage (the span name).
const MetricStageSeconds = "obs_stage_duration_seconds"

// stageBridge forwards ended spans into a metrics registry. Histogram
// handles are resolved once per stage name and cached, so the per-End cost
// is one map lookup under a short mutex plus the atomic bucket update.
type stageBridge struct {
	reg *metrics.Registry

	mu    sync.Mutex
	hists map[string]*metrics.Histogram
}

func (b *stageBridge) observe(name string, d time.Duration) {
	b.mu.Lock()
	h, ok := b.hists[name]
	if !ok {
		h = b.reg.Histogram(MetricStageSeconds,
			"wall time of ended tracer spans by stage",
			metrics.DefDurationBuckets, metrics.L("stage", name))
		b.hists[name] = h
	}
	b.mu.Unlock()
	h.Observe(d.Seconds())
}

// WithMetrics installs reg as the tracer's live-metrics bridge: every span
// that ends afterwards also lands one observation on the
// obs_stage_duration_seconds{stage=<name>} histogram, making stage timings
// scrapeable mid-run (the tracer's own Totals() only aggregate after the
// fact). Passing a nil registry uninstalls the bridge; a nil tracer is a
// no-op. Safe to call concurrently with running spans — ends in flight see
// either the old or the new sink.
func WithMetrics(t *Tracer, reg *metrics.Registry) {
	if t == nil {
		return
	}
	if reg == nil {
		t.bridge.Store(nil)
		return
	}
	t.bridge.Store(&stageBridge{reg: reg, hists: make(map[string]*metrics.Histogram)})
}
