// Package obs is the repository's zero-dependency observability leaf:
// hierarchical spans with monotonic timings (Tracer/Span), atomic counters,
// worker-pool occupancy statistics (PoolStats), simulator event telemetry
// (SimTelemetry — idle-period histograms, state transitions, and the
// idle-locality metric of the paper's §5 argument), and a report layer
// (Report) that renders per-app × per-version tables in text, JSON, or CSV.
//
// The package imports only the standard library and the stdlib-only metrics
// leaf (internal/metrics, bridged via WithMetrics so ended spans double as
// live histogram observations), so every other package — including the
// concurrency leaf internal/conc — can emit telemetry without import cycles.
//
// Everything is nil-tolerant: a nil *Tracer, *Span, *Counter, *PoolStats,
// or *SimTelemetry turns the corresponding calls into no-ops, so
// instrumented code pays only a nil check when observability is off. The
// enabled paths are allocation-lean (atomics, preallocated histograms); the
// disabled paths add no allocations at all.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans and counters for one instrumented run. All methods
// are safe for concurrent use: spans register under a mutex when they end,
// ids come from an atomic counter, and counters are atomics. A nil Tracer
// is a valid no-op sink.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []*Span

	ids atomic.Int64

	cmu      sync.Mutex
	counters map[string]*Counter

	pool PoolStats

	// bridge, when non-nil, mirrors every ended span into a metrics
	// registry (see WithMetrics). One atomic load when uninstalled.
	bridge atomic.Pointer[stageBridge]
}

// NewTracer returns a Tracer whose span timestamps are monotonic offsets
// from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), counters: make(map[string]*Counter)}
}

// now returns the monotonic offset from the tracer's epoch.
func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }

// Start opens a root span. track names the logical timeline the span
// belongs to (e.g. "pipeline", "sim"); the Chrome export groups each root
// span and its children onto their own thread row. Returns nil (a no-op
// span) when the tracer is nil.
func (t *Tracer) Start(name, track string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.ids.Add(1), name: name, track: track, start: t.now()}
}

// SpanCount returns how many spans have ended so far.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Counter returns the named atomic counter, creating it on first use.
// Returns nil (a no-op counter) when the tracer is nil.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Counters returns every counter's current value, sorted by name.
func (t *Tracer) Counters() []CounterValue {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	out := make([]CounterValue, 0, len(t.counters))
	for _, c := range t.counters {
		out = append(out, CounterValue{Name: c.name, Value: c.v.Load()})
	}
	t.cmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Pool returns the tracer's worker-pool statistics sink (attach it to a
// context with WithPool so internal/conc records into it). Returns nil
// when the tracer is nil.
func (t *Tracer) Pool() *PoolStats {
	if t == nil {
		return nil
	}
	return &t.pool
}

// snapshot returns the ended spans sorted by (start, id). The slice is a
// copy; the spans are immutable after End.
func (t *Tracer) snapshot() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].id < spans[j].id
	})
	return spans
}

// StageTiming aggregates every ended span of one name: how many ran and
// their summed wall time. It is the row type of the report layer's stage
// table.
type StageTiming struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Totals aggregates ended spans by name, sorted by name — the
// deterministic-shape summary the report layer embeds (contents except
// TotalMS depend only on the instrumented work, never on scheduling).
func (t *Tracer) Totals() []StageTiming {
	if t == nil {
		return nil
	}
	byName := make(map[string]*StageTiming)
	for _, s := range t.snapshot() {
		st, ok := byName[s.name]
		if !ok {
			st = &StageTiming{Name: s.name}
			byName[s.name] = st
		}
		st.Count++
		st.TotalMS += float64(s.end-s.start) / float64(time.Millisecond)
	}
	out := make([]StageTiming, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Span is one timed region. A span is owned by the goroutine that created
// it until End, which publishes it to the tracer; fields never change
// afterwards. A nil Span is a valid no-op.
type Span struct {
	t          *Tracer
	id, parent int64
	name       string
	track      string
	start, end time.Duration
	attrs      []Attr
	ended      bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Child opens a sub-span on the same track. Returns nil when the span is
// nil, so instrumentation chains stay no-ops under a nil tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: s.t.ids.Add(1), parent: s.id, name: name, track: s.track, start: s.t.now()}
}

// SetAttr annotates the span. Must be called by the owning goroutine
// before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and publishes it to the tracer. A span that never
// ends is never exported; only the first End publishes, so a deferred End
// can back up an explicit one.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.end = s.t.now()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, s)
	s.t.mu.Unlock()
	if b := s.t.bridge.Load(); b != nil {
		b.observe(s.name, s.end-s.start)
	}
}

// Counter is a named atomic counter. A nil Counter is a valid no-op.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterValue is one counter's exported value.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// PoolStats accumulates worker-pool telemetry: how many pools ran, how
// many tasks they executed, the summed task time, and the summed
// worker-capacity time (pool wall time × workers) — occupancy is their
// ratio and the complement is queue wait / idle worker capacity. All
// fields are atomics; a nil PoolStats is a valid no-op sink.
type PoolStats struct {
	pools, tasks     atomic.Int64
	taskNS, workerNS atomic.Int64
}

// ObserveTask records one completed task of duration d.
func (p *PoolStats) ObserveTask(d time.Duration) {
	if p == nil {
		return
	}
	p.tasks.Add(1)
	p.taskNS.Add(int64(d))
}

// ObservePool records one drained pool: its wall time and worker count.
func (p *PoolStats) ObservePool(wall time.Duration, workers int) {
	if p == nil {
		return
	}
	p.pools.Add(1)
	p.workerNS.Add(int64(wall) * int64(workers))
}

// PoolSnapshot is a point-in-time copy of PoolStats for reports.
type PoolSnapshot struct {
	Pools        int64   `json:"pools"`
	Tasks        int64   `json:"tasks"`
	TaskTimeMS   float64 `json:"task_time_ms"`
	WorkerTimeMS float64 `json:"worker_time_ms"`
	// Occupancy is task time over worker-capacity time: 1.0 means every
	// worker was busy for the whole pool lifetime.
	Occupancy float64 `json:"occupancy"`
	// QueueWaitMS is the idle worker capacity (worker time minus task
	// time): time workers spent waiting rather than running tasks.
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

// Snapshot returns the current totals. A nil PoolStats snapshots to zero.
func (p *PoolStats) Snapshot() PoolSnapshot {
	if p == nil {
		return PoolSnapshot{}
	}
	s := PoolSnapshot{
		Pools:        p.pools.Load(),
		Tasks:        p.tasks.Load(),
		TaskTimeMS:   float64(p.taskNS.Load()) / float64(time.Millisecond),
		WorkerTimeMS: float64(p.workerNS.Load()) / float64(time.Millisecond),
	}
	if s.WorkerTimeMS > 0 {
		s.Occupancy = s.TaskTimeMS / s.WorkerTimeMS
		s.QueueWaitMS = s.WorkerTimeMS - s.TaskTimeMS
	}
	return s
}

func (s PoolSnapshot) String() string {
	return fmt.Sprintf("pools=%d tasks=%d task-time=%.1fms occupancy=%.2f queue-wait=%.1fms",
		s.Pools, s.Tasks, s.TaskTimeMS, s.Occupancy, s.QueueWaitMS)
}
